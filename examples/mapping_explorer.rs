//! Mapping explorer: for every platform and every weight of its model,
//! show what the FACIL selector decides — MapID, partitioning, the exact
//! PA-bit layout — and verify the placement properties of paper
//! Section II-C hold.
//!
//! Run with: `cargo run --release --example mapping_explorer`

use facil::core::{
    max_map_id_bound, select_mapping_2mb, DType, MappingScheme, MatrixConfig, PlacementChecker,
    HUGE_PAGE_BITS,
};
use facil::llm::ModelConfig;
use facil::soc::{Platform, PlatformId};

fn main() {
    for id in PlatformId::all() {
        let platform = Platform::get(id);
        let topo = platform.dram.topology;
        let model = ModelConfig::by_name(platform.model_name);
        println!(
            "\n=== {} ({}, {} channels x {} ranks x {} banks) ===",
            id,
            platform.dram.kind,
            topo.channels,
            topo.ranks,
            topo.banks()
        );
        println!(
            "page-offset row bits available: {} | paper max-MapID bound: {}",
            MappingScheme::in_page_row_bits(&topo, HUGE_PAGE_BITS).unwrap(),
            max_map_id_bound(&topo, HUGE_PAGE_BITS)
        );
        println!("conventional: {}", MappingScheme::conventional(topo));

        let mut seen = std::collections::BTreeSet::new();
        for (op, _) in model.all_linears() {
            let matrix = MatrixConfig::new(op.out_features, op.in_features, DType::F16);
            let d = select_mapping_2mb(&matrix, topo, &platform.pim_arch).expect("mappable");
            let checker = PlacementChecker::new(&matrix, &d, &platform.pim_arch, 0);
            let report = checker.check_all().expect("placement invariants hold");
            println!(
                "  {:<10} {:>14}  -> MapID {} | partitions {} | PUs/row {} | {}",
                op.name,
                format!("{}x{}", op.out_features, op.in_features),
                d.map_id.0,
                d.partitions,
                report.pus_per_row,
                if seen.insert(d.map_id) { "new frontend slot" } else { "shares slot" },
            );
            if seen.len() == 1 {
                println!("             layout: {}", d.scheme);
            }
        }
        println!(
            "  distinct MapIDs for the whole model: {} (fits the paper's 4-slot mux: {})",
            seen.len(),
            seen.len() <= 3
        );
    }
}
