//! Quickstart: place one weight matrix with `pimalloc`, inspect the chosen
//! mapping, and demonstrate the paper's core claim end to end — the PIM
//! computes a GEMV over exactly the cells the SoC wrote through plain
//! row-major virtual addresses, with no re-layout in either direction.
//!
//! Run with: `cargo run --release --example quickstart`

use facil::core::{DType, FacilSystem, MatrixConfig, PimArch};
use facil::dram::{DramSpec, FunctionalMemory};
use facil::pim::{load_matrix, pim_gemv, store_matrix, PimEngine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An iPhone 15 Pro-like memory system: LPDDR5-6400, 64-bit bus, 8 GB,
    // augmented with AiM-style near-bank PIM.
    let spec = DramSpec::lpddr5_6400(64, 8 << 30);
    let arch = PimArch::aim(&spec.topology);
    let mut sys = FacilSystem::new(spec.clone(), arch);

    // 1. pimalloc: one call places the matrix PIM-optimally and returns a
    //    contiguous virtual address (paper Fig. 7).
    let matrix = MatrixConfig::new(2048, 2048, DType::F16);
    let w = sys.pimalloc(matrix)?;
    println!("pimalloc'd {matrix}:");
    println!("  VA base        : {:#x}", w.va);
    println!("  huge pages     : {}", w.pages.len());
    println!("  selected       : {}", w.decision.scheme);
    println!("  MapID          : {}", w.map_id());
    println!("  partitions     : {}", w.decision.partitions);
    println!("  frontend muxes : {} inputs each", sys.frontend().mux_inputs());

    // 2. The SoC stores the weights through ordinary row-major virtual
    //    addresses — no knowledge of the DRAM layout required.
    let mut mem = FunctionalMemory::new(sys.spec().topology);
    let weights: Vec<f32> =
        (0..matrix.rows * matrix.cols).map(|i| ((i % 13) as f32 - 6.0) * 0.125).collect();
    store_matrix(&mut mem, &sys, &w, &weights).expect("allocation is mapped");

    // 3. The PIM walks the same cells bank by bank and computes y = W x.
    let x: Vec<f32> = (0..matrix.cols).map(|i| ((i % 7) as f32 - 3.0) * 0.25).collect();
    let y = pim_gemv(&mem, &sys, &w, &x);

    // Check against a plain reference GEMV.
    let reference: Vec<f32> = (0..matrix.rows as usize)
        .map(|r| {
            (0..matrix.cols as usize).map(|c| weights[r * matrix.cols as usize + c] * x[c]).sum()
        })
        .collect();
    let max_err = y.iter().zip(&reference).map(|(a, b)| (a - b).abs()).fold(0.0f32, f32::max);
    println!("\nPIM GEMV max error vs reference: {max_err:.2e} (fp16 rounding only)");

    // 4. And the SoC reads the matrix back row-major, intact — this is what
    //    lets it run GEMM without any re-layout.
    assert_eq!(load_matrix(&mem, &sys, &w).expect("allocation is mapped"), weights);
    println!("SoC row-major readback intact: re-layout-free sharing works");

    // 5. How long would that GEMV take on the PIM?
    let engine = PimEngine::new(spec, arch);
    let t = engine.gemv(&w.matrix, &w.decision);
    println!(
        "\nPIM GEMV timing: {:.1} us, internal bandwidth {:.1} GB/s ({}x the external peak)",
        t.time_ns / 1e3,
        t.internal_bw / 1e9,
        (t.internal_bw / engine.spec().peak_bandwidth_bytes_per_sec()).round()
    );
    Ok(())
}
