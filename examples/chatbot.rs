//! Conversation-assistant scenario (the paper's Alpaca evaluation): run a
//! batch of sampled chat queries on the Jetson AGX Orin under every
//! execution strategy and compare responsiveness (TTFT) and total latency
//! (TTLT).
//!
//! Run with: `cargo run --release --example chatbot`

use facil::sim::{geomean_speedup, run_dataset, InferenceSim, Strategy};
use facil::soc::{Platform, PlatformId};
use facil::workloads::Dataset;

fn main() {
    let platform = Platform::get(PlatformId::Jetson);
    println!(
        "platform: {} | model: {} | memory: {:.1} GB/s peak",
        platform.id,
        platform.model_name,
        platform.dram.peak_bandwidth_bytes_per_sec() / 1e9
    );

    let sim = InferenceSim::new(platform).expect("default model fits");
    let dataset = Dataset::alpaca_like(2024, 64);
    println!(
        "dataset: {} queries, geomean prefill {:.0} tokens, geomean decode {:.0} tokens\n",
        dataset.queries.len(),
        dataset.geomean_prefill(),
        dataset.geomean_decode()
    );

    let baseline = run_dataset(&sim, Strategy::HybridStatic, &dataset);
    println!(
        "{:<16} {:>12} {:>12} {:>14} {:>14}",
        "strategy", "TTFT (ms)", "TTLT (ms)", "TTFT speedup", "TTLT speedup"
    );
    for strategy in Strategy::all() {
        let run = run_dataset(&sim, strategy, &dataset);
        println!(
            "{:<16} {:>12.1} {:>12.1} {:>13.2}x {:>13.2}x",
            strategy.to_string(),
            run.geomean_ttft_ns() / 1e6,
            run.geomean_ttlt_ns() / 1e6,
            geomean_speedup(&baseline, &run, true),
            geomean_speedup(&baseline, &run, false),
        );
    }

    // The paper's responsiveness framing (Section III): users perceive a
    // response as instantaneous below 100 ms, and voice assistants need
    // ~250 ms TTFT.
    let facil = run_dataset(&sim, Strategy::FacilDynamic, &dataset);
    let under_100ms = facil.results.iter().filter(|r| r.ttft_ns < 100e6).count() as f64
        / facil.results.len() as f64;
    let under_250ms = facil.results.iter().filter(|r| r.ttft_ns < 250e6).count() as f64
        / facil.results.len() as f64;
    let base_100 = baseline.results.iter().filter(|r| r.ttft_ns < 100e6).count() as f64
        / baseline.results.len() as f64;
    let base_250 = baseline.results.iter().filter(|r| r.ttft_ns < 250e6).count() as f64
        / baseline.results.len() as f64;
    println!("\nresponsiveness (paper Section III thresholds):");
    println!(
        "  TTFT < 100 ms: baseline {:.0}% -> FACIL {:.0}%",
        base_100 * 100.0,
        under_100ms * 100.0
    );
    println!(
        "  TTFT < 250 ms: baseline {:.0}% -> FACIL {:.0}%",
        base_250 * 100.0,
        under_250ms * 100.0
    );
    println!(
        "  prefills offloaded to PIM by FACIL's dynamic policy: {:.0}%",
        facil.pim_prefill_fraction() * 100.0
    );
}
