//! Code-autocompletion scenario (the paper's RealHumanEval evaluation): an
//! IDE fires incremental completion requests at an on-device LLM — here
//! Phi-1.5 on an iPhone 15 Pro — and what matters is how fast the first
//! suggested token appears after each keystroke burst.
//!
//! Run with: `cargo run --release --example code_autocomplete`

use facil::sim::{InferenceSim, Strategy};
use facil::soc::{Platform, PlatformId};
use facil::workloads::Dataset;

fn main() {
    let platform = Platform::get(PlatformId::Iphone);
    let sim = InferenceSim::new(platform).expect("default model fits");
    let session = Dataset::code_autocompletion_like(7, 24);

    println!("autocompletion session on {}, {}:", PlatformId::Iphone, sim.model().name);
    println!(
        "{:>4} {:>8} {:>8} | {:>14} {:>12} {:>12} {:>8}",
        "#", "ctx+", "gen", "baseline TTFT", "FACIL TTFT", "speedup", "on PIM?"
    );

    let mut accepted_with_facil = 0usize;
    let mut accepted_with_baseline = 0usize;
    for (i, q) in session.queries.iter().enumerate() {
        let base = sim.run_query(Strategy::HybridStatic, *q);
        let facil = sim.run_query(Strategy::FacilDynamic, *q);
        // An autocompletion is only useful if it appears before the
        // programmer keeps typing; use the paper's 250 ms bound.
        if facil.ttft_ns < 250e6 {
            accepted_with_facil += 1;
        }
        if base.ttft_ns < 250e6 {
            accepted_with_baseline += 1;
        }
        println!(
            "{:>4} {:>8} {:>8} | {:>11.0} ms {:>9.0} ms {:>11.2}x {:>8}",
            i + 1,
            q.prefill,
            q.decode,
            base.ttft_ns / 1e6,
            facil.ttft_ns / 1e6,
            base.ttft_ns / facil.ttft_ns,
            if facil.prefill_on_pim { "yes" } else { "no" },
        );
    }
    println!(
        "\ncompletions arriving within 250 ms: baseline {}/{} vs FACIL {}/{}",
        accepted_with_baseline,
        session.queries.len(),
        accepted_with_facil,
        session.queries.len(),
    );
    println!("(paper Fig. 15: FACIL reduces code-autocompletion TTFT by 2.63x geomean)");
}
