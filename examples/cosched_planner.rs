//! Co-scheduling planner: given the background (non-LLM) memory traffic a
//! device expects, which PIM integration policy should it use — share every
//! rank with the SoC, or reserve one rank for normal traffic?
//!
//! This explores the paper's "Remaining Challenges" (Section V-C) with the
//! slot-level co-schedule simulator: sharing wins when the device is
//! otherwise idle, reserving wins once background traffic passes a
//! threshold, and the crossover point is exactly what a system integrator
//! would need to know.
//!
//! Run with: `cargo run --release --example cosched_planner`

use facil::sim::{run_cosched, CoschedConfig, CoschedPolicy};
use facil::soc::{Platform, PlatformId};

fn main() {
    let platform = Platform::get(PlatformId::Iphone);
    println!("platform: {} | policy comparison under background SoC traffic\n", platform.id);
    println!(
        "{:>14} | {:>12} {:>12} {:>10} | {:>12} {:>12} | row reopens (shared)",
        "SoC req/cycle", "shared PIM", "reserved PIM", "winner", "shared lat", "reserved lat",
    );

    let mut crossover = None;
    for rate in [0.0, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2] {
        let shared = run_cosched(
            &platform.dram,
            CoschedConfig { policy: CoschedPolicy::Shared, soc_rate: rate, ..Default::default() },
        );
        let reserved = run_cosched(
            &platform.dram,
            CoschedConfig {
                policy: CoschedPolicy::ReservedRank,
                soc_rate: rate,
                ..Default::default()
            },
        );
        let winner =
            if shared.pim_throughput >= reserved.pim_throughput { "shared" } else { "reserved" };
        if winner == "reserved" && crossover.is_none() {
            crossover = Some(rate);
        }
        println!(
            "{:>14.3} | {:>12.2} {:>12.2} {:>10} | {:>9.0} cyc {:>9.0} cyc | {}",
            rate,
            shared.pim_throughput,
            reserved.pim_throughput,
            winner,
            shared.soc_avg_latency,
            reserved.soc_avg_latency,
            shared.pim_row_reopens,
        );
    }

    match crossover {
        Some(rate) => println!(
            "\n=> reserve a rank once background traffic exceeds ~{rate} requests/cycle/channel;\n   \
             below that, sharing both ranks is strictly better for the PIM."
        ),
        None => println!("\n=> sharing both ranks wins at every tested rate."),
    }
    println!(
        "   (NeuPIMs-style dual row buffers would remove the row-reopen interference\n    \
         and make sharing dominant everywhere — see paper Section V-C.)"
    );
}
