//! Acceptance test for nested parallelism across the whole stack.
//!
//! The deepest parallel chain in the workspace: a cluster tick advances
//! every device on the pool workers (`par_map_mut` over cells × devices
//! flattened), a device advance charges a hybrid baseline's weight
//! re-layout, the relayout model's lazily-initialized profile fires
//! `DramSystem::run()` — which is itself a `pool::par_map_mut` over DRAM
//! channels. Under the persistent executor the inner call must run inline
//! on the worker that reached it (no deadlock, no oversubscription), and
//! the report must stay byte-identical to the fully serial run.
//!
//! This file is its own test binary on purpose: it uses the process-global
//! `pool::set_parallelism` knob and counts pool workers via
//! `pool::shutdown`, both of which would race with unrelated tests.

use facil::cluster::{run_cluster, ChaosEvent, ChaosPlan, ClusterConfig};
use facil::serve::{FaultKind, ServeConfig};
use facil::sim::{InferenceSim, Strategy};
use facil::soc::{Platform, PlatformId};
use facil::telemetry::pool;
use facil::workloads::{ArrivalProcess, Dataset};

#[test]
fn cluster_tick_nests_dram_runs_without_deadlock_or_oversubscription() {
    let dataset = Dataset::code_autocompletion_like(42, 24);
    let arrival = ArrivalProcess::Poisson { qps: 8.0 };
    // A PIM fault covering the whole run makes the hybrid baseline charge
    // a weight re-layout, whose lazily-profiled cost model runs a real
    // DramSystem inside whichever device phase touches it first.
    let plan = ChaosPlan {
        events: vec![ChaosEvent::Device {
            device: 0,
            at_s: 0.0,
            kind: FaultKind::PimFault { duration_s: 1e9 },
        }],
        ..ChaosPlan::none()
    };
    let cfg = ClusterConfig {
        serve: ServeConfig {
            strategy: Strategy::HybridDynamic,
            seed: 9,
            fmfi: 0.0,
            ..ServeConfig::default()
        },
        ..ClusterConfig::default()
    };

    let run = |workers: usize| {
        pool::set_parallelism(workers);
        // A fresh sim per run re-arms the relayout profile's OnceLock, so
        // the nested DramSystem::run fires *during* this cluster run — at
        // this worker count — not as a leftover from a previous run.
        let sim = InferenceSim::new(Platform::get(PlatformId::Iphone)).expect("default model fits");
        let report = run_cluster(&sim, &dataset, &arrival, &cfg, &plan).expect("valid cluster");
        let stall_s: f64 = report.cells.iter().map(|c| c.serve.relayout_stall_s).sum();
        (report.to_json(), stall_s)
    };

    // Start from a clean pool so the shutdown count below is this test's.
    pool::shutdown();

    let (serial_json, serial_stall) = run(1);
    assert!(
        serial_stall > 0.0,
        "the PIM fault must stall the hybrid baseline for a relayout — \
         otherwise the nested DramSystem path never ran"
    );
    let (parallel_json, parallel_stall) = run(8);
    pool::set_parallelism(0);

    // No deadlock (we got here), and the schedule is invisible: the nested
    // runs changed nothing observable.
    assert_eq!(parallel_stall, serial_stall);
    assert_eq!(serial_json, parallel_json, "cluster report must not depend on worker count");

    // The serial run is inline end to end (spawns nothing) and the
    // parallel run may use at most `workers - 1` pool helpers beside the
    // submitting thread — nested batches reuse those same workers instead
    // of growing the pool.
    let joined = pool::shutdown();
    assert!(joined >= 1, "the 8-worker run must have spawned persistent workers");
    assert!(joined <= 7, "pool grew past parallelism() - 1 live workers: {joined}");
}
