//! Integration tests of the beyond-paper extensions: paged KV cache +
//! attention-on-PIM, the structural paging stack, serving under load, and
//! cross-model placement.

use facil::core::paging::{AddressSpace, MmapFlags};
use facil::core::{DType, FacilSystem, KvHalf, MapId, MatrixConfig, PagedKvCache, PimArch};
use facil::dram::DramSpec;
use facil::llm::ModelConfig;
use facil::sim::{serve, InferenceSim, ServingConfig, Strategy};
use facil::soc::{Platform, PlatformId};
use facil::workloads::Dataset;

/// The KV cache grows with decode and every slab remains PIM-placed, which
/// is what makes the attention-on-PIM decode path legal.
#[test]
fn kv_cache_supports_attention_on_pim() {
    let spec = DramSpec::lpddr5_6400(64, 8 << 30);
    let arch = PimArch::aim(&spec.topology);
    let mut sys = FacilSystem::new(spec, arch);
    let model = ModelConfig::phi_1_5();
    let kv_dim = model.kv_heads * model.head_dim();
    let mut kv = PagedKvCache::new(model.layers, kv_dim, DType::F16);

    // Simulate a prefill of 100 tokens and a decode of 50.
    kv.append(&mut sys, 100).unwrap();
    for _ in 0..50 {
        kv.append(&mut sys, 1).unwrap();
    }
    assert_eq!(kv.len(), 150);
    // Every cached token row translates through a PIM mapping.
    for token in [0u64, 99, 149] {
        let va = kv.token_va(0, KvHalf::K, token);
        let t = sys.page_table().translate(va).unwrap();
        assert!(t.map_id.is_some(), "KV slab pages must carry a MapID");
    }
    // And the engine-side model agrees attention-on-PIM exists and crosses
    // over at long contexts.
    let sim = InferenceSim::new(Platform::get(PlatformId::Iphone)).unwrap();
    assert!(sim.decode_step_pim_attention_ns(32768) < sim.decode_step_pim_ns(32768));
}

/// The structural mmap/radix stack and the fast FacilSystem agree on what a
/// PIM mapping looks like to software.
#[test]
fn structural_and_fast_paths_agree() {
    let spec = DramSpec::lpddr5_6400(64, 8 << 30);
    let arch = PimArch::aim(&spec.topology);
    let mut fast = FacilSystem::new(spec, arch);
    let alloc = fast.pimalloc(MatrixConfig::new(64, 2048, DType::F16)).unwrap();

    let mut os = AddressSpace::new(64 << 20);
    let va = os.mmap(2 << 20, MmapFlags { huge: true, map_id: Some(alloc.map_id()) }).unwrap();
    let t = os.translate(va + 0x1234).unwrap();
    assert_eq!(t.map_id, Some(alloc.map_id()));
    assert!(t.huge);
    // Both stacks report the same MapID for the same matrix shape, so the
    // memory controller mux would behave identically.
    let t2 = fast.page_table().translate(alloc.va + 0x1234).unwrap();
    assert_eq!(t2.map_id, t.map_id);
}

/// Serving under load preserves the paper-level ordering: FACIL >=
/// hybrid-dynamic >= hybrid-static on p95 TTFT at every tested rate.
#[test]
fn serving_ordering_holds_under_load() {
    let sim = InferenceSim::new(Platform::get(PlatformId::Iphone)).unwrap();
    let dataset = Dataset::alpaca_like(3, 48);
    for qps in [0.1, 0.5, 1.0] {
        let cfg = ServingConfig { arrival_qps: qps, seed: 13 };
        let stat = serve(&sim, Strategy::HybridStatic, &dataset, cfg);
        let dynamic = serve(&sim, Strategy::HybridDynamic, &dataset, cfg);
        let facil = serve(&sim, Strategy::FacilDynamic, &dataset, cfg);
        assert!(facil.ttft_p95_ms <= dynamic.ttft_p95_ms + 1e-9, "qps {qps}");
        assert!(dynamic.ttft_p95_ms <= stat.ttft_p95_ms + 1e-9, "qps {qps}");
    }
}

/// Every built-in model (including the non-paper presets) places on an
/// iPhone-class memory system with at most 3 distinct MapIDs.
#[test]
fn all_models_place_on_iphone_memory() {
    let spec = DramSpec::lpddr5_6400(64, 8 << 30);
    let arch = PimArch::aim(&spec.topology);
    for model in ModelConfig::all() {
        let mut distinct = std::collections::BTreeSet::new();
        for (op, _) in model.all_linears() {
            let m = MatrixConfig::new(op.out_features, op.in_features, DType::F16);
            let d = facil::core::select_mapping_2mb(&m, spec.topology, &arch)
                .unwrap_or_else(|e| panic!("{}/{}: {e}", model.name, op.name));
            distinct.insert(d.map_id);
        }
        assert!(distinct.len() <= 3, "{}: {} MapIDs", model.name, distinct.len());
        assert!(distinct.iter().all(|id| *id < MapId(16)));
    }
}

/// Bank hashing composes with the FACIL stack end to end: a hashed
/// conventional mapping still round-trips data.
#[test]
fn bank_hashed_mapping_roundtrips_data() {
    use facil::core::MappingScheme;
    use facil::dram::FunctionalMemory;
    let spec = DramSpec::lpddr5_6400(64, 8 << 30);
    let scheme = MappingScheme::conventional(spec.topology).with_bank_hash();
    let mut mem = FunctionalMemory::new(spec.topology);
    let data: Vec<u8> = (0..4096).map(|i| (i % 251) as u8).collect();
    mem.write_bytes(&scheme, 0x10_0000, &data).unwrap();
    assert_eq!(mem.read_bytes(&scheme, 0x10_0000, data.len()).unwrap(), data);
}
