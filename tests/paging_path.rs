//! Integration tests of the OS/hardware path: extended mmap semantics,
//! TLB transparency with MapIDs, frontend mux limits, and mixing PIM and
//! conventional allocations in one address space.

use facil::core::paging::{PageTable, Tlb};
use facil::core::{DType, FacilError, FacilSystem, MapId, MatrixConfig, PimArch};
use facil::dram::DramSpec;

fn iphone_system() -> FacilSystem {
    let spec = DramSpec::lpddr5_6400(64, 8 << 30);
    let arch = PimArch::aim(&spec.topology);
    FacilSystem::new(spec, arch)
}

/// A TLB in front of the page table returns identical translations for
/// pimalloc'd regions — FACIL needs no TLB changes (paper Section V-A).
#[test]
fn tlb_serves_mapid_translations_unchanged() {
    let mut pt = PageTable::new();
    pt.map_huge_pim(0x4000_0000, 0x1200_0000, MapId(2));
    pt.map_huge(0x4020_0000, 0x1240_0000);
    let mut tlb = Tlb::new(16, 4);
    for offset in [0u64, 0x1234, 0x1F_FFFF] {
        for base in [0x4000_0000u64, 0x4020_0000] {
            let direct = pt.translate(base + offset).unwrap();
            let cached = tlb.translate(base + offset, &pt).unwrap();
            assert_eq!(direct, cached);
        }
    }
    assert!(tlb.stats().hits >= 4, "huge-page entries must be reused");
}

/// Virtual addresses from pimalloc and alloc_conventional translate through
/// different mappings but the same physical memory pool, and freeing
/// returns the exact number of pages.
#[test]
fn mixed_address_space_accounting() {
    let mut sys = iphone_system();
    let total = sys.free_bytes();
    let w = sys.pimalloc(MatrixConfig::new(1024, 4096, DType::F16)).unwrap();
    let scratch = sys.alloc_conventional(6 << 20).unwrap();
    let used = w.reserved_bytes() + (6 << 20);
    assert_eq!(sys.free_bytes(), total - used);
    // Both regions translate.
    sys.translate_va(w.va + 4096).unwrap();
    sys.translate_va(scratch + 4096).unwrap();
    sys.free(&w);
    assert_eq!(sys.free_bytes(), total - (6 << 20));
}

/// The frontend refuses a fifth distinct mapping like real hardware would,
/// and pimalloc surfaces that as an error instead of mis-mapping.
#[test]
fn frontend_slot_exhaustion_surfaces_cleanly() {
    let spec = DramSpec::lpddr5_6400(64, 8 << 30);
    let arch = PimArch::aim(&spec.topology);
    // Only 1 hardware slot.
    let mut sys = FacilSystem::with_slots(spec, arch, 1);
    // cols 2048 -> MapID 1.
    sys.pimalloc(MatrixConfig::new(64, 2048, DType::F16)).unwrap();
    // cols 4096 -> MapID 2: needs a second slot.
    let err = sys.pimalloc(MatrixConfig::new(64, 4096, DType::F16)).unwrap_err();
    assert_eq!(err, FacilError::FrontendFull { slots: 1 });
    // Same MapID still works.
    sys.pimalloc(MatrixConfig::new(32, 2048, DType::F16)).unwrap();
}

/// Exhausting physical memory mid-allocation rolls back cleanly.
#[test]
fn oom_rolls_back_partial_allocations() {
    let mut sys = iphone_system();
    let free_before = sys.free_bytes();
    // Ask for more than the 8 GB the system has.
    let huge = MatrixConfig::new(3 << 20, 2048, DType::F16); // ~12 GB padded
    let err = sys.pimalloc(huge).unwrap_err();
    assert!(matches!(err, FacilError::OutOfMemory { .. }));
    assert_eq!(sys.free_bytes(), free_before, "partial pages must be returned");
    // And the system still works afterwards.
    sys.pimalloc(MatrixConfig::new(64, 2048, DType::F16)).unwrap();
}

/// Unmapped VAs fault through the whole path.
#[test]
fn unmapped_va_faults() {
    let sys = iphone_system();
    assert!(matches!(sys.translate_va(0xdead_0000), Err(FacilError::NotMapped { .. })));
}
