//! Integration tests of the mapping-search subsystem against the paper's
//! platforms: the searched optimizer must *reproduce* the closed-form
//! Fig. 13 picks on every baseline model shape, *beat* them on a shape the
//! paper never tuned for, and plug back into the end-to-end inference
//! simulator through the selector adapter.

use facil::core::{DType, MatrixConfig};
use facil::llm::ModelConfig;
use facil::mapsearch::{
    search_workload, PuOrder, SearchConfig, SearchReport, TensorSpec, WorkloadProfile,
};
use facil::sim::InferenceSim;
use facil::soc::{Platform, PlatformId};

/// Distinct weight shapes of the platform's paper model (instance counts
/// merged), plus a MoE-style expert slice no Fig. 13 configuration uses.
fn profile_for(platform: &Platform) -> WorkloadProfile {
    let model = ModelConfig::by_name(platform.model_name);
    let mut tensors: Vec<TensorSpec> = Vec::new();
    for (op, instances) in model.all_linears() {
        let matrix = MatrixConfig::new(op.out_features, op.in_features, DType::F16);
        match tensors.iter_mut().find(|t| t.matrix == matrix) {
            Some(t) => t.instances += instances,
            None => tensors.push(TensorSpec::new(op.name, matrix).with_instances(instances)),
        }
    }
    tensors.push(TensorSpec::new("moe-expert", MatrixConfig::new(64, 4096, DType::F16)));
    WorkloadProfile::decode_only(format!("{}-decode", model.name), tensors)
}

/// On all four paper platforms, every baseline tensor retains the paper's
/// closed-form pick (the epsilon incumbent rule reproduces Fig. 13) while
/// the skinny MoE slice is displaced with a measured win above threshold.
#[test]
fn baselines_reproduced_and_moe_displaced_on_all_platforms() {
    let config = SearchConfig::default();
    for id in PlatformId::all() {
        let platform = Platform::get(id);
        let profile = profile_for(&platform);
        let results =
            search_workload(&platform.dram, &platform.pim_arch, &profile, &config).unwrap();
        for r in &results {
            if r.tensor == "moe-expert" {
                assert!(r.displaced, "{id}: searched mapping must beat the paper on MoE");
                assert!(
                    r.improvement > config.improvement_threshold,
                    "{id}: improvement {} below threshold",
                    r.improvement
                );
                assert!(
                    r.best_measured.score < r.paper_measured.score,
                    "{id}: displacement must be backed by measured cycles"
                );
            } else {
                assert!(!r.displaced, "{id}: baseline {} displaced", r.tensor);
                assert_eq!(r.best, r.paper, "{id}: baseline {} pick differs", r.tensor);
            }
        }
    }
}

/// The iPhone MoE win comes from the PU traversal order, not from picking
/// a different MapID: the paper's window size is right, but its fixed
/// bank→rank→channel order strands half the channels on a half-filled
/// window. Roughly half the measured cycles come back.
#[test]
fn iphone_moe_win_is_pu_order_at_same_map_id() {
    let platform = Platform::get(PlatformId::Iphone);
    let profile = WorkloadProfile::decode_only(
        "moe-only",
        vec![TensorSpec::new("moe-expert", MatrixConfig::new(64, 4096, DType::F16))],
    );
    let config = SearchConfig::default();
    let results = search_workload(&platform.dram, &platform.pim_arch, &profile, &config).unwrap();
    let r = &results[0];
    assert!(r.displaced);
    assert_eq!(r.best.map_id, r.paper.map_id, "the window size is not the problem");
    assert_ne!(r.best.pu_order, PuOrder::paper(), "the traversal order is");
    assert!(r.improvement > 0.3, "expected a large win, got {}", r.improvement);
}

/// The `SearchReport -> MappingDecision` adapter drives the end-to-end
/// simulator: with every baseline shape retained, the searched-selector
/// sim must agree exactly with the paper-rule sim.
#[test]
fn selector_adapter_drives_inference_sim() {
    let platform = Platform::get(PlatformId::Iphone);
    let profile = profile_for(&platform);
    let config = SearchConfig::default();
    let results = search_workload(&platform.dram, &platform.pim_arch, &profile, &config).unwrap();
    let report = SearchReport::new(
        "iphone",
        &profile.name,
        &config,
        platform.dram.topology,
        platform.pim_arch,
        results,
    )
    .unwrap();

    let model = ModelConfig::by_name(platform.model_name);
    let searched =
        InferenceSim::with_selector(platform.clone(), model, DType::F16, report.selector())
            .unwrap();
    let paper = InferenceSim::new(platform).unwrap();
    for ctx in [128, 2048, 32768] {
        assert_eq!(
            searched.decode_step_pim_ns(ctx),
            paper.decode_step_pim_ns(ctx),
            "paper-shaped weights must simulate identically under the searched selector"
        );
    }
}
