//! Golden regression tests: the headline reproduction numbers recorded in
//! EXPERIMENTS.md, with tolerance bands. If a refactor or recalibration
//! moves any of these, the change is deliberate — update EXPERIMENTS.md and
//! these constants together.

use facil_bench::{
    fig03_pim_speedup, fig13_ttft, fig15_datasets, fig16_datasets, headline_geomeans,
};
use facil_sim::InferenceSim;
use facil_soc::{Platform, PlatformId};

fn within(actual: f64, golden: f64, tol: f64, what: &str) {
    assert!(
        (actual / golden - 1.0).abs() < tol,
        "{what}: measured {actual:.3}, golden {golden:.3} (±{:.0}%)",
        tol * 100.0
    );
}

/// Fig. 13 geomean TTFT speedups per platform (EXPERIMENTS.md).
#[test]
fn golden_fig13_geomeans() {
    let golden = [2.57, 2.50, 1.76, 2.44];
    let series = fig13_ttft(&[8, 16, 32, 64, 128]);
    for (s, g) in series.iter().zip(golden) {
        within(s.geomean, g, 0.05, &format!("fig13 {}", s.platform));
    }
}

/// Fig. 3 headline: PIM over ideal NPU ~2.9x (paper 3.32x).
#[test]
fn golden_fig03_ratio() {
    let r = fig03_pim_speedup(64);
    within(r.speedup_vs_ideal_npu, 2.88, 0.05, "fig3 PIM vs ideal NPU");
    within(r.speedup_vs_soc, 3.85, 0.05, "fig3 PIM vs GPU");
}

/// Jetson re-layout cost ~163 ms for the Llama3-8B linear weights.
#[test]
fn golden_jetson_relayout() {
    let sim = InferenceSim::new(Platform::get(PlatformId::Jetson)).unwrap();
    within(sim.relayout_ns() / 1e6, 163.0, 0.08, "Jetson re-layout ms");
}

/// Figs. 15/16 dataset headlines (seed 42, 128 queries).
#[test]
fn golden_dataset_headlines() {
    let ttft = headline_geomeans(&fig15_datasets(42, 128));
    within(ttft[0].1, 2.79, 0.05, "fig15 alpaca-like");
    within(ttft[1].1, 3.35, 0.05, "fig15 code-autocompletion-like");
    let ttlt = headline_geomeans(&fig16_datasets(42, 128));
    within(ttlt[0].1, 1.10, 0.05, "fig16 alpaca-like");
    within(ttlt[1].1, 1.27, 0.05, "fig16 code-autocompletion-like");
}
