//! End-to-end integration tests spanning every crate: pimalloc → page
//! table → frontend mux → DRAM cells → PIM compute, and the full
//! strategy-level evaluation on all four paper platforms.

use facil::core::{DType, FacilSystem, MatrixConfig, PimArch, PlacementChecker};
use facil::dram::{DramSpec, FunctionalMemory};
use facil::llm::ModelConfig;
use facil::pim::{load_matrix, pim_gemv, store_matrix, PimEngine};
use facil::sim::{InferenceSim, Strategy};
use facil::soc::{Platform, PlatformId};
use facil::workloads::{Dataset, Query};

/// The full data path, with values: SoC writes row-major through VA, PIM
/// computes on device addresses, SoC reads back row-major — on an
/// iPhone-sized system.
#[test]
fn soc_writes_pim_computes_soc_reads() {
    let spec = DramSpec::lpddr5_6400(64, 8 << 30);
    let arch = PimArch::aim(&spec.topology);
    let mut sys = FacilSystem::new(spec, arch);

    let matrix = MatrixConfig::new(128, 2048, DType::F16);
    let alloc = sys.pimalloc(matrix).unwrap();
    let mut mem = FunctionalMemory::new(sys.spec().topology);

    let w: Vec<f32> =
        (0..matrix.rows * matrix.cols).map(|i| ((i % 9) as f32 - 4.0) * 0.5).collect();
    let x: Vec<f32> = (0..matrix.cols).map(|i| ((i % 3) as f32 - 1.0) * 0.25).collect();
    store_matrix(&mut mem, &sys, &alloc, &w).unwrap();

    // PIM side.
    let y = pim_gemv(&mem, &sys, &alloc, &x);
    for r in 0..matrix.rows as usize {
        let want: f32 =
            (0..matrix.cols as usize).map(|c| w[r * matrix.cols as usize + c] * x[c]).sum();
        assert!((y[r] - want).abs() <= want.abs() * 1e-3 + 1e-3, "row {r}: {} vs {want}", y[r]);
    }
    // SoC side, re-layout-free.
    assert_eq!(load_matrix(&mem, &sys, &alloc).unwrap(), w);
}

/// Every weight of every paper model is placeable on its paper platform,
/// passes the placement validators, and the whole model fits in the
/// 4-slot frontend mux.
#[test]
fn all_paper_models_place_on_their_platforms() {
    for id in PlatformId::all() {
        let platform = Platform::get(id);
        let model = ModelConfig::by_name(platform.model_name);
        let mut sys = FacilSystem::new(platform.dram.clone(), platform.pim_arch);
        let mut distinct = std::collections::BTreeSet::new();
        for (op, _) in model.all_linears() {
            // One row of each shape suffices to exercise mapping/placement
            // without allocating 16 GB of simulated frames per weight.
            let matrix = MatrixConfig::new(op.out_features.min(1024), op.in_features, DType::F16);
            let alloc = sys.pimalloc(matrix).unwrap_or_else(|e| panic!("{id}/{}: {e}", op.name));
            distinct.insert(alloc.map_id());
            let checker = PlacementChecker::new(&matrix, &alloc.decision, &platform.pim_arch, 0);
            let report = checker.check_all().unwrap_or_else(|e| panic!("{id}/{}: {e}", op.name));
            assert_eq!(report.pus_per_row, alloc.decision.partitions, "{id}/{}", op.name);
            sys.free(&alloc);
        }
        assert!(
            distinct.len() <= 3,
            "{id}: {} distinct MapIDs exceed the paper's mux",
            distinct.len()
        );
    }
}

/// Strategy-level invariants hold on every platform: FACIL strictly beats
/// the hybrid-static baseline on TTFT, dynamic never loses to static, and
/// TTLT ordering matches the paper.
#[test]
fn strategy_invariants_on_all_platforms() {
    for id in PlatformId::all() {
        let sim = InferenceSim::new(Platform::get(id)).unwrap();
        for q in [Query { prefill: 8, decode: 16 }, Query { prefill: 128, decode: 16 }] {
            let soc = sim.run_query(Strategy::SocOnly, q);
            let stat = sim.run_query(Strategy::HybridStatic, q);
            let dynamic = sim.run_query(Strategy::HybridDynamic, q);
            let facil = sim.run_query(Strategy::FacilStatic, q);
            let facil_dyn = sim.run_query(Strategy::FacilDynamic, q);

            assert!(facil.ttft_ns < stat.ttft_ns, "{id} {q:?}: FACIL must beat the baseline TTFT");
            assert!(dynamic.ttft_ns <= stat.ttft_ns + 1.0, "{id} {q:?}: dynamic never loses");
            assert!(facil_dyn.ttft_ns <= facil.ttft_ns + 1.0, "{id} {q:?}");
            // Decode on PIM: every PIM-decoding strategy shares TTLT-TTFT.
            let decode_stat = stat.ttlt_ns - stat.ttft_ns;
            let decode_facil = facil.ttlt_ns - facil.ttft_ns;
            assert!((decode_stat - decode_facil).abs() < 1.0, "{id} {q:?}");
            // SoC-only decode is slower than PIM decode.
            assert!(soc.ttlt_ns - soc.ttft_ns > decode_facil, "{id} {q:?}");
        }
    }
}

/// The TTFT advantage of FACIL equals the re-layout cost the baseline pays
/// (plus the small Table III slowdown), on every platform.
#[test]
fn facil_gap_is_the_relayout_cost() {
    for id in PlatformId::all() {
        let sim = InferenceSim::new(Platform::get(id)).unwrap();
        let p = 32;
        let (base, relayout, _) = sim.prefill_ns(Strategy::HybridStatic, p);
        let (facil, zero, _) = sim.prefill_ns(Strategy::FacilStatic, p);
        assert_eq!(zero, 0.0);
        assert!(relayout > 0.0, "{id}");
        let gap = base - facil;
        // The gap is the re-layout minus the layout-slowdown penalty FACIL
        // pays on its GEMMs; it must be within 5% of the re-layout cost.
        assert!((gap / relayout - 1.0).abs() < 0.05, "{id}: gap {gap} vs relayout {relayout}");
    }
}

/// Dataset sampling and evaluation are deterministic end to end.
#[test]
fn experiments_are_deterministic() {
    let sim = InferenceSim::new(Platform::get(PlatformId::Iphone)).unwrap();
    let d1 = Dataset::code_autocompletion_like(99, 16);
    let d2 = Dataset::code_autocompletion_like(99, 16);
    assert_eq!(d1, d2);
    let a = facil::sim::run_dataset(&sim, Strategy::FacilDynamic, &d1);
    let b = facil::sim::run_dataset(&sim, Strategy::FacilDynamic, &d2);
    assert_eq!(a.results, b.results);
}

/// The PIM engine's internal bandwidth exceeds the external peak on every
/// platform (the premise of Figs. 3/13-16).
#[test]
fn pim_internal_bandwidth_exceeds_external_everywhere() {
    for id in PlatformId::all() {
        let platform = Platform::get(id);
        let engine = PimEngine::new(platform.dram.clone(), platform.pim_arch);
        let model = ModelConfig::by_name(platform.model_name);
        let matrix = MatrixConfig::new(model.hidden, model.hidden, DType::F16);
        let d =
            facil::core::select_mapping_2mb(&matrix, platform.dram.topology, &platform.pim_arch)
                .unwrap();
        let t = engine.gemv(&matrix, &d);
        let external = platform.dram.peak_bandwidth_bytes_per_sec();
        assert!(t.internal_bw > 4.0 * external, "{id}: {:.2e} vs {:.2e}", t.internal_bw, external);
    }
}
