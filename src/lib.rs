//! # facil
//!
//! Facade crate for the FACIL (HPCA 2025) reproduction: *Flexible DRAM
//! Address Mapping for SoC-PIM Cooperative On-device LLM Inference*.
//!
//! Re-exports the whole workspace under stable module names:
//!
//! * [`dram`] — cycle-level LPDDR5/5X DRAM simulator,
//! * [`core`] — the FACIL contribution: mapping schemes, MapID selector,
//!   `pimalloc`, OS paging, memory-controller frontend,
//! * [`pim`] — AiM-style near-bank PIM execution engine,
//! * [`soc`] — SoC processor roofline models and the paper's four platforms,
//! * [`llm`] — LLM workload model (Llama3-8B, OPT-6.7B, Phi-1.5),
//! * [`workloads`] — synthetic dataset samplers (conversation and code
//!   autocompletion),
//! * [`sim`] — end-to-end SoC-PIM inference strategies and TTFT/TTLT
//!   metrics,
//! * [`serve`] — discrete-event serving simulator: continuous batching,
//!   admission control, SLO metrics, multi-device fleets,
//! * [`cluster`] — fault-tolerant cluster serving: hierarchical cells,
//!   two-tier routing, tenant QoS, cluster-scale chaos testing, and
//!   SLO-burn autoscaling,
//! * [`mapsearch`] — workload-profile-driven mapping search over the
//!   MapID / PU-order / bank-hash candidate space, with an analytic cost
//!   model cross-checked by cycle-accurate replays,
//! * [`fidelity`] — HW/SW-integrated functional PIM simulation: bit-exact
//!   replay of the all-bank command stream over a bank-sliced DRAM content
//!   model, plus end-to-end FACIL-vs-conventional token equivalence,
//! * [`telemetry`] — unified observability: trace spans on simulated time
//!   with a Chrome/Perfetto exporter, a metrics registry, run manifests,
//!   and the workspace's shared JSON writer.
//!
//! See the `examples/` directory for runnable end-to-end scenarios and
//! `crates/bench` for the per-figure experiment regenerators.

pub use facil_cluster as cluster;
pub use facil_core as core;
pub use facil_dram as dram;
pub use facil_fidelity as fidelity;
pub use facil_llm as llm;
pub use facil_mapsearch as mapsearch;
pub use facil_pim as pim;
pub use facil_serve as serve;
pub use facil_sim as sim;
pub use facil_soc as soc;
pub use facil_telemetry as telemetry;
pub use facil_workloads as workloads;
