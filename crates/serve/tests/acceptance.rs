//! Acceptance tests for the serving subsystem: the claims the PR makes
//! (continuous batching sustains more load than FCFS at equal tail
//! latency; admission control bounds the tail past saturation) hold as
//! executable checks, not just bench-output prose.

use facil_serve::{
    run_fleet_with_faults, run_serving, FaultEvent, FaultKind, FaultPlan, FleetConfig, Routing,
    ServeConfig,
};
use facil_sim::{serve, InferenceSim, ServingConfig, Strategy};
use facil_soc::{Platform, PlatformId};
use facil_workloads::{ArrivalProcess, Dataset};
use std::sync::OnceLock;

fn sim() -> &'static InferenceSim {
    static SIM: OnceLock<InferenceSim> = OnceLock::new();
    SIM.get_or_init(|| {
        InferenceSim::new(Platform::get(PlatformId::Iphone)).expect("default model fits")
    })
}

/// Continuous batching sustains a strictly higher offered rate than the
/// FCFS run-to-completion baseline at the same p95-TTFT budget.
#[test]
fn continuous_batching_sustains_higher_qps_than_fcfs() {
    let d = Dataset::code_autocompletion_like(42, 96);
    let strategy = Strategy::FacilDynamic;
    // SLO budget: 4x the essentially-unloaded FCFS tail.
    let light = serve(sim(), strategy, &d, ServingConfig { arrival_qps: 0.2, seed: 9 });
    let target_p95_ms = 4.0 * light.ttft_p95_ms;

    let rates = [0.2, 0.4, 0.8, 1.6, 3.2, 6.4, 12.8, 25.6];
    let fcfs_max = rates
        .iter()
        .copied()
        .filter(|&qps| {
            serve(sim(), strategy, &d, ServingConfig { arrival_qps: qps, seed: 9 }).ttft_p95_ms
                <= target_p95_ms
        })
        .fold(0.0f64, f64::max);
    // Unbounded queue: the comparison is pure scheduling, not shedding.
    let cfg =
        ServeConfig { strategy, seed: 9, queue_cap: 1 << 20, fmfi: 0.0, ..ServeConfig::default() };
    let cb_max = rates
        .iter()
        .copied()
        .filter(|&qps| {
            let r = run_serving(sim(), &d, &ArrivalProcess::Poisson { qps }, cfg).unwrap();
            assert_eq!(r.shed, 0, "unbounded queue must not shed");
            r.ttft_ms.p95 <= target_p95_ms
        })
        .fold(0.0f64, f64::max);

    assert!(fcfs_max > 0.0, "FCFS must sustain at least the lightest rate");
    assert!(
        cb_max > fcfs_max,
        "continuous batching sustained {cb_max} qps, FCFS {fcfs_max} qps, \
         at p95 TTFT <= {target_p95_ms:.0} ms"
    );
}

/// With a bounded admission queue, pushing the offered rate far past
/// saturation barely moves the p95 TTFT of served requests (the excess is
/// shed instead of queued), while an unbounded queue lets the tail grow
/// with the backlog.
#[test]
fn admission_control_bounds_tail_latency_past_saturation() {
    let d = Dataset::code_autocompletion_like(42, 96);
    let bounded = |qps: f64| {
        let cfg = ServeConfig { seed: 9, queue_cap: 16, fmfi: 0.0, ..ServeConfig::default() };
        run_serving(sim(), &d, &ArrivalProcess::Poisson { qps }, cfg).unwrap()
    };
    let saturated = bounded(16.0);
    let overloaded = bounded(64.0);
    assert!(saturated.shed > 0, "16 qps must already saturate one device");
    assert!(overloaded.shed > saturated.shed);
    assert_eq!(overloaded.completed + overloaded.shed, overloaded.offered);
    // The served tail stays within a small factor even at 4x the load: the
    // queue bound caps how long any admitted request can have waited.
    assert!(
        overloaded.ttft_ms.p95 <= 2.5 * saturated.ttft_ms.p95,
        "bounded queue: p95 {} ms at 64 qps vs {} ms at 16 qps",
        overloaded.ttft_ms.p95,
        saturated.ttft_ms.p95
    );

    // Same overload with an unbounded queue: everything is served, but the
    // tail absorbs the whole backlog.
    let unbounded_cfg =
        ServeConfig { seed: 9, queue_cap: 1 << 20, fmfi: 0.0, ..ServeConfig::default() };
    let unbounded =
        run_serving(sim(), &d, &ArrivalProcess::Poisson { qps: 64.0 }, unbounded_cfg).unwrap();
    assert_eq!(unbounded.shed, 0);
    assert!(
        unbounded.ttft_ms.p95 > overloaded.ttft_ms.p95,
        "unbounded p95 {} ms must exceed bounded p95 {} ms",
        unbounded.ttft_ms.p95,
        overloaded.ttft_ms.p95
    );
    // Goodput is what admission control trades the tail against.
    assert!(unbounded.completed > overloaded.completed);
}

/// The paper's degraded-mode claim as an executable check: a PIM-unit
/// fault leaves FACIL's weights SoC-readable, so it keeps serving
/// immediately at SoC GEMV speed with bounded TTFT inflation, while the
/// hybrid baseline must stall for a full weight re-layout before it can
/// serve again (and pay it once more to come back).
#[test]
fn facil_serves_through_pim_fault_while_hybrid_stalls_for_relayout() {
    // Light load: the degraded (SoC-speed) device must still keep up, so
    // the TTFT comparison measures service speed, not queue blow-up.
    let d = Dataset::code_autocompletion_like(7, 32);
    let arrival = ArrivalProcess::Poisson { qps: 0.05 };
    let fleet = FleetConfig { devices: 1, routing: Routing::RoundRobin };
    // The PIM unit is down for essentially the whole run.
    let plan = FaultPlan {
        events: vec![FaultEvent {
            device: 0,
            at_s: 2.0,
            kind: FaultKind::PimFault { duration_s: 600.0 },
        }],
        ..FaultPlan::none()
    };
    let run = |strategy: Strategy, plan: &FaultPlan| {
        let cfg = ServeConfig {
            strategy,
            seed: 9,
            queue_cap: 1 << 20,
            fmfi: 0.0,
            ..ServeConfig::default()
        };
        run_fleet_with_faults(sim(), &d, &arrival, cfg, fleet, plan).unwrap()
    };
    let facil_clean = run(Strategy::FacilDynamic, &FaultPlan::none());
    let facil_fault = run(Strategy::FacilDynamic, &plan);
    let hybrid_fault = run(Strategy::HybridStatic, &plan);

    // FACIL keeps serving: nothing shed, positive goodput, zero relayout
    // stall, and real time spent in degraded mode.
    assert_eq!(facil_fault.shed, 0);
    assert_eq!(facil_fault.completed, facil_fault.offered);
    assert!(facil_fault.goodput_qps > 0.0);
    assert_eq!(facil_fault.relayout_stall_s, 0.0);
    assert!(facil_fault.degraded_s > 0.0, "the fault window must be exercised");
    // Bounded TTFT inflation: FACIL prefill already runs on the SoC over
    // the PIM-optimized layout, so the fault moves the tail by at most a
    // small factor (decode slows to SoC GEMV, prefill barely changes).
    assert!(
        facil_fault.ttft_ms.p95 <= 4.0 * facil_clean.ttft_ms.p95,
        "degraded p95 TTFT {} ms vs clean {} ms: inflation must stay bounded",
        facil_fault.ttft_ms.p95,
        facil_clean.ttft_ms.p95
    );
    // The hybrid baseline pays the full weight re-layout on the serving
    // clock before it can serve through the same window.
    assert!(hybrid_fault.relayout_stall_s > 0.0, "hybrid must stall for re-layout on a PIM fault");
    assert!(facil_fault.relayout_stall_s < hybrid_fault.relayout_stall_s);
}
