//! Property-based tests of the serving simulator's accounting and
//! determinism invariants.

use facil_serve::{
    run_fleet, run_fleet_with_faults, run_fleet_with_faults_traced, run_serving, FaultPlan,
    FaultRates, FleetConfig, Routing, ServeConfig,
};
use facil_sim::InferenceSim;
use facil_soc::{Platform, PlatformId};
use facil_telemetry::RingSink;
use facil_workloads::{ArrivalProcess, Dataset};
use proptest::prelude::*;
use std::cell::RefCell;
use std::collections::BTreeSet;
use std::rc::Rc;
use std::sync::OnceLock;

/// One shared simulator (construction runs a DRAM simulation; reuse it).
fn sim() -> &'static InferenceSim {
    static SIM: OnceLock<InferenceSim> = OnceLock::new();
    SIM.get_or_init(|| {
        InferenceSim::new(Platform::get(PlatformId::Iphone)).expect("default model fits")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// No request is ever silently dropped: every offered id shows up
    /// exactly once, as completed or shed, on any fleet shape.
    #[test]
    fn every_request_completes_or_is_explicitly_shed(
        seed in 0u64..1_000,
        n in 1usize..24,
        qps in 0.5f64..16.0,
        devices in 1usize..4,
        queue_cap in 1usize..12,
        max_batch in 1usize..6,
        chunk in 8u64..128,
        least_loaded in any::<bool>(),
    ) {
        let d = Dataset::code_autocompletion_like(seed, n);
        let cfg = ServeConfig {
            seed,
            queue_cap,
            max_batch,
            chunk_tokens: chunk,
            fmfi: 0.0,
            ..ServeConfig::default()
        };
        let routing = if least_loaded { Routing::LeastLoaded } else { Routing::RoundRobin };
        let r = run_fleet(
            sim(),
            &d,
            &ArrivalProcess::Poisson { qps },
            cfg,
            FleetConfig { devices, routing },
        ).unwrap();
        prop_assert_eq!(r.offered, n);
        prop_assert_eq!(r.completed + r.shed, r.offered);
        prop_assert_eq!(
            r.shed_queue_full
                + r.shed_oversized
                + r.shed_no_memory
                + r.shed_failed
                + r.shed_deadline,
            r.shed
        );
        let ids: BTreeSet<u64> = r
            .requests
            .iter()
            .map(|q| q.id)
            .chain(r.sheds.iter().map(|s| s.id))
            .collect();
        prop_assert_eq!(ids.len(), n, "an id was double-counted");
        prop_assert_eq!(ids, (0..n as u64).collect::<BTreeSet<u64>>());
        // Per-device counts agree with the flat lists.
        let dev_completed: usize = r.devices.iter().map(|d| d.completed).sum();
        let dev_shed: usize = r.devices.iter().map(|d| d.shed).sum();
        prop_assert_eq!(dev_completed, r.completed);
        prop_assert_eq!(dev_shed, r.shed);
    }

    /// Utilization is a fraction of the span, fleet-wide and per device,
    /// and latency records are internally consistent.
    #[test]
    fn utilization_and_latency_records_are_well_formed(
        seed in 0u64..1_000,
        n in 1usize..24,
        qps in 0.5f64..16.0,
        devices in 1usize..4,
    ) {
        let d = Dataset::code_autocompletion_like(seed, n);
        let cfg = ServeConfig { seed, fmfi: 0.0, ..ServeConfig::default() };
        let r = run_fleet(
            sim(),
            &d,
            &ArrivalProcess::Poisson { qps },
            cfg,
            FleetConfig { devices, routing: Routing::LeastLoaded },
        ).unwrap();
        prop_assert!(r.utilization >= 0.0 && r.utilization <= 1.0 + 1e-9);
        for dev in &r.devices {
            prop_assert!(dev.utilization >= 0.0 && dev.utilization <= 1.0 + 1e-9);
        }
        prop_assert!(r.goodput_qps <= r.offered_qps + 1e-12);
        for q in &r.requests {
            prop_assert!(q.admitted_s >= q.arrival_s - 1e-12);
            prop_assert!(q.ttft_ms > 0.0);
            prop_assert!(q.ttlt_ms >= q.ttft_ms - 1e-12);
        }
        // One inter-token sample per generated token past the first.
        let decode_total: u64 = r.requests.iter().map(|q| q.decode).sum();
        prop_assert_eq!(r.tbt_ms.count as u64, decode_total);
    }

    /// Byte-identical determinism: the same inputs give the same JSON.
    #[test]
    fn serving_runs_are_byte_identical_across_repeats(
        seed in 0u64..1_000,
        n in 1usize..16,
        qps in 0.5f64..8.0,
        fmfi in 0.0f64..0.9,
    ) {
        let d = Dataset::alpaca_like(seed, n);
        let cfg = ServeConfig { seed, fmfi, ..ServeConfig::default() };
        let arrival = ArrivalProcess::Bursty { qps, burst: 3 };
        let a = run_serving(sim(), &d, &arrival, cfg).unwrap();
        let b = run_serving(sim(), &d, &arrival, cfg).unwrap();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.to_json(), b.to_json());
    }

    /// For a fixed seed, Poisson arrival times scale as 1/qps, so raising
    /// the offered rate only compresses the schedule: mean TTFT is monotone
    /// non-decreasing in the arrival rate when nothing is shed.
    #[test]
    fn ttft_is_monotone_in_offered_load(
        seed in 0u64..1_000,
        n in 2usize..16,
        qps in 2.0f64..32.0,
    ) {
        let d = Dataset::code_autocompletion_like(seed, n);
        // queue_cap >= n: nothing is shed, both runs serve every request.
        let cfg = ServeConfig { seed, queue_cap: 1 << 20, fmfi: 0.0, ..ServeConfig::default() };
        let light = run_serving(sim(), &d, &ArrivalProcess::Poisson { qps: 0.2 }, cfg).unwrap();
        let heavy = run_serving(sim(), &d, &ArrivalProcess::Poisson { qps }, cfg).unwrap();
        prop_assert_eq!(light.shed, 0);
        prop_assert_eq!(heavy.shed, 0);
        prop_assert!(
            heavy.ttft_ms.mean >= light.ttft_ms.mean * 0.999,
            "mean TTFT fell from {} to {} when load rose to {} qps",
            light.ttft_ms.mean,
            heavy.ttft_ms.mean,
            qps
        );
    }

    /// Conservation survives arbitrary fault injection: crashes, freezes,
    /// PIM faults, KV faults, deadlines, and bounded retries never lose or
    /// double-count a request — every offered id is completed or shed with
    /// an explicit reason, exactly once.
    #[test]
    fn conservation_holds_under_random_faults(
        seed in 0u64..1_000,
        fault_seed in 0u64..1_000,
        n in 1usize..24,
        qps in 0.5f64..16.0,
        devices in 1usize..4,
        crash_per_s in 0.0f64..0.8,
        pim_per_s in 0.0f64..0.8,
        kv_per_s in 0.0f64..0.8,
        max_retries in 0u32..4,
        deadline_on in any::<bool>(),
    ) {
        let d = Dataset::code_autocompletion_like(seed, n);
        let cfg = ServeConfig { seed, fmfi: 0.0, ..ServeConfig::default() };
        let rates = FaultRates {
            crash_per_s,
            pim_per_s,
            kv_per_s,
            mean_outage_s: 0.4,
        };
        let mut plan = FaultPlan::random(fault_seed, devices, 20.0, rates);
        plan.max_retries = max_retries;
        plan.retry_backoff_s = 0.05;
        plan.deadline_s = if deadline_on { 5.0 } else { 0.0 };
        let r = run_fleet_with_faults(
            sim(),
            &d,
            &ArrivalProcess::Poisson { qps },
            cfg,
            FleetConfig { devices, routing: Routing::LeastLoaded },
            &plan,
        ).unwrap();
        prop_assert_eq!(r.offered, n);
        prop_assert_eq!(r.completed + r.shed, r.offered);
        prop_assert_eq!(
            r.shed_queue_full
                + r.shed_oversized
                + r.shed_no_memory
                + r.shed_failed
                + r.shed_deadline,
            r.shed
        );
        let ids: BTreeSet<u64> = r
            .requests
            .iter()
            .map(|q| q.id)
            .chain(r.sheds.iter().map(|s| s.id))
            .collect();
        prop_assert_eq!(ids.len(), n, "an id was lost or double-counted");
        prop_assert_eq!(ids, (0..n as u64).collect::<BTreeSet<u64>>());
        prop_assert!(r.availability >= 0.0 && r.availability <= 1.0 + 1e-9);
        prop_assert!(r.deadline_violation_rate >= 0.0 && r.deadline_violation_rate <= 1.0 + 1e-9);
        if plan.deadline_s == 0.0 {
            prop_assert_eq!(r.deadline_violations, 0);
        }
    }

    /// Byte-identical determinism under faults: the same seed and the same
    /// fault plan give the same JSON report, byte for byte.
    #[test]
    fn faulty_runs_are_byte_identical_across_repeats(
        seed in 0u64..1_000,
        fault_seed in 0u64..1_000,
        n in 1usize..16,
        qps in 0.5f64..8.0,
        devices in 1usize..4,
    ) {
        let d = Dataset::alpaca_like(seed, n);
        let cfg = ServeConfig { seed, fmfi: 0.0, ..ServeConfig::default() };
        let rates = FaultRates {
            crash_per_s: 0.3,
            pim_per_s: 0.3,
            kv_per_s: 0.3,
            mean_outage_s: 0.5,
        };
        let mut plan = FaultPlan::random(fault_seed, devices, 15.0, rates);
        plan.max_retries = 3;
        plan.retry_backoff_s = 0.05;
        let arrival = ArrivalProcess::Bursty { qps, burst: 3 };
        let fleet = FleetConfig { devices, routing: Routing::RoundRobin };
        let a = run_fleet_with_faults(sim(), &d, &arrival, cfg, fleet, &plan).unwrap();
        let b = run_fleet_with_faults(sim(), &d, &arrival, cfg, fleet, &plan).unwrap();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.to_json(), b.to_json());
    }

    /// Tracing is observational: for any seed and fault plan the traced
    /// run's report equals the untraced run's, and the exported
    /// Chrome-trace JSON is byte-identical across repeats.
    #[test]
    fn tracing_never_changes_the_schedule(
        seed in 0u64..1_000,
        fault_seed in 0u64..1_000,
        n in 1usize..16,
        qps in 0.5f64..8.0,
        devices in 1usize..4,
    ) {
        let d = Dataset::code_autocompletion_like(seed, n);
        let cfg = ServeConfig { seed, fmfi: 0.0, ..ServeConfig::default() };
        let rates = FaultRates {
            crash_per_s: 0.2,
            pim_per_s: 0.2,
            kv_per_s: 0.2,
            mean_outage_s: 0.4,
        };
        let mut plan = FaultPlan::random(fault_seed, devices, 10.0, rates);
        plan.max_retries = 2;
        plan.retry_backoff_s = 0.05;
        let arrival = ArrivalProcess::Poisson { qps };
        let fleet = FleetConfig { devices, routing: Routing::LeastLoaded };
        let plain = run_fleet_with_faults(sim(), &d, &arrival, cfg, fleet, &plan).unwrap();
        let traced = || {
            let sink = Rc::new(RefCell::new(RingSink::new(1 << 15)));
            let r = run_fleet_with_faults_traced(
                sim(), &d, &arrival, cfg, fleet, &plan, Rc::clone(&sink),
            ).unwrap();
            let json = sink.borrow().to_chrome_json();
            (r, json)
        };
        let (a, ja) = traced();
        let (b, jb) = traced();
        prop_assert_eq!(&plain, &a, "tracing changed the schedule");
        prop_assert_eq!(plain.to_json(), a.to_json());
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(ja, jb, "trace export must be deterministic");
    }

    /// Worker count is invisible in the results: a fleet run on one pool
    /// worker serializes to exactly the JSON of the same run on eight
    /// (the `FACIL_THREADS=1` vs `FACIL_THREADS=8` guarantee), with and
    /// without fault injection.
    #[test]
    fn worker_count_never_changes_the_report(
        seed in 0u64..1_000,
        fault_seed in 0u64..1_000,
        n in 1usize..16,
        qps in 0.5f64..8.0,
        devices in 2usize..5,
        faulty in any::<bool>(),
    ) {
        let d = Dataset::alpaca_like(seed, n);
        let cfg = ServeConfig { seed, fmfi: 0.0, ..ServeConfig::default() };
        let arrival = ArrivalProcess::Bursty { qps, burst: 3 };
        let fleet = FleetConfig { devices, routing: Routing::LeastLoaded };
        let mut plan = if faulty {
            FaultPlan::random(
                fault_seed,
                devices,
                15.0,
                FaultRates { crash_per_s: 0.3, pim_per_s: 0.3, kv_per_s: 0.3, mean_outage_s: 0.5 },
            )
        } else {
            FaultPlan::none()
        };
        plan.max_retries = 3;
        plan.retry_backoff_s = 0.05;
        let run = || run_fleet_with_faults(sim(), &d, &arrival, cfg, fleet, &plan).unwrap();
        facil_sim::pool::set_parallelism(1);
        let serial = run();
        facil_sim::pool::set_parallelism(8);
        let parallel = run();
        facil_sim::pool::set_parallelism(0); // back to the default
        prop_assert_eq!(&serial, &parallel);
        prop_assert_eq!(serial.to_json(), parallel.to_json());
    }

    /// Zero-fault regression: injecting an empty fault plan reproduces the
    /// fault-free scheduler exactly — same report, same JSON bytes.
    #[test]
    fn empty_fault_plan_reproduces_faultless_run_exactly(
        seed in 0u64..1_000,
        n in 1usize..16,
        qps in 0.5f64..12.0,
        devices in 1usize..4,
        least_loaded in any::<bool>(),
    ) {
        let d = Dataset::code_autocompletion_like(seed, n);
        let cfg = ServeConfig { seed, ..ServeConfig::default() };
        let routing = if least_loaded { Routing::LeastLoaded } else { Routing::RoundRobin };
        let fleet = FleetConfig { devices, routing };
        let arrival = ArrivalProcess::Poisson { qps };
        let plain = run_fleet(sim(), &d, &arrival, cfg, fleet).unwrap();
        let faulted =
            run_fleet_with_faults(sim(), &d, &arrival, cfg, fleet, &FaultPlan::none()).unwrap();
        prop_assert_eq!(&plain, &faulted);
        prop_assert_eq!(plain.to_json(), faulted.to_json());
        prop_assert_eq!(faulted.failovers, 0);
        prop_assert_eq!(faulted.retries, 0);
        prop_assert_eq!(faulted.shed_failed, 0);
        prop_assert_eq!(faulted.shed_deadline, 0);
    }
}
