//! SLO metrics of a serving run: per-request latency summaries
//! (TTFT / TBT / TTLT), goodput vs offered load, shed accounting, and
//! per-device utilization, queue-depth and KV time series.
//!
//! Reports are serde-serializable (derive) and additionally carry a
//! dependency-free [`ServeReport::to_json`] writer so the bench binaries
//! can emit machine-readable output without a JSON crate in the workspace.

use facil_sim::{Strategy, Summary};
use serde::{Deserialize, Serialize};

use crate::fleet::Routing;
use crate::request::{RequestRecord, ShedRecord};

/// One point of a device's load time series (sampled per iteration,
/// downsampled for the report).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueueSample {
    /// Simulated time, seconds.
    pub t_s: f64,
    /// Requests waiting for admission.
    pub queued: usize,
    /// Admitted requests (prefilling + decoding).
    pub active: usize,
    /// KV bytes reserved.
    pub kv_bytes: u64,
}

/// Per-device outcome of a serving run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceReport {
    /// Device index.
    pub device: usize,
    /// Requests completed on this device.
    pub completed: usize,
    /// Requests shed by this device.
    pub shed: usize,
    /// Busy time over the fleet-wide span.
    pub utilization: f64,
    /// Longest admission queue observed.
    pub queue_peak: usize,
    /// Total KV budget, bytes.
    pub kv_budget_bytes: u64,
    /// Peak KV reservation, bytes.
    pub kv_peak_bytes: u64,
    /// Time spent compacting huge pages for KV slabs (FMFI cost), seconds.
    pub kv_compact_s: f64,
    /// KV huge pages allocated from fully-free blocks.
    pub kv_pages_direct: u64,
    /// KV huge pages minted via compaction.
    pub kv_pages_compacted: u64,
    /// 4 KB frames moved to mint KV pages.
    pub kv_frames_moved: u64,
    /// Scheduler iterations executed.
    pub iterations: u64,
    /// Mean work items (decode tokens + prefill chunks) per iteration.
    pub mean_batch: f64,
    /// Fraction of the span the device was up (outside crash/freeze
    /// windows).
    pub uptime: f64,
    /// Seconds of the span spent down.
    pub down_s: f64,
    /// Seconds served in degraded (PIM-down) mode.
    pub degraded_s: f64,
    /// Seconds stalled re-laying-out weights on degraded-mode transitions
    /// (zero for FACIL strategies).
    pub relayout_stall_s: f64,
    /// Crash events this device lived through.
    pub crashes: usize,
    /// Requests this device lost to crashes (harvested for failover).
    pub evicted: usize,
    /// Downsampled queue-depth / KV time series.
    pub queue_depth: Vec<QueueSample>,
}

/// Full outcome of a serving run (single device or fleet).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeReport {
    /// Execution strategy of the timing oracle.
    pub strategy: Strategy,
    /// Arrival process description.
    pub arrival: String,
    /// Routing policy used across devices.
    pub routing: Routing,
    /// Number of devices.
    pub num_devices: usize,
    /// Requests offered to the fleet.
    pub offered: usize,
    /// Requests served to the last token.
    pub completed: usize,
    /// Requests shed (`offered == completed + shed`).
    pub shed: usize,
    /// Sheds with reason [`ShedReason::QueueFull`].
    pub shed_queue_full: usize,
    /// Sheds with reason [`ShedReason::Oversized`].
    pub shed_oversized: usize,
    /// Sheds with reason [`ShedReason::NoMemory`].
    pub shed_no_memory: usize,
    /// Sheds with reason [`ShedReason::Failed`] (retry budget exhausted).
    pub shed_failed: usize,
    /// Sheds with reason [`ShedReason::DeadlineExpired`].
    pub shed_deadline: usize,
    /// Wall-clock span of the run, seconds.
    pub span_s: f64,
    /// Offered load over the span, queries/s.
    pub offered_qps: f64,
    /// Completed load over the span, queries/s (goodput-under-fault when a
    /// plan injects failures).
    pub goodput_qps: f64,
    /// Mean device utilization over the span.
    pub utilization: f64,
    /// Mean fraction of device-seconds the fleet was up
    /// (`1 - downtime / (span * devices)`).
    pub availability: f64,
    /// Total device-seconds lost to crash/freeze windows.
    pub downtime_s: f64,
    /// Total device-seconds served in degraded (PIM-down) mode.
    pub degraded_s: f64,
    /// Total seconds stalled on degraded-mode weight re-layouts.
    pub relayout_stall_s: f64,
    /// Requests evicted by crashes and handed back to the fleet driver.
    pub failovers: usize,
    /// Retry attempts scheduled (each charged exponential backoff on the
    /// serving clock).
    pub retries: usize,
    /// Requests that missed their deadline (expired before service, or
    /// completed past it). 0 when deadlines are disabled.
    pub deadline_violations: usize,
    /// `deadline_violations / offered` (0 when deadlines are disabled).
    pub deadline_violation_rate: f64,
    /// Time-to-first-token summary over completed requests, ms.
    pub ttft_ms: Summary,
    /// Inter-token latency summary over completed requests, ms.
    pub tbt_ms: Summary,
    /// Time-to-last-token summary over completed requests, ms.
    pub ttlt_ms: Summary,
    /// Per-device breakdown.
    pub devices: Vec<DeviceReport>,
    /// Every completed request, ordered by id.
    pub requests: Vec<RequestRecord>,
    /// Every shed request, ordered by id.
    pub sheds: Vec<ShedRecord>,
}

/// Format a float as a JSON number (`null` for non-finite values, which
/// JSON cannot represent).
fn jnum(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn jstr(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn jsummary(s: &Summary) -> String {
    format!(
        "{{\"count\":{},\"mean\":{},\"min\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"max\":{}}}",
        s.count,
        jnum(s.mean),
        jnum(s.min),
        jnum(s.p50),
        jnum(s.p95),
        jnum(s.p99),
        jnum(s.max)
    )
}

fn jdevice(d: &DeviceReport) -> String {
    let series: Vec<String> = d
        .queue_depth
        .iter()
        .map(|p| {
            format!(
                "{{\"t_s\":{},\"queued\":{},\"active\":{},\"kv_bytes\":{}}}",
                jnum(p.t_s),
                p.queued,
                p.active,
                p.kv_bytes
            )
        })
        .collect();
    format!(
        "{{\"device\":{},\"completed\":{},\"shed\":{},\"utilization\":{},\"queue_peak\":{},\
         \"kv_budget_bytes\":{},\"kv_peak_bytes\":{},\"kv_compact_s\":{},\
         \"kv_pages_direct\":{},\"kv_pages_compacted\":{},\"kv_frames_moved\":{},\
         \"iterations\":{},\"mean_batch\":{},\"uptime\":{},\"down_s\":{},\"degraded_s\":{},\
         \"relayout_stall_s\":{},\"crashes\":{},\"evicted\":{},\"queue_depth\":[{}]}}",
        d.device,
        d.completed,
        d.shed,
        jnum(d.utilization),
        d.queue_peak,
        d.kv_budget_bytes,
        d.kv_peak_bytes,
        jnum(d.kv_compact_s),
        d.kv_pages_direct,
        d.kv_pages_compacted,
        d.kv_frames_moved,
        d.iterations,
        jnum(d.mean_batch),
        jnum(d.uptime),
        jnum(d.down_s),
        jnum(d.degraded_s),
        jnum(d.relayout_stall_s),
        d.crashes,
        d.evicted,
        series.join(",")
    )
}

fn jrequest(r: &RequestRecord) -> String {
    format!(
        "{{\"id\":{},\"device\":{},\"arrival_s\":{},\"admitted_s\":{},\"ttft_ms\":{},\
         \"ttlt_ms\":{},\"prefill\":{},\"decode\":{},\"retries\":{}}}",
        r.id,
        r.device,
        jnum(r.arrival_s),
        jnum(r.admitted_s),
        jnum(r.ttft_ms),
        jnum(r.ttlt_ms),
        r.prefill,
        r.decode,
        r.retries
    )
}

fn jshed(s: &ShedRecord) -> String {
    format!(
        "{{\"id\":{},\"device\":{},\"arrival_s\":{},\"reason\":{}}}",
        s.id,
        s.device,
        jnum(s.arrival_s),
        jstr(&s.reason.to_string())
    )
}

impl ServeReport {
    /// Serialize the report as a self-contained JSON object (one line).
    pub fn to_json(&self) -> String {
        let devices: Vec<String> = self.devices.iter().map(jdevice).collect();
        let requests: Vec<String> = self.requests.iter().map(jrequest).collect();
        let sheds: Vec<String> = self.sheds.iter().map(jshed).collect();
        format!(
            "{{\"strategy\":{},\"arrival\":{},\"routing\":{},\"num_devices\":{},\
             \"offered\":{},\"completed\":{},\"shed\":{},\"shed_queue_full\":{},\
             \"shed_oversized\":{},\"shed_no_memory\":{},\"shed_failed\":{},\
             \"shed_deadline\":{},\"span_s\":{},\"offered_qps\":{},\
             \"goodput_qps\":{},\"utilization\":{},\"availability\":{},\"downtime_s\":{},\
             \"degraded_s\":{},\"relayout_stall_s\":{},\"failovers\":{},\"retries\":{},\
             \"deadline_violations\":{},\"deadline_violation_rate\":{},\
             \"ttft_ms\":{},\"tbt_ms\":{},\
             \"ttlt_ms\":{},\"devices\":[{}],\"requests\":[{}],\"sheds\":[{}]}}",
            jstr(&self.strategy.to_string()),
            jstr(&self.arrival),
            jstr(&self.routing.to_string()),
            self.num_devices,
            self.offered,
            self.completed,
            self.shed,
            self.shed_queue_full,
            self.shed_oversized,
            self.shed_no_memory,
            self.shed_failed,
            self.shed_deadline,
            jnum(self.span_s),
            jnum(self.offered_qps),
            jnum(self.goodput_qps),
            jnum(self.utilization),
            jnum(self.availability),
            jnum(self.downtime_s),
            jnum(self.degraded_s),
            jnum(self.relayout_stall_s),
            self.failovers,
            self.retries,
            self.deadline_violations,
            jnum(self.deadline_violation_rate),
            jsummary(&self.ttft_ms),
            jsummary(&self.tbt_ms),
            jsummary(&self.ttlt_ms),
            devices.join(","),
            requests.join(","),
            sheds.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ShedReason;

    fn sample_report() -> ServeReport {
        ServeReport {
            strategy: Strategy::FacilDynamic,
            arrival: "poisson(1.00/s)".into(),
            routing: Routing::RoundRobin,
            num_devices: 1,
            offered: 2,
            completed: 1,
            shed: 1,
            shed_queue_full: 1,
            shed_oversized: 0,
            shed_no_memory: 0,
            shed_failed: 0,
            shed_deadline: 0,
            span_s: 2.5,
            offered_qps: 0.8,
            goodput_qps: 0.4,
            utilization: 0.5,
            availability: 0.9,
            downtime_s: 0.25,
            degraded_s: 0.1,
            relayout_stall_s: 0.0,
            failovers: 1,
            retries: 1,
            deadline_violations: 0,
            deadline_violation_rate: 0.0,
            ttft_ms: Summary::from_unsorted(vec![10.0]),
            tbt_ms: Summary::from_unsorted(vec![1.0, 2.0]),
            ttlt_ms: Summary::from_unsorted(vec![40.0]),
            devices: vec![DeviceReport {
                device: 0,
                completed: 1,
                shed: 1,
                utilization: 0.5,
                queue_peak: 1,
                kv_budget_bytes: 1 << 30,
                kv_peak_bytes: 1 << 20,
                kv_compact_s: 0.0,
                kv_pages_direct: 2,
                kv_pages_compacted: 0,
                kv_frames_moved: 0,
                iterations: 5,
                mean_batch: 1.2,
                uptime: 0.9,
                down_s: 0.25,
                degraded_s: 0.1,
                relayout_stall_s: 0.0,
                crashes: 1,
                evicted: 1,
                queue_depth: vec![QueueSample { t_s: 0.1, queued: 1, active: 1, kv_bytes: 42 }],
            }],
            requests: vec![RequestRecord {
                id: 0,
                device: 0,
                arrival_s: 0.0,
                admitted_s: 0.0,
                ttft_ms: 10.0,
                ttlt_ms: 40.0,
                prefill: 8,
                decode: 4,
                retries: 1,
            }],
            sheds: vec![ShedRecord {
                id: 1,
                device: 0,
                arrival_s: 0.2,
                reason: ShedReason::QueueFull,
            }],
        }
    }

    #[test]
    fn json_is_balanced_and_carries_keys() {
        let j = sample_report().to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        let opens = j.matches('{').count();
        let closes = j.matches('}').count();
        assert_eq!(opens, closes, "unbalanced braces in {j}");
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        assert_eq!(j.matches('"').count() % 2, 0, "unbalanced quotes");
        for key in [
            "\"strategy\"",
            "\"goodput_qps\"",
            "\"ttft_ms\"",
            "\"p95\"",
            "\"queue_depth\"",
            "\"reason\":\"queue-full\"",
            "\"availability\"",
            "\"failovers\"",
            "\"deadline_violation_rate\"",
            "\"uptime\"",
            "\"retries\":1",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
    }

    #[test]
    fn json_is_deterministic() {
        assert_eq!(sample_report().to_json(), sample_report().to_json());
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(jnum(f64::INFINITY), "null");
        assert_eq!(jnum(f64::NAN), "null");
        assert_eq!(jnum(1.5), "1.5");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(jstr("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(jstr("x\ny"), "\"x\\ny\"");
    }
}
