//! SLO metrics of a serving run: per-request latency summaries
//! (TTFT / TBT / TTLT), goodput vs offered load, shed accounting, and
//! per-device utilization, queue-depth and KV time series.
//!
//! Reports are serde-serializable (derive) and additionally carry a
//! dependency-free [`ServeReport::to_json`] writer (built on
//! [`facil_telemetry::JsonWriter`]) so the bench binaries can emit
//! machine-readable output without a JSON crate in the workspace, and a
//! [`ServeReport::register_into`] hook that publishes the run's counters,
//! gauges and latency histograms into a shared
//! [`facil_telemetry::MetricsRegistry`].

use facil_sim::{Strategy, Summary};
use facil_telemetry::{JsonWriter, MetricsRegistry};
use serde::{Deserialize, Serialize};

use crate::fleet::Routing;
use crate::request::{RequestRecord, ShedRecord};

/// One point of a device's load time series (sampled per iteration,
/// downsampled for the report).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueueSample {
    /// Simulated time, seconds.
    pub t_s: f64,
    /// Requests waiting for admission.
    pub queued: usize,
    /// Admitted requests (prefilling + decoding).
    pub active: usize,
    /// KV bytes reserved.
    pub kv_bytes: u64,
}

/// Per-device outcome of a serving run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceReport {
    /// Device index.
    pub device: usize,
    /// Requests completed on this device.
    pub completed: usize,
    /// Requests shed by this device.
    pub shed: usize,
    /// Busy time over the fleet-wide span.
    pub utilization: f64,
    /// Longest admission queue observed.
    pub queue_peak: usize,
    /// Total KV budget, bytes.
    pub kv_budget_bytes: u64,
    /// Peak KV reservation, bytes.
    pub kv_peak_bytes: u64,
    /// Time spent compacting huge pages for KV slabs (FMFI cost), seconds.
    pub kv_compact_s: f64,
    /// KV huge pages allocated from fully-free blocks.
    pub kv_pages_direct: u64,
    /// KV huge pages minted via compaction.
    pub kv_pages_compacted: u64,
    /// 4 KB frames moved to mint KV pages.
    pub kv_frames_moved: u64,
    /// Scheduler iterations executed.
    pub iterations: u64,
    /// Mean work items (decode tokens + prefill chunks) per iteration.
    pub mean_batch: f64,
    /// Fraction of the span the device was up (outside crash/freeze
    /// windows). 0.0 for a zero-duration span (never `NaN`), matching
    /// `DramStats::hit_rate`.
    pub uptime: f64,
    /// Seconds of the span spent down.
    pub down_s: f64,
    /// Seconds served in degraded (PIM-down) mode.
    pub degraded_s: f64,
    /// Seconds stalled re-laying-out weights on degraded-mode transitions
    /// (zero for FACIL strategies).
    pub relayout_stall_s: f64,
    /// Seconds served inside gray-failure (slow-node) windows.
    pub slow_s: f64,
    /// Crash events this device lived through.
    pub crashes: usize,
    /// Requests this device lost to crashes (harvested for failover).
    pub evicted: usize,
    /// Downsampled queue-depth / KV time series.
    pub queue_depth: Vec<QueueSample>,
}

/// Full outcome of a serving run (single device or fleet).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeReport {
    /// Execution strategy of the timing oracle.
    pub strategy: Strategy,
    /// Arrival process description.
    pub arrival: String,
    /// Routing policy used across devices.
    pub routing: Routing,
    /// Number of devices.
    pub num_devices: usize,
    /// Requests offered to the fleet.
    pub offered: usize,
    /// Requests served to the last token.
    pub completed: usize,
    /// Requests shed (`offered == completed + shed`).
    pub shed: usize,
    /// Sheds with reason [`crate::ShedReason::QueueFull`].
    pub shed_queue_full: usize,
    /// Sheds with reason [`crate::ShedReason::Oversized`].
    pub shed_oversized: usize,
    /// Sheds with reason [`crate::ShedReason::NoMemory`].
    pub shed_no_memory: usize,
    /// Sheds with reason [`crate::ShedReason::Failed`] (retry budget exhausted).
    pub shed_failed: usize,
    /// Sheds with reason [`crate::ShedReason::DeadlineExpired`].
    pub shed_deadline: usize,
    /// Wall-clock span of the run, seconds.
    pub span_s: f64,
    /// Offered load over the span, queries/s.
    pub offered_qps: f64,
    /// Completed load over the span, queries/s (goodput-under-fault when a
    /// plan injects failures).
    pub goodput_qps: f64,
    /// Mean device utilization over the span.
    pub utilization: f64,
    /// Mean fraction of device-seconds the fleet was up
    /// (`1 - downtime / (span * devices)`). 0.0 for a zero-duration or
    /// zero-device run (never `NaN`), matching `DramStats::hit_rate`.
    pub availability: f64,
    /// Total device-seconds lost to crash/freeze windows.
    pub downtime_s: f64,
    /// Total device-seconds served in degraded (PIM-down) mode.
    pub degraded_s: f64,
    /// Total seconds stalled on degraded-mode weight re-layouts.
    pub relayout_stall_s: f64,
    /// Total device-seconds served inside gray-failure (slow-node)
    /// windows.
    pub slow_s: f64,
    /// Requests evicted by crashes and handed back to the fleet driver.
    pub failovers: usize,
    /// Retry attempts scheduled (each charged exponential backoff on the
    /// serving clock).
    pub retries: usize,
    /// Requests that missed their deadline (expired before service, or
    /// completed past it). 0 when deadlines are disabled.
    pub deadline_violations: usize,
    /// `deadline_violations / offered`. 0.0 when deadlines are disabled
    /// or nothing was offered (never `NaN`), matching
    /// `DramStats::hit_rate`.
    pub deadline_violation_rate: f64,
    /// Time-to-first-token summary over completed requests, ms.
    pub ttft_ms: Summary,
    /// Inter-token latency summary over completed requests, ms.
    pub tbt_ms: Summary,
    /// Time-to-last-token summary over completed requests, ms.
    pub ttlt_ms: Summary,
    /// Per-device breakdown.
    pub devices: Vec<DeviceReport>,
    /// Every completed request, ordered by id.
    pub requests: Vec<RequestRecord>,
    /// Every shed request, ordered by id.
    pub sheds: Vec<ShedRecord>,
}

fn write_summary(w: &mut JsonWriter, s: &Summary) {
    s.write_json(w);
}

fn write_device(w: &mut JsonWriter, d: &DeviceReport) {
    w.begin_object()
        .field_uint("device", d.device as u64)
        .field_uint("completed", d.completed as u64)
        .field_uint("shed", d.shed as u64)
        .field_num("utilization", d.utilization)
        .field_uint("queue_peak", d.queue_peak as u64)
        .field_uint("kv_budget_bytes", d.kv_budget_bytes)
        .field_uint("kv_peak_bytes", d.kv_peak_bytes)
        .field_num("kv_compact_s", d.kv_compact_s)
        .field_uint("kv_pages_direct", d.kv_pages_direct)
        .field_uint("kv_pages_compacted", d.kv_pages_compacted)
        .field_uint("kv_frames_moved", d.kv_frames_moved)
        .field_uint("iterations", d.iterations)
        .field_num("mean_batch", d.mean_batch)
        .field_num("uptime", d.uptime)
        .field_num("down_s", d.down_s)
        .field_num("degraded_s", d.degraded_s)
        .field_num("relayout_stall_s", d.relayout_stall_s)
        .field_num("slow_s", d.slow_s)
        .field_uint("crashes", d.crashes as u64)
        .field_uint("evicted", d.evicted as u64)
        .key("queue_depth")
        .begin_array();
    for p in &d.queue_depth {
        w.begin_object()
            .field_num("t_s", p.t_s)
            .field_uint("queued", p.queued as u64)
            .field_uint("active", p.active as u64)
            .field_uint("kv_bytes", p.kv_bytes)
            .end_object();
    }
    w.end_array().end_object();
}

fn write_request(w: &mut JsonWriter, r: &RequestRecord) {
    w.begin_object()
        .field_uint("id", r.id)
        .field_uint("device", r.device as u64)
        .field_num("arrival_s", r.arrival_s)
        .field_num("admitted_s", r.admitted_s)
        .field_num("ttft_ms", r.ttft_ms)
        .field_num("ttlt_ms", r.ttlt_ms)
        .field_uint("prefill", r.prefill)
        .field_uint("decode", r.decode)
        .field_uint("retries", u64::from(r.retries))
        .end_object();
}

fn write_shed(w: &mut JsonWriter, s: &ShedRecord) {
    w.begin_object()
        .field_uint("id", s.id)
        .field_uint("device", s.device as u64)
        .field_num("arrival_s", s.arrival_s)
        .field_str("reason", s.reason.as_str())
        .end_object();
}

impl ServeReport {
    /// Serialize the report as a self-contained JSON object (one line).
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::with_capacity(4096);
        w.begin_object()
            .field_str("strategy", &self.strategy.to_string())
            .field_str("arrival", &self.arrival)
            .field_str("routing", &self.routing.to_string())
            .field_uint("num_devices", self.num_devices as u64)
            .field_uint("offered", self.offered as u64)
            .field_uint("completed", self.completed as u64)
            .field_uint("shed", self.shed as u64)
            .field_uint("shed_queue_full", self.shed_queue_full as u64)
            .field_uint("shed_oversized", self.shed_oversized as u64)
            .field_uint("shed_no_memory", self.shed_no_memory as u64)
            .field_uint("shed_failed", self.shed_failed as u64)
            .field_uint("shed_deadline", self.shed_deadline as u64)
            .field_num("span_s", self.span_s)
            .field_num("offered_qps", self.offered_qps)
            .field_num("goodput_qps", self.goodput_qps)
            .field_num("utilization", self.utilization)
            .field_num("availability", self.availability)
            .field_num("downtime_s", self.downtime_s)
            .field_num("degraded_s", self.degraded_s)
            .field_num("relayout_stall_s", self.relayout_stall_s)
            .field_num("slow_s", self.slow_s)
            .field_uint("failovers", self.failovers as u64)
            .field_uint("retries", self.retries as u64)
            .field_uint("deadline_violations", self.deadline_violations as u64)
            .field_num("deadline_violation_rate", self.deadline_violation_rate);
        w.key("ttft_ms");
        write_summary(&mut w, &self.ttft_ms);
        w.key("tbt_ms");
        write_summary(&mut w, &self.tbt_ms);
        w.key("ttlt_ms");
        write_summary(&mut w, &self.ttlt_ms);
        w.key("devices").begin_array();
        for d in &self.devices {
            write_device(&mut w, d);
        }
        w.end_array().key("requests").begin_array();
        for r in &self.requests {
            write_request(&mut w, r);
        }
        w.end_array().key("sheds").begin_array();
        for s in &self.sheds {
            write_shed(&mut w, s);
        }
        w.end_array().end_object();
        w.finish()
    }

    /// Publish the run into a shared [`MetricsRegistry`]: request counters
    /// (offered/completed/shed, per-reason sheds, failovers, retries),
    /// availability and utilization gauges, and per-request TTFT/TTLT
    /// latency histograms under `serve.ttft_ms` / `serve.ttlt_ms`.
    pub fn register_into(&self, reg: &mut MetricsRegistry) {
        reg.inc("serve.offered", self.offered as u64);
        reg.inc("serve.completed", self.completed as u64);
        reg.inc("serve.shed", self.shed as u64);
        reg.inc("serve.shed.queue_full", self.shed_queue_full as u64);
        reg.inc("serve.shed.oversized", self.shed_oversized as u64);
        reg.inc("serve.shed.no_memory", self.shed_no_memory as u64);
        reg.inc("serve.shed.failed", self.shed_failed as u64);
        reg.inc("serve.shed.deadline", self.shed_deadline as u64);
        reg.inc("serve.failovers", self.failovers as u64);
        reg.inc("serve.retries", self.retries as u64);
        reg.inc("serve.deadline_violations", self.deadline_violations as u64);
        reg.set_gauge("serve.goodput_qps", self.goodput_qps);
        reg.set_gauge("serve.utilization", self.utilization);
        reg.set_gauge("serve.availability", self.availability);
        reg.set_gauge("serve.degraded_s", self.degraded_s);
        reg.set_gauge("serve.slow_s", self.slow_s);
        for r in &self.requests {
            reg.observe("serve.ttft_ms", r.ttft_ms);
            reg.observe("serve.ttlt_ms", r.ttlt_ms);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ShedReason;

    fn sample_report() -> ServeReport {
        ServeReport {
            strategy: Strategy::FacilDynamic,
            arrival: "poisson(1.00/s)".into(),
            routing: Routing::RoundRobin,
            num_devices: 1,
            offered: 2,
            completed: 1,
            shed: 1,
            shed_queue_full: 1,
            shed_oversized: 0,
            shed_no_memory: 0,
            shed_failed: 0,
            shed_deadline: 0,
            span_s: 2.5,
            offered_qps: 0.8,
            goodput_qps: 0.4,
            utilization: 0.5,
            availability: 0.9,
            downtime_s: 0.25,
            degraded_s: 0.1,
            relayout_stall_s: 0.0,
            slow_s: 0.05,
            failovers: 1,
            retries: 1,
            deadline_violations: 0,
            deadline_violation_rate: 0.0,
            ttft_ms: Summary::from_unsorted(vec![10.0]),
            tbt_ms: Summary::from_unsorted(vec![1.0, 2.0]),
            ttlt_ms: Summary::from_unsorted(vec![40.0]),
            devices: vec![DeviceReport {
                device: 0,
                completed: 1,
                shed: 1,
                utilization: 0.5,
                queue_peak: 1,
                kv_budget_bytes: 1 << 30,
                kv_peak_bytes: 1 << 20,
                kv_compact_s: 0.0,
                kv_pages_direct: 2,
                kv_pages_compacted: 0,
                kv_frames_moved: 0,
                iterations: 5,
                mean_batch: 1.2,
                uptime: 0.9,
                down_s: 0.25,
                degraded_s: 0.1,
                relayout_stall_s: 0.0,
                slow_s: 0.05,
                crashes: 1,
                evicted: 1,
                queue_depth: vec![QueueSample { t_s: 0.1, queued: 1, active: 1, kv_bytes: 42 }],
            }],
            requests: vec![RequestRecord {
                id: 0,
                device: 0,
                arrival_s: 0.0,
                admitted_s: 0.0,
                ttft_ms: 10.0,
                ttlt_ms: 40.0,
                prefill: 8,
                decode: 4,
                retries: 1,
            }],
            sheds: vec![ShedRecord {
                id: 1,
                device: 0,
                arrival_s: 0.2,
                reason: ShedReason::QueueFull,
            }],
        }
    }

    #[test]
    fn json_is_balanced_and_carries_keys() {
        let j = sample_report().to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        let opens = j.matches('{').count();
        let closes = j.matches('}').count();
        assert_eq!(opens, closes, "unbalanced braces in {j}");
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        assert_eq!(j.matches('"').count() % 2, 0, "unbalanced quotes");
        for key in [
            "\"strategy\"",
            "\"goodput_qps\"",
            "\"ttft_ms\"",
            "\"p95\"",
            "\"queue_depth\"",
            "\"reason\":\"queue-full\"",
            "\"availability\"",
            "\"failovers\"",
            "\"deadline_violation_rate\"",
            "\"uptime\"",
            "\"slow_s\"",
            "\"retries\":1",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
    }

    #[test]
    fn json_is_deterministic() {
        assert_eq!(sample_report().to_json(), sample_report().to_json());
    }

    #[test]
    fn registry_mirrors_the_report() {
        let r = sample_report();
        let mut reg = MetricsRegistry::new();
        r.register_into(&mut reg);
        assert_eq!(reg.counter("serve.offered"), 2);
        assert_eq!(reg.counter("serve.completed"), 1);
        assert_eq!(reg.counter("serve.shed.queue_full"), 1);
        assert_eq!(reg.counter("serve.failovers"), 1);
        assert_eq!(reg.gauge("serve.availability"), Some(0.9));
        let ttft = reg.summary("serve.ttft_ms");
        assert_eq!(ttft.count, 1);
        assert_eq!(ttft.mean, 10.0);
        // Registering a second run accumulates instead of overwriting.
        r.register_into(&mut reg);
        assert_eq!(reg.counter("serve.offered"), 4);
        assert_eq!(reg.summary("serve.ttlt_ms").count, 2);
    }
}
