//! # facil-serve — discrete-event serving simulator for FACIL
//!
//! Drives the [`facil_sim::InferenceSim`] timing oracle as a *serving
//! system*: requests arrive over time (any [`facil_workloads::ArrivalProcess`]),
//! pass admission control, and are executed with **continuous batching**
//! (iteration-level scheduling: one chunked-prefill slice of the
//! head-of-line request plus one decode step for every in-flight request
//! per iteration, Orca/Sarathi style).
//!
//! The simulator is built from four layers:
//!
//! - [`DeviceSim`] — one device: bounded admission queue, up-front KV
//!   reservation against a [`facil_core::FacilSystem`] physical allocator
//!   (so FMFI fragmentation shows up as real compaction time on the
//!   serving clock), chunked prefill + batched decode stepping, and
//!   explicit load shedding ([`ShedReason`]).
//! - [`FaultPlan`] — deterministic fault injection: device crashes and
//!   freezes, PIM-unit faults (FACIL degrades to SoC GEMV on its
//!   SoC-readable layout while hybrid baselines stall for a weight
//!   re-layout), transient KV-reservation failures, plus per-request
//!   deadlines and a bounded exponential-backoff retry policy.
//! - [`run_serving`] / [`run_fleet`] / [`run_fleet_with_faults`] — drive
//!   one device or a fleet of N identical devices sharing an arrival
//!   stream under a [`Routing`] policy (round-robin or least-loaded),
//!   failing crashed devices' work over to survivors.
//! - [`ServeReport`] — SLO and availability metrics: per-request
//!   TTFT/TBT/TTLT with p50/p95/p99 [`facil_sim::Summary`] rollups,
//!   goodput vs offered load, shed accounting, per-device utilization,
//!   uptime and degraded-mode time, failover/retry counts,
//!   deadline-violation rate, and queue/KV time series;
//!   serde-serializable plus a dependency-free JSON writer.
//!
//! Everything is deterministic for a fixed seed and fault plan: two runs
//! with identical inputs produce byte-identical [`ServeReport::to_json`]
//! output, and [`FaultPlan::none`] reproduces the fault-free schedule
//! exactly.
//!
//! # Observability
//!
//! The scheduler is instrumented through [`facil_telemetry`]:
//! [`run_fleet_with_faults_traced`] records admissions, sheds, batch
//! formation, degraded-mode transitions, crashes/freezes, failovers and
//! retries as trace events on per-device and fleet tracks (simulated
//! nanoseconds, exportable as a Chrome/Perfetto trace), and
//! [`ServeReport::register_into`] publishes the run's counters and latency
//! histograms into a shared [`facil_telemetry::MetricsRegistry`]. Tracing
//! is observational: a traced run's report is byte-identical to the
//! untraced run's.

#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod device;
pub mod faults;
pub mod fleet;
pub mod metrics;
pub mod request;

pub use device::{DeviceSim, EvictedReq, ServeConfig};
pub use faults::{saturating_backoff, FaultEvent, FaultKind, FaultPlan, FaultRates};
pub use fleet::{
    assemble_report, run_fleet, run_fleet_with_faults, run_fleet_with_faults_traced, run_serving,
    FleetConfig, FleetExec, ParallelExec, ReportMeta, Routing, SerialExec,
};
pub use metrics::{DeviceReport, QueueSample, ServeReport};
pub use request::{RequestRecord, ShedReason, ShedRecord};
