//! # facil-serve — discrete-event serving simulator for FACIL
//!
//! Drives the [`facil_sim::InferenceSim`] timing oracle as a *serving
//! system*: requests arrive over time (any [`facil_workloads::ArrivalProcess`]),
//! pass admission control, and are executed with **continuous batching**
//! (iteration-level scheduling: one chunked-prefill slice of the
//! head-of-line request plus one decode step for every in-flight request
//! per iteration, Orca/Sarathi style).
//!
//! The simulator is built from three layers:
//!
//! - [`DeviceSim`] — one device: bounded admission queue, up-front KV
//!   reservation against a [`facil_core::FacilSystem`] physical allocator
//!   (so FMFI fragmentation shows up as real compaction time on the
//!   serving clock), chunked prefill + batched decode stepping, and
//!   explicit load shedding ([`ShedReason`]).
//! - [`run_serving`] / [`run_fleet`] — drive one device or a fleet of N
//!   identical devices sharing an arrival stream under a [`Routing`]
//!   policy (round-robin or least-loaded).
//! - [`ServeReport`] — SLO metrics: per-request TTFT/TBT/TTLT with
//!   p50/p95/p99 [`facil_sim::Summary`] rollups, goodput vs offered load,
//!   shed accounting, per-device utilization and queue/KV time series;
//!   serde-serializable plus a dependency-free JSON writer.
//!
//! Everything is deterministic for a fixed seed: two runs with identical
//! inputs produce byte-identical [`ServeReport::to_json`] output.

pub mod device;
pub mod fleet;
pub mod metrics;
pub mod request;

pub use device::{DeviceSim, ServeConfig};
pub use fleet::{run_fleet, run_serving, FleetConfig, Routing};
pub use metrics::{DeviceReport, QueueSample, ServeReport};
pub use request::{RequestRecord, ShedReason, ShedRecord};
