//! Deterministic fault injection for the serving simulator.
//!
//! A [`FaultPlan`] is a seeded, fully-explicit schedule of failures — no
//! randomness at execution time, so two runs with the same plan produce
//! byte-identical reports. Four fault kinds are modelled:
//!
//! - **Crash** ([`FaultKind::Crash`]): the device goes down at `at_s`,
//!   losing every pending and in-flight request (their KV reservations are
//!   released and the fleet driver fails them over to survivors). With
//!   `recover_s` the device comes back empty at `at_s + recover_s`;
//!   without it the crash is permanent.
//! - **Freeze** ([`FaultKind::Freeze`]): the device stops executing for a
//!   window but keeps its state — requests are delayed, not lost.
//! - **PIM-unit fault** ([`FaultKind::PimFault`]): the in-DRAM compute
//!   units are unavailable for a window. FACIL strategies degrade to SoC
//!   GEMV immediately (the PIM-optimized layout stays SoC-readable);
//!   hybrid baselines must re-layout their weights to the conventional
//!   mapping before serving again, and re-layout back when the fault
//!   clears.
//! - **KV fault** ([`FaultKind::KvFault`]): transient KV-reservation
//!   failure — admission is blocked for the window, in-flight requests
//!   keep their memory and keep running.
//!
//! The plan also carries fleet-wide robustness policy: per-request
//! deadlines, the retry budget, and the exponential-backoff base used when
//! a request must be re-queued after a failure.

use facil_core::FacilError;
use facil_sim::XorShift64Star;
use serde::{Deserialize, Serialize};

/// What goes wrong in a [`FaultEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Device outage losing all queued and in-flight work; recovers after
    /// `recover_s` seconds, or never (`None`).
    Crash {
        /// Seconds until the device rejoins the fleet (empty), if ever.
        recover_s: Option<f64>,
    },
    /// Device stops executing for `duration_s` seconds but loses nothing.
    Freeze {
        /// Length of the stall window, seconds.
        duration_s: f64,
    },
    /// PIM compute units unavailable for `duration_s` seconds; the device
    /// serves in degraded (SoC-only) mode.
    PimFault {
        /// Length of the degraded window, seconds.
        duration_s: f64,
    },
    /// KV-cache reservations fail for `duration_s` seconds; admission is
    /// paused.
    KvFault {
        /// Length of the admission-blocked window, seconds.
        duration_s: f64,
    },
    /// Gray failure: the device keeps serving but every iteration takes
    /// `factor`× its healthy time for `duration_s` seconds — the slow node
    /// that passes health checks while dragging down tail latency.
    Slow {
        /// Length of the slow window, seconds.
        duration_s: f64,
        /// Iteration-time multiplier (must be finite and >= 1.0).
        factor: f64,
    },
}

/// One scheduled failure on one device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Fleet index of the affected device.
    pub device: usize,
    /// When the fault strikes, seconds from the start of the run.
    pub at_s: f64,
    /// What fails.
    pub kind: FaultKind,
}

/// A complete, deterministic fault schedule plus the fleet's robustness
/// policy (deadlines and retry budget).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Scheduled faults (any order; devices filter their own).
    pub events: Vec<FaultEvent>,
    /// Per-request deadline, seconds from arrival; `0.0` disables
    /// deadlines.
    pub deadline_s: f64,
    /// How many times a request may be re-queued after a failure before it
    /// is shed as [`crate::ShedReason::Failed`].
    pub max_retries: u32,
    /// Base of the exponential backoff charged to the serving clock before
    /// a retry: attempt `k` waits `retry_backoff_s * 2^(k-1)` seconds.
    pub retry_backoff_s: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

/// Average fault arrival rates used by [`FaultPlan::random`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultRates {
    /// Device crashes per device-second (all recoverable).
    pub crash_per_s: f64,
    /// PIM-unit faults per device-second.
    pub pim_per_s: f64,
    /// KV-reservation faults per device-second.
    pub kv_per_s: f64,
    /// Mean outage / degraded-window length, seconds.
    pub mean_outage_s: f64,
}

/// Largest exponent fed to the exponential backoff: `2^60` seconds is
/// ~36,000× the age of the universe, so capping here changes no plausible
/// schedule while keeping the arithmetic finite.
const BACKOFF_EXP_CAP: u32 = 60;

/// Exponential backoff before retry attempt `attempt` (0-based count of
/// failovers already consumed): `base * 2^attempt`, **saturating** — the
/// exponent is capped at 2^60 and a non-finite product clamps to
/// [`f64::MAX`], so high attempt counts return a huge *finite* wait
/// instead of overflowing to infinity (which would poison every
/// downstream time comparison with NaN).
pub fn saturating_backoff(base_s: f64, attempt: u32) -> f64 {
    if base_s <= 0.0 {
        return 0.0;
    }
    let b = base_s * 2f64.powi(attempt.min(BACKOFF_EXP_CAP) as i32);
    if b.is_finite() {
        b
    } else {
        f64::MAX
    }
}

impl FaultPlan {
    /// The empty plan: no faults, no deadlines, no retries. Serving with
    /// this plan is bit-for-bit identical to serving without fault
    /// injection at all.
    pub fn none() -> Self {
        FaultPlan { events: Vec::new(), deadline_s: 0.0, max_retries: 0, retry_backoff_s: 0.0 }
    }

    /// Backoff charged to the serving clock before retry attempt
    /// `attempt`, per [`saturating_backoff`] over this plan's
    /// [`retry_backoff_s`](FaultPlan::retry_backoff_s).
    pub fn backoff_s(&self, attempt: u32) -> f64 {
        saturating_backoff(self.retry_backoff_s, attempt)
    }

    /// Generate a seeded random plan over `span_s` seconds on a fleet of
    /// `devices`: each fault class arrives per-device as a Poisson process
    /// at the configured rate, with exponentially-distributed outage
    /// lengths around `rates.mean_outage_s`. Deterministic for a fixed
    /// seed.
    pub fn random(seed: u64, devices: usize, span_s: f64, rates: FaultRates) -> Self {
        let mut rng = XorShift64Star::new(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0xc4a0);
        let mut events = Vec::new();
        for device in 0..devices {
            let classes = [(rates.crash_per_s, 0u8), (rates.pim_per_s, 1u8), (rates.kv_per_s, 2u8)];
            for (rate, class) in classes {
                if rate <= 0.0 {
                    continue;
                }
                let mut t = 0.0;
                loop {
                    t += rng.next_exp(rate);
                    if t >= span_s {
                        break;
                    }
                    let outage = rng.next_exp(1.0 / rates.mean_outage_s.max(1e-3)).max(1e-3);
                    let kind = match class {
                        0 => FaultKind::Crash { recover_s: Some(outage) },
                        1 => FaultKind::PimFault { duration_s: outage },
                        _ => FaultKind::KvFault { duration_s: outage },
                    };
                    events.push(FaultEvent { device, at_s: t, kind });
                }
            }
        }
        FaultPlan { events, ..FaultPlan::none() }
    }

    /// Check the plan against a fleet of `devices` devices.
    ///
    /// # Errors
    ///
    /// * [`FacilError::DeviceUnavailable`] if an event targets a device
    ///   index outside the fleet;
    /// * [`FacilError::InvalidRequest`] for non-finite or negative times,
    ///   non-positive fault durations, or a negative/non-finite deadline
    ///   or backoff.
    pub fn validate(&self, devices: usize) -> facil_core::Result<()> {
        for e in &self.events {
            if e.device >= devices {
                return Err(FacilError::DeviceUnavailable { device: e.device });
            }
            if !e.at_s.is_finite() || e.at_s < 0.0 {
                return Err(FacilError::InvalidRequest(format!(
                    "fault time {} is not a finite non-negative number",
                    e.at_s
                )));
            }
            let duration = match e.kind {
                FaultKind::Crash { recover_s } => recover_s.unwrap_or(1.0),
                FaultKind::Freeze { duration_s }
                | FaultKind::PimFault { duration_s }
                | FaultKind::KvFault { duration_s }
                | FaultKind::Slow { duration_s, .. } => duration_s,
            };
            if !duration.is_finite() || duration <= 0.0 {
                return Err(FacilError::InvalidRequest(format!(
                    "fault duration {duration} must be finite and positive"
                )));
            }
            if let FaultKind::Slow { factor, .. } = e.kind {
                if !factor.is_finite() || factor < 1.0 {
                    return Err(FacilError::InvalidRequest(format!(
                        "slowdown factor {factor} must be finite and >= 1.0"
                    )));
                }
            }
        }
        if !self.deadline_s.is_finite() || self.deadline_s < 0.0 {
            return Err(FacilError::InvalidRequest(format!(
                "deadline {} must be finite and non-negative",
                self.deadline_s
            )));
        }
        if !self.retry_backoff_s.is_finite() || self.retry_backoff_s < 0.0 {
            return Err(FacilError::InvalidRequest(format!(
                "retry backoff {} must be finite and non-negative",
                self.retry_backoff_s
            )));
        }
        Ok(())
    }

    /// True if the plan injects no faults and enforces no deadlines (the
    /// fast path that exactly reproduces fault-free serving).
    pub fn is_none(&self) -> bool {
        self.events.is_empty() && self.deadline_s == 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_is_empty_and_valid() {
        let p = FaultPlan::none();
        assert!(p.is_none());
        p.validate(1).unwrap();
        p.validate(0).unwrap();
    }

    #[test]
    fn out_of_range_device_is_rejected() {
        let p = FaultPlan {
            events: vec![FaultEvent {
                device: 3,
                at_s: 1.0,
                kind: FaultKind::Freeze { duration_s: 1.0 },
            }],
            ..FaultPlan::none()
        };
        assert_eq!(p.validate(3).unwrap_err(), FacilError::DeviceUnavailable { device: 3 });
        p.validate(4).unwrap();
    }

    #[test]
    fn bad_times_and_durations_are_rejected() {
        let mk = |at_s: f64, kind: FaultKind| FaultPlan {
            events: vec![FaultEvent { device: 0, at_s, kind }],
            ..FaultPlan::none()
        };
        assert!(mk(-1.0, FaultKind::Freeze { duration_s: 1.0 }).validate(1).is_err());
        assert!(mk(f64::NAN, FaultKind::Freeze { duration_s: 1.0 }).validate(1).is_err());
        assert!(mk(0.0, FaultKind::Freeze { duration_s: 0.0 }).validate(1).is_err());
        assert!(mk(0.0, FaultKind::PimFault { duration_s: -2.0 }).validate(1).is_err());
        assert!(mk(0.0, FaultKind::Crash { recover_s: Some(f64::INFINITY) }).validate(1).is_err());
        assert!(mk(0.0, FaultKind::Crash { recover_s: None }).validate(1).is_ok());
    }

    #[test]
    fn bad_policy_is_rejected() {
        let mut p = FaultPlan::none();
        p.deadline_s = -0.5;
        assert!(p.validate(1).is_err());
        p.deadline_s = 0.0;
        p.retry_backoff_s = f64::NAN;
        assert!(p.validate(1).is_err());
    }

    #[test]
    fn random_plan_is_deterministic_and_valid() {
        let rates =
            FaultRates { crash_per_s: 0.05, pim_per_s: 0.05, kv_per_s: 0.05, mean_outage_s: 2.0 };
        let a = FaultPlan::random(7, 4, 100.0, rates);
        let b = FaultPlan::random(7, 4, 100.0, rates);
        assert_eq!(a, b);
        assert!(!a.events.is_empty(), "expected some faults over 400 device-seconds");
        a.validate(4).unwrap();
        let c = FaultPlan::random(8, 4, 100.0, rates);
        assert_ne!(a, c, "different seeds give different plans");
    }

    #[test]
    fn slow_faults_are_validated() {
        let mk = |duration_s: f64, factor: f64| FaultPlan {
            events: vec![FaultEvent {
                device: 0,
                at_s: 0.0,
                kind: FaultKind::Slow { duration_s, factor },
            }],
            ..FaultPlan::none()
        };
        assert!(mk(1.0, 4.0).validate(1).is_ok());
        assert!(mk(0.0, 4.0).validate(1).is_err(), "zero duration");
        assert!(mk(1.0, 0.5).validate(1).is_err(), "speed-up is not a fault");
        assert!(mk(1.0, f64::NAN).validate(1).is_err());
        assert!(mk(1.0, f64::INFINITY).validate(1).is_err());
    }

    #[test]
    fn backoff_saturates_instead_of_overflowing() {
        let plan = FaultPlan { retry_backoff_s: 0.05, ..FaultPlan::none() };
        // Low attempts: the textbook doubling schedule.
        assert_eq!(plan.backoff_s(0), 0.05);
        assert_eq!(plan.backoff_s(1), 0.1);
        assert_eq!(plan.backoff_s(4), 0.8);
        // High attempts: finite, capped, monotone non-decreasing — never
        // infinity (2^1100 would overflow f64) and never a wrapped
        // negative exponent (u32::MAX as i32 is -1).
        let huge = [60, 61, 1_000, 1_100, u32::MAX - 1, u32::MAX];
        let mut prev = 0.0;
        for a in huge {
            let b = plan.backoff_s(a);
            assert!(b.is_finite(), "attempt {a} overflowed to {b}");
            assert!(b >= prev, "attempt {a}: backoff {b} fell below {prev}");
            prev = b;
        }
        assert_eq!(plan.backoff_s(u32::MAX), plan.backoff_s(60), "saturated plateau");
        assert!(plan.backoff_s(u32::MAX) > plan.backoff_s(59));
        // A base large enough to overflow even at the capped exponent
        // clamps to f64::MAX instead of going infinite.
        assert_eq!(saturating_backoff(1e300, u32::MAX), f64::MAX);
        // Disabled backoff stays free at any attempt count.
        assert_eq!(FaultPlan::none().backoff_s(u32::MAX), 0.0);
    }

    #[test]
    fn zero_rates_give_an_empty_schedule() {
        let rates =
            FaultRates { crash_per_s: 0.0, pim_per_s: 0.0, kv_per_s: 0.0, mean_outage_s: 2.0 };
        let p = FaultPlan::random(1, 8, 1000.0, rates);
        assert!(p.events.is_empty());
    }
}
