//! One device running the continuous-batching scheduler.
//!
//! The device advances in *iterations* (Sarathi/Orca-style iteration-level
//! scheduling): each iteration executes one prefill chunk of the oldest
//! admitted-but-unprefetched request plus one batched decode step for every
//! in-flight decoding request, costed by the [`InferenceSim`] timing oracle
//! ([`InferenceSim::prefill_chunk_ns`] / [`InferenceSim::decode_batch_pim_ns`]).
//! New requests therefore reach their first token without waiting for the
//! whole backlog to finish decoding — the property the FCFS
//! run-to-completion baseline (`facil_sim::serving::serve`) lacks.
//!
//! Admission control reserves the request's *entire* worst-case KV
//! footprint (prefill + decode tokens) from a [`FacilSystem`] whose
//! physical memory is prepared at a configurable FMFI, so slab allocations
//! pay realistic huge-page compaction (the paper's Table I mechanism).
//! Reserving up-front makes the scheduler deadlock-free: an admitted
//! request can always run to completion, so `completed + shed == offered`.
//!
//! # Fault behaviour
//!
//! A device built with [`DeviceSim::with_faults`] honours its slice of a
//! [`FaultPlan`]:
//!
//! - **Crash** windows evict every pending and in-flight request (KV
//!   released, progress lost) into the eviction buffer the fleet driver
//!   harvests with [`DeviceSim::take_evicted`]; a permanent crash leaves
//!   the device dead.
//! - **Freeze** windows stall the clock without losing state.
//! - **PIM-fault** windows switch iteration costing to *degraded mode*:
//!   FACIL strategies keep serving immediately at SoC GEMV speed (their
//!   layout is SoC-readable, paying only the small Table III penalty),
//!   while hybrid baselines are charged a full weight re-layout on entry
//!   *and* on exit of the window
//!   ([`InferenceSim::degraded_relayout_ns`]).
//! - **KV-fault** windows block admission; in-flight requests keep their
//!   reservations and keep running.
//!
//! Faults take effect at iteration boundaries (iterations are atomic), so
//! every run remains deterministic for a fixed plan.

use std::collections::VecDeque;

use facil_core::paging::LoadCostModel;
use facil_core::{DType, FacilSystem, MatrixConfig, PagedKvCache, HUGE_PAGE_BYTES};
use facil_sim::{InferenceSim, Strategy};
use facil_telemetry::{ArgValue, NullSink, TraceSink, TrackId};
use facil_workloads::Query;
use serde::{Deserialize, Serialize};

use crate::faults::{FaultKind, FaultPlan};
use crate::metrics::{DeviceReport, QueueSample};
use crate::request::{RequestRecord, ShedReason, ShedRecord};

/// Knobs of the continuous-batching scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Execution strategy the timing oracle runs.
    pub strategy: Strategy,
    /// Seed for the arrival process (consumed by the fleet driver).
    pub seed: u64,
    /// Admission-queue bound; arrivals beyond it are shed (`QueueFull`).
    pub queue_cap: usize,
    /// Maximum concurrently admitted (prefilling + decoding) requests.
    pub max_batch: usize,
    /// Prefill tokens processed per iteration for the request being
    /// prefilled (the chunked-prefill knob).
    pub chunk_tokens: u64,
    /// KV-cache budget in bytes; 0 means "whatever the device's memory has
    /// left after the model weights".
    pub kv_budget_bytes: u64,
    /// Free-memory fragmentation index the physical allocator is prepared
    /// at — KV slab allocations above 0 pay huge-page compaction.
    pub fmfi: f64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            strategy: Strategy::FacilDynamic,
            seed: 1,
            queue_cap: 64,
            max_batch: 8,
            chunk_tokens: 64,
            kv_budget_bytes: 0,
            fmfi: 0.25,
        }
    }
}

/// A request waiting for admission.
#[derive(Debug, Clone, Copy)]
struct PendingReq {
    id: u64,
    arrival_s: f64,
    query: Query,
    attempt: u32,
}

/// An admitted request (KV fully reserved) in prefill or decode phase.
#[derive(Debug)]
struct ActiveReq {
    id: u64,
    arrival_s: f64,
    admitted_s: f64,
    query: Query,
    kv: PagedKvCache,
    prefill_done: u64,
    decoded: u64,
    first_token_s: f64,
    last_token_s: f64,
    attempt: u32,
}

/// A request this device lost to a crash; the fleet driver re-queues it on
/// a survivor (or sheds it as [`ShedReason::Failed`] once the retry budget
/// is exhausted).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvictedReq {
    /// Request id.
    pub id: u64,
    /// Original arrival time, seconds (latencies keep counting from here).
    pub arrival_s: f64,
    /// When the device lost it, seconds.
    pub evicted_s: f64,
    /// Failover attempts already consumed (before this eviction).
    pub attempt: u32,
    /// The query itself, so it can be replayed elsewhere.
    pub query: Query,
}

/// A device outage interval (`end == f64::INFINITY` for a permanent
/// crash).
#[derive(Debug, Clone, Copy)]
struct OutageWindow {
    start: f64,
    end: f64,
    crash: bool,
}

/// One simulated device: queues, KV memory, the iteration clock, and its
/// slice of the fault schedule.
///
/// The sink type parameter records scheduler decisions (admission, sheds,
/// batch formation, degraded-mode transitions, outages) as trace events on
/// a per-device `serve` track; the default [`NullSink`] compiles the
/// instrumentation away, and tracing never changes simulated timing.
#[derive(Debug)]
pub struct DeviceSim<'a, S: TraceSink = NullSink> {
    sim: &'a InferenceSim,
    cfg: ServeConfig,
    device: usize,
    sys: FacilSystem,
    kv_budget: u64,
    kv_layers: u64,
    kv_dim: u64,
    kv_dtype: DType,
    slab_tokens: u64,
    slab_set_bytes: u64,
    compact_cost: LoadCostModel,
    now_s: f64,
    busy_s: f64,
    kv_compact_s: f64,
    pending: VecDeque<PendingReq>,
    prefilling: VecDeque<ActiveReq>,
    decoding: Vec<ActiveReq>,
    completed: Vec<RequestRecord>,
    shed: Vec<ShedRecord>,
    tbt_ms: Vec<f64>,
    queue_peak: usize,
    kv_peak_bytes: u64,
    iterations: u64,
    decode_tokens: u64,
    prefill_chunks: u64,
    series: Vec<QueueSample>,
    // Fault state.
    deadline_s: f64,
    outages: Vec<OutageWindow>,
    pim_windows: Vec<(f64, f64)>,
    kv_windows: Vec<(f64, f64)>,
    slow_windows: Vec<(f64, f64, f64)>,
    next_outage: usize,
    dead: bool,
    in_degraded: bool,
    degraded_s: f64,
    relayout_stall_s: f64,
    slow_s: f64,
    crashes: usize,
    evicted: Vec<EvictedReq>,
    evicted_total: usize,
    // Tracing.
    sink: S,
    track: TrackId,
}

impl<'a> DeviceSim<'a> {
    /// Build a fault-free device around the timing oracle `sim`, preparing
    /// its physical memory at the configured occupancy and FMFI.
    pub fn new(sim: &'a InferenceSim, device: usize, cfg: ServeConfig) -> Self {
        DeviceSim::with_faults(sim, device, cfg, &FaultPlan::none())
    }

    /// Build a device that honours its slice of `plan` (events whose
    /// `device` field matches). The plan is assumed validated
    /// ([`FaultPlan::validate`]).
    pub fn with_faults(
        sim: &'a InferenceSim,
        device: usize,
        cfg: ServeConfig,
        plan: &FaultPlan,
    ) -> Self {
        DeviceSim::with_faults_traced(sim, device, cfg, plan, NullSink)
    }
}

impl<'a, S: TraceSink> DeviceSim<'a, S> {
    /// Build a device that records its scheduler decisions into `sink` on a
    /// `serve`-process track named `device<N>`. Tracing is observational:
    /// the schedule and every latency are identical to the untraced device.
    pub fn with_faults_traced(
        sim: &'a InferenceSim,
        device: usize,
        cfg: ServeConfig,
        plan: &FaultPlan,
        mut sink: S,
    ) -> Self {
        let track = if sink.enabled() {
            sink.track("serve", &format!("device{device}"))
        } else {
            TrackId::default()
        };
        let platform = sim.platform();
        let model = sim.model();
        let mut sys = FacilSystem::new(platform.dram.clone(), platform.pim_arch);
        let capacity = sys.free_bytes();
        let kv_dim = model.kv_heads * model.head_dim();
        let kv_dtype = match model.elem_bytes {
            1 => DType::I8,
            4 => DType::F32,
            _ => DType::F16,
        };
        let slab_tokens = PagedKvCache::new(model.layers, kv_dim, kv_dtype).slab_tokens();
        let slab_bytes = MatrixConfig::new(slab_tokens, kv_dim, kv_dtype)
            .padded_bytes()
            .div_ceil(HUGE_PAGE_BYTES)
            * HUGE_PAGE_BYTES;
        let slab_set_bytes = slab_bytes * model.layers * 2;
        // Everything that is not KV budget counts as occupied (weights, OS,
        // other apps); fragmenting it at the target FMFI makes KV slab
        // allocations pay the compaction the paper measures in Table I.
        let occupied = if cfg.kv_budget_bytes == 0 {
            sim.weight_bytes().min(capacity)
        } else {
            capacity.saturating_sub(cfg.kv_budget_bytes)
        };
        sys.fragment_physical(occupied, cfg.fmfi.clamp(0.0, 1.0));
        let kv_budget = sys.free_bytes();
        let mut outages = Vec::new();
        let mut pim_windows = Vec::new();
        let mut kv_windows = Vec::new();
        let mut slow_windows = Vec::new();
        for e in plan.events.iter().filter(|e| e.device == device) {
            match e.kind {
                FaultKind::Crash { recover_s } => outages.push(OutageWindow {
                    start: e.at_s,
                    end: recover_s.map_or(f64::INFINITY, |r| e.at_s + r),
                    crash: true,
                }),
                FaultKind::Freeze { duration_s } => outages.push(OutageWindow {
                    start: e.at_s,
                    end: e.at_s + duration_s,
                    crash: false,
                }),
                FaultKind::PimFault { duration_s } => {
                    pim_windows.push((e.at_s, e.at_s + duration_s))
                }
                FaultKind::KvFault { duration_s } => kv_windows.push((e.at_s, e.at_s + duration_s)),
                FaultKind::Slow { duration_s, factor } => {
                    slow_windows.push((e.at_s, e.at_s + duration_s, factor))
                }
            }
        }
        // Stable sorts keep the plan's order for coincident faults, so the
        // schedule stays deterministic.
        outages.sort_by(|a, b| a.start.total_cmp(&b.start));
        pim_windows.sort_by(|a, b| a.0.total_cmp(&b.0));
        kv_windows.sort_by(|a, b| a.0.total_cmp(&b.0));
        slow_windows.sort_by(|a, b| a.0.total_cmp(&b.0));
        DeviceSim {
            sim,
            cfg,
            device,
            sys,
            kv_budget,
            kv_layers: model.layers,
            kv_dim,
            kv_dtype,
            slab_tokens,
            slab_set_bytes,
            compact_cost: LoadCostModel::default(),
            now_s: 0.0,
            busy_s: 0.0,
            kv_compact_s: 0.0,
            pending: VecDeque::new(),
            prefilling: VecDeque::new(),
            decoding: Vec::new(),
            completed: Vec::new(),
            shed: Vec::new(),
            tbt_ms: Vec::new(),
            queue_peak: 0,
            kv_peak_bytes: 0,
            iterations: 0,
            decode_tokens: 0,
            prefill_chunks: 0,
            series: Vec::new(),
            deadline_s: plan.deadline_s,
            outages,
            pim_windows,
            kv_windows,
            slow_windows,
            next_outage: 0,
            dead: false,
            in_degraded: false,
            degraded_s: 0.0,
            relayout_stall_s: 0.0,
            slow_s: 0.0,
            crashes: 0,
            evicted: Vec::new(),
            evicted_total: 0,
            sink,
            track,
        }
    }

    /// Simulated time, seconds.
    pub fn now_s(&self) -> f64 {
        self.now_s
    }

    /// Time spent executing iterations (vs idle), seconds.
    pub fn busy_s(&self) -> f64 {
        self.busy_s
    }

    /// KV bytes currently reserved.
    pub fn kv_in_use(&self) -> u64 {
        self.kv_budget - self.sys.free_bytes()
    }

    /// Total KV budget of this device, bytes.
    pub fn kv_budget(&self) -> u64 {
        self.kv_budget
    }

    /// Completed requests so far.
    pub fn completed(&self) -> &[RequestRecord] {
        &self.completed
    }

    /// Shed requests so far.
    pub fn shed(&self) -> &[ShedRecord] {
        &self.shed
    }

    /// Inter-token latencies collected so far, ms.
    pub fn tbt_ms(&self) -> &[f64] {
        &self.tbt_ms
    }

    /// True if the device can accept a request arriving at `t_s` (alive
    /// and not inside an outage window).
    pub fn accepts(&self, t_s: f64) -> bool {
        !self.dead && !self.outages.iter().any(|w| w.start <= t_s && t_s < w.end)
    }

    /// True once a permanent crash has taken the device down for good.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Drain the requests lost to crashes since the last harvest.
    pub fn take_evicted(&mut self) -> Vec<EvictedReq> {
        std::mem::take(&mut self.evicted)
    }

    /// Seconds served in degraded (PIM-down) mode so far.
    pub fn degraded_s(&self) -> f64 {
        self.degraded_s
    }

    /// Seconds served inside gray-failure (slow-node) windows so far.
    pub fn slow_s(&self) -> f64 {
        self.slow_s
    }

    /// Worst-case KV footprint of `q` in bytes: whole slab sets covering
    /// `prefill + decode` tokens across every layer's K and V halves.
    pub fn kv_bytes_needed(&self, q: &Query) -> u64 {
        let tokens = q.prefill.max(1) + q.decode;
        tokens.div_ceil(self.slab_tokens) * self.slab_set_bytes
    }

    /// Outstanding work in tokens (queued + admitted, prefill + decode) —
    /// the load signal the least-loaded router reads.
    pub fn backlog_tokens(&self) -> u64 {
        let pending: u64 =
            self.pending.iter().map(|p| p.query.prefill.max(1) + p.query.decode).sum();
        let prefilling: u64 = self
            .prefilling
            .iter()
            .map(|r| (r.query.prefill.max(1) - r.prefill_done) + r.query.decode)
            .sum();
        let decoding: u64 = self.decoding.iter().map(|r| r.query.decode - r.decoded).sum();
        pending + prefilling + decoding
    }

    fn active_count(&self) -> usize {
        self.prefilling.len() + self.decoding.len()
    }

    fn has_active(&self) -> bool {
        self.active_count() > 0
    }

    /// First PIM-fault window containing `t`, if any.
    fn pim_down_at(&self, t: f64) -> bool {
        self.pim_windows.iter().any(|&(s, e)| s <= t && t < e)
    }

    /// End of the KV-fault window containing `t`, if admission is blocked.
    fn kv_block_end(&self, t: f64) -> Option<f64> {
        self.kv_windows.iter().find(|&&(s, e)| s <= t && t < e).map(|&(_, e)| e)
    }

    /// Iteration-time multiplier at `t` (1.0 when healthy). Overlapping
    /// gray-failure windows compound multiplicatively.
    fn slow_factor_at(&self, t: f64) -> f64 {
        self.slow_windows.iter().filter(|&&(s, e, _)| s <= t && t < e).map(|&(_, _, f)| f).product()
    }

    /// Trace a shed decision as an instant event on the device track.
    fn record_shed(&mut self, t_s: f64, id: u64, reason: ShedReason) {
        self.sink.instant(
            self.track,
            "shed",
            t_s * 1e9,
            &[("id", ArgValue::U64(id)), ("reason", ArgValue::Str(reason.as_str()))],
        );
    }

    /// Offer a request arriving at `t_s`. It is queued, or shed with a
    /// recorded reason — never silently dropped.
    pub fn enqueue(&mut self, t_s: f64, id: u64, query: Query) {
        self.enqueue_attempt(t_s, t_s, id, query, 0);
    }

    /// Offer a (possibly re-queued) request landing on this device at
    /// `t_s`; `arrival_s` is the original fleet arrival time latencies are
    /// measured from, and `attempt` counts earlier failovers.
    pub fn enqueue_attempt(
        &mut self,
        t_s: f64,
        arrival_s: f64,
        id: u64,
        query: Query,
        attempt: u32,
    ) {
        if self.dead {
            // Defensive: the fleet routes around dead devices, but a direct
            // caller must not lose the request either.
            self.evicted.push(EvictedReq { id, arrival_s, evicted_s: t_s, attempt, query });
            self.evicted_total += 1;
            return;
        }
        if !self.has_active() && self.pending.is_empty() {
            self.jump_idle_to(t_s);
            if self.dead {
                self.evicted.push(EvictedReq { id, arrival_s, evicted_s: t_s, attempt, query });
                self.evicted_total += 1;
                return;
            }
        }
        if self.kv_bytes_needed(&query) > self.kv_budget {
            self.record_shed(t_s, id, ShedReason::Oversized);
            self.shed.push(ShedRecord {
                id,
                device: self.device,
                arrival_s,
                reason: ShedReason::Oversized,
            });
            return;
        }
        if self.pending.len() >= self.cfg.queue_cap {
            self.record_shed(t_s, id, ShedReason::QueueFull);
            self.shed.push(ShedRecord {
                id,
                device: self.device,
                arrival_s,
                reason: ShedReason::QueueFull,
            });
            return;
        }
        self.pending.push_back(PendingReq { id, arrival_s, query, attempt });
        self.queue_peak = self.queue_peak.max(self.pending.len());
    }

    /// Admit head-of-line requests while batch slots and KV memory allow.
    ///
    /// Admission is strict FCFS (no bypass): when the head does not fit the
    /// free KV budget it *waits* for in-flight requests to release theirs —
    /// except on an idle device, where waiting could never help, so the
    /// head is shed (`NoMemory`) and the queue keeps making progress.
    /// Requests whose deadline already passed are shed (`DeadlineExpired`)
    /// instead of admitted, and a KV-fault window pauses admission
    /// entirely.
    fn try_admit(&mut self) {
        while self.active_count() < self.cfg.max_batch.max(1) {
            let Some(&front) = self.pending.front() else { return };
            if self.deadline_s > 0.0 && self.now_s > front.arrival_s + self.deadline_s {
                self.pending.pop_front();
                self.record_shed(self.now_s, front.id, ShedReason::DeadlineExpired);
                self.shed.push(ShedRecord {
                    id: front.id,
                    device: self.device,
                    arrival_s: front.arrival_s,
                    reason: ShedReason::DeadlineExpired,
                });
                continue;
            }
            if self.kv_block_end(self.now_s).is_some() {
                return;
            }
            let tokens = front.query.prefill.max(1) + front.query.decode;
            let stats_before = self.sys.alloc_stats();
            let mut kv = PagedKvCache::new(self.kv_layers, self.kv_dim, self.kv_dtype);
            match kv.append(&mut self.sys, tokens) {
                Ok(()) => {
                    // Huge-page compaction performed for this reservation is
                    // real work: charge it to the clock (the FMFI knob's
                    // visible cost).
                    let moved = self.sys.alloc_stats().frames_moved - stats_before.frames_moved;
                    let compact_s = moved as f64 * self.compact_cost.per_frame_moved;
                    self.now_s += compact_s;
                    self.busy_s += compact_s;
                    self.kv_compact_s += compact_s;
                    self.pending.pop_front();
                    self.kv_peak_bytes = self.kv_peak_bytes.max(self.kv_in_use());
                    self.sink.instant(
                        self.track,
                        "admit",
                        self.now_s * 1e9,
                        &[
                            ("id", ArgValue::U64(front.id)),
                            ("prefill", ArgValue::U64(front.query.prefill)),
                            ("decode", ArgValue::U64(front.query.decode)),
                        ],
                    );
                    self.prefilling.push_back(ActiveReq {
                        id: front.id,
                        arrival_s: front.arrival_s,
                        admitted_s: self.now_s.max(front.arrival_s),
                        query: front.query,
                        kv,
                        prefill_done: 0,
                        decoded: 0,
                        first_token_s: 0.0,
                        last_token_s: 0.0,
                        attempt: front.attempt,
                    });
                }
                Err(_) => {
                    // A failed append leaves already-extended slabs
                    // reserved; release them before deciding.
                    kv.free(&mut self.sys);
                    if self.active_count() == 0 {
                        self.pending.pop_front();
                        self.record_shed(self.now_s, front.id, ShedReason::NoMemory);
                        self.shed.push(ShedRecord {
                            id: front.id,
                            device: self.device,
                            arrival_s: front.arrival_s,
                            reason: ShedReason::NoMemory,
                        });
                    } else {
                        return;
                    }
                }
            }
        }
    }

    /// Execute one iteration: a prefill chunk for the oldest prefilling
    /// request plus one batched decode step for every decoding request.
    /// Inside a PIM-fault window the iteration is costed in degraded mode,
    /// and entering/leaving the window charges the strategy's re-layout
    /// stall (zero for FACIL, a full weight re-layout for hybrid).
    fn step(&mut self) {
        debug_assert!(self.has_active(), "step requires admitted work");
        let degraded = self.pim_down_at(self.now_s);
        if degraded != self.in_degraded {
            let stall = self.sim.degraded_relayout_ns(self.cfg.strategy) / 1e9;
            self.sink.instant(
                self.track,
                if degraded { "degraded-enter" } else { "degraded-exit" },
                self.now_s * 1e9,
                &[],
            );
            if stall > 0.0 {
                self.sink.complete(
                    self.track,
                    "relayout-stall",
                    self.now_s * 1e9,
                    stall * 1e9,
                    &[],
                );
            }
            self.now_s += stall;
            self.busy_s += stall;
            self.relayout_stall_s += stall;
            self.in_degraded = degraded;
        }
        let ctxs: Vec<u64> =
            self.decoding.iter().map(|r| r.query.prefill.max(1) + r.decoded).collect();
        let decode_ns = if ctxs.is_empty() {
            0.0
        } else if degraded {
            self.sim.decode_batch_degraded_ns(self.cfg.strategy, &ctxs)
        } else if self.cfg.strategy == Strategy::SocOnly {
            self.sim.decode_batch_soc_ns(&ctxs)
        } else {
            self.sim.decode_batch_pim_ns(&ctxs)
        };
        let chunk = self.prefilling.front().map(|r| {
            let total = r.query.prefill.max(1);
            let len = self.cfg.chunk_tokens.max(1).min(total - r.prefill_done);
            (r.prefill_done, len, total)
        });
        let prefill_ns = chunk.map_or(0.0, |(start, len, total)| {
            if degraded {
                self.sim.prefill_chunk_degraded_ns(self.cfg.strategy, start, len, total)
            } else {
                self.sim.prefill_chunk_ns(self.cfg.strategy, start, len, total)
            }
        });
        // Gray failure: a slow node keeps serving, but every iteration takes
        // `factor`× its healthy time while the window is open.
        let slow = self.slow_factor_at(self.now_s);
        let dt = (decode_ns + prefill_ns) / 1e9 * slow;
        self.sink.complete(
            self.track,
            "batch",
            self.now_s * 1e9,
            dt * 1e9,
            &[
                ("decode", ArgValue::U64(ctxs.len() as u64)),
                ("prefill", ArgValue::U64(chunk.map_or(0, |(_, len, _)| len))),
                ("degraded", ArgValue::U64(u64::from(degraded))),
                ("slow", ArgValue::U64(u64::from(slow > 1.0))),
            ],
        );
        self.now_s += dt;
        self.busy_s += dt;
        if degraded {
            self.degraded_s += dt;
        }
        if slow > 1.0 {
            self.slow_s += dt;
        }
        self.iterations += 1;
        self.decode_tokens += ctxs.len() as u64;
        self.prefill_chunks += u64::from(chunk.is_some());
        let now = self.now_s;

        // Every decoding request emits one token this iteration.
        let mut i = 0;
        while i < self.decoding.len() {
            let r = &mut self.decoding[i];
            r.decoded += 1;
            let tbt = (now - r.last_token_s) * 1e3;
            r.last_token_s = now;
            let done = r.decoded >= r.query.decode;
            self.tbt_ms.push(tbt);
            if done {
                let mut r = self.decoding.swap_remove(i);
                r.kv.free(&mut self.sys);
                self.finish(r, now);
            } else {
                i += 1;
            }
        }

        // The prefill chunk completes; a finished prefill emits the first
        // token and moves to the decode set.
        if let Some((_, len, total)) = chunk {
            let finished = match self.prefilling.front_mut() {
                Some(head) => {
                    head.prefill_done += len;
                    head.prefill_done >= total
                }
                None => false,
            };
            if finished {
                if let Some(mut r) = self.prefilling.pop_front() {
                    r.first_token_s = now;
                    r.last_token_s = now;
                    if r.query.decode == 0 {
                        r.kv.free(&mut self.sys);
                        self.finish(r, now);
                    } else {
                        self.decoding.push(r);
                    }
                }
            }
        }

        self.series.push(QueueSample {
            t_s: now,
            queued: self.pending.len(),
            active: self.active_count(),
            kv_bytes: self.kv_in_use(),
        });
    }

    fn finish(&mut self, r: ActiveReq, now: f64) {
        self.completed.push(RequestRecord {
            id: r.id,
            device: self.device,
            arrival_s: r.arrival_s,
            admitted_s: r.admitted_s,
            ttft_ms: (r.first_token_s - r.arrival_s) * 1e3,
            ttlt_ms: (now - r.arrival_s) * 1e3,
            prefill: r.query.prefill,
            decode: r.query.decode,
            retries: r.attempt,
        });
    }

    /// Move every queued and in-flight request to the eviction buffer (KV
    /// released, progress lost).
    fn evict_all(&mut self, t_s: f64) {
        for p in self.pending.drain(..) {
            self.evicted.push(EvictedReq {
                id: p.id,
                arrival_s: p.arrival_s,
                evicted_s: t_s,
                attempt: p.attempt,
                query: p.query,
            });
        }
        for mut r in self.prefilling.drain(..).chain(self.decoding.drain(..)) {
            r.kv.free(&mut self.sys);
            self.evicted.push(EvictedReq {
                id: r.id,
                arrival_s: r.arrival_s,
                evicted_s: t_s,
                attempt: r.attempt,
                query: r.query,
            });
        }
    }

    /// Apply the next outage window once the clock has crossed its start.
    /// Returns true if any state changed (caller re-evaluates its loop).
    fn process_outage(&mut self) -> bool {
        let Some(&w) = self.outages.get(self.next_outage) else { return false };
        if self.now_s < w.start {
            return false;
        }
        self.next_outage += 1;
        if w.crash {
            self.crashes += 1;
            let before = self.evicted.len();
            self.evict_all(self.now_s);
            let lost = self.evicted.len() - before;
            self.evicted_total += lost;
            self.sink.instant(
                self.track,
                "crash",
                self.now_s * 1e9,
                &[
                    ("evicted", ArgValue::U64(lost as u64)),
                    ("permanent", ArgValue::U64(u64::from(!w.end.is_finite()))),
                ],
            );
            if w.end.is_finite() {
                self.now_s = self.now_s.max(w.end);
            } else {
                self.dead = true;
            }
        } else if self.now_s < w.end {
            // Freeze: the clock stalls (no busy time), nothing is lost.
            self.sink.complete(
                self.track,
                "freeze",
                self.now_s * 1e9,
                (w.end - self.now_s) * 1e9,
                &[],
            );
            self.now_s = w.end;
        }
        true
    }

    /// Jump an *empty* device's clock forward to `t_s`, stepping over any
    /// outage windows on the way (nothing is present to evict; a permanent
    /// crash on the way still kills the device).
    fn jump_idle_to(&mut self, t_s: f64) {
        debug_assert!(!self.has_active() && self.pending.is_empty());
        while let Some(&w) = self.outages.get(self.next_outage) {
            if w.start > t_s.max(self.now_s) {
                break;
            }
            self.next_outage += 1;
            if w.crash {
                self.crashes += 1;
            }
            if w.end.is_infinite() {
                self.dead = true;
                self.now_s = self.now_s.max(w.start);
                return;
            }
            self.now_s = self.now_s.max(w.end);
        }
        self.now_s = self.now_s.max(t_s);
    }

    /// Run the scheduler until the clock reaches `limit` or there is
    /// nothing left to do (`limit` may be infinite for a drain).
    fn run_until(&mut self, limit: f64) {
        loop {
            if self.dead {
                return;
            }
            if self.process_outage() {
                continue;
            }
            self.try_admit();
            if self.has_active() {
                if self.now_s >= limit {
                    return;
                }
                self.step();
                continue;
            }
            if !self.pending.is_empty() {
                // Head blocked by a KV-fault window on an idle device: jump
                // to the unblock point (bounded by the limit).
                if let Some(end) = self.kv_block_end(self.now_s) {
                    let target = end.min(limit);
                    if target > self.now_s {
                        self.now_s = target;
                        continue;
                    }
                }
                return;
            }
            if self.now_s < limit && limit.is_finite() {
                self.jump_idle_to(limit);
            }
            return;
        }
    }

    /// Run iterations until the clock reaches `t_s` or the device runs out
    /// of admitted work (an idle device jumps its clock forward to `t_s`).
    pub fn advance_until(&mut self, t_s: f64) {
        self.run_until(t_s);
    }

    /// Run every queued and admitted request to completion (or eviction).
    pub fn drain(&mut self) {
        self.run_until(f64::INFINITY);
    }

    /// Per-device report; `span_s` is the fleet-wide wall-clock span the
    /// utilization is normalized against.
    pub fn report(&self, span_s: f64) -> DeviceReport {
        let stats = self.sys.alloc_stats();
        // Downsample the per-iteration series to a bounded time series.
        let stride = self.series.len().div_ceil(240).max(1);
        let queue_depth: Vec<QueueSample> = self.series.iter().step_by(stride).copied().collect();
        // `.max(0.0)` also normalizes the empty sum's -0.0 identity.
        let down_s: f64 = self
            .outages
            .iter()
            .map(|w| (w.end.min(span_s) - w.start.min(span_s)).max(0.0))
            .sum::<f64>()
            .max(0.0);
        // Zero-span runs have no observed device-time: report 0.0 rather
        // than a vacuous 1.0 (same discipline as `DramStats::hit_rate`).
        let uptime = if span_s > 0.0 { (1.0 - down_s / span_s).clamp(0.0, 1.0) } else { 0.0 };
        DeviceReport {
            device: self.device,
            completed: self.completed.len(),
            shed: self.shed.len(),
            utilization: if span_s > 0.0 { self.busy_s / span_s } else { 0.0 },
            queue_peak: self.queue_peak,
            kv_budget_bytes: self.kv_budget,
            kv_peak_bytes: self.kv_peak_bytes,
            kv_compact_s: self.kv_compact_s,
            kv_pages_direct: stats.pages_direct,
            kv_pages_compacted: stats.pages_compacted,
            kv_frames_moved: stats.frames_moved,
            iterations: self.iterations,
            mean_batch: if self.iterations == 0 {
                0.0
            } else {
                (self.decode_tokens + self.prefill_chunks) as f64 / self.iterations as f64
            },
            uptime,
            down_s,
            degraded_s: self.degraded_s,
            relayout_stall_s: self.relayout_stall_s,
            slow_s: self.slow_s,
            crashes: self.crashes,
            evicted: self.evicted_total,
            queue_depth,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultEvent;
    use facil_soc::{Platform, PlatformId};
    use std::sync::OnceLock;

    fn sim() -> &'static InferenceSim {
        static SIM: OnceLock<InferenceSim> = OnceLock::new();
        SIM.get_or_init(|| InferenceSim::new(Platform::get(PlatformId::Iphone)).unwrap())
    }

    fn unfragmented() -> ServeConfig {
        ServeConfig { fmfi: 0.0, ..ServeConfig::default() }
    }

    fn plan_with(events: Vec<FaultEvent>) -> FaultPlan {
        FaultPlan { events, ..FaultPlan::none() }
    }

    #[test]
    fn lone_request_matches_engine_timings() {
        // With the chunk larger than the prompt and nothing else in flight,
        // the iteration scheduler degenerates to the engine's run_query.
        let cfg = ServeConfig { chunk_tokens: 4096, ..unfragmented() };
        let q = Query { prefill: 64, decode: 8 };
        for strategy in [Strategy::FacilStatic, Strategy::HybridStatic, Strategy::SocOnly] {
            let mut dev = DeviceSim::new(sim(), 0, ServeConfig { strategy, ..cfg });
            dev.enqueue(0.0, 0, q);
            dev.drain();
            let r = dev.completed()[0];
            let iso = sim().run_query(strategy, q);
            let rel = |a: f64, b: f64| (a - b).abs() / b.abs().max(1e-12);
            assert!(rel(r.ttft_ms, iso.ttft_ns / 1e6) < 1e-9, "{strategy}: ttft");
            assert!(rel(r.ttlt_ms, iso.ttlt_ns / 1e6) < 1e-9, "{strategy}: ttlt");
        }
    }

    #[test]
    fn chunking_never_beats_whole_prefill_for_a_lone_request() {
        let q = Query { prefill: 100, decode: 4 };
        let mut whole =
            DeviceSim::new(sim(), 0, ServeConfig { chunk_tokens: 4096, ..unfragmented() });
        whole.enqueue(0.0, 0, q);
        whole.drain();
        let mut chunked =
            DeviceSim::new(sim(), 0, ServeConfig { chunk_tokens: 16, ..unfragmented() });
        chunked.enqueue(0.0, 0, q);
        chunked.drain();
        assert_eq!(chunked.completed().len(), 1);
        assert!(chunked.completed()[0].ttft_ms >= whole.completed()[0].ttft_ms - 1e-9);
    }

    #[test]
    fn queue_cap_sheds_excess_arrivals() {
        let cfg = ServeConfig { queue_cap: 4, ..unfragmented() };
        let mut dev = DeviceSim::new(sim(), 0, cfg);
        let q = Query { prefill: 16, decode: 4 };
        for id in 0..10 {
            dev.enqueue(0.0, id, q);
        }
        // No admission ran between the back-to-back arrivals, so exactly
        // queue_cap requests survive.
        assert_eq!(dev.shed().len(), 6);
        assert!(dev.shed().iter().all(|s| s.reason == ShedReason::QueueFull));
        dev.drain();
        assert_eq!(dev.completed().len() + dev.shed().len(), 10);
        assert_eq!(dev.completed().len(), 4);
    }

    #[test]
    fn oversized_request_is_shed_up_front() {
        // A budget smaller than one slab set can never host any request.
        let cfg = ServeConfig { kv_budget_bytes: 4 << 20, ..unfragmented() };
        let mut dev = DeviceSim::new(sim(), 0, cfg);
        dev.enqueue(0.0, 0, Query { prefill: 8, decode: 8 });
        dev.drain();
        assert_eq!(dev.completed().len(), 0);
        assert_eq!(dev.shed().len(), 1);
        assert_eq!(dev.shed()[0].reason, ShedReason::Oversized);
    }

    #[test]
    fn kv_backpressure_serializes_requests_without_shedding() {
        let probe = DeviceSim::new(sim(), 0, unfragmented());
        let q = Query { prefill: 16, decode: 16 };
        let need = probe.kv_bytes_needed(&q);
        // Budget for exactly one in-flight request.
        let cfg = ServeConfig { kv_budget_bytes: need, ..unfragmented() };
        let mut dev = DeviceSim::new(sim(), 0, cfg);
        assert_eq!(dev.kv_budget(), need);
        for id in 0..3 {
            dev.enqueue(0.0, id, q);
        }
        dev.drain();
        assert_eq!(dev.shed().len(), 0, "admission must wait, not shed");
        assert_eq!(dev.completed().len(), 3);
        // Never more than one reservation at a time, and all memory back.
        assert!(dev.report(dev.now_s()).kv_peak_bytes <= need);
        assert_eq!(dev.kv_in_use(), 0);
        // FCFS order preserved.
        let ids: Vec<u64> = dev.completed().iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn kv_memory_is_fully_released_after_drain() {
        let mut dev = DeviceSim::new(sim(), 0, unfragmented());
        for id in 0..12 {
            dev.enqueue(id as f64 * 0.01, id, Query { prefill: 32, decode: 8 });
        }
        dev.drain();
        assert_eq!(dev.completed().len(), 12);
        assert_eq!(dev.kv_in_use(), 0);
    }

    #[test]
    fn fragmentation_charges_compaction_time() {
        let q = Query { prefill: 64, decode: 32 };
        let run = |fmfi: f64| {
            let mut dev = DeviceSim::new(sim(), 0, ServeConfig { fmfi, ..ServeConfig::default() });
            for id in 0..8 {
                dev.enqueue(0.0, id, q);
            }
            dev.drain();
            dev.report(dev.now_s())
        };
        let clean = run(0.0);
        let fragged = run(0.9);
        assert_eq!(clean.kv_frames_moved, 0);
        assert_eq!(clean.kv_compact_s, 0.0);
        assert!(fragged.kv_frames_moved > 0, "high FMFI must force compaction");
        assert!(fragged.kv_compact_s > 0.0);
    }

    #[test]
    fn zero_decode_request_finishes_at_prefill() {
        let mut dev = DeviceSim::new(sim(), 0, unfragmented());
        dev.enqueue(0.0, 0, Query { prefill: 32, decode: 0 });
        dev.drain();
        let r = dev.completed()[0];
        assert!((r.ttft_ms - r.ttlt_ms).abs() < 1e-12);
        assert_eq!(dev.tbt_ms().len(), 0);
        assert_eq!(dev.kv_in_use(), 0);
    }

    #[test]
    fn continuous_batching_interleaves_late_arrival_before_backlog_finishes() {
        // A request arriving while a long decode is in flight must get its
        // first token before the in-flight request finishes — the defining
        // difference from FCFS run-to-completion.
        let mut dev = DeviceSim::new(sim(), 0, unfragmented());
        dev.enqueue(0.0, 0, Query { prefill: 64, decode: 512 });
        let long = sim().run_query(Strategy::FacilDynamic, Query { prefill: 64, decode: 512 });
        let mid_s = long.ttlt_ns / 1e9 * 0.25;
        dev.advance_until(mid_s);
        dev.enqueue(mid_s, 1, Query { prefill: 16, decode: 4 });
        dev.drain();
        let late = dev.completed().iter().find(|r| r.id == 1).expect("late request served");
        let first = dev.completed().iter().find(|r| r.id == 0).expect("first request served");
        let late_first_token_s = late.arrival_s + late.ttft_ms / 1e3;
        let first_done_s = first.arrival_s + first.ttlt_ms / 1e3;
        assert!(
            late_first_token_s < first_done_s,
            "late TTFT at {late_first_token_s:.3}s must precede backlog completion at {first_done_s:.3}s"
        );
    }

    #[test]
    fn crash_evicts_everything_and_loses_nothing() {
        let plan = plan_with(vec![FaultEvent {
            device: 0,
            at_s: 0.001,
            kind: FaultKind::Crash { recover_s: None },
        }]);
        let mut dev = DeviceSim::with_faults(sim(), 0, unfragmented(), &plan);
        for id in 0..5 {
            dev.enqueue(0.0, id, Query { prefill: 64, decode: 64 });
        }
        dev.drain();
        assert!(dev.is_dead());
        let lost = dev.take_evicted();
        assert_eq!(dev.completed().len() + dev.shed().len() + lost.len(), 5);
        assert!(!lost.is_empty(), "the crash must interrupt in-flight work");
        assert_eq!(dev.kv_in_use(), 0, "evicted KV reservations are released");
        for e in &lost {
            assert!(e.evicted_s >= 0.001);
            assert_eq!(e.attempt, 0);
        }
        // A dead device refuses new arrivals but still never loses them.
        assert!(!dev.accepts(10.0));
        dev.enqueue(10.0, 99, Query { prefill: 8, decode: 8 });
        let again = dev.take_evicted();
        assert_eq!(again.len(), 1);
        assert_eq!(again[0].id, 99);
    }

    #[test]
    fn recovered_crash_comes_back_and_serves_again() {
        let plan = plan_with(vec![FaultEvent {
            device: 0,
            at_s: 0.001,
            kind: FaultKind::Crash { recover_s: Some(1.0) },
        }]);
        let mut dev = DeviceSim::with_faults(sim(), 0, unfragmented(), &plan);
        dev.enqueue(0.0, 0, Query { prefill: 64, decode: 64 });
        dev.drain();
        assert!(!dev.is_dead());
        assert_eq!(dev.take_evicted().len(), 1);
        assert!(!dev.accepts(0.5), "down during the outage window");
        assert!(dev.accepts(2.0), "recovered after the window");
        dev.enqueue(2.0, 1, Query { prefill: 16, decode: 4 });
        dev.drain();
        assert_eq!(dev.completed().len(), 1);
        assert_eq!(dev.completed()[0].id, 1);
    }

    #[test]
    fn freeze_delays_but_loses_nothing() {
        let freeze_s = 3.0;
        let plan = plan_with(vec![FaultEvent {
            device: 0,
            at_s: 0.0005,
            kind: FaultKind::Freeze { duration_s: freeze_s },
        }]);
        let q = Query { prefill: 64, decode: 32 };
        let mut frozen = DeviceSim::with_faults(sim(), 0, unfragmented(), &plan);
        frozen.enqueue(0.0, 0, q);
        frozen.drain();
        let mut clean = DeviceSim::new(sim(), 0, unfragmented());
        clean.enqueue(0.0, 0, q);
        clean.drain();
        assert_eq!(frozen.completed().len(), 1);
        assert!(frozen.take_evicted().is_empty());
        let delay_ms = frozen.completed()[0].ttlt_ms - clean.completed()[0].ttlt_ms;
        assert!(
            delay_ms > 0.9 * freeze_s * 1e3,
            "freeze must delay completion by about the window ({delay_ms} ms)"
        );
    }

    #[test]
    fn pim_fault_degrades_facil_but_stalls_hybrid_for_relayout() {
        let window =
            FaultEvent { device: 0, at_s: 0.0, kind: FaultKind::PimFault { duration_s: 1e9 } };
        let q = Query { prefill: 64, decode: 64 };
        let run = |strategy, plan: &FaultPlan| {
            let mut dev =
                DeviceSim::with_faults(sim(), 0, ServeConfig { strategy, ..unfragmented() }, plan);
            dev.enqueue(0.0, 0, q);
            dev.drain();
            (dev.completed()[0], dev.report(dev.now_s()))
        };
        let plan = plan_with(vec![window]);
        let (facil, facil_rep) = run(Strategy::FacilDynamic, &plan);
        let (hybrid, hybrid_rep) = run(Strategy::HybridDynamic, &plan);
        let (facil_ok, _) = run(Strategy::FacilDynamic, &FaultPlan::none());
        // FACIL: no relayout stall, serves right away at SoC speed.
        assert_eq!(facil_rep.relayout_stall_s, 0.0);
        assert!(facil_rep.degraded_s > 0.0);
        assert!(facil.ttlt_ms > facil_ok.ttlt_ms, "degraded decode is slower than PIM decode");
        // Hybrid: pays a full weight re-layout before serving again.
        assert!(hybrid_rep.relayout_stall_s > 0.0);
        assert!(
            hybrid.ttft_ms > facil.ttft_ms,
            "hybrid TTFT {} must exceed FACIL degraded TTFT {} (relayout stall)",
            hybrid.ttft_ms,
            facil.ttft_ms
        );
    }

    #[test]
    fn slow_node_keeps_serving_but_stretches_latency() {
        let factor = 8.0;
        let plan = plan_with(vec![FaultEvent {
            device: 0,
            at_s: 0.0,
            kind: FaultKind::Slow { duration_s: 1e9, factor },
        }]);
        let q = Query { prefill: 64, decode: 32 };
        let mut slow = DeviceSim::with_faults(sim(), 0, unfragmented(), &plan);
        slow.enqueue(0.0, 0, q);
        slow.drain();
        let mut clean = DeviceSim::new(sim(), 0, unfragmented());
        clean.enqueue(0.0, 0, q);
        clean.drain();
        // Gray failure: nothing is lost or shed — the request completes,
        // just `factor`× slower (modulo the unscaled KV-compaction charge).
        assert_eq!(slow.completed().len(), 1);
        assert!(slow.take_evicted().is_empty());
        assert_eq!(slow.shed().len(), 0);
        let ratio = slow.completed()[0].ttlt_ms / clean.completed()[0].ttlt_ms;
        assert!(
            (ratio - factor).abs() < 0.05 * factor,
            "slow TTLT must be ~{factor}x the healthy one, got {ratio:.2}x"
        );
        assert!(slow.slow_s() > 0.0);
        assert_eq!(clean.slow_s(), 0.0);
        let rep = slow.report(slow.now_s());
        assert_eq!(rep.slow_s, slow.slow_s());
        // The node still passes "health checks": it accepts arrivals.
        assert!(slow.accepts(0.5));
    }

    #[test]
    fn kv_fault_blocks_admission_then_resumes() {
        let block_s = 2.0;
        let plan = plan_with(vec![FaultEvent {
            device: 0,
            at_s: 0.0,
            kind: FaultKind::KvFault { duration_s: block_s },
        }]);
        let mut dev = DeviceSim::with_faults(sim(), 0, unfragmented(), &plan);
        dev.enqueue(0.0, 0, Query { prefill: 16, decode: 4 });
        dev.drain();
        assert_eq!(dev.completed().len(), 1);
        let r = dev.completed()[0];
        assert!(
            r.admitted_s >= block_s,
            "admission at {} must wait out the {block_s}s KV fault",
            r.admitted_s
        );
    }

    #[test]
    fn expired_deadline_sheds_at_admission() {
        let mut plan = FaultPlan::none();
        plan.deadline_s = 0.5;
        // Freeze the device past every deadline while requests queue up.
        plan.events.push(FaultEvent {
            device: 0,
            at_s: 0.0001,
            kind: FaultKind::Freeze { duration_s: 10.0 },
        });
        // max_batch 1: only the head is admitted before the freeze, the
        // rest queue up and expire behind it.
        let cfg = ServeConfig { max_batch: 1, ..unfragmented() };
        let mut dev = DeviceSim::with_faults(sim(), 0, cfg, &plan);
        for id in 0..3 {
            dev.enqueue(0.0, id, Query { prefill: 16, decode: 4 });
        }
        dev.drain();
        assert!(dev.completed().len() <= 1, "late arrivals must expire");
        assert!(dev.shed().iter().any(|s| s.reason == ShedReason::DeadlineExpired));
        assert_eq!(dev.completed().len() + dev.shed().len(), 3);
    }
}
