//! Request lifecycle records: what happened to every query offered to a
//! device — completed with its latency breakdown, or shed with an explicit
//! reason. The accounting invariant (property-tested in
//! `tests/proptests.rs`) is `completed + shed == offered`: no request is
//! ever silently dropped.

use serde::{Deserialize, Serialize};

/// Why an offered request was rejected instead of served.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ShedReason {
    /// The admission queue was at `queue_cap` when the request arrived.
    QueueFull,
    /// The request's worst-case KV footprint exceeds the device's entire
    /// KV budget — it could never be admitted, even on an idle device.
    Oversized,
    /// The head-of-line request did not fit the free KV budget on an
    /// otherwise idle device (fragmentation ate the budget); shedding it
    /// keeps the queue making progress.
    NoMemory,
    /// The request was lost to device failures and its retry budget is
    /// exhausted (or no device could ever accept it again).
    Failed,
    /// The request's deadline elapsed before it could be admitted (or
    /// re-queued after a failure).
    DeadlineExpired,
}

impl ShedReason {
    /// Stable kebab-case name of the reason (JSON reports and trace-event
    /// arguments share this spelling).
    pub fn as_str(&self) -> &'static str {
        match self {
            ShedReason::QueueFull => "queue-full",
            ShedReason::Oversized => "oversized",
            ShedReason::NoMemory => "no-memory",
            ShedReason::Failed => "failed",
            ShedReason::DeadlineExpired => "deadline-expired",
        }
    }
}

impl std::fmt::Display for ShedReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// One served request with its SLO-relevant timings (all latencies include
/// queueing delay, measured from arrival).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequestRecord {
    /// Request id (arrival order across the fleet).
    pub id: u64,
    /// Device that served it.
    pub device: usize,
    /// Arrival time, seconds from the start of the run.
    pub arrival_s: f64,
    /// Admission time (KV reserved, prefill eligible), seconds.
    pub admitted_s: f64,
    /// Time to first token, ms (arrival to end of prefill).
    pub ttft_ms: f64,
    /// Time to last token, ms (arrival to final decode step).
    pub ttlt_ms: f64,
    /// Prompt length, tokens.
    pub prefill: u64,
    /// Generation length, tokens.
    pub decode: u64,
    /// Times this request was re-queued after a device failure before it
    /// completed (0 on the failure-free path).
    pub retries: u32,
}

/// One rejected request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShedRecord {
    /// Request id (arrival order across the fleet).
    pub id: u64,
    /// Device that rejected it.
    pub device: usize,
    /// Arrival time, seconds.
    pub arrival_s: f64,
    /// Why it was rejected.
    pub reason: ShedReason,
}
