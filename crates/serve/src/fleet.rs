//! Multi-device fleet driver: shards one arrival stream across N devices
//! under a pluggable routing policy and aggregates the fleet-wide report.
//!
//! Every device runs the same continuous-batching scheduler
//! ([`DeviceSim`]); the fleet advances all device clocks to each arrival
//! instant before routing, so the least-loaded policy reads consistent
//! load signals and the whole run is deterministic for a fixed seed.

use facil_sim::{InferenceSim, Summary};
use facil_workloads::{ArrivalProcess, Dataset};
use serde::{Deserialize, Serialize};

use crate::device::{DeviceSim, ServeConfig};
use crate::metrics::ServeReport;
use crate::request::{RequestRecord, ShedReason, ShedRecord};

/// How arrivals are assigned to devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Routing {
    /// Cycle through devices in index order.
    RoundRobin,
    /// Route to the device with the least outstanding work (backlog
    /// tokens); ties break to the lowest index.
    LeastLoaded,
}

impl std::fmt::Display for Routing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Routing::RoundRobin => "round-robin",
            Routing::LeastLoaded => "least-loaded",
        };
        write!(f, "{s}")
    }
}

/// Fleet shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Number of devices sharing the arrival stream.
    pub devices: usize,
    /// Routing policy.
    pub routing: Routing,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig { devices: 1, routing: Routing::RoundRobin }
    }
}

/// Serve `dataset` with arrivals from `arrival` on a fleet of
/// `fleet.devices` identical devices (each a [`DeviceSim`] over `sim`).
///
/// Deterministic for a fixed `cfg.seed`: the arrival sample, routing
/// decisions and every device schedule depend only on the inputs.
///
/// # Panics
///
/// Panics if `fleet.devices == 0` (and propagates [`ArrivalProcess`]
/// validation panics).
pub fn run_fleet(
    sim: &InferenceSim,
    dataset: &Dataset,
    arrival: &ArrivalProcess,
    cfg: ServeConfig,
    fleet: FleetConfig,
) -> ServeReport {
    assert!(fleet.devices > 0, "fleet needs at least one device");
    let times = arrival.sample_times(cfg.seed, dataset.queries.len());
    let mut devices: Vec<DeviceSim> =
        (0..fleet.devices).map(|d| DeviceSim::new(sim, d, cfg)).collect();

    let mut rr = 0usize;
    for (i, (q, &t)) in dataset.queries.iter().zip(&times).enumerate() {
        // Advance every device to the arrival instant so routing reads
        // up-to-date backlogs (and idle devices' clocks move forward).
        for d in devices.iter_mut() {
            d.advance_until(t);
        }
        let target = match fleet.routing {
            Routing::RoundRobin => {
                let d = rr % devices.len();
                rr += 1;
                d
            }
            // min_by_key returns the first minimum: ties go to the lowest
            // device index, keeping the schedule deterministic.
            Routing::LeastLoaded => devices
                .iter()
                .enumerate()
                .min_by_key(|(_, d)| d.backlog_tokens())
                .map(|(idx, _)| idx)
                .expect("non-empty fleet"),
        };
        devices[target].enqueue(t, i as u64, *q);
    }
    for d in devices.iter_mut() {
        d.drain();
    }

    let span_s =
        devices.iter().map(DeviceSim::now_s).fold(times.last().copied().unwrap_or(0.0), f64::max);
    let mut requests: Vec<RequestRecord> =
        devices.iter().flat_map(|d| d.completed().iter().copied()).collect();
    requests.sort_by_key(|r| r.id);
    let mut sheds: Vec<ShedRecord> =
        devices.iter().flat_map(|d| d.shed().iter().copied()).collect();
    sheds.sort_by_key(|s| s.id);

    let ttft_ms = Summary::from_unsorted(requests.iter().map(|r| r.ttft_ms).collect());
    let ttlt_ms = Summary::from_unsorted(requests.iter().map(|r| r.ttlt_ms).collect());
    let tbt_ms =
        Summary::from_unsorted(devices.iter().flat_map(|d| d.tbt_ms().iter().copied()).collect());
    let by_reason = |reason: ShedReason| sheds.iter().filter(|s| s.reason == reason).count();
    let utilization = if span_s > 0.0 {
        devices.iter().map(DeviceSim::busy_s).sum::<f64>() / (span_s * devices.len() as f64)
    } else {
        0.0
    };
    let per_qps = |n: usize| if span_s > 0.0 { n as f64 / span_s } else { 0.0 };

    ServeReport {
        strategy: cfg.strategy,
        arrival: arrival.to_string(),
        routing: fleet.routing,
        num_devices: fleet.devices,
        offered: dataset.queries.len(),
        completed: requests.len(),
        shed: sheds.len(),
        shed_queue_full: by_reason(ShedReason::QueueFull),
        shed_oversized: by_reason(ShedReason::Oversized),
        shed_no_memory: by_reason(ShedReason::NoMemory),
        span_s,
        offered_qps: per_qps(dataset.queries.len()),
        goodput_qps: per_qps(requests.len()),
        utilization,
        ttft_ms,
        tbt_ms,
        ttlt_ms,
        devices: devices.iter().map(|d| d.report(span_s)).collect(),
        requests,
        sheds,
    }
}

/// Single-device serving run: a fleet of one.
pub fn run_serving(
    sim: &InferenceSim,
    dataset: &Dataset,
    arrival: &ArrivalProcess,
    cfg: ServeConfig,
) -> ServeReport {
    run_fleet(sim, dataset, arrival, cfg, FleetConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use facil_soc::{Platform, PlatformId};
    use facil_workloads::Query;
    use std::sync::OnceLock;

    fn sim() -> &'static InferenceSim {
        static SIM: OnceLock<InferenceSim> = OnceLock::new();
        SIM.get_or_init(|| InferenceSim::new(Platform::get(PlatformId::Iphone)))
    }

    fn cfg() -> ServeConfig {
        ServeConfig { seed: 9, fmfi: 0.0, ..ServeConfig::default() }
    }

    #[test]
    fn single_device_run_is_a_fleet_of_one() {
        let d = Dataset::code_autocompletion_like(3, 24);
        let arrival = ArrivalProcess::Poisson { qps: 1.0 };
        let a = run_serving(sim(), &d, &arrival, cfg());
        let b = run_fleet(sim(), &d, &arrival, cfg(), FleetConfig::default());
        assert_eq!(a, b);
        assert_eq!(a.num_devices, 1);
        assert_eq!(a.offered, 24);
        assert_eq!(a.completed + a.shed, a.offered);
    }

    #[test]
    fn round_robin_cycles_devices() {
        let d = Dataset { name: "four".into(), queries: vec![Query { prefill: 16, decode: 4 }; 4] };
        // Arrivals far apart: every request finishes before the next one.
        let arrival = ArrivalProcess::Trace { times_s: vec![0.0, 100.0, 200.0, 300.0] };
        let r = run_fleet(
            sim(),
            &d,
            &arrival,
            cfg(),
            FleetConfig { devices: 2, routing: Routing::RoundRobin },
        );
        assert_eq!(r.completed, 4);
        assert_eq!(r.devices[0].completed, 2);
        assert_eq!(r.devices[1].completed, 2);
    }

    #[test]
    fn least_loaded_spreads_a_burst_across_idle_devices() {
        let d =
            Dataset { name: "burst".into(), queries: vec![Query { prefill: 64, decode: 64 }; 4] };
        let arrival = ArrivalProcess::Trace { times_s: vec![0.0; 4] };
        let r = run_fleet(
            sim(),
            &d,
            &arrival,
            cfg(),
            FleetConfig { devices: 4, routing: Routing::LeastLoaded },
        );
        // Each simultaneous arrival lands on a different (still idle)
        // device: queued work counts toward the backlog signal.
        for dev in &r.devices {
            assert_eq!(dev.completed, 1, "device {} got {}", dev.device, dev.completed);
        }
    }

    #[test]
    fn fleet_run_is_deterministic_for_a_fixed_seed() {
        let d = Dataset::alpaca_like(11, 48);
        let arrival = ArrivalProcess::Bursty { qps: 4.0, burst: 4 };
        let fc = FleetConfig { devices: 4, routing: Routing::LeastLoaded };
        let a = run_fleet(sim(), &d, &arrival, cfg(), fc);
        let b = run_fleet(sim(), &d, &arrival, cfg(), fc);
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
        assert!(a.utilization > 0.0 && a.utilization <= 1.0 + 1e-9);
        for dev in &a.devices {
            assert!(dev.utilization <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn fleet_relieves_a_single_device_overload() {
        let d = Dataset::code_autocompletion_like(42, 96);
        let arrival = ArrivalProcess::Poisson { qps: 32.0 };
        let one = run_fleet(
            sim(),
            &d,
            &arrival,
            cfg(),
            FleetConfig { devices: 1, routing: Routing::LeastLoaded },
        );
        let four = run_fleet(
            sim(),
            &d,
            &arrival,
            cfg(),
            FleetConfig { devices: 4, routing: Routing::LeastLoaded },
        );
        assert!(one.shed > 0, "a 32 qps burst must overload one device");
        assert!(four.shed < one.shed);
        assert!(four.completed > one.completed);
        assert!(four.ttft_ms.p95 < one.ttft_ms.p95);
        assert_eq!(four.completed + four.shed, four.offered);
    }

    #[test]
    fn empty_dataset_yields_an_empty_report() {
        let d = Dataset { name: "empty".into(), queries: Vec::new() };
        let r = run_serving(sim(), &d, &ArrivalProcess::Poisson { qps: 1.0 }, cfg());
        assert_eq!(r.offered, 0);
        assert_eq!(r.completed, 0);
        assert_eq!(r.shed, 0);
        assert_eq!(r.ttft_ms.count, 0);
        assert_eq!(r.span_s, 0.0);
    }
}
