//! Multi-device fleet driver: shards one arrival stream across N devices
//! under a pluggable routing policy and aggregates the fleet-wide report.
//!
//! Every device runs the same continuous-batching scheduler
//! ([`DeviceSim`]); the fleet advances all device clocks to each arrival
//! instant before routing, so the least-loaded policy reads consistent
//! load signals and the whole run is deterministic for a fixed seed.
//!
//! With a [`FaultPlan`] ([`run_fleet_with_faults`]) the driver also
//! provides graceful degradation: requests lost to device crashes are
//! harvested ([`DeviceSim::take_evicted`]) and *failed over* to surviving
//! devices with exponential backoff charged to the serving clock, bounded
//! by the plan's retry budget ([`ShedReason::Failed`] once exhausted);
//! per-request deadlines expire stale work instead of serving it late
//! ([`ShedReason::DeadlineExpired`]). With [`FaultPlan::none`] the
//! schedule — and the serialized report — is bit-for-bit identical to the
//! fault-free driver.

use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

use facil_sim::{InferenceSim, Strategy};
use facil_telemetry::{pool, ArgValue, MetricsRegistry, NullSink, TraceSink, TrackId};
use facil_workloads::{ArrivalProcess, Dataset, Query};
use serde::{Deserialize, Serialize};

use crate::device::{DeviceSim, EvictedReq, ServeConfig};
use crate::faults::FaultPlan;
use crate::metrics::ServeReport;
use crate::request::{RequestRecord, ShedReason, ShedRecord};

/// How arrivals are assigned to devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Routing {
    /// Cycle through devices in index order.
    RoundRobin,
    /// Route to the device with the least outstanding work (backlog
    /// tokens); ties break to the lowest index.
    LeastLoaded,
}

impl std::fmt::Display for Routing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Routing::RoundRobin => "round-robin",
            Routing::LeastLoaded => "least-loaded",
        };
        write!(f, "{s}")
    }
}

/// Fleet shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Number of devices sharing the arrival stream.
    pub devices: usize,
    /// Routing policy.
    pub routing: Routing,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig { devices: 1, routing: Routing::RoundRobin }
    }
}

impl FleetConfig {
    /// Check the fleet shape before running.
    ///
    /// # Errors
    ///
    /// [`facil_core::FacilError::InvalidRequest`] if the fleet has no
    /// devices.
    pub fn validate(&self) -> facil_core::Result<()> {
        if self.devices == 0 {
            return Err(facil_core::FacilError::InvalidRequest(
                "fleet needs at least one device".into(),
            ));
        }
        Ok(())
    }
}

/// A re-queued request waiting out its retry backoff.
#[derive(Debug, Clone, Copy)]
struct Retry {
    t_s: f64,
    seq: u64,
    id: u64,
    arrival_s: f64,
    query: Query,
    attempt: u32,
}

impl PartialEq for Retry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Retry {}
impl PartialOrd for Retry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Retry {
    /// Fire time first, then insertion order — a total, deterministic
    /// order even for coincident retries.
    fn cmp(&self, other: &Self) -> Ordering {
        self.t_s.total_cmp(&other.t_s).then(self.seq.cmp(&other.seq))
    }
}

/// Mutable fleet-driver state shared by the arrival loop and the
/// quiescence loop. Failover, retry and fleet-level shed decisions are
/// traced on a `serve`-process `fleet` track.
struct Driver<'p, S: TraceSink> {
    plan: &'p FaultPlan,
    routing: Routing,
    rr: usize,
    seq: u64,
    retryq: BinaryHeap<Reverse<Retry>>,
    fleet_sheds: Vec<ShedRecord>,
    failovers: usize,
    retries: usize,
    sink: S,
    track: TrackId,
}

impl<S: TraceSink> Driver<'_, S> {
    /// Collect crash-evicted requests from every device and schedule their
    /// failover (or fail them permanently).
    fn harvest(&mut self, devices: &mut [DeviceSim<'_, S>]) {
        for (d, dev) in devices.iter_mut().enumerate() {
            for ev in dev.take_evicted() {
                self.failovers += 1;
                self.sink.instant(
                    self.track,
                    "failover",
                    ev.evicted_s * 1e9,
                    &[("id", ArgValue::U64(ev.id)), ("from", ArgValue::U64(d as u64))],
                );
                self.requeue_or_fail(d, ev);
            }
        }
    }

    /// Schedule a retry after exponential backoff, or shed the request if
    /// the retry budget or its deadline is exhausted. `device` is the
    /// device the request last touched (recorded on the shed).
    fn requeue_or_fail(&mut self, device: usize, ev: EvictedReq) {
        if ev.attempt >= self.plan.max_retries {
            self.record_fleet_shed(ev.evicted_s, ev.id, ShedReason::Failed);
            self.fleet_sheds.push(ShedRecord {
                id: ev.id,
                device,
                arrival_s: ev.arrival_s,
                reason: ShedReason::Failed,
            });
            return;
        }
        let t_s = ev.evicted_s + self.plan.backoff_s(ev.attempt);
        if self.plan.deadline_s > 0.0 && t_s - ev.arrival_s > self.plan.deadline_s {
            self.record_fleet_shed(ev.evicted_s, ev.id, ShedReason::DeadlineExpired);
            self.fleet_sheds.push(ShedRecord {
                id: ev.id,
                device,
                arrival_s: ev.arrival_s,
                reason: ShedReason::DeadlineExpired,
            });
            return;
        }
        self.sink.instant(
            self.track,
            "retry",
            t_s * 1e9,
            &[("id", ArgValue::U64(ev.id)), ("attempt", ArgValue::U64(u64::from(ev.attempt + 1)))],
        );
        self.retryq.push(Reverse(Retry {
            t_s,
            seq: self.seq,
            id: ev.id,
            arrival_s: ev.arrival_s,
            query: ev.query,
            attempt: ev.attempt + 1,
        }));
        self.seq += 1;
        self.retries += 1;
    }

    /// Trace a fleet-level shed decision as an instant event.
    fn record_fleet_shed(&mut self, t_s: f64, id: u64, reason: ShedReason) {
        self.sink.instant(
            self.track,
            "shed",
            t_s * 1e9,
            &[("id", ArgValue::U64(id)), ("reason", ArgValue::Str(reason.as_str()))],
        );
    }

    /// Route one request (fresh or retried) to an accepting device, or
    /// schedule another retry when every device is down.
    fn offer(
        &mut self,
        devices: &mut [DeviceSim<'_, S>],
        t_s: f64,
        id: u64,
        arrival_s: f64,
        query: Query,
        attempt: u32,
    ) {
        let accepting: Vec<usize> =
            (0..devices.len()).filter(|&i| devices[i].accepts(t_s)).collect();
        let Some(&first) = accepting.first() else {
            self.requeue_or_fail(0, EvictedReq { id, arrival_s, evicted_s: t_s, attempt, query });
            return;
        };
        let target = match self.routing {
            Routing::RoundRobin => {
                let k = accepting[self.rr % accepting.len()];
                self.rr += 1;
                k
            }
            // min_by_key returns the first minimum: ties go to the lowest
            // accepting device index, keeping the schedule deterministic.
            Routing::LeastLoaded => accepting
                .iter()
                .copied()
                .min_by_key(|&i| devices[i].backlog_tokens())
                .unwrap_or(first),
        };
        devices[target].enqueue_attempt(t_s, arrival_s, id, query, attempt);
    }
}

/// How the independent per-device phases of the fleet loop execute.
///
/// The fleet driver alternates *global* decisions (routing, failover,
/// retries — inherently serial) with *per-device* phases (advancing every
/// device clock, draining every device) that touch disjoint state. The
/// per-device phases are the hot part of a large-fleet run, so the
/// untraced path farms them out to the [`pool`] workers; the result is
/// identical either way because no device reads another's state.
///
/// Public so higher-level drivers (the cluster router) reuse the same
/// split over *one flat device list per tick* — the cluster flattens
/// cells × devices into a single slice and issues one
/// [`pool::par_map_mut`] batch, instead of fanning out per cell.
pub trait FleetExec<S: TraceSink> {
    /// Advance every device clock to `t_s`.
    fn advance_all(devices: &mut [DeviceSim<'_, S>], t_s: f64);
    /// Drain every device's outstanding work.
    fn drain_all(devices: &mut [DeviceSim<'_, S>]);
}

/// Serial device phases: required for traced runs, whose devices share a
/// single-threaded sink handle (e.g. `Rc<RefCell<RingSink>>`).
#[derive(Debug)]
pub enum SerialExec {}

impl<S: TraceSink> FleetExec<S> for SerialExec {
    fn advance_all(devices: &mut [DeviceSim<'_, S>], t_s: f64) {
        for d in devices.iter_mut() {
            d.advance_until(t_s);
        }
    }
    fn drain_all(devices: &mut [DeviceSim<'_, S>]) {
        for d in devices.iter_mut() {
            d.drain();
        }
    }
}

/// Parallel device phases on the persistent [`pool`] workers
/// (`FACIL_THREADS`). Implemented only for the untraced [`NullSink`]
/// path, where devices are `Send`; [`pool::par_map_mut`] falls back to
/// the serial loop for single-device fleets, one configured worker, or
/// when the caller is itself a pool worker (nested parallelism).
#[derive(Debug)]
pub enum ParallelExec {}

impl FleetExec<NullSink> for ParallelExec {
    fn advance_all(devices: &mut [DeviceSim<'_, NullSink>], t_s: f64) {
        pool::par_map_mut(devices, |d| d.advance_until(t_s));
    }
    fn drain_all(devices: &mut [DeviceSim<'_, NullSink>]) {
        pool::par_map_mut(devices, DeviceSim::drain);
    }
}

/// Serve `dataset` with arrivals from `arrival` on a fleet of
/// `fleet.devices` identical devices (each a [`DeviceSim`] over `sim`),
/// injecting the failures scheduled in `plan`.
///
/// Deterministic for a fixed `cfg.seed` and plan: the arrival sample,
/// fault schedule, routing and retry decisions and every device schedule
/// depend only on the inputs — repeated runs serialize to byte-identical
/// JSON regardless of the [`pool::parallelism`] worker count. With
/// [`FaultPlan::none`] the result is exactly the fault-free [`run_fleet`]
/// schedule.
///
/// Fleet-level sheds ([`ShedReason::Failed`], and
/// [`ShedReason::DeadlineExpired`] raised at re-queue time) record the
/// device the request last ran on, or 0 if it never reached one.
///
/// # Errors
///
/// * [`FleetConfig::validate`] errors for an empty fleet;
/// * [`FaultPlan::validate`] errors for a malformed plan.
pub fn run_fleet_with_faults(
    sim: &InferenceSim,
    dataset: &Dataset,
    arrival: &ArrivalProcess,
    cfg: ServeConfig,
    fleet: FleetConfig,
    plan: &FaultPlan,
) -> facil_core::Result<ServeReport> {
    drive::<NullSink, ParallelExec>(sim, dataset, arrival, cfg, fleet, plan, NullSink)
}

/// [`run_fleet_with_faults`] with every scheduler decision recorded into
/// `sink` (cloned per device; pass an `Rc<RefCell<RingSink>>` to collect
/// the whole fleet into one trace). Tracing is observational: the report
/// is identical to the untraced run, byte for byte. Traced devices run
/// their phases serially so the sink handle never crosses a thread.
///
/// # Errors
///
/// See [`run_fleet_with_faults`].
pub fn run_fleet_with_faults_traced<S: TraceSink + Clone>(
    sim: &InferenceSim,
    dataset: &Dataset,
    arrival: &ArrivalProcess,
    cfg: ServeConfig,
    fleet: FleetConfig,
    plan: &FaultPlan,
    sink: S,
) -> facil_core::Result<ServeReport> {
    drive::<S, SerialExec>(sim, dataset, arrival, cfg, fleet, plan, sink)
}

/// The fleet driver, generic over the per-device execution strategy `E`.
fn drive<S: TraceSink + Clone, E: FleetExec<S>>(
    sim: &InferenceSim,
    dataset: &Dataset,
    arrival: &ArrivalProcess,
    cfg: ServeConfig,
    fleet: FleetConfig,
    plan: &FaultPlan,
    mut sink: S,
) -> facil_core::Result<ServeReport> {
    fleet.validate()?;
    plan.validate(fleet.devices)?;
    let times = arrival.sample_times(cfg.seed, dataset.queries.len());
    let track = if sink.enabled() { sink.track("serve", "fleet") } else { TrackId::default() };
    let mut devices: Vec<DeviceSim<S>> = (0..fleet.devices)
        .map(|d| DeviceSim::with_faults_traced(sim, d, cfg, plan, sink.clone()))
        .collect();
    let mut drv = Driver {
        plan,
        routing: fleet.routing,
        rr: 0,
        seq: dataset.queries.len() as u64,
        retryq: BinaryHeap::new(),
        fleet_sheds: Vec::new(),
        failovers: 0,
        retries: 0,
        sink,
        track,
    };

    for (i, (q, &t)) in dataset.queries.iter().zip(&times).enumerate() {
        // Fire retries that come due before this arrival.
        while let Some(&Reverse(r)) = drv.retryq.peek() {
            if r.t_s > t {
                break;
            }
            drv.retryq.pop();
            E::advance_all(&mut devices, r.t_s);
            drv.harvest(&mut devices);
            drv.offer(&mut devices, r.t_s, r.id, r.arrival_s, r.query, r.attempt);
        }
        // Advance every device to the arrival instant so routing reads
        // up-to-date backlogs (and idle devices' clocks move forward).
        E::advance_all(&mut devices, t);
        drv.harvest(&mut devices);
        drv.offer(&mut devices, t, i as u64, t, *q, 0);
    }
    // Quiesce: drain all devices, fail over anything lost on the way, and
    // keep going until no retry is outstanding anywhere.
    loop {
        E::drain_all(&mut devices);
        drv.harvest(&mut devices);
        let Some(Reverse(r)) = drv.retryq.pop() else { break };
        E::advance_all(&mut devices, r.t_s);
        drv.harvest(&mut devices);
        drv.offer(&mut devices, r.t_s, r.id, r.arrival_s, r.query, r.attempt);
    }

    let span_s =
        devices.iter().map(DeviceSim::now_s).fold(times.last().copied().unwrap_or(0.0), f64::max);
    let meta = ReportMeta {
        strategy: cfg.strategy,
        arrival: arrival.to_string(),
        routing: fleet.routing,
        offered: dataset.queries.len(),
        span_s,
        failovers: drv.failovers,
        retries: drv.retries,
        deadline_s: plan.deadline_s,
    };
    Ok(assemble_report(&devices, &drv.fleet_sheds, &meta))
}

/// Run identity and driver-level counters the report assembler cannot read
/// off the devices themselves.
#[derive(Debug, Clone)]
pub struct ReportMeta {
    /// Execution strategy of the timing oracle.
    pub strategy: Strategy,
    /// Arrival process description.
    pub arrival: String,
    /// Routing policy used across devices.
    pub routing: Routing,
    /// Requests offered to the fleet.
    pub offered: usize,
    /// Wall-clock span utilization and availability are normalized
    /// against, seconds.
    pub span_s: f64,
    /// Crash evictions the driver harvested for failover.
    pub failovers: usize,
    /// Retry attempts the driver scheduled.
    pub retries: usize,
    /// Per-request deadline (0 disables deadline accounting), seconds.
    pub deadline_s: f64,
}

/// Assemble a [`ServeReport`] from final device state plus the driver's
/// fleet-level sheds — the roll-up `drive` uses, exposed so higher-level
/// drivers (e.g. a cluster of fleets) can produce per-fleet reports with
/// identical metric definitions. Rate metrics (availability, utilization,
/// uptime, rates per second, deadline-violation rate) are 0.0 — never
/// `NaN` — for zero-span or zero-offered runs, matching
/// `DramStats::hit_rate`.
pub fn assemble_report<S: TraceSink>(
    devices: &[DeviceSim<'_, S>],
    fleet_sheds: &[ShedRecord],
    meta: &ReportMeta,
) -> ServeReport {
    let span_s = meta.span_s;
    let mut requests: Vec<RequestRecord> =
        devices.iter().flat_map(|d| d.completed().iter().copied()).collect();
    requests.sort_by_key(|r| r.id);
    let mut sheds: Vec<ShedRecord> = devices
        .iter()
        .flat_map(|d| d.shed().iter().copied())
        .chain(fleet_sheds.iter().copied())
        .collect();
    sheds.sort_by_key(|s| s.id);

    // Latency rollups go through the shared registry: one percentile
    // definition for the whole workspace instead of a bespoke path here.
    let mut reg = MetricsRegistry::new();
    for r in &requests {
        reg.observe("serve.ttft_ms", r.ttft_ms);
        reg.observe("serve.ttlt_ms", r.ttlt_ms);
    }
    for d in devices {
        reg.observe_all("serve.tbt_ms", d.tbt_ms());
    }
    let ttft_ms = reg.summary("serve.ttft_ms");
    let ttlt_ms = reg.summary("serve.ttlt_ms");
    let tbt_ms = reg.summary("serve.tbt_ms");
    let by_reason = |reason: ShedReason| sheds.iter().filter(|s| s.reason == reason).count();
    let utilization = if span_s > 0.0 {
        devices.iter().map(|d| d.busy_s()).sum::<f64>() / (span_s * devices.len() as f64)
    } else {
        0.0
    };
    let per_qps = |n: usize| if span_s > 0.0 { n as f64 / span_s } else { 0.0 };
    let device_reports: Vec<_> = devices.iter().map(|d| d.report(span_s)).collect();
    let downtime_s: f64 = device_reports.iter().map(|d| d.down_s).sum();
    let degraded_s: f64 = device_reports.iter().map(|d| d.degraded_s).sum();
    let relayout_stall_s: f64 = device_reports.iter().map(|d| d.relayout_stall_s).sum();
    let slow_s: f64 = device_reports.iter().map(|d| d.slow_s).sum();
    let availability = if span_s > 0.0 && !devices.is_empty() {
        (1.0 - downtime_s / (span_s * devices.len() as f64)).clamp(0.0, 1.0)
    } else {
        0.0
    };
    let shed_deadline = by_reason(ShedReason::DeadlineExpired);
    let deadline_violations = if meta.deadline_s > 0.0 {
        let deadline_ms = meta.deadline_s * 1e3;
        shed_deadline + requests.iter().filter(|r| r.ttlt_ms > deadline_ms).count()
    } else {
        0
    };
    let offered = meta.offered;
    let deadline_violation_rate =
        if offered > 0 { deadline_violations as f64 / offered as f64 } else { 0.0 };

    ServeReport {
        strategy: meta.strategy,
        arrival: meta.arrival.clone(),
        routing: meta.routing,
        num_devices: devices.len(),
        offered,
        completed: requests.len(),
        shed: sheds.len(),
        shed_queue_full: by_reason(ShedReason::QueueFull),
        shed_oversized: by_reason(ShedReason::Oversized),
        shed_no_memory: by_reason(ShedReason::NoMemory),
        shed_failed: by_reason(ShedReason::Failed),
        shed_deadline,
        span_s,
        offered_qps: per_qps(offered),
        goodput_qps: per_qps(requests.len()),
        utilization,
        availability,
        downtime_s,
        degraded_s,
        relayout_stall_s,
        slow_s,
        failovers: meta.failovers,
        retries: meta.retries,
        deadline_violations,
        deadline_violation_rate,
        ttft_ms,
        tbt_ms,
        ttlt_ms,
        devices: device_reports,
        requests,
        sheds,
    }
}

/// Serve `dataset` with arrivals from `arrival` on a fault-free fleet
/// ([`run_fleet_with_faults`] with [`FaultPlan::none`]).
///
/// # Errors
///
/// [`FleetConfig::validate`] errors for an empty fleet.
pub fn run_fleet(
    sim: &InferenceSim,
    dataset: &Dataset,
    arrival: &ArrivalProcess,
    cfg: ServeConfig,
    fleet: FleetConfig,
) -> facil_core::Result<ServeReport> {
    run_fleet_with_faults(sim, dataset, arrival, cfg, fleet, &FaultPlan::none())
}

/// Single-device serving run: a fleet of one.
///
/// # Errors
///
/// See [`run_fleet`].
pub fn run_serving(
    sim: &InferenceSim,
    dataset: &Dataset,
    arrival: &ArrivalProcess,
    cfg: ServeConfig,
) -> facil_core::Result<ServeReport> {
    run_fleet(sim, dataset, arrival, cfg, FleetConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{FaultEvent, FaultKind};
    use facil_core::FacilError;
    use facil_soc::{Platform, PlatformId};
    use std::collections::BTreeSet;
    use std::sync::OnceLock;

    fn sim() -> &'static InferenceSim {
        static SIM: OnceLock<InferenceSim> = OnceLock::new();
        SIM.get_or_init(|| InferenceSim::new(Platform::get(PlatformId::Iphone)).unwrap())
    }

    fn cfg() -> ServeConfig {
        ServeConfig { seed: 9, fmfi: 0.0, ..ServeConfig::default() }
    }

    #[test]
    fn single_device_run_is_a_fleet_of_one() {
        let d = Dataset::code_autocompletion_like(3, 24);
        let arrival = ArrivalProcess::Poisson { qps: 1.0 };
        let a = run_serving(sim(), &d, &arrival, cfg()).unwrap();
        let b = run_fleet(sim(), &d, &arrival, cfg(), FleetConfig::default()).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.num_devices, 1);
        assert_eq!(a.offered, 24);
        assert_eq!(a.completed + a.shed, a.offered);
    }

    #[test]
    fn empty_fleet_is_rejected_not_a_panic() {
        let d = Dataset::code_autocompletion_like(3, 4);
        let err = run_fleet(
            sim(),
            &d,
            &ArrivalProcess::Poisson { qps: 1.0 },
            cfg(),
            FleetConfig { devices: 0, routing: Routing::RoundRobin },
        )
        .unwrap_err();
        assert!(matches!(err, FacilError::InvalidRequest(_)));
    }

    #[test]
    fn plan_targeting_a_missing_device_is_rejected() {
        let d = Dataset::code_autocompletion_like(3, 4);
        let plan = FaultPlan {
            events: vec![FaultEvent {
                device: 7,
                at_s: 0.5,
                kind: FaultKind::Freeze { duration_s: 1.0 },
            }],
            ..FaultPlan::none()
        };
        let err = run_fleet_with_faults(
            sim(),
            &d,
            &ArrivalProcess::Poisson { qps: 1.0 },
            cfg(),
            FleetConfig { devices: 2, routing: Routing::RoundRobin },
            &plan,
        )
        .unwrap_err();
        assert_eq!(err, FacilError::DeviceUnavailable { device: 7 });
    }

    #[test]
    fn round_robin_cycles_devices() {
        let d = Dataset { name: "four".into(), queries: vec![Query { prefill: 16, decode: 4 }; 4] };
        // Arrivals far apart: every request finishes before the next one.
        let arrival = ArrivalProcess::Trace { times_s: vec![0.0, 100.0, 200.0, 300.0] };
        let r = run_fleet(
            sim(),
            &d,
            &arrival,
            cfg(),
            FleetConfig { devices: 2, routing: Routing::RoundRobin },
        )
        .unwrap();
        assert_eq!(r.completed, 4);
        assert_eq!(r.devices[0].completed, 2);
        assert_eq!(r.devices[1].completed, 2);
    }

    #[test]
    fn least_loaded_spreads_a_burst_across_idle_devices() {
        let d =
            Dataset { name: "burst".into(), queries: vec![Query { prefill: 64, decode: 64 }; 4] };
        let arrival = ArrivalProcess::Trace { times_s: vec![0.0; 4] };
        let r = run_fleet(
            sim(),
            &d,
            &arrival,
            cfg(),
            FleetConfig { devices: 4, routing: Routing::LeastLoaded },
        )
        .unwrap();
        // Each simultaneous arrival lands on a different (still idle)
        // device: queued work counts toward the backlog signal.
        for dev in &r.devices {
            assert_eq!(dev.completed, 1, "device {} got {}", dev.device, dev.completed);
        }
    }

    #[test]
    fn fleet_run_is_deterministic_for_a_fixed_seed() {
        let d = Dataset::alpaca_like(11, 48);
        let arrival = ArrivalProcess::Bursty { qps: 4.0, burst: 4 };
        let fc = FleetConfig { devices: 4, routing: Routing::LeastLoaded };
        let a = run_fleet(sim(), &d, &arrival, cfg(), fc).unwrap();
        let b = run_fleet(sim(), &d, &arrival, cfg(), fc).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
        assert!(a.utilization > 0.0 && a.utilization <= 1.0 + 1e-9);
        for dev in &a.devices {
            assert!(dev.utilization <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn fleet_relieves_a_single_device_overload() {
        let d = Dataset::code_autocompletion_like(42, 96);
        let arrival = ArrivalProcess::Poisson { qps: 32.0 };
        let one = run_fleet(
            sim(),
            &d,
            &arrival,
            cfg(),
            FleetConfig { devices: 1, routing: Routing::LeastLoaded },
        )
        .unwrap();
        let four = run_fleet(
            sim(),
            &d,
            &arrival,
            cfg(),
            FleetConfig { devices: 4, routing: Routing::LeastLoaded },
        )
        .unwrap();
        assert!(one.shed > 0, "a 32 qps burst must overload one device");
        assert!(four.shed < one.shed);
        assert!(four.completed > one.completed);
        assert!(four.ttft_ms.p95 < one.ttft_ms.p95);
        assert_eq!(four.completed + four.shed, four.offered);
    }

    #[test]
    fn empty_dataset_yields_an_empty_report() {
        let d = Dataset { name: "empty".into(), queries: Vec::new() };
        let r = run_serving(sim(), &d, &ArrivalProcess::Poisson { qps: 1.0 }, cfg()).unwrap();
        assert_eq!(r.offered, 0);
        assert_eq!(r.completed, 0);
        assert_eq!(r.shed, 0);
        assert_eq!(r.ttft_ms.count, 0);
        assert_eq!(r.span_s, 0.0);
        // Zero-span / zero-offered rate metrics are 0.0, never NaN
        // (DramStats::hit_rate discipline).
        for (name, v) in [
            ("offered_qps", r.offered_qps),
            ("goodput_qps", r.goodput_qps),
            ("utilization", r.utilization),
            ("availability", r.availability),
            ("deadline_violation_rate", r.deadline_violation_rate),
            ("uptime", r.devices[0].uptime),
            ("device utilization", r.devices[0].utilization),
        ] {
            assert!(!v.is_nan(), "{name} must not be NaN");
            assert_eq!(v, 0.0, "{name} of an empty run");
        }
    }

    #[test]
    fn crash_fails_work_over_to_survivors_without_losing_requests() {
        let d = Dataset::code_autocompletion_like(5, 48);
        let arrival = ArrivalProcess::Poisson { qps: 8.0 };
        let plan = FaultPlan {
            events: vec![FaultEvent {
                device: 0,
                at_s: 0.5,
                kind: FaultKind::Crash { recover_s: None },
            }],
            max_retries: 4,
            retry_backoff_s: 0.05,
            ..FaultPlan::none()
        };
        let fc = FleetConfig { devices: 3, routing: Routing::LeastLoaded };
        let r = run_fleet_with_faults(sim(), &d, &arrival, cfg(), fc, &plan).unwrap();
        assert_eq!(r.completed + r.shed, r.offered, "conservation under crash");
        let ids: BTreeSet<u64> =
            r.requests.iter().map(|q| q.id).chain(r.sheds.iter().map(|s| s.id)).collect();
        assert_eq!(ids.len(), r.offered, "no id lost or double-counted");
        assert!(r.failovers > 0, "the crash must evict in-flight work");
        assert!(r.retries > 0);
        assert!(r.requests.iter().any(|q| q.retries > 0), "some survivor reran a failed request");
        assert!(r.downtime_s > 0.0);
        assert!(r.availability < 1.0);
        assert!(r.devices[0].crashes >= 1);
        // Survivors picked up the dead device's share.
        assert!(r.devices[1].completed + r.devices[2].completed > r.devices[0].completed);
    }

    #[test]
    fn all_devices_dead_fails_requests_after_bounded_retries() {
        let d = Dataset { name: "two".into(), queries: vec![Query { prefill: 16, decode: 4 }; 2] };
        let arrival = ArrivalProcess::Trace { times_s: vec![1.0, 2.0] };
        let plan = FaultPlan {
            events: vec![FaultEvent {
                device: 0,
                at_s: 0.0,
                kind: FaultKind::Crash { recover_s: None },
            }],
            max_retries: 2,
            retry_backoff_s: 0.1,
            ..FaultPlan::none()
        };
        let fc = FleetConfig { devices: 1, routing: Routing::RoundRobin };
        let r = run_fleet_with_faults(sim(), &d, &arrival, cfg(), fc, &plan).unwrap();
        assert_eq!(r.completed, 0);
        assert_eq!(r.shed, 2);
        assert_eq!(r.shed_failed, 2);
        assert!(r.retries > 0, "retries were attempted before giving up");
        assert_eq!(r.availability, 0.0);
    }

    #[test]
    fn tracing_is_observational_and_byte_identical() {
        use facil_telemetry::RingSink;
        use std::cell::RefCell;
        use std::rc::Rc;
        let d = Dataset::code_autocompletion_like(5, 48);
        let arrival = ArrivalProcess::Poisson { qps: 8.0 };
        let plan = FaultPlan {
            events: vec![FaultEvent {
                device: 0,
                at_s: 0.5,
                kind: FaultKind::Crash { recover_s: None },
            }],
            max_retries: 4,
            retry_backoff_s: 0.05,
            ..FaultPlan::none()
        };
        let fc = FleetConfig { devices: 3, routing: Routing::LeastLoaded };
        let plain = run_fleet_with_faults(sim(), &d, &arrival, cfg(), fc, &plan).unwrap();
        let traced = || {
            let sink = Rc::new(RefCell::new(RingSink::new(1 << 16)));
            let r = run_fleet_with_faults_traced(
                sim(),
                &d,
                &arrival,
                cfg(),
                fc,
                &plan,
                Rc::clone(&sink),
            )
            .unwrap();
            let json = sink.borrow().to_chrome_json();
            (r, json)
        };
        let (a, ja) = traced();
        let (b, jb) = traced();
        assert_eq!(plain, a, "tracing must not change the schedule");
        assert_eq!(plain.to_json(), a.to_json());
        assert_eq!(a, b);
        assert_eq!(ja, jb, "trace export must be byte-identical across repeats");
        // The crash run exercises every scheduler track and event family.
        for track in ["device0", "device1", "device2", "fleet"] {
            assert!(ja.contains(&format!("\"name\":\"{track}\"")), "missing track {track}");
        }
        assert!(plain.failovers > 0, "the crash must evict in-flight work");
        for event in ["admit", "batch", "crash", "failover", "retry"] {
            assert!(ja.contains(&format!("\"name\":\"{event}\"")), "missing event {event}");
        }
    }

    #[test]
    fn deadline_expires_stale_retries() {
        let d = Dataset { name: "one".into(), queries: vec![Query { prefill: 16, decode: 4 }] };
        let arrival = ArrivalProcess::Trace { times_s: vec![1.0] };
        // Sole device is down from before the arrival; the backoff pushes
        // the retry past the deadline.
        let plan = FaultPlan {
            events: vec![FaultEvent {
                device: 0,
                at_s: 0.0,
                kind: FaultKind::Crash { recover_s: None },
            }],
            deadline_s: 0.2,
            max_retries: 10,
            retry_backoff_s: 0.3,
        };
        let fc = FleetConfig { devices: 1, routing: Routing::RoundRobin };
        let r = run_fleet_with_faults(sim(), &d, &arrival, cfg(), fc, &plan).unwrap();
        assert_eq!(r.completed, 0);
        assert_eq!(r.shed_deadline, 1);
        assert_eq!(r.deadline_violations, 1);
        assert!(r.deadline_violation_rate > 0.99);
    }
}
