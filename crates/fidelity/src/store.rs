//! Bank-sliced simulated DRAM content model.
//!
//! [`BankedMemory`] stores cell contents the way the device is physically
//! organized — one row image per touched DRAM row, per bank — instead of the
//! flat transfer map of [`facil_dram::FunctionalMemory`]. The all-bank
//! replay reads whole rows bank by bank, so this layout keeps the functional
//! path honest about *which bank's cells* every MAC beat touches, and its
//! occupancy accessors report residency in device terms (rows per bank).
//!
//! Both stores implement [`CellStore`], so `store_matrix`, `load_matrix`,
//! `pim_gemv` and the command replay run over either unchanged.

use std::collections::HashMap;

use facil_dram::{CellStore, DramAddress, Topology};

/// Byte-accurate DRAM contents, sliced per bank and per row (unwritten cells
/// read as zero).
#[derive(Debug, Clone)]
pub struct BankedMemory {
    topo: Topology,
    /// Indexed by flat bank; each bank maps a row index to its row image.
    banks: Vec<HashMap<u64, Vec<u8>>>,
}

impl BankedMemory {
    /// Create an empty banked memory with the given geometry.
    pub fn new(topo: Topology) -> Self {
        let banks = vec![HashMap::new(); topo.total_banks() as usize];
        BankedMemory { topo, banks }
    }

    fn flat_bank(&self, addr: DramAddress) -> usize {
        ((addr.channel * self.topo.ranks + addr.rank) * self.topo.banks() + addr.bank) as usize
    }

    /// Number of distinct DRAM rows holding data in `bank` (flat index).
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn rows_in_bank(&self, bank: usize) -> usize {
        self.banks[bank].len()
    }

    /// Total distinct DRAM rows holding data, across all banks.
    pub fn touched_rows(&self) -> usize {
        self.banks.iter().map(HashMap::len).sum()
    }

    /// Bytes of row images currently resident.
    pub fn resident_bytes(&self) -> u64 {
        self.touched_rows() as u64 * self.topo.row_bytes
    }
}

impl CellStore for BankedMemory {
    fn topology(&self) -> &Topology {
        &self.topo
    }

    fn load_transfer(&self, addr: DramAddress) -> Vec<u8> {
        let tx = self.topo.transfer_bytes as usize;
        let off = (addr.column * self.topo.transfer_bytes) as usize;
        match self.banks[self.flat_bank(addr)].get(&addr.row) {
            Some(row) => row[off..off + tx].to_vec(),
            None => vec![0u8; tx],
        }
    }

    fn store_transfer(&mut self, addr: DramAddress, data: &[u8]) {
        assert_eq!(data.len() as u64, self.topo.transfer_bytes);
        let row_bytes = self.topo.row_bytes as usize;
        let off = (addr.column * self.topo.transfer_bytes) as usize;
        let flat = self.flat_bank(addr);
        let row = self.banks[flat].entry(addr.row).or_insert_with(|| vec![0u8; row_bytes]);
        row[off..off + data.len()].copy_from_slice(data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use facil_dram::{FnMapper, FunctionalMemory};

    fn topo() -> Topology {
        Topology::new(2, 1, 2, 2, 64, 256, 32)
    }

    fn mapper(t: Topology) -> impl facil_dram::AddressMapper {
        FnMapper(move |pa: u64| {
            let mut x = pa >> t.tx_bits();
            let mut take = |bits: u32| {
                let v = x & ((1 << bits) - 1);
                x >>= bits;
                v
            };
            DramAddress {
                column: take(t.column_bits()),
                bank: take(t.bank_bits()),
                channel: take(t.channel_bits()),
                rank: take(t.rank_bits()),
                row: take(t.row_bits()),
            }
        })
    }

    #[test]
    fn transfer_roundtrip_and_zero_fill() {
        let t = topo();
        let mut mem = BankedMemory::new(t);
        let addr = DramAddress { channel: 1, rank: 0, bank: 3, row: 5, column: 2 };
        mem.store_transfer(addr, &[9u8; 32]);
        assert_eq!(mem.load_transfer(addr), vec![9u8; 32]);
        // Same row, untouched column: zero (the row image was allocated).
        assert_eq!(mem.load_transfer(DramAddress { column: 0, ..addr }), vec![0u8; 32]);
        // Untouched row in another bank.
        assert_eq!(mem.load_transfer(DramAddress { bank: 0, ..addr }), vec![0u8; 32]);
        assert_eq!(mem.touched_rows(), 1);
        assert_eq!(mem.resident_bytes(), t.row_bytes);
    }

    #[test]
    fn agrees_with_functional_memory_through_cell_store() {
        // The two stores must be observationally identical through the
        // CellStore byte paths: same mapper, same writes, same reads.
        let t = topo();
        let m = mapper(t);
        let mut banked = BankedMemory::new(t);
        let mut flat = FunctionalMemory::new(t);
        let data: Vec<u8> = (0..700).map(|i| (i % 249) as u8).collect();
        CellStore::write_bytes(&mut banked, &m, 57, &data).unwrap();
        CellStore::write_bytes(&mut flat, &m, 57, &data).unwrap();
        assert_eq!(
            CellStore::read_bytes(&banked, &m, 0, 1024).unwrap(),
            CellStore::read_bytes(&flat, &m, 0, 1024).unwrap()
        );
    }

    #[test]
    fn rows_in_bank_counts_device_residency() {
        let t = topo();
        let mut mem = BankedMemory::new(t);
        for row in 0..4 {
            let addr = DramAddress { channel: 0, rank: 0, bank: 1, row, column: 0 };
            mem.store_transfer(addr, &[1u8; 32]);
        }
        // Flat index of (channel 0, rank 0, bank 1).
        let flat = 1usize;
        assert_eq!(mem.rows_in_bank(flat), 4);
        assert_eq!(mem.rows_in_bank(flat + t.banks() as usize), 0);
    }
}
