//! Functional interpreter for the all-bank PIM command stream.
//!
//! [`replay_gemv`] executes a [`CommandSequence`] command by command over a
//! [`CellStore`]: `GB-load` stages input-vector transfers into the per-rank
//! global buffer, `ACT-AB` opens the broadcast row, each `MAC-AB` beat makes
//! every bank of the rank read one transfer of its open row and accumulate
//! into its per-slot output register, `PRE-AB` closes the row. Registers
//! accumulate across the waves of one tile and drain into per-partition
//! partial sums at tile boundaries; the SoC-side reduction sums partials in
//! partition-ascending order.
//!
//! **Bit-exactness contract.** The accumulation order is fixed: within a
//! partition, chunks are visited segment-ascending and elements ascending
//! into a single `f32` accumulator that starts at `0.0`; partials are
//! reduced partition-ascending, starting at `0.0`. That is exactly the order
//! of the [`facil_pim::pim_gemv`] reference, so on the same cells the replay
//! reproduces its output *bit for bit* — which [`cross_check`] asserts by
//! comparing both `f32` and fp16 bit patterns.

use std::collections::{BTreeMap, HashMap};

use facil_core::{FacilSystem, PimAllocation};
use facil_dram::{CellStore, DramAddress};
use facil_pim::commands::{CommandSequence, PimCommand};
use facil_pim::f16::{decode_f16_le, f32_to_f16_bits};
use serde::{Deserialize, Serialize};

/// One partition's staged global-buffer content during a wave.
struct GbBuf {
    base: u64,
    vals: Vec<f32>,
}

/// Execute `y = W x` by interpreting the all-bank command stream of `seq`
/// over the DRAM cells in `mem`.
///
/// # Panics
///
/// Panics if `x.len()` does not match the traced matrix's columns, or if the
/// command stream is internally inconsistent (a MAC beat with no open row, a
/// bank reading an unstaged global-buffer element) — [`CommandSequence`]
/// construction guarantees neither happens.
pub fn replay_gemv<S: CellStore>(mem: &S, seq: &CommandSequence, x: &[f32]) -> Vec<f32> {
    let m = seq.matrix();
    assert_eq!(x.len() as u64, m.cols, "input length must match matrix columns");
    let topo = *seq.topology();
    let elems_per_tx = (topo.transfer_bytes / 2) as usize;
    let chunk_tx = seq.chunk_elems() * 2 / topo.transfer_bytes;

    // PU output registers: (flat bank, slot) -> accumulator. Persist across
    // the waves of one tile, drain between tiles.
    let mut registers: HashMap<(u64, u64), f32> = HashMap::new();
    // Register binding for the current tile: (flat bank, slot) -> (row, partition).
    let mut binding: HashMap<(u64, u64), (u64, u64)> = HashMap::new();
    // Drained partial sums: (row, partition) -> value.
    let mut partials: BTreeMap<(u64, u64), f32> = BTreeMap::new();
    let mut cur_tile: Option<u64> = None;

    let drain = |registers: &mut HashMap<(u64, u64), f32>,
                 binding: &mut HashMap<(u64, u64), (u64, u64)>,
                 partials: &mut BTreeMap<(u64, u64), f32>| {
        for (key, rk) in binding.drain() {
            if let Some(acc) = registers.remove(&key) {
                partials.insert(rk, acc);
            }
        }
        registers.clear();
    };

    for wave in seq.waves() {
        if cur_tile.is_some() && cur_tile != Some(wave.tile) {
            drain(&mut registers, &mut binding, &mut partials);
        }
        cur_tile = Some(wave.tile);
        // Bank tasks of this wave, grouped per (channel, rank) for the
        // rank-broadcast commands.
        let mut rank_tasks: HashMap<(u64, u64), Vec<&facil_pim::commands::BankTask>> =
            HashMap::new();
        for t in &wave.tasks {
            rank_tasks.entry((t.channel, t.rank)).or_default().push(t);
            let flat = (t.channel * topo.ranks + t.rank) * topo.banks() + t.bank;
            for row in &t.rows {
                binding.insert((flat, row.slot), (row.matrix_row, row.partition));
            }
        }
        // Per-rank interpreter state for this wave.
        let mut gb: HashMap<(u64, u64), BTreeMap<u64, GbBuf>> = HashMap::new();
        let mut open: HashMap<(u64, u64), u64> = HashMap::new();

        for cmd in seq.wave_commands(wave) {
            match cmd {
                PimCommand::GbLoad { channel, rank, partition, input_elem0, elems } => {
                    let buf = gb
                        .entry((channel, rank))
                        .or_default()
                        .entry(partition)
                        .or_insert_with(|| GbBuf { base: input_elem0, vals: Vec::new() });
                    for e in input_elem0..input_elem0 + elems {
                        buf.vals.push(x[e as usize]);
                    }
                }
                PimCommand::ActAb { channel, rank, dram_row } => {
                    assert_eq!(dram_row, wave.dram_row, "ACT-AB row must match the wave");
                    open.insert((channel, rank), dram_row);
                }
                PimCommand::MacAb { channel, rank, column } => {
                    // The tracer emits GB-LOAD and ACT-AB for every rank of a
                    // wave before its first MAC-AB, so neither lookup can miss
                    // on a traced sequence.
                    #[allow(clippy::expect_used)]
                    let row = *open.get(&(channel, rank)).expect("MAC-AB on a closed row");
                    #[allow(clippy::expect_used)]
                    let slices = gb.get(&(channel, rank)).expect("MAC-AB before GB staging");
                    for t in rank_tasks.get(&(channel, rank)).map_or(&[][..], Vec::as_slice) {
                        let flat = (channel * topo.ranks + rank) * topo.banks() + t.bank;
                        for task in &t.rows {
                            if column < task.column0 || column >= task.column0 + chunk_tx {
                                continue;
                            }
                            let da = DramAddress { channel, rank, bank: t.bank, row, column };
                            let w = decode_f16_le(&mem.load_transfer(da));
                            let buf = &slices[&task.partition];
                            let e0 = ((column - task.column0) as usize) * elems_per_tx;
                            let acc = registers.entry((flat, task.slot)).or_insert(0.0);
                            for (i, wv) in w.iter().enumerate() {
                                let e = e0 + i;
                                if (e as u64) < task.elems {
                                    debug_assert_eq!(buf.base + e as u64, task.col0 + e as u64);
                                    *acc += wv * buf.vals[e];
                                }
                            }
                        }
                    }
                }
                PimCommand::PreAb { channel, rank } => {
                    open.remove(&(channel, rank));
                }
            }
        }
    }
    drain(&mut registers, &mut binding, &mut partials);

    // SoC-side reduction: partials summed partition-ascending per row,
    // starting from 0.0 — the fixed-order contract.
    let mut y = vec![0f32; m.rows as usize];
    for ((r, _k), v) in &partials {
        y[*r as usize] += v;
    }
    y
}

/// SoC GEMV with the *PIM-identical* accumulation order: chunk by chunk,
/// partition boundaries every `1 << map_id` chunks, one `f32` accumulator
/// per partition, partials reduced partition-ascending. Running this over
/// weights read back through any mapping gives logits bit-identical to the
/// functional PIM replay — the token-equivalence contract.
///
/// # Panics
///
/// Panics if `w.len() != rows * cols`, `x.len() != cols`, or a row does not
/// touch exactly `partitions` partitions.
pub fn gemv_fixed_order(
    w: &[f32],
    rows: u64,
    cols: u64,
    x: &[f32],
    chunk_elems: u64,
    map_id: u8,
    partitions: u64,
) -> Vec<f32> {
    assert_eq!(w.len() as u64, rows * cols);
    assert_eq!(x.len() as u64, cols);
    let mut y = vec![0f32; rows as usize];
    for r in 0..rows {
        let mut parts: Vec<f32> = Vec::new();
        let mut last_k = None;
        let mut acc = 0f32;
        for j in 0..cols.div_ceil(chunk_elems) {
            let k = j >> map_id;
            if last_k.is_some() && last_k != Some(k) {
                parts.push(acc);
                acc = 0.0;
            }
            last_k = Some(k);
            let col0 = j * chunk_elems;
            let n = chunk_elems.min(cols - col0);
            for i in 0..n {
                acc += w[(r * cols + col0 + i) as usize] * x[(col0 + i) as usize];
            }
        }
        parts.push(acc);
        assert_eq!(parts.len() as u64, partitions, "row must span exactly `partitions` partitions");
        y[r as usize] = parts.iter().sum();
    }
    y
}

/// Outcome of one replay-vs-reference cross-check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FidelityReport {
    /// Output rows compared.
    pub rows: u64,
    /// Partitions per row.
    pub partitions: u64,
    /// Waves replayed.
    pub waves: u64,
    /// Commands interpreted.
    pub commands: u64,
    /// Output elements whose `f32` bit patterns differ from the reference.
    pub f32_mismatches: u64,
    /// Output elements whose fp16 bit patterns differ from the reference.
    pub f16_mismatches: u64,
}

impl FidelityReport {
    /// True when the replay reproduced the reference bit for bit.
    pub fn bit_exact(&self) -> bool {
        self.f32_mismatches == 0 && self.f16_mismatches == 0
    }
}

/// Trace `alloc`, replay the command stream over `mem`, run the
/// [`facil_pim::pim_gemv`] reference over the same cells, and compare the
/// outputs bit for bit (both as `f32` and narrowed to fp16).
///
/// # Errors
///
/// Propagates [`CommandSequence::trace`] errors (invalid placements, freed
/// allocations).
pub fn cross_check<S: CellStore>(
    mem: &S,
    sys: &FacilSystem,
    alloc: &PimAllocation,
    x: &[f32],
) -> facil_core::Result<FidelityReport> {
    let seq = CommandSequence::trace(sys, alloc)?;
    let got = replay_gemv(mem, &seq, x);
    let want = facil_pim::pim_gemv(mem, sys, alloc, x);
    let f32_mismatches =
        got.iter().zip(&want).filter(|(a, b)| a.to_bits() != b.to_bits()).count() as u64;
    let f16_mismatches =
        got.iter().zip(&want).filter(|(a, b)| f32_to_f16_bits(**a) != f32_to_f16_bits(**b)).count()
            as u64;
    Ok(FidelityReport {
        rows: alloc.matrix.rows,
        partitions: alloc.decision.partitions,
        waves: seq.waves().len() as u64,
        commands: seq.commands().count() as u64,
        f32_mismatches,
        f16_mismatches,
    })
}
