//! End-to-end token equivalence: FACIL-mapped PIM vs conventional SoC.
//!
//! The paper's correctness claim is that flexible DRAM mapping is *invisible*
//! to the model: the same weights, placed under a FACIL `MapID` scheme and
//! executed by the all-bank PIM command stream, must produce exactly the
//! tokens a conventional layout produces on the SoC. [`token_equivalence`]
//! checks this end to end on a small seeded decoder:
//!
//! * **FACIL path** — every linear is `pimalloc`ed, its fp16 weights written
//!   through the mapped page table into a [`crate::BankedMemory`], its
//!   all-bank command stream traced once, and every GEMV executed by
//!   [`crate::replay_gemv`] — the functional command interpreter.
//! * **Conventional path** — the same fp16 bytes are written through
//!   [`MappingScheme::conventional`] into a *second* cell store, read back,
//!   and multiplied on the (modelled) SoC by [`crate::gemv_fixed_order`],
//!   which uses the PIM-identical accumulation order.
//!
//! Activations are re-quantized to fp16 between layers on both paths, so
//! every intermediate value is exactly representable and the two paths must
//! agree *bit for bit* on every logit of every step — no epsilon.

use facil_core::{DType, FacilSystem, MappingScheme, MatrixConfig, PimArch};
use facil_dram::{CellStore, DramSpec, FnMapper};
use facil_llm::ModelConfig;
use facil_pim::commands::CommandSequence;
use facil_pim::f16::{decode_f16_le, encode_f16_le, f16_bits_to_f32, f32_to_f16_bits};
use facil_pim::store_matrix;
use serde::{Deserialize, Serialize};

use crate::replay::{gemv_fixed_order, replay_gemv};
use crate::store::BankedMemory;

/// Outcome of one FACIL-vs-conventional token-equivalence run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TokenEquivalenceReport {
    /// Model preset name.
    pub model: String,
    /// Decode steps compared.
    pub steps: u64,
    /// Greedy tokens emitted by the FACIL PIM replay path.
    pub facil_tokens: Vec<u64>,
    /// Greedy tokens emitted by the conventional SoC path.
    pub conventional_tokens: Vec<u64>,
    /// Logit values (across all steps) whose `f32` bit patterns differ.
    pub logit_mismatches: u64,
    /// True when every logit matched bit for bit and the token streams are
    /// identical.
    pub equivalent: bool,
}

/// One linear layer, placed on both paths.
struct PlacedLinear {
    rows: u64,
    cols: u64,
    /// The all-bank command stream for the FACIL-mapped copy.
    seq: CommandSequence,
    /// Weights read back from the conventional copy (exact fp16 values).
    conv_w: Vec<f32>,
    chunk_elems: u64,
    map_id: u8,
    partitions: u64,
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic value on an exact-fp16 grid: one of `{-7..=7} / 16`.
fn grid(h: u64) -> f32 {
    ((h % 15) as i64 - 7) as f32 * 0.0625
}

fn embed(seed: u64, token: u64, hidden: u64) -> Vec<f32> {
    (0..hidden).map(|i| grid(splitmix64(seed ^ 0xE0BED ^ (token << 24) ^ i))).collect()
}

/// fp16-quantized ReLU with a fixed power-of-two downscale — the
/// inter-layer activation on both paths. The 1/16 scale stands in for
/// normalization: it keeps activations inside the fp16 range across layers
/// (a dot product over 1024 elements grows roughly 16x per linear), and
/// being a power of two it is exact in binary floating point, so it cannot
/// perturb the bit-equivalence contract.
fn quant_relu(y: &[f32]) -> Vec<f32> {
    y.iter().map(|v| f16_bits_to_f32(f32_to_f16_bits(v.max(0.0) * 0.0625))).collect()
}

/// Greedy decode: highest logit, lowest index on ties.
fn argmax(logits: &[f32]) -> u64 {
    let mut best = 0usize;
    for (i, v) in logits.iter().enumerate() {
        if *v > logits[best] {
            best = i;
        }
    }
    best as u64
}

/// Drive `steps` greedy decode steps of `model` through both the FACIL PIM
/// replay and the conventional SoC path, and compare every logit bit for bit.
///
/// # Errors
///
/// Propagates `pimalloc`, `store_matrix` and command-trace errors from the
/// FACIL path, and conventional-mapping faults from the SoC path.
pub fn token_equivalence(
    spec: &DramSpec,
    model: &ModelConfig,
    steps: u64,
    seed: u64,
) -> facil_core::Result<TokenEquivalenceReport> {
    let topo = spec.topology;
    let arch = PimArch::aim(&topo);
    let mut sys = FacilSystem::new(spec.clone(), arch);
    let mut facil_mem = BankedMemory::new(topo);

    // The conventional copy lives in its own device image, addressed through
    // the SoC-default mapping at bump-allocated physical addresses.
    let mut conv_mem = BankedMemory::new(topo);
    let conv = MappingScheme::conventional(topo);
    let conv_mapper = FnMapper(move |pa: u64| conv.map_pa(pa));
    let mut conv_pa = 0u64;

    // Linear execution order: `layers x block_linears`, then the LM head.
    // The chain is dimension-compatible, so each output feeds the next input.
    let mut ops = Vec::new();
    for _ in 0..model.layers {
        ops.extend(model.block_linears());
    }
    ops.push(model.lm_head());

    let mut linears = Vec::with_capacity(ops.len());
    for (idx, op) in ops.iter().enumerate() {
        let rows = op.out_features;
        let cols = op.in_features;
        let w: Vec<f32> =
            (0..rows * cols).map(|i| grid(splitmix64(seed ^ ((idx as u64) << 48) ^ i))).collect();

        // FACIL path: allocate, fill through the mapped page table, trace.
        let alloc = sys.pimalloc(MatrixConfig::new(rows, cols, DType::F16))?;
        store_matrix(&mut facil_mem, &sys, &alloc, &w)?;
        let seq = CommandSequence::trace(&sys, &alloc)?;

        // Conventional path: raw row-major fp16 bytes under the SoC mapping.
        let bytes = encode_f16_le(&w);
        conv_mem.write_bytes(&conv_mapper, conv_pa, &bytes)?;
        let conv_w = decode_f16_le(&conv_mem.read_bytes(&conv_mapper, conv_pa, bytes.len())?);
        conv_pa += (bytes.len() as u64).next_multiple_of(topo.row_bytes);

        linears.push(PlacedLinear {
            rows,
            cols,
            chunk_elems: seq.chunk_elems(),
            map_id: alloc.decision.map_id.0,
            partitions: alloc.decision.partitions,
            seq,
            conv_w,
        });
    }

    let vocab = model.vocab;
    let mut facil_tokens = Vec::with_capacity(steps as usize);
    let mut conventional_tokens = Vec::with_capacity(steps as usize);
    let mut logit_mismatches = 0u64;
    let mut facil_tok = seed % vocab;
    let mut conv_tok = facil_tok;

    for _ in 0..steps {
        let mut fx = embed(seed, facil_tok, model.hidden);
        let mut cx = embed(seed, conv_tok, model.hidden);
        let last = linears.len() - 1;
        for (i, lin) in linears.iter().enumerate() {
            let fy = replay_gemv(&facil_mem, &lin.seq, &fx);
            let cy = gemv_fixed_order(
                &lin.conv_w,
                lin.rows,
                lin.cols,
                &cx,
                lin.chunk_elems,
                lin.map_id,
                lin.partitions,
            );
            if i == last {
                logit_mismatches +=
                    fy.iter().zip(&cy).filter(|(a, b)| a.to_bits() != b.to_bits()).count() as u64;
                facil_tok = argmax(&fy);
                conv_tok = argmax(&cy);
            } else {
                fx = quant_relu(&fy);
                cx = quant_relu(&cy);
            }
        }
        facil_tokens.push(facil_tok);
        conventional_tokens.push(conv_tok);
    }

    let equivalent = logit_mismatches == 0 && facil_tokens == conventional_tokens;
    Ok(TokenEquivalenceReport {
        model: model.name.to_string(),
        steps,
        facil_tokens,
        conventional_tokens,
        logit_mismatches,
        equivalent,
    })
}
