//! # facil-fidelity
//!
//! HW/SW-integrated *functional* PIM simulation for the FACIL (HPCA 2025)
//! reproduction. Where `facil-pim` answers "how long does the all-bank
//! stream take?", this crate answers "does it compute the right bits?" —
//! by actually executing the command stream over simulated DRAM cells:
//!
//! * [`BankedMemory`] — a bank-sliced DRAM content model (one row image per
//!   touched row, per bank) that the existing `store_matrix` path populates
//!   through any legal [`facil_core::MappingScheme`];
//! * [`replay_gemv`] — a functional interpreter for the
//!   [`facil_pim::CommandSequence`] the timing model emits: global-buffer
//!   broadcast, per-bank MAC accumulation and the partition reduction tree,
//!   in a *fixed* accumulation order;
//! * [`cross_check`] — bit-exact comparison (f32 and fp16 bit patterns)
//!   of the replay against the [`facil_pim::pim_gemv`] reference;
//! * [`token_equivalence`] — end-to-end decode of a small seeded model
//!   through both a FACIL mapping and the conventional SoC mapping,
//!   asserting identical logits for every token.
//!
//! ```
//! use facil_core::{DType, FacilSystem, MatrixConfig, PimArch};
//! use facil_dram::DramSpec;
//! use facil_fidelity::{cross_check, BankedMemory};
//! use facil_pim::store_matrix;
//!
//! # fn main() -> Result<(), facil_core::FacilError> {
//! let spec = DramSpec::lpddr5_6400(64, 8 << 30); // iPhone-class
//! let arch = PimArch::aim(&spec.topology);
//! let mut sys = FacilSystem::new(spec.clone(), arch);
//! let mut mem = BankedMemory::new(spec.topology);
//!
//! let a = sys.pimalloc(MatrixConfig::new(16, 2048, DType::F16))?;
//! let w: Vec<f32> = (0..16 * 2048).map(|i| ((i % 13) as f32 - 6.0) * 0.25).collect();
//! store_matrix(&mut mem, &sys, &a, &w)?;
//!
//! let x: Vec<f32> = (0..2048).map(|i| ((i % 7) as f32 - 3.0) * 0.5).collect();
//! let report = cross_check(&mem, &sys, &a, &x)?;
//! assert!(report.bit_exact());
//! # Ok(())
//! # }
//! ```

#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]

pub mod equiv;
pub mod replay;
pub mod store;

pub use equiv::{token_equivalence, TokenEquivalenceReport};
pub use replay::{cross_check, gemv_fixed_order, replay_gemv, FidelityReport};
pub use store::BankedMemory;
