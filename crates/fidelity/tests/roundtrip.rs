//! `store_matrix` / `load_matrix` round-trips — and bit-exact replays —
//! under *every* mapping scheme the `CandidateSpace` enumerates.

use facil_core::{DType, FacilSystem, MatrixConfig, PimArch, HUGE_PAGE_BITS};
use facil_dram::DramSpec;
use facil_fidelity::{cross_check, BankedMemory};
use facil_mapsearch::CandidateSpace;
use facil_pim::{load_matrix, store_matrix};

fn grid(i: u64) -> f32 {
    ((i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40) % 15) as f32 * 0.0625 - 0.4375
}

/// Every enumerated candidate must round-trip a matrix byte-perfectly: the
/// SoC writes row-major fp16 through the mapped page table, reads it back
/// through the same path, and gets exactly the values it wrote.
#[test]
fn every_candidate_scheme_roundtrips_store_load() {
    let spec = DramSpec::lpddr5_6400(64, 8 << 30); // iPhone 15 Pro
    let topo = spec.topology;
    let arch = PimArch::aim(&topo);
    let space = CandidateSpace::enumerate(topo, &arch, HUGE_PAGE_BITS, true).unwrap();
    assert!(space.len() > 20, "candidate space unexpectedly small: {}", space.len());

    let m = MatrixConfig::new(16, 2048, DType::F16);
    let w: Vec<f32> = (0..m.rows * m.cols).map(grid).collect();
    for cand in space.candidates() {
        let d = cand.decision(&m, topo, &arch, HUGE_PAGE_BITS).unwrap();
        let mut sys = FacilSystem::new(spec.clone(), arch);
        let alloc = sys.pimalloc_with(m, d).unwrap();
        let mut mem = BankedMemory::new(topo);
        store_matrix(&mut mem, &sys, &alloc, &w).unwrap();
        let back = load_matrix(&mem, &sys, &alloc).unwrap();
        assert_eq!(back, w, "round-trip mismatch under {cand:?}");
    }
}

/// Every *bank-stable* candidate must also replay bit-exactly; the unstable
/// ones (hash with MapID > 0 on multi-chunk rows) must be rejected at trace
/// time rather than silently mis-accumulate.
#[test]
fn every_candidate_scheme_replays_or_rejects() {
    let spec = DramSpec::lpddr5_6400(64, 8 << 30);
    let topo = spec.topology;
    let arch = PimArch::aim(&topo);
    let space = CandidateSpace::enumerate(topo, &arch, HUGE_PAGE_BITS, true).unwrap();

    let m = MatrixConfig::new(8, 2048, DType::F16);
    let w: Vec<f32> = (0..m.rows * m.cols).map(grid).collect();
    let x: Vec<f32> = (0..m.cols).map(|i| grid(i ^ 0x5EED)).collect();
    let (mut replayed, mut rejected) = (0u32, 0u32);
    for cand in space.candidates() {
        let d = cand.decision(&m, topo, &arch, HUGE_PAGE_BITS).unwrap();
        let mut sys = FacilSystem::new(spec.clone(), arch);
        let alloc = sys.pimalloc_with(m, d).unwrap();
        let mut mem = BankedMemory::new(topo);
        store_matrix(&mut mem, &sys, &alloc, &w).unwrap();
        // The 8 x 2048 matrix has two chunks per row, so MapIDs above 1 are
        // over-wide for it (matrix-row bits would leak into the segment
        // field) and the hash is only bank-stable at MapID 0.
        let chunks = m.cols * 2 / arch.chunk_row_bytes;
        let overwide = (1u64 << cand.map_id) > chunks;
        let unstable = cand.bank_hash && cand.map_id > 0;
        match cross_check(&mem, &sys, &alloc, &x) {
            Ok(report) => {
                assert!(!overwide && !unstable, "illegal candidate {cand:?} traced");
                assert!(report.bit_exact(), "{cand:?}: {report:?}");
                replayed += 1;
            }
            Err(e) => {
                assert!(overwide || unstable, "legal candidate {cand:?} rejected: {e}");
                if unstable && !overwide {
                    assert!(e.to_string().contains("bank-stable"), "{e}");
                }
                rejected += 1;
            }
        }
    }
    assert!(replayed > 10, "too few replayed candidates: {replayed}");
    assert!(rejected > 0, "expected some hash-unstable rejections");
}
