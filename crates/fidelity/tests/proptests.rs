//! Property tests: the functional command replay is bit-exact against the
//! `pim_gemv` reference for *every* legal mapping candidate — MapIDs, PU
//! orders and the bank hash, across all four paper platforms — and every
//! illegal (bank-unstable) candidate is rejected at trace time.

use facil_core::{DType, FacilSystem, MatrixConfig, PimArch, HUGE_PAGE_BITS};
use facil_dram::DramSpec;
use facil_fidelity::{replay_gemv, BankedMemory};
use facil_mapsearch::{Candidate, PuOrder};
use facil_pim::commands::CommandSequence;
use facil_pim::f16::f32_to_f16_bits;
use facil_pim::{pim_gemv, store_matrix};
use proptest::prelude::*;

/// The paper's four platforms (Table III), all with AiM-style PIM.
fn platform(idx: usize) -> DramSpec {
    match idx {
        0 => DramSpec::lpddr5_6400(256, 64 << 30), // Jetson AGX Orin
        1 => DramSpec::lpddr5_6400(512, 64 << 30), // Macbook Pro M3 Max
        2 => DramSpec::lpddr5x_7467(64, 32 << 30), // Ideapad 5 Pro
        _ => DramSpec::lpddr5_6400(64, 8 << 30),   // iPhone 15 Pro
    }
}

/// Deterministic value on an exact-fp16 grid.
fn grid(i: u64) -> f32 {
    ((i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40) % 15) as f32 * 0.0625 - 0.4375
}

/// fp16 elements per chunk row.
fn seq_chunk_elems(arch: &PimArch) -> u64 {
    arch.chunk_row_bytes / 2
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn replay_is_bit_exact_for_every_legal_candidate(
        plat in 0usize..4,
        rows_pow in 2u32..5,
        cols_sel in 0usize..3,
        map_id in 0u8..4,
        pu_idx in 0usize..6,
        hash_sel in 0u8..2,
    ) {
        let spec = platform(plat);
        let topo = spec.topology;
        let arch = PimArch::aim(&topo);
        let rows = 1u64 << rows_pow;
        let cols = [1024u64, 2048, 4096][cols_sel];
        let hash = hash_sel == 1;
        let m = MatrixConfig::new(rows, cols, DType::F16);
        let cand = Candidate { map_id, pu_order: PuOrder::all()[pu_idx], bank_hash: hash };
        // Candidates the geometry rejects outright (MapID beyond the page)
        // are out of scope here — `CandidateSpace` never enumerates them.
        let Ok(d) = cand.decision(&m, topo, &arch, HUGE_PAGE_BITS) else {
            return Ok(());
        };
        let mut sys = FacilSystem::new(spec, arch);
        let alloc = sys.pimalloc_with(m, d).expect("allocation must fit");

        let mut mem = BankedMemory::new(topo);
        let w: Vec<f32> = (0..rows * cols).map(grid).collect();
        store_matrix(&mut mem, &sys, &alloc, &w).expect("store through the mapped pages");
        let x: Vec<f32> = (0..cols).map(|i| grid(i ^ 0xC0FFEE)).collect();

        // Two ways a candidate can be placement-illegal for *this matrix*:
        // an over-wide MapID (more segments than the row has chunks, so
        // matrix-row bits leak into the segment field and waves lose their
        // single broadcast row), and the DRAMA-style hash with MapID > 0 on
        // multi-chunk rows (the PU accumulator migrates between banks
        // mid-tile). Everything else must trace and replay bit-exactly.
        let chunks = cols / seq_chunk_elems(&arch);
        let overwide = (1u64 << map_id) > chunks;
        let unstable = hash && map_id > 0 && chunks > 1;
        match CommandSequence::trace(&sys, &alloc) {
            Err(e) => {
                prop_assert!(overwide || unstable, "legal candidate {cand:?} rejected: {e}");
                if unstable && !overwide {
                    prop_assert!(e.to_string().contains("bank-stable"), "{e}");
                }
            }
            Ok(seq) => {
                prop_assert!(!overwide && !unstable, "illegal candidate {cand:?} traced");
                let got = replay_gemv(&mem, &seq, &x);
                let want = pim_gemv(&mem, &sys, &alloc, &x);
                prop_assert_eq!(got.len(), want.len());
                for (r, (a, b)) in got.iter().zip(&want).enumerate() {
                    prop_assert_eq!(
                        a.to_bits(), b.to_bits(),
                        "row {} differs under {:?}: {} vs {}", r, &cand, a, b
                    );
                    prop_assert_eq!(f32_to_f16_bits(*a), f32_to_f16_bits(*b));
                }
            }
        }
    }
}

/// HBM-PIM places 8 chunk rows per DRAM row at distinct PU slots; the
/// replay must keep the per-slot registers separate.
#[test]
fn hbm_pim_replay_matches_reference() {
    let spec = DramSpec::lpddr5_6400(16, 2 << 30);
    let arch = PimArch::hbm_pim(&spec.topology);
    let mut sys = FacilSystem::new(spec.clone(), arch);
    let m = MatrixConfig::new(64, 1024, DType::F16);
    let alloc = sys.pimalloc(m).unwrap();
    let mut mem = BankedMemory::new(spec.topology);
    let w: Vec<f32> = (0..m.rows * m.cols).map(grid).collect();
    store_matrix(&mut mem, &sys, &alloc, &w).unwrap();
    let x: Vec<f32> = (0..m.cols).map(|i| grid(i ^ 0xBEEF)).collect();

    let seq = CommandSequence::trace(&sys, &alloc).unwrap();
    let got = replay_gemv(&mem, &seq, &x);
    let want = pim_gemv(&mem, &sys, &alloc, &x);
    assert_eq!(
        got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        want.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
    );
}

/// The traced sequence lowers to timing streams that pass the shared JEDEC
/// legality checker on every channel — the same command stream is both
/// functionally correct and protocol-legal.
#[test]
fn traced_stream_is_jedec_legal_on_every_channel() {
    let spec = DramSpec::lpddr5_6400(64, 8 << 30);
    let arch = PimArch::aim(&spec.topology);
    let mut sys = FacilSystem::new(spec.clone(), arch);
    let alloc =
        sys.pimalloc(MatrixConfig::new(2 * spec.topology.total_banks(), 2048, DType::F16)).unwrap();
    let seq = CommandSequence::trace(&sys, &alloc).unwrap();
    for ch in 0..spec.topology.channels {
        let streams = seq.to_streams(ch, 2, true);
        let (_, log) = facil_dram::run_allbank_logged(&spec, &streams);
        let violations = facil_dram::verify_allbank_log(&log, &spec.timing, &streams);
        assert!(violations.is_empty(), "channel {ch}: {violations:?}");
    }
}
