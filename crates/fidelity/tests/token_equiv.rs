//! End-to-end token equivalence: a seeded decoder produces identical logits
//! (bit for bit) and identical greedy tokens whether its weights live under
//! FACIL mappings executed by the PIM command replay or under the
//! conventional mapping executed by the SoC.

use facil_dram::DramSpec;
use facil_fidelity::token_equivalence;
use facil_llm::ModelConfig;

#[test]
fn facil_and_conventional_agree_on_every_token() {
    let spec = DramSpec::lpddr5_6400(64, 8 << 30); // iPhone 15 Pro
                                                   // One decoder block keeps the debug-build replay quick; the committed
                                                   // bench runs the full two-layer preset in release mode.
    let model = ModelConfig { layers: 1, ..ModelConfig::tiny_fidelity() };
    let report = token_equivalence(&spec, &model, 3, 0xFAC1).unwrap();
    assert_eq!(report.steps, 3);
    assert_eq!(report.facil_tokens.len(), 3);
    assert_eq!(report.logit_mismatches, 0, "{report:?}");
    assert_eq!(report.facil_tokens, report.conventional_tokens, "{report:?}");
    assert!(report.equivalent);
}

#[test]
fn token_stream_is_seed_deterministic() {
    let spec = DramSpec::lpddr5_6400(64, 8 << 30);
    let model = ModelConfig { layers: 1, ..ModelConfig::tiny_fidelity() };
    let a = token_equivalence(&spec, &model, 2, 7).unwrap();
    let b = token_equivalence(&spec, &model, 2, 7).unwrap();
    assert_eq!(a, b, "same seed must reproduce the same report bit for bit");
    assert!(a.equivalent);
}
