//! Property-based tests for the structural paging stack: random
//! mmap/munmap sequences against a reference model, and radix/flat table
//! agreement under random mapping programs.

use std::collections::HashMap;

use facil_core::paging::{AddressSpace, MmapFlags, PageTable, RadixPageTable};
use facil_core::MapId;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum MmapOp {
    Map { len: u64, huge: bool, map_id: Option<u8> },
    UnmapNth(usize),
}

fn arb_op() -> impl Strategy<Value = MmapOp> {
    prop_oneof![
        (1u64..6_000_000, prop::bool::ANY, prop::option::of(0u8..16))
            .prop_map(|(len, huge, id)| { MmapOp::Map { len, huge, map_id: id.filter(|_| huge) } }),
        (0usize..8).prop_map(MmapOp::UnmapNth),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random mmap/munmap programs: regions never overlap, translations
    /// agree with a flat model of what was mapped, frames are conserved.
    #[test]
    fn address_space_matches_model(ops in prop::collection::vec(arb_op(), 1..24)) {
        let total = 128u64 << 20;
        let mut space = AddressSpace::new(total);
        // Model: region base -> (len, map_id).
        let mut model: Vec<(u64, u64, Option<MapId>)> = Vec::new();
        for op in ops {
            match op {
                MmapOp::Map { len, huge, map_id } => {
                    let flags = MmapFlags { huge, map_id: map_id.map(MapId) };
                    // A mmap Err (OOM) is legal under memory pressure.
                    if let Ok(va) = space.mmap(len, flags) {
                        let page = if huge { 2u64 << 20 } else { 4096 };
                        let rounded = len.div_ceil(page) * page;
                        // No overlap with model regions.
                        for (b, l, _) in &model {
                            prop_assert!(va + rounded <= *b || b + l <= va);
                        }
                        model.push((va, rounded, flags.map_id));
                    }
                }
                MmapOp::UnmapNth(n) => {
                    if !model.is_empty() {
                        let (va, _, _) = model.remove(n % model.len());
                        space.munmap(va).expect("region exists");
                    }
                }
            }
            // Every modelled byte translates with the right MapID; a probe
            // beyond every region faults.
            for (va, len, map_id) in &model {
                let t = space.translate(va + len / 2).expect("mapped");
                prop_assert_eq!(t.map_id, *map_id);
            }
        }
        prop_assert_eq!(space.region_count(), model.len());
    }

    /// The radix table agrees with the flat table on random huge-page
    /// mapping programs.
    #[test]
    fn radix_agrees_with_flat(
        pages in prop::collection::hash_map(0u64..512, (0u64..1024, prop::option::of(0u8..16)), 1..32),
        probes in prop::collection::vec((0u64..512, 0u64..(2 << 20)), 1..64),
    ) {
        let mut flat = PageTable::new();
        let mut radix = RadixPageTable::new();
        let map: HashMap<u64, (u64, Option<u8>)> = pages;
        for (vpn, (pfn, id)) in &map {
            let va = vpn << 21;
            let pa = pfn << 21;
            match id {
                Some(id) => {
                    flat.map_huge_pim(va, pa, MapId(*id));
                    radix.map_huge(va, pa, Some(MapId(*id)));
                }
                None => {
                    flat.map_huge(va, pa);
                    radix.map_huge(va, pa, None);
                }
            }
        }
        for (vpn, offset) in probes {
            let va = (vpn << 21) + offset;
            match (flat.translate(va), radix.translate(va)) {
                (Ok(a), Ok((b, w))) => {
                    prop_assert_eq!(a, b);
                    prop_assert_eq!(w.levels, 3);
                }
                (Err(_), Err(_)) => {}
                (a, b) => prop_assert!(false, "disagree at {va:#x}: {a:?} vs {b:?}"),
            }
        }
    }
}
