//! Property-based tests for the FACIL mapping formulation, selector,
//! paging and allocator.

use facil_core::paging::{PageTable, PhysicalMemory, Tlb};
use facil_core::{
    select_mapping_2mb, DType, MapId, MappingScheme, MatrixConfig, PimArch, PlacementChecker,
    HUGE_PAGE_BITS,
};
use facil_dram::Topology;
use proptest::prelude::*;

/// Strategy over realistic edge-device topologies (powers of two, 2 KB rows,
/// 32 B transfers, interleaving bits that fit a 2 MB page offset).
fn arb_topology() -> impl Strategy<Value = Topology> {
    (0u32..=4, 0u32..=1, 1u32..=2, 1u32..=2, 8u32..=14).prop_map(|(ch, rk, bg, bpg, rowb)| {
        Topology::new(1 << ch, 1 << rk, 1 << bg, 1 << bpg, 1 << rowb, 2048, 32)
    })
}

fn arb_arch(topo: Topology) -> impl Strategy<Value = PimArch> {
    prop_oneof![Just(PimArch::aim(&topo)), Just(PimArch::hbm_pim(&topo))]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every PIM-optimized scheme is a bijection: map then unmap is the
    /// identity on transfer-aligned PAs, for every legal MapID.
    #[test]
    fn pim_schemes_are_bijective(
        (topo, arch, pa_seed) in arb_topology().prop_flat_map(|t| (Just(t), arb_arch(t), any::<u64>()))
    ) {
        let max = MappingScheme::in_page_row_bits(&topo, HUGE_PAGE_BITS).unwrap();
        for map_id in 0..=max as u8 {
            let s = MappingScheme::pim_optimized(topo, &arch, map_id, HUGE_PAGE_BITS).unwrap();
            for i in 0..64u64 {
                let pa = (pa_seed.wrapping_mul(i * 2 + 1) % topo.capacity_bytes()) & !31;
                let da = s.map_pa(pa);
                prop_assert!(da.is_valid(&topo));
                prop_assert_eq!(s.unmap(da), pa);
            }
        }
    }

    /// Distinct transfer-aligned PAs inside one huge page map to distinct
    /// device addresses (injectivity over the whole permuted domain).
    #[test]
    fn page_offset_permutation_is_injective(
        (topo, arch) in arb_topology().prop_flat_map(|t| (Just(t), arb_arch(t))),
        map_id_frac in 0.0f64..=1.0
    ) {
        let max = MappingScheme::in_page_row_bits(&topo, HUGE_PAGE_BITS).unwrap();
        let map_id = (map_id_frac * max as f64).round() as u8;
        let s = MappingScheme::pim_optimized(topo, &arch, map_id, HUGE_PAGE_BITS).unwrap();
        let mut seen = std::collections::HashSet::new();
        // Sample a stride pattern through one page (checking all 65536
        // transfers is too slow per case; stride hits all bit positions).
        for i in 0..2048u64 {
            let pa = (i * 37 % (1 << (HUGE_PAGE_BITS - 5))) << 5;
            let da = s.map_pa(pa);
            let key = da.flat_index(&topo);
            if !seen.insert(key) {
                // Allowed only if the PA was itself repeated.
                prop_assert!((0..i).any(|j| (j * 37 % (1 << (HUGE_PAGE_BITS - 5))) << 5 == pa));
            }
        }
    }

    /// The selector always returns a MapID within range, partition count a
    /// power of two, and a scheme that passes all placement checks.
    #[test]
    fn selector_output_is_always_placeable(
        (topo, arch) in arb_topology().prop_flat_map(|t| (Just(t), arb_arch(t))),
        rows_log in 4u32..=10,
        cols_log in 10u32..=14,
    ) {
        let m = MatrixConfig::new(1 << rows_log, 1 << cols_log, DType::F16);
        if (1u64 << cols_log) * 2 < arch.chunk_row_bytes {
            return Ok(()); // narrower than a chunk: selector rejects, fine
        }
        let d = match select_mapping_2mb(&m, topo, &arch) {
            Ok(d) => d,
            // HBM-PIM-style architectures reject the partitioned case
            // (paper defines Fig. 10 partitioning for AiM only).
            Err(facil_core::FacilError::InvalidRequest(_)) => return Ok(()),
            Err(e) => return Err(TestCaseError::fail(format!("selector failed: {e}"))),
        };
        prop_assert!(d.partitions.is_power_of_two());
        let max = MappingScheme::in_page_row_bits(&topo, HUGE_PAGE_BITS).unwrap();
        prop_assert!(u32::from(d.map_id.0) <= max);
        let checker = PlacementChecker::new(&m, &d, &arch, 0);
        let report = checker.check_all().unwrap();
        prop_assert_eq!(report.pus_per_row, d.partitions);
    }

    /// The physical allocator conserves frames exactly: free bytes decrease
    /// by exactly 2 MB per successful huge-page allocation, regardless of
    /// fragmentation.
    #[test]
    fn allocator_conserves_frames(fmfi in 0.0f64..=1.0, used_frac in 0.0f64..=0.9) {
        let total = 64u64 << 20;
        let mut pm = PhysicalMemory::new(total);
        let used = ((total as f64 * used_frac) as u64 >> 12) << 12;
        pm.fragment_to(used, fmfi);
        let mut free = pm.free_bytes();
        while let Ok(_a) = pm.alloc_huge() {
            prop_assert_eq!(pm.free_bytes(), free - (2 << 20));
            free = pm.free_bytes();
        }
        prop_assert!(pm.free_bytes() < 2 << 20);
    }

    /// TLB translations always agree with the page table, hit or miss.
    #[test]
    fn tlb_is_transparent(pages in prop::collection::vec(0u64..64, 1..16), lookups in prop::collection::vec((0u64..16, 0u64..(1<<21)), 1..64)) {
        let mut pt = PageTable::new();
        let installed: Vec<u64> = pages.iter().take(16).copied().collect();
        for (i, p) in installed.iter().enumerate() {
            pt.map_huge_pim(*p << 21, (i as u64) << 21, MapId((i % 16) as u8));
        }
        let mut tlb = Tlb::new(8, 2);
        for (pi, offset) in lookups {
            let p = installed[pi as usize % installed.len()];
            let va = (p << 21) + offset;
            let direct = pt.translate(va).unwrap();
            let via_tlb = tlb.translate(va, &pt).unwrap();
            prop_assert_eq!(direct, via_tlb);
        }
    }
}
