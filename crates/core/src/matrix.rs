//! Matrix and data-type descriptors passed to `pimalloc` (the paper's
//! "matrix configuration").

use serde::{Deserialize, Serialize};

/// Element data type of a weight matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DType {
    /// 16-bit IEEE float (the precision used throughout the paper).
    F16,
    /// bfloat16.
    Bf16,
    /// 32-bit IEEE float.
    F32,
    /// 8-bit integer (weight-only quantization).
    I8,
}

impl DType {
    /// Size of one element in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            DType::F16 | DType::Bf16 => 2,
            DType::F32 => 4,
            DType::I8 => 1,
        }
    }
}

impl std::fmt::Display for DType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DType::F16 => write!(f, "fp16"),
            DType::Bf16 => write!(f, "bf16"),
            DType::F32 => write!(f, "fp32"),
            DType::I8 => write!(f, "int8"),
        }
    }
}

/// Shape and data type of a weight matrix, as supplied to `pimalloc`
/// (paper Fig. 7, step 1).
///
/// The matrix is stored row-major in virtual address space: GEMV computes
/// `y = W x` where `W` is `rows x cols`, so one *matrix row* (length `cols`)
/// is the unit a single PIM processing unit should own.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MatrixConfig {
    /// Number of matrix rows (output dimension).
    pub rows: u64,
    /// Number of matrix columns (input dimension).
    pub cols: u64,
    /// Element type.
    pub dtype: DType,
}

impl MatrixConfig {
    /// Create a matrix configuration.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(rows: u64, cols: u64, dtype: DType) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be nonzero");
        MatrixConfig { rows, cols, dtype }
    }

    /// Bytes of one matrix row, padded to the next power of two as the
    /// selector requires (paper Fig. 9: `pow(2, ceil(log2(matrix_col)))`).
    pub fn padded_row_bytes(&self) -> u64 {
        self.cols.next_power_of_two() * self.dtype.bytes()
    }

    /// Unpadded total size in bytes.
    pub fn bytes(&self) -> u64 {
        self.rows * self.cols * self.dtype.bytes()
    }

    /// Total size in bytes with each row padded to a power of two, which is
    /// how `pimalloc` lays the matrix out in virtual memory.
    pub fn padded_bytes(&self) -> u64 {
        self.rows * self.padded_row_bytes()
    }
}

impl std::fmt::Display for MatrixConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{} {}", self.rows, self.cols, self.dtype)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtype_sizes() {
        assert_eq!(DType::F16.bytes(), 2);
        assert_eq!(DType::Bf16.bytes(), 2);
        assert_eq!(DType::F32.bytes(), 4);
        assert_eq!(DType::I8.bytes(), 1);
    }

    #[test]
    fn padded_row_bytes_rounds_to_power_of_two() {
        let m = MatrixConfig::new(4096, 4096, DType::F16);
        assert_eq!(m.padded_row_bytes(), 8192);
        let odd = MatrixConfig::new(10, 3000, DType::F16);
        assert_eq!(odd.padded_row_bytes(), 4096 * 2);
        assert_eq!(odd.bytes(), 10 * 3000 * 2);
        assert_eq!(odd.padded_bytes(), 10 * 8192);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_dims_rejected() {
        MatrixConfig::new(0, 5, DType::F16);
    }

    #[test]
    fn display_formats() {
        let m = MatrixConfig::new(1024, 4096, DType::F16);
        assert_eq!(m.to_string(), "1024x4096 fp16");
    }
}
