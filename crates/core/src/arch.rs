//! PIM architecture descriptors: the "PIM configuration" consumed by the
//! mapping selector (paper Fig. 9).

use facil_dram::Topology;
use serde::{Deserialize, Serialize};

use crate::matrix::DType;

/// Family of near-bank PIM architecture, distinguished by chunk shape
/// (paper Section II-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PimStyle {
    /// SK hynix Accelerator-in-Memory: chunk = (1, input-register elements);
    /// the input register holds a whole DRAM row.
    Aim,
    /// Samsung HBM-PIM (FIMDRAM): chunk = (8, 128) for 16-bit data; the
    /// registers are transfer-sized.
    HbmPim,
}

/// A PIM processing-unit architecture, reduced to what the mapping
/// formulation needs: the chunk geometry in *bytes* and the bank sharing.
///
/// A *chunk* is the unit of computation of one processing unit (PU): a
/// `chunk_rows x chunk_cols` sub-matrix. `chunk_row_bytes` is the byte length
/// of one chunk row (`chunk_cols * element size`), which must tile the DRAM
/// row exactly: `chunk_row_bytes * chunk_rows == row_bytes`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PimArch {
    /// Architecture family.
    pub style: PimStyle,
    /// Matrix rows per chunk (1 for AiM, 8 for HBM-PIM).
    pub chunk_rows: u64,
    /// Bytes per chunk row (2048 for AiM on LPDDR5; 256 for HBM-PIM fp16).
    pub chunk_row_bytes: u64,
    /// MAC throughput of one PU in elements per controller clock cycle
    /// (16 for AiM: one 32 B transfer of fp16 per MAC command beat).
    pub macs_per_cycle: u64,
}

impl PimArch {
    /// AiM-style PIM for the given DRAM topology: chunk dimension
    /// (1, row_bytes / element) — the global input buffer holds one DRAM row
    /// (paper Section VI-A).
    pub fn aim(topo: &Topology) -> Self {
        PimArch {
            style: PimStyle::Aim,
            chunk_rows: 1,
            chunk_row_bytes: topo.row_bytes,
            macs_per_cycle: topo.transfer_bytes / 2,
        }
    }

    /// HBM-PIM-style chunk (8, 128) for 16-bit elements: each chunk row is
    /// 128 elements = 256 bytes (paper Section II-C, footnote 1).
    pub fn hbm_pim(topo: &Topology) -> Self {
        PimArch {
            style: PimStyle::HbmPim,
            chunk_rows: 8,
            chunk_row_bytes: 8 * topo.transfer_bytes,
            macs_per_cycle: topo.transfer_bytes / 2,
        }
    }

    /// Chunk columns in elements of `dtype`.
    pub fn chunk_cols(&self, dtype: DType) -> u64 {
        self.chunk_row_bytes / dtype.bytes()
    }

    /// log2 of chunk-row transfers: the *chunk column bits* of the mapping
    /// formulation (paper Fig. 8 step 1).
    pub fn chunk_col_bits(&self, topo: &Topology) -> u32 {
        (self.chunk_row_bytes / topo.transfer_bytes).trailing_zeros()
    }

    /// log2 of `chunk_rows`: the *chunk row bits* (0 for AiM, 3 for HBM-PIM).
    pub fn chunk_row_bits(&self) -> u32 {
        self.chunk_rows.trailing_zeros()
    }

    /// Check that the chunk tiles the DRAM row exactly, which the mapping
    /// formulation requires (all column bits are split between chunk-column
    /// and chunk-row bits).
    pub fn tiles_row(&self, topo: &Topology) -> bool {
        self.chunk_row_bytes.is_power_of_two()
            && self.chunk_rows.is_power_of_two()
            && self.chunk_row_bytes * self.chunk_rows == topo.row_bytes
            && self.chunk_row_bytes >= topo.transfer_bytes
    }
}

impl std::fmt::Display for PimStyle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PimStyle::Aim => write!(f, "AiM"),
            PimStyle::HbmPim => write!(f, "HBM-PIM"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        Topology::new(16, 2, 4, 4, 65536, 2048, 32)
    }

    #[test]
    fn aim_chunk_matches_paper() {
        let t = topo();
        let a = PimArch::aim(&t);
        // (1, 1024) for fp16 on a 2 KB row (paper Section II-C).
        assert_eq!(a.chunk_rows, 1);
        assert_eq!(a.chunk_cols(DType::F16), 1024);
        assert_eq!(a.chunk_col_bits(&t), 6);
        assert_eq!(a.chunk_row_bits(), 0);
        assert!(a.tiles_row(&t));
    }

    #[test]
    fn hbm_pim_chunk_matches_paper() {
        let t = topo();
        let h = PimArch::hbm_pim(&t);
        // (8, 128) for fp16 (paper Section II-C).
        assert_eq!(h.chunk_rows, 8);
        assert_eq!(h.chunk_cols(DType::F16), 128);
        assert_eq!(h.chunk_col_bits(&t), 3);
        assert_eq!(h.chunk_row_bits(), 3);
        assert!(h.tiles_row(&t));
    }

    #[test]
    fn column_bits_split_exactly() {
        let t = topo();
        for arch in [PimArch::aim(&t), PimArch::hbm_pim(&t)] {
            assert_eq!(arch.chunk_col_bits(&t) + arch.chunk_row_bits(), t.column_bits());
        }
    }
}
