//! The FACIL mapping selector (paper Fig. 9 and Fig. 10).
//!
//! Given the matrix configuration, the memory-system configuration and the
//! PIM configuration — all available to user-level software — the selector
//! picks the MapID whose PIM-optimized scheme places the matrix optimally:
//!
//! * if a whole (power-of-two padded) matrix row fits in the per-bank slice
//!   of a huge page, the MapID is chosen so one matrix row maps entirely to
//!   one PU's bank (no inter-bank reduction);
//! * otherwise the PU-changing bits are pushed to the MSB of the page
//!   offset (maximum MapID) and the row is *column-partitioned* across
//!   several PUs, whose partial sums the SoC reduces afterwards (Fig. 10).

use facil_dram::Topology;
use serde::{Deserialize, Serialize};

use crate::arch::PimArch;
use crate::error::{FacilError, Result};
use crate::matrix::MatrixConfig;
use crate::scheme::{MappingScheme, HUGE_PAGE_BITS};

/// Hardware mapping identifier stored in the page table entry and used by
/// the memory-controller frontend mux. `MapId(0)` is the first
/// *PIM-optimized* mapping; the conventional mapping is represented by the
/// absence of a MapID (`Option<MapId>` in the PTE).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MapId(pub u8);

impl std::fmt::Display for MapId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MapID({})", self.0)
    }
}

/// Outcome of mapping selection for one matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MappingDecision {
    /// Selected MapID (paper definition: row bits between the chunk-column
    /// bits and the PU-changing bits).
    pub map_id: MapId,
    /// Number of PUs that share one matrix row (1 = no partitioning; >1 =
    /// the Fig. 10 case, requiring an SoC-side reduction of partial sums).
    pub partitions: u64,
    /// The constructed scheme.
    pub scheme: MappingScheme,
    /// Bytes of huge-page memory one bank receives per page
    /// (`huge page size / total bank count`).
    pub memory_per_bank: u64,
}

/// Select the PA-to-DA mapping for `matrix` (paper Fig. 9 `select_mapping`).
///
/// ```
/// use facil_core::{select_mapping_2mb, DType, MapId, MatrixConfig, PimArch};
/// use facil_dram::DramSpec;
///
/// # fn main() -> facil_core::Result<()> {
/// let spec = DramSpec::lpddr5_6400(64, 8 << 30);
/// let arch = PimArch::aim(&spec.topology);
/// // A 2048-column fp16 weight: rows are 4 KB, two DRAM rows per bank.
/// let d = select_mapping_2mb(&MatrixConfig::new(2048, 2048, DType::F16), spec.topology, &arch)?;
/// assert_eq!(d.map_id, MapId(1));
/// assert_eq!(d.partitions, 1);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Returns an error if the topology cannot support PIM-optimized mapping at
/// this page size (interleaving bits outside the page offset) or the chunk
/// does not tile the DRAM row.
pub fn select_mapping(
    matrix: &MatrixConfig,
    topo: Topology,
    arch: &PimArch,
    page_bits: u32,
) -> Result<MappingDecision> {
    let row_bytes = matrix.padded_row_bytes();
    if row_bytes < arch.chunk_row_bytes {
        return Err(FacilError::InvalidRequest(format!(
            "matrix row ({row_bytes} B) smaller than one chunk row ({} B); \
             pad the matrix columns to at least the chunk width",
            arch.chunk_row_bytes
        )));
    }
    let hpage = 1u64 << page_bits;
    let memory_per_bank = hpage / topo.total_banks();
    if memory_per_bank < arch.chunk_row_bytes {
        return Err(FacilError::InvalidMapping(format!(
            "per-bank page slice ({memory_per_bank} B) below one chunk row ({} B)",
            arch.chunk_row_bytes
        )));
    }
    // Paper Fig. 9: map_id = log2(need_partition ? memory_per_bank : row_size)
    //               - log2(chunk bytes).
    // The pseudocode assumes AiM (chunk_rows == 1); generalized here: one
    // bank stores `chunk_rows` matrix rows per tile, so the largest matrix
    // row a single PU can own within one huge page is
    // `memory_per_bank / chunk_rows`.
    let max_row_per_pu = memory_per_bank / arch.chunk_rows;
    let need_partition = max_row_per_pu < row_bytes;
    if need_partition && arch.chunk_rows > 1 {
        // The paper defines column partitioning (Fig. 10) for AiM-style PIM
        // (chunk row dimension 1). With multi-row chunks, splitting a matrix
        // row across PUs by bit permutation would break the chunk-row
        // grouping, so we reject rather than mis-place.
        return Err(FacilError::InvalidRequest(format!(
            "matrix row ({row_bytes} B) exceeds the per-PU page share ({max_row_per_pu} B) and \
             column partitioning is only defined for chunk-row-1 (AiM-style) architectures"
        )));
    }
    let selected_bytes = if need_partition { max_row_per_pu } else { row_bytes };
    let map_id = (selected_bytes / arch.chunk_row_bytes).trailing_zeros() as u8;
    let partitions = if need_partition { row_bytes / max_row_per_pu } else { 1 };
    let scheme = MappingScheme::pim_optimized(topo, arch, map_id, page_bits)?;
    Ok(MappingDecision { map_id: MapId(map_id), partitions, scheme, memory_per_bank })
}

/// Convenience wrapper using the default 2 MB huge page.
pub fn select_mapping_2mb(
    matrix: &MatrixConfig,
    topo: Topology,
    arch: &PimArch,
) -> Result<MappingDecision> {
    select_mapping(matrix, topo, arch, HUGE_PAGE_BITS)
}

/// Build the decision for a *forced* MapID instead of the selector's
/// choice — the "one global PIM mapping for every tensor" configuration of
/// IANUS-style systems, used by the mapping-flexibility ablation. A MapID
/// smaller than the matrix needs scatters each row over
/// `row_bytes / (chunk_row_bytes << map_id)` PUs, forcing partial-sum
/// reductions the flexible selector avoids.
///
/// # Errors
///
/// Propagates scheme-construction errors; rejects matrices narrower than a
/// chunk row like [`select_mapping`].
pub fn decision_with_map_id(
    matrix: &MatrixConfig,
    topo: Topology,
    arch: &PimArch,
    map_id: u8,
    page_bits: u32,
) -> Result<MappingDecision> {
    let row_bytes = matrix.padded_row_bytes();
    if row_bytes < arch.chunk_row_bytes {
        return Err(FacilError::InvalidRequest(format!(
            "matrix row ({row_bytes} B) smaller than one chunk row ({} B)",
            arch.chunk_row_bytes
        )));
    }
    let hpage = 1u64 << page_bits;
    let memory_per_bank = hpage / topo.total_banks();
    let scheme = MappingScheme::pim_optimized(topo, arch, map_id, page_bits)?;
    let per_pu_row_bytes = arch.chunk_row_bytes << map_id;
    let partitions = (row_bytes / per_pu_row_bytes).max(1).min(topo.total_banks());
    Ok(MappingDecision { map_id: MapId(map_id), partitions, scheme, memory_per_bank })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::DType;

    /// iPhone-like small system: 4 channels, 2 ranks, 16 banks.
    fn small_topo() -> Topology {
        Topology::new(4, 2, 4, 4, 16384, 2048, 32)
    }

    /// Jetson-like system: 16 channels, 2 ranks, 16 banks.
    fn jetson_topo() -> Topology {
        Topology::new(16, 2, 4, 4, 65536, 2048, 32)
    }

    #[test]
    fn small_matrix_fits_one_bank() {
        // 2048-column fp16 row = 4 KB; iPhone-like: 2MB/128 banks = 16 KB
        // per bank >= 4 KB, so no partitioning. MapID = log2(4K/2K) = 1.
        let t = small_topo();
        let m = MatrixConfig::new(2048, 2048, DType::F16);
        let d = select_mapping_2mb(&m, t, &PimArch::aim(&t)).unwrap();
        assert_eq!(d.map_id, MapId(1));
        assert_eq!(d.partitions, 1);
        assert_eq!(d.memory_per_bank, 16 << 10);
    }

    #[test]
    fn large_row_partitions_on_many_channel_system() {
        // Jetson-like: 512 banks; 2MB/512 = 4 KB per bank. A Llama3-8B
        // 4096-col fp16 row is 8 KB > 4 KB: partition across 2 PUs
        // (Fig. 10), PU bits at page-offset MSB.
        let t = jetson_topo();
        let m = MatrixConfig::new(4096, 4096, DType::F16);
        let d = select_mapping_2mb(&m, t, &PimArch::aim(&t)).unwrap();
        assert_eq!(d.partitions, 2);
        // memory_per_bank 4 KB / chunk 2 KB = MapID 1, which is also the max
        // (PU bits at MSB of the page offset).
        assert_eq!(d.map_id, MapId(1));
        let max = MappingScheme::in_page_row_bits(&t, HUGE_PAGE_BITS).unwrap() as u8;
        assert_eq!(d.map_id.0, max);
    }

    #[test]
    fn map_id_scales_with_matrix_columns() {
        let t = small_topo();
        let arch = PimArch::aim(&t);
        // 1024 cols fp16 = 2 KB row = 1 chunk -> MapID 0.
        let d0 = select_mapping_2mb(&MatrixConfig::new(64, 1024, DType::F16), t, &arch).unwrap();
        assert_eq!(d0.map_id, MapId(0));
        // 4096 cols = 8 KB -> MapID 2.
        let d2 = select_mapping_2mb(&MatrixConfig::new(64, 4096, DType::F16), t, &arch).unwrap();
        assert_eq!(d2.map_id, MapId(2));
        // 8192 cols = 16 KB = memory_per_bank -> MapID 3, still 1 partition.
        let d3 = select_mapping_2mb(&MatrixConfig::new(64, 8192, DType::F16), t, &arch).unwrap();
        assert_eq!(d3.map_id, MapId(3));
        assert_eq!(d3.partitions, 1);
        // 16384 cols = 32 KB -> partition by 2 at max MapID 3.
        let d4 = select_mapping_2mb(&MatrixConfig::new(64, 16384, DType::F16), t, &arch).unwrap();
        assert_eq!(d4.map_id, MapId(3));
        assert_eq!(d4.partitions, 2);
    }

    #[test]
    fn non_power_of_two_columns_are_padded() {
        let t = small_topo();
        let arch = PimArch::aim(&t);
        // 14336 cols (Llama3 FFN) pads to 16384 = 32 KB rows.
        let d = select_mapping_2mb(&MatrixConfig::new(4096, 14336, DType::F16), t, &arch).unwrap();
        assert_eq!(d.partitions, 2);
    }

    #[test]
    fn dtype_changes_row_bytes_and_mapid() {
        let t = small_topo();
        let arch = PimArch::aim(&t);
        let f16 = select_mapping_2mb(&MatrixConfig::new(64, 4096, DType::F16), t, &arch).unwrap();
        let i8 = select_mapping_2mb(&MatrixConfig::new(64, 4096, DType::I8), t, &arch).unwrap();
        assert_eq!(f16.map_id, MapId(2));
        assert_eq!(i8.map_id, MapId(1), "int8 rows are half the bytes");
    }

    #[test]
    fn hbm_pim_selection() {
        let t = small_topo();
        let arch = PimArch::hbm_pim(&t);
        // 1024-col fp16 row = 2 KB; chunk row = 256 B -> MapID = 3.
        let d = select_mapping_2mb(&MatrixConfig::new(64, 1024, DType::F16), t, &arch).unwrap();
        assert_eq!(d.map_id, MapId(3));
    }

    #[test]
    fn matrix_narrower_than_chunk_rejected() {
        let t = small_topo();
        let arch = PimArch::aim(&t);
        let err =
            select_mapping_2mb(&MatrixConfig::new(64, 256, DType::F16), t, &arch).unwrap_err();
        assert!(matches!(err, FacilError::InvalidRequest(_)));
    }

    #[test]
    fn forced_global_mapid_partitions_small_matrices() {
        // IANUS-style fixed MapID 0 scatters a 4096-col row over 4 PUs,
        // where the flexible selector would use MapID 2 with 1 partition.
        let t = small_topo();
        let arch = PimArch::aim(&t);
        let m = MatrixConfig::new(64, 4096, DType::F16);
        let flexible = select_mapping_2mb(&m, t, &arch).unwrap();
        let fixed = decision_with_map_id(&m, t, &arch, 0, HUGE_PAGE_BITS).unwrap();
        assert_eq!(flexible.partitions, 1);
        assert_eq!(fixed.partitions, 4);
        assert_eq!(fixed.map_id, MapId(0));
    }

    #[test]
    fn forced_oversized_mapid_keeps_one_partition() {
        let t = small_topo();
        let arch = PimArch::aim(&t);
        let m = MatrixConfig::new(64, 1024, DType::F16); // 1-chunk rows
        let fixed = decision_with_map_id(&m, t, &arch, 3, HUGE_PAGE_BITS).unwrap();
        assert_eq!(fixed.partitions, 1);
    }

    #[test]
    fn other_page_sizes_are_supported() {
        let t = small_topo();
        let arch = PimArch::aim(&t);
        let m = MatrixConfig::new(64, 16384, DType::F16); // 32 KB rows
                                                          // 2 MB pages: 16 KB per bank -> partition x2.
        let small_page = select_mapping(&m, t, &arch, 21).unwrap();
        assert_eq!(small_page.partitions, 2);
        // 1 GB pages: 8 MB per bank -> whole rows fit, no partitioning.
        let big_page = select_mapping(&m, t, &arch, 30).unwrap();
        assert_eq!(big_page.partitions, 1);
        assert!(big_page.map_id > small_page.map_id);
        // 64 KB pages: cannot even hold the interleaving bits x column
        // field for this topology -> clean error.
        assert!(select_mapping(&m, t, &arch, 16).is_err());
    }

    #[test]
    fn selected_scheme_is_consistent_with_mapid() {
        let t = small_topo();
        let arch = PimArch::aim(&t);
        let d = select_mapping_2mb(&MatrixConfig::new(64, 4096, DType::F16), t, &arch).unwrap();
        assert!(d.scheme.label().contains("MapID=2"));
    }
}
