//! Physical-frame allocator with controllable fragmentation, plus the
//! huge-page allocation cost model behind Table I of the paper.
//!
//! The paper measures how memory utilization and the free-memory
//! fragmentation index (FMFI, Gorman & Whitcroft) inflate model load time
//! when weights must be placed in 2 MB huge pages. The mechanism is: a huge
//! page needs 512 contiguous, aligned 4 KB frames; under fragmentation the
//! kernel must reclaim/compact — i.e. *move* occupied frames — to mint one.
//! This module reproduces that mechanism: a bitmap allocator whose state can
//! be prepared at a target (utilization, FMFI) point, an `alloc_huge` that
//! falls back to compaction and reports how many frames it moved, and a
//! cost model turning (bytes read from storage, frames moved) into seconds.

use serde::{Deserialize, Serialize};

use crate::error::{FacilError, Result};
use crate::paging::pte::{BASE_PAGE_BITS, HUGE_PAGE_BITS};

/// Frames per 2 MB huge page.
pub const FRAMES_PER_HUGE: u64 = 1 << (HUGE_PAGE_BITS - BASE_PAGE_BITS);

/// Statistics of an allocation run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AllocStats {
    /// Huge pages allocated directly from fully-free blocks.
    pub pages_direct: u64,
    /// Huge pages minted via compaction.
    pub pages_compacted: u64,
    /// 4 KB frames moved (relocated) during compaction.
    pub frames_moved: u64,
    /// Base (4 KB) pages allocated.
    pub base_pages: u64,
}

/// Result of one huge-page allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HugeAlloc {
    /// Physical base address (2 MB aligned).
    pub pa: u64,
    /// Frames moved to mint this page (0 = direct allocation).
    pub frames_moved: u64,
}

/// Bitmap physical-frame allocator (one bit per 4 KB frame) with per-block
/// free counts so huge-page allocation stays fast at 64 GB scale.
#[derive(Debug, Clone)]
pub struct PhysicalMemory {
    /// 1 bit per frame; set = used.
    bits: Vec<u64>,
    /// Free frames per 2 MB block.
    block_free: Vec<u16>,
    frames: u64,
    free_frames: u64,
    stats: AllocStats,
    /// Rotating cursor for relocation-target search.
    scan_hint: u64,
}

impl PhysicalMemory {
    /// Create an allocator over `total_bytes` of physical memory.
    ///
    /// # Panics
    ///
    /// Panics if `total_bytes` is not a multiple of 2 MB.
    pub fn new(total_bytes: u64) -> Self {
        assert_eq!(total_bytes % (1 << HUGE_PAGE_BITS), 0, "size must be a multiple of 2 MB");
        let frames = total_bytes >> BASE_PAGE_BITS;
        let blocks = (frames / FRAMES_PER_HUGE) as usize;
        PhysicalMemory {
            bits: vec![0u64; (frames as usize).div_ceil(64)],
            block_free: vec![FRAMES_PER_HUGE as u16; blocks],
            frames,
            free_frames: frames,
            stats: AllocStats::default(),
            scan_hint: 0,
        }
    }

    fn is_used(&self, frame: u64) -> bool {
        self.bits[(frame / 64) as usize] >> (frame % 64) & 1 == 1
    }

    fn set_used(&mut self, frame: u64) {
        debug_assert!(!self.is_used(frame));
        self.bits[(frame / 64) as usize] |= 1 << (frame % 64);
        self.block_free[(frame / FRAMES_PER_HUGE) as usize] -= 1;
        self.free_frames -= 1;
    }

    fn set_free(&mut self, frame: u64) {
        debug_assert!(self.is_used(frame));
        self.bits[(frame / 64) as usize] &= !(1 << (frame % 64));
        self.block_free[(frame / FRAMES_PER_HUGE) as usize] += 1;
        self.free_frames += 1;
    }

    /// Total physical frames.
    pub fn total_frames(&self) -> u64 {
        self.frames
    }

    /// Free bytes.
    pub fn free_bytes(&self) -> u64 {
        self.free_frames << BASE_PAGE_BITS
    }

    /// Allocation statistics so far.
    pub fn stats(&self) -> AllocStats {
        self.stats
    }

    fn blocks(&self) -> u64 {
        self.block_free.len() as u64
    }

    /// Number of fully-free, aligned 2 MB blocks.
    pub fn free_huge_blocks(&self) -> u64 {
        self.block_free.iter().filter(|&&f| u64::from(f) == FRAMES_PER_HUGE).count() as u64
    }

    /// Free-memory fragmentation index for 2 MB allocations:
    /// `1 - (free bytes in fully-free 2 MB blocks) / (total free bytes)`.
    /// 0 = all free memory is huge-page ready; 1 = none is.
    pub fn fmfi(&self) -> f64 {
        if self.free_frames == 0 {
            return 0.0;
        }
        let big = self.free_huge_blocks() * FRAMES_PER_HUGE;
        1.0 - big as f64 / self.free_frames as f64
    }

    /// Allocate one 4 KB frame.
    ///
    /// # Errors
    ///
    /// [`FacilError::OutOfMemory`] when no frame is free.
    pub fn alloc_base(&mut self) -> Result<u64> {
        if self.free_frames == 0 {
            return Err(FacilError::OutOfMemory { requested: 1 << BASE_PAGE_BITS, free: 0 });
        }
        // Prefer a partial block so fully-free blocks stay huge-page ready
        // (mirrors the kernel's anti-fragmentation placement).
        // `free_frames > 0` was checked above, and `block_free` is kept in
        // lockstep with the frame bitmap, so both lookups must succeed.
        #[allow(clippy::expect_used)]
        let block = self
            .block_free
            .iter()
            .position(|&f| f > 0 && u64::from(f) < FRAMES_PER_HUGE)
            .or_else(|| self.block_free.iter().position(|&f| f > 0))
            .expect("free frames exist");
        let start = block as u64 * FRAMES_PER_HUGE;
        #[allow(clippy::expect_used)]
        let frame = (start..start + FRAMES_PER_HUGE)
            .find(|&f| !self.is_used(f))
            .expect("block_free count says a frame is free");
        self.set_used(frame);
        self.stats.base_pages += 1;
        Ok(frame << BASE_PAGE_BITS)
    }

    /// Allocate one 2 MB huge page, compacting if necessary.
    ///
    /// Direct path: take a fully-free aligned block. Compaction path: pick
    /// the partial block with the most free frames, relocate its used frames
    /// into free frames of other partial blocks (counted in `frames_moved`),
    /// then take the block.
    ///
    /// # Errors
    ///
    /// [`FacilError::OutOfMemory`] when fewer than 512 frames remain free.
    pub fn alloc_huge(&mut self) -> Result<HugeAlloc> {
        if self.free_frames < FRAMES_PER_HUGE {
            return Err(FacilError::OutOfMemory {
                requested: 1 << HUGE_PAGE_BITS,
                free: self.free_bytes(),
            });
        }
        // Direct path.
        if let Some(block) = self.block_free.iter().position(|&f| u64::from(f) == FRAMES_PER_HUGE) {
            let start = block as u64 * FRAMES_PER_HUGE;
            for fr in start..start + FRAMES_PER_HUGE {
                self.set_used(fr);
            }
            self.stats.pages_direct += 1;
            return Ok(HugeAlloc { pa: start << BASE_PAGE_BITS, frames_moved: 0 });
        }
        // Compaction path: victim = partial block with most free frames.
        // The capacity check at the top guarantees at least one such block.
        #[allow(clippy::expect_used)]
        let victim = self
            .block_free
            .iter()
            .enumerate()
            .filter(|(_, &f)| f > 0)
            .max_by_key(|(_, &f)| f)
            .map(|(b, _)| b as u64)
            .expect("free frames exist, so some block has free frames");
        let to_move = FRAMES_PER_HUGE - u64::from(self.block_free[victim as usize]);
        let start = victim * FRAMES_PER_HUGE;
        // Relocate: occupy `to_move` free frames outside the victim block,
        // starting from the rotating hint.
        let mut moved = 0;
        let nblocks = self.blocks();
        let mut scanned = 0;
        let mut b = self.scan_hint % nblocks;
        while moved < to_move && scanned < nblocks {
            if b != victim && self.block_free[b as usize] > 0 {
                let bstart = b * FRAMES_PER_HUGE;
                let mut fr = bstart;
                while moved < to_move && fr < bstart + FRAMES_PER_HUGE {
                    if !self.is_used(fr) {
                        self.set_used(fr);
                        moved += 1;
                    }
                    fr += 1;
                }
            }
            b = (b + 1) % nblocks;
            scanned += 1;
        }
        self.scan_hint = b;
        debug_assert_eq!(moved, to_move, "free_frames accounting guarantees room");
        // Claim the whole victim block.
        for fr in start..start + FRAMES_PER_HUGE {
            if !self.is_used(fr) {
                self.set_used(fr);
            }
        }
        self.stats.pages_compacted += 1;
        self.stats.frames_moved += to_move;
        Ok(HugeAlloc { pa: start << BASE_PAGE_BITS, frames_moved: to_move })
    }

    /// Free a previously-allocated huge page.
    ///
    /// # Panics
    ///
    /// Panics if `pa` is not 2 MB-aligned.
    pub fn free_huge(&mut self, pa: u64) {
        assert_eq!(pa & ((1 << HUGE_PAGE_BITS) - 1), 0);
        let start = pa >> BASE_PAGE_BITS;
        for fr in start..start + FRAMES_PER_HUGE {
            if self.is_used(fr) {
                self.set_free(fr);
            }
        }
    }

    /// Prepare the allocator at a target state: `used_bytes` occupied, with
    /// approximately the requested `fmfi` for the *free* memory.
    ///
    /// Deterministic: "mixed" blocks hold the scattered fraction of the free
    /// memory (free/used frames interleaved so no 2 MB run survives), then
    /// fully-used blocks, then fully-free blocks.
    ///
    /// # Panics
    ///
    /// Panics if `used_bytes` exceeds capacity or `fmfi` is outside [0, 1].
    pub fn fragment_to(&mut self, used_bytes: u64, fmfi: f64) {
        assert!((0.0..=1.0).contains(&fmfi), "fmfi must be in [0,1]");
        assert!(used_bytes <= self.frames << BASE_PAGE_BITS);
        // Reset.
        self.bits.iter_mut().for_each(|w| *w = 0);
        self.block_free.iter_mut().for_each(|f| *f = FRAMES_PER_HUGE as u16);
        self.free_frames = self.frames;
        self.stats = AllocStats::default();
        self.scan_hint = 0;

        let used_frames = used_bytes >> BASE_PAGE_BITS;
        let free_frames = self.frames - used_frames;
        // Scattered free frames: fmfi fraction of free memory lives inside
        // mixed blocks as runs of at most `free_run` frames, each run broken
        // by one used separator frame so no 2 MB-aligned run survives. The
        // run length adapts so even low-utilization, high-FMFI states are
        // representable (few used frames can break up a lot of free memory).
        let scattered = (free_frames as f64 * fmfi).round() as u64;
        let mut used_budget = used_frames;
        let free_run = if scattered == 0 {
            1
        } else {
            scattered.div_ceil(used_budget.max(1)).clamp(1, FRAMES_PER_HUGE / 2)
        };
        let period = free_run + 1;
        let mut remaining_scatter = scattered;
        let mut fr = 0u64;
        while remaining_scatter > 0 && used_budget > 0 && fr < self.frames {
            if fr % period < free_run {
                if remaining_scatter > 0 {
                    remaining_scatter -= 1;
                } else {
                    self.set_used(fr);
                    used_budget -= 1;
                }
            } else {
                self.set_used(fr);
                used_budget -= 1;
            }
            fr += 1;
        }
        // Round the mixed region up to a block boundary so the tail block is
        // not accidentally huge-page ready; pad it with used frames.
        while !fr.is_multiple_of(FRAMES_PER_HUGE) && used_budget > 0 && fr < self.frames {
            self.set_used(fr);
            used_budget -= 1;
            fr += 1;
        }
        // Remaining used frames fill whole blocks after the mixed region.
        while used_budget > 0 && fr < self.frames {
            self.set_used(fr);
            used_budget -= 1;
            fr += 1;
        }
        assert_eq!(used_budget, 0, "could not place all used frames");
    }
}

/// Cost model for Table I: model load time under huge-page allocation.
///
/// Calibrated against a Jetson AGX Orin with a Samsung 980 Pro NVMe SSD
/// (the paper's setup): sequential read ~1.85 GB/s effective for a 16.2 GB
/// fp16 model load (baseline ≈ 8.8 s), per-huge-page setup cost (zeroing,
/// page-table work), and per-frame compaction cost (4 KB copy + kernel
/// overhead).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LoadCostModel {
    /// Effective storage streaming bandwidth, bytes/second.
    pub storage_bw: f64,
    /// Fixed cost per huge page allocated (seconds).
    pub per_huge_page: f64,
    /// Cost per 4 KB frame moved during compaction (seconds).
    pub per_frame_moved: f64,
    /// Fixed cost per 4 KB base page (baseline path), seconds.
    pub per_base_page: f64,
}

impl Default for LoadCostModel {
    fn default() -> Self {
        LoadCostModel {
            storage_bw: 1.85e9,
            per_huge_page: 170e-6,
            per_frame_moved: 4.5e-6,
            per_base_page: 0.12e-6,
        }
    }
}

impl LoadCostModel {
    /// Load time using huge pages, given the allocator outcome.
    pub fn huge_page_load_time(&self, model_bytes: u64, stats: &AllocStats) -> f64 {
        model_bytes as f64 / self.storage_bw
            + (stats.pages_direct + stats.pages_compacted) as f64 * self.per_huge_page
            + stats.frames_moved as f64 * self.per_frame_moved
    }

    /// Baseline load time with 4 KB pages only.
    pub fn base_page_load_time(&self, model_bytes: u64) -> f64 {
        let pages = model_bytes.div_ceil(1 << BASE_PAGE_BITS);
        model_bytes as f64 / self.storage_bw + pages as f64 * self.per_base_page
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_memory_is_unfragmented() {
        let pm = PhysicalMemory::new(64 << 20);
        assert_eq!(pm.free_bytes(), 64 << 20);
        assert_eq!(pm.fmfi(), 0.0);
        assert_eq!(pm.free_huge_blocks(), 32);
    }

    #[test]
    fn direct_huge_alloc_costs_nothing() {
        let mut pm = PhysicalMemory::new(16 << 20);
        let a = pm.alloc_huge().unwrap();
        assert_eq!(a.frames_moved, 0);
        assert_eq!(a.pa % (1 << HUGE_PAGE_BITS), 0);
        assert_eq!(pm.free_bytes(), 14 << 20);
        assert_eq!(pm.stats().pages_direct, 1);
    }

    #[test]
    fn fragmented_alloc_compacts() {
        let mut pm = PhysicalMemory::new(16 << 20);
        pm.fragment_to(8 << 20, 1.0);
        assert!(pm.fmfi() > 0.9, "fmfi = {}", pm.fmfi());
        let before_free = pm.free_bytes();
        let a = pm.alloc_huge().unwrap();
        assert!(a.frames_moved > 0, "must compact");
        assert_eq!(pm.free_bytes(), before_free - (2 << 20));
        assert_eq!(pm.stats().pages_compacted, 1);
    }

    #[test]
    fn fragment_to_hits_requested_state() {
        let mut pm = PhysicalMemory::new(256 << 20);
        for target in [0.0f64, 0.45, 0.75] {
            pm.fragment_to(128 << 20, target);
            assert_eq!(pm.free_bytes(), 128 << 20);
            assert!((pm.fmfi() - target).abs() < 0.05, "target {target}, got {}", pm.fmfi());
        }
    }

    #[test]
    fn oom_when_exhausted() {
        let mut pm = PhysicalMemory::new(4 << 20);
        pm.alloc_huge().unwrap();
        pm.alloc_huge().unwrap();
        assert!(matches!(pm.alloc_huge(), Err(FacilError::OutOfMemory { .. })));
    }

    #[test]
    fn free_then_realloc() {
        let mut pm = PhysicalMemory::new(4 << 20);
        let a = pm.alloc_huge().unwrap();
        pm.free_huge(a.pa);
        assert_eq!(pm.free_bytes(), 4 << 20);
        pm.alloc_huge().unwrap();
    }

    #[test]
    fn base_alloc_prefers_partial_blocks() {
        let mut pm = PhysicalMemory::new(8 << 20);
        pm.fragment_to(2 << 20, 0.3);
        let ready_before = pm.free_huge_blocks();
        let a = pm.alloc_base().unwrap();
        let b = pm.alloc_base().unwrap();
        assert_ne!(a, b);
        assert_eq!(pm.stats().base_pages, 2);
        assert_eq!(pm.free_huge_blocks(), ready_before, "base pages must not break huge blocks");
    }

    #[test]
    fn more_fragmentation_moves_more_frames() {
        let mut totals = Vec::new();
        for fmfi in [0.05f64, 0.45, 0.75] {
            let mut pm = PhysicalMemory::new(512 << 20);
            pm.fragment_to(256 << 20, fmfi);
            let mut moved = 0;
            for _ in 0..64 {
                moved += pm.alloc_huge().unwrap().frames_moved;
            }
            totals.push(moved);
        }
        assert!(totals[0] <= totals[1] && totals[1] <= totals[2], "{totals:?}");
        assert!(totals[2] > totals[0], "{totals:?}");
    }

    #[test]
    fn cost_model_monotone_in_compaction() {
        let m = LoadCostModel::default();
        let cheap = AllocStats { pages_direct: 100, ..Default::default() };
        let costly =
            AllocStats { pages_compacted: 100, frames_moved: 100 * 384, ..Default::default() };
        let t0 = m.huge_page_load_time(1 << 30, &cheap);
        let t1 = m.huge_page_load_time(1 << 30, &costly);
        assert!(t1 > t0);
        assert!(m.base_page_load_time(1 << 30) > 0.0);
    }

    #[test]
    fn allocation_never_double_allocates() {
        let mut pm = PhysicalMemory::new(32 << 20);
        pm.fragment_to(8 << 20, 0.6);
        let mut seen = std::collections::HashSet::new();
        while let Ok(a) = pm.alloc_huge() {
            assert!(seen.insert(a.pa), "huge page {:#x} handed out twice", a.pa);
        }
        // All free memory consumed down to < 2 MB.
        assert!(pm.free_bytes() < 2 << 20);
    }
}
