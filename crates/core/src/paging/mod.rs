//! OS paging support: PTEs carrying MapID, page table, TLB and the
//! fragmentation-aware physical-frame allocator.

pub mod mmap;
pub mod phys;
pub mod pte;
pub mod radix;
pub mod table;
pub mod tlb;

pub use mmap::{AddressSpace, MmapFlags};
pub use phys::{AllocStats, HugeAlloc, LoadCostModel, PhysicalMemory, FRAMES_PER_HUGE};
pub use pte::{Pte, BASE_PAGE_BITS, PA_BITS};
pub use radix::{RadixPageTable, WalkStats};
pub use table::{PageTable, Translation};
pub use tlb::{Tlb, TlbStats};
