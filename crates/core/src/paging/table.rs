//! A simple page table mapping virtual pages to [`Pte`]s, extended the FACIL
//! way: `mmap`-style installs can carry a MapID (paper Section V-A).

use std::collections::BTreeMap;

use crate::error::{FacilError, Result};
use crate::paging::pte::{Pte, BASE_PAGE_BITS, HUGE_PAGE_BITS};
use crate::select::MapId;

/// Result of a translation: physical address plus the MapID the memory
/// controller must apply (None = conventional mapping).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Translation {
    /// Translated physical address.
    pub pa: u64,
    /// Mapping the frontend must apply for this access.
    pub map_id: Option<MapId>,
    /// Whether a huge-page entry served the translation.
    pub huge: bool,
}

/// Single-level model of the OS page table (virtual page number → PTE).
///
/// Both 4 KB and 2 MB entries are supported; a 2 MB entry occupies one slot
/// keyed by its 2 MB-aligned virtual page number.
#[derive(Debug, Default, Clone)]
pub struct PageTable {
    base: BTreeMap<u64, Pte>,
    huge: BTreeMap<u64, Pte>,
}

impl PageTable {
    /// An empty page table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install a 4 KB mapping.
    ///
    /// # Panics
    ///
    /// Panics if `va` or `pa` is not 4 KB-aligned.
    pub fn map_base(&mut self, va: u64, pa: u64) {
        assert_eq!(va & ((1 << BASE_PAGE_BITS) - 1), 0);
        self.base.insert(va >> BASE_PAGE_BITS, Pte::base_page(pa));
    }

    /// Install a conventional 2 MB mapping.
    ///
    /// # Panics
    ///
    /// Panics if `va` or `pa` is not 2 MB-aligned.
    pub fn map_huge(&mut self, va: u64, pa: u64) {
        assert_eq!(va & ((1 << HUGE_PAGE_BITS) - 1), 0);
        self.huge.insert(va >> HUGE_PAGE_BITS, Pte::huge_page(pa));
    }

    /// Install a FACIL 2 MB mapping carrying `map_id` — the extended
    /// `mmap()` of paper Section V-A.
    ///
    /// # Panics
    ///
    /// Panics if `va` or `pa` is not 2 MB-aligned or `map_id >= 16`.
    pub fn map_huge_pim(&mut self, va: u64, pa: u64, map_id: MapId) {
        assert_eq!(va & ((1 << HUGE_PAGE_BITS) - 1), 0);
        self.huge.insert(va >> HUGE_PAGE_BITS, Pte::pim_huge_page(pa, map_id));
    }

    /// Remove any mapping covering `va`.
    pub fn unmap(&mut self, va: u64) {
        self.base.remove(&(va >> BASE_PAGE_BITS));
        self.huge.remove(&(va >> HUGE_PAGE_BITS));
    }

    /// Translate a virtual address. Huge entries take precedence (they
    /// cannot coexist with base entries for the same range in a real table).
    ///
    /// # Errors
    ///
    /// [`FacilError::NotMapped`] if no valid entry covers `va`.
    pub fn translate(&self, va: u64) -> Result<Translation> {
        if let Some(pte) = self.huge.get(&(va >> HUGE_PAGE_BITS)) {
            if pte.is_valid() {
                let offset = va & ((1 << HUGE_PAGE_BITS) - 1);
                return Ok(Translation { pa: pte.pa() + offset, map_id: pte.map_id(), huge: true });
            }
        }
        if let Some(pte) = self.base.get(&(va >> BASE_PAGE_BITS)) {
            if pte.is_valid() {
                let offset = va & ((1 << BASE_PAGE_BITS) - 1);
                return Ok(Translation { pa: pte.pa() + offset, map_id: None, huge: false });
            }
        }
        Err(FacilError::NotMapped { va })
    }

    /// Number of installed entries (base + huge).
    pub fn len(&self) -> usize {
        self.base.len() + self.huge.len()
    }

    /// True if no entries are installed.
    pub fn is_empty(&self) -> bool {
        self.base.is_empty() && self.huge.is_empty()
    }

    /// Iterate over the huge-page entries (va_base, pte).
    pub fn huge_entries(&self) -> impl Iterator<Item = (u64, Pte)> + '_ {
        self.huge.iter().map(|(vpn, pte)| (vpn << HUGE_PAGE_BITS, *pte))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_translation() {
        let mut pt = PageTable::new();
        pt.map_base(0x4000, 0x8000);
        let t = pt.translate(0x4123).unwrap();
        assert_eq!(t.pa, 0x8123);
        assert_eq!(t.map_id, None);
        assert!(!t.huge);
    }

    #[test]
    fn huge_pim_translation_carries_mapid() {
        let mut pt = PageTable::new();
        let va = 4 << HUGE_PAGE_BITS;
        let pa = 9 << HUGE_PAGE_BITS;
        pt.map_huge_pim(va, pa, MapId(3));
        let t = pt.translate(va + 0x12345).unwrap();
        assert_eq!(t.pa, pa + 0x12345);
        assert_eq!(t.map_id, Some(MapId(3)));
        assert!(t.huge);
    }

    #[test]
    fn unmapped_access_faults() {
        let pt = PageTable::new();
        assert_eq!(
            pt.translate(0xdead_beef).unwrap_err(),
            FacilError::NotMapped { va: 0xdead_beef }
        );
    }

    #[test]
    fn unmap_removes_entry() {
        let mut pt = PageTable::new();
        pt.map_huge(0, 0);
        assert!(!pt.is_empty());
        pt.unmap(0x100);
        assert!(pt.translate(0x100).is_err());
        assert!(pt.is_empty());
    }

    #[test]
    fn huge_entries_iterates() {
        let mut pt = PageTable::new();
        pt.map_huge_pim(0, 0, MapId(1));
        pt.map_huge(1 << HUGE_PAGE_BITS, 1 << HUGE_PAGE_BITS);
        let v: Vec<_> = pt.huge_entries().collect();
        assert_eq!(v.len(), 2);
        assert_eq!(pt.len(), 2);
    }
}
