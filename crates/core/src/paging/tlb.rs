//! A set-associative TLB model.
//!
//! The paper's point (Section V-A) is that FACIL needs **no TLB changes**:
//! the MapID rides in PTE bits that a huge-page TLB entry already has spare,
//! so a TLB entry caches (PFN, flags, MapID) exactly as it caches an
//! ordinary PTE. This model demonstrates that: entries store the whole
//! [`Pte`] and hit/miss behaviour is independent of whether a MapID is
//! present.

use crate::error::Result;
use crate::paging::pte::{Pte, BASE_PAGE_BITS, HUGE_PAGE_BITS};
use crate::paging::table::{PageTable, Translation};

/// TLB access statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TlbStats {
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed and walked the page table.
    pub misses: u64,
}

impl TlbStats {
    /// Hit rate over all lookups.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct TlbEntry {
    vpn: u64,
    huge: bool,
    pte: Pte,
    lru: u64,
}

/// Set-associative, LRU TLB supporting mixed 4 KB / 2 MB entries
/// (indexed by the 4 KB VPN; huge entries occupy one way like ARM/Intel
/// unified L2 TLBs).
#[derive(Debug)]
pub struct Tlb {
    sets: Vec<Vec<TlbEntry>>,
    ways: usize,
    tick: u64,
    stats: TlbStats,
}

impl Tlb {
    /// Create a TLB with `sets` sets of `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or either dimension is zero.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets > 0 && sets.is_power_of_two() && ways > 0);
        Tlb { sets: vec![Vec::new(); sets], ways, tick: 0, stats: TlbStats::default() }
    }

    fn index(&self, vpn: u64) -> usize {
        (vpn as usize) & (self.sets.len() - 1)
    }

    /// Translate `va`, filling from `table` on miss.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::error::FacilError::NotMapped`] from the table walk.
    pub fn translate(&mut self, va: u64, table: &PageTable) -> Result<Translation> {
        self.tick += 1;
        let base_vpn = va >> BASE_PAGE_BITS;
        let huge_vpn = va >> HUGE_PAGE_BITS;
        // Look in the set indexed by the base VPN and the set indexed by
        // the huge VPN (entries self-identify their size).
        for idx in [self.index(base_vpn), self.index(huge_vpn)] {
            let tick = self.tick;
            if let Some(e) = self.sets[idx].iter_mut().find(|e| {
                if e.huge {
                    e.vpn == huge_vpn
                } else {
                    e.vpn == base_vpn
                }
            }) {
                e.lru = tick;
                self.stats.hits += 1;
                let offset_bits = if e.huge { HUGE_PAGE_BITS } else { BASE_PAGE_BITS };
                let offset = va & ((1u64 << offset_bits) - 1);
                return Ok(Translation {
                    pa: e.pte.pa() + offset,
                    map_id: e.pte.map_id(),
                    huge: e.huge,
                });
            }
        }
        // Miss: walk, then fill.
        self.stats.misses += 1;
        let t = table.translate(va)?;
        let (vpn, huge, pte) = if t.huge {
            (huge_vpn, true, Pte::pim_or_plain(t.pa & !((1 << HUGE_PAGE_BITS) - 1), t.map_id))
        } else {
            (base_vpn, false, Pte::base_page(t.pa & !((1 << BASE_PAGE_BITS) - 1)))
        };
        let idx = self.index(vpn);
        let tick = self.tick;
        let set = &mut self.sets[idx];
        if set.len() >= self.ways {
            // Evict LRU. `ways >= 1`, so a full set is nonempty.
            #[allow(clippy::expect_used)]
            let victim = set
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.lru)
                .map(|(i, _)| i)
                .expect("nonempty set");
            set.swap_remove(victim);
        }
        set.push(TlbEntry { vpn, huge, pte, lru: tick });
        Ok(t)
    }

    /// Flush all entries.
    pub fn flush(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
    }

    /// Access statistics.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }
}

impl Pte {
    /// Helper for TLB fills: huge PTE with or without a MapID.
    fn pim_or_plain(pa: u64, map_id: Option<crate::select::MapId>) -> Pte {
        match map_id {
            Some(id) => Pte::pim_huge_page(pa, id),
            None => Pte::huge_page(pa),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::MapId;

    #[test]
    fn hit_after_fill() {
        let mut pt = PageTable::new();
        pt.map_huge_pim(0, 0, MapId(2));
        let mut tlb = Tlb::new(16, 4);
        let a = tlb.translate(0x1234, &pt).unwrap();
        let b = tlb.translate(0x5678, &pt).unwrap();
        assert_eq!(a.map_id, Some(MapId(2)));
        assert_eq!(b.map_id, Some(MapId(2)), "TLB-served translation keeps the MapID");
        assert_eq!(tlb.stats().hits, 1);
        assert_eq!(tlb.stats().misses, 1);
    }

    #[test]
    fn one_huge_entry_covers_whole_page() {
        let mut pt = PageTable::new();
        pt.map_huge(0, 0);
        let mut tlb = Tlb::new(16, 4);
        for i in 0..512u64 {
            tlb.translate(i << BASE_PAGE_BITS, &pt).unwrap();
        }
        assert_eq!(tlb.stats().misses, 1, "a single 2MB entry serves all 512 4KB offsets");
        assert!((tlb.stats().hit_rate() - 511.0 / 512.0).abs() < 1e-12);
    }

    #[test]
    fn lru_eviction() {
        let mut pt = PageTable::new();
        for i in 0..3u64 {
            pt.map_base(i << BASE_PAGE_BITS, i << BASE_PAGE_BITS);
        }
        // 1 set, 2 ways: third page evicts the least-recent.
        let mut tlb = Tlb::new(1, 2);
        tlb.translate(0, &pt).unwrap(); // miss, fill 0
        tlb.translate(1 << 12, &pt).unwrap(); // miss, fill 1
        tlb.translate(0, &pt).unwrap(); // hit 0
        tlb.translate(2 << 12, &pt).unwrap(); // miss, evict 1
        tlb.translate(1 << 12, &pt).unwrap(); // miss again
        assert_eq!(tlb.stats().hits, 1);
        assert_eq!(tlb.stats().misses, 4);
    }

    #[test]
    fn flush_clears() {
        let mut pt = PageTable::new();
        pt.map_base(0, 0);
        let mut tlb = Tlb::new(2, 2);
        tlb.translate(0, &pt).unwrap();
        tlb.flush();
        tlb.translate(0, &pt).unwrap();
        assert_eq!(tlb.stats().misses, 2);
    }

    #[test]
    fn miss_on_unmapped_propagates() {
        let pt = PageTable::new();
        let mut tlb = Tlb::new(2, 2);
        assert!(tlb.translate(0x9999, &pt).is_err());
    }
}
