//! Four-level radix page table (x86-64-style) with FACIL's MapID-carrying
//! huge-page entries.
//!
//! The flat [`super::table::PageTable`] is the fast functional model; this
//! module is the structural one: table pages are real 512-entry frames, a
//! translation walks PML4 → PDPT → PD (→ PT), huge pages terminate at the
//! PD level with the PS bit set, and — the FACIL point — the MapID rides in
//! the huge-page PDE's unused bits, so the table layout, size and walk
//! depth are *identical* to an unmodified OS (asserted by tests).

use std::collections::HashMap;

use crate::error::{FacilError, Result};
use crate::paging::pte::{Pte, BASE_PAGE_BITS, HUGE_PAGE_BITS};
use crate::paging::table::Translation;
use crate::select::MapId;

const LEVEL_BITS: u32 = 9;
const ENTRIES: usize = 1 << LEVEL_BITS;
/// Marks a slot as a leaf PTE (bit 62: above the 48-bit PA, below NX-style
/// bits — mirrors how real tables distinguish PS/leaf entries per level).
const LEAF: u64 = 1 << 62;

/// Index of the page-table level an entry lives at (4 = PML4 … 1 = PT).
fn level_index(va: u64, level: u32) -> usize {
    let shift = BASE_PAGE_BITS + LEVEL_BITS * (level - 1);
    ((va >> shift) & ((1 << LEVEL_BITS) - 1)) as usize
}

/// Statistics of one translation walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkStats {
    /// Table levels touched (memory accesses a hardware walker would make).
    pub levels: u32,
    /// Whether the walk ended at a huge-page entry.
    pub huge: bool,
}

/// A structural 4-level page table. Table pages are tracked as simulated
/// frames so the model-table memory overhead is measurable.
#[derive(Debug, Default)]
pub struct RadixPageTable {
    /// Table frames by id; each holds 512 raw entries. Entry values are
    /// either leaf [`Pte`] bits or `(frame_id << 12) | 1` pointers.
    frames: HashMap<u64, Box<[u64; ENTRIES]>>,
    next_frame: u64,
    root: u64,
}

impl RadixPageTable {
    /// An empty table (one root frame).
    pub fn new() -> Self {
        let mut t = RadixPageTable { frames: HashMap::new(), next_frame: 1, root: 0 };
        t.frames.insert(0, Box::new([0u64; ENTRIES]));
        t
    }

    /// Number of table frames (4 KB pages of table memory) in use.
    pub fn table_frames(&self) -> usize {
        self.frames.len()
    }

    fn alloc_frame(&mut self) -> u64 {
        let id = self.next_frame;
        self.next_frame += 1;
        self.frames.insert(id, Box::new([0u64; ENTRIES]));
        id
    }

    /// Walk down to `target_level`, allocating interior frames as needed,
    /// and return the frame id holding the entry for `va` at that level.
    fn descend_mut(&mut self, va: u64, target_level: u32) -> u64 {
        let mut frame = self.root;
        let mut level = 4;
        while level > target_level {
            let idx = level_index(va, level);
            let slot = self.frames[&frame][idx];
            let next = if slot & 1 == 1 && slot & LEAF == 0 {
                slot >> BASE_PAGE_BITS
            } else {
                assert_eq!(slot, 0, "remapping over an existing leaf at level {level}");
                let id = self.alloc_frame();
                // `frame` came from the walk above, so its table exists.
                #[allow(clippy::expect_used)]
                let table = self.frames.get_mut(&frame).expect("frame exists");
                table[idx] = (id << BASE_PAGE_BITS) | 1;
                id
            };
            frame = next;
            level -= 1;
        }
        frame
    }

    /// Install a 4 KB leaf.
    ///
    /// # Panics
    ///
    /// Panics if `va`/`pa` are unaligned or the slot holds a conflicting
    /// mapping.
    pub fn map_base(&mut self, va: u64, pa: u64) {
        assert_eq!(va & ((1 << BASE_PAGE_BITS) - 1), 0);
        let frame = self.descend_mut(va, 1);
        let idx = level_index(va, 1);
        let entry = Pte::base_page(pa).bits() | LEAF;
        // `descend_mut` just returned this frame id, so its table exists.
        #[allow(clippy::expect_used)]
        let table = self.frames.get_mut(&frame).expect("frame exists");
        table[idx] = entry;
    }

    /// Install a 2 MB huge-page leaf at the PD level, optionally carrying a
    /// MapID (the FACIL extension; paper Fig. 11).
    ///
    /// # Panics
    ///
    /// Panics on misalignment or conflicting mappings.
    pub fn map_huge(&mut self, va: u64, pa: u64, map_id: Option<MapId>) {
        assert_eq!(va & ((1 << HUGE_PAGE_BITS) - 1), 0);
        let frame = self.descend_mut(va, 2);
        let idx = level_index(va, 2);
        let pte = match map_id {
            Some(id) => Pte::pim_huge_page(pa, id),
            None => Pte::huge_page(pa),
        };
        // `descend_mut` just returned this frame id, so its table exists.
        #[allow(clippy::expect_used)]
        let table = self.frames.get_mut(&frame).expect("frame exists");
        table[idx] = pte.bits() | LEAF;
    }

    /// Remove the mapping covering `va` (leaf only; interior frames are
    /// kept, as real kernels usually do).
    pub fn unmap(&mut self, va: u64) {
        let mut frame = self.root;
        let mut level = 4;
        loop {
            let idx = level_index(va, level);
            let slot = self.frames[&frame][idx];
            if slot & 1 == 1 && slot & LEAF == 0 {
                frame = slot >> BASE_PAGE_BITS;
                level -= 1;
                continue;
            }
            if slot & LEAF != 0 {
                // The walk reached this frame through a live entry.
                #[allow(clippy::expect_used)]
                let table = self.frames.get_mut(&frame).expect("frame exists");
                table[idx] = 0;
            }
            return;
        }
    }

    /// Translate `va`, returning the translation and the walk statistics.
    ///
    /// # Errors
    ///
    /// [`FacilError::NotMapped`] when no leaf covers `va`.
    pub fn translate(&self, va: u64) -> Result<(Translation, WalkStats)> {
        let mut frame = self.root;
        let mut level = 4u32;
        let mut touched = 0;
        loop {
            touched += 1;
            let idx = level_index(va, level);
            let slot = self.frames[&frame][idx];
            if slot & LEAF != 0 {
                // Leaf.
                let pte = Pte::from_bits(slot & !LEAF);
                let huge = pte.is_huge();
                if huge && level != 2 {
                    return Err(FacilError::NotMapped { va });
                }
                let offset_bits = if huge { HUGE_PAGE_BITS } else { BASE_PAGE_BITS };
                let offset = va & ((1u64 << offset_bits) - 1);
                return Ok((
                    Translation { pa: pte.pa() + offset, map_id: pte.map_id(), huge },
                    WalkStats { levels: touched, huge },
                ));
            }
            if slot & 1 == 1 && level > 1 {
                frame = slot >> BASE_PAGE_BITS;
                level -= 1;
                continue;
            }
            return Err(FacilError::NotMapped { va });
        }
    }
}

impl Pte {
    /// Reconstruct a PTE from raw bits (structural-table storage).
    pub fn from_bits(bits: u64) -> Pte {
        Pte::from_raw(bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_page_walks_four_levels() {
        let mut t = RadixPageTable::new();
        t.map_base(0x7f12_3456_7000, 0x8_8000_1000);
        let (tr, w) = t.translate(0x7f12_3456_7abc).unwrap();
        assert_eq!(tr.pa, 0x8_8000_1abc);
        assert_eq!(tr.map_id, None);
        assert_eq!(w.levels, 4);
        assert!(!w.huge);
        // PML4 + PDPT + PD + PT = 4 frames.
        assert_eq!(t.table_frames(), 4);
    }

    #[test]
    fn huge_page_walks_three_levels_and_keeps_mapid() {
        let mut t = RadixPageTable::new();
        let va = 0x40_0000_0000u64;
        t.map_huge(va, 0x2_0000_0000, Some(MapId(5)));
        let (tr, w) = t.translate(va + 0x12_3456).unwrap();
        assert_eq!(tr.pa, 0x2_0012_3456);
        assert_eq!(tr.map_id, Some(MapId(5)));
        assert!(tr.huge);
        assert_eq!(w.levels, 3, "huge pages shorten the walk by one level");
        // PML4 + PDPT + PD only.
        assert_eq!(t.table_frames(), 3);
    }

    #[test]
    fn mapid_adds_zero_table_memory() {
        // The FACIL claim: a table full of MapID-carrying entries is the
        // same size as one without.
        let mut plain = RadixPageTable::new();
        let mut facil = RadixPageTable::new();
        for i in 0..512u64 {
            plain.map_huge(i << HUGE_PAGE_BITS, i << HUGE_PAGE_BITS, None);
            facil.map_huge(i << HUGE_PAGE_BITS, i << HUGE_PAGE_BITS, Some(MapId((i % 16) as u8)));
        }
        assert_eq!(plain.table_frames(), facil.table_frames());
    }

    #[test]
    fn unmap_then_fault() {
        let mut t = RadixPageTable::new();
        t.map_huge(0, 0, Some(MapId(1)));
        assert!(t.translate(0x100).is_ok());
        t.unmap(0x100);
        assert!(matches!(t.translate(0x100), Err(FacilError::NotMapped { .. })));
        // Remap works after unmap.
        t.map_huge(0, 1 << HUGE_PAGE_BITS, None);
        assert_eq!(t.translate(0).unwrap().0.pa, 1 << HUGE_PAGE_BITS);
    }

    #[test]
    fn dense_and_sparse_regions_coexist() {
        let mut t = RadixPageTable::new();
        // A dense 4 KB run and a far-away huge page.
        for i in 0..64u64 {
            t.map_base(0x1000_0000 + (i << 12), 0x2000_0000 + (i << 12));
        }
        t.map_huge(0x7fff_ffe0_0000, 0x3_0000_0000, Some(MapId(2)));
        for i in 0..64u64 {
            let (tr, _) = t.translate(0x1000_0000 + (i << 12) + 5).unwrap();
            assert_eq!(tr.pa, 0x2000_0000 + (i << 12) + 5);
        }
        let (tr, _) = t.translate(0x7fff_ffe0_1234).unwrap();
        assert_eq!(tr.map_id, Some(MapId(2)));
    }

    #[test]
    fn agrees_with_flat_table() {
        use crate::paging::table::PageTable;
        let mut flat = PageTable::new();
        let mut radix = RadixPageTable::new();
        let cases =
            [(0u64, 0u64, Some(MapId(1))), (4 << HUGE_PAGE_BITS, 8 << HUGE_PAGE_BITS, None)];
        for (va, pa, id) in cases {
            match id {
                Some(id) => {
                    flat.map_huge_pim(va, pa, id);
                    radix.map_huge(va, pa, Some(id));
                }
                None => {
                    flat.map_huge(va, pa);
                    radix.map_huge(va, pa, None);
                }
            }
        }
        for (va, _, _) in cases {
            for off in [0u64, 0x1234, 0x1F_FFFF] {
                assert_eq!(flat.translate(va + off).unwrap(), radix.translate(va + off).unwrap().0);
            }
        }
    }
}
