//! Page-table-entry encoding with MapID in the unused bits (paper Fig. 11).
//!
//! With 4 KB base pages and 2 MB huge pages, a huge-page PTE needs 9 fewer
//! PFN bits (21 − 12); FACIL repurposes four of those otherwise-unused bits
//! to store the MapID, so no PTE (or TLB entry) grows.

use serde::{Deserialize, Serialize};

use crate::select::MapId;

/// Physical-address width modelled (x86-64-style 48-bit).
pub const PA_BITS: u32 = 48;
/// Base page size: 4 KB.
pub const BASE_PAGE_BITS: u32 = 12;
/// Huge page size: 2 MB.
pub const HUGE_PAGE_BITS: u32 = 21;

const VALID_BIT: u64 = 1 << 0;
const HUGE_BIT: u64 = 1 << 1;
const WRITABLE_BIT: u64 = 1 << 2;
const PIM_BIT: u64 = 1 << 3; // MapID field is meaningful
/// MapID lives in bits [12..16) — unused by a huge-page PFN, which only
/// needs bits [21..48).
const MAPID_SHIFT: u32 = BASE_PAGE_BITS;
const MAPID_MASK: u64 = 0xF << MAPID_SHIFT;
const PFN_MASK: u64 = ((1 << PA_BITS) - 1) & !((1 << BASE_PAGE_BITS) - 1);

/// A 64-bit page table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Pte(u64);

impl Pte {
    /// An invalid (not-present) entry.
    pub fn invalid() -> Self {
        Pte(0)
    }

    /// A conventional 4 KB mapping to physical address `pa` (must be
    /// base-page aligned).
    ///
    /// # Panics
    ///
    /// Panics if `pa` is not 4 KB-aligned or exceeds the PA width.
    pub fn base_page(pa: u64) -> Self {
        assert_eq!(pa & ((1 << BASE_PAGE_BITS) - 1), 0, "pa must be 4 KB aligned");
        assert!(pa < (1 << PA_BITS));
        Pte(pa | VALID_BIT | WRITABLE_BIT)
    }

    /// A conventional 2 MB huge-page mapping.
    ///
    /// # Panics
    ///
    /// Panics if `pa` is not 2 MB-aligned.
    pub fn huge_page(pa: u64) -> Self {
        assert_eq!(pa & ((1 << HUGE_PAGE_BITS) - 1), 0, "pa must be 2 MB aligned");
        assert!(pa < (1 << PA_BITS));
        Pte(pa | VALID_BIT | HUGE_BIT | WRITABLE_BIT)
    }

    /// A FACIL huge-page mapping carrying a MapID (paper Fig. 11, "PIM PTE").
    ///
    /// # Panics
    ///
    /// Panics if `pa` is unaligned or the MapID does not fit in 4 bits.
    pub fn pim_huge_page(pa: u64, map_id: MapId) -> Self {
        assert!(map_id.0 < 16, "MapID must fit in 4 PTE bits (paper Section V-A)");
        let base = Self::huge_page(pa).0;
        Pte(base | PIM_BIT | (u64::from(map_id.0) << MAPID_SHIFT))
    }

    /// Entry present?
    pub fn is_valid(self) -> bool {
        self.0 & VALID_BIT != 0
    }

    /// 2 MB page?
    pub fn is_huge(self) -> bool {
        self.0 & HUGE_BIT != 0
    }

    /// Physical frame base address.
    pub fn pa(self) -> u64 {
        if self.is_huge() {
            self.0 & PFN_MASK & !((1 << HUGE_PAGE_BITS) - 1)
        } else {
            self.0 & PFN_MASK
        }
    }

    /// MapID, if this is a PIM mapping.
    pub fn map_id(self) -> Option<MapId> {
        if self.0 & PIM_BIT != 0 {
            Some(MapId(((self.0 & MAPID_MASK) >> MAPID_SHIFT) as u8))
        } else {
            None
        }
    }

    /// Raw 64-bit representation.
    pub fn bits(self) -> u64 {
        self.0
    }

    /// Reconstruct from raw bits (structural page-table storage).
    pub(crate) fn from_raw(bits: u64) -> Pte {
        Pte(bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_unused_bits_fit_mapid() {
        // Paper Section V-A: 21 - 12 = 9 unused bits; 4 suffice for 14 maps.
        assert_eq!(HUGE_PAGE_BITS - BASE_PAGE_BITS, 9);
        const { assert!(MAPID_MASK.count_ones() == 4) };
        // MapID bits sit strictly below the huge PFN and above base-page flags.
        assert_eq!(MAPID_MASK & !((1 << HUGE_PAGE_BITS) - 1), 0);
        const { assert!(MAPID_SHIFT >= BASE_PAGE_BITS) };
    }

    #[test]
    fn pim_pte_roundtrip() {
        let pa = 0x1234 << HUGE_PAGE_BITS;
        for id in 0..16u8 {
            let pte = Pte::pim_huge_page(pa, MapId(id));
            assert!(pte.is_valid() && pte.is_huge());
            assert_eq!(pte.pa(), pa);
            assert_eq!(pte.map_id(), Some(MapId(id)));
        }
    }

    #[test]
    fn conventional_ptes_have_no_mapid() {
        let huge = Pte::huge_page(0x40 << HUGE_PAGE_BITS);
        assert_eq!(huge.map_id(), None);
        let base = Pte::base_page(0x1000);
        assert_eq!(base.map_id(), None);
        assert!(!base.is_huge());
        assert_eq!(base.pa(), 0x1000);
    }

    #[test]
    fn invalid_pte() {
        assert!(!Pte::invalid().is_valid());
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn misaligned_huge_pa_panics() {
        Pte::huge_page(0x1000);
    }

    #[test]
    #[should_panic(expected = "4 PTE bits")]
    fn oversized_mapid_panics() {
        Pte::pim_huge_page(0, MapId(16));
    }

    #[test]
    fn mapid_does_not_corrupt_pfn() {
        let pa = 0xABCD << HUGE_PAGE_BITS;
        let pte = Pte::pim_huge_page(pa, MapId(15));
        assert_eq!(pte.pa(), pa);
        assert_eq!(pte.bits() & PFN_MASK & !((1 << HUGE_PAGE_BITS) - 1), pa);
    }
}
