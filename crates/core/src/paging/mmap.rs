//! The extended `mmap()` interface (paper Section V-A): an address space
//! that hands out virtual regions backed by 4 KB or 2 MB pages, where huge
//! mappings may carry a MapID — exactly the one-argument extension the
//! paper adds to `mmap`.
//!
//! This is the standalone OS-layer model built on the structural
//! [`RadixPageTable`]; [`crate::pimalloc::FacilSystem`] is the
//! whole-system fast path. Their translation semantics agree (tested).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::error::{FacilError, Result};
use crate::paging::phys::PhysicalMemory;
use crate::paging::pte::{BASE_PAGE_BITS, HUGE_PAGE_BITS};
use crate::paging::radix::RadixPageTable;
use crate::paging::table::Translation;
use crate::select::MapId;

/// Flags of one `mmap` call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MmapFlags {
    /// Use 2 MB huge pages (`MAP_HUGETLB`).
    pub huge: bool,
    /// FACIL extension: the PA-to-DA mapping the region's pages must use.
    /// Requires `huge` (the MapID remaps page-offset bits that only a huge
    /// page has).
    pub map_id: Option<MapId>,
}

#[derive(Debug, Clone, Copy)]
struct Region {
    len: u64,
    flags: MmapFlags,
}

/// A process address space with FACIL-extended `mmap`.
#[derive(Debug)]
pub struct AddressSpace {
    table: RadixPageTable,
    phys: PhysicalMemory,
    regions: BTreeMap<u64, Region>,
    next_va: u64,
}

/// mmap region base (kept away from 0).
const MMAP_BASE: u64 = 0x20_0000_0000;

impl AddressSpace {
    /// Create an address space over `phys_bytes` of physical memory.
    ///
    /// # Panics
    ///
    /// Panics if `phys_bytes` is not a multiple of 2 MB.
    pub fn new(phys_bytes: u64) -> Self {
        AddressSpace {
            table: RadixPageTable::new(),
            phys: PhysicalMemory::new(phys_bytes),
            regions: BTreeMap::new(),
            next_va: MMAP_BASE,
        }
    }

    /// Map `len` bytes (rounded up to the page granularity of `flags`).
    ///
    /// # Errors
    ///
    /// * [`FacilError::InvalidRequest`] for zero length or `map_id` without
    ///   `huge`;
    /// * [`FacilError::OutOfMemory`] when physical frames run out (already
    ///   installed pages are rolled back).
    pub fn mmap(&mut self, len: u64, flags: MmapFlags) -> Result<u64> {
        if len == 0 {
            return Err(FacilError::InvalidRequest("zero-length mmap".into()));
        }
        if flags.map_id.is_some() && !flags.huge {
            return Err(FacilError::InvalidRequest(
                "MapID requires MAP_HUGETLB: the PIM mapping permutes huge-page offset bits".into(),
            ));
        }
        let page_bits = if flags.huge { HUGE_PAGE_BITS } else { BASE_PAGE_BITS };
        let page = 1u64 << page_bits;
        let pages = len.div_ceil(page);
        // Align the base to the page size.
        let va = (self.next_va + page - 1) & !(page - 1);
        let mut mapped = Vec::new();
        for i in 0..pages {
            let page_va = va + i * page;
            let res = if flags.huge {
                self.phys.alloc_huge().map(|h| {
                    self.table.map_huge(page_va, h.pa, flags.map_id);
                    h.pa
                })
            } else {
                self.phys.alloc_base().inspect(|pa| {
                    self.table.map_base(page_va, *pa);
                })
            };
            match res {
                Ok(pa) => mapped.push((page_va, pa)),
                Err(e) => {
                    for (v, pa) in mapped {
                        self.table.unmap(v);
                        if flags.huge {
                            self.phys.free_huge(pa);
                        }
                        // 4 KB frames are leaked on rollback in this model
                        // (PhysicalMemory exposes only huge-page free), which
                        // only matters for the error path of tiny tests.
                    }
                    return Err(e);
                }
            }
        }
        self.next_va = va + pages * page;
        self.regions.insert(va, Region { len: pages * page, flags });
        Ok(va)
    }

    /// Unmap the region starting exactly at `va`.
    ///
    /// # Errors
    ///
    /// [`FacilError::NotMapped`] if `va` is not a region base.
    pub fn munmap(&mut self, va: u64) -> Result<()> {
        let region = self.regions.remove(&va).ok_or(FacilError::NotMapped { va })?;
        let page_bits = if region.flags.huge { HUGE_PAGE_BITS } else { BASE_PAGE_BITS };
        let page = 1u64 << page_bits;
        for i in 0..region.len / page {
            let page_va = va + i * page;
            if region.flags.huge {
                let t = self.table.translate(page_va)?.0;
                self.phys.free_huge(t.pa & !(page - 1));
            }
            self.table.unmap(page_va);
        }
        Ok(())
    }

    /// Translate a virtual address (page walk).
    ///
    /// # Errors
    ///
    /// [`FacilError::NotMapped`] for unmapped addresses.
    pub fn translate(&self, va: u64) -> Result<Translation> {
        Ok(self.table.translate(va)?.0)
    }

    /// The underlying structural page table.
    pub fn page_table(&self) -> &RadixPageTable {
        &self.table
    }

    /// Free physical bytes.
    pub fn free_bytes(&self) -> u64 {
        self.phys.free_bytes()
    }

    /// Number of live regions.
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_mmap_roundtrip() {
        let mut a = AddressSpace::new(16 << 20);
        let va = a.mmap(10_000, MmapFlags::default()).unwrap();
        assert_eq!(va % 4096, 0);
        // 3 pages of 4 KB.
        let t0 = a.translate(va).unwrap();
        let t2 = a.translate(va + 8192 + 5).unwrap();
        assert!(!t0.huge);
        assert_ne!(t0.pa, t2.pa);
        assert_eq!(t2.pa % 4096, 5);
    }

    #[test]
    fn pim_mmap_carries_mapid() {
        let mut a = AddressSpace::new(16 << 20);
        let va = a.mmap(3 << 20, MmapFlags { huge: true, map_id: Some(MapId(2)) }).unwrap();
        assert_eq!(va % (2 << 20), 0);
        for off in [0u64, 1 << 20, (2 << 20) + 7] {
            let t = a.translate(va + off).unwrap();
            assert!(t.huge);
            assert_eq!(t.map_id, Some(MapId(2)));
        }
    }

    #[test]
    fn mapid_without_huge_is_rejected() {
        let mut a = AddressSpace::new(4 << 20);
        let err = a.mmap(4096, MmapFlags { huge: false, map_id: Some(MapId(1)) }).unwrap_err();
        assert!(matches!(err, FacilError::InvalidRequest(_)));
    }

    #[test]
    fn munmap_frees_huge_frames() {
        let mut a = AddressSpace::new(8 << 20);
        let before = a.free_bytes();
        let va = a.mmap(4 << 20, MmapFlags { huge: true, map_id: None }).unwrap();
        assert_eq!(a.free_bytes(), before - (4 << 20));
        a.munmap(va).unwrap();
        assert_eq!(a.free_bytes(), before);
        assert!(a.translate(va).is_err());
        assert_eq!(a.region_count(), 0);
    }

    #[test]
    fn oom_rolls_back_huge_mmap() {
        let mut a = AddressSpace::new(4 << 20);
        let err = a.mmap(8 << 20, MmapFlags { huge: true, map_id: None }).unwrap_err();
        assert!(matches!(err, FacilError::OutOfMemory { .. }));
        assert_eq!(a.free_bytes(), 4 << 20, "rolled back");
        assert_eq!(a.region_count(), 0);
    }

    #[test]
    fn zero_length_rejected_and_unknown_munmap_faults() {
        let mut a = AddressSpace::new(4 << 20);
        assert!(a.mmap(0, MmapFlags::default()).is_err());
        assert!(matches!(a.munmap(0x123), Err(FacilError::NotMapped { .. })));
    }

    #[test]
    fn regions_do_not_overlap() {
        let mut a = AddressSpace::new(32 << 20);
        let v1 = a.mmap(3 << 20, MmapFlags { huge: true, map_id: Some(MapId(1)) }).unwrap();
        let v2 = a.mmap(5000, MmapFlags::default()).unwrap();
        let v3 = a.mmap(2 << 20, MmapFlags { huge: true, map_id: None }).unwrap();
        assert!(v1 + (4 << 20) <= v2 || v2 + 8192 <= v1);
        assert!(v2 + 8192 <= v3);
        assert_eq!(a.region_count(), 3);
    }
}
