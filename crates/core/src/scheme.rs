//! The PA-to-DA mapping formulation (paper Section IV-B, Fig. 8).
//!
//! A [`MappingScheme`] assigns every physical-address bit to one DRAM
//! address field. It is an ordered list of bit segments from the PA LSB to
//! the MSB; since every PA bit feeds exactly one DA field bit, each scheme
//! is a *permutation* of the physical address — bijective by construction
//! (and property-tested).
//!
//! Two families are provided:
//!
//! * [`MappingScheme::conventional`] — the SoC default
//!   `row:rank:column:bank:channel` (MSB→LSB) mapping the paper assumes for
//!   non-PIM data (Section VI-A), which achieves near-peak sequential
//!   bandwidth;
//! * [`MappingScheme::pim_optimized`] — the FACIL PIM-optimized family
//!   parameterized by **MapID**: chunk-column bits first, then `MapID` DRAM
//!   row bits, then the chunk-row bits (HBM-PIM only), then the
//!   *PU-changing* bits (bank, rank, channel), then the remaining row bits.
//!   Only page-offset bits are permuted; bits above the huge-page offset
//!   keep the conventional assignment, so the OS can mix mapped and normal
//!   pages freely.

use facil_dram::{AddressMapper, DramAddress, MapFault, Topology};
use serde::{Deserialize, Serialize};

use crate::arch::PimArch;
use crate::error::{FacilError, Result};

/// Default huge-page size assumed throughout the paper: 2 MB.
pub const HUGE_PAGE_BITS: u32 = 21;
/// Default huge-page size in bytes.
pub const HUGE_PAGE_BYTES: u64 = 1 << HUGE_PAGE_BITS;

/// DRAM address field a PA bit segment feeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Field {
    /// Byte offset within one transfer (never remapped).
    Tx,
    /// Column (transfer index within a row).
    Column,
    /// Row.
    Row,
    /// Bank (flat within rank; bank-group bits are the high bits).
    Bank,
    /// Rank.
    Rank,
    /// Channel.
    Channel,
}

impl std::fmt::Display for Field {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Field::Tx => "tx",
            Field::Column => "col",
            Field::Row => "row",
            Field::Bank => "ba",
            Field::Rank => "rk",
            Field::Channel => "ch",
        };
        write!(f, "{s}")
    }
}

/// A run of consecutive PA bits feeding one field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Segment {
    /// Target field.
    pub field: Field,
    /// Number of bits.
    pub width: u32,
}

/// A complete PA-to-DA mapping: a permutation of physical-address bits into
/// DRAM address fields, optionally followed by an XOR bank hash.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MappingScheme {
    topo: Topology,
    /// Segments from PA LSB to MSB. Field widths sum to the topology bits.
    segments: Vec<Segment>,
    /// XOR the bank index with the low row bits (real memory controllers
    /// hash banks this way to spread pathological strides; DRAMA-style).
    /// XOR with a bijection of independent bits keeps the whole mapping a
    /// bijection, so FACIL composes with hashed controllers unchanged.
    bank_xor_row: bool,
    /// Human-readable label ("conventional", "AiM MapID=2", …).
    label: String,
}

impl MappingScheme {
    /// Build a scheme from explicit segments, validating that it is a
    /// permutation covering the whole topology.
    ///
    /// # Errors
    ///
    /// Returns [`FacilError::InvalidMapping`] if per-field widths do not
    /// match the topology exactly.
    pub fn from_segments(
        topo: Topology,
        segments: Vec<Segment>,
        label: impl Into<String>,
    ) -> Result<Self> {
        let mut widths = [0u32; 6];
        let idx = |f: Field| match f {
            Field::Tx => 0,
            Field::Column => 1,
            Field::Row => 2,
            Field::Bank => 3,
            Field::Rank => 4,
            Field::Channel => 5,
        };
        for s in &segments {
            widths[idx(s.field)] += s.width;
        }
        let expect = [
            (Field::Tx, topo.tx_bits()),
            (Field::Column, topo.column_bits()),
            (Field::Row, topo.row_bits()),
            (Field::Bank, topo.bank_bits()),
            (Field::Rank, topo.rank_bits()),
            (Field::Channel, topo.channel_bits()),
        ];
        for (f, want) in expect {
            let got = widths[idx(f)];
            if got != want {
                return Err(FacilError::InvalidMapping(format!(
                    "field {f} covers {got} bits, topology needs {want}"
                )));
            }
        }
        let segments = segments.into_iter().filter(|s| s.width > 0).collect();
        Ok(MappingScheme { topo, segments, bank_xor_row: false, label: label.into() })
    }

    /// The conventional SoC mapping `row:rank:column:bank:channel`
    /// (MSB→LSB), i.e. channel bits directly above the transfer offset
    /// (paper Section VI-A). Verified by the DRAM simulator to achieve
    /// near-peak sequential read bandwidth.
    ///
    /// ```
    /// use facil_core::MappingScheme;
    /// use facil_dram::Topology;
    ///
    /// let topo = Topology::new(4, 2, 4, 4, 16384, 2048, 32);
    /// let conv = MappingScheme::conventional(topo);
    /// // Consecutive transfers interleave channels.
    /// assert_eq!(conv.map_pa(0).channel, 0);
    /// assert_eq!(conv.map_pa(32).channel, 1);
    /// // And the mapping is invertible.
    /// assert_eq!(conv.unmap(conv.map_pa(123 * 32)), 123 * 32);
    /// ```
    pub fn conventional(topo: Topology) -> Self {
        let segments = vec![
            Segment { field: Field::Tx, width: topo.tx_bits() },
            Segment { field: Field::Channel, width: topo.channel_bits() },
            Segment { field: Field::Bank, width: topo.bank_bits() },
            Segment { field: Field::Column, width: topo.column_bits() },
            Segment { field: Field::Rank, width: topo.rank_bits() },
            Segment { field: Field::Row, width: topo.row_bits() },
        ];
        // The segment list covers exactly the topology's address bits, so
        // validation cannot fail for any topology this type accepts.
        #[allow(clippy::expect_used)]
        Self::from_segments(topo, segments, "conventional")
            .expect("conventional scheme is always valid")
    }

    /// Number of page-offset bits available for DRAM row bits in a
    /// PIM-optimized scheme: `page_bits - tx - column - PU bits`.
    ///
    /// This is the tight per-architecture maximum of the paper MapID when
    /// the chunk-column bits are excluded; the paper's loose bound
    /// `log2(hugepage / (total banks * transfer))` equals this value plus
    /// the column bits (see [`max_map_id_bound`]).
    pub fn in_page_row_bits(topo: &Topology, page_bits: u32) -> Result<u32> {
        let pu = topo.channel_bits() + topo.rank_bits() + topo.bank_bits();
        let fixed = topo.tx_bits() + topo.column_bits() + pu;
        if page_bits < fixed {
            return Err(FacilError::InvalidMapping(format!(
                "page offset ({page_bits} bits) cannot hold tx+column+interleaving ({fixed} bits)"
            )));
        }
        Ok((page_bits - fixed).min(topo.row_bits()))
    }

    /// A PIM-optimized mapping for `arch` with the given paper MapID
    /// (number of DRAM row bits between the chunk-column bits and the
    /// PU-changing bits; paper Fig. 8).
    ///
    /// `map_id == max` places the PU-changing bits at the MSB of the page
    /// offset, which is the column-partitioned mapping of Fig. 10.
    ///
    /// # Errors
    ///
    /// * [`FacilError::InvalidMapping`] if the interleaving bits do not fit
    ///   in the page offset or the chunk does not tile the DRAM row;
    /// * [`FacilError::MapIdOutOfRange`] if `map_id` exceeds the maximum for
    ///   this topology/page size.
    pub fn pim_optimized(
        topo: Topology,
        arch: &PimArch,
        map_id: u8,
        page_bits: u32,
    ) -> Result<Self> {
        if !arch.tiles_row(&topo) {
            return Err(FacilError::InvalidMapping(format!(
                "chunk ({} rows x {} bytes) does not tile the {}-byte DRAM row",
                arch.chunk_rows, arch.chunk_row_bytes, topo.row_bytes
            )));
        }
        let in_page_rows = Self::in_page_row_bits(&topo, page_bits)?;
        if u32::from(map_id) > in_page_rows {
            return Err(FacilError::MapIdOutOfRange { requested: map_id, max: in_page_rows as u8 });
        }
        let mid = u32::from(map_id);
        let segments = vec![
            Segment { field: Field::Tx, width: topo.tx_bits() },
            Segment { field: Field::Column, width: arch.chunk_col_bits(&topo) },
            Segment { field: Field::Row, width: mid },
            Segment { field: Field::Column, width: arch.chunk_row_bits() },
            Segment { field: Field::Bank, width: topo.bank_bits() },
            Segment { field: Field::Rank, width: topo.rank_bits() },
            Segment { field: Field::Channel, width: topo.channel_bits() },
            // Row bits left inside the page offset, then the bits above the
            // page offset (always row bits, in the same order as the
            // conventional scheme, so the OS page frame number behaves
            // identically under both mappings).
            Segment { field: Field::Row, width: in_page_rows - mid },
            Segment { field: Field::Row, width: topo.row_bits() - in_page_rows },
        ];
        Self::from_segments(topo, segments, format!("{} MapID={map_id}", arch.style))
    }

    /// Enable DRAMA-style bank hashing: the bank index is XOR-ed with the
    /// low DRAM row bits. Keeps the mapping bijective (XOR with independent
    /// bits is an involution) — verified by the round-trip property tests.
    pub fn with_bank_hash(mut self) -> Self {
        self.bank_xor_row = true;
        self.label = format!("{} (+bank hash)", self.label);
        self
    }

    /// Whether bank hashing is enabled.
    pub fn bank_hash(&self) -> bool {
        self.bank_xor_row
    }

    fn hash_bank(&self, bank: u64, row: u64) -> u64 {
        if self.bank_xor_row {
            bank ^ (row & (self.topo.banks() - 1))
        } else {
            bank
        }
    }

    /// Topology this scheme addresses.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Human-readable label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Segments from PA LSB to MSB.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Translate a physical byte address into a DRAM device address.
    /// Addresses beyond the topology capacity wrap (high bits are ignored).
    pub fn map_pa(&self, pa: u64) -> DramAddress {
        let mut x = pa;
        let mut channel = 0u64;
        let mut rank = 0u64;
        let mut bank = 0u64;
        let mut row = 0u64;
        let mut column = 0u64;
        let mut shift = [0u32; 6];
        for s in &self.segments {
            let bits = u64::from(s.width);
            let v = x & ((1u64 << bits) - 1);
            x >>= bits;
            let (dst, sh) = match s.field {
                Field::Tx => {
                    // Byte-in-transfer bits do not appear in the DA.
                    continue;
                }
                Field::Column => (&mut column, &mut shift[1]),
                Field::Row => (&mut row, &mut shift[2]),
                Field::Bank => (&mut bank, &mut shift[3]),
                Field::Rank => (&mut rank, &mut shift[4]),
                Field::Channel => (&mut channel, &mut shift[5]),
            };
            *dst |= v << *sh;
            *sh += s.width;
        }
        let bank = self.hash_bank(bank, row);
        DramAddress { channel, rank, bank, row, column }
    }

    /// Multi-line annotated bit-field layout, MSB to LSB — the debug dump
    /// used in search reports and mapping error messages. One line per
    /// segment showing which PA bit run feeds which DA field bits:
    ///
    /// ```text
    /// AiM MapID=2 (4ch x 2rk x 16ba, 16384 rows x 2048 B, bank hash off)
    ///   pa[33:21] -> row[13:3]
    ///   pa[20]    -> row[2]
    ///   pa[19:18] -> ch[1:0]
    ///   ...
    /// ```
    ///
    /// The one-line [`Display`](std::fmt::Display) form is the compact
    /// companion for log lines.
    pub fn dump(&self) -> String {
        use std::fmt::Write as _;
        let t = &self.topo;
        let mut out = format!(
            "{} ({}ch x {}rk x {}ba, {} rows x {} B, bank hash {})\n",
            self.label,
            t.channels,
            t.ranks,
            t.banks(),
            t.rows,
            t.row_bytes,
            if self.bank_xor_row { "on" } else { "off" },
        );
        let span = |name: &str, lo: u32, width: u32| {
            if width == 1 {
                format!("{name}[{lo}]")
            } else {
                format!("{name}[{}:{lo}]", lo + width - 1)
            }
        };
        let mut pa_lo = 0u32;
        let mut taken = std::collections::HashMap::new();
        let mut lines = Vec::with_capacity(self.segments.len());
        for s in &self.segments {
            let f_lo = *taken.get(&(s.field as u8)).unwrap_or(&0);
            taken.insert(s.field as u8, f_lo + s.width);
            lines.push((span("pa", pa_lo, s.width), span(&s.field.to_string(), f_lo, s.width)));
            pa_lo += s.width;
        }
        let pa_width = lines.iter().map(|(p, _)| p.len()).max().unwrap_or(0);
        for (pa, da) in lines.iter().rev() {
            let _ = writeln!(out, "  {pa:<pa_width$} -> {da}");
        }
        out
    }

    /// Inverse translation: device address back to the (transfer-aligned)
    /// physical address.
    pub fn unmap(&self, addr: DramAddress) -> u64 {
        // Undo the bank hash first (XOR is its own inverse).
        let addr = DramAddress { bank: self.hash_bank(addr.bank, addr.row), ..addr };
        let mut pa = 0u64;
        let mut pa_shift = 0u32;
        let mut taken = [0u32; 6];
        for s in &self.segments {
            let (src, t) = match s.field {
                Field::Tx => (0u64, &mut taken[0]),
                Field::Column => (addr.column, &mut taken[1]),
                Field::Row => (addr.row, &mut taken[2]),
                Field::Bank => (addr.bank, &mut taken[3]),
                Field::Rank => (addr.rank, &mut taken[4]),
                Field::Channel => (addr.channel, &mut taken[5]),
            };
            let v = (src >> *t) & ((1u64 << s.width) - 1);
            *t += s.width;
            pa |= v << pa_shift;
            pa_shift += s.width;
        }
        pa
    }
}

impl AddressMapper for MappingScheme {
    fn map(&self, pa: u64) -> std::result::Result<DramAddress, MapFault> {
        Ok(self.map_pa(pa))
    }
}

impl std::fmt::Display for MappingScheme {
    /// Renders the bit layout MSB→LSB, e.g.
    /// `row[15:1] ch[3:0] rk[0] ba[3:0] row[0] col[5:0] tx[4:0]`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: ", self.label)?;
        let mut taken = std::collections::HashMap::new();
        let mut parts = Vec::new();
        for s in &self.segments {
            let lo = *taken.get(&(s.field as u8)).unwrap_or(&0);
            let hi = lo + s.width - 1;
            taken.insert(s.field as u8, hi + 1);
            if s.width == 1 {
                parts.push(format!("{}[{lo}]", s.field));
            } else {
                parts.push(format!("{}[{hi}:{lo}]", s.field));
            }
        }
        parts.reverse();
        write!(f, "{}", parts.join(" "))
    }
}

/// The paper's loose upper bound on the number of PIM-optimized mappings:
/// `log2(huge page size / (total bank count * DRAM transfer size))`
/// (Section IV-B). For a single-channel/rank, 8-bank LPDDR5 system with
/// 2 MB pages this is 13, hence 4 PTE bits suffice.
pub fn max_map_id_bound(topo: &Topology, page_bits: u32) -> u32 {
    let denom_bits = topo.total_banks().trailing_zeros() + topo.tx_bits();
    page_bits.saturating_sub(denom_bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::DType;

    fn jetson_topo() -> Topology {
        Topology::new(16, 2, 4, 4, 65536, 2048, 32)
    }

    fn iphone_topo() -> Topology {
        // 64-bit bus = 4 channels... iPhone has 64-bit: 4 channels, 8 GB.
        Topology::new(4, 2, 4, 4, 16384, 2048, 32)
    }

    #[test]
    fn conventional_covers_all_bits() {
        let t = jetson_topo();
        let s = MappingScheme::conventional(t);
        let total: u32 = s.segments().iter().map(|x| x.width).sum();
        assert_eq!(total, t.pa_bits());
    }

    #[test]
    fn conventional_roundtrip() {
        let t = jetson_topo();
        let s = MappingScheme::conventional(t);
        for pa in [0u64, 32, 4096, 123456 * 32, (1 << 35) - 32] {
            let a = s.map_pa(pa);
            assert!(a.is_valid(&t));
            assert_eq!(s.unmap(a), pa & !31);
        }
    }

    #[test]
    fn conventional_interleaves_channels_first() {
        let t = jetson_topo();
        let s = MappingScheme::conventional(t);
        let a0 = s.map_pa(0);
        let a1 = s.map_pa(32);
        assert_eq!(a0.channel, 0);
        assert_eq!(a1.channel, 1);
        assert_eq!(a0.row, a1.row);
    }

    #[test]
    fn aim_scheme_layout_matches_fig8() {
        let t = iphone_topo();
        let arch = PimArch::aim(&t);
        let s = MappingScheme::pim_optimized(t, &arch, 1, HUGE_PAGE_BITS).unwrap();
        // Consecutive transfers within a chunk stay in the same bank/row.
        let a0 = s.map_pa(0);
        let a1 = s.map_pa(32);
        assert_eq!((a0.channel, a0.rank, a0.bank, a0.row), (a1.channel, a1.rank, a1.bank, a1.row));
        assert_eq!(a1.column, a0.column + 1);
        // After one chunk (2 KB) the ROW changes (MapID=1 row bit), not the PU.
        let a_chunk = s.map_pa(2048);
        assert_eq!((a0.channel, a0.rank, a0.bank), (a_chunk.channel, a_chunk.rank, a_chunk.bank));
        assert_eq!(a_chunk.row, a0.row + 1);
        // After 2^map_id chunks (one matrix row of 4 KB), the PU (bank) changes.
        let a_row = s.map_pa(4096);
        assert_ne!((a0.channel, a0.rank, a0.bank), (a_row.channel, a_row.rank, a_row.bank));
        assert_eq!(a_row.bank, a0.bank + 1);
        assert_eq!(a_row.row, a0.row);
    }

    #[test]
    fn map_id_zero_changes_pu_every_chunk() {
        let t = iphone_topo();
        let arch = PimArch::aim(&t);
        let s = MappingScheme::pim_optimized(t, &arch, 0, HUGE_PAGE_BITS).unwrap();
        let a0 = s.map_pa(0);
        let a1 = s.map_pa(2048);
        assert_eq!(a1.bank, a0.bank + 1);
    }

    #[test]
    fn hbm_pim_scheme_splits_column_bits() {
        let t = iphone_topo();
        let arch = PimArch::hbm_pim(&t);
        let s = MappingScheme::pim_optimized(t, &arch, 2, HUGE_PAGE_BITS).unwrap();
        // Within a chunk row (256 B) only columns advance.
        let a0 = s.map_pa(0);
        let a1 = s.map_pa(224);
        assert_eq!(a1.row, a0.row);
        assert_eq!(a1.column, 7);
        // After MapID=2 row bits (4 chunk-rows x 256 B = 1 KB steps), the next
        // 3 PA bits are again column bits (chunk row index).
        let a_cr = s.map_pa(256 << 2);
        assert_eq!(a_cr.row, a0.row);
        assert_eq!(a_cr.column, 8, "chunk-row bits are the high column bits");
    }

    #[test]
    fn high_bits_identical_across_schemes() {
        // PA bits above the page offset must behave identically under the
        // conventional and every PIM-optimized scheme (they are the page
        // frame number).
        let t = iphone_topo();
        let arch = PimArch::aim(&t);
        let conv = MappingScheme::conventional(t);
        let in_page = MappingScheme::in_page_row_bits(&t, HUGE_PAGE_BITS).unwrap();
        for map_id in 0..=in_page as u8 {
            let pim = MappingScheme::pim_optimized(t, &arch, map_id, HUGE_PAGE_BITS).unwrap();
            for pa in [0u64, 5 * 32, 77 * 2048] {
                let delta = 1u64 << HUGE_PAGE_BITS;
                let (c0, c1) = (conv.map_pa(pa), conv.map_pa(pa + delta));
                let (p0, p1) = (pim.map_pa(pa), pim.map_pa(pa + delta));
                assert_eq!(c1.row - c0.row, p1.row - p0.row, "MapID {map_id}");
                assert_eq!(c1.channel, c0.channel);
                assert_eq!(p1.channel, p0.channel);
            }
        }
    }

    #[test]
    fn max_map_id_bound_matches_paper_worst_case() {
        // Single channel/rank, 8-bank mode, 2 MB pages, 32 B transfers:
        // log2(2MB / (8 * 32B)) = 13 (paper Section IV-B).
        let t = Topology::new(1, 1, 2, 4, 1 << 18, 2048, 32);
        assert_eq!(max_map_id_bound(&t, HUGE_PAGE_BITS), 13);
    }

    #[test]
    fn in_page_rows_plus_columns_is_loose_bound() {
        for t in [jetson_topo(), iphone_topo()] {
            let tight = MappingScheme::in_page_row_bits(&t, HUGE_PAGE_BITS).unwrap();
            assert_eq!(tight + t.column_bits(), max_map_id_bound(&t, HUGE_PAGE_BITS));
        }
    }

    #[test]
    fn map_id_out_of_range_rejected() {
        let t = iphone_topo();
        let arch = PimArch::aim(&t);
        let max = MappingScheme::in_page_row_bits(&t, HUGE_PAGE_BITS).unwrap() as u8;
        assert!(MappingScheme::pim_optimized(t, &arch, max, HUGE_PAGE_BITS).is_ok());
        let err = MappingScheme::pim_optimized(t, &arch, max + 1, HUGE_PAGE_BITS).unwrap_err();
        assert!(matches!(err, FacilError::MapIdOutOfRange { .. }));
    }

    #[test]
    fn interleaving_must_fit_page_offset() {
        // A huge topology where channel+rank+bank+column+tx exceeds a 4 KB
        // page: the 4 KB page offset cannot hold the interleaving bits.
        let t = jetson_topo();
        let arch = PimArch::aim(&t);
        let err = MappingScheme::pim_optimized(t, &arch, 0, 12).unwrap_err();
        assert!(matches!(err, FacilError::InvalidMapping(_)));
    }

    #[test]
    fn pim_roundtrip_all_mapids() {
        let t = iphone_topo();
        for arch in [PimArch::aim(&t), PimArch::hbm_pim(&t)] {
            let max = MappingScheme::in_page_row_bits(&t, HUGE_PAGE_BITS).unwrap() as u8;
            for map_id in 0..=max {
                let s = MappingScheme::pim_optimized(t, &arch, map_id, HUGE_PAGE_BITS).unwrap();
                for i in 0..2048u64 {
                    let pa = i * 997 * 32 % t.capacity_bytes();
                    let pa = pa & !31;
                    assert_eq!(s.unmap(s.map_pa(pa)), pa, "{arch:?} map_id={map_id} pa={pa:#x}");
                }
            }
        }
    }

    #[test]
    fn display_shows_bit_layout() {
        let t = iphone_topo();
        let s = MappingScheme::conventional(t);
        let txt = s.to_string();
        assert!(txt.contains("conventional"));
        assert!(txt.contains("tx[4:0]"));
        assert!(txt.contains("ch["));
        let arch = PimArch::aim(&t);
        let p = MappingScheme::pim_optimized(t, &arch, 1, HUGE_PAGE_BITS).unwrap();
        assert!(p.to_string().contains("MapID=1"));
    }

    #[test]
    fn dump_annotates_every_pa_bit_msb_first() {
        let t = iphone_topo();
        let arch = PimArch::aim(&t);
        let s = MappingScheme::pim_optimized(t, &arch, 2, HUGE_PAGE_BITS).unwrap();
        let d = s.dump();
        let lines: Vec<&str> = d.lines().collect();
        // Header + one line per (non-zero-width) segment.
        assert_eq!(lines.len(), 1 + s.segments().len());
        assert!(lines[0].contains("AiM MapID=2"));
        assert!(lines[0].contains("4ch x 2rk x 16ba"));
        assert!(lines[0].contains("bank hash off"));
        // MSB first: the top row bits above the page offset...
        assert!(lines[1].contains("pa[31:21] -> row[13:3]"), "{d}");
        // ...and the LSB line is the transfer offset.
        assert!(lines.last().unwrap().contains("pa[4:0]"), "{d}");
        assert!(lines.last().unwrap().contains("tx[4:0]"), "{d}");
        // The MapID=2 row bits sit directly above the chunk-column bits.
        assert!(d.contains("pa[12:11] -> row[1:0]"), "{d}");
        // Single-bit segments collapse the range notation.
        assert!(d.contains("pa[17]"), "{d}");
        assert!(d.contains("rk[0]"), "{d}");
        // Hash state is reflected.
        assert!(s.with_bank_hash().dump().contains("bank hash on"));
    }

    #[test]
    fn dump_covers_pa_bits_contiguously() {
        let t = jetson_topo();
        for scheme in [
            MappingScheme::conventional(t),
            MappingScheme::pim_optimized(t, &PimArch::aim(&t), 1, HUGE_PAGE_BITS).unwrap(),
        ] {
            let d = scheme.dump();
            // Parse the pa spans back out and check they tile [0, pa_bits).
            let mut bits = vec![false; t.pa_bits() as usize];
            for line in d.lines().skip(1) {
                let span = line.trim().split(" -> ").next().unwrap();
                let inner = span.trim_start_matches("pa[").trim_end().trim_end_matches(']');
                let (hi, lo) = match inner.split_once(':') {
                    Some((h, l)) => (h.parse::<usize>().unwrap(), l.parse::<usize>().unwrap()),
                    None => {
                        let b = inner.parse::<usize>().unwrap();
                        (b, b)
                    }
                };
                for (b, seen) in bits.iter_mut().enumerate().take(hi + 1).skip(lo) {
                    assert!(!*seen, "pa bit {b} listed twice:\n{d}");
                    *seen = true;
                }
            }
            assert!(bits.iter().all(|&b| b), "pa bits missing from dump:\n{d}");
        }
    }

    #[test]
    fn bank_hash_keeps_bijectivity() {
        let t = iphone_topo();
        for scheme in [
            MappingScheme::conventional(t).with_bank_hash(),
            MappingScheme::pim_optimized(t, &PimArch::aim(&t), 1, HUGE_PAGE_BITS)
                .unwrap()
                .with_bank_hash(),
        ] {
            assert!(scheme.bank_hash());
            for i in 0..4096u64 {
                let pa = ((i * 977 * 32) % t.capacity_bytes()) & !31;
                let da = scheme.map_pa(pa);
                assert!(da.is_valid(&t));
                assert_eq!(scheme.unmap(da), pa, "{}", scheme.label());
            }
        }
    }

    #[test]
    fn bank_hash_spreads_same_bank_strides() {
        // A stride that hits one bank under the plain conventional mapping
        // spreads across banks once hashed.
        let t = iphone_topo();
        let plain = MappingScheme::conventional(t);
        let hashed = MappingScheme::conventional(t).with_bank_hash();
        // Stride of one full row group: same (ch, bank, col), row+1.
        let stride = t.capacity_bytes() / t.rows;
        let banks_plain: std::collections::HashSet<u64> =
            (0..16).map(|i| plain.map_pa(i * stride).bank).collect();
        let banks_hashed: std::collections::HashSet<u64> =
            (0..16).map(|i| hashed.map_pa(i * stride).bank).collect();
        assert_eq!(banks_plain.len(), 1, "pathological stride hits one bank");
        assert!(banks_hashed.len() > 4, "hash spreads it: {banks_hashed:?}");
    }

    #[test]
    fn from_segments_rejects_wrong_widths() {
        let t = iphone_topo();
        let bad = vec![Segment { field: Field::Tx, width: t.tx_bits() }];
        assert!(matches!(
            MappingScheme::from_segments(t, bad, "bad"),
            Err(FacilError::InvalidMapping(_))
        ));
    }

    #[test]
    fn chunk_cols_consistency() {
        let t = iphone_topo();
        assert_eq!(PimArch::aim(&t).chunk_cols(DType::F16), 1024);
    }
}
