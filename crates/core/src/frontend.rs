//! Memory-controller frontend with the FACIL N-to-1 mapping mux
//! (paper Fig. 12).
//!
//! The frontend receives (physical address, optional MapID) from the core's
//! TLB/page-table path and performs PA-to-DA translation through one of a
//! small number of hardware mapping slots: slot ∅ is the SoC's conventional
//! mapping; the others are PIM-optimized schemes selected by MapID. The
//! hardware cost is five N-to-1 multiplexers (channel, rank, bank, column,
//! row) — pure combinational logic, which [`Frontend::mux_inputs`] reports.

use facil_dram::{AddressMapper, DramAddress, MapFault, Topology};

use crate::arch::PimArch;
use crate::error::{FacilError, Result};
use crate::scheme::MappingScheme;
use crate::select::MapId;

/// The FACIL-augmented PA-to-DA translation stage.
#[derive(Debug)]
pub struct Frontend {
    topo: Topology,
    arch: PimArch,
    page_bits: u32,
    conventional: MappingScheme,
    /// Installed PIM-optimized schemes, keyed by their MapID.
    slots: Vec<Option<MappingScheme>>,
    /// Maximum number of concurrently-installed PIM mappings (hardware mux
    /// width minus the conventional input).
    max_slots: usize,
}

impl Frontend {
    /// Create a frontend for `topo`/`arch` with `max_slots` PIM mapping
    /// slots (the paper's example hardware supports 3 PIM + 1 conventional).
    ///
    /// # Panics
    ///
    /// Panics if `max_slots` is 0 or exceeds 15 (4 PTE bits).
    pub fn new(topo: Topology, arch: PimArch, page_bits: u32, max_slots: usize) -> Self {
        assert!(max_slots > 0 && max_slots <= 15, "MapID field is 4 bits");
        Frontend {
            topo,
            arch,
            page_bits,
            conventional: MappingScheme::conventional(topo),
            slots: vec![None; 16],
            max_slots,
        }
    }

    /// The conventional scheme (slot ∅).
    pub fn conventional(&self) -> &MappingScheme {
        &self.conventional
    }

    /// Number of PIM mappings currently installed.
    pub fn installed(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Ensure the PIM-optimized scheme for `map_id` is installed, building
    /// it on first use.
    ///
    /// # Errors
    ///
    /// * [`FacilError::FrontendFull`] if a new slot is needed but all
    ///   `max_slots` are taken;
    /// * mapping-construction errors from
    ///   [`MappingScheme::pim_optimized`].
    pub fn ensure_slot(&mut self, map_id: MapId) -> Result<&MappingScheme> {
        let idx = map_id.0 as usize;
        if idx >= self.slots.len() {
            return Err(FacilError::MapIdOutOfRange { requested: map_id.0, max: 15 });
        }
        if self.slots[idx].is_none() {
            if self.installed() >= self.max_slots {
                return Err(FacilError::FrontendFull { slots: self.max_slots });
            }
            let scheme =
                MappingScheme::pim_optimized(self.topo, &self.arch, map_id.0, self.page_bits)?;
            self.slots[idx] = Some(scheme);
        }
        // The branch above guarantees the slot is occupied.
        #[allow(clippy::expect_used)]
        Ok(self.slots[idx].as_ref().expect("just installed"))
    }

    /// Install a *caller-supplied* scheme into the slot for `map_id` (e.g. a
    /// mapsearch candidate with a non-default PU order or bank hash, rather
    /// than the paper-default scheme [`Frontend::ensure_slot`] would build).
    ///
    /// Installing an identical scheme into an occupied slot is a no-op;
    /// installing a *different* scheme into an occupied slot is rejected —
    /// live allocations translate through that slot, so hardware would never
    /// allow hot-swapping it.
    ///
    /// # Errors
    ///
    /// * [`FacilError::MapIdOutOfRange`] if `map_id` exceeds the 4-bit PTE
    ///   field;
    /// * [`FacilError::InvalidMapping`] if the scheme's topology differs
    ///   from the frontend's or the slot holds a different scheme;
    /// * [`FacilError::FrontendFull`] if a new slot is needed but all
    ///   `max_slots` are taken.
    pub fn install_scheme(&mut self, map_id: MapId, scheme: &MappingScheme) -> Result<()> {
        let idx = map_id.0 as usize;
        if idx >= self.slots.len() {
            return Err(FacilError::MapIdOutOfRange { requested: map_id.0, max: 15 });
        }
        if scheme.topology() != &self.topo {
            return Err(FacilError::InvalidMapping(format!(
                "scheme topology does not match frontend topology for MapID {map_id}"
            )));
        }
        match &self.slots[idx] {
            Some(existing) if existing == scheme => Ok(()),
            Some(_) => Err(FacilError::InvalidMapping(format!(
                "MapID {map_id} slot already holds a different scheme"
            ))),
            None => {
                if self.installed() >= self.max_slots {
                    return Err(FacilError::FrontendFull { slots: self.max_slots });
                }
                self.slots[idx] = Some(scheme.clone());
                Ok(())
            }
        }
    }

    /// Look up an installed scheme.
    pub fn scheme(&self, map_id: MapId) -> Option<&MappingScheme> {
        self.slots.get(map_id.0 as usize).and_then(|s| s.as_ref())
    }

    /// Translate a physical address under the mapping selected by `map_id`
    /// (`None` = conventional).
    ///
    /// # Errors
    ///
    /// [`FacilError::MapIdOutOfRange`] if the MapID has no installed scheme
    /// (hardware would raise a machine check here).
    pub fn translate(&self, pa: u64, map_id: Option<MapId>) -> Result<DramAddress> {
        match map_id {
            None => Ok(self.conventional.map_pa(pa)),
            Some(id) => match self.scheme(id) {
                Some(s) => Ok(s.map_pa(pa)),
                None => Err(FacilError::MapIdOutOfRange { requested: id.0, max: 15 }),
            },
        }
    }

    /// Hardware-cost figure: inputs of each of the five field multiplexers
    /// (= installed mappings + 1 conventional). Paper Fig. 12 shows 4.
    pub fn mux_inputs(&self) -> usize {
        self.installed() + 1
    }
}

/// Adapter: a frontend pinned to one MapID behaves as a plain
/// [`AddressMapper`] for trace replay.
#[derive(Debug)]
pub struct PinnedMapper<'a> {
    frontend: &'a Frontend,
    map_id: Option<MapId>,
}

impl<'a> PinnedMapper<'a> {
    /// Pin `frontend` to `map_id`.
    ///
    /// # Panics
    ///
    /// Panics if `map_id` refers to an empty slot.
    pub fn new(frontend: &'a Frontend, map_id: Option<MapId>) -> Self {
        if let Some(id) = map_id {
            assert!(frontend.scheme(id).is_some(), "MapID {id} not installed");
        }
        PinnedMapper { frontend, map_id }
    }
}

impl AddressMapper for PinnedMapper<'_> {
    fn map(&self, pa: u64) -> std::result::Result<DramAddress, MapFault> {
        self.frontend.translate(pa, self.map_id).map_err(|_| MapFault { addr: pa })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::HUGE_PAGE_BITS;

    fn topo() -> Topology {
        Topology::new(4, 2, 4, 4, 16384, 2048, 32)
    }

    fn frontend(slots: usize) -> Frontend {
        let t = topo();
        Frontend::new(t, PimArch::aim(&t), HUGE_PAGE_BITS, slots)
    }

    #[test]
    fn conventional_translation_by_default() {
        let f = frontend(3);
        let a = f.translate(32, None).unwrap();
        assert_eq!(a.channel, 1, "conventional interleaves channels first");
    }

    #[test]
    fn install_and_translate_pim() {
        let mut f = frontend(3);
        f.ensure_slot(MapId(1)).unwrap();
        let a = f.translate(32, Some(MapId(1))).unwrap();
        // PIM mapping keeps consecutive transfers in one bank.
        assert_eq!(a.channel, 0);
        assert_eq!(a.column, 1);
        assert_eq!(f.mux_inputs(), 2);
    }

    #[test]
    fn slots_are_limited_like_hardware() {
        let mut f = frontend(2);
        f.ensure_slot(MapId(0)).unwrap();
        f.ensure_slot(MapId(1)).unwrap();
        // Re-ensuring an installed slot is free.
        f.ensure_slot(MapId(1)).unwrap();
        let err = f.ensure_slot(MapId(2)).unwrap_err();
        assert_eq!(err, FacilError::FrontendFull { slots: 2 });
    }

    #[test]
    fn install_scheme_accepts_custom_and_rejects_conflicts() {
        let t = topo();
        let mut f = frontend(3);
        // A custom scheme (bank hash on) in a fresh slot.
        let custom = MappingScheme::pim_optimized(t, &PimArch::aim(&t), 1, HUGE_PAGE_BITS)
            .unwrap()
            .with_bank_hash();
        f.install_scheme(MapId(1), &custom).unwrap();
        assert_eq!(f.scheme(MapId(1)), Some(&custom));
        // Re-installing the identical scheme is a no-op.
        f.install_scheme(MapId(1), &custom).unwrap();
        assert_eq!(f.installed(), 1);
        // A different scheme under the same MapID is a conflict.
        let default_1 =
            MappingScheme::pim_optimized(t, &PimArch::aim(&t), 1, HUGE_PAGE_BITS).unwrap();
        assert!(matches!(
            f.install_scheme(MapId(1), &default_1),
            Err(FacilError::InvalidMapping(_))
        ));
        // A scheme built for another topology is rejected.
        let other_topo = Topology::new(2, 1, 2, 2, 1024, 2048, 32);
        let foreign =
            MappingScheme::pim_optimized(other_topo, &PimArch::aim(&other_topo), 0, HUGE_PAGE_BITS)
                .unwrap();
        assert!(matches!(f.install_scheme(MapId(0), &foreign), Err(FacilError::InvalidMapping(_))));
        // Slot capacity still applies.
        let mut small = frontend(1);
        small.install_scheme(MapId(1), &custom).unwrap();
        let default_0 =
            MappingScheme::pim_optimized(t, &PimArch::aim(&t), 0, HUGE_PAGE_BITS).unwrap();
        assert_eq!(
            small.install_scheme(MapId(0), &default_0),
            Err(FacilError::FrontendFull { slots: 1 })
        );
        // Out-of-range MapID.
        assert!(matches!(
            f.install_scheme(MapId(16), &custom),
            Err(FacilError::MapIdOutOfRange { .. })
        ));
    }

    #[test]
    fn uninstalled_mapid_is_rejected() {
        let f = frontend(3);
        assert!(matches!(f.translate(0, Some(MapId(2))), Err(FacilError::MapIdOutOfRange { .. })));
    }

    #[test]
    fn pinned_mapper_adapts_to_trait() {
        let mut f = frontend(3);
        f.ensure_slot(MapId(0)).unwrap();
        let conv = PinnedMapper::new(&f, None);
        let pim = PinnedMapper::new(&f, Some(MapId(0)));
        assert_ne!(conv.map(32), pim.map(32));
    }

    #[test]
    #[should_panic(expected = "not installed")]
    fn pinning_empty_slot_panics() {
        let f = frontend(3);
        PinnedMapper::new(&f, Some(MapId(7)));
    }
}
