//! Placement validators: check that a selected mapping actually realizes the
//! PIM-optimal placement properties of paper Section II-C:
//!
//! 1. **chunk contiguity** — every chunk lies in a single DRAM row of a
//!    single bank, at contiguous columns;
//! 2. **row-to-PU ownership** — a matrix row is owned by exactly
//!    `partitions` PUs (1 unless column-partitioned, Fig. 10);
//! 3. **lock-step tile alignment** — matrix rows assigned to different PUs
//!    of the same channel occupy the *same local (DRAM row, column)*, so an
//!    all-bank PIM command makes every bank fetch its own chunk at once.

use std::collections::BTreeSet;

use facil_dram::Topology;
use serde::{Deserialize, Serialize};

use crate::arch::PimArch;
use crate::error::{FacilError, Result};
use crate::matrix::MatrixConfig;
use crate::select::MappingDecision;

/// Identity of one processing unit: (channel, rank, bank).
pub type PuId = (u64, u64, u64);

/// Summary of a successful placement verification.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlacementReport {
    /// Matrix rows inspected.
    pub rows_checked: u64,
    /// Chunks inspected for contiguity.
    pub chunks_checked: u64,
    /// Distinct PUs touched by the inspected rows.
    pub pus_used: u64,
    /// PUs per matrix row (the partition factor observed).
    pub pus_per_row: u64,
}

/// Verifies a matrix placement under a mapping decision.
///
/// The matrix is assumed laid out row-major with rows padded to
/// [`MatrixConfig::padded_row_bytes`], starting at a huge-page-aligned
/// physical base (which is how `pimalloc` lays it out; non-contiguous pages
/// only change page-frame bits, which are row bits under every scheme, so
/// contiguity of the verification region is without loss of generality).
#[derive(Debug)]
pub struct PlacementChecker<'a> {
    matrix: &'a MatrixConfig,
    decision: &'a MappingDecision,
    arch: &'a PimArch,
    base_pa: u64,
}

impl<'a> PlacementChecker<'a> {
    /// Create a checker.
    ///
    /// # Panics
    ///
    /// Panics if `base_pa` is not huge-page aligned (2 MB).
    pub fn new(
        matrix: &'a MatrixConfig,
        decision: &'a MappingDecision,
        arch: &'a PimArch,
        base_pa: u64,
    ) -> Self {
        assert_eq!(base_pa % crate::scheme::HUGE_PAGE_BYTES, 0, "base must be huge-page aligned");
        PlacementChecker { matrix, decision, arch, base_pa }
    }

    fn topo(&self) -> &Topology {
        self.decision.scheme.topology()
    }

    /// Physical address of byte `byte` within matrix row `row`.
    fn element_pa(&self, row: u64, byte: u64) -> u64 {
        self.base_pa + row * self.matrix.padded_row_bytes() + byte
    }

    fn pu_of(&self, pa: u64) -> PuId {
        let a = self.decision.scheme.map_pa(pa);
        (a.channel, a.rank, a.bank)
    }

    /// Rows to sample: all rows if few, else an even spread.
    fn sample_rows(&self, max: u64) -> Vec<u64> {
        let n = self.matrix.rows;
        if n <= max {
            (0..n).collect()
        } else {
            let step = n / max;
            (0..max).map(|i| i * step).collect()
        }
    }

    /// Property 1: every chunk occupies one DRAM row of one bank at
    /// contiguous columns.
    pub fn check_chunk_contiguity(&self) -> Result<u64> {
        let topo = *self.topo();
        let tx = topo.transfer_bytes;
        let mut checked = 0;
        for row in self.sample_rows(16) {
            let row_bytes = self.matrix.padded_row_bytes();
            let chunks = row_bytes / self.arch.chunk_row_bytes;
            let chunk_step = (chunks / 8).max(1);
            let mut c = 0;
            while c < chunks {
                let chunk_base = self.element_pa(row, c * self.arch.chunk_row_bytes);
                let first = self.decision.scheme.map_pa(chunk_base);
                for t in 1..(self.arch.chunk_row_bytes / tx) {
                    let a = self.decision.scheme.map_pa(chunk_base + t * tx);
                    if (a.channel, a.rank, a.bank, a.row)
                        != (first.channel, first.rank, first.bank, first.row)
                    {
                        return Err(FacilError::InvalidMapping(format!(
                            "chunk at row {row} chunk {c} spans banks/rows: {first} vs {a}"
                        )));
                    }
                    if a.column != first.column + t {
                        return Err(FacilError::InvalidMapping(format!(
                            "chunk at row {row} chunk {c} not at contiguous columns"
                        )));
                    }
                }
                checked += 1;
                c += chunk_step;
            }
        }
        Ok(checked)
    }

    /// Property 2: each matrix row is owned by exactly
    /// [`MappingDecision::partitions`] PUs.
    pub fn check_row_pu_count(&self) -> Result<u64> {
        for row in self.sample_rows(16) {
            let mut pus = BTreeSet::new();
            let step = self.arch.chunk_row_bytes;
            let mut b = 0;
            while b < self.matrix.padded_row_bytes() {
                pus.insert(self.pu_of(self.element_pa(row, b)));
                b += step;
            }
            if pus.len() as u64 != self.decision.partitions {
                return Err(FacilError::InvalidMapping(format!(
                    "matrix row {row} touches {} PUs, expected {} partitions",
                    pus.len(),
                    self.decision.partitions
                )));
            }
        }
        Ok(self.decision.partitions)
    }

    /// Property 3: lock-step alignment — matrix rows that differ by
    /// `chunk_rows` land on *different* PUs at the *same* local
    /// (DRAM row, column), as required for all-bank PIM commands.
    ///
    /// Only row pairs within the same tile (same huge page, consecutive PU
    /// index) are compared.
    pub fn check_lockstep_alignment(&self) -> Result<u64> {
        let topo = *self.topo();
        // Matrix rows per huge page (rows never straddle pages because row
        // size is a power of two <= page size here).
        let page = crate::scheme::HUGE_PAGE_BYTES;
        let rows_per_page = (page / self.matrix.padded_row_bytes()).max(1);
        let stride = self.arch.chunk_rows;
        // Rows per full cycle of the PU-changing bits: once every PU has one
        // tile row, the next matrix row returns to PU 0 at a *different*
        // local row, so such pairs are not lock-step peers.
        let rows_per_pu_cycle =
            (topo.total_banks() / self.decision.partitions) * self.arch.chunk_rows;
        let mut compared = 0;
        for row in self.sample_rows(8) {
            let peer = row + stride;
            if peer >= self.matrix.rows
                || (row % rows_per_page) + stride >= rows_per_page
                || (row % rows_per_pu_cycle) + stride >= rows_per_pu_cycle
            {
                continue;
            }
            for byte in [0, self.arch.chunk_row_bytes / 2] {
                let a = self.decision.scheme.map_pa(self.element_pa(row, byte));
                let b = self.decision.scheme.map_pa(self.element_pa(peer, byte));
                if (a.row, a.column) != (b.row, b.column) {
                    return Err(FacilError::InvalidMapping(format!(
                        "rows {row} and {peer} misaligned: local ({},{}) vs ({},{})",
                        a.row, a.column, b.row, b.column
                    )));
                }
                if (a.channel, a.rank, a.bank) == (b.channel, b.rank, b.bank) {
                    return Err(FacilError::InvalidMapping(format!(
                        "rows {row} and {peer} share PU (ch{} rk{} ba{})",
                        a.channel, a.rank, a.bank
                    )));
                }
                debug_assert!(a.is_valid(&topo) && b.is_valid(&topo));
            }
            compared += 1;
        }
        Ok(compared)
    }

    /// Run all placement checks and produce a report.
    ///
    /// # Errors
    ///
    /// Returns [`FacilError::InvalidMapping`] describing the first violated
    /// property, if any.
    pub fn check_all(&self) -> Result<PlacementReport> {
        let chunks_checked = self.check_chunk_contiguity()?;
        let pus_per_row = self.check_row_pu_count()?;
        self.check_lockstep_alignment()?;
        let mut pus = BTreeSet::new();
        for row in self.sample_rows(64) {
            let mut b = 0;
            while b < self.matrix.padded_row_bytes() {
                pus.insert(self.pu_of(self.element_pa(row, b)));
                b += self.arch.chunk_row_bytes;
            }
        }
        Ok(PlacementReport {
            rows_checked: self.sample_rows(16).len() as u64,
            chunks_checked,
            pus_used: pus.len() as u64,
            pus_per_row,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::DType;
    use crate::scheme::MappingScheme;
    use crate::select::select_mapping_2mb;

    fn small_topo() -> Topology {
        Topology::new(4, 2, 4, 4, 16384, 2048, 32)
    }

    #[test]
    fn aim_placement_passes_all_checks() {
        let t = small_topo();
        let arch = PimArch::aim(&t);
        let m = MatrixConfig::new(2048, 2048, DType::F16);
        let d = select_mapping_2mb(&m, t, &arch).unwrap();
        let report = PlacementChecker::new(&m, &d, &arch, 0).check_all().unwrap();
        assert!(report.chunks_checked > 0);
        assert_eq!(report.pus_per_row, 1);
        assert!(report.pus_used > 1);
    }

    #[test]
    fn hbm_placement_passes_all_checks() {
        let t = small_topo();
        let arch = PimArch::hbm_pim(&t);
        let m = MatrixConfig::new(1024, 1024, DType::F16);
        let d = select_mapping_2mb(&m, t, &arch).unwrap();
        let report = PlacementChecker::new(&m, &d, &arch, 0).check_all().unwrap();
        assert_eq!(report.pus_per_row, 1);
    }

    #[test]
    fn partitioned_placement_reports_partitions() {
        // Jetson-like: 512 banks force partitioning for 4096-col rows.
        let t = Topology::new(16, 2, 4, 4, 65536, 2048, 32);
        let arch = PimArch::aim(&t);
        let m = MatrixConfig::new(4096, 4096, DType::F16);
        let d = select_mapping_2mb(&m, t, &arch).unwrap();
        assert_eq!(d.partitions, 2);
        let report = PlacementChecker::new(&m, &d, &arch, 0).check_all().unwrap();
        assert_eq!(report.pus_per_row, 2);
    }

    #[test]
    fn conventional_mapping_fails_chunk_contiguity() {
        // The conventional scheme scatters a chunk across channels; the
        // checker must reject it.
        let t = small_topo();
        let arch = PimArch::aim(&t);
        let m = MatrixConfig::new(2048, 2048, DType::F16);
        let mut d = select_mapping_2mb(&m, t, &arch).unwrap();
        d.scheme = MappingScheme::conventional(t);
        let err = PlacementChecker::new(&m, &d, &arch, 0).check_chunk_contiguity().unwrap_err();
        assert!(matches!(err, FacilError::InvalidMapping(_)));
    }

    #[test]
    fn nonzero_page_aligned_base_is_accepted() {
        let t = small_topo();
        let arch = PimArch::aim(&t);
        let m = MatrixConfig::new(512, 2048, DType::F16);
        let d = select_mapping_2mb(&m, t, &arch).unwrap();
        let base = 7 * crate::scheme::HUGE_PAGE_BYTES;
        PlacementChecker::new(&m, &d, &arch, base).check_all().unwrap();
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn unaligned_base_panics() {
        let t = small_topo();
        let arch = PimArch::aim(&t);
        let m = MatrixConfig::new(64, 2048, DType::F16);
        let d = select_mapping_2mb(&m, t, &arch).unwrap();
        PlacementChecker::new(&m, &d, &arch, 4096);
    }
}
