//! Error type for the FACIL core library.

use std::fmt;

/// Errors returned by the FACIL mapping, paging and allocation layers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FacilError {
    /// A mapping scheme could not be constructed for the given topology
    /// (e.g. the interleaving bits do not fit inside the page offset).
    InvalidMapping(String),
    /// A MapID outside the supported range was requested.
    MapIdOutOfRange {
        /// The requested MapID.
        requested: u8,
        /// The maximum supported by the topology/page size.
        max: u8,
    },
    /// The memory-controller frontend has no free mapping slot.
    FrontendFull {
        /// Number of hardware mapping slots.
        slots: usize,
    },
    /// Physical memory could not satisfy an allocation.
    OutOfMemory {
        /// Bytes requested.
        requested: u64,
        /// Bytes still free (possibly fragmented).
        free: u64,
    },
    /// A virtual address was not mapped.
    NotMapped {
        /// The faulting virtual address.
        va: u64,
    },
    /// An allocation request was malformed (zero-sized matrix, unsupported
    /// dtype-row combination, …).
    InvalidRequest(String),
    /// A serving-fleet device is crashed, out of range, or otherwise unable
    /// to accept work.
    DeviceUnavailable {
        /// Fleet index of the device.
        device: usize,
    },
    /// A request's deadline elapsed before it could be served.
    DeadlineExceeded {
        /// The deadline that was missed, in milliseconds after arrival.
        deadline_ms: u64,
    },
}

impl fmt::Display for FacilError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FacilError::InvalidMapping(msg) => write!(f, "invalid mapping: {msg}"),
            FacilError::MapIdOutOfRange { requested, max } => {
                write!(f, "MapID {requested} out of range (max {max})")
            }
            FacilError::FrontendFull { slots } => {
                write!(f, "memory-controller frontend has no free mapping slot ({slots} total)")
            }
            FacilError::OutOfMemory { requested, free } => {
                write!(f, "out of physical memory: requested {requested} bytes, {free} free")
            }
            FacilError::NotMapped { va } => write!(f, "virtual address {va:#x} is not mapped"),
            FacilError::InvalidRequest(msg) => write!(f, "invalid request: {msg}"),
            FacilError::DeviceUnavailable { device } => {
                write!(f, "device {device} is unavailable")
            }
            FacilError::DeadlineExceeded { deadline_ms } => {
                write!(f, "deadline of {deadline_ms} ms exceeded")
            }
        }
    }
}

impl std::error::Error for FacilError {}

impl From<facil_dram::MapFault> for FacilError {
    fn from(e: facil_dram::MapFault) -> Self {
        FacilError::NotMapped { va: e.addr }
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, FacilError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_nonempty() {
        let errors: Vec<FacilError> = vec![
            FacilError::InvalidMapping("x".into()),
            FacilError::MapIdOutOfRange { requested: 9, max: 3 },
            FacilError::FrontendFull { slots: 4 },
            FacilError::OutOfMemory { requested: 10, free: 5 },
            FacilError::NotMapped { va: 0x1000 },
            FacilError::InvalidRequest("y".into()),
            FacilError::DeviceUnavailable { device: 2 },
            FacilError::DeadlineExceeded { deadline_ms: 250 },
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase() || s.starts_with("MapID"));
        }
    }

    #[test]
    fn map_fault_converts_to_not_mapped() {
        let e: FacilError = facil_dram::MapFault { addr: 0x2000 }.into();
        assert_eq!(e, FacilError::NotMapped { va: 0x2000 });
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<FacilError>();
    }
}
