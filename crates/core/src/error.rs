//! Error type for the FACIL core library.

use std::fmt;

/// Errors returned by the FACIL mapping, paging and allocation layers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FacilError {
    /// A mapping scheme could not be constructed for the given topology
    /// (e.g. the interleaving bits do not fit inside the page offset).
    InvalidMapping(String),
    /// A MapID outside the supported range was requested.
    MapIdOutOfRange {
        /// The requested MapID.
        requested: u8,
        /// The maximum supported by the topology/page size.
        max: u8,
    },
    /// The memory-controller frontend has no free mapping slot.
    FrontendFull {
        /// Number of hardware mapping slots.
        slots: usize,
    },
    /// Physical memory could not satisfy an allocation.
    OutOfMemory {
        /// Bytes requested.
        requested: u64,
        /// Bytes still free (possibly fragmented).
        free: u64,
    },
    /// A virtual address was not mapped.
    NotMapped {
        /// The faulting virtual address.
        va: u64,
    },
    /// An allocation request was malformed (zero-sized matrix, unsupported
    /// dtype-row combination, …).
    InvalidRequest(String),
}

impl fmt::Display for FacilError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FacilError::InvalidMapping(msg) => write!(f, "invalid mapping: {msg}"),
            FacilError::MapIdOutOfRange { requested, max } => {
                write!(f, "MapID {requested} out of range (max {max})")
            }
            FacilError::FrontendFull { slots } => {
                write!(f, "memory-controller frontend has no free mapping slot ({slots} total)")
            }
            FacilError::OutOfMemory { requested, free } => {
                write!(f, "out of physical memory: requested {requested} bytes, {free} free")
            }
            FacilError::NotMapped { va } => write!(f, "virtual address {va:#x} is not mapped"),
            FacilError::InvalidRequest(msg) => write!(f, "invalid request: {msg}"),
        }
    }
}

impl std::error::Error for FacilError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, FacilError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_nonempty() {
        let errors: Vec<FacilError> = vec![
            FacilError::InvalidMapping("x".into()),
            FacilError::MapIdOutOfRange { requested: 9, max: 3 },
            FacilError::FrontendFull { slots: 4 },
            FacilError::OutOfMemory { requested: 10, free: 5 },
            FacilError::NotMapped { va: 0x1000 },
            FacilError::InvalidRequest("y".into()),
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase() || s.starts_with("MapID"));
        }
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<FacilError>();
    }
}
