//! # facil-core
//!
//! The primary contribution of *FACIL: Flexible DRAM Address Mapping for
//! SoC-PIM Cooperative On-device LLM Inference* (HPCA 2025), as a library:
//!
//! * [`scheme`] — the PA-to-DA mapping formulation (paper §IV-B, Fig. 8):
//!   conventional and PIM-optimized bit-permutation schemes parameterized by
//!   **MapID**, for both AiM-style and HBM-PIM-style chunk geometries;
//! * [`select`] — the user-level mapping selector (Fig. 9), including the
//!   column-partitioned large-row case (Fig. 10);
//! * [`paging`] — OS support: MapID stored in unused huge-page PTE bits
//!   (Fig. 11), an unmodified TLB that caches it for free, and a
//!   fragmentation-aware physical allocator (the Table I mechanism);
//! * [`frontend`] — the memory-controller frontend with the N-to-1 mapping
//!   mux (Fig. 12);
//! * [`pimalloc`] — [`pimalloc::FacilSystem`], gluing selector, paging and
//!   frontend into the `pimalloc()` allocation path of Fig. 7;
//! * [`verify`] — placement validators for the PIM-optimality properties of
//!   §II-C (chunk contiguity, row-to-PU ownership, lock-step alignment).
//!
//! ## Quick example
//!
//! ```
//! use facil_core::{DType, FacilSystem, MatrixConfig, PimArch};
//! use facil_dram::DramSpec;
//!
//! # fn main() -> Result<(), facil_core::FacilError> {
//! let spec = DramSpec::lpddr5_6400(64, 8 << 30); // iPhone 15 Pro memory
//! let arch = PimArch::aim(&spec.topology);
//! let mut sys = FacilSystem::new(spec, arch);
//!
//! // One call places a weight matrix PIM-optimally *and* keeps it
//! // row-major in virtual memory for the SoC.
//! let w = sys.pimalloc(MatrixConfig::new(2048, 2048, DType::F16))?;
//! assert_eq!(w.map_id().0, 1);
//!
//! // SoC view: plain virtual addresses. PIM view: one bank per matrix row.
//! let da = sys.translate_va(w.element_va(3, 0))?;
//! # let _ = da;
//! # Ok(())
//! # }
//! ```

#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]

pub mod arch;
pub mod error;
pub mod frontend;
pub mod kvcache;
pub mod matrix;
pub mod paging;
pub mod pimalloc;
pub mod scheme;
pub mod select;
pub mod verify;

pub use arch::{PimArch, PimStyle};
pub use error::{FacilError, Result};
pub use frontend::{Frontend, PinnedMapper};
pub use kvcache::{KvHalf, PagedKvCache};
pub use matrix::{DType, MatrixConfig};
pub use pimalloc::{FacilSystem, PimAllocation, VaMapper};
pub use scheme::{
    max_map_id_bound, Field, MappingScheme, Segment, HUGE_PAGE_BITS, HUGE_PAGE_BYTES,
};
pub use select::{
    decision_with_map_id, select_mapping, select_mapping_2mb, MapId, MappingDecision,
};
pub use verify::{PlacementChecker, PlacementReport};
