//! `pimalloc` — the FACIL memory-allocation path (paper Fig. 7).
//!
//! [`FacilSystem`] ties the whole stack together:
//!
//! 1. the user supplies a [`MatrixConfig`] (dimensions + dtype);
//! 2. the user-level *mapping selector* picks the MapID
//!    ([`crate::select::select_mapping`]);
//! 3. the OS allocator takes huge pages from [`PhysicalMemory`] and records
//!    (PFN, MapID) in the [`PageTable`];
//! 4. the memory-controller [`Frontend`] gains the selected scheme in one of
//!    its mux slots;
//! 5. the user gets back a contiguous *virtual* address — SoC processors
//!    access the matrix through plain row-major virtual addresses while the
//!    controller applies the PIM-optimized device mapping underneath.

use facil_dram::{AddressMapper, DramAddress, DramSpec, MapFault};
use serde::{Deserialize, Serialize};

use crate::arch::PimArch;
use crate::error::{FacilError, Result};
use crate::frontend::Frontend;
use crate::matrix::MatrixConfig;
use crate::paging::phys::PhysicalMemory;
use crate::paging::table::PageTable;
use crate::scheme::HUGE_PAGE_BITS;
use crate::select::{select_mapping, MapId, MappingDecision};

/// Handle to a matrix placed by [`FacilSystem::pimalloc`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PimAllocation {
    /// Virtual base address (huge-page aligned).
    pub va: u64,
    /// Matrix this allocation holds.
    pub matrix: MatrixConfig,
    /// Selected mapping.
    pub decision: MappingDecision,
    /// Physical base address of each huge page, in VA order.
    pub pages: Vec<u64>,
}

impl PimAllocation {
    /// Virtual address of element (`row`, `col`), honoring the padded
    /// row-major layout `pimalloc` uses.
    ///
    /// # Panics
    ///
    /// Panics if the element is out of bounds.
    pub fn element_va(&self, row: u64, col: u64) -> u64 {
        assert!(row < self.matrix.rows && col < self.matrix.cols, "element out of bounds");
        self.va + row * self.matrix.padded_row_bytes() + col * self.matrix.dtype.bytes()
    }

    /// Total virtual bytes reserved (padded rows, whole huge pages).
    pub fn reserved_bytes(&self) -> u64 {
        self.pages.len() as u64 * (1 << HUGE_PAGE_BITS)
    }

    /// MapID this allocation's pages carry.
    pub fn map_id(&self) -> MapId {
        self.decision.map_id
    }
}

/// The full FACIL memory system: selector + OS paging + controller frontend.
#[derive(Debug)]
pub struct FacilSystem {
    spec: DramSpec,
    arch: PimArch,
    frontend: Frontend,
    page_table: PageTable,
    phys: PhysicalMemory,
    next_va: u64,
}

/// Virtual address space base for pimalloc'd regions (arbitrary, page
/// aligned, away from 0 to catch null-ish bugs).
const VA_BASE: u64 = 0x10_0000_0000;

impl FacilSystem {
    /// Create a system over the given memory spec and PIM architecture with
    /// the default 4 hardware mapping slots.
    pub fn new(spec: DramSpec, arch: PimArch) -> Self {
        Self::with_slots(spec, arch, 4)
    }

    /// Create a system with a specific number of frontend mapping slots.
    pub fn with_slots(spec: DramSpec, arch: PimArch, slots: usize) -> Self {
        let topo = spec.topology;
        FacilSystem {
            frontend: Frontend::new(topo, arch, HUGE_PAGE_BITS, slots),
            page_table: PageTable::new(),
            phys: PhysicalMemory::new(topo.capacity_bytes()),
            next_va: VA_BASE,
            spec,
            arch,
        }
    }

    /// The DRAM spec this system runs on.
    pub fn spec(&self) -> &DramSpec {
        &self.spec
    }

    /// The PIM architecture.
    pub fn arch(&self) -> &PimArch {
        &self.arch
    }

    /// The controller frontend (read-only).
    pub fn frontend(&self) -> &Frontend {
        &self.frontend
    }

    /// The page table (read-only).
    pub fn page_table(&self) -> &PageTable {
        &self.page_table
    }

    /// Free physical bytes.
    pub fn free_bytes(&self) -> u64 {
        self.phys.free_bytes()
    }

    /// Pre-fragment physical memory (for Table I style experiments).
    ///
    /// # Panics
    ///
    /// See [`PhysicalMemory::fragment_to`].
    pub fn fragment_physical(&mut self, used_bytes: u64, fmfi: f64) {
        self.phys.fragment_to(used_bytes, fmfi);
    }

    /// Physical-allocator statistics since construction (or the last
    /// [`FacilSystem::fragment_physical`], which resets them): huge pages
    /// minted directly vs via compaction, and 4 KB frames moved. This is
    /// the fragmentation cost signal consumers like `facil-serve` report
    /// for allocations made under a prepared FMFI state.
    pub fn alloc_stats(&self) -> crate::paging::AllocStats {
        self.phys.stats()
    }

    fn take_va(&mut self, bytes: u64) -> u64 {
        let pages = bytes.div_ceil(1 << HUGE_PAGE_BITS);
        let va = self.next_va;
        self.next_va += pages << HUGE_PAGE_BITS;
        va
    }

    /// Allocate and map a weight matrix with a PIM-optimized mapping
    /// (the paper's `pimalloc`).
    ///
    /// # Errors
    ///
    /// Propagates selector errors, [`FacilError::FrontendFull`] when the
    /// hardware mux cannot host another distinct MapID, and
    /// [`FacilError::OutOfMemory`] from the physical allocator.
    pub fn pimalloc(&mut self, matrix: MatrixConfig) -> Result<PimAllocation> {
        // Step 1-2: user-level mapping selector.
        let decision = select_mapping(&matrix, self.spec.topology, &self.arch, HUGE_PAGE_BITS)?;
        // Step 3: install the scheme in a frontend slot (no-op if present).
        self.frontend.ensure_slot(decision.map_id)?;
        self.map_allocation(matrix, decision)
    }

    /// Allocate and map a weight matrix under a *caller-supplied*
    /// [`MappingDecision`] (e.g. a mapsearch candidate), bypassing the
    /// paper-default selector. The decision's scheme is installed in the
    /// frontend slot for its MapID via [`Frontend::install_scheme`], so two
    /// different schemes cannot share a slot.
    ///
    /// # Errors
    ///
    /// Propagates [`Frontend::install_scheme`] errors and
    /// [`FacilError::OutOfMemory`] from the physical allocator.
    pub fn pimalloc_with(
        &mut self,
        matrix: MatrixConfig,
        decision: MappingDecision,
    ) -> Result<PimAllocation> {
        self.frontend.install_scheme(decision.map_id, &decision.scheme)?;
        self.map_allocation(matrix, decision)
    }

    /// Steps 4-5 of `pimalloc`: huge pages + (PFN, MapID) PTEs.
    fn map_allocation(
        &mut self,
        matrix: MatrixConfig,
        decision: MappingDecision,
    ) -> Result<PimAllocation> {
        let bytes = matrix.padded_bytes();
        let n_pages = bytes.div_ceil(1 << HUGE_PAGE_BITS);
        let va = self.take_va(bytes);
        let mut pages = Vec::with_capacity(n_pages as usize);
        for i in 0..n_pages {
            let page = match self.phys.alloc_huge() {
                Ok(p) => p,
                Err(e) => {
                    // Roll back pages taken so far.
                    for (j, pa) in pages.iter().enumerate() {
                        self.phys.free_huge(*pa);
                        self.page_table.unmap(va + ((j as u64) << HUGE_PAGE_BITS));
                    }
                    return Err(e);
                }
            };
            let page_va = va + (i << HUGE_PAGE_BITS);
            self.page_table.map_huge_pim(page_va, page.pa, decision.map_id);
            pages.push(page.pa);
        }
        Ok(PimAllocation { va, matrix, decision, pages })
    }

    /// Allocate `bytes` of conventionally-mapped huge pages (e.g. the
    /// re-layout scratch buffer of the baseline, or activations).
    ///
    /// # Errors
    ///
    /// [`FacilError::OutOfMemory`] if physical memory is exhausted.
    pub fn alloc_conventional(&mut self, bytes: u64) -> Result<u64> {
        if bytes == 0 {
            return Err(FacilError::InvalidRequest("zero-byte allocation".into()));
        }
        let n_pages = bytes.div_ceil(1 << HUGE_PAGE_BITS);
        let va = self.take_va(bytes);
        for i in 0..n_pages {
            let page = self.phys.alloc_huge()?;
            self.page_table.map_huge(va + (i << HUGE_PAGE_BITS), page.pa);
        }
        Ok(va)
    }

    /// Release a pimalloc'd matrix.
    pub fn free(&mut self, alloc: &PimAllocation) {
        for (i, pa) in alloc.pages.iter().enumerate() {
            self.phys.free_huge(*pa);
            self.page_table.unmap(alloc.va + ((i as u64) << HUGE_PAGE_BITS));
        }
    }

    /// Full VA → DA translation: page table walk, then the frontend mux with
    /// the PTE's MapID. This is the path every SoC memory access takes
    /// (paper Fig. 7(b)/(c)).
    ///
    /// # Errors
    ///
    /// [`FacilError::NotMapped`] for unmapped VAs.
    pub fn translate_va(&self, va: u64) -> Result<DramAddress> {
        let t = self.page_table.translate(va)?;
        self.frontend.translate(t.pa, t.map_id)
    }

    /// A VA-space [`AddressMapper`] for DRAM trace replay.
    pub fn va_mapper(&self) -> VaMapper<'_> {
        VaMapper { system: self }
    }
}

/// Maps *virtual* addresses through the whole FACIL stack (page table +
/// frontend). Useful with [`facil_dram::run_trace`].
#[derive(Debug)]
pub struct VaMapper<'a> {
    system: &'a FacilSystem,
}

impl AddressMapper for VaMapper<'_> {
    /// # Errors
    ///
    /// [`MapFault`] on unmapped virtual addresses (a real access would
    /// fault); callers decide whether that is fatal.
    fn map(&self, va: u64) -> std::result::Result<DramAddress, MapFault> {
        self.system.translate_va(va).map_err(|_| MapFault { addr: va })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::DType;

    fn system() -> FacilSystem {
        let spec = DramSpec::lpddr5_6400(64, 8 << 30); // iPhone-like
        let arch = PimArch::aim(&spec.topology);
        FacilSystem::new(spec, arch)
    }

    #[test]
    fn pimalloc_returns_mapped_region() {
        let mut sys = system();
        let m = MatrixConfig::new(2048, 2048, DType::F16);
        let a = sys.pimalloc(m).unwrap();
        assert_eq!(a.va % (1 << HUGE_PAGE_BITS), 0);
        assert_eq!(a.pages.len() as u64, m.padded_bytes().div_ceil(1 << HUGE_PAGE_BITS));
        // Every VA in the region translates and carries the PIM mapping.
        let t = sys.page_table().translate(a.va).unwrap();
        assert_eq!(t.map_id, Some(a.map_id()));
        sys.translate_va(a.element_va(100, 200)).unwrap();
    }

    #[test]
    fn pim_and_conventional_allocations_coexist() {
        let mut sys = system();
        let a = sys.pimalloc(MatrixConfig::new(1024, 2048, DType::F16)).unwrap();
        let scratch = sys.alloc_conventional(4 << 20).unwrap();
        // Conventional VA maps through the conventional scheme: consecutive
        // transfers interleave channels.
        let c0 = sys.translate_va(scratch).unwrap();
        let c1 = sys.translate_va(scratch + 32).unwrap();
        assert_ne!(c0.channel, c1.channel);
        // PIM VA keeps consecutive transfers in one bank.
        let p0 = sys.translate_va(a.va).unwrap();
        let p1 = sys.translate_va(a.va + 32).unwrap();
        assert_eq!((p0.channel, p0.rank, p0.bank), (p1.channel, p1.rank, p1.bank));
    }

    #[test]
    fn same_mapid_shares_frontend_slot() {
        let mut sys = system();
        sys.pimalloc(MatrixConfig::new(512, 2048, DType::F16)).unwrap();
        sys.pimalloc(MatrixConfig::new(256, 2048, DType::F16)).unwrap();
        assert_eq!(sys.frontend().installed(), 1, "identical MapIDs share one mux slot");
        sys.pimalloc(MatrixConfig::new(256, 4096, DType::F16)).unwrap();
        assert_eq!(sys.frontend().installed(), 2);
    }

    #[test]
    fn pimalloc_with_installs_custom_decision() {
        use crate::select::decision_with_map_id;
        let mut sys = system();
        let m = MatrixConfig::new(64, 2048, DType::F16);
        // A non-default MapID with the bank hash enabled: the selector would
        // never produce this, so it must come in through pimalloc_with.
        let mut decision =
            decision_with_map_id(&m, sys.spec().topology, sys.arch(), 2, HUGE_PAGE_BITS).unwrap();
        decision.scheme = decision.scheme.clone().with_bank_hash();
        let a = sys.pimalloc_with(m, decision.clone()).unwrap();
        assert_eq!(a.decision, decision);
        assert_eq!(sys.frontend().scheme(a.map_id()), Some(&decision.scheme));
        // Every VA translates through the installed custom scheme.
        let want = decision.scheme.map_pa(sys.page_table().translate(a.va).unwrap().pa);
        assert_eq!(sys.translate_va(a.va).unwrap(), want);
        // The same slot now rejects the selector's default scheme for this
        // MapID (different scheme, same slot).
        let plain =
            decision_with_map_id(&m, sys.spec().topology, sys.arch(), 2, HUGE_PAGE_BITS).unwrap();
        assert!(matches!(sys.pimalloc_with(m, plain), Err(FacilError::InvalidMapping(_))));
    }

    #[test]
    fn free_releases_physical_pages() {
        let mut sys = system();
        let before = sys.free_bytes();
        let a = sys.pimalloc(MatrixConfig::new(2048, 2048, DType::F16)).unwrap();
        assert!(sys.free_bytes() < before);
        sys.free(&a);
        assert_eq!(sys.free_bytes(), before);
        assert!(sys.translate_va(a.va).is_err());
    }

    #[test]
    fn element_va_matches_padded_layout() {
        let mut sys = system();
        let m = MatrixConfig::new(16, 3000, DType::F16); // pads to 4096 cols
        let a = sys.pimalloc(m).unwrap();
        assert_eq!(a.element_va(0, 0), a.va);
        assert_eq!(a.element_va(1, 0), a.va + 8192);
        assert_eq!(a.element_va(1, 2), a.va + 8192 + 4);
    }

    #[test]
    fn va_mapper_is_usable_for_traces() {
        let mut sys = system();
        let a = sys.pimalloc(MatrixConfig::new(64, 2048, DType::F16)).unwrap();
        let mapper = sys.va_mapper();
        let d = mapper.map(a.va).unwrap();
        assert!(d.is_valid(&sys.spec().topology));
        assert!(mapper.map(!31u64).is_err(), "unmapped VA faults instead of panicking");
    }

    #[test]
    fn zero_byte_conventional_rejected() {
        let mut sys = system();
        assert!(matches!(sys.alloc_conventional(0), Err(FacilError::InvalidRequest(_))));
    }
}
