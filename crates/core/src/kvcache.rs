//! Paged KV-cache allocation with FACIL placement.
//!
//! The paper places static weight matrices; the KV cache is different — it
//! grows one row (token) per decode step. This module extends `pimalloc` to
//! that case, PagedAttention-style: capacity is reserved in huge-page
//! *slabs*, each slab `pimalloc`'d as a `(slab_tokens x kv_dim)` matrix, and
//! tokens are appended row by row. Because `pimalloc`'s layout is padded
//! row-major, appending a row never disturbs placed rows, and each full
//! slab already satisfies the PIM placement invariants — so attention
//! score/value GEMVs can be offloaded to the PIM (the AttAcc/NeuPIMs-style
//! extension modelled by `facil-sim`).

use serde::Serialize;

use crate::error::Result;
use crate::matrix::{DType, MatrixConfig};
use crate::pimalloc::{FacilSystem, PimAllocation};
use crate::scheme::HUGE_PAGE_BYTES;

/// Which half of the cache a token row belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum KvHalf {
    /// Keys.
    K,
    /// Values.
    V,
}

/// One transformer layer's K and V slab lists.
#[derive(Debug, Clone)]
struct LayerSlabs {
    k: Vec<PimAllocation>,
    v: Vec<PimAllocation>,
}

/// A growing, PIM-placed KV cache for one model.
#[derive(Debug)]
pub struct PagedKvCache {
    layers: u64,
    kv_dim: u64,
    dtype: DType,
    slab_tokens: u64,
    len: u64,
    slabs: Vec<LayerSlabs>,
}

impl PagedKvCache {
    /// Create an empty cache for a model with `layers` layers and
    /// `kv_dim = kv_heads x head_dim` features per token.
    ///
    /// # Panics
    ///
    /// Panics if `kv_dim` rows would exceed one huge page (not the case for
    /// any real model).
    pub fn new(layers: u64, kv_dim: u64, dtype: DType) -> Self {
        let row = MatrixConfig::new(1, kv_dim, dtype).padded_row_bytes();
        assert!(row <= HUGE_PAGE_BYTES, "one KV row must fit a huge page");
        let slab_tokens = HUGE_PAGE_BYTES / row;
        PagedKvCache {
            layers,
            kv_dim,
            dtype,
            slab_tokens,
            len: 0,
            slabs: (0..layers).map(|_| LayerSlabs { k: Vec::new(), v: Vec::new() }).collect(),
        }
    }

    /// Tokens currently cached.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True if no tokens are cached.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tokens the current slabs can hold before the next extension.
    pub fn capacity(&self) -> u64 {
        self.slabs.first().map(|l| l.k.len() as u64 * self.slab_tokens).unwrap_or(0)
    }

    /// Tokens per slab (rows of one huge-page matrix).
    pub fn slab_tokens(&self) -> u64 {
        self.slab_tokens
    }

    /// Physical huge pages currently reserved across all layers and halves.
    pub fn reserved_pages(&self) -> u64 {
        self.slabs
            .iter()
            .map(|l| l.k.iter().chain(&l.v).map(|a| a.pages.len() as u64).sum::<u64>())
            .sum()
    }

    /// Append `n` tokens, extending every layer's K and V slabs as needed.
    ///
    /// # Errors
    ///
    /// Propagates `pimalloc` errors (frontend slots, out of memory). On
    /// error the cache keeps its previous length; slabs already added stay
    /// reserved for the retry.
    pub fn append(&mut self, sys: &mut FacilSystem, n: u64) -> Result<()> {
        let needed = self.len + n;
        while self.capacity() < needed {
            let slab = MatrixConfig::new(self.slab_tokens, self.kv_dim, self.dtype);
            for layer in 0..self.layers as usize {
                if (self.slabs[layer].k.len() as u64) * self.slab_tokens < needed {
                    let k = sys.pimalloc(slab)?;
                    self.slabs[layer].k.push(k);
                    let v = sys.pimalloc(slab)?;
                    self.slabs[layer].v.push(v);
                }
            }
        }
        self.len = needed;
        Ok(())
    }

    /// Virtual address of the first byte of `token`'s row in `layer`'s
    /// K or V cache.
    ///
    /// # Panics
    ///
    /// Panics if the token or layer is out of range.
    pub fn token_va(&self, layer: u64, half: KvHalf, token: u64) -> u64 {
        assert!(token < self.len, "token {token} beyond cache length {}", self.len);
        let slabs = &self.slabs[layer as usize];
        let list = match half {
            KvHalf::K => &slabs.k,
            KvHalf::V => &slabs.v,
        };
        let slab = &list[(token / self.slab_tokens) as usize];
        slab.element_va(token % self.slab_tokens, 0)
    }

    /// Release every slab back to the system.
    pub fn free(&mut self, sys: &mut FacilSystem) {
        for layer in &self.slabs {
            for a in layer.k.iter().chain(&layer.v) {
                sys.free(a);
            }
        }
        for layer in &mut self.slabs {
            layer.k.clear();
            layer.v.clear();
        }
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::PimArch;
    use facil_dram::DramSpec;

    fn system() -> FacilSystem {
        let spec = DramSpec::lpddr5_6400(64, 8 << 30);
        let arch = PimArch::aim(&spec.topology);
        FacilSystem::new(spec, arch)
    }

    #[test]
    fn grows_in_slab_granularity() {
        let mut sys = system();
        // Llama-like: kv_dim 1024 fp16 -> 2 KB rows -> 1024 tokens/slab.
        let mut kv = PagedKvCache::new(2, 1024, DType::F16);
        assert_eq!(kv.slab_tokens(), 1024);
        assert_eq!(kv.capacity(), 0);
        kv.append(&mut sys, 1).unwrap();
        assert_eq!(kv.len(), 1);
        assert_eq!(kv.capacity(), 1024);
        // 2 layers x (K+V) x 1 slab of one page each.
        assert_eq!(kv.reserved_pages(), 4);
        // No new slabs until the first is full.
        kv.append(&mut sys, 1023).unwrap();
        assert_eq!(kv.reserved_pages(), 4);
        kv.append(&mut sys, 1).unwrap();
        assert_eq!(kv.reserved_pages(), 8);
        assert_eq!(kv.len(), 1025);
    }

    #[test]
    fn token_rows_are_pim_placed_and_stable() {
        let mut sys = system();
        let mut kv = PagedKvCache::new(1, 1024, DType::F16);
        kv.append(&mut sys, 10).unwrap();
        let va3 = kv.token_va(0, KvHalf::K, 3);
        // The row translates through a PIM mapping (single bank per chunk).
        let a = sys.translate_va(va3).unwrap();
        let b = sys.translate_va(va3 + 32).unwrap();
        assert_eq!((a.channel, a.rank, a.bank, a.row), (b.channel, b.rank, b.bank, b.row));
        // Growing the cache never moves existing tokens.
        kv.append(&mut sys, 5000).unwrap();
        assert_eq!(kv.token_va(0, KvHalf::K, 3), va3);
        // K and V are distinct allocations.
        assert_ne!(kv.token_va(0, KvHalf::K, 3), kv.token_va(0, KvHalf::V, 3));
    }

    #[test]
    fn free_returns_all_pages() {
        let mut sys = system();
        let before = sys.free_bytes();
        let mut kv = PagedKvCache::new(4, 1024, DType::F16);
        kv.append(&mut sys, 3000).unwrap();
        assert!(sys.free_bytes() < before);
        kv.free(&mut sys);
        assert_eq!(sys.free_bytes(), before);
        assert!(kv.is_empty());
    }

    #[test]
    #[should_panic(expected = "beyond cache length")]
    fn out_of_range_token_panics() {
        let mut sys = system();
        let mut kv = PagedKvCache::new(1, 1024, DType::F16);
        kv.append(&mut sys, 2).unwrap();
        kv.token_va(0, KvHalf::K, 2);
    }

    #[test]
    fn oom_preserves_length() {
        // Tiny memory: 8 MB.
        let spec = DramSpec::lpddr5_6400(16, 8 << 20);
        let arch = PimArch::aim(&spec.topology);
        let mut sys = FacilSystem::new(spec, arch);
        let mut kv = PagedKvCache::new(4, 1024, DType::F16);
        // 4 layers x 2 halves x 2 MB = 16 MB for the first slab set, but
        // only 8 MB exist: allocation must fail.
        let err = kv.append(&mut sys, 1);
        assert!(err.is_err());
        assert_eq!(kv.len(), 0);
    }
}
