//! Inference phases (prefill / decode) as operation lists.
//!
//! A prefill over `p` tokens runs every linear as a GEMM with batch `p`;
//! each decode step runs them as GEMVs (batch 1) plus attention over the
//! KV cache (paper Section II-A, Fig. 1).

use serde::Serialize;

use crate::model::{LinearOp, ModelConfig};

/// One schedulable operation of a phase.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum PhaseOp {
    /// A linear projection with batch `m` over weight `op`, `instances`
    /// identical instances (one per layer).
    Linear {
        /// The weight involved.
        op: LinearOp,
        /// Batch (sequence) dimension.
        m: u64,
        /// Number of identical instances (layers).
        instances: u64,
    },
    /// Attention score/value computation: memory traffic over the KV cache.
    Attention {
        /// Total bytes read from the KV cache.
        read_bytes: u64,
        /// Total bytes appended to the KV cache.
        write_bytes: u64,
    },
    /// Element-wise epilogue traffic (norms, residuals, activations).
    Elementwise {
        /// Total bytes streamed.
        bytes: u64,
    },
}

/// The operation list of one phase.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Phase {
    /// "prefill" or "decode-step".
    pub label: &'static str,
    /// Operations, in no particular order (they are summed, not scheduled).
    pub ops: Vec<PhaseOp>,
}

impl Phase {
    /// The prefill phase: every linear as a GEMM with batch `p`, attention
    /// over the freshly-built KV cache, element-wise traffic for `p` tokens.
    ///
    /// # Panics
    ///
    /// Panics if `p == 0`.
    pub fn prefill(model: &ModelConfig, p: u64) -> Phase {
        assert!(p > 0, "prefill length must be positive");
        let mut ops: Vec<PhaseOp> = model
            .block_linears()
            .into_iter()
            .map(|op| PhaseOp::Linear { op, m: p, instances: model.layers })
            .collect();
        // lm_head runs only for the last position during prefill.
        ops.push(PhaseOp::Linear { op: model.lm_head(), m: 1, instances: 1 });
        // Causal attention during prefill: ~p(p+1)/2 KV reads.
        let kv_pairs = p * (p + 1) / 2;
        ops.push(PhaseOp::Attention {
            read_bytes: model.kv_read_bytes(1) * kv_pairs,
            write_bytes: model.kv_write_bytes_per_token() * p,
        });
        ops.push(PhaseOp::Elementwise { bytes: model.elementwise_bytes_per_token() * p });
        Phase { label: "prefill", ops }
    }

    /// One decode step at context length `ctx` (tokens already in the KV
    /// cache): every linear as a GEMV, attention over `ctx` cached tokens.
    pub fn decode_step(model: &ModelConfig, ctx: u64) -> Phase {
        let mut ops: Vec<PhaseOp> = model
            .block_linears()
            .into_iter()
            .map(|op| PhaseOp::Linear { op, m: 1, instances: model.layers })
            .collect();
        ops.push(PhaseOp::Linear { op: model.lm_head(), m: 1, instances: 1 });
        ops.push(PhaseOp::Attention {
            read_bytes: model.kv_read_bytes(ctx),
            write_bytes: model.kv_write_bytes_per_token(),
        });
        ops.push(PhaseOp::Elementwise { bytes: model.elementwise_bytes_per_token() });
        Phase { label: "decode-step", ops }
    }

    /// Total linear weight bytes touched by this phase (each instance reads
    /// its weight once).
    pub fn linear_weight_bytes(&self, elem_bytes: u64) -> u64 {
        self.ops
            .iter()
            .map(|o| match o {
                PhaseOp::Linear { op, instances, .. } => op.weight_bytes(elem_bytes) * instances,
                _ => 0,
            })
            .sum()
    }

    /// Number of linear kernel launches in this phase.
    pub fn linear_launches(&self) -> u64 {
        self.ops
            .iter()
            .map(|o| match o {
                PhaseOp::Linear { instances, .. } => *instances,
                _ => 0,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_step_reads_every_weight_once() {
        let m = ModelConfig::llama3_8b();
        let phase = Phase::decode_step(&m, 64);
        assert_eq!(phase.linear_weight_bytes(m.elem_bytes), m.linear_weight_bytes());
    }

    #[test]
    fn prefill_launch_count() {
        let m = ModelConfig::llama3_8b();
        let phase = Phase::prefill(&m, 16);
        // 7 linears x 32 layers + lm_head.
        assert_eq!(phase.linear_launches(), 7 * 32 + 1);
    }

    #[test]
    fn prefill_attention_is_quadratic() {
        let m = ModelConfig::phi_1_5();
        let read = |p: u64| {
            Phase::prefill(&m, p)
                .ops
                .iter()
                .find_map(|o| match o {
                    PhaseOp::Attention { read_bytes, .. } => Some(*read_bytes),
                    _ => None,
                })
                .unwrap()
        };
        let r32 = read(32);
        let r64 = read(64);
        assert!(r64 > 3 * r32 && r64 < 5 * r32, "causal attention ~ p^2: {r32} -> {r64}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_prefill_panics() {
        Phase::prefill(&ModelConfig::phi_1_5(), 0);
    }

    #[test]
    fn decode_attention_grows_with_context() {
        let m = ModelConfig::opt_6_7b();
        let kv = |ctx: u64| {
            Phase::decode_step(&m, ctx)
                .ops
                .iter()
                .find_map(|o| match o {
                    PhaseOp::Attention { read_bytes, .. } => Some(*read_bytes),
                    _ => None,
                })
                .unwrap()
        };
        assert_eq!(kv(256), 2 * kv(128));
    }
}
