//! Transformer model configurations for the three LLMs of Table II.

use serde::Serialize;

/// One linear (fully-connected) weight of a decoder block.
///
/// GEMV/GEMM convention: the weight is `out_features x in_features`, and a
/// phase with sequence dimension `m` performs `[m x in] . W^T -> [m x out]`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize)]
pub struct LinearOp {
    /// Projection name ("q_proj", "fc1", "lm_head", …).
    pub name: &'static str,
    /// Output features (matrix rows).
    pub out_features: u64,
    /// Input features (matrix columns).
    pub in_features: u64,
}

impl LinearOp {
    /// Weight bytes at `elem_bytes` per element.
    pub fn weight_bytes(&self, elem_bytes: u64) -> u64 {
        self.out_features * self.in_features * elem_bytes
    }
}

/// Configuration of a decoder-only transformer LLM.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ModelConfig {
    /// Model name ("llama3-8b", "opt-6.7b", "phi-1.5").
    pub name: &'static str,
    /// Hidden (embedding) dimension.
    pub hidden: u64,
    /// Feed-forward intermediate dimension.
    pub intermediate: u64,
    /// Decoder blocks.
    pub layers: u64,
    /// Attention heads.
    pub heads: u64,
    /// Key/value heads (GQA; == heads without GQA).
    pub kv_heads: u64,
    /// Vocabulary size.
    pub vocab: u64,
    /// Gated FFN (SwiGLU: gate+up+down) vs classic 2-matrix FFN.
    pub gated_ffn: bool,
    /// Weight element size in bytes (2 = fp16, the paper's precision).
    pub elem_bytes: u64,
}

impl ModelConfig {
    /// Meta Llama3-8B (Jetson, MacBook in the paper).
    pub fn llama3_8b() -> Self {
        ModelConfig {
            name: "llama3-8b",
            hidden: 4096,
            intermediate: 14336,
            layers: 32,
            heads: 32,
            kv_heads: 8,
            vocab: 128256,
            gated_ffn: true,
            elem_bytes: 2,
        }
    }

    /// Meta OPT-6.7B (IdeaPad in the paper).
    pub fn opt_6_7b() -> Self {
        ModelConfig {
            name: "opt-6.7b",
            hidden: 4096,
            intermediate: 16384,
            layers: 32,
            heads: 32,
            kv_heads: 32,
            vocab: 50272,
            gated_ffn: false,
            elem_bytes: 2,
        }
    }

    /// Microsoft Phi-1.5 (iPhone in the paper).
    pub fn phi_1_5() -> Self {
        ModelConfig {
            name: "phi-1.5",
            hidden: 2048,
            intermediate: 8192,
            layers: 24,
            heads: 32,
            kv_heads: 32,
            vocab: 51200,
            gated_ffn: false,
            elem_bytes: 2,
        }
    }

    /// TinyLlama-1.1B (not in the paper; common on-device model).
    pub fn tinyllama_1_1b() -> Self {
        ModelConfig {
            name: "tinyllama-1.1b",
            hidden: 2048,
            intermediate: 5632,
            layers: 22,
            heads: 32,
            kv_heads: 4,
            vocab: 32000,
            gated_ffn: true,
            elem_bytes: 2,
        }
    }

    /// Qwen2-1.5B (not in the paper; common on-device model).
    pub fn qwen2_1_5b() -> Self {
        ModelConfig {
            name: "qwen2-1.5b",
            hidden: 1536,
            intermediate: 8960,
            layers: 28,
            heads: 12,
            kv_heads: 2,
            vocab: 151936,
            gated_ffn: true,
            elem_bytes: 2,
        }
    }

    /// Gemma-2B (not in the paper; common on-device model).
    pub fn gemma_2b() -> Self {
        ModelConfig {
            name: "gemma-2b",
            hidden: 2048,
            intermediate: 16384,
            layers: 18,
            heads: 8,
            kv_heads: 1,
            vocab: 256000,
            gated_ffn: true,
            elem_bytes: 2,
        }
    }

    /// Scaled-down test model for byte-accurate functional-fidelity runs
    /// (`facil-fidelity`): phi-style block structure at the smallest
    /// dimensions the AiM chunk width allows (a 1024-element hidden state is
    /// exactly one 2 KB fp16 chunk row). Not a paper model, and deliberately
    /// excluded from [`Self::all`] so the timing sweeps never pick it up.
    pub fn tiny_fidelity() -> Self {
        ModelConfig {
            name: "tiny-fidelity",
            hidden: 1024,
            intermediate: 2048,
            layers: 2,
            heads: 4,
            kv_heads: 4,
            vocab: 256,
            gated_ffn: false,
            elem_bytes: 2,
        }
    }

    /// Every built-in model.
    pub fn all() -> Vec<ModelConfig> {
        vec![
            Self::llama3_8b(),
            Self::opt_6_7b(),
            Self::phi_1_5(),
            Self::tinyllama_1_1b(),
            Self::qwen2_1_5b(),
            Self::gemma_2b(),
        ]
    }

    /// Look up a model by its Table II name.
    ///
    /// # Panics
    ///
    /// Panics on an unknown name.
    pub fn by_name(name: &str) -> Self {
        match name {
            "llama3-8b" => Self::llama3_8b(),
            "opt-6.7b" => Self::opt_6_7b(),
            "phi-1.5" => Self::phi_1_5(),
            "tinyllama-1.1b" => Self::tinyllama_1_1b(),
            "qwen2-1.5b" => Self::qwen2_1_5b(),
            "gemma-2b" => Self::gemma_2b(),
            "tiny-fidelity" => Self::tiny_fidelity(),
            other => panic!("unknown model {other:?}"),
        }
    }

    /// Head dimension.
    pub fn head_dim(&self) -> u64 {
        self.hidden / self.heads
    }

    /// The linear projections of one decoder block, in execution order.
    pub fn block_linears(&self) -> Vec<LinearOp> {
        let kv_dim = self.kv_heads * self.head_dim();
        let mut ops = vec![
            LinearOp { name: "q_proj", out_features: self.hidden, in_features: self.hidden },
            LinearOp { name: "k_proj", out_features: kv_dim, in_features: self.hidden },
            LinearOp { name: "v_proj", out_features: kv_dim, in_features: self.hidden },
            LinearOp { name: "o_proj", out_features: self.hidden, in_features: self.hidden },
        ];
        if self.gated_ffn {
            ops.push(LinearOp {
                name: "gate_proj",
                out_features: self.intermediate,
                in_features: self.hidden,
            });
            ops.push(LinearOp {
                name: "up_proj",
                out_features: self.intermediate,
                in_features: self.hidden,
            });
            ops.push(LinearOp {
                name: "down_proj",
                out_features: self.hidden,
                in_features: self.intermediate,
            });
        } else {
            ops.push(LinearOp {
                name: "fc1",
                out_features: self.intermediate,
                in_features: self.hidden,
            });
            ops.push(LinearOp {
                name: "fc2",
                out_features: self.hidden,
                in_features: self.intermediate,
            });
        }
        ops
    }

    /// The output head (vocabulary projection).
    pub fn lm_head(&self) -> LinearOp {
        LinearOp { name: "lm_head", out_features: self.vocab, in_features: self.hidden }
    }

    /// Every linear weight in the model: `layers x block_linears + lm_head`,
    /// as `(op, instances)` pairs.
    pub fn all_linears(&self) -> Vec<(LinearOp, u64)> {
        let mut v: Vec<(LinearOp, u64)> =
            self.block_linears().into_iter().map(|op| (op, self.layers)).collect();
        v.push((self.lm_head(), 1));
        v
    }

    /// Total bytes of linear weights (what PIM streams per decode token and
    /// what the baseline must re-layout).
    pub fn linear_weight_bytes(&self) -> u64 {
        self.all_linears().iter().map(|(op, n)| op.weight_bytes(self.elem_bytes) * n).sum()
    }

    /// Approximate total parameter count including the input embedding.
    pub fn params(&self) -> u64 {
        self.linear_weight_bytes() / self.elem_bytes + self.vocab * self.hidden
    }

    /// KV-cache bytes *read* per generated token at context length `ctx`
    /// (keys + values, all layers).
    pub fn kv_read_bytes(&self, ctx: u64) -> u64 {
        2 * ctx * self.kv_heads * self.head_dim() * self.elem_bytes * self.layers
    }

    /// KV-cache bytes *written* per processed token (all layers).
    pub fn kv_write_bytes_per_token(&self) -> u64 {
        2 * self.kv_heads * self.head_dim() * self.elem_bytes * self.layers
    }

    /// Element-wise / normalization / residual traffic per token, all
    /// layers: a calibrated ~8 hidden-sized streams per block.
    pub fn elementwise_bytes_per_token(&self) -> u64 {
        8 * self.hidden * self.elem_bytes * self.layers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn llama3_param_count_is_about_8b() {
        let m = ModelConfig::llama3_8b();
        let p = m.params() as f64;
        assert!((7.8e9..8.3e9).contains(&p), "params {p:.3e}");
        // fp16 weights ~ 16 GB.
        let gb = m.linear_weight_bytes() as f64 / 1e9;
        assert!((13.0..16.5).contains(&gb), "linear weights {gb} GB");
    }

    #[test]
    fn opt_param_count_is_about_6_7b() {
        let p = ModelConfig::opt_6_7b().params() as f64;
        assert!((6.2e9..7.1e9).contains(&p), "params {p:.3e}");
    }

    #[test]
    fn phi_param_count_is_about_1_4b() {
        let p = ModelConfig::phi_1_5().params() as f64;
        assert!((1.2e9..1.7e9).contains(&p), "params {p:.3e}");
    }

    #[test]
    fn llama_block_has_seven_linears_with_gqa_kv() {
        let m = ModelConfig::llama3_8b();
        let ops = m.block_linears();
        assert_eq!(ops.len(), 7);
        let k = ops.iter().find(|o| o.name == "k_proj").unwrap();
        assert_eq!(k.out_features, 1024, "8 KV heads x 128 head dim");
    }

    #[test]
    fn opt_block_has_six_linears() {
        assert_eq!(ModelConfig::opt_6_7b().block_linears().len(), 6);
    }

    #[test]
    fn by_name_roundtrip() {
        for m in ModelConfig::all() {
            assert_eq!(ModelConfig::by_name(m.name), m);
        }
    }

    #[test]
    fn extra_model_param_counts() {
        let tl = ModelConfig::tinyllama_1_1b().params() as f64;
        assert!((0.95e9..1.3e9).contains(&tl), "tinyllama {tl:.3e}");
        let qw = ModelConfig::qwen2_1_5b().params() as f64;
        assert!((1.2e9..1.9e9).contains(&qw), "qwen2 {qw:.3e}");
        // Gemma ties its embedding and lm_head; our op graph counts the
        // vocabulary projection as a separate weight (it is still a GEMV
        // the device must run), so the count lands above the marketing 2B.
        let ge = ModelConfig::gemma_2b().params() as f64;
        assert!((2.4e9..3.2e9).contains(&ge), "gemma {ge:.3e}");
    }

    #[test]
    fn head_dims_are_consistent() {
        for m in ModelConfig::all() {
            assert_eq!(m.hidden % m.heads, 0, "{}", m.name);
            assert!(m.kv_heads <= m.heads, "{}", m.name);
            assert!(m.head_dim().is_power_of_two(), "{}", m.name);
        }
    }

    #[test]
    #[should_panic(expected = "unknown model")]
    fn unknown_model_panics() {
        ModelConfig::by_name("gpt-5");
    }

    #[test]
    fn kv_traffic_scales_with_context() {
        let m = ModelConfig::llama3_8b();
        assert_eq!(m.kv_read_bytes(128), 2 * m.kv_read_bytes(64));
        assert!(m.kv_write_bytes_per_token() > 0);
        assert!(m.elementwise_bytes_per_token() > 0);
    }

    #[test]
    fn tiny_fidelity_is_chunk_aligned_and_hidden_from_sweeps() {
        let m = ModelConfig::tiny_fidelity();
        assert_eq!(ModelConfig::by_name("tiny-fidelity"), m);
        // Every linear must be at least one AiM chunk row wide (1024 fp16
        // elements) so the functional replay can place it.
        for (op, _) in m.all_linears() {
            assert!(op.in_features >= 1024, "{} is narrower than a chunk row", op.name);
        }
        assert!(!ModelConfig::all().contains(&m), "test model must not join the paper sweeps");
    }

    #[test]
    fn all_linears_counts_layers() {
        let m = ModelConfig::phi_1_5();
        let total: u64 = m.all_linears().iter().map(|(_, n)| *n).sum();
        assert_eq!(total, 24 * 6 + 1);
    }
}
