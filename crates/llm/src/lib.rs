//! # facil-llm
//!
//! LLM workload model for the FACIL (HPCA 2025) reproduction:
//!
//! * [`model::ModelConfig`] — the three Table II models (Llama3-8B,
//!   OPT-6.7B, Phi-1.5) and their linear-layer graphs;
//! * [`phase::Phase`] — prefill (GEMM) and decode-step (GEMV) operation
//!   lists, including KV-cache and element-wise traffic.

#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod model;
pub mod phase;

pub use model::{LinearOp, ModelConfig};
pub use phase::{Phase, PhaseOp};
