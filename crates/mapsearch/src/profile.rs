//! Workload profiles: what the mapping search optimizes *for*.
//!
//! A [`WorkloadProfile`] reduces a serving workload to the facts the cost
//! model consumes: which weight tensors exist (shape, instance count), how
//! the work splits between GEMV (decode) and GEMM (prefill) passes, and —
//! when available — measured [`DramStats`] from a previous run of the same
//! platform, whose row-buffer hit rate calibrates the analytic row-service
//! cost.

use facil_core::MatrixConfig;
use facil_dram::DramStats;
use facil_workloads::Dataset;
use serde::{Deserialize, Serialize};

/// One weight tensor of the workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TensorSpec {
    /// Human-readable tensor name (`"q_proj"`, `"moe-expert"`, …).
    pub name: String,
    /// Shape and dtype.
    pub matrix: MatrixConfig,
    /// How many identical instances exist (e.g. one per decoder layer).
    pub instances: u64,
}

impl TensorSpec {
    /// A single-instance tensor.
    pub fn new(name: impl Into<String>, matrix: MatrixConfig) -> Self {
        TensorSpec { name: name.into(), matrix, instances: 1 }
    }

    /// Set the instance count.
    #[must_use]
    pub fn with_instances(mut self, instances: u64) -> Self {
        self.instances = instances.max(1);
        self
    }
}

/// The workload summary the search scores candidates against.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Profile label (dataset or scenario name).
    pub name: String,
    /// Weight tensors to place.
    pub tensors: Vec<TensorSpec>,
    /// Fraction of weight-streaming passes that are GEMV (decode) passes.
    /// Normalized so `gemv_weight + gemm_weight == 1`.
    pub gemv_weight: f64,
    /// Fraction of weight-streaming passes that are GEMM (prefill) passes.
    pub gemm_weight: f64,
    /// Mean tokens per query that re-stream every weight (decode steps plus
    /// prefill positions) — the access-reuse summary: weights have no
    /// intra-pass reuse, so this is how often each weight byte is touched.
    pub weight_passes_per_query: f64,
    /// Measured DRAM counters from a previous run, if any; the row-buffer
    /// hit rate calibrates the analytic cost model.
    pub measured: Option<DramStats>,
}

impl WorkloadProfile {
    /// A decode-only profile (pure GEMV, the paper's PIM sweet spot).
    pub fn decode_only(name: impl Into<String>, tensors: Vec<TensorSpec>) -> Self {
        WorkloadProfile {
            name: name.into(),
            tensors,
            gemv_weight: 1.0,
            gemm_weight: 0.0,
            weight_passes_per_query: 1.0,
            measured: None,
        }
    }

    /// Derive the GEMV/GEMM mix from a query-length dataset: every decode
    /// token is one GEMV pass over the weights, every prefill is one GEMM
    /// pass (the SoC streams each weight once per prefill chunk).
    pub fn from_dataset(
        name: impl Into<String>,
        dataset: &Dataset,
        tensors: Vec<TensorSpec>,
    ) -> Self {
        let decode = dataset.geomean_decode().max(0.0);
        // One GEMM pass per query regardless of prefill length (the weight
        // is streamed once per prefill), so the pass mix is decode : 1.
        let passes = decode + 1.0;
        WorkloadProfile {
            name: name.into(),
            tensors,
            gemv_weight: decode / passes,
            gemm_weight: 1.0 / passes,
            weight_passes_per_query: passes,
            measured: None,
        }
    }

    /// Override the GEMV/GEMM mix (normalized; both must be non-negative
    /// and not both zero).
    ///
    /// # Panics
    ///
    /// Panics on negative weights or a zero sum.
    #[must_use]
    pub fn with_mix(mut self, gemv: f64, gemm: f64) -> Self {
        assert!(gemv >= 0.0 && gemm >= 0.0, "weights must be non-negative");
        let sum = gemv + gemm;
        assert!(sum > 0.0, "at least one weight must be positive");
        self.gemv_weight = gemv / sum;
        self.gemm_weight = gemm / sum;
        self
    }

    /// Attach measured DRAM counters for cost-model calibration.
    #[must_use]
    pub fn with_measured(mut self, stats: DramStats) -> Self {
        self.measured = Some(stats);
        self
    }

    /// Row-buffer hit rate of the measured counters, if any column access
    /// was recorded. Relies on [`DramStats::hit_rate`] returning `0.0` (not
    /// NaN) for empty profiling runs; `None` here means "no calibration
    /// data", which the cost model treats as the closed-page worst case.
    pub fn measured_hit_rate(&self) -> Option<f64> {
        let m = self.measured.as_ref()?;
        if m.column_accesses() == 0 {
            return None;
        }
        Some(m.hit_rate())
    }

    /// Total padded bytes across all tensor instances.
    pub fn footprint_bytes(&self) -> u64 {
        self.tensors.iter().map(|t| t.matrix.padded_bytes() * t.instances).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use facil_core::DType;

    fn tensors() -> Vec<TensorSpec> {
        vec![
            TensorSpec::new("qkv", MatrixConfig::new(2048, 2048, DType::F16)).with_instances(24),
            TensorSpec::new("ffn", MatrixConfig::new(8192, 2048, DType::F16)),
        ]
    }

    #[test]
    fn dataset_mix_is_decode_heavy_and_normalized() {
        let d = Dataset::alpaca_like(7, 500);
        let p = WorkloadProfile::from_dataset("alpaca", &d, tensors());
        assert!((p.gemv_weight + p.gemm_weight - 1.0).abs() < 1e-12);
        assert!(p.gemv_weight > 0.9, "~128 decode tokens per prefill: {}", p.gemv_weight);
        assert!(p.weight_passes_per_query > 50.0);
    }

    #[test]
    fn mix_override_normalizes() {
        let p = WorkloadProfile::decode_only("d", tensors()).with_mix(3.0, 1.0);
        assert!((p.gemv_weight - 0.75).abs() < 1e-12);
        assert!((p.gemm_weight - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_mix_rejected() {
        let _ = WorkloadProfile::decode_only("d", vec![]).with_mix(0.0, 0.0);
    }

    #[test]
    fn hit_rate_calibration_requires_accesses() {
        let p = WorkloadProfile::decode_only("d", tensors());
        assert_eq!(p.measured_hit_rate(), None, "no measurement attached");
        // An empty profiling run (all counters zero) must not calibrate
        // with a bogus 0.0-as-signal: it reads as "no data".
        let empty = p.clone().with_measured(DramStats::default());
        assert_eq!(empty.measured_hit_rate(), None);
        let real = p.with_measured(DramStats { row_hits: 3, row_misses: 1, ..Default::default() });
        assert_eq!(real.measured_hit_rate(), Some(0.75));
    }

    #[test]
    fn footprint_counts_instances() {
        let p = WorkloadProfile::decode_only("d", tensors());
        let qkv = MatrixConfig::new(2048, 2048, DType::F16).padded_bytes() * 24;
        let ffn = MatrixConfig::new(8192, 2048, DType::F16).padded_bytes();
        assert_eq!(p.footprint_bytes(), qkv + ffn);
    }
}
