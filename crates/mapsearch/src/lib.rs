//! # facil-mapsearch
//!
//! Automated DRAM mapping search: instead of trusting the paper's
//! closed-form `select_mapping` (Fig. 9), search the bit-segment
//! permutation space of [`MappingScheme`](facil_core::MappingScheme)
//! against a *workload profile* and keep the paper's pick only when
//! nothing measurably beats it.
//!
//! The RACAM line of work argues that address mappings should be derived
//! from observed reuse patterns rather than analytic rules; FACIL's MapID
//! family makes that search tractable on-device because the candidate
//! space is tiny (MapID x PU-bit order x bank hash) and every candidate is
//! geometry-validated at construction. The pipeline:
//!
//! 1. [`WorkloadProfile`] — GEMV/GEMM mix and tensor shapes derived from
//!    `facil-workloads` datasets, optionally calibrated with measured
//!    [`DramStats`](facil_dram::DramStats) from earlier runs;
//! 2. [`CandidateSpace`] — enumerates every legal PIM-optimized scheme for
//!    a topology (bounded by the in-page row bits, which the paper's
//!    `max_map_id_bound` upper-bounds loosely);
//! 3. [`CostModel`] — a fast analytic makespan model (per-bank row service
//!    vs per-channel bus occupancy over address windows) used to rank all
//!    candidates, cross-checked by real [`DramSystem`](facil_dram::DramSystem)
//!    runs on sampled traces for the top few;
//! 4. [`search_workload`] — exhaustive search for small spaces,
//!    hill-climbing with seeded restarts and branch-and-bound pruning for
//!    large ones; the paper's pick is the incumbent and is only displaced
//!    by a candidate that beats it by more than an epsilon on *measured*
//!    cycles, so the four baseline platform configurations reproduce the
//!    paper's selection exactly;
//! 5. [`SearchReport`] — best MapID per matrix, score trace and
//!    evaluated-candidate counts, emitted through the existing
//!    [`RunManifest`](facil_telemetry::RunManifest) JSONL plumbing, and
//!    convertible into a mapping *selector* for
//!    `facil_sim::InferenceSim::with_selector` (the
//!    `SearchReport -> MappingDecision` adapter).
//!
//! Everything is deterministic under a seed: candidate enumeration order
//! is fixed, the analytic model is pure arithmetic, window sampling is
//! stride-based (no RNG), and parallel candidate evaluation goes through
//! `facil_telemetry::pool`, which reassembles results in input order
//! regardless of the worker count.

#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod candidates;
pub mod cost;
pub mod profile;
pub mod report;
pub mod search;

pub use candidates::{Candidate, CandidateSpace, PuOrder};
pub use cost::{AnalyticCost, CostModel, MeasuredCost, SampleConfig};
pub use profile::{TensorSpec, WorkloadProfile};
pub use report::SearchReport;
pub use search::{
    search_matrix, search_workload, CandidateOutcome, MatrixSearchResult, SearchConfig,
    SearchStrategy, TracePoint,
};
