//! Search strategies over the candidate space.
//!
//! The driver ranks the whole space with the analytic model, replays the
//! top few candidates (plus the paper's pick) through the cycle-accurate
//! scheduler, and applies an **epsilon incumbent rule**: the paper's
//! selection is only displaced by a candidate that beats it on *measured*
//! cycles by more than [`SearchConfig::improvement_threshold`]. Closed-form
//! and searched picks therefore agree everywhere the paper's rule is
//! already (near-)optimal — reproducing Fig. 13's four platform baselines —
//! while genuinely better placements (e.g. a matrix too small to fill the
//! paper-MapID window) still win.
//!
//! Two analytic-ranking strategies exist:
//!
//! * [`SearchStrategy::Exhaustive`] scores every candidate (the space on
//!   real platforms is at most a few dozen entries);
//! * [`SearchStrategy::HillClimb`] walks MapID / PU-order / hash neighbors
//!   from seeded restarts, memoizing scores and pruning restarts whose
//!   [`CostModel::lower_bound`] cannot beat the incumbent — for the large
//!   spaces future multi-level topologies would enumerate.
//!
//! Everything is deterministic for a fixed seed: enumeration order is
//! fixed, window sampling is stride-based, restarts come from a seeded
//! [`XorShift64Star`], and parallel evaluation uses the input-order
//! [`pool`] helpers, so the result is byte-identical
//! across worker counts (including under `FACIL_THREADS`).

use crate::candidates::{Candidate, CandidateSpace};
use crate::cost::{AnalyticCost, CostModel, MeasuredCost, SampleConfig};
use crate::profile::{TensorSpec, WorkloadProfile};
use facil_core::{select_mapping, MatrixConfig, PimArch, Result, HUGE_PAGE_BITS};
use facil_dram::DramSpec;
use facil_sim::XorShift64Star;
use facil_telemetry::pool;
use serde::{Deserialize, Serialize};

/// Which analytic-ranking strategy to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SearchStrategy {
    /// Exhaustive below [`SearchConfig::exhaustive_threshold`] candidates,
    /// hill-climbing above.
    Auto,
    /// Score every candidate.
    Exhaustive,
    /// Seeded-restart hill-climbing with branch-and-bound pruning.
    HillClimb,
}

/// Tunables for one search run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SearchConfig {
    /// Strategy selection.
    pub strategy: SearchStrategy,
    /// Seed for hill-climb restart selection (exhaustive runs ignore it,
    /// but it is still recorded in reports for provenance).
    pub seed: u64,
    /// `Auto` switches to hill-climbing above this space size.
    pub exhaustive_threshold: usize,
    /// Hill-climb restarts (the first always starts at the paper's pick).
    pub restarts: usize,
    /// Max hill-climb steps per restart.
    pub max_steps: usize,
    /// How many analytically top-ranked candidates get a cycle-accurate
    /// replay (the paper's pick is always replayed in addition).
    pub sim_top_k: usize,
    /// Relative measured-score margin a challenger must win by to displace
    /// the paper's pick (the epsilon incumbent rule).
    pub improvement_threshold: f64,
    /// Include bank-hash variants in the space. Off by default: hashing
    /// spreads row conflicts for *any* mapping in the cycle-accurate
    /// replay, so it wins measured comparisons for reasons orthogonal to
    /// placement — drowning the MapID/PU-order signal the Fig. 13
    /// baselines isolate. Turn it on for dedicated hash ablations.
    pub include_bank_hash: bool,
    /// Worker count for parallel evaluation; `None` uses the global
    /// [`pool::parallelism`] (which honors `FACIL_THREADS`). Results are
    /// identical either way — this only affects wall-clock time.
    pub workers: Option<usize>,
    /// OS page size (log2 bytes) the schemes must fit in.
    pub page_bits: u32,
    /// Window sampling for both evaluators.
    pub sample: SampleConfig,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            strategy: SearchStrategy::Auto,
            seed: 0xFAC11_u64,
            exhaustive_threshold: 64,
            restarts: 4,
            max_steps: 32,
            sim_top_k: 3,
            improvement_threshold: 0.05,
            include_bank_hash: false,
            workers: None,
            page_bits: HUGE_PAGE_BITS,
            sample: SampleConfig::default(),
        }
    }
}

/// One improvement of the global analytic best, for the score trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TracePoint {
    /// Candidates analytically evaluated when the improvement happened.
    pub evaluated: usize,
    /// Candidate label.
    pub label: String,
    /// New best analytic score.
    pub score: f64,
}

/// Per-candidate evaluation record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CandidateOutcome {
    /// The candidate.
    pub candidate: Candidate,
    /// Human label (`"AiM MapID=1 PU=ba-rk-ch"`).
    pub label: String,
    /// Analytic score breakdown.
    pub analytic: AnalyticCost,
    /// Cycle-accurate replay, for the analytically top-ranked few.
    pub measured: Option<MeasuredCost>,
}

/// Search result for one tensor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatrixSearchResult {
    /// Tensor name from the profile.
    pub tensor: String,
    /// Matrix that was placed.
    pub matrix: MatrixConfig,
    /// Winning candidate after the incumbent rule.
    pub best: Candidate,
    /// Paper's closed-form pick for the same matrix.
    pub paper: Candidate,
    /// Whether the search displaced the paper's pick.
    pub displaced: bool,
    /// Relative measured improvement over the paper's pick (0 when the
    /// incumbent was retained).
    pub improvement: f64,
    /// Measured cost of the winner.
    pub best_measured: MeasuredCost,
    /// Measured cost of the paper's pick.
    pub paper_measured: MeasuredCost,
    /// Candidates analytically evaluated.
    pub evaluated: usize,
    /// Candidates skipped by branch-and-bound pruning (hill-climb only).
    pub pruned: usize,
    /// Size of the legal candidate space.
    pub space_size: usize,
    /// Global-best improvements in evaluation order.
    pub trace: Vec<TracePoint>,
    /// Every evaluated candidate, in enumeration order.
    pub outcomes: Vec<CandidateOutcome>,
}

/// Analytic phase output: scores per space position plus bookkeeping.
struct AnalyticPhase {
    /// `scores[i]` is the analytic cost of `space.candidates()[i]`, if it
    /// was evaluated (hill-climbing leaves holes).
    scores: Vec<Option<AnalyticCost>>,
    evaluated: usize,
    pruned: usize,
    trace: Vec<TracePoint>,
}

fn exhaustive_phase(
    space: &CandidateSpace,
    model: &CostModel<'_>,
    workers: usize,
) -> Result<AnalyticPhase> {
    let results = pool::par_map_with(workers, space.candidates(), |c| model.analytic(c));
    let mut scores = Vec::with_capacity(results.len());
    let mut trace = Vec::new();
    let mut best = f64::INFINITY;
    for (i, r) in results.into_iter().enumerate() {
        let cost = r?;
        if cost.score < best {
            best = cost.score;
            trace.push(TracePoint {
                evaluated: i + 1,
                label: space.candidates()[i].describe(space.arch()),
                score: cost.score,
            });
        }
        scores.push(Some(cost));
    }
    let evaluated = scores.len();
    Ok(AnalyticPhase { scores, evaluated, pruned: 0, trace })
}

/// Neighbors of a candidate: MapID +/- 1, adjacent PU-order swaps, and a
/// hash toggle. Only candidates inside the enumerated space are returned.
fn neighbors(space: &CandidateSpace, c: &Candidate) -> Vec<usize> {
    let mut out = Vec::with_capacity(5);
    let mut push = |cand: Candidate| {
        if let Some(idx) = space.position(&cand) {
            out.push(idx);
        }
    };
    if c.map_id > 0 {
        push(Candidate { map_id: c.map_id - 1, ..*c });
    }
    push(Candidate { map_id: c.map_id + 1, ..*c });
    for i in 0..2 {
        let mut order = c.pu_order;
        order.0.swap(i, i + 1);
        push(Candidate { pu_order: order, ..*c });
    }
    push(Candidate { bank_hash: !c.bank_hash, ..*c });
    out
}

fn hill_climb_phase(
    space: &CandidateSpace,
    model: &CostModel<'_>,
    config: &SearchConfig,
    paper_start: usize,
) -> Result<AnalyticPhase> {
    let n = space.len();
    let mut scores: Vec<Option<AnalyticCost>> = vec![None; n];
    let mut evaluated = 0usize;
    let mut pruned = 0usize;
    let mut trace = Vec::new();
    let mut best = f64::INFINITY;

    let mut rng = XorShift64Star::new(config.seed);
    let mut starts = vec![paper_start];
    while starts.len() < config.restarts.max(1) {
        starts.push((rng.next_u64() % n as u64) as usize);
    }

    // Memoized scoring with trace upkeep; `None` return means pruned.
    let eval = |idx: usize,
                scores: &mut Vec<Option<AnalyticCost>>,
                evaluated: &mut usize,
                pruned: &mut usize,
                trace: &mut Vec<TracePoint>,
                best: &mut f64|
     -> Result<Option<f64>> {
        if let Some(c) = scores[idx] {
            return Ok(Some(c.score));
        }
        let cand = &space.candidates()[idx];
        if best.is_finite() && model.lower_bound(cand) > *best {
            *pruned += 1;
            return Ok(None);
        }
        let cost = model.analytic(cand)?;
        *evaluated += 1;
        if cost.score < *best {
            *best = cost.score;
            trace.push(TracePoint {
                evaluated: *evaluated,
                label: cand.describe(space.arch()),
                score: cost.score,
            });
        }
        scores[idx] = Some(cost);
        Ok(Some(cost.score))
    };

    for &start in &starts {
        let Some(mut here) =
            eval(start, &mut scores, &mut evaluated, &mut pruned, &mut trace, &mut best)?
        else {
            continue; // restart pruned outright: it cannot beat the incumbent
        };
        let mut at = start;
        for _ in 0..config.max_steps {
            let mut improved = false;
            for nb in neighbors(space, &space.candidates()[at]) {
                if let Some(score) =
                    eval(nb, &mut scores, &mut evaluated, &mut pruned, &mut trace, &mut best)?
                {
                    if score < here {
                        here = score;
                        at = nb;
                        improved = true;
                    }
                }
            }
            if !improved {
                break;
            }
        }
    }
    Ok(AnalyticPhase { scores, evaluated, pruned, trace })
}

/// Search the candidate space for the best mapping of one tensor.
///
/// # Errors
///
/// Propagates space enumeration, paper-selector, and cost-model errors
/// (e.g. a matrix row narrower than a chunk row).
pub fn search_matrix(
    spec: &DramSpec,
    arch: &PimArch,
    tensor: &TensorSpec,
    profile: &WorkloadProfile,
    config: &SearchConfig,
) -> Result<MatrixSearchResult> {
    let topo = spec.topology;
    let space = CandidateSpace::enumerate(topo, arch, config.page_bits, config.include_bank_hash)?;
    let model = CostModel::new(spec, arch, tensor.matrix, profile, config.sample, config.page_bits);
    let workers = config.workers.unwrap_or_else(pool::parallelism);

    let paper_decision = select_mapping(&tensor.matrix, topo, arch, config.page_bits)?;
    let paper = Candidate::paper(paper_decision.map_id.0);

    let use_exhaustive = match config.strategy {
        SearchStrategy::Exhaustive => true,
        SearchStrategy::HillClimb => false,
        SearchStrategy::Auto => space.len() <= config.exhaustive_threshold,
    };
    let phase = if use_exhaustive {
        exhaustive_phase(&space, &model, workers)?
    } else {
        hill_climb_phase(&space, &model, config, space.position(&paper).unwrap_or(0))?
    };

    // Measured phase: the analytic top-k plus the paper incumbent, each
    // replayed through the cycle-accurate scheduler. Ranking ties break by
    // enumeration order, so the set is deterministic.
    let mut ranked: Vec<usize> = (0..space.len()).filter(|&i| phase.scores[i].is_some()).collect();
    ranked.sort_by(|&a, &b| {
        let (sa, sb) = (&phase.scores[a], &phase.scores[b]);
        let (sa, sb) = match (sa, sb) {
            (Some(x), Some(y)) => (x.score, y.score),
            _ => unreachable!("ranked only holds evaluated indices"),
        };
        sa.partial_cmp(&sb).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(&b))
    });
    ranked.truncate(config.sim_top_k.max(1));
    let paper_idx = space.position(&paper);
    if let Some(pi) = paper_idx {
        if !ranked.contains(&pi) {
            ranked.push(pi);
        }
    }
    ranked.sort_unstable(); // enumeration order for the replay fan-out

    let measured: Vec<(usize, MeasuredCost)> =
        pool::par_map_with(workers, &ranked, |&i| -> Result<(usize, MeasuredCost)> {
            Ok((i, model.measured(&space.candidates()[i])?))
        })
        .into_iter()
        .collect::<Result<Vec<_>>>()?;

    let paper_measured = match paper_idx
        .and_then(|pi| measured.iter().find(|(i, _)| *i == pi).map(|(_, m)| m.clone()))
    {
        Some(m) => m,
        // Paper pick outside the enumerated space (cannot happen for the
        // PIM-optimized family, but stay total): replay it directly.
        None => model.measured(&paper)?,
    };

    // Epsilon incumbent rule: lowest measured score wins, but only a
    // challenger more than `improvement_threshold` better than the paper's
    // measured score may displace it.
    let mut best = paper;
    let mut best_measured = paper_measured.clone();
    let bar = paper_measured.score * (1.0 - config.improvement_threshold);
    for (i, m) in &measured {
        let cand = space.candidates()[*i];
        if cand != paper && m.score < bar && m.score < best_measured.score {
            best = cand;
            best_measured = m.clone();
        }
    }
    let displaced = best != paper;
    let improvement = if displaced && paper_measured.score > 0.0 {
        (paper_measured.score - best_measured.score) / paper_measured.score
    } else {
        0.0
    };

    let outcomes = space
        .candidates()
        .iter()
        .enumerate()
        .filter_map(|(i, c)| {
            phase.scores[i].map(|analytic| CandidateOutcome {
                candidate: *c,
                label: c.describe(space.arch()),
                analytic,
                measured: measured.iter().find(|(j, _)| *j == i).map(|(_, m)| m.clone()),
            })
        })
        .collect();

    Ok(MatrixSearchResult {
        tensor: tensor.name.clone(),
        matrix: tensor.matrix,
        best,
        paper,
        displaced,
        improvement,
        best_measured,
        paper_measured,
        evaluated: phase.evaluated,
        pruned: phase.pruned,
        space_size: space.len(),
        trace: phase.trace,
        outcomes,
    })
}

/// Run [`search_matrix`] for every tensor in the profile, in order.
///
/// # Errors
///
/// Fails on the first tensor whose search fails.
pub fn search_workload(
    spec: &DramSpec,
    arch: &PimArch,
    profile: &WorkloadProfile,
    config: &SearchConfig,
) -> Result<Vec<MatrixSearchResult>> {
    profile.tensors.iter().map(|t| search_matrix(spec, arch, t, profile, config)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::PuOrder;
    use facil_core::DType;

    fn iphone_spec() -> (DramSpec, PimArch) {
        let spec = DramSpec::lpddr5_6400(64, 8 << 30);
        let arch = PimArch::aim(&spec.topology);
        (spec, arch)
    }

    fn profile_for(tensor: TensorSpec) -> WorkloadProfile {
        WorkloadProfile::decode_only("test", vec![tensor])
    }

    #[test]
    fn baseline_square_matrix_reproduces_paper_pick() {
        let (spec, arch) = iphone_spec();
        let t = TensorSpec::new("qkv", MatrixConfig::new(2048, 2048, DType::F16));
        let p = profile_for(t.clone());
        let r = search_matrix(&spec, &arch, &t, &p, &SearchConfig::default()).unwrap();
        assert!(!r.displaced, "epsilon rule must retain the paper's pick");
        assert_eq!(r.best, r.paper);
        assert_eq!(r.improvement, 0.0);
        assert!(r.evaluated > 0 && r.evaluated <= r.space_size);
        assert!(!r.trace.is_empty());
    }

    #[test]
    fn skinny_moe_matrix_displaces_paper_pick() {
        let (spec, arch) = iphone_spec();
        // 64x4096 f16 (512 KB): paper picks MapID=2 whose window (1 MB)
        // the matrix only half fills. Under the paper's bank-first PU
        // order the channel bits sit at the top of the window, so half
        // the *channels* idle; an order with rank above channel parks the
        // idle bits on a rank instead and keeps the full bus busy.
        let t = TensorSpec::new("moe-expert", MatrixConfig::new(64, 4096, DType::F16));
        let p = profile_for(t.clone());
        let r = search_matrix(&spec, &arch, &t, &p, &SearchConfig::default()).unwrap();
        assert_eq!(r.paper.map_id, 2);
        assert!(r.displaced, "search must find the wider distribution");
        assert_eq!(r.best.map_id, 2, "the win comes from PU order, not extra partitioning");
        assert_ne!(r.best.pu_order, PuOrder::paper());
        assert!(r.improvement > SearchConfig::default().improvement_threshold);
        assert!(r.best_measured.score < r.paper_measured.score);
    }

    #[test]
    fn hill_climb_finds_the_same_winner_as_exhaustive() {
        let (spec, arch) = iphone_spec();
        let t = TensorSpec::new("moe-expert", MatrixConfig::new(64, 4096, DType::F16));
        let p = profile_for(t.clone());
        let ex = SearchConfig { strategy: SearchStrategy::Exhaustive, ..Default::default() };
        let hc = SearchConfig { strategy: SearchStrategy::HillClimb, ..Default::default() };
        let re = search_matrix(&spec, &arch, &t, &p, &ex).unwrap();
        let rh = search_matrix(&spec, &arch, &t, &p, &hc).unwrap();
        assert_eq!(re.best, rh.best);
        assert!(
            rh.evaluated + rh.pruned <= re.evaluated,
            "hill-climb must not evaluate more than exhaustive: {} + {} vs {}",
            rh.evaluated,
            rh.pruned,
            re.evaluated
        );
    }

    #[test]
    fn fixed_seed_and_worker_count_are_byte_identical() {
        let (spec, arch) = iphone_spec();
        let t = TensorSpec::new("ffn", MatrixConfig::new(8192, 2048, DType::F16));
        let p = profile_for(t.clone());
        let base = SearchConfig { workers: Some(1), ..Default::default() };
        let wide = SearchConfig { workers: Some(4), ..Default::default() };
        let a = search_matrix(&spec, &arch, &t, &p, &base).unwrap();
        let b = search_matrix(&spec, &arch, &t, &p, &base).unwrap();
        let c = search_matrix(&spec, &arch, &t, &p, &wide).unwrap();
        assert_eq!(a, b, "same seed, same result");
        assert_eq!(a, c, "worker count must not affect results");
    }

    #[test]
    fn workload_search_covers_every_tensor_in_order() {
        let (spec, arch) = iphone_spec();
        let p = WorkloadProfile::decode_only(
            "two",
            vec![
                TensorSpec::new("a", MatrixConfig::new(2048, 2048, DType::F16)),
                TensorSpec::new("b", MatrixConfig::new(64, 4096, DType::F16)),
            ],
        );
        let rs = search_workload(&spec, &arch, &p, &SearchConfig::default()).unwrap();
        assert_eq!(rs.len(), 2);
        assert_eq!(rs[0].tensor, "a");
        assert_eq!(rs[1].tensor, "b");
    }
}
