//! Cost models for ranking mapping candidates.
//!
//! Two evaluators share one scoring convention (lower is better, units are
//! DRAM command-clock cycles per weight-streaming pass):
//!
//! * **Analytic** — walks the candidate scheme over *address windows* (one
//!   full PU rotation: `total_banks x (row_bytes << MapID)` bytes, never
//!   crossing a huge page because `MapID <= in_page_row_bits`), bins each
//!   chunk-row block into its (bank, channel) via the real `map_pa`, and
//!   takes the makespan as the max of per-bank row-service time and
//!   per-channel bus occupancy. Cheap enough to score every candidate.
//! * **Measured** — replays a sampled window through the cycle-accurate
//!   [`DramSystem`](facil_dram::DramSystem) scheduler via its `run_trace` entry point and scores on real
//!   `finish_cycle` plus the same reduction term. Expensive; the search
//!   only runs it for the analytically top-ranked few.
//!
//! GEMV passes place a barrier after every window (the SoC must reduce the
//! window's partial sums before accumulating the next); GEMM passes
//! pipeline freely, so they pool all windows before taking the makespan.
//! A MapID below the matrix-row size splits each output row over
//! `partitions` PUs and the model charges the SoC-side reduction
//! explicitly — this is the term that penalizes over-aggressive
//! distribution and keeps the search honest.
//!
//! The analytic model can be calibrated with a measured row-buffer hit
//! rate from [`WorkloadProfile::measured_hit_rate`]; with no measurement
//! it assumes the closed-page worst case (`h = 0`), which matches the
//! FR-FCFS scheduler's behavior on streaming weight reads.

use crate::candidates::Candidate;
use crate::profile::WorkloadProfile;
use facil_core::{FacilError, MatrixConfig, PimArch, Result};
use facil_dram::{run_trace, sequential_trace, DramSpec, DramStats, Op, TraceOptions};
use serde::{Deserialize, Serialize};

/// How many windows each evaluator samples from the matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SampleConfig {
    /// Windows binned by the analytic model (stride-sampled, no RNG).
    pub analytic_windows: usize,
    /// Windows replayed through the cycle-accurate scheduler.
    pub measured_windows: usize,
}

impl Default for SampleConfig {
    fn default() -> Self {
        SampleConfig { analytic_windows: 4, measured_windows: 1 }
    }
}

/// Analytic score breakdown for one candidate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnalyticCost {
    /// Weighted total (lower is better).
    pub score: f64,
    /// Estimated cycles for one GEMV pass (windows barriered).
    pub gemv_cycles: f64,
    /// Estimated cycles for one GEMM pass (windows pooled).
    pub gemm_cycles: f64,
    /// SoC-side partial-sum reduction cycles per GEMV pass.
    pub reduction_cycles: f64,
    /// PUs each output row is split across.
    pub partitions: u64,
    /// Windows the estimate was extrapolated from.
    pub windows_sampled: usize,
}

/// Cycle-accurate score for one candidate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeasuredCost {
    /// Weighted total on the same scale as [`AnalyticCost::score`].
    pub score: f64,
    /// Scheduler `finish_cycle` sum, extrapolated to the full matrix.
    pub stream_cycles: f64,
    /// Merged DRAM counters from the sampled windows (unscaled).
    pub stats: DramStats,
    /// Windows actually replayed.
    pub windows_sampled: usize,
}

/// Scores candidates for one matrix under one workload profile.
#[derive(Debug, Clone)]
pub struct CostModel<'a> {
    spec: &'a DramSpec,
    arch: &'a PimArch,
    matrix: MatrixConfig,
    gemv_weight: f64,
    gemm_weight: f64,
    hit_rate: f64,
    sample: SampleConfig,
    page_bits: u32,
}

impl<'a> CostModel<'a> {
    /// Build a model for `matrix` using `profile`'s pass mix and (if
    /// present) measured hit-rate calibration.
    pub fn new(
        spec: &'a DramSpec,
        arch: &'a PimArch,
        matrix: MatrixConfig,
        profile: &WorkloadProfile,
        sample: SampleConfig,
        page_bits: u32,
    ) -> Self {
        CostModel {
            spec,
            arch,
            matrix,
            gemv_weight: profile.gemv_weight,
            gemm_weight: profile.gemm_weight,
            hit_rate: profile.measured_hit_rate().unwrap_or(0.0).clamp(0.0, 1.0),
            sample,
            page_bits,
        }
    }

    /// Matrix the model scores placements of.
    pub fn matrix(&self) -> &MatrixConfig {
        &self.matrix
    }

    /// Bytes of one full PU rotation under `map_id`.
    fn window_bytes(&self, map_id: u8) -> u64 {
        let topo = self.spec.topology;
        topo.total_banks() * (topo.row_bytes << map_id)
    }

    /// Cycles a bank is busy serving one chunk-row block: the larger of
    /// the activate-cadence bound (`tRC` between activates to one bank)
    /// and the column-plus-turnaround bound, with the activate share
    /// discounted by the calibrated open-row probability.
    fn block_service_cycles(&self) -> f64 {
        let t = &self.spec.timing;
        let cols = (self.arch.chunk_row_bytes / self.spec.topology.transfer_bytes) as f64;
        let miss = 1.0 - self.hit_rate;
        let act_bound = t.rc as f64 * miss;
        let col_bound = cols * t.ccd_l as f64 + (t.rcd + t.rtp + t.rp) as f64 * miss;
        act_bound.max(col_bound)
    }

    /// Pipeline fill for the first access of a burst of work.
    fn startup_cycles(&self) -> f64 {
        let t = &self.spec.timing;
        (t.rcd + t.cl + t.burst_cycles) as f64
    }

    /// SoC-side reduction cycles per GEMV pass when each output row is
    /// split over `partitions` PUs: the partial sums (one f32 per PU per
    /// row) cross the bus once, plus a drain latency per partition.
    fn reduction_cycles(&self, partitions: u64) -> f64 {
        if partitions <= 1 {
            return 0.0;
        }
        let topo = self.spec.topology;
        let t = &self.spec.timing;
        let bytes = self.matrix.rows * partitions * 4;
        let transfers = bytes.div_ceil(topo.transfer_bytes);
        let bus = transfers as f64 * t.burst_cycles as f64 / topo.channels as f64;
        bus + partitions as f64 * self.startup_cycles()
    }

    /// Score a candidate with the analytic window model.
    ///
    /// # Errors
    ///
    /// Propagates scheme construction / partitioning errors.
    pub fn analytic(&self, candidate: &Candidate) -> Result<AnalyticCost> {
        let topo = self.spec.topology;
        let decision = candidate.decision(&self.matrix, topo, self.arch, self.page_bits)?;
        let scheme = decision.scheme;
        let bytes = self.matrix.padded_bytes();
        let window = self.window_bytes(candidate.map_id);
        let n_windows = bytes.div_ceil(window).max(1);
        let sampled = (self.sample.analytic_windows.max(1) as u64).min(n_windows);

        let chunk = self.arch.chunk_row_bytes;
        let block_service = self.block_service_cycles();
        let cols_per_block = (chunk / topo.transfer_bytes) as f64;
        let burst = self.spec.timing.burst_cycles as f64;
        let n_banks = topo.total_banks() as usize;
        let n_chans = topo.channels as usize;

        let mut bank_busy = vec![0.0f64; n_banks];
        let mut chan_busy = vec![0.0f64; n_chans];
        let mut pooled_bank = vec![0.0f64; n_banks];
        let mut pooled_chan = vec![0.0f64; n_chans];
        let mut gemv = 0.0f64;
        let scale = n_windows as f64 / sampled as f64;

        for s in 0..sampled {
            // Stride sampling: deterministic, covers the range evenly and
            // (for s-th sample of the last stride) the tail partial window.
            let w = s * n_windows / sampled;
            let base = w * window;
            let len = window.min(bytes - base);
            bank_busy.iter_mut().for_each(|b| *b = 0.0);
            chan_busy.iter_mut().for_each(|c| *c = 0.0);
            for blk in 0..(len / chunk) {
                let da = scheme.map_pa(base + blk * chunk);
                let global_bank = ((da.channel as usize * topo.ranks as usize + da.rank as usize)
                    * topo.banks() as usize)
                    + da.bank as usize;
                bank_busy[global_bank] += block_service;
                chan_busy[da.channel as usize] += cols_per_block * burst;
            }
            let bank_max = bank_busy.iter().copied().fold(0.0, f64::max);
            let chan_max = chan_busy.iter().copied().fold(0.0, f64::max);
            gemv += bank_max.max(chan_max) + self.startup_cycles();
            for (p, b) in pooled_bank.iter_mut().zip(&bank_busy) {
                *p += *b;
            }
            for (p, c) in pooled_chan.iter_mut().zip(&chan_busy) {
                *p += *c;
            }
        }
        let gemv_cycles = gemv * scale;
        let pooled_bank_max = pooled_bank.iter().copied().fold(0.0, f64::max);
        let pooled_chan_max = pooled_chan.iter().copied().fold(0.0, f64::max);
        let gemm_cycles = pooled_bank_max.max(pooled_chan_max) * scale + self.startup_cycles();
        let reduction = self.reduction_cycles(decision.partitions);
        Ok(AnalyticCost {
            score: self.gemv_weight * (gemv_cycles + reduction) + self.gemm_weight * gemm_cycles,
            gemv_cycles,
            gemm_cycles,
            reduction_cycles: reduction,
            partitions: decision.partitions,
            windows_sampled: sampled as usize,
        })
    }

    /// A cheap lower bound on [`Self::analytic`] for branch-and-bound
    /// pruning: assumes the candidate spreads work perfectly over every
    /// bank and channel (makespan = average load), which no real placement
    /// beats. Only the MapID-dependent reduction term is exact.
    pub fn lower_bound(&self, candidate: &Candidate) -> f64 {
        let topo = self.spec.topology;
        let bytes = self.matrix.padded_bytes();
        let blocks = (bytes / self.arch.chunk_row_bytes) as f64;
        let transfers = (bytes / topo.transfer_bytes) as f64;
        let bank_lb = blocks * self.block_service_cycles() / topo.total_banks() as f64;
        let chan_lb = transfers * self.spec.timing.burst_cycles as f64 / topo.channels as f64;
        let stream_lb = bank_lb.max(chan_lb) + self.startup_cycles();
        let per_pu = self.arch.chunk_row_bytes << candidate.map_id;
        let partitions = (self.matrix.padded_row_bytes() / per_pu).max(1).min(topo.total_banks());
        let reduction = self.reduction_cycles(partitions);
        self.gemv_weight * (stream_lb + reduction) + self.gemm_weight * stream_lb
    }

    /// Score a candidate by replaying sampled windows through the real
    /// FR-FCFS scheduler.
    ///
    /// # Errors
    ///
    /// Propagates scheme construction errors; a mapping fault from the
    /// scheduler (impossible for a validated scheme) is surfaced as
    /// [`FacilError::InvalidMapping`] rather than panicking.
    pub fn measured(&self, candidate: &Candidate) -> Result<MeasuredCost> {
        let topo = self.spec.topology;
        let decision = candidate.decision(&self.matrix, topo, self.arch, self.page_bits)?;
        let bytes = self.matrix.padded_bytes();
        let window = self.window_bytes(candidate.map_id);
        let n_windows = bytes.div_ceil(window).max(1);
        let sampled = (self.sample.measured_windows.max(1) as u64).min(n_windows);

        let mut cycles = 0.0f64;
        let mut stats = DramStats::default();
        for s in 0..sampled {
            let w = s * n_windows / sampled;
            let base = w * window;
            let len = window.min(bytes - base);
            let trace =
                sequential_trace(base, len / topo.transfer_bytes, topo.transfer_bytes, Op::Read);
            let result = run_trace(self.spec, &decision.scheme, trace, TraceOptions::default())
                .map_err(|fault| {
                    FacilError::InvalidMapping(format!(
                        "validated scheme '{}' faulted during replay: {fault:?}",
                        decision.scheme.label()
                    ))
                })?;
            cycles += result.stats.finish_cycle as f64;
            stats.merge(&result.stats);
        }
        let stream_cycles = cycles * n_windows as f64 / sampled as f64;
        let reduction = self.reduction_cycles(decision.partitions);
        Ok(MeasuredCost {
            score: stream_cycles + self.gemv_weight * reduction,
            stream_cycles,
            stats,
            windows_sampled: sampled as usize,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use facil_core::{DType, HUGE_PAGE_BITS};

    fn setup() -> (DramSpec, PimArch) {
        // iPhone-class: 4ch x 2rk x 16 banks, 2 KB rows.
        let spec = DramSpec::lpddr5_6400(64, 8 << 30);
        let topo = spec.topology;
        assert_eq!(
            (topo.channels, topo.ranks, topo.total_banks(), topo.row_bytes),
            (4, 2, 128, 2048)
        );
        let arch = PimArch::aim(&topo);
        (spec, arch)
    }

    fn model<'a>(spec: &'a DramSpec, arch: &'a PimArch, matrix: MatrixConfig) -> CostModel<'a> {
        let profile = WorkloadProfile::decode_only("t", vec![]);
        CostModel::new(spec, arch, matrix, &profile, SampleConfig::default(), HUGE_PAGE_BITS)
    }

    #[test]
    fn skinny_matrix_prefers_wider_distribution() {
        let (spec, arch) = setup();
        // 64x4096 f16 = 512 KB: at MapID=2 the 1 MB window only half-fills,
        // so 64 of 128 banks sit idle; MapID=1 engages all of them.
        let m = model(&spec, &arch, MatrixConfig::new(64, 4096, DType::F16));
        let paper = m.analytic(&Candidate::paper(2)).unwrap();
        let wider = m.analytic(&Candidate::paper(1)).unwrap();
        assert!(
            wider.score < paper.score,
            "MapID=1 {} should beat MapID=2 {}",
            wider.score,
            paper.score
        );
        assert_eq!(wider.partitions, 2);
        assert!(wider.reduction_cycles > 0.0);
        assert_eq!(paper.partitions, 1);
        assert_eq!(paper.reduction_cycles, 0.0);
    }

    #[test]
    fn lower_bound_never_exceeds_analytic() {
        let (spec, arch) = setup();
        // Small enough that every window is sampled: the bound must hold
        // exactly, not just on extrapolated estimates.
        for matrix in
            [MatrixConfig::new(64, 4096, DType::F16), MatrixConfig::new(2048, 2048, DType::F16)]
        {
            let m = model(&spec, &arch, matrix);
            for map_id in 0..=3 {
                let c = Candidate::paper(map_id);
                let a = m.analytic(&c).unwrap();
                let lb = m.lower_bound(&c);
                assert!(
                    lb <= a.score * (1.0 + 1e-9),
                    "{matrix} MapID={map_id}: lb {lb} > analytic {}",
                    a.score
                );
            }
        }
    }

    #[test]
    fn measured_agrees_with_analytic_on_ranking_direction() {
        let (spec, arch) = setup();
        let m = model(&spec, &arch, MatrixConfig::new(64, 4096, DType::F16));
        let paper = m.measured(&Candidate::paper(2)).unwrap();
        let wider = m.measured(&Candidate::paper(1)).unwrap();
        assert!(
            wider.score < paper.score,
            "cycle-accurate replay must confirm the window-coverage win: \
             MapID=1 {} vs MapID=2 {}",
            wider.score,
            paper.score
        );
        assert!(wider.stats.column_accesses() > 0);
    }

    #[test]
    fn calibrated_hit_rate_lowers_service_estimate() {
        let (spec, arch) = setup();
        let matrix = MatrixConfig::new(2048, 2048, DType::F16);
        let cold = model(&spec, &arch, matrix);
        let profile = WorkloadProfile::decode_only("t", vec![]).with_measured(DramStats {
            row_hits: 9,
            row_misses: 1,
            ..Default::default()
        });
        let warm =
            CostModel::new(&spec, &arch, matrix, &profile, SampleConfig::default(), HUGE_PAGE_BITS);
        let c = Candidate::paper(0);
        assert!(
            warm.block_service_cycles() < cold.block_service_cycles(),
            "a measured open-row probability must discount the activate share"
        );
        // The end-to-end score can be channel-bound (the bus term ignores
        // row state), so calibration never *raises* it but may not lower it.
        assert!(warm.analytic(&c).unwrap().score <= cold.analytic(&c).unwrap().score);
    }

    #[test]
    fn gemm_weight_discounts_the_window_barrier() {
        let (spec, arch) = setup();
        let matrix = MatrixConfig::new(8192, 2048, DType::F16);
        let profile = WorkloadProfile::decode_only("t", vec![]);
        let gemv_model =
            CostModel::new(&spec, &arch, matrix, &profile, SampleConfig::default(), HUGE_PAGE_BITS);
        let gemm_profile = profile.clone().with_mix(0.0, 1.0);
        let gemm_model = CostModel::new(
            &spec,
            &arch,
            matrix,
            &gemm_profile,
            SampleConfig::default(),
            HUGE_PAGE_BITS,
        );
        let c = Candidate::paper(1);
        let gemv = gemv_model.analytic(&c).unwrap();
        let gemm = gemm_model.analytic(&c).unwrap();
        // Pooling windows (no barrier) can only help.
        assert!(gemm.score <= gemv.score);
        assert_eq!(gemm.gemv_cycles, gemv.gemv_cycles, "breakdown is mix-independent");
    }
}
