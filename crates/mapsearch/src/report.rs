//! Search reports: the durable output of a mapping search.
//!
//! A [`SearchReport`] bundles the per-tensor [`MatrixSearchResult`]s with
//! enough provenance (platform, profile, seed, page size) to reproduce the
//! run, serializes through the workspace's hand-rolled
//! [`JsonWriter`] (byte-identical for
//! identical inputs — the determinism property tests diff these strings),
//! registers headline numbers into a [`RunManifest`], and adapts back into
//! the simulator as a mapping *selector*: a closure the
//! `InferenceSim::with_selector` constructor calls instead of the paper's
//! closed-form rule.

use crate::search::{MatrixSearchResult, SearchConfig};
use facil_core::{select_mapping, MappingDecision, MatrixConfig, PimArch, Result};
use facil_dram::Topology;
use facil_telemetry::{JsonWriter, RunManifest};
use serde::{Deserialize, Serialize};

/// The durable result of one [`search_workload`](crate::search_workload)
/// run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchReport {
    /// Platform label (e.g. `"iphone15pro"`).
    pub platform: String,
    /// Workload profile name.
    pub profile: String,
    /// Search seed (provenance; exhaustive runs do not consume it).
    pub seed: u64,
    /// Page size (log2 bytes) the schemes fit in.
    pub page_bits: u32,
    /// Topology the search ran against.
    pub topology: Topology,
    /// PIM architecture the search ran against.
    pub arch: PimArch,
    /// Per-tensor results, in profile order.
    pub results: Vec<MatrixSearchResult>,
    /// Annotated bit-field layout ([`MappingScheme::dump`]) of each
    /// winner, aligned with `results`.
    ///
    /// [`MappingScheme::dump`]: facil_core::MappingScheme::dump
    pub layouts: Vec<String>,
}

impl SearchReport {
    /// Assemble a report, rendering each winner's bit-field layout.
    ///
    /// # Errors
    ///
    /// Propagates scheme construction errors (cannot happen for results
    /// produced by [`search_workload`](crate::search_workload), whose
    /// candidates were validated at enumeration).
    pub fn new(
        platform: impl Into<String>,
        profile: impl Into<String>,
        config: &SearchConfig,
        topology: Topology,
        arch: PimArch,
        results: Vec<MatrixSearchResult>,
    ) -> Result<Self> {
        let layouts = results
            .iter()
            .map(|r| Ok(r.best.build(topology, &arch, config.page_bits)?.dump()))
            .collect::<Result<Vec<_>>>()?;
        Ok(SearchReport {
            platform: platform.into(),
            profile: profile.into(),
            seed: config.seed,
            page_bits: config.page_bits,
            topology,
            arch,
            results,
            layouts,
        })
    }

    /// The result for `matrix`, if a tensor of that exact shape was
    /// searched.
    pub fn result_for(&self, matrix: &MatrixConfig) -> Option<&MatrixSearchResult> {
        self.results.iter().find(|r| r.matrix == *matrix)
    }

    /// Searched [`MappingDecision`] for `matrix`, falling back to the
    /// paper's closed-form rule for shapes the search did not cover.
    ///
    /// # Errors
    ///
    /// Propagates decision-construction errors (unplaceable matrices).
    pub fn decision_for(&self, matrix: &MatrixConfig) -> Result<MappingDecision> {
        match self.result_for(matrix) {
            Some(r) => r.best.decision(matrix, self.topology, &self.arch, self.page_bits),
            None => select_mapping(matrix, self.topology, &self.arch, self.page_bits),
        }
    }

    /// The `SearchReport -> MappingDecision` adapter: a selector closure
    /// for `InferenceSim::with_selector`, replacing the paper's
    /// closed-form rule with the searched picks.
    pub fn selector(&self) -> impl Fn(&MatrixConfig) -> Result<MappingDecision> + '_ {
        move |matrix| self.decision_for(matrix)
    }

    /// How many tensors the search displaced the paper's pick on.
    pub fn displaced_count(&self) -> usize {
        self.results.iter().filter(|r| r.displaced).count()
    }

    /// Total candidates analytically evaluated across all tensors.
    pub fn evaluated_total(&self) -> u64 {
        self.results.iter().map(|r| r.evaluated as u64).sum()
    }

    /// Full JSON rendering (provenance, per-tensor scores, score traces,
    /// winner layouts). Deterministic: identical reports serialize to
    /// identical bytes.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::with_capacity(4096);
        w.begin_object()
            .field_str("platform", &self.platform)
            .field_str("profile", &self.profile)
            .field_uint("seed", self.seed)
            .field_uint("page_bits", u64::from(self.page_bits))
            .field_uint("displaced", self.displaced_count() as u64)
            .field_uint("evaluated", self.evaluated_total())
            .key("results")
            .begin_array();
        for (r, layout) in self.results.iter().zip(&self.layouts) {
            w.begin_object()
                .field_str("tensor", &r.tensor)
                .field_str("matrix", &r.matrix.to_string())
                .field_str("best", &r.best.describe(&self.arch))
                .field_uint("best_map_id", u64::from(r.best.map_id))
                .field_str("paper", &r.paper.describe(&self.arch))
                .field_uint("paper_map_id", u64::from(r.paper.map_id))
                .field_bool("displaced", r.displaced)
                .field_num("improvement", r.improvement)
                .field_num("best_score", r.best_measured.score)
                .field_num("paper_score", r.paper_measured.score)
                .field_num("best_hit_rate", r.best_measured.stats.hit_rate())
                .field_num("paper_hit_rate", r.paper_measured.stats.hit_rate())
                .field_uint("best_finish_cycle", r.best_measured.stats.finish_cycle)
                .field_uint("paper_finish_cycle", r.paper_measured.stats.finish_cycle)
                .field_uint("evaluated", r.evaluated as u64)
                .field_uint("pruned", r.pruned as u64)
                .field_uint("space_size", r.space_size as u64)
                .key("trace")
                .begin_array();
            for t in &r.trace {
                w.begin_object()
                    .field_uint("evaluated", t.evaluated as u64)
                    .field_str("label", &t.label)
                    .field_num("score", t.score)
                    .end_object();
            }
            w.end_array().field_str("layout", layout).end_object();
        }
        w.end_array().end_object();
        w.finish()
    }

    /// Register headline numbers and the full report into a
    /// [`RunManifest`].
    pub fn register_into(&self, manifest: &mut RunManifest) {
        manifest
            .config_str("platform", &self.platform)
            .config_str("profile", &self.profile)
            .config_uint("page_bits", u64::from(self.page_bits));
        manifest
            .result_uint("tensors", self.results.len() as u64)
            .result_uint("displaced", self.displaced_count() as u64)
            .result_uint("evaluated", self.evaluated_total())
            .result_raw("search", &self.to_json());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{TensorSpec, WorkloadProfile};
    use crate::search::search_workload;
    use facil_core::DType;
    use facil_dram::DramSpec;

    fn report() -> SearchReport {
        let spec = DramSpec::lpddr5_6400(64, 8 << 30);
        let arch = PimArch::aim(&spec.topology);
        let profile = WorkloadProfile::decode_only(
            "unit",
            vec![
                TensorSpec::new("qkv", MatrixConfig::new(2048, 2048, DType::F16)),
                TensorSpec::new("moe-expert", MatrixConfig::new(64, 4096, DType::F16)),
            ],
        );
        let config = SearchConfig::default();
        let results = search_workload(&spec, &arch, &profile, &config).unwrap();
        SearchReport::new("iphone15pro", &profile.name, &config, spec.topology, arch, results)
            .unwrap()
    }

    #[test]
    fn selector_overrides_searched_shapes_only() {
        let r = report();
        let moe = MatrixConfig::new(64, 4096, DType::F16);
        let searched = r.decision_for(&moe).unwrap();
        let paper = select_mapping(&moe, r.topology, &r.arch, r.page_bits).unwrap();
        assert_ne!(searched.scheme, paper.scheme, "the skinny tensor is re-laid-out");
        assert_eq!(searched.map_id, paper.map_id, "via PU order, at the same MapID");
        // A shape the search never saw falls back to the paper's rule.
        let other = MatrixConfig::new(4096, 4096, DType::F16);
        assert_eq!(
            r.selector()(&other).unwrap(),
            select_mapping(&other, r.topology, &r.arch, r.page_bits).unwrap()
        );
        // A searched-but-not-displaced shape also matches the paper.
        let qkv = MatrixConfig::new(2048, 2048, DType::F16);
        assert_eq!(
            r.decision_for(&qkv).unwrap(),
            select_mapping(&qkv, r.topology, &r.arch, r.page_bits).unwrap()
        );
    }

    #[test]
    fn json_is_deterministic_and_carries_layouts() {
        let a = report();
        let b = report();
        assert_eq!(a.to_json(), b.to_json(), "byte-identical for identical runs");
        let j = a.to_json();
        assert!(j.contains("\"platform\":\"iphone15pro\""));
        assert!(j.contains("\"tensor\":\"moe-expert\""));
        assert!(j.contains("\"displaced\":true"));
        assert!(j.contains("-> row["), "layout dump is embedded: {j}");
        assert_eq!(a.layouts.len(), a.results.len());
    }

    #[test]
    fn manifest_registration_round_trips_schema() {
        let r = report();
        let mut m = RunManifest::new("mapsearch", r.seed);
        r.register_into(&mut m);
        let line = m.to_json_line();
        assert!(line.contains("\"bench\":\"mapsearch\""));
        assert!(line.contains("\"tensors\":2"));
        assert!(line.contains("\"search\":{"));
        assert!(!line.contains('\n'), "layout newlines must be escaped");
    }
}
