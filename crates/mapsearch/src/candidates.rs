//! Candidate enumeration over legal PIM-optimized mapping schemes.
//!
//! The search space generalizes [`MappingScheme::pim_optimized`] along the
//! three axes user-level software controls:
//!
//! * **MapID** — how many DRAM row bits sit between the chunk-column bits
//!   and the PU-changing bits (`0..=in_page_row_bits`, the tight
//!   per-topology bound that the paper's loose `max_map_id_bound`
//!   upper-bounds);
//! * **PU-bit order** — the relative order of the bank/rank/channel
//!   segments (the paper fixes bank lowest; e.g. channel-lowest spreads a
//!   small matrix across channels before banks);
//! * **bank hash** — DRAMA-style bank XOR on or off.
//!
//! Every candidate is validated at construction through
//! [`MappingScheme::from_segments`] (the DRAMsim3 lesson: reject bad
//! geometry when the mapping is *built*, not when the first address
//! faults), so an enumerated space contains only bijective, topology-exact
//! schemes.

use facil_core::scheme::Field;
use facil_core::{
    FacilError, MapId, MappingDecision, MappingScheme, MatrixConfig, PimArch, Result, Segment,
};
use facil_dram::Topology;
use serde::{Deserialize, Serialize};

/// Order of the PU-changing bit segments, from PA LSB to MSB.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PuOrder(pub [Field; 3]);

impl PuOrder {
    /// The paper's order (Fig. 8): bank, then rank, then channel.
    pub const fn paper() -> Self {
        PuOrder([Field::Bank, Field::Rank, Field::Channel])
    }

    /// All six permutations, paper order first (enumeration is
    /// deterministic, so search results are too).
    pub const fn all() -> [PuOrder; 6] {
        use Field::{Bank, Channel, Rank};
        [
            PuOrder([Bank, Rank, Channel]),
            PuOrder([Bank, Channel, Rank]),
            PuOrder([Rank, Bank, Channel]),
            PuOrder([Rank, Channel, Bank]),
            PuOrder([Channel, Bank, Rank]),
            PuOrder([Channel, Rank, Bank]),
        ]
    }

    /// Compact label, e.g. `"ba-rk-ch"`.
    pub fn short(&self) -> String {
        format!("{}-{}-{}", self.0[0], self.0[1], self.0[2])
    }
}

/// One point of the search space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Candidate {
    /// Paper MapID: row bits below the PU-changing bits.
    pub map_id: u8,
    /// PU-changing segment order.
    pub pu_order: PuOrder,
    /// DRAMA-style bank hash enabled.
    pub bank_hash: bool,
}

impl Candidate {
    /// The paper's candidate for a given MapID (bank-first PU order, no
    /// hash) — the incumbent every search starts from.
    pub fn paper(map_id: u8) -> Self {
        Candidate { map_id, pu_order: PuOrder::paper(), bank_hash: false }
    }

    /// Short human label, e.g. `"AiM MapID=1 PU=ch-ba-rk +hash"`.
    pub fn describe(&self, arch: &PimArch) -> String {
        let hash = if self.bank_hash { " +hash" } else { "" };
        format!("{} MapID={} PU={}{}", arch.style, self.map_id, self.pu_order.short(), hash)
    }

    /// Build the validated [`MappingScheme`] for this candidate.
    ///
    /// The paper candidate delegates to [`MappingScheme::pim_optimized`]
    /// so its scheme (including the label) is bit-identical to what
    /// `select_mapping` constructs.
    ///
    /// # Errors
    ///
    /// Propagates geometry validation: MapID out of range for the
    /// topology/page size, chunk not tiling the DRAM row, or segment
    /// widths not covering the topology.
    pub fn build(&self, topo: Topology, arch: &PimArch, page_bits: u32) -> Result<MappingScheme> {
        if self.pu_order == PuOrder::paper() && !self.bank_hash {
            return MappingScheme::pim_optimized(topo, arch, self.map_id, page_bits);
        }
        if !arch.tiles_row(&topo) {
            return Err(FacilError::InvalidMapping(format!(
                "chunk ({} rows x {} bytes) does not tile the {}-byte DRAM row",
                arch.chunk_rows, arch.chunk_row_bytes, topo.row_bytes
            )));
        }
        let in_page = MappingScheme::in_page_row_bits(&topo, page_bits)?;
        if u32::from(self.map_id) > in_page {
            return Err(FacilError::MapIdOutOfRange { requested: self.map_id, max: in_page as u8 });
        }
        let mid = u32::from(self.map_id);
        let pu_width = |f: Field| match f {
            Field::Bank => topo.bank_bits(),
            Field::Rank => topo.rank_bits(),
            Field::Channel => topo.channel_bits(),
            _ => 0,
        };
        let mut segments = vec![
            Segment { field: Field::Tx, width: topo.tx_bits() },
            Segment { field: Field::Column, width: arch.chunk_col_bits(&topo) },
            Segment { field: Field::Row, width: mid },
            Segment { field: Field::Column, width: arch.chunk_row_bits() },
        ];
        for f in self.pu_order.0 {
            segments.push(Segment { field: f, width: pu_width(f) });
        }
        segments.push(Segment { field: Field::Row, width: in_page - mid });
        segments.push(Segment { field: Field::Row, width: topo.row_bits() - in_page });
        let scheme = MappingScheme::from_segments(topo, segments, self.describe(arch))?;
        Ok(if self.bank_hash { scheme.with_bank_hash() } else { scheme })
    }

    /// Build the full [`MappingDecision`] for `matrix` under this
    /// candidate. A MapID smaller than the matrix row needs scatters each
    /// row over `row_bytes / (chunk_row_bytes << map_id)` PUs, whose
    /// partial sums the SoC reduces (the Fig. 10 partitioning, same
    /// accounting as `decision_with_map_id`).
    ///
    /// # Errors
    ///
    /// Rejects matrices narrower than a chunk row and propagates
    /// scheme-construction errors.
    pub fn decision(
        &self,
        matrix: &MatrixConfig,
        topo: Topology,
        arch: &PimArch,
        page_bits: u32,
    ) -> Result<MappingDecision> {
        let row_bytes = matrix.padded_row_bytes();
        if row_bytes < arch.chunk_row_bytes {
            return Err(FacilError::InvalidRequest(format!(
                "matrix row ({row_bytes} B) smaller than one chunk row ({} B)",
                arch.chunk_row_bytes
            )));
        }
        let scheme = self.build(topo, arch, page_bits)?;
        let per_pu_row_bytes = arch.chunk_row_bytes << self.map_id;
        let partitions = (row_bytes / per_pu_row_bytes).max(1).min(topo.total_banks());
        let memory_per_bank = (1u64 << page_bits) / topo.total_banks();
        Ok(MappingDecision { map_id: MapId(self.map_id), partitions, scheme, memory_per_bank })
    }
}

/// The enumerated, geometry-validated candidate space for one
/// (topology, PIM architecture, page size).
#[derive(Debug, Clone)]
pub struct CandidateSpace {
    topo: Topology,
    arch: PimArch,
    page_bits: u32,
    max_map_id: u8,
    candidates: Vec<Candidate>,
}

impl CandidateSpace {
    /// Enumerate every legal candidate in deterministic order: MapID
    /// ascending, PU orders in [`PuOrder::all`] order (paper first), hash
    /// off before on. Every candidate's scheme is constructed once here,
    /// so an enumerated space is known-valid.
    ///
    /// # Errors
    ///
    /// Propagates scheme-construction errors (e.g. a page size that cannot
    /// hold the interleaving bits).
    pub fn enumerate(
        topo: Topology,
        arch: &PimArch,
        page_bits: u32,
        include_bank_hash: bool,
    ) -> Result<Self> {
        let max_map_id = MappingScheme::in_page_row_bits(&topo, page_bits)? as u8;
        let mut candidates = Vec::new();
        for map_id in 0..=max_map_id {
            for pu_order in PuOrder::all() {
                for bank_hash in [false, true] {
                    if bank_hash && !include_bank_hash {
                        continue;
                    }
                    let c = Candidate { map_id, pu_order, bank_hash };
                    // Validate now (DRAMsim3 lesson); the scheme itself is
                    // rebuilt lazily by the evaluators.
                    c.build(topo, arch, page_bits)?;
                    candidates.push(c);
                }
            }
        }
        Ok(CandidateSpace { topo, arch: *arch, page_bits, max_map_id, candidates })
    }

    /// All candidates in enumeration order.
    pub fn candidates(&self) -> &[Candidate] {
        &self.candidates
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// Whether the space is empty (never true for a valid enumeration).
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    /// Largest legal MapID (the tight in-page row-bit bound).
    pub fn max_map_id(&self) -> u8 {
        self.max_map_id
    }

    /// Topology the space addresses.
    pub fn topology(&self) -> Topology {
        self.topo
    }

    /// PIM architecture the space was enumerated for.
    pub fn arch(&self) -> &PimArch {
        &self.arch
    }

    /// Page size (log2 bytes) of the enumeration.
    pub fn page_bits(&self) -> u32 {
        self.page_bits
    }

    /// Index of `candidate` in enumeration order, if it is in the space.
    pub fn position(&self, candidate: &Candidate) -> Option<usize> {
        self.candidates.iter().position(|c| c == candidate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use facil_core::HUGE_PAGE_BITS;

    fn iphone() -> (Topology, PimArch) {
        let t = Topology::new(4, 2, 4, 4, 16384, 2048, 32);
        (t, PimArch::aim(&t))
    }

    #[test]
    fn space_size_matches_axes() {
        let (t, a) = iphone();
        let s = CandidateSpace::enumerate(t, &a, HUGE_PAGE_BITS, true).unwrap();
        // iPhone-like: 3 in-page row bits -> MapID 0..=3, x6 orders x2 hash.
        assert_eq!(s.max_map_id(), 3);
        assert_eq!(s.len(), 4 * 6 * 2);
        let no_hash = CandidateSpace::enumerate(t, &a, HUGE_PAGE_BITS, false).unwrap();
        assert_eq!(no_hash.len(), 4 * 6);
        assert!(!s.is_empty());
    }

    #[test]
    fn paper_candidate_is_first_of_its_mapid_and_findable() {
        let (t, a) = iphone();
        let s = CandidateSpace::enumerate(t, &a, HUGE_PAGE_BITS, true).unwrap();
        for map_id in 0..=s.max_map_id() {
            let idx = s.position(&Candidate::paper(map_id)).unwrap();
            assert_eq!(idx, map_id as usize * 12, "MapID block starts with the paper order");
        }
        assert_eq!(s.position(&Candidate::paper(s.max_map_id() + 1)), None);
    }

    #[test]
    fn paper_candidate_scheme_matches_pim_optimized() {
        let (t, a) = iphone();
        let c = Candidate::paper(2);
        let built = c.build(t, &a, HUGE_PAGE_BITS).unwrap();
        let reference = MappingScheme::pim_optimized(t, &a, 2, HUGE_PAGE_BITS).unwrap();
        assert_eq!(built, reference, "labels and segments must be bit-identical");
    }

    #[test]
    fn every_candidate_roundtrips_addresses() {
        let (t, a) = iphone();
        let s = CandidateSpace::enumerate(t, &a, HUGE_PAGE_BITS, true).unwrap();
        for c in s.candidates() {
            let scheme = c.build(t, &a, HUGE_PAGE_BITS).unwrap();
            for i in 0..256u64 {
                let pa = ((i * 977 * 32) % t.capacity_bytes()) & !31;
                let da = scheme.map_pa(pa);
                assert!(da.is_valid(&t), "{}", c.describe(&a));
                assert_eq!(scheme.unmap(da), pa, "{}", c.describe(&a));
            }
        }
    }

    #[test]
    fn channel_first_order_changes_pu_walk() {
        let (t, a) = iphone();
        let paper = Candidate::paper(0).build(t, &a, HUGE_PAGE_BITS).unwrap();
        let chan_first = Candidate {
            map_id: 0,
            pu_order: PuOrder([Field::Channel, Field::Bank, Field::Rank]),
            bank_hash: false,
        }
        .build(t, &a, HUGE_PAGE_BITS)
        .unwrap();
        // One chunk (2 KB) ahead: paper moves to the next bank, channel-first
        // moves to the next channel.
        let (p0, p1) = (paper.map_pa(0), paper.map_pa(2048));
        let (c0, c1) = (chan_first.map_pa(0), chan_first.map_pa(2048));
        assert_eq!(p1.bank, p0.bank + 1);
        assert_eq!(p1.channel, p0.channel);
        assert_eq!(c1.channel, c0.channel + 1);
        assert_eq!(c1.bank, c0.bank);
    }

    #[test]
    fn out_of_range_mapid_rejected_at_construction() {
        let (t, a) = iphone();
        let c = Candidate { map_id: 9, pu_order: PuOrder::all()[3], bank_hash: false };
        assert!(matches!(
            c.build(t, &a, HUGE_PAGE_BITS),
            Err(FacilError::MapIdOutOfRange { requested: 9, .. })
        ));
    }

    #[test]
    fn decision_partitions_match_forced_mapid_rule() {
        use facil_core::{decision_with_map_id, DType};
        let (t, a) = iphone();
        let m = MatrixConfig::new(64, 4096, DType::F16); // 8 KB rows
        for map_id in 0..=3u8 {
            let ours = Candidate::paper(map_id).decision(&m, t, &a, HUGE_PAGE_BITS).unwrap();
            let reference = decision_with_map_id(&m, t, &a, map_id, HUGE_PAGE_BITS).unwrap();
            assert_eq!(ours, reference, "MapID {map_id}");
        }
    }

    #[test]
    fn narrow_matrix_rejected() {
        let (t, a) = iphone();
        let m = MatrixConfig::new(64, 256, facil_core::DType::F16);
        assert!(Candidate::paper(0).decision(&m, t, &a, HUGE_PAGE_BITS).is_err());
    }
}
