//! Property-based tests for the mapping search: the searched pick is
//! never worse than the paper's under the search's own cost model, and a
//! fixed seed yields byte-identical reports regardless of worker count.

use facil_core::{DType, MatrixConfig, PimArch};
use facil_dram::DramSpec;
use facil_mapsearch::{
    search_matrix, search_workload, SearchConfig, SearchReport, SearchStrategy, TensorSpec,
    WorkloadProfile,
};
use proptest::prelude::*;

fn spec() -> DramSpec {
    DramSpec::lpddr5_6400(64, 8 << 30) // 4 channels, iPhone-class
}

/// Random placeable matrix: power-of-two-ish shapes spanning skinny
/// slices through square blocks to tall classifier heads. Constrained by
/// row *bytes* (>= one 2 KiB chunk row) so every shape places under both
/// dtypes.
fn arb_matrix() -> impl Strategy<Value = MatrixConfig> {
    (4u32..=12, 11u32..=15, 0u64..3, prop::bool::ANY).prop_map(
        |(row_exp, row_bytes_exp, row_fudge, f16)| {
            let rows = (1u64 << row_exp) + row_fudge * (1 << row_exp.saturating_sub(2));
            let (dtype, elem_log2) = if f16 { (DType::F16, 1) } else { (DType::I8, 0) };
            let cols = 1u64 << (row_bytes_exp - elem_log2);
            MatrixConfig::new(rows, cols, dtype)
        },
    )
}

/// Random GEMV/GEMM mix (both weights positive so neither term vanishes).
fn arb_mix() -> impl Strategy<Value = (f64, f64)> {
    (0.05f64..1.0, 0.05f64..1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The epsilon incumbent rule guarantees the searched pick is never
    /// worse than the paper's under the search's own measured cost model:
    /// displacement requires a measured win, retention keeps the paper's
    /// candidate (and therefore its exact score).
    #[test]
    fn searched_never_worse_than_paper((matrix, (gemv, gemm)) in (arb_matrix(), arb_mix())) {
        let spec = spec();
        let arch = PimArch::aim(&spec.topology);
        let tensor = TensorSpec::new("t", matrix);
        let profile = WorkloadProfile::decode_only("prop", vec![tensor.clone()])
            .with_mix(gemv, gemm);
        let config = SearchConfig::default();
        let r = search_matrix(&spec, &arch, &tensor, &profile, &config).unwrap();

        prop_assert!(
            r.best_measured.score <= r.paper_measured.score,
            "searched {} must not lose to paper {}",
            r.best_measured.score,
            r.paper_measured.score
        );
        if r.displaced {
            prop_assert!(r.improvement > config.improvement_threshold);
            prop_assert!(r.best != r.paper);
        } else {
            prop_assert!(r.best == r.paper, "retention must keep the paper's candidate");
            prop_assert!(r.improvement == 0.0);
        }
        // The analytic phase also never ranks the paper's pick strictly
        // below every alternative it examined: the minimum analytic score
        // over all outcomes bounds the paper candidate's analytic score.
        let paper_analytic = r
            .outcomes
            .iter()
            .find(|o| o.candidate == r.paper)
            .map(|o| o.analytic.score)
            .unwrap();
        let min_analytic = r
            .outcomes
            .iter()
            .map(|o| o.analytic.score)
            .fold(f64::INFINITY, f64::min);
        prop_assert!(min_analytic <= paper_analytic);
    }

    /// A fixed seed produces byte-identical reports — including under the
    /// hill-climb strategy (the only seed consumer) and regardless of the
    /// worker count (the `FACIL_THREADS` analogue inside the search).
    #[test]
    fn fixed_seed_is_byte_identical_across_workers(
        (matrix, seed) in (arb_matrix(), 0u64..1_000_000)
    ) {
        let spec = spec();
        let arch = PimArch::aim(&spec.topology);
        let profile = WorkloadProfile::decode_only(
            "prop",
            vec![TensorSpec::new("t", matrix)],
        );
        let base = SearchConfig {
            seed,
            strategy: SearchStrategy::HillClimb,
            ..SearchConfig::default()
        };
        let serial = SearchConfig { workers: Some(1), ..base };
        let wide = SearchConfig { workers: Some(8), ..base };

        let report = |config: &SearchConfig| -> SearchReport {
            let results = search_workload(&spec, &arch, &profile, config).unwrap();
            SearchReport::new("prop", &profile.name, config, spec.topology, arch, results)
                .unwrap()
        };
        let a = report(&serial);
        let b = report(&wide);
        prop_assert_eq!(a.to_json(), b.to_json());
    }
}
