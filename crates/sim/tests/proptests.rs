//! Property-based tests of the end-to-end strategy engine.

use facil_sim::{InferenceSim, Strategy};
use facil_soc::{Platform, PlatformId};
use facil_workloads::Query;
use proptest::prelude::*;
use std::sync::OnceLock;

/// One shared simulator (construction runs a DRAM simulation; reuse it).
fn sim() -> &'static InferenceSim {
    static SIM: OnceLock<InferenceSim> = OnceLock::new();
    SIM.get_or_init(|| InferenceSim::new(Platform::get(PlatformId::Iphone)).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Structural invariants hold for every query under every strategy.
    #[test]
    fn query_results_are_well_formed(prefill in 1u64..512, decode in 0u64..128) {
        let q = Query { prefill, decode };
        for strategy in Strategy::all() {
            let r = sim().run_query(strategy, q);
            prop_assert!(r.ttft_ns > 0.0);
            prop_assert!(r.ttlt_ns >= r.ttft_ns);
            prop_assert!(r.relayout_ns >= 0.0);
            if decode == 0 {
                prop_assert!((r.ttlt_ns - r.ttft_ns).abs() < 1.0);
            }
        }
    }

    /// FACIL never loses TTFT to the hybrid-static baseline, and the
    /// dynamic variants never lose to their static counterparts.
    #[test]
    fn facil_dominance(prefill in 1u64..512) {
        let q = Query { prefill, decode: 1 };
        let stat = sim().run_query(Strategy::HybridStatic, q);
        let facil = sim().run_query(Strategy::FacilStatic, q);
        let dyn_h = sim().run_query(Strategy::HybridDynamic, q);
        let dyn_f = sim().run_query(Strategy::FacilDynamic, q);
        prop_assert!(facil.ttft_ns < stat.ttft_ns);
        prop_assert!(dyn_h.ttft_ns <= stat.ttft_ns + 1.0);
        prop_assert!(dyn_f.ttft_ns <= facil.ttft_ns + 1.0);
    }

    /// TTFT is monotone in prefill length for every strategy.
    #[test]
    fn ttft_monotone_in_prefill(prefill in 1u64..256, extra in 1u64..256) {
        for strategy in Strategy::all() {
            let a = sim().prefill_ns(strategy, prefill).0;
            let b = sim().prefill_ns(strategy, prefill + extra).0;
            prop_assert!(b >= a * 0.999, "{strategy}: {a} -> {b}");
        }
    }

    /// TTLT decomposes: prefill + sum of decode steps, and decode steps are
    /// identical across PIM-decoding strategies.
    #[test]
    fn ttlt_decomposition(prefill in 1u64..64, decode in 1u64..32) {
        let q = Query { prefill, decode };
        let a = sim().run_query(Strategy::HybridStatic, q);
        let b = sim().run_query(Strategy::FacilDynamic, q);
        let decode_a = a.ttlt_ns - a.ttft_ns;
        let decode_b = b.ttlt_ns - b.ttft_ns;
        prop_assert!((decode_a - decode_b).abs() < 1.0, "{decode_a} vs {decode_b}");
        let manual: f64 = (0..decode).map(|i| sim().decode_step_pim_ns(prefill + i)).sum();
        prop_assert!((decode_a - manual).abs() < 1.0);
    }
}
