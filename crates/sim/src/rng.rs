//! Shared seeded PRNG for the simulation crates.
//!
//! Several simulators (the serving queue, the co-schedule command bus, the
//! serving subsystem in `facil-serve`) need a tiny, dependency-free,
//! deterministic random source. They used to each carry a copy-pasted
//! `xorshift` free function; this module is the single shared home.

/// xorshift64\* PRNG (Vigna, "An experimental exploration of Marsaglia's
/// xorshift generators, scrambled").
///
/// Deterministic and dependency-free. The constructor forces the low bit of
/// the seed to 1 (`seed | 1`): xorshift has a single absorbing zero state,
/// and the guard keeps `seed == 0` (a natural "default" callers do pass)
/// from producing an all-zero stream while preserving determinism for every
/// seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XorShift64Star {
    state: u64,
}

impl XorShift64Star {
    /// Seed the generator. The low bit is forced to 1 (see the type docs).
    pub fn new(seed: u64) -> Self {
        XorShift64Star { state: seed | 1 }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Next uniform sample in `[0, 1)` (53 mantissa bits).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Exponentially-distributed sample with the given `rate` (events per
    /// unit time) — the inter-arrival time of a Poisson process.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not positive.
    pub fn next_exp(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "exponential rate must be positive");
        -self.next_f64().max(1e-12).ln() / rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_under_seed() {
        let mut a = XorShift64Star::new(42);
        let mut b = XorShift64Star::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = XorShift64Star::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn zero_seed_is_guarded() {
        let mut r = XorShift64Star::new(0);
        // Without the `| 1` guard the zero state would be absorbing and
        // every output would be 0.
        assert_ne!(r.next_u64(), 0);
        // seed 0 and seed 1 coincide by construction of the guard.
        assert_eq!(XorShift64Star::new(0), XorShift64Star::new(1));
    }

    #[test]
    fn uniform_samples_are_in_unit_interval_and_spread() {
        let mut r = XorShift64Star::new(7);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u = r.next_f64();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut r = XorShift64Star::new(11);
        let rate = 4.0;
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.next_exp(rate)).sum::<f64>() / n as f64;
        assert!((mean - 1.0 / rate).abs() < 0.02, "mean {mean}");
    }
}
