//! Decode-phase energy comparison: SoC GEMV (every weight byte crosses the
//! DRAM interface) vs PIM GEMV (weights stay on-die; only inputs, outputs
//! and the attention epilogue cross the pins). One of the standing
//! arguments for near-bank PIM, quantified with the DRAM energy model.

use facil_dram::{DramStats, EnergyModel};
use facil_llm::ModelConfig;
use facil_soc::Platform;
use serde::{Deserialize, Serialize};

/// Energy of one decode token under both executors, microjoules.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TokenEnergy {
    /// Decode-step energy with GEMVs on the SoC.
    pub soc_uj: f64,
    /// Decode-step energy with GEMVs on the PIM.
    pub pim_uj: f64,
    /// soc / pim.
    pub ratio: f64,
    /// Interface energy saved by PIM for this token, microjoules.
    pub io_saved_uj: f64,
}

/// Estimate the DRAM-side energy of one decode step at context `ctx`.
///
/// Both executors read every weight byte once from the arrays; the SoC
/// additionally pays interface energy for all of it, while the PIM pays
/// interface energy only for the input broadcast, the output drain and the
/// SoC-side attention/epilogue traffic.
pub fn decode_energy_per_token(
    platform: &Platform,
    model: &ModelConfig,
    ctx: u64,
    energy: &EnergyModel,
) -> TokenEnergy {
    let spec = &platform.dram;
    let tx = spec.topology.transfer_bytes;
    let weights = model.linear_weight_bytes();
    let epilogue = model.kv_read_bytes(ctx)
        + model.kv_write_bytes_per_token()
        + model.elementwise_bytes_per_token();

    // Weight stream: one column access per transfer, one ACT per DRAM row.
    let weight_stats = DramStats {
        reads: weights / tx,
        activates: weights / spec.topology.row_bytes,
        ..Default::default()
    };
    // Epilogue stream (SoC side in both cases), ~90% row hits.
    let epilogue_stats =
        DramStats { reads: epilogue / tx, activates: (epilogue / tx) / 10, ..Default::default() };
    // PIM-side extra interface traffic: input broadcast per (tile, segment)
    // and the output drain.
    let input_bytes = weights / spec.topology.row_bytes * 8; // ~per-row share of input reloads
    let output_bytes = model.hidden * 4 * model.elem_bytes; // partials + outputs, coarse
    let pim_io_stats = DramStats {
        reads: (input_bytes + output_bytes) / tx + 1,
        activates: 1,
        ..Default::default()
    };

    // Elapsed times only feed background energy; use effective-bandwidth
    // streaming times.
    let soc_ns = weights as f64 / platform.soc.effective_bw() * 1e9;
    let pim_ns = soc_ns / 8.0; // PIM streams weights ~an order faster

    let soc = energy.energy(spec, &weight_stats, soc_ns).total_uj()
        + energy.energy(spec, &epilogue_stats, 0.0).total_uj();
    let pim = energy.energy_internal(spec, &weight_stats, pim_ns).total_uj()
        + energy.energy(spec, &pim_io_stats, 0.0).total_uj()
        + energy.energy(spec, &epilogue_stats, 0.0).total_uj();
    let io_saved = energy.energy(spec, &weight_stats, 0.0).io_uj;
    TokenEnergy { soc_uj: soc, pim_uj: pim, ratio: soc / pim, io_saved_uj: io_saved }
}

#[cfg(test)]
mod tests {
    use super::*;
    use facil_soc::PlatformId;

    #[test]
    fn pim_saves_energy_on_every_platform() {
        let e = EnergyModel::default();
        for id in PlatformId::all() {
            let p = Platform::get(id);
            let m = ModelConfig::by_name(p.model_name);
            let t = decode_energy_per_token(&p, &m, 64, &e);
            assert!(t.ratio > 1.2, "{id}: ratio {}", t.ratio);
            assert!(t.io_saved_uj > 0.0);
            assert!(t.pim_uj > 0.0);
        }
    }

    #[test]
    fn longer_context_costs_more_everywhere() {
        let e = EnergyModel::default();
        let p = Platform::get(PlatformId::Jetson);
        let m = ModelConfig::llama3_8b();
        let short = decode_energy_per_token(&p, &m, 64, &e);
        let long = decode_energy_per_token(&p, &m, 1024, &e);
        assert!(long.soc_uj > short.soc_uj);
        assert!(long.pim_uj > short.pim_uj);
    }
}
