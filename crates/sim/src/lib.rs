//! # facil-sim
//!
//! End-to-end SoC-PIM cooperative inference simulation for the FACIL
//! (HPCA 2025) reproduction:
//!
//! * [`relayout::RelayoutModel`] — DRAM-simulated cost of converting
//!   weights between the PIM-optimized and conventional layouts (the
//!   baseline's per-prefill penalty, paper Fig. 6);
//! * [`engine::InferenceSim`] — the five execution strategies (SoC-only,
//!   hybrid-static, hybrid-dynamic, FACIL, FACIL+dynamic) with TTFT/TTLT
//!   accounting over any (platform, model, query);
//! * [`metrics`] — dataset-level geometric-mean speedups (Figs. 13-16).
//!
//! ```no_run
//! use facil_sim::{InferenceSim, Strategy};
//! use facil_soc::{Platform, PlatformId};
//! use facil_workloads::Query;
//!
//! let sim = InferenceSim::new(Platform::get(PlatformId::Jetson))?;
//! let q = Query { prefill: 64, decode: 64 };
//! let base = sim.run_query(Strategy::HybridStatic, q);
//! let facil = sim.run_query(Strategy::FacilStatic, q);
//! println!("TTFT speedup: {:.2}x", base.ttft_ns / facil.ttft_ns);
//! # Ok::<(), facil_core::FacilError>(())
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod cosched;
pub mod energy;
pub mod engine;
pub mod metrics;
pub mod relayout;
pub mod rng;
pub mod serving;
/// Deterministic fork-join parallelism ([`pool::par_map`], the
/// `FACIL_THREADS` knob) — lives in [`facil_telemetry`] so the DRAM layer
/// below this crate can use the same pool; re-exported here as the
/// documented `facil_sim::pool` entry point.
pub use facil_telemetry::pool;
/// Latency statistics — moved to [`facil_telemetry::stats`] so the whole
/// workspace shares one percentile definition; re-exported here for the
/// existing `facil_sim::stats` paths.
pub use facil_telemetry::stats;

pub use cosched::{run_cosched, run_cosched_traced, CoschedConfig, CoschedPolicy, CoschedResult};
pub use energy::{decode_energy_per_token, TokenEnergy};
pub use engine::{InferenceSim, QueryResult, Strategy};
pub use metrics::{geomean_speedup, run_dataset, DatasetRun};
pub use relayout::{RelayoutModel, RelayoutProfile};
pub use rng::XorShift64Star;
pub use serving::{serve, ServingConfig, ServingResult};
pub use stats::{percentile, Summary};
