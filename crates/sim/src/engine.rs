//! End-to-end SoC-PIM cooperative inference: the four execution strategies
//! of the paper and their TTFT/TTLT accounting.

use facil_core::{select_mapping_2mb, DType, MappingDecision, MatrixConfig};
use facil_llm::ModelConfig;
use facil_pim::PimEngine;
use facil_soc::Platform;
use facil_workloads::Query;
use serde::{Deserialize, Serialize};

use crate::relayout::RelayoutModel;

/// Execution strategy for a query (paper Sections III, VI).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Strategy {
    /// Everything on the SoC processor; weights in conventional layout.
    SocOnly,
    /// The paper's baseline ("hybrid static"): weights in PIM layout,
    /// prefill GEMMs on the SoC after an on-demand re-layout, decode on PIM.
    HybridStatic,
    /// "Hybrid dynamic": like the baseline, but short prefills run their
    /// GEMMs directly on the PIM (no re-layout), whichever is faster.
    HybridDynamic,
    /// FACIL as in Figs. 13/14: prefill GEMMs on the SoC *in place* over
    /// the PIM-optimized layout (Table III slowdown applied), decode on PIM.
    FacilStatic,
    /// FACIL with the dynamic prefill-offload optimization (the "FACIL" of
    /// Figs. 15/16).
    FacilDynamic,
}

impl Strategy {
    /// All strategies, baseline-first.
    pub fn all() -> [Strategy; 5] {
        [
            Strategy::SocOnly,
            Strategy::HybridStatic,
            Strategy::HybridDynamic,
            Strategy::FacilStatic,
            Strategy::FacilDynamic,
        ]
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Strategy::SocOnly => "SoC-only",
            Strategy::HybridStatic => "hybrid-static",
            Strategy::HybridDynamic => "hybrid-dynamic",
            Strategy::FacilStatic => "FACIL",
            Strategy::FacilDynamic => "FACIL+dynamic",
        };
        write!(f, "{s}")
    }
}

/// Timing result of one query.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueryResult {
    /// Time to first token = prefill time (ns).
    pub ttft_ns: f64,
    /// Time to last token = prefill + all decode steps (ns).
    pub ttlt_ns: f64,
    /// Re-layout time included in the prefill (ns; 0 unless hybrid-*).
    pub relayout_ns: f64,
    /// Whether the prefill GEMMs ran on the PIM (dynamic offload).
    pub prefill_on_pim: bool,
}

/// Per-weight cached state.
#[derive(Debug, Clone)]
struct Weight {
    matrix: MatrixConfig,
    decision: MappingDecision,
    instances: u64,
    /// PIM GEMV time for one instance, ns, excluding dispatch overhead.
    pim_gemv_ns: f64,
}

/// The end-to-end simulator for one (platform, model) pair.
#[derive(Debug)]
pub struct InferenceSim {
    platform: Platform,
    model: ModelConfig,
    pim: PimEngine,
    relayout: RelayoutModel,
    weights: Vec<Weight>,
    /// Cached sum over weights of (PIM GEMV + dispatch overhead) x instances.
    pim_linear_decode_ns: f64,
    /// Cached sum over weights of PIM GEMV x instances (no dispatch).
    pim_gemv_decode_ns: f64,
    /// Cached sum over weights of the dispatch overhead x instances.
    pim_dispatch_decode_ns: f64,
    /// Cached sum over weights of SoC GEMV x instances.
    soc_linear_decode_ns: f64,
}

impl InferenceSim {
    /// Build the simulator for a platform, using its Table II model.
    ///
    /// # Errors
    ///
    /// Propagates mapping-selection errors if a model weight cannot be
    /// placed on the platform's memory (cannot happen for the four presets).
    pub fn new(platform: Platform) -> facil_core::Result<Self> {
        let model = ModelConfig::by_name(platform.model_name);
        Self::with_model(platform, model)
    }

    /// Build the simulator with an explicit model.
    ///
    /// # Errors
    ///
    /// Propagates mapping-selection errors (unplaceable weight matrices).
    pub fn with_model(platform: Platform, model: ModelConfig) -> facil_core::Result<Self> {
        Self::with_model_and_dtype(platform, model, DType::F16)
    }

    /// Build the simulator with weight-only quantization: weights stored
    /// and streamed at `dtype`, activations/KV kept at the model precision.
    ///
    /// # Errors
    ///
    /// Propagates mapping-selection errors (unplaceable weight matrices).
    pub fn with_model_and_dtype(
        platform: Platform,
        model: ModelConfig,
        dtype: DType,
    ) -> facil_core::Result<Self> {
        let topo = platform.dram.topology;
        let arch = platform.pim_arch;
        Self::with_selector(platform, model, dtype, |matrix| {
            select_mapping_2mb(matrix, topo, &arch)
        })
    }

    /// Build the simulator with a pluggable mapping selector: every weight
    /// matrix's [`MappingDecision`] comes from `select` instead of the
    /// paper's closed-form rule. This is how a
    /// `facil_mapsearch::SearchReport` plugs its searched picks into the
    /// end-to-end simulation (`sim.with_selector(report.selector())`).
    ///
    /// # Errors
    ///
    /// Propagates selector errors (unplaceable weight matrices).
    pub fn with_selector(
        platform: Platform,
        model: ModelConfig,
        dtype: DType,
        select: impl Fn(&MatrixConfig) -> facil_core::Result<MappingDecision>,
    ) -> facil_core::Result<Self> {
        let pim = PimEngine::new(platform.dram.clone(), platform.pim_arch);
        let relayout = RelayoutModel::new(platform.dram.clone(), platform.pim_arch);
        let mut weights = Vec::new();
        for (op, instances) in model.all_linears() {
            let matrix = MatrixConfig::new(op.out_features, op.in_features, dtype);
            let decision = select(&matrix)?;
            let pim_gemv_ns = pim.gemv(&matrix, &decision).time_ns;
            weights.push(Weight { matrix, decision, instances, pim_gemv_ns });
        }
        let pim_gemv_decode_ns: f64 =
            weights.iter().map(|w| w.pim_gemv_ns * w.instances as f64).sum();
        let pim_dispatch_decode_ns: f64 =
            weights.iter().map(|w| platform.pim_op_overhead_ns * w.instances as f64).sum();
        let soc_linear_decode_ns = weights
            .iter()
            .map(|w| {
                platform.soc.gemv_ns(w.matrix.rows, w.matrix.cols, dtype.bytes())
                    * w.instances as f64
            })
            .sum();
        Ok(InferenceSim {
            platform,
            model,
            pim,
            relayout,
            weights,
            pim_linear_decode_ns: pim_gemv_decode_ns + pim_dispatch_decode_ns,
            pim_gemv_decode_ns,
            pim_dispatch_decode_ns,
            soc_linear_decode_ns,
        })
    }

    /// The platform.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The model.
    pub fn model(&self) -> &ModelConfig {
        &self.model
    }

    /// Total linear-weight bytes at the stored precision (the re-layout
    /// volume).
    pub fn weight_bytes(&self) -> u64 {
        self.weights.iter().map(|w| w.matrix.bytes() * w.instances).sum()
    }

    /// Re-layout time of all weights (the baseline's per-prefill penalty),
    /// ns.
    pub fn relayout_ns(&self) -> f64 {
        self.relayout.cost_ns(self.weight_bytes())
    }

    /// Attention + element-wise time of one decode step at context `ctx`,
    /// executed on the SoC under every strategy, ns.
    fn decode_epilogue_ns(&self, ctx: u64) -> f64 {
        let bytes = self.model.kv_read_bytes(ctx)
            + self.model.kv_write_bytes_per_token()
            + self.model.elementwise_bytes_per_token();
        self.platform.soc.stream_ns(bytes)
    }

    /// One decode step on PIM (linears) + SoC (attention, epilogue), ns.
    pub fn decode_step_pim_ns(&self, ctx: u64) -> f64 {
        self.pim_linear_decode_ns + self.decode_epilogue_ns(ctx)
    }

    /// One decode step fully on the SoC, ns.
    pub fn decode_step_soc_ns(&self, ctx: u64) -> f64 {
        self.soc_linear_decode_ns + self.decode_epilogue_ns(ctx)
    }

    /// One *batched* decode iteration on the PIM for in-flight requests at
    /// context lengths `ctxs`, ns (continuous batching, `facil-serve`).
    ///
    /// The PIM linears are weight-bound: each request needs its own GEMV
    /// pass over the weights (near-bank MACs consume one activation vector
    /// per pass), but the per-operation dispatch overhead (driver, DMA
    /// descriptor, synchronization) is paid once per weight op for the whole
    /// batch — the batched descriptor carries all activation vectors. The
    /// per-request attention/element-wise epilogue still runs on the SoC.
    ///
    /// For a single request this equals [`InferenceSim::decode_step_pim_ns`].
    pub fn decode_batch_pim_ns(&self, ctxs: &[u64]) -> f64 {
        if ctxs.is_empty() {
            return 0.0;
        }
        self.pim_gemv_decode_ns * ctxs.len() as f64
            + self.pim_dispatch_decode_ns
            + ctxs.iter().map(|&c| self.decode_epilogue_ns(c)).sum::<f64>()
    }

    /// One batched decode iteration fully on the SoC, ns. The SoC GEMV is
    /// bandwidth-bound on the weights, so batching amortizes nothing in this
    /// roofline model: the cost is the sum of the per-request steps.
    pub fn decode_batch_soc_ns(&self, ctxs: &[u64]) -> f64 {
        ctxs.iter().map(|&c| self.decode_step_soc_ns(c)).sum()
    }

    /// One-time cost `strategy` pays when the PIM units fail (and again
    /// when they recover), ns — the paper's flexibility argument (§IV)
    /// made measurable.
    ///
    /// FACIL's PIM-optimized layout stays SoC-readable, so FACIL (and the
    /// SoC-only strategy, whose weights are conventional already) switch to
    /// the SoC path for free. A conventional PIM system's weights are *only*
    /// readable by the PIM datapath: before the SoC can serve, all weights
    /// must be re-laid-out to the conventional mapping — and converted back
    /// on recovery, which is why this is charged at both transitions.
    pub fn degraded_relayout_ns(&self, strategy: Strategy) -> f64 {
        match strategy {
            Strategy::HybridStatic | Strategy::HybridDynamic => self.relayout_ns(),
            Strategy::SocOnly | Strategy::FacilStatic | Strategy::FacilDynamic => 0.0,
        }
    }

    /// One batched decode iteration in *degraded mode* (PIM units down), ns:
    /// everything runs on the SoC.
    ///
    /// * FACIL strategies execute SoC GEMVs in place over the PIM-optimized
    ///   layout, paying the Table III layout slowdown;
    /// * the hybrid baseline runs plain SoC GEMVs — but only after
    ///   [`InferenceSim::degraded_relayout_ns`] has been charged, since its
    ///   weights start in a PIM-only layout;
    /// * SoC-only is unchanged.
    pub fn decode_batch_degraded_ns(&self, strategy: Strategy, ctxs: &[u64]) -> f64 {
        match strategy {
            Strategy::FacilStatic | Strategy::FacilDynamic => ctxs
                .iter()
                .map(|&c| {
                    self.soc_linear_decode_ns * (1.0 + self.platform.gemm_layout_slowdown)
                        + self.decode_epilogue_ns(c)
                })
                .sum(),
            Strategy::SocOnly | Strategy::HybridStatic | Strategy::HybridDynamic => {
                self.decode_batch_soc_ns(ctxs)
            }
        }
    }

    /// Cost of a prefill chunk in *degraded mode* (PIM units down), ns.
    /// No dynamic PIM offload is possible; FACIL pays the layout slowdown;
    /// the hybrid baseline runs plain SoC GEMMs over the conventional copy
    /// produced by the degraded-entry re-layout (no per-prefill re-layout
    /// while degraded).
    ///
    /// # Panics
    ///
    /// Panics if `len == 0` or `start + len > total`.
    pub fn prefill_chunk_degraded_ns(
        &self,
        strategy: Strategy,
        start: u64,
        len: u64,
        total: u64,
    ) -> f64 {
        assert!(len > 0, "prefill chunk must be non-empty");
        assert!(start + len <= total, "chunk [{start}, {}) beyond prefill {total}", start + len);
        let last = start + len == total;
        let epilogue = self.prefill_chunk_epilogue_ns(start, len);
        let soc = self.prefill_chunk_linears_soc_ns(len, last);
        match strategy {
            Strategy::FacilStatic | Strategy::FacilDynamic => {
                soc * (1.0 + self.platform.gemm_layout_slowdown) + epilogue
            }
            Strategy::SocOnly | Strategy::HybridStatic | Strategy::HybridDynamic => soc + epilogue,
        }
    }

    /// One decode step with *both* the linears and the attention
    /// score/value GEMVs on the PIM (AttAcc/NeuPIMs-style KV-cache
    /// offload — an extension beyond the paper, which keeps attention on
    /// the SoC). The KV cache streams at PIM internal bandwidth, but every
    /// layer pays two extra PIM dispatches (scores, values).
    pub fn decode_step_pim_attention_ns(&self, ctx: u64) -> f64 {
        let kv_bytes = self.model.kv_read_bytes(ctx) as f64;
        // KV tensors are small and freshly written: ~70% of the peak
        // internal bandwidth is achievable.
        let kv_stream = kv_bytes / (self.pim.peak_internal_bandwidth() * 0.7) * 1e9;
        let dispatches = 2.0 * self.model.layers as f64 * self.platform.pim_op_overhead_ns;
        let epilogue_bytes =
            self.model.kv_write_bytes_per_token() + self.model.elementwise_bytes_per_token();
        self.pim_linear_decode_ns
            + kv_stream
            + dispatches
            + self.platform.soc.stream_ns(epilogue_bytes)
    }

    /// One decode step on a hypothetical ideal NPU: infinite FLOPS, 100% of
    /// peak bandwidth, no overheads (the comparator of paper Fig. 3).
    pub fn decode_step_ideal_npu_ns(&self, ctx: u64) -> f64 {
        let bytes = self.weight_bytes()
            + self.model.kv_read_bytes(ctx)
            + self.model.kv_write_bytes_per_token()
            + self.model.elementwise_bytes_per_token();
        bytes as f64 / self.platform.soc.peak_bw * 1e9
    }

    /// Prefill linear time on the SoC (no re-layout, conventional layout),
    /// ns.
    fn prefill_linears_soc_ns(&self, p: u64) -> f64 {
        self.weights
            .iter()
            .map(|w| {
                // lm_head runs once for the last position only.
                let m = if w.matrix.rows == self.model.vocab { 1 } else { p };
                self.platform.soc.gemm_ns(m, w.matrix.rows, w.matrix.cols, w.matrix.dtype.bytes())
                    * w.instances as f64
            })
            .sum()
    }

    /// Prefill linear time on the PIM (GEMM as repeated MAC passes), ns.
    fn prefill_linears_pim_ns(&self, p: u64) -> f64 {
        self.weights
            .iter()
            .map(|w| {
                let m = if w.matrix.rows == self.model.vocab { 1 } else { p };
                (self.pim.gemm(&w.matrix, &w.decision, m).time_ns
                    + self.platform.pim_op_overhead_ns)
                    * w.instances as f64
            })
            .sum()
    }

    /// Attention + element-wise time of the whole prefill on the SoC, ns.
    fn prefill_epilogue_ns(&self, p: u64) -> f64 {
        let kv_pairs = p * (p + 1) / 2;
        let bytes = self.model.kv_read_bytes(1) * kv_pairs
            + self.model.kv_write_bytes_per_token() * p
            + self.model.elementwise_bytes_per_token() * p;
        self.platform.soc.stream_ns(bytes)
    }

    /// Whether `strategy` offloads the prefill GEMMs of a `p`-token prefill
    /// to the PIM (the per-query decision of the dynamic strategies; always
    /// false for the static ones).
    pub fn prefill_offloads_to_pim(&self, strategy: Strategy, p: u64) -> bool {
        match strategy {
            Strategy::HybridDynamic => {
                self.prefill_linears_pim_ns(p) < self.prefill_linears_soc_ns(p) + self.relayout_ns()
            }
            Strategy::FacilDynamic => {
                self.prefill_linears_pim_ns(p)
                    < self.prefill_linears_soc_ns(p) * (1.0 + self.platform.gemm_layout_slowdown)
            }
            _ => false,
        }
    }

    /// TTFT (prefill time) under `strategy` for prefill length `p`, with
    /// the re-layout share and the PIM-offload decision.
    ///
    /// # Panics
    ///
    /// Panics if `p == 0`.
    pub fn prefill_ns(&self, strategy: Strategy, p: u64) -> (f64, f64, bool) {
        assert!(p > 0, "prefill length must be positive");
        let epilogue = self.prefill_epilogue_ns(p);
        let soc = self.prefill_linears_soc_ns(p);
        let on_pim = self.prefill_offloads_to_pim(strategy, p);
        match strategy {
            Strategy::SocOnly => (soc + epilogue, 0.0, false),
            Strategy::HybridStatic => {
                let relayout = self.relayout_ns();
                (soc + relayout + epilogue, relayout, false)
            }
            Strategy::HybridDynamic => {
                if on_pim {
                    (self.prefill_linears_pim_ns(p) + epilogue, 0.0, true)
                } else {
                    let relayout = self.relayout_ns();
                    (soc + relayout + epilogue, relayout, false)
                }
            }
            Strategy::FacilStatic => {
                let slowed = soc * (1.0 + self.platform.gemm_layout_slowdown);
                (slowed + epilogue, 0.0, false)
            }
            Strategy::FacilDynamic => {
                if on_pim {
                    (self.prefill_linears_pim_ns(p) + epilogue, 0.0, true)
                } else {
                    (soc * (1.0 + self.platform.gemm_layout_slowdown) + epilogue, 0.0, false)
                }
            }
        }
    }

    /// Linear time of a `len`-row prefill chunk on the SoC; the lm_head
    /// (vocab projection) runs for the last position only, so it is charged
    /// to the final chunk alone.
    fn prefill_chunk_linears_soc_ns(&self, len: u64, last: bool) -> f64 {
        self.weights
            .iter()
            .map(|w| {
                let m = if w.matrix.rows == self.model.vocab {
                    if last {
                        1
                    } else {
                        return 0.0;
                    }
                } else {
                    len
                };
                self.platform.soc.gemm_ns(m, w.matrix.rows, w.matrix.cols, w.matrix.dtype.bytes())
                    * w.instances as f64
            })
            .sum()
    }

    /// Linear time of a `len`-row prefill chunk on the PIM.
    fn prefill_chunk_linears_pim_ns(&self, len: u64, last: bool) -> f64 {
        self.weights
            .iter()
            .map(|w| {
                let m = if w.matrix.rows == self.model.vocab {
                    if last {
                        1
                    } else {
                        return 0.0;
                    }
                } else {
                    len
                };
                (self.pim.gemm(&w.matrix, &w.decision, m).time_ns
                    + self.platform.pim_op_overhead_ns)
                    * w.instances as f64
            })
            .sum()
    }

    /// Attention + element-wise time of prefill tokens `[start, start+len)`
    /// on the SoC: each token attends to all earlier ones.
    fn prefill_chunk_epilogue_ns(&self, start: u64, len: u64) -> f64 {
        // sum_{i = start+1 .. start+len} i — always an integer because
        // `len` and `2*start + len + 1` have opposite parity.
        let kv_pairs = len * (2 * start + len + 1) / 2;
        let bytes = self.model.kv_read_bytes(1) * kv_pairs
            + self.model.kv_write_bytes_per_token() * len
            + self.model.elementwise_bytes_per_token() * len;
        self.platform.soc.stream_ns(bytes)
    }

    /// Cost of processing prefill tokens `[start, start+len)` of a
    /// `total`-token prefill under `strategy`, ns — the *resumable* prefill
    /// unit that `facil-serve` interleaves with decode iterations (chunked
    /// prefill / continuous batching).
    ///
    /// Invariants (unit-tested):
    /// * one whole-prefill chunk (`start == 0`, `len == total`) costs
    ///   exactly [`InferenceSim::prefill_ns`];
    /// * splitting a prefill into chunks never costs *less* than the whole
    ///   (each chunk pays its own kernel-launch / dispatch overheads);
    /// * the hybrid strategies pay the re-layout once, on the first chunk,
    ///   and the dynamic offload decision is made on `total` (the engine
    ///   profiles whole prefills, not chunks).
    ///
    /// # Panics
    ///
    /// Panics if `len == 0` or `start + len > total`.
    pub fn prefill_chunk_ns(&self, strategy: Strategy, start: u64, len: u64, total: u64) -> f64 {
        assert!(len > 0, "prefill chunk must be non-empty");
        assert!(start + len <= total, "chunk [{start}, {}) beyond prefill {total}", start + len);
        let last = start + len == total;
        let first = start == 0;
        let epilogue = self.prefill_chunk_epilogue_ns(start, len);
        let on_pim = self.prefill_offloads_to_pim(strategy, total);
        if on_pim {
            return self.prefill_chunk_linears_pim_ns(len, last) + epilogue;
        }
        let soc = self.prefill_chunk_linears_soc_ns(len, last);
        match strategy {
            Strategy::SocOnly => soc + epilogue,
            Strategy::HybridStatic | Strategy::HybridDynamic => {
                let relayout = if first { self.relayout_ns() } else { 0.0 };
                soc + relayout + epilogue
            }
            Strategy::FacilStatic | Strategy::FacilDynamic => {
                soc * (1.0 + self.platform.gemm_layout_slowdown) + epilogue
            }
        }
    }

    /// The *all-at-once* re-layout baseline of paper footnote 2: instead of
    /// re-laying each matrix out on demand (and discarding the conventional
    /// copy), all weights are converted to the conventional layout at the
    /// start of the prefill and converted *back* to the PIM layout when the
    /// decode phase begins — paying the re-layout cost twice per query.
    pub fn run_query_all_at_once(&self, q: Query) -> QueryResult {
        let mut r = self.run_query(Strategy::HybridStatic, q);
        let back = self.relayout_ns();
        r.ttlt_ns += back;
        r.relayout_ns += back;
        r
    }

    /// The prefill length below which the PIM executes prefill GEMMs
    /// faster than the SoC path of `strategy` — the offline profiling
    /// threshold of the paper's hybrid-dynamic optimization (Section VI-C:
    /// "we profile the prefill execution time of SoC and PIM beforehand to
    /// determine the threshold"). Returns 0 if the PIM never wins.
    pub fn dynamic_offload_threshold(&self, strategy: Strategy) -> u64 {
        let soc_path = |p: u64| match strategy {
            Strategy::FacilStatic | Strategy::FacilDynamic => {
                self.prefill_linears_soc_ns(p) * (1.0 + self.platform.gemm_layout_slowdown)
            }
            _ => self.prefill_linears_soc_ns(p) + self.relayout_ns(),
        };
        // PIM prefill time grows ~linearly in p while the SoC path is flat
        // in the memory-bound regime: binary-search the crossover.
        let (mut lo, mut hi) = (0u64, 4096u64);
        if self.prefill_linears_pim_ns(1) >= soc_path(1) {
            return 0;
        }
        while lo + 1 < hi {
            let mid = (lo + hi) / 2;
            if self.prefill_linears_pim_ns(mid) < soc_path(mid) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Run a full query under `strategy`.
    pub fn run_query(&self, strategy: Strategy, q: Query) -> QueryResult {
        let (ttft_ns, relayout_ns, prefill_on_pim) = self.prefill_ns(strategy, q.prefill.max(1));
        let mut total = ttft_ns;
        for i in 0..q.decode {
            let ctx = q.prefill + i;
            total += match strategy {
                Strategy::SocOnly => self.decode_step_soc_ns(ctx),
                _ => self.decode_step_pim_ns(ctx),
            };
        }
        QueryResult { ttft_ns, ttlt_ns: total, relayout_ns, prefill_on_pim }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use facil_soc::PlatformId;

    fn iphone_sim() -> InferenceSim {
        InferenceSim::new(Platform::get(PlatformId::Iphone)).unwrap()
    }

    #[test]
    fn facil_beats_hybrid_static_ttft() {
        let sim = iphone_sim();
        let q = Query { prefill: 16, decode: 8 };
        let base = sim.run_query(Strategy::HybridStatic, q);
        let facil = sim.run_query(Strategy::FacilStatic, q);
        assert!(facil.ttft_ns < base.ttft_ns, "{} vs {}", facil.ttft_ns, base.ttft_ns);
        assert!(base.relayout_ns > 0.0);
        assert_eq!(facil.relayout_ns, 0.0);
        // The whole TTFT gap is (almost exactly) the re-layout cost.
        let gap = base.ttft_ns - facil.ttft_ns;
        assert!(
            (gap / base.relayout_ns - 1.0).abs() < 0.1,
            "gap {gap} vs relayout {}",
            base.relayout_ns
        );
    }

    #[test]
    fn ttft_speedup_decreases_with_prefill_length() {
        let sim = iphone_sim();
        let speedup = |p: u64| {
            let b = sim.prefill_ns(Strategy::HybridStatic, p).0;
            let f = sim.prefill_ns(Strategy::FacilStatic, p).0;
            b / f
        };
        let s8 = speedup(8);
        let s128 = speedup(128);
        assert!(s8 > s128, "paper Fig. 13: speedup inversely related to prefill ({s8} vs {s128})");
        assert!(s8 > 1.5, "s8 = {s8}");
    }

    #[test]
    fn dynamic_offload_helps_short_prefills() {
        let sim = iphone_sim();
        let dyn2 = sim.run_query(Strategy::HybridDynamic, Query { prefill: 2, decode: 1 });
        let stat2 = sim.run_query(Strategy::HybridStatic, Query { prefill: 2, decode: 1 });
        assert!(dyn2.ttft_ns <= stat2.ttft_ns);
        assert!(dyn2.prefill_on_pim, "tiny prefill should offload to PIM");
        // Long prefills stay on the SoC.
        let dyn256 = sim.run_query(Strategy::HybridDynamic, Query { prefill: 256, decode: 1 });
        assert!(!dyn256.prefill_on_pim);
    }

    #[test]
    fn pim_decode_beats_soc_decode() {
        let sim = iphone_sim();
        let pim = sim.decode_step_pim_ns(64);
        let soc = sim.decode_step_soc_ns(64);
        assert!(pim < soc / 2.0, "PIM decode {pim} vs SoC {soc}");
    }

    #[test]
    fn pim_decode_beats_ideal_npu() {
        // Paper Fig. 3: PIM outruns even an ideal NPU bounded by peak BW.
        let sim = iphone_sim();
        let pim = sim.decode_step_pim_ns(64);
        let npu = sim.decode_step_ideal_npu_ns(64);
        assert!(pim < npu, "PIM {pim} vs ideal NPU {npu}");
    }

    #[test]
    fn soc_only_has_fast_ttft_but_slow_ttlt() {
        let sim = iphone_sim();
        let q = Query { prefill: 16, decode: 64 };
        let soc = sim.run_query(Strategy::SocOnly, q);
        let hybrid = sim.run_query(Strategy::HybridStatic, q);
        // SoC-only avoids re-layout => good TTFT...
        assert!(soc.ttft_ns < hybrid.ttft_ns);
        // ...but decode on the SoC ruins TTLT (paper Section VI-C).
        assert!(soc.ttlt_ns > hybrid.ttlt_ns);
    }

    #[test]
    fn ttlt_includes_all_decode_steps() {
        let sim = iphone_sim();
        let q = Query { prefill: 8, decode: 4 };
        let r = sim.run_query(Strategy::FacilStatic, q);
        let manual: f64 = (0..4).map(|i| sim.decode_step_pim_ns(8 + i)).sum::<f64>() + r.ttft_ns;
        assert!((r.ttlt_ns - manual).abs() < 1.0);
    }

    #[test]
    fn int8_weights_shrink_everything_but_keep_facil_ahead() {
        let platform = Platform::get(PlatformId::Iphone);
        let model = facil_llm::ModelConfig::phi_1_5();
        let f16 = InferenceSim::with_model_and_dtype(
            platform.clone(),
            model.clone(),
            facil_core::DType::F16,
        )
        .unwrap();
        let i8 =
            InferenceSim::with_model_and_dtype(platform, model, facil_core::DType::I8).unwrap();
        assert_eq!(i8.weight_bytes() * 2, f16.weight_bytes());
        // Quantization shrinks the re-layout and both decode paths...
        assert!(i8.relayout_ns() < 0.6 * f16.relayout_ns());
        assert!(i8.decode_step_pim_ns(64) < f16.decode_step_pim_ns(64));
        // ...and FACIL still beats the baseline on TTFT.
        let q = Query { prefill: 16, decode: 4 };
        let base = i8.run_query(Strategy::HybridStatic, q);
        let facil = i8.run_query(Strategy::FacilStatic, q);
        assert!(facil.ttft_ns < base.ttft_ns);
    }

    #[test]
    fn offload_threshold_matches_per_query_decisions() {
        let sim = iphone_sim();
        for strategy in [Strategy::HybridDynamic, Strategy::FacilDynamic] {
            let thr = sim.dynamic_offload_threshold(strategy);
            assert!(thr > 0, "{strategy}: PIM must win short prefills");
            // Queries below the threshold offload; above, they do not.
            let below = sim.run_query(strategy, Query { prefill: thr.max(2) - 1, decode: 1 });
            let above = sim.run_query(strategy, Query { prefill: thr + 1, decode: 1 });
            assert!(below.prefill_on_pim, "{strategy}: p={} should offload", thr - 1);
            assert!(!above.prefill_on_pim, "{strategy}: p={} should not", thr + 1);
        }
        // The baseline pays re-layout on the SoC path, so its threshold is
        // at least FACIL's.
        assert!(
            sim.dynamic_offload_threshold(Strategy::HybridDynamic)
                >= sim.dynamic_offload_threshold(Strategy::FacilDynamic)
        );
    }

    #[test]
    fn attention_on_pim_wins_only_at_long_contexts() {
        let sim = iphone_sim();
        // Short context: dispatch overheads dominate, SoC attention wins.
        assert!(sim.decode_step_pim_attention_ns(32) > sim.decode_step_pim_ns(32));
        // Very long context: KV streaming at internal bandwidth wins.
        assert!(
            sim.decode_step_pim_attention_ns(65536) < sim.decode_step_pim_ns(65536),
            "{} vs {}",
            sim.decode_step_pim_attention_ns(65536),
            sim.decode_step_pim_ns(65536)
        );
    }

    #[test]
    fn all_at_once_relayout_is_strictly_worse() {
        // Paper footnote 2: converting everything back after the prefill
        // doubles the re-layout cost per query.
        let sim = iphone_sim();
        let q = Query { prefill: 16, decode: 8 };
        let on_demand = sim.run_query(Strategy::HybridStatic, q);
        let all_at_once = sim.run_query_all_at_once(q);
        assert_eq!(all_at_once.ttft_ns, on_demand.ttft_ns, "TTFT unchanged");
        assert!((all_at_once.relayout_ns / on_demand.relayout_ns - 2.0).abs() < 1e-9);
        assert!(all_at_once.ttlt_ns > on_demand.ttlt_ns);
    }

    #[test]
    fn strategies_display() {
        for s in Strategy::all() {
            assert!(!s.to_string().is_empty());
        }
    }

    #[test]
    fn single_chunk_equals_whole_prefill() {
        let sim = iphone_sim();
        for strategy in Strategy::all() {
            for p in [1u64, 7, 64, 300] {
                let whole = sim.prefill_ns(strategy, p).0;
                let chunk = sim.prefill_chunk_ns(strategy, 0, p, p);
                assert!(
                    (whole - chunk).abs() / whole < 1e-9,
                    "{strategy} p={p}: whole {whole} vs chunk {chunk}"
                );
            }
        }
    }

    #[test]
    fn chunked_prefill_never_cheaper_than_whole() {
        let sim = iphone_sim();
        for strategy in Strategy::all() {
            let p = 130u64;
            let whole = sim.prefill_ns(strategy, p).0;
            let mut sum = 0.0;
            let mut start = 0;
            while start < p {
                let len = 32.min(p - start);
                sum += sim.prefill_chunk_ns(strategy, start, len, p);
                start += len;
            }
            // Chunking pays extra per-chunk kernel/dispatch overheads.
            assert!(sum >= whole - 1.0, "{strategy}: chunked {sum} vs whole {whole}");
        }
    }

    #[test]
    fn chunk_offload_decision_matches_whole_query() {
        let sim = iphone_sim();
        for strategy in [Strategy::HybridDynamic, Strategy::FacilDynamic] {
            for p in [2u64, 64, 512] {
                let decided =
                    sim.run_query(strategy, Query { prefill: p, decode: 1 }).prefill_on_pim;
                assert_eq!(sim.prefill_offloads_to_pim(strategy, p), decided, "{strategy} p={p}");
            }
        }
    }

    #[test]
    fn batch_of_one_decode_equals_single_step() {
        let sim = iphone_sim();
        for ctx in [1u64, 64, 1000] {
            let single = sim.decode_step_pim_ns(ctx);
            let batch = sim.decode_batch_pim_ns(&[ctx]);
            assert!((single - batch).abs() < 1e-6, "ctx {ctx}: {single} vs {batch}");
            let soc_single = sim.decode_step_soc_ns(ctx);
            assert!((soc_single - sim.decode_batch_soc_ns(&[ctx])).abs() < 1e-6);
        }
        assert_eq!(sim.decode_batch_pim_ns(&[]), 0.0);
        assert_eq!(sim.decode_batch_soc_ns(&[]), 0.0);
    }

    #[test]
    fn batched_decode_amortizes_dispatch() {
        // k requests batched must cost less than k isolated steps (the
        // dispatch overhead is shared) but more than one step (the GEMV
        // passes are not).
        let sim = iphone_sim();
        let ctxs = [64u64, 64, 64, 64];
        let batch = sim.decode_batch_pim_ns(&ctxs);
        let isolated: f64 = ctxs.iter().map(|&c| sim.decode_step_pim_ns(c)).sum();
        assert!(batch < isolated, "batch {batch} vs isolated {isolated}");
        assert!(batch > sim.decode_step_pim_ns(64));
        // Per-token cost strictly improves with batching.
        assert!(batch / 4.0 < sim.decode_step_pim_ns(64));
    }

    #[test]
    fn degraded_relayout_charged_only_to_hybrid() {
        let sim = iphone_sim();
        for s in [Strategy::SocOnly, Strategy::FacilStatic, Strategy::FacilDynamic] {
            assert_eq!(sim.degraded_relayout_ns(s), 0.0, "{s} switches for free");
        }
        for s in [Strategy::HybridStatic, Strategy::HybridDynamic] {
            assert_eq!(sim.degraded_relayout_ns(s), sim.relayout_ns(), "{s} pays full re-layout");
        }
    }

    #[test]
    fn degraded_decode_runs_at_soc_speed_with_layout_penalty() {
        let sim = iphone_sim();
        let ctxs = [64u64, 64];
        let soc = sim.decode_batch_soc_ns(&ctxs);
        let facil = sim.decode_batch_degraded_ns(Strategy::FacilDynamic, &ctxs);
        // FACIL degrades to SoC GEMV speed, inflated by the (small) Table
        // III slowdown — never by a re-layout.
        assert!(facil >= soc);
        assert!(facil <= soc * 1.05, "facil degraded {facil} vs soc {soc}");
        assert_eq!(sim.decode_batch_degraded_ns(Strategy::HybridStatic, &ctxs), soc);
        assert_eq!(sim.decode_batch_degraded_ns(Strategy::SocOnly, &ctxs), soc);
        // Degraded decode is much slower than healthy PIM decode.
        assert!(facil > sim.decode_batch_pim_ns(&ctxs) * 2.0);
    }

    #[test]
    fn degraded_prefill_never_offloads_and_matches_soc_path() {
        let sim = iphone_sim();
        let p = 64u64;
        let soc_only = sim.prefill_chunk_degraded_ns(Strategy::SocOnly, 0, p, p);
        let facil = sim.prefill_chunk_degraded_ns(Strategy::FacilDynamic, 0, p, p);
        let hybrid = sim.prefill_chunk_degraded_ns(Strategy::HybridDynamic, 0, p, p);
        assert!(facil >= soc_only);
        assert!(facil <= soc_only * 1.05);
        assert_eq!(hybrid, soc_only, "hybrid serves from the conventional copy while degraded");
        // Even where the healthy dynamic strategies would offload to PIM,
        // the degraded path must not (prefill 2 offloads when healthy).
        assert!(sim.prefill_offloads_to_pim(Strategy::FacilDynamic, 2));
        let healthy = sim.prefill_chunk_ns(Strategy::FacilDynamic, 0, 2, 2);
        let degraded = sim.prefill_chunk_degraded_ns(Strategy::FacilDynamic, 0, 2, 2);
        assert!(degraded > healthy, "degraded {degraded} vs healthy (offloaded) {healthy}");
    }
}
