//! Dataset-level evaluation helpers: per-query speedups and geometric means
//! (the aggregation the paper uses for Figs. 13-16).

use facil_telemetry::MetricsRegistry;
use facil_workloads::{geomean, Dataset};
use serde::{Deserialize, Serialize};

use crate::engine::{InferenceSim, QueryResult, Strategy};

/// Aggregated result of running a dataset under one strategy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetRun {
    /// Strategy evaluated.
    pub strategy: Strategy,
    /// Per-query results, in dataset order.
    pub results: Vec<QueryResult>,
}

impl DatasetRun {
    /// Geometric-mean TTFT over the dataset, ns.
    pub fn geomean_ttft_ns(&self) -> f64 {
        geomean(self.results.iter().map(|r| r.ttft_ns))
    }

    /// Geometric-mean TTLT over the dataset, ns.
    pub fn geomean_ttlt_ns(&self) -> f64 {
        geomean(self.results.iter().map(|r| r.ttlt_ns))
    }

    /// Register the run into `reg`: per-query TTFT/TTLT histograms under
    /// `sim.ttft_ns` / `sim.ttlt_ns`, a query counter, and the
    /// PIM-prefill-fraction gauge.
    pub fn register_into(&self, reg: &mut MetricsRegistry) {
        reg.inc("sim.queries", self.results.len() as u64);
        for r in &self.results {
            reg.observe("sim.ttft_ns", r.ttft_ns);
            reg.observe("sim.ttlt_ns", r.ttlt_ns);
        }
        reg.set_gauge("sim.pim_prefill_fraction", self.pim_prefill_fraction());
    }

    /// Fraction of queries whose prefill was offloaded to the PIM.
    pub fn pim_prefill_fraction(&self) -> f64 {
        if self.results.is_empty() {
            return 0.0;
        }
        self.results.iter().filter(|r| r.prefill_on_pim).count() as f64 / self.results.len() as f64
    }
}

/// Run every query of `dataset` under `strategy`.
pub fn run_dataset(sim: &InferenceSim, strategy: Strategy, dataset: &Dataset) -> DatasetRun {
    let results = dataset.queries.iter().map(|q| sim.run_query(strategy, *q)).collect();
    DatasetRun { strategy, results }
}

/// Geometric-mean speedup of `new` over `base`, per query
/// (the paper's normalization for Figs. 15/16).
///
/// # Panics
///
/// Panics if the runs have different lengths.
pub fn geomean_speedup(base: &DatasetRun, new: &DatasetRun, ttft: bool) -> f64 {
    assert_eq!(base.results.len(), new.results.len(), "runs must cover the same queries");
    geomean(base.results.iter().zip(&new.results).map(|(b, n)| {
        if ttft {
            b.ttft_ns / n.ttft_ns
        } else {
            b.ttlt_ns / n.ttlt_ns
        }
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use facil_soc::{Platform, PlatformId};

    #[test]
    fn dataset_speedups_follow_paper_ordering() {
        let sim = InferenceSim::new(Platform::get(PlatformId::Iphone)).unwrap();
        let data = Dataset::alpaca_like(42, 40);
        let base = run_dataset(&sim, Strategy::HybridStatic, &data);
        let dynamic = run_dataset(&sim, Strategy::HybridDynamic, &data);
        let facil = run_dataset(&sim, Strategy::FacilDynamic, &data);
        let s_dyn = geomean_speedup(&base, &dynamic, true);
        let s_facil = geomean_speedup(&base, &facil, true);
        // Paper Fig. 15: dynamic > static, FACIL > dynamic by a large margin.
        assert!(s_dyn >= 1.0, "dynamic TTFT speedup {s_dyn}");
        assert!(s_facil > s_dyn, "FACIL {s_facil} vs dynamic {s_dyn}");
        assert!(s_facil > 1.5, "FACIL TTFT speedup {s_facil}");
    }

    #[test]
    fn soc_only_loses_ttlt_badly() {
        let sim = InferenceSim::new(Platform::get(PlatformId::Iphone)).unwrap();
        let data = Dataset::alpaca_like(42, 20);
        let soc = run_dataset(&sim, Strategy::SocOnly, &data);
        let facil = run_dataset(&sim, Strategy::FacilDynamic, &data);
        let ttlt = geomean_speedup(&soc, &facil, false);
        // Paper Section VI-C: FACIL ~3.5x faster TTLT than SoC-only.
        assert!(ttlt > 2.0, "TTLT speedup over SoC-only: {ttlt}");
    }

    #[test]
    fn run_metadata() {
        let sim = InferenceSim::new(Platform::get(PlatformId::Iphone)).unwrap();
        let data = Dataset::code_autocompletion_like(1, 10);
        let run = run_dataset(&sim, Strategy::FacilDynamic, &data);
        assert_eq!(run.results.len(), 10);
        assert!(run.geomean_ttft_ns() > 0.0);
        assert!(run.geomean_ttlt_ns() > run.geomean_ttft_ns());
        assert!((0.0..=1.0).contains(&run.pim_prefill_fraction()));
    }

    #[test]
    fn registry_carries_latency_histograms() {
        let sim = InferenceSim::new(Platform::get(PlatformId::Iphone)).unwrap();
        let data = Dataset::code_autocompletion_like(1, 10);
        let run = run_dataset(&sim, Strategy::FacilDynamic, &data);
        let mut reg = MetricsRegistry::new();
        run.register_into(&mut reg);
        assert_eq!(reg.counter("sim.queries"), 10);
        let ttft = reg.summary("sim.ttft_ns");
        assert_eq!(ttft.count, 10);
        assert!(ttft.min > 0.0);
        assert!(reg.summary("sim.ttlt_ns").mean > ttft.mean);
        assert_eq!(reg.gauge("sim.pim_prefill_fraction"), Some(run.pim_prefill_fraction()));
    }
}
