//! Re-layout cost: what the SoC-PIM baseline pays to convert a weight
//! matrix from the PIM-optimized layout to the conventional one before a
//! GEMM (paper Section VI-A, "Baseline").
//!
//! Following the paper, the cost models only the memory traffic: read every
//! transfer through the PIM-optimized mapping and write it back through the
//! conventional mapping into a scratch region. The interleaved read/write
//! stream is scheduled on the cycle-level DRAM simulator; since the copy is
//! steady-state, the measured cost-per-byte of a representative slice
//! scales linearly to any matrix size (validated by tests).

use std::sync::OnceLock;

use facil_core::{select_mapping_2mb, DType, MappingScheme, MatrixConfig, PimArch};
use facil_dram::{DramSpec, DramSystem, Op, Request};
use serde::{Deserialize, Serialize};

/// Measured re-layout characteristics of one memory system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RelayoutProfile {
    /// Cost per byte re-laid-out, nanoseconds.
    pub ns_per_byte: f64,
    /// Effective copy bandwidth (read+write bytes per second).
    pub copy_bandwidth: f64,
    /// Fraction of the theoretical peak the copy achieves.
    pub efficiency: f64,
}

/// Re-layout cost model for one platform's memory system.
///
/// ```no_run
/// use facil_core::PimArch;
/// use facil_dram::DramSpec;
/// use facil_sim::RelayoutModel;
///
/// let spec = DramSpec::lpddr5_6400(256, 64 << 30); // Jetson
/// let arch = PimArch::aim(&spec.topology);
/// let model = RelayoutModel::new(spec, arch);
/// // Re-laying out ~15 GB of Llama3-8B weights costs ~160 ms.
/// let ms = model.cost_ns(15_000_000_000) / 1e6;
/// assert!(ms > 50.0 && ms < 500.0);
/// ```
#[derive(Debug)]
pub struct RelayoutModel {
    spec: DramSpec,
    arch: PimArch,
    profile: OnceLock<RelayoutProfile>,
    /// Bytes of the simulated representative slice.
    sample_bytes: u64,
}

impl RelayoutModel {
    /// Create a model (the DRAM simulation runs lazily on first use).
    pub fn new(spec: DramSpec, arch: PimArch) -> Self {
        RelayoutModel { spec, arch, profile: OnceLock::new(), sample_bytes: 2 << 20 }
    }

    /// Use a custom sample size (tests).
    pub fn with_sample_bytes(mut self, bytes: u64) -> Self {
        self.sample_bytes = bytes;
        self
    }

    /// The measured profile (simulating the representative slice on first
    /// call).
    pub fn profile(&self) -> RelayoutProfile {
        *self.profile.get_or_init(|| self.simulate_slice())
    }

    /// Re-layout cost for `bytes` of weights, nanoseconds.
    pub fn cost_ns(&self, bytes: u64) -> f64 {
        self.profile().ns_per_byte * bytes as f64
    }

    /// Simulate re-laying-out a representative slice: read a
    /// hidden-square-matrix slice through its PIM-optimized mapping, write
    /// it through the conventional mapping into a disjoint scratch region.
    fn simulate_slice(&self) -> RelayoutProfile {
        let topo = self.spec.topology;
        // Representative matrix: 4096-wide fp16 (every paper model has
        // 4096- or 2048-wide projections; the steady-state cost is
        // shape-insensitive, which `tests::cost_is_shape_insensitive`
        // checks).
        let cols = 4096.min(topo.row_bytes * 4);
        let rows = (self.sample_bytes / (cols * 2)).max(1);
        let matrix = MatrixConfig::new(rows, cols, DType::F16);
        // The representative matrix is constructed from the topology itself,
        // so selection cannot fail for any spec this model accepts.
        #[allow(clippy::expect_used)]
        let decision = select_mapping_2mb(&matrix, topo, &self.arch)
            .expect("representative matrix is mappable");
        let conventional = MappingScheme::conventional(topo);

        let mut sys = DramSystem::new(&self.spec);
        let tx = topo.transfer_bytes;
        let n = self.sample_bytes / tx;
        // Scratch region in the upper half of the address space.
        let scratch_base = topo.capacity_bytes() / 2;
        for i in 0..n {
            let pa = i * tx;
            sys.push(Request { addr: decision.scheme.map_pa(pa), op: Op::Read, arrival: 0 });
            sys.push(Request {
                addr: conventional.map_pa(scratch_base + pa),
                op: Op::Write,
                arrival: 0,
            });
        }
        let res = sys.run();
        let bytes_moved = 2 * self.sample_bytes; // read + write
        let ns_per_byte = res.elapsed_ns / self.sample_bytes as f64;
        RelayoutProfile {
            ns_per_byte,
            copy_bandwidth: bytes_moved as f64 / (res.elapsed_ns * 1e-9),
            efficiency: bytes_moved as f64
                / (res.elapsed_ns * 1e-9)
                / self.spec.peak_bandwidth_bytes_per_sec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iphone_model() -> RelayoutModel {
        let spec = DramSpec::lpddr5_6400(64, 8 << 30);
        let arch = PimArch::aim(&spec.topology);
        RelayoutModel::new(spec, arch).with_sample_bytes(1 << 20)
    }

    #[test]
    fn copy_efficiency_is_realistic() {
        let m = iphone_model();
        let p = m.profile();
        // A read+write copy with mixed directions should land between 50%
        // and 100% of peak.
        assert!(p.efficiency > 0.5, "efficiency {}", p.efficiency);
        assert!(p.efficiency <= 1.0, "efficiency {}", p.efficiency);
    }

    #[test]
    fn cost_scales_linearly() {
        let m = iphone_model();
        let c1 = m.cost_ns(1 << 30);
        let c2 = m.cost_ns(2 << 30);
        assert!((c2 / c1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn cost_is_shape_insensitive() {
        // Two different sample sizes give near-identical per-byte cost
        // (steady state), justifying linear scaling.
        let spec = DramSpec::lpddr5_6400(64, 8 << 30);
        let arch = PimArch::aim(&spec.topology);
        let a = RelayoutModel::new(spec.clone(), arch).with_sample_bytes(1 << 20).profile();
        let b = RelayoutModel::new(spec, arch).with_sample_bytes(2 << 20).profile();
        let ratio = a.ns_per_byte / b.ns_per_byte;
        assert!((0.9..1.1).contains(&ratio), "per-byte cost not steady: {ratio}");
    }

    #[test]
    fn jetson_full_model_relayout_is_hundreds_of_ms() {
        // Paper Fig. 6: re-layout adds ~200 ms on Jetson for Llama3-8B.
        let spec = DramSpec::lpddr5_6400(256, 64 << 30);
        let arch = PimArch::aim(&spec.topology);
        let m = RelayoutModel::new(spec, arch).with_sample_bytes(1 << 20);
        let weights = 14_000_000_000u64; // ~14 GB of linear weights
        let ms = m.cost_ns(weights) / 1e6;
        assert!((100.0..350.0).contains(&ms), "relayout {ms} ms");
    }
}
