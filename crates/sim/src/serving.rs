//! Serving-load simulation: the paper evaluates isolated single queries;
//! an on-device assistant actually receives a *stream* of them. This module
//! queues Poisson query arrivals on one device (FCFS, run-to-completion)
//! and reports TTFT/TTLT percentiles including queueing delay — showing how
//! much additional load FACIL's shorter prefills let a device absorb before
//! responsiveness collapses.

use facil_workloads::Dataset;
use serde::{Deserialize, Serialize};

use crate::engine::{InferenceSim, Strategy};
use crate::rng::XorShift64Star;
use crate::stats::percentile;

/// Load-test configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServingConfig {
    /// Mean query arrival rate (queries per second).
    pub arrival_qps: f64,
    /// Seed for the arrival process.
    pub seed: u64,
}

/// Percentile summary of a serving run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServingResult {
    /// Queries served.
    pub completed: usize,
    /// Median TTFT including queueing, ms.
    pub ttft_p50_ms: f64,
    /// 95th-percentile TTFT including queueing, ms.
    pub ttft_p95_ms: f64,
    /// Median TTLT including queueing, ms.
    pub ttlt_p50_ms: f64,
    /// Fraction of wall time the device was busy.
    pub utilization: f64,
    /// Longest queue observed.
    pub queue_peak: usize,
}

/// Serve every query of `dataset` in order, with Poisson arrivals at
/// `cfg.arrival_qps`, FCFS on a single device running `strategy`.
pub fn serve(
    sim: &InferenceSim,
    strategy: Strategy,
    dataset: &Dataset,
    cfg: ServingConfig,
) -> ServingResult {
    let mut rng = XorShift64Star::new(cfg.seed);
    let mut arrival_s = 0.0f64;
    let mut device_free_s = 0.0f64;
    let mut busy_s = 0.0f64;
    let mut ttfts = Vec::with_capacity(dataset.queries.len());
    let mut ttlts = Vec::with_capacity(dataset.queries.len());
    let mut queue_peak = 0usize;
    let mut in_flight: Vec<f64> = Vec::new(); // completion times of queued/served work

    for q in &dataset.queries {
        // Exponential inter-arrival.
        arrival_s += rng.next_exp(cfg.arrival_qps);
        let r = sim.run_query(strategy, *q);
        let start_s = arrival_s.max(device_free_s);
        let ttft_s = start_s + r.ttft_ns / 1e9 - arrival_s;
        let ttlt_s = start_s + r.ttlt_ns / 1e9 - arrival_s;
        device_free_s = start_s + r.ttlt_ns / 1e9;
        busy_s += r.ttlt_ns / 1e9;
        ttfts.push(ttft_s * 1e3);
        ttlts.push(ttlt_s * 1e3);
        in_flight.retain(|&done| done > arrival_s);
        in_flight.push(device_free_s);
        queue_peak = queue_peak.max(in_flight.len());
    }

    ttfts.sort_by(|a, b| a.total_cmp(b));
    ttlts.sort_by(|a, b| a.total_cmp(b));
    let span = device_free_s.max(arrival_s);
    ServingResult {
        completed: dataset.queries.len(),
        ttft_p50_ms: percentile(&ttfts, 0.5),
        ttft_p95_ms: percentile(&ttfts, 0.95),
        ttlt_p50_ms: percentile(&ttlts, 0.5),
        utilization: if span > 0.0 { busy_s / span } else { 0.0 },
        queue_peak,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use facil_soc::{Platform, PlatformId};
    use std::sync::OnceLock;

    fn sim() -> &'static InferenceSim {
        static SIM: OnceLock<InferenceSim> = OnceLock::new();
        SIM.get_or_init(|| InferenceSim::new(Platform::get(PlatformId::Iphone)).unwrap())
    }

    fn data() -> Dataset {
        Dataset::code_autocompletion_like(5, 48)
    }

    #[test]
    fn light_load_has_no_queueing() {
        let d = data();
        let cfg = ServingConfig { arrival_qps: 1e-4, seed: 3 };
        let r = serve(sim(), Strategy::FacilDynamic, &d, cfg);
        // At ~one query per 10000 s, TTFT == pure prefill latency.
        let iso: Vec<f64> = d
            .queries
            .iter()
            .map(|q| sim().run_query(Strategy::FacilDynamic, *q).ttft_ns / 1e6)
            .collect();
        let mut iso_sorted = iso.clone();
        iso_sorted.sort_by(|a, b| a.total_cmp(b));
        assert!((r.ttft_p50_ms - crate::stats::percentile(&iso_sorted, 0.5)).abs() < 1.0);
        assert!(r.utilization < 0.2);
        assert_eq!(r.queue_peak, 1);
    }

    #[test]
    fn heavy_load_inflates_tail_latency() {
        let d = data();
        let light =
            serve(sim(), Strategy::HybridStatic, &d, ServingConfig { arrival_qps: 0.05, seed: 3 });
        let heavy =
            serve(sim(), Strategy::HybridStatic, &d, ServingConfig { arrival_qps: 2.0, seed: 3 });
        assert!(
            heavy.ttft_p95_ms > 2.0 * light.ttft_p95_ms,
            "{} vs {}",
            heavy.ttft_p95_ms,
            light.ttft_p95_ms
        );
        assert!(heavy.queue_peak > light.queue_peak);
    }

    #[test]
    fn facil_sustains_more_load_than_baseline() {
        let d = data();
        let cfg = ServingConfig { arrival_qps: 0.5, seed: 7 };
        let base = serve(sim(), Strategy::HybridStatic, &d, cfg);
        let facil = serve(sim(), Strategy::FacilDynamic, &d, cfg);
        assert!(
            facil.ttft_p95_ms < base.ttft_p95_ms,
            "{} vs {}",
            facil.ttft_p95_ms,
            base.ttft_p95_ms
        );
        assert!(facil.utilization <= base.utilization + 1e-9);
    }

    #[test]
    fn deterministic() {
        let d = data();
        let cfg = ServingConfig { arrival_qps: 0.3, seed: 11 };
        let a = serve(sim(), Strategy::FacilStatic, &d, cfg);
        let b = serve(sim(), Strategy::FacilStatic, &d, cfg);
        assert_eq!(a, b);
    }
}
