//! SoC-PIM co-scheduling — the paper's "Remaining Challenges"
//! (Section V-C): while the PIM streams all-bank MAC commands, normal SoC
//! processes keep issuing memory requests to the same channels. This module
//! implements a slot-level command-bus simulator for one channel and the
//! two integration policies the paper contrasts:
//!
//! * [`CoschedPolicy::Shared`] — PIM uses every rank (full internal
//!   bandwidth), SoC requests interleave on free command slots and *evict
//!   PIM-open rows* on bank conflicts (the row-buffer interference NeuPIMs'
//!   dual row buffers would remove);
//! * [`CoschedPolicy::ReservedRank`] — one rank is reserved for the SoC
//!   (Chopim / MI100-PIM style): no interference, but the PIM loses half
//!   its processing units.

use facil_dram::DramSpec;
use facil_telemetry::{ArgValue, NullSink, TraceSink, TrackId};
use serde::{Deserialize, Serialize};

use crate::rng::XorShift64Star;

/// How PIM and SoC traffic share the memory system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CoschedPolicy {
    /// PIM on all ranks; SoC requests interleave and conflict.
    Shared,
    /// PIM on rank 0 only; SoC traffic confined to rank 1.
    ReservedRank,
}

impl std::fmt::Display for CoschedPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoschedPolicy::Shared => write!(f, "shared"),
            CoschedPolicy::ReservedRank => write!(f, "reserved-rank"),
        }
    }
}

/// Configuration of one co-schedule run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoschedConfig {
    /// Policy under test.
    pub policy: CoschedPolicy,
    /// Simulated cycles.
    pub duration_cycles: u64,
    /// SoC request arrival probability per cycle (per channel).
    pub soc_rate: f64,
    /// MAC-AB issue interval of the PIM, cycles.
    pub mac_interval: u64,
    /// Deterministic seed for SoC arrivals.
    pub seed: u64,
}

impl Default for CoschedConfig {
    fn default() -> Self {
        CoschedConfig {
            policy: CoschedPolicy::Shared,
            duration_cycles: 200_000,
            soc_rate: 0.10,
            mac_interval: 2,
            seed: 1,
        }
    }
}

/// Outcome of one co-schedule run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoschedResult {
    /// MAC-AB commands issued / the isolated-PIM ideal (both ranks at full
    /// rate).
    pub pim_throughput: f64,
    /// SoC requests served / requests generated.
    pub soc_throughput: f64,
    /// Mean SoC request latency in cycles (queue + service).
    pub soc_avg_latency: f64,
    /// PIM rows force-reopened by conflicting SoC accesses.
    pub pim_row_reopens: u64,
}

#[derive(Debug, Clone, Copy)]
struct PimRank {
    active: bool,
    next_mac: u64,
    macs_in_row: u64,
    blocked_until: u64,
}

/// Run the slot-level co-schedule simulation for one channel of `spec`.
pub fn run_cosched(spec: &DramSpec, cfg: CoschedConfig) -> CoschedResult {
    run_cosched_traced(spec, cfg, &mut NullSink)
}

/// [`run_cosched`] with phase-transition tracing: each PIM weight row
/// becomes a span on its rank's `sim` track (`cosched/rank{r}`), and each
/// SoC row eviction an instant event on the same track. Timestamps are
/// simulated nanoseconds; the result is identical to the untraced run.
pub fn run_cosched_traced<S: TraceSink>(
    spec: &DramSpec,
    cfg: CoschedConfig,
    sink: &mut S,
) -> CoschedResult {
    let tm = &spec.timing;
    let columns = spec.topology.columns();
    let banks = spec.topology.banks();
    let ranks = spec.topology.ranks.min(2) as usize;
    let row_turnaround = tm.rtp + tm.rp + tm.rcd;

    let mut pim: Vec<PimRank> = (0..ranks)
        .map(|r| PimRank {
            active: match cfg.policy {
                CoschedPolicy::Shared => true,
                CoschedPolicy::ReservedRank => r == 0,
            },
            next_mac: 0,
            macs_in_row: 0,
            blocked_until: 0,
        })
        .collect();

    let rank_tracks: Vec<TrackId> = if sink.enabled() {
        (0..ranks).map(|r| sink.track("sim", &format!("cosched/rank{r}"))).collect()
    } else {
        vec![TrackId::default(); ranks]
    };
    // Cycle the current weight row started MAC-ing, per rank.
    let mut row_start: Vec<Option<u64>> = vec![None; ranks];

    let mut rng = XorShift64Star::new(cfg.seed);
    let mut soc_queue: std::collections::VecDeque<(u64, usize, u64)> = Default::default();
    let mut macs_issued = 0u64;
    let mut soc_generated = 0u64;
    let mut soc_served = 0u64;
    let mut soc_latency_sum = 0u64;
    let mut reopens = 0u64;
    let mut slot_free_at = 0u64;
    let mut prefer_soc = false;

    for t in 0..cfg.duration_cycles {
        // SoC arrival process.
        if rng.next_f64() < cfg.soc_rate {
            let rank = match cfg.policy {
                CoschedPolicy::Shared => (rng.next_f64() * ranks as f64) as usize % ranks,
                CoschedPolicy::ReservedRank => ranks - 1,
            };
            let bank = (rng.next_f64() * banks as f64) as u64 % banks;
            soc_queue.push_back((t, rank, bank));
            soc_generated += 1;
        }
        if t < slot_free_at {
            continue;
        }
        // Candidate PIM rank ready to MAC this cycle.
        let pim_ready = (0..ranks)
            .find(|&r| pim[r].active && pim[r].next_mac <= t && pim[r].blocked_until <= t);
        let soc_ready = !soc_queue.is_empty();

        // Round-robin fairness between the two request classes.
        let issue_soc = soc_ready && (prefer_soc || pim_ready.is_none());
        if let Some((arrival, rank, bank)) = if issue_soc { soc_queue.pop_front() } else { None } {
            // Service: ACT+RD (its own bank, conservatively always a miss
            // against the PIM's working set).
            let mut service = tm.rcd + tm.cl + tm.burst_cycles;
            if cfg.policy == CoschedPolicy::Shared && pim[rank].active {
                // Evicts the PIM-open row of that bank: the PIM rank must
                // re-activate before continuing, and the SoC access pays the
                // conflict precharge.
                service += tm.rp;
                pim[rank].blocked_until = t.max(pim[rank].blocked_until) + tm.rp + tm.rcd;
                reopens += 1;
                sink.instant(
                    rank_tracks[rank],
                    "soc-evict",
                    spec.cycles_to_ns(t),
                    &[("bank", ArgValue::U64(bank))],
                );
            }
            soc_latency_sum += (t - arrival) + service;
            soc_served += 1;
            slot_free_at = t + 1;
            prefer_soc = false;
        } else if let Some(r) = pim_ready {
            pim[r].next_mac = t + cfg.mac_interval;
            pim[r].macs_in_row += 1;
            macs_issued += 1;
            if row_start[r].is_none() {
                row_start[r] = Some(t);
            }
            if pim[r].macs_in_row >= columns {
                // End of DRAM row: PRE + ACT of the next weight row.
                pim[r].macs_in_row = 0;
                pim[r].blocked_until = t + row_turnaround;
                if let Some(start) = row_start[r].take() {
                    sink.complete(
                        rank_tracks[r],
                        "weight-row",
                        spec.cycles_to_ns(start),
                        spec.cycles_to_ns(t + row_turnaround - start),
                        &[("macs", ArgValue::U64(columns))],
                    );
                }
            }
            slot_free_at = t + 1;
            prefer_soc = true;
        } else {
            prefer_soc = soc_ready;
        }
    }

    // Ideal PIM throughput: both ranks MAC-ing at mac_interval with row
    // turnarounds, no SoC traffic.
    let row_cycle = columns * cfg.mac_interval + row_turnaround;
    let ideal_per_rank = cfg.duration_cycles as f64 * (columns as f64 / row_cycle as f64);
    let ideal = ideal_per_rank * spec.topology.ranks.min(2) as f64;
    CoschedResult {
        pim_throughput: macs_issued as f64 / ideal,
        soc_throughput: if soc_generated == 0 {
            1.0
        } else {
            soc_served as f64 / soc_generated as f64
        },
        soc_avg_latency: if soc_served == 0 {
            0.0
        } else {
            soc_latency_sum as f64 / soc_served as f64
        },
        pim_row_reopens: reopens,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> DramSpec {
        DramSpec::lpddr5_6400(64, 8 << 30)
    }

    #[test]
    fn policy_crossover_light_vs_heavy_soc_traffic() {
        // The trade-off behind paper Section V-C: with little SoC traffic,
        // sharing both ranks beats reserving one (2x the PUs); once SoC
        // traffic is heavy, row-buffer interference wrecks the shared PIM
        // and the reserved rank wins despite having half the PUs.
        let s = spec();
        let at = |policy, soc_rate| {
            run_cosched(&s, CoschedConfig { policy, soc_rate, ..Default::default() })
        };
        let shared_light = at(CoschedPolicy::Shared, 0.003);
        let reserved_light = at(CoschedPolicy::ReservedRank, 0.003);
        assert!(
            shared_light.pim_throughput > reserved_light.pim_throughput,
            "light traffic: shared {} vs reserved {}",
            shared_light.pim_throughput,
            reserved_light.pim_throughput
        );
        let shared_heavy = at(CoschedPolicy::Shared, 0.2);
        let reserved_heavy = at(CoschedPolicy::ReservedRank, 0.2);
        assert!(
            shared_heavy.pim_throughput < reserved_heavy.pim_throughput,
            "heavy traffic: shared {} vs reserved {}",
            shared_heavy.pim_throughput,
            reserved_heavy.pim_throughput
        );
        // Reserved rank caps PIM at ~half the ideal but never reopens rows.
        assert!(reserved_heavy.pim_throughput < 0.55);
        assert_eq!(reserved_heavy.pim_row_reopens, 0);
        assert!(shared_heavy.pim_row_reopens > 0);
        assert!(shared_heavy.soc_avg_latency > reserved_heavy.soc_avg_latency);
    }

    #[test]
    fn no_soc_traffic_means_full_pim_throughput() {
        let s = spec();
        let r = run_cosched(&s, CoschedConfig { soc_rate: 0.0, ..Default::default() });
        assert!(r.pim_throughput > 0.95, "{}", r.pim_throughput);
        assert_eq!(r.pim_row_reopens, 0);
        assert_eq!(r.soc_throughput, 1.0);
    }

    #[test]
    fn heavier_soc_traffic_hurts_pim_more() {
        let s = spec();
        let light = run_cosched(&s, CoschedConfig { soc_rate: 0.05, ..Default::default() });
        let heavy = run_cosched(&s, CoschedConfig { soc_rate: 0.30, ..Default::default() });
        assert!(heavy.pim_throughput < light.pim_throughput);
        assert!(heavy.pim_row_reopens > light.pim_row_reopens);
    }

    #[test]
    fn deterministic_under_seed() {
        let s = spec();
        let a = run_cosched(&s, CoschedConfig::default());
        let b = run_cosched(&s, CoschedConfig::default());
        assert_eq!(a, b);
        let c = run_cosched(&s, CoschedConfig { seed: 99, ..Default::default() });
        assert_ne!(a, c);
    }

    #[test]
    fn tracing_does_not_change_the_result() {
        use facil_telemetry::RingSink;

        let s = spec();
        // Light enough that weight rows still complete, heavy enough that
        // evictions occur.
        let cfg = CoschedConfig { soc_rate: 0.05, ..Default::default() };
        let plain = run_cosched(&s, cfg);
        let mut sink = RingSink::new(1 << 16);
        let traced = run_cosched_traced(&s, cfg, &mut sink);
        assert_eq!(plain, traced);
        assert!(sink.events().any(|e| e.name == "weight-row"));
        assert!(sink.events().any(|e| e.name == "soc-evict"));
        let json = sink.to_chrome_json();
        assert!(json.contains(r#""name":"cosched/rank0""#));
        assert!(json.contains(r#""name":"cosched/rank1""#));
    }

    #[test]
    fn soc_requests_are_all_served_at_moderate_rates() {
        let s = spec();
        let r = run_cosched(&s, CoschedConfig { soc_rate: 0.2, ..Default::default() });
        assert!(r.soc_throughput > 0.95, "{}", r.soc_throughput);
    }
}
