//! # facil-cluster — fault-tolerant cluster serving for FACIL fleets
//!
//! Scales the [`facil_serve`] continuous-batching fleet simulator to
//! *cluster* shape: thousands of devices organized into hierarchical
//! **cells** (failure domains), driven by a two-tier router under a
//! cluster-scale chaos schedule — the serving regime a million-user
//! on-device LLM deployment actually runs in.
//!
//! The crate is built from four layers:
//!
//! - [`ClusterConfig`] — topology (cells × devices, autoscaling headroom),
//!   per-tenant QoS classes ([`Tenant`]: priority, KV quota, traffic
//!   share), hedging threshold, and the SLO-burn [`AutoscalePolicy`].
//! - [`ChaosPlan`] — the cluster-scale fault model layered on
//!   [`facil_serve::FaultPlan`]: correlated **cell outages**, network
//!   **partitions** (a cell keeps serving but admits nothing new),
//!   **link-delay spikes** (dispatches defer or hedge to a clean cell),
//!   slow-node **gray failures** ([`facil_serve::FaultKind::Slow`]), and
//!   device-scope fault passthrough. [`ChaosPlan::seeded`] derives a whole
//!   schedule deterministically from a seed.
//! - [`run_cluster`] / [`run_cluster_traced`] — the two-tier driver:
//!   cell-level admission control (partition-aware, least mean backlog)
//!   then device-level dispatch ([`facil_serve::Routing`]), with bounded
//!   cross-cell failover, a QoS-ordered park queue with explicit
//!   overflow shedding, per-tenant KV quota enforcement, and p99-TTFT
//!   SLO-burn autoscaling.
//! - [`ClusterReport`] — SLO attainment, goodput, availability, the full
//!   shed taxonomy ([`ClusterShedReason`] + per-cell
//!   [`facil_serve::ShedReason`]), per-tenant and per-cell rollups, and
//!   the conservation invariant [`ClusterReport::conserved`]
//!   (`offered == completed + shed`, property-tested under seeded chaos).
//!
//! Everything is deterministic for a fixed seed and plan: repeated runs —
//! at any `FACIL_THREADS` worker count — serialize to byte-identical
//! [`ClusterReport::to_json`] output, and [`ChaosPlan::none`] reproduces
//! the chaos-free schedule exactly.

#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]

pub mod chaos;
pub mod report;
pub mod router;
pub mod topology;

pub use chaos::{ChaosEvent, ChaosPlan, ChaosRates, CompiledChaos};
pub use report::{CellReport, ClusterReport, ClusterShedReason, ClusterShedRecord, TenantReport};
pub use router::{run_cluster, run_cluster_traced};
pub use topology::{AutoscalePolicy, ClusterConfig, Tenant};
