//! Cluster-scope outcome: SLO attainment, shed taxonomy, per-tenant QoS
//! rollups, per-cell [`ServeReport`]s, and the conservation invariant.
//!
//! Follows the [`ServeReport`] conventions: serde-derive serialization
//! plus a dependency-free [`ClusterReport::to_json`] writer (byte-identical
//! for identical runs — the determinism tests compare these strings), a
//! [`ClusterReport::register_into`] hook for the shared
//! [`MetricsRegistry`], and zero-span rate metrics reported as 0.0 — never
//! `NaN` — matching `DramStats::hit_rate`.

use facil_serve::ServeReport;
use facil_sim::Summary;
use facil_telemetry::{JsonWriter, MetricsRegistry};
use serde::{Deserialize, Serialize};

/// Why the *router* (not a device) gave up on a request. Device-level
/// sheds keep their [`facil_serve::ShedReason`] inside the per-cell
/// reports; the two taxonomies never overlap for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ClusterShedReason {
    /// Evicted from an overflowing park queue (worst QoS class first).
    Overload,
    /// Dispatch would exceed the tenant's outstanding-KV quota.
    QuotaExceeded,
    /// Retry budget exhausted, or parked with no future route to service.
    Failed,
    /// Per-request deadline expired before (re-)dispatch.
    DeadlineExpired,
}

impl ClusterShedReason {
    /// Stable string key used in JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            ClusterShedReason::Overload => "overload",
            ClusterShedReason::QuotaExceeded => "quota-exceeded",
            ClusterShedReason::Failed => "failed",
            ClusterShedReason::DeadlineExpired => "deadline-expired",
        }
    }
}

/// One request the router shed, with its QoS attribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterShedRecord {
    /// Request id.
    pub id: u64,
    /// Tenant index the request belonged to.
    pub tenant: usize,
    /// Original arrival time, seconds.
    pub arrival_s: f64,
    /// When the router gave up, seconds.
    pub t_s: f64,
    /// Why.
    pub reason: ClusterShedReason,
}

/// Per-tenant QoS outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantReport {
    /// Tenant name.
    pub name: String,
    /// Scheduling priority (0 = most important).
    pub priority: u8,
    /// Requests assigned to this tenant.
    pub offered: usize,
    /// Requests served to the last token.
    pub completed: usize,
    /// Requests shed anywhere (device- or cluster-level).
    pub shed: usize,
    /// TTFT summary over the tenant's completions, ms.
    pub ttft_ms: Summary,
    /// TTLT summary over the tenant's completions, ms.
    pub ttlt_ms: Summary,
}

/// One cell's outcome: the full fleet report plus router-side counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellReport {
    /// Cell index.
    pub cell: usize,
    /// Dispatches the router sent into this cell (re-dispatches of a
    /// failed-over request count again, so cells sum to >= cluster
    /// offered).
    pub dispatched: usize,
    /// Devices active (initial + scaled-out - scaled-in) at the end of
    /// the run.
    pub active_devices: usize,
    /// Fleet-level report over the cell's device slots, with identical
    /// metric definitions to a standalone [`facil_serve`] run.
    pub serve: ServeReport,
}

/// Full outcome of a cluster run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterReport {
    /// Number of cells.
    pub cells_configured: usize,
    /// Devices active at the start (`cells * devices_per_cell`).
    pub devices_initial: usize,
    /// Devices active at the end (after autoscaling).
    pub devices_final: usize,
    /// Requests offered to the cluster.
    pub offered: usize,
    /// Requests served to the last token.
    pub completed: usize,
    /// Requests shed anywhere (`offered == completed + shed`).
    pub shed: usize,
    /// Router sheds with reason [`ClusterShedReason::Overload`].
    pub shed_overload: usize,
    /// Router sheds with reason [`ClusterShedReason::QuotaExceeded`].
    pub shed_quota: usize,
    /// Router sheds with reason [`ClusterShedReason::Failed`].
    pub shed_failed: usize,
    /// Router sheds with reason [`ClusterShedReason::DeadlineExpired`].
    pub shed_deadline: usize,
    /// Sheds decided by devices (queue-full, oversized, no-memory,
    /// device-side deadline), detailed inside the per-cell reports.
    pub shed_device: usize,
    /// Wall-clock span of the run, seconds.
    pub span_s: f64,
    /// Offered load over the span, queries/s. 0.0 for a zero-duration run
    /// (never `NaN`), matching `DramStats::hit_rate`.
    pub offered_qps: f64,
    /// Completed load over the span, queries/s (same zero-span guard).
    pub goodput_qps: f64,
    /// Fraction of slot-seconds outside crash/freeze windows (counts every
    /// addressable slot, active or headroom; same zero-span guard).
    pub availability: f64,
    /// Crash evictions harvested for cross-cell failover.
    pub failovers: usize,
    /// Failover retries scheduled (each charged saturating backoff).
    pub retries: usize,
    /// Dispatches deferred past a link-delay spike.
    pub deferrals: usize,
    /// Dispatches hedged to a clean cell instead of waiting out a spike.
    pub hedges: usize,
    /// Peak park-queue depth.
    pub parked_peak: usize,
    /// Autoscaler scale-out actions.
    pub scale_outs: usize,
    /// Autoscaler scale-in actions.
    pub scale_ins: usize,
    /// Cluster-wide TTFT summary over completions, ms.
    pub ttft_ms: Summary,
    /// Cluster-wide TTLT summary over completions, ms.
    pub ttlt_ms: Summary,
    /// Per-tenant QoS rollups, in tenant order.
    pub tenants: Vec<TenantReport>,
    /// Per-cell reports, in cell order.
    pub cells: Vec<CellReport>,
    /// Every router-level shed, ordered by request id.
    pub sheds: Vec<ClusterShedRecord>,
}

impl ClusterReport {
    /// The cluster conservation invariant: every offered request reached
    /// exactly one terminal state.
    pub fn conserved(&self) -> bool {
        self.offered == self.completed + self.shed
            && self.shed
                == self.shed_device
                    + self.shed_overload
                    + self.shed_quota
                    + self.shed_failed
                    + self.shed_deadline
    }

    /// Fraction of offered requests that completed with TTFT at or below
    /// `slo_ttft_ms`. 0.0 when nothing was offered (never `NaN`), matching
    /// `DramStats::hit_rate`.
    pub fn slo_attainment(&self, slo_ttft_ms: f64) -> f64 {
        if self.offered == 0 {
            return 0.0;
        }
        let within: usize = self
            .cells
            .iter()
            .flat_map(|c| c.serve.requests.iter())
            .filter(|r| r.ttft_ms <= slo_ttft_ms)
            .count();
        within as f64 / self.offered as f64
    }

    /// Serialize the report as a self-contained JSON object (one line).
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::with_capacity(8192);
        w.begin_object()
            .field_uint("cells", self.cells_configured as u64)
            .field_uint("devices_initial", self.devices_initial as u64)
            .field_uint("devices_final", self.devices_final as u64)
            .field_uint("offered", self.offered as u64)
            .field_uint("completed", self.completed as u64)
            .field_uint("shed", self.shed as u64)
            .field_uint("shed_overload", self.shed_overload as u64)
            .field_uint("shed_quota", self.shed_quota as u64)
            .field_uint("shed_failed", self.shed_failed as u64)
            .field_uint("shed_deadline", self.shed_deadline as u64)
            .field_uint("shed_device", self.shed_device as u64)
            .field_num("span_s", self.span_s)
            .field_num("offered_qps", self.offered_qps)
            .field_num("goodput_qps", self.goodput_qps)
            .field_num("availability", self.availability)
            .field_uint("failovers", self.failovers as u64)
            .field_uint("retries", self.retries as u64)
            .field_uint("deferrals", self.deferrals as u64)
            .field_uint("hedges", self.hedges as u64)
            .field_uint("parked_peak", self.parked_peak as u64)
            .field_uint("scale_outs", self.scale_outs as u64)
            .field_uint("scale_ins", self.scale_ins as u64);
        w.key("ttft_ms");
        self.ttft_ms.write_json(&mut w);
        w.key("ttlt_ms");
        self.ttlt_ms.write_json(&mut w);
        w.key("tenants").begin_array();
        for t in &self.tenants {
            w.begin_object()
                .field_str("name", &t.name)
                .field_uint("priority", u64::from(t.priority))
                .field_uint("offered", t.offered as u64)
                .field_uint("completed", t.completed as u64)
                .field_uint("shed", t.shed as u64);
            w.key("ttft_ms");
            t.ttft_ms.write_json(&mut w);
            w.key("ttlt_ms");
            t.ttlt_ms.write_json(&mut w);
            w.end_object();
        }
        w.end_array().key("cells").begin_array();
        for c in &self.cells {
            w.begin_object()
                .field_uint("cell", c.cell as u64)
                .field_uint("dispatched", c.dispatched as u64)
                .field_uint("active_devices", c.active_devices as u64)
                .field_raw("serve", &c.serve.to_json())
                .end_object();
        }
        w.end_array().key("sheds").begin_array();
        for s in &self.sheds {
            w.begin_object()
                .field_uint("id", s.id)
                .field_uint("tenant", s.tenant as u64)
                .field_num("arrival_s", s.arrival_s)
                .field_num("t_s", s.t_s)
                .field_str("reason", s.reason.as_str())
                .end_object();
        }
        w.end_array().end_object();
        w.finish()
    }

    /// Publish the run into a shared [`MetricsRegistry`] under the
    /// `cluster.` namespace (request counters, router shed taxonomy,
    /// resilience counters, autoscaler actions, and latency histograms).
    pub fn register_into(&self, reg: &mut MetricsRegistry) {
        reg.inc("cluster.offered", self.offered as u64);
        reg.inc("cluster.completed", self.completed as u64);
        reg.inc("cluster.shed", self.shed as u64);
        reg.inc("cluster.shed.overload", self.shed_overload as u64);
        reg.inc("cluster.shed.quota", self.shed_quota as u64);
        reg.inc("cluster.shed.failed", self.shed_failed as u64);
        reg.inc("cluster.shed.deadline", self.shed_deadline as u64);
        reg.inc("cluster.shed.device", self.shed_device as u64);
        reg.inc("cluster.failovers", self.failovers as u64);
        reg.inc("cluster.retries", self.retries as u64);
        reg.inc("cluster.deferrals", self.deferrals as u64);
        reg.inc("cluster.hedges", self.hedges as u64);
        reg.inc("cluster.scale_outs", self.scale_outs as u64);
        reg.inc("cluster.scale_ins", self.scale_ins as u64);
        reg.set_gauge("cluster.goodput_qps", self.goodput_qps);
        reg.set_gauge("cluster.availability", self.availability);
        reg.set_gauge("cluster.devices_final", self.devices_final as f64);
        for cell in &self.cells {
            for r in &cell.serve.requests {
                reg.observe("cluster.ttft_ms", r.ttft_ms);
                reg.observe("cluster.ttlt_ms", r.ttlt_ms);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ClusterReport {
        ClusterReport {
            cells_configured: 1,
            devices_initial: 1,
            devices_final: 1,
            offered: 3,
            completed: 1,
            shed: 2,
            shed_overload: 1,
            shed_quota: 0,
            shed_failed: 0,
            shed_deadline: 0,
            shed_device: 1,
            span_s: 2.0,
            offered_qps: 1.5,
            goodput_qps: 0.5,
            availability: 0.75,
            failovers: 1,
            retries: 1,
            deferrals: 2,
            hedges: 1,
            parked_peak: 1,
            scale_outs: 1,
            scale_ins: 0,
            ttft_ms: Summary::from_unsorted(vec![12.0]),
            ttlt_ms: Summary::from_unsorted(vec![80.0]),
            tenants: vec![TenantReport {
                name: "default".into(),
                priority: 0,
                offered: 3,
                completed: 1,
                shed: 2,
                ttft_ms: Summary::from_unsorted(vec![12.0]),
                ttlt_ms: Summary::from_unsorted(vec![80.0]),
            }],
            cells: Vec::new(),
            sheds: vec![ClusterShedRecord {
                id: 2,
                tenant: 0,
                arrival_s: 0.5,
                t_s: 1.0,
                reason: ClusterShedReason::Overload,
            }],
        }
    }

    #[test]
    fn conservation_checks_both_totals_and_taxonomy() {
        let mut r = sample();
        assert!(r.conserved());
        r.completed += 1;
        assert!(!r.conserved(), "offered != completed + shed");
        let mut r = sample();
        r.shed_overload = 0;
        assert!(!r.conserved(), "taxonomy must sum to the shed total");
    }

    #[test]
    fn json_is_balanced_deterministic_and_carries_keys() {
        let j = sample().to_json();
        assert_eq!(j, sample().to_json());
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        assert_eq!(j.matches('"').count() % 2, 0);
        for key in [
            "\"cells\":1",
            "\"shed_overload\"",
            "\"hedges\"",
            "\"parked_peak\"",
            "\"scale_outs\"",
            "\"tenants\"",
            "\"reason\":\"overload\"",
            "\"p99\"",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
    }

    #[test]
    fn zero_offered_slo_attainment_is_zero_not_nan() {
        let mut r = sample();
        r.offered = 0;
        let v = r.slo_attainment(100.0);
        assert!(!v.is_nan());
        assert_eq!(v, 0.0);
    }

    #[test]
    fn registry_mirrors_the_report() {
        let r = sample();
        let mut reg = MetricsRegistry::new();
        r.register_into(&mut reg);
        assert_eq!(reg.counter("cluster.offered"), 3);
        assert_eq!(reg.counter("cluster.shed.overload"), 1);
        assert_eq!(reg.counter("cluster.hedges"), 1);
        assert_eq!(reg.gauge("cluster.availability"), Some(0.75));
    }
}
