//! Cluster shape: hierarchical cells of identical serve fleets, per-tenant
//! QoS classes, and the SLO-driven autoscaling policy.
//!
//! A cluster is `cells` failure domains, each starting with
//! `devices_per_cell` devices and allowed to grow to
//! `max_devices_per_cell` under autoscaling. Devices are addressed by a
//! *global* index `cell * max_devices_per_cell + slot`, so one
//! [`facil_serve::FaultPlan`] compiled by [`crate::ChaosPlan::compile`]
//! covers the whole cluster.

use facil_core::{FacilError, Result};
use facil_serve::{Routing, ServeConfig};
use serde::{Deserialize, Serialize};

/// One tenant class sharing the cluster under a QoS contract.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tenant {
    /// Tenant name (report key).
    pub name: String,
    /// Scheduling priority: 0 is the most important class; higher values
    /// park behind lower ones and are evicted first under overload.
    pub priority: u8,
    /// KV-cache quota in bytes across the whole cluster; 0 means
    /// unlimited. A dispatch that would push the tenant's outstanding KV
    /// reservations past the quota is shed as
    /// [`crate::ClusterShedReason::QuotaExceeded`].
    pub kv_quota_bytes: u64,
    /// Fraction of the offered stream assigned to this tenant; shares are
    /// normalized over all tenants.
    pub share: f64,
}

impl Tenant {
    /// A best-effort tenant taking the whole stream: priority 0, no
    /// quota.
    pub fn default_tenant() -> Tenant {
        Tenant { name: "default".into(), priority: 0, kv_quota_bytes: 0, share: 1.0 }
    }
}

/// SLO-burn-driven autoscaling policy.
///
/// The router ticks every `interval_s` of simulated time. Each tick
/// computes the p99 TTFT over completions inside the trailing `window_s`;
/// `burn_streak` consecutive ticks above `slo_ttft_ms` scale the
/// most-loaded cell *out* by one device (which starts accepting after
/// `warmup_s`), and `cool_streak` consecutive ticks at or below the SLO
/// scale one idle device *in*.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AutoscalePolicy {
    /// p99 time-to-first-token target, milliseconds.
    pub slo_ttft_ms: f64,
    /// Sliding window the percentile is computed over, seconds.
    pub window_s: f64,
    /// Tick interval, seconds.
    pub interval_s: f64,
    /// Consecutive burning ticks before scaling out.
    pub burn_streak: usize,
    /// Consecutive cool ticks before scaling in.
    pub cool_streak: usize,
    /// Delay before a scaled-out device accepts traffic, seconds.
    pub warmup_s: f64,
}

impl Default for AutoscalePolicy {
    fn default() -> Self {
        AutoscalePolicy {
            slo_ttft_ms: 500.0,
            window_s: 60.0,
            interval_s: 10.0,
            burn_streak: 2,
            cool_streak: 6,
            warmup_s: 5.0,
        }
    }
}

impl AutoscalePolicy {
    /// Check the policy's knobs.
    ///
    /// # Errors
    ///
    /// [`FacilError::InvalidRequest`] on non-positive SLO, window,
    /// interval or streaks, or a negative/non-finite warmup.
    pub fn validate(&self) -> Result<()> {
        if !self.slo_ttft_ms.is_finite() || self.slo_ttft_ms <= 0.0 {
            return Err(FacilError::InvalidRequest(format!(
                "autoscale SLO {} must be positive and finite",
                self.slo_ttft_ms
            )));
        }
        if !self.window_s.is_finite()
            || self.window_s <= 0.0
            || !self.interval_s.is_finite()
            || self.interval_s <= 0.0
        {
            return Err(FacilError::InvalidRequest(
                "autoscale window and interval must be positive".into(),
            ));
        }
        if self.burn_streak == 0 || self.cool_streak == 0 {
            return Err(FacilError::InvalidRequest("autoscale streaks must be positive".into()));
        }
        if !self.warmup_s.is_finite() || self.warmup_s < 0.0 {
            return Err(FacilError::InvalidRequest(format!(
                "autoscale warmup {} must be non-negative and finite",
                self.warmup_s
            )));
        }
        Ok(())
    }
}

/// Cluster shape and policies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of cells (failure domains).
    pub cells: usize,
    /// Devices each cell starts with.
    pub devices_per_cell: usize,
    /// Upper bound on devices per cell under autoscaling (`>=
    /// devices_per_cell`; equal disables growth).
    pub max_devices_per_cell: usize,
    /// Per-device scheduler knobs (every device is identical).
    pub serve: ServeConfig,
    /// Device-level routing policy inside the chosen cell.
    pub routing: Routing,
    /// Bound on requests parked cluster-wide while no cell admits; an
    /// overflowing park evicts the lowest-priority parked request.
    pub park_cap: usize,
    /// Hedge threshold: a dispatch whose target cell carries a link delay
    /// of at least this many seconds reroutes to the next-best cell
    /// instead of waiting (0 disables hedging).
    pub hedge_after_s: f64,
    /// Autoscaling policy; `None` keeps every cell at its initial size.
    pub autoscale: Option<AutoscalePolicy>,
    /// Tenant QoS classes sharing the cluster (at least one).
    pub tenants: Vec<Tenant>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            cells: 2,
            devices_per_cell: 2,
            max_devices_per_cell: 2,
            serve: ServeConfig::default(),
            routing: Routing::LeastLoaded,
            park_cap: 1024,
            hedge_after_s: 0.25,
            autoscale: None,
            tenants: vec![Tenant::default_tenant()],
        }
    }
}

impl ClusterConfig {
    /// Total device slots (active or not) the cluster addresses.
    pub fn total_slots(&self) -> usize {
        self.cells * self.max_devices_per_cell
    }

    /// Global device index of `(cell, slot)`.
    pub fn global_index(&self, cell: usize, slot: usize) -> usize {
        cell * self.max_devices_per_cell + slot
    }

    /// Cell owning global device index `device`.
    pub fn cell_of(&self, device: usize) -> usize {
        device / self.max_devices_per_cell
    }

    /// Sum of tenant shares (the normalization denominator).
    pub fn total_share(&self) -> f64 {
        self.tenants.iter().map(|t| t.share).sum()
    }

    /// Check the cluster shape.
    ///
    /// # Errors
    ///
    /// [`FacilError::InvalidRequest`] on an empty cluster, a
    /// `max_devices_per_cell` below the initial size, no tenants,
    /// non-positive tenant shares, a negative/non-finite hedge threshold,
    /// or an invalid autoscale policy.
    pub fn validate(&self) -> Result<()> {
        if self.cells == 0 || self.devices_per_cell == 0 {
            return Err(FacilError::InvalidRequest(
                "cluster needs at least one cell with at least one device".into(),
            ));
        }
        if self.max_devices_per_cell < self.devices_per_cell {
            return Err(FacilError::InvalidRequest(format!(
                "max_devices_per_cell {} below initial devices_per_cell {}",
                self.max_devices_per_cell, self.devices_per_cell
            )));
        }
        if self.tenants.is_empty() {
            return Err(FacilError::InvalidRequest("cluster needs at least one tenant".into()));
        }
        for t in &self.tenants {
            if !t.share.is_finite() || t.share <= 0.0 {
                return Err(FacilError::InvalidRequest(format!(
                    "tenant {} share {} must be positive and finite",
                    t.name, t.share
                )));
            }
        }
        if !self.hedge_after_s.is_finite() || self.hedge_after_s < 0.0 {
            return Err(FacilError::InvalidRequest(format!(
                "hedge threshold {} must be non-negative and finite",
                self.hedge_after_s
            )));
        }
        if let Some(a) = &self.autoscale {
            a.validate()?;
        }
        Ok(())
    }

    /// Deterministically assign query `id` to a tenant index,
    /// proportionally to the tenants' shares. A multiplicative hash of the
    /// id picks a point on the normalized share line, so assignment is
    /// stable under reordering and independent of worker count.
    pub fn tenant_of(&self, id: u64) -> usize {
        debug_assert!(!self.tenants.is_empty());
        let point = (id.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 11) as f64 / (1u64 << 53) as f64
            * self.total_share();
        let mut acc = 0.0;
        for (i, t) in self.tenants.iter().enumerate() {
            acc += t.share;
            if point < acc {
                return i;
            }
        }
        self.tenants.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates() {
        ClusterConfig::default().validate().unwrap();
    }

    #[test]
    fn index_round_trips() {
        let cfg = ClusterConfig {
            cells: 3,
            devices_per_cell: 2,
            max_devices_per_cell: 4,
            ..ClusterConfig::default()
        };
        assert_eq!(cfg.total_slots(), 12);
        for cell in 0..3 {
            for slot in 0..4 {
                assert_eq!(cfg.cell_of(cfg.global_index(cell, slot)), cell);
            }
        }
    }

    #[test]
    fn bad_shapes_are_rejected() {
        let mut cfg = ClusterConfig { cells: 0, ..ClusterConfig::default() };
        assert!(cfg.validate().is_err(), "no cells");
        cfg = ClusterConfig { max_devices_per_cell: 1, ..ClusterConfig::default() };
        assert!(cfg.validate().is_err(), "cap below initial size");
        cfg = ClusterConfig { tenants: vec![], ..ClusterConfig::default() };
        assert!(cfg.validate().is_err(), "no tenants");
        cfg = ClusterConfig {
            tenants: vec![Tenant { share: 0.0, ..Tenant::default_tenant() }],
            ..ClusterConfig::default()
        };
        assert!(cfg.validate().is_err(), "zero share");
        cfg = ClusterConfig { hedge_after_s: f64::NAN, ..ClusterConfig::default() };
        assert!(cfg.validate().is_err(), "NaN hedge");
        cfg = ClusterConfig {
            autoscale: Some(AutoscalePolicy { interval_s: 0.0, ..AutoscalePolicy::default() }),
            ..ClusterConfig::default()
        };
        assert!(cfg.validate().is_err(), "zero autoscale interval");
    }

    #[test]
    fn tenant_assignment_is_deterministic_and_share_proportional() {
        let cfg = ClusterConfig {
            tenants: vec![
                Tenant { name: "premium".into(), priority: 0, kv_quota_bytes: 0, share: 1.0 },
                Tenant { name: "batch".into(), priority: 2, kv_quota_bytes: 0, share: 3.0 },
            ],
            ..ClusterConfig::default()
        };
        let n = 10_000u64;
        let batch = (0..n).filter(|&i| cfg.tenant_of(i) == 1).count();
        assert_eq!(batch, (0..n).filter(|&i| cfg.tenant_of(i) == 1).count(), "deterministic");
        let frac = batch as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.03, "3:1 share split, got {frac}");
    }
}
