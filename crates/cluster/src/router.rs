//! Two-tier router and cluster driver.
//!
//! Tier 1 (cell admission): score every cell that is alive — not
//! partitioned, with at least one active accepting device — by mean
//! backlog per active device and admit the request to the best one.
//! A link-delay spike on the chosen cell either *defers* the dispatch past
//! the spike or, beyond [`ClusterConfig::hedge_after_s`], *hedges* it to
//! the best clean cell instead.
//!
//! Tier 2 (device dispatch): inside the chosen cell, dispatch under the
//! configured [`facil_serve::Routing`] policy (least-loaded by backlog
//! tokens, or round-robin) to an active accepting device.
//!
//! Cross-cutting concerns the router owns:
//!
//! - **QoS**: every request belongs to a tenant
//!   ([`ClusterConfig::tenant_of`]); a dispatch that would push the
//!   tenant's outstanding KV reservations past its quota is shed
//!   ([`ClusterShedReason::QuotaExceeded`]), and requests that find no
//!   admitting cell park in a bounded priority queue (lowest priority
//!   value first; overflow evicts the worst-QoS newest entry as
//!   [`ClusterShedReason::Overload`]).
//! - **Failover**: crash-evicted requests are harvested and re-dispatched
//!   across cells with saturating exponential backoff, bounded by the
//!   plan's retry budget ([`ClusterShedReason::Failed`] once exhausted);
//!   per-request deadlines expire stale work
//!   ([`ClusterShedReason::DeadlineExpired`]).
//! - **Autoscaling**: with an [`AutoscalePolicy`], the router ticks on the
//!   simulated clock, computes the sliding-window p99 TTFT, and scales the
//!   most-loaded cell out (after a warmup) on sustained SLO burn or an
//!   idle autoscaled device in on sustained cool-down.
//!
//! The driver reuses the fleet driver's execution split
//! ([`facil_serve::FleetExec`]): router decisions are serial, and the
//! per-device phases run over cells × devices **flattened into one global
//! device list** — each tick issues a single
//! [`facil_telemetry::pool::par_map_mut`] batch across every slot of every
//! cell, not a per-cell fan-out, so the work-stealing executor balances
//! uneven cells against each other. The resulting [`ClusterReport`]
//! serializes byte-identically for any `FACIL_THREADS` worker count.
//! [`ChaosPlan::none`] reproduces the chaos-free schedule exactly.

use std::cmp::{Ordering, Reverse};
use std::collections::{BTreeMap, BinaryHeap};

use facil_core::Result;
use facil_serve::{
    assemble_report, saturating_backoff, DeviceSim, EvictedReq, FleetExec, ParallelExec,
    ReportMeta, Routing, SerialExec,
};
use facil_sim::{InferenceSim, Summary};
use facil_telemetry::{ArgValue, NullSink, TraceSink, TrackId};
use facil_workloads::{ArrivalProcess, Dataset, Query};

use crate::chaos::{ChaosPlan, CompiledChaos};
use crate::report::{
    CellReport, ClusterReport, ClusterShedReason, ClusterShedRecord, TenantReport,
};
use crate::topology::{AutoscalePolicy, ClusterConfig};

/// A request waiting in the cluster park queue for any cell to admit it.
#[derive(Debug, Clone, Copy)]
struct Parked {
    id: u64,
    arrival_s: f64,
    query: Query,
    attempt: u32,
}

/// A re-queued request waiting out a retry backoff or a link-delay
/// deferral.
#[derive(Debug, Clone, Copy)]
struct Retry {
    t_s: f64,
    seq: u64,
    id: u64,
    arrival_s: f64,
    query: Query,
    attempt: u32,
}

impl PartialEq for Retry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Retry {}
impl PartialOrd for Retry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Retry {
    /// Fire time first, then insertion order — total and deterministic
    /// even for coincident retries.
    fn cmp(&self, other: &Self) -> Ordering {
        self.t_s.total_cmp(&other.t_s).then(self.seq.cmp(&other.seq))
    }
}

/// Outcome of a routing attempt. Terminal outcomes (dispatched, deferred,
/// shed) are folded into `Done`; `NoCell` hands the request back so the
/// caller can park it (or stop unparking).
enum Routed {
    Done,
    NoCell(Parked),
}

/// Serial router state: every cluster-level decision goes through here, in
/// event order, regardless of how many workers advance the devices.
struct RouterState<'c, S: TraceSink> {
    cfg: &'c ClusterConfig,
    chaos: &'c CompiledChaos,
    plan: &'c ChaosPlan,
    /// Tenant index per request id.
    tenant: Vec<usize>,
    /// Worst-case KV bytes per request id (identical devices, so one probe
    /// serves the whole cluster).
    need: Vec<u64>,
    /// Outstanding dispatched-but-unresolved KV bytes per tenant.
    outstanding: Vec<u64>,
    /// Per-slot activation time: 0 for initial devices, `INFINITY` while
    /// the slot is autoscaling headroom.
    active_from: Vec<f64>,
    /// Slots added by the autoscaler (the only ones it may remove again).
    autoscaled: Vec<bool>,
    park: BTreeMap<(u8, u64), Parked>,
    park_seq: u64,
    retryq: BinaryHeap<Reverse<Retry>>,
    seq: u64,
    rr: usize,
    sheds: Vec<ClusterShedRecord>,
    seen_completed: Vec<usize>,
    seen_shed: Vec<usize>,
    dispatched_per_cell: Vec<usize>,
    failovers_per_cell: Vec<usize>,
    retries_per_cell: Vec<usize>,
    failovers: usize,
    retries: usize,
    deferrals: usize,
    hedges: usize,
    parked_peak: usize,
    /// `(completion time, TTFT ms)` of every completion, for SLO-burn
    /// evaluation.
    samples: Vec<(f64, f64)>,
    next_tick_s: f64,
    burn: usize,
    cool: usize,
    scale_outs: usize,
    scale_ins: usize,
    /// Router clock: the latest event instant processed.
    now: f64,
    sink: S,
    track: TrackId,
    cell_tracks: Vec<TrackId>,
}

impl<'c, S: TraceSink> RouterState<'c, S> {
    /// True if global device `d` is activated and accepting at `t`.
    fn device_live(&self, devices: &[DeviceSim<'_, S>], d: usize, t: f64) -> bool {
        self.active_from[d] <= t && devices[d].accepts(t)
    }

    fn shed(&mut self, t: f64, id: u64, arrival_s: f64, reason: ClusterShedReason) {
        self.sink.instant(
            self.track,
            "shed",
            t * 1e9,
            &[("id", ArgValue::U64(id)), ("reason", ArgValue::Str(reason.as_str()))],
        );
        self.sheds.push(ClusterShedRecord {
            id,
            tenant: self.tenant[id as usize],
            arrival_s,
            t_s: t,
            reason,
        });
    }

    /// Park a request that found no admitting cell; an overflowing park
    /// evicts the worst-QoS newest entry instead of growing unboundedly.
    fn park(&mut self, t: f64, p: Parked) {
        let prio = self.cfg.tenants[self.tenant[p.id as usize]].priority;
        self.sink.instant(self.track, "park", t * 1e9, &[("id", ArgValue::U64(p.id))]);
        self.park.insert((prio, self.park_seq), p);
        self.park_seq += 1;
        self.parked_peak = self.parked_peak.max(self.park.len());
        if self.park.len() > self.cfg.park_cap {
            if let Some((_, victim)) = self.park.pop_last() {
                self.shed(t, victim.id, victim.arrival_s, ClusterShedReason::Overload);
            }
        }
    }

    /// Re-dispatch parked requests in QoS order until one finds no cell.
    /// `NoCell` does not depend on the request, so stopping at the first
    /// refusal is exact, not a heuristic.
    fn unpark(&mut self, devices: &mut [DeviceSim<'_, S>], t: f64) {
        while let Some((&key, &p)) = self.park.iter().next() {
            self.park.remove(&key);
            match self.route(devices, t, p) {
                Routed::Done => {}
                Routed::NoCell(p) => {
                    self.park.insert(key, p);
                    return;
                }
            }
        }
    }

    /// Schedule a failover retry with saturating backoff, or shed the
    /// request once its retry budget or deadline is exhausted.
    fn requeue_or_fail(&mut self, cell: usize, ev: EvictedReq) {
        if ev.attempt >= self.plan.max_retries {
            self.shed(ev.evicted_s, ev.id, ev.arrival_s, ClusterShedReason::Failed);
            return;
        }
        let t_s = ev.evicted_s + saturating_backoff(self.plan.retry_backoff_s, ev.attempt);
        if self.plan.deadline_s > 0.0 && t_s - ev.arrival_s > self.plan.deadline_s {
            self.shed(ev.evicted_s, ev.id, ev.arrival_s, ClusterShedReason::DeadlineExpired);
            return;
        }
        self.retryq.push(Reverse(Retry {
            t_s,
            seq: self.seq,
            id: ev.id,
            arrival_s: ev.arrival_s,
            query: ev.query,
            attempt: ev.attempt + 1,
        }));
        self.seq += 1;
        self.retries += 1;
        self.retries_per_cell[cell] += 1;
    }

    /// Settle every request that left a device since the last call:
    /// release tenant KV reservations for completions and device-level
    /// sheds (collecting TTFT samples for the autoscaler), then harvest
    /// crash evictions for cross-cell failover.
    fn harvest(&mut self, devices: &mut [DeviceSim<'_, S>]) {
        for (d, dev) in devices.iter().enumerate() {
            let completed = dev.completed();
            for r in &completed[self.seen_completed[d]..] {
                let tenant = self.tenant[r.id as usize];
                self.outstanding[tenant] =
                    self.outstanding[tenant].saturating_sub(self.need[r.id as usize]);
                self.samples.push((r.arrival_s + r.ttlt_ms / 1e3, r.ttft_ms));
            }
            self.seen_completed[d] = completed.len();
            let shed = dev.shed();
            for s in &shed[self.seen_shed[d]..] {
                let tenant = self.tenant[s.id as usize];
                self.outstanding[tenant] =
                    self.outstanding[tenant].saturating_sub(self.need[s.id as usize]);
            }
            self.seen_shed[d] = shed.len();
        }
        for (d, dev) in devices.iter_mut().enumerate() {
            let cell = self.cfg.cell_of(d);
            for ev in dev.take_evicted() {
                self.failovers += 1;
                self.failovers_per_cell[cell] += 1;
                let tenant = self.tenant[ev.id as usize];
                self.outstanding[tenant] =
                    self.outstanding[tenant].saturating_sub(self.need[ev.id as usize]);
                self.sink.instant(
                    self.cell_tracks.get(cell).copied().unwrap_or_default(),
                    "failover",
                    ev.evicted_s * 1e9,
                    &[("id", ArgValue::U64(ev.id)), ("from", ArgValue::U64(d as u64))],
                );
                self.requeue_or_fail(cell, ev);
            }
        }
    }

    /// Tier-1 candidates at `t`: `(cell, backlog, live devices)` for every
    /// cell that can admit, ordered best-first (least mean backlog per
    /// live device, ties to the lowest cell index).
    fn cell_candidates(&self, devices: &[DeviceSim<'_, S>], t: f64) -> Vec<(usize, u64, u64)> {
        let mut cands: Vec<(usize, u64, u64)> = Vec::with_capacity(self.cfg.cells);
        for cell in 0..self.cfg.cells {
            if self.chaos.partitioned(cell, t) {
                continue;
            }
            let mut backlog = 0u64;
            let mut live = 0u64;
            for slot in 0..self.cfg.max_devices_per_cell {
                let d = self.cfg.global_index(cell, slot);
                if self.device_live(devices, d, t) {
                    live += 1;
                    backlog += devices[d].backlog_tokens();
                }
            }
            if live > 0 {
                cands.push((cell, backlog, live));
            }
        }
        // Integer cross-multiplication compares mean backlogs exactly.
        cands.sort_by(|a, b| {
            (u128::from(a.1) * u128::from(b.2))
                .cmp(&(u128::from(b.1) * u128::from(a.2)))
                .then(a.0.cmp(&b.0))
        });
        cands
    }

    /// Tier-2 dispatch inside `cell` under the configured routing policy.
    fn pick_device(&mut self, devices: &[DeviceSim<'_, S>], cell: usize, t: f64) -> Option<usize> {
        let live: Vec<usize> = (0..self.cfg.max_devices_per_cell)
            .map(|slot| self.cfg.global_index(cell, slot))
            .filter(|&d| self.device_live(devices, d, t))
            .collect();
        match self.cfg.routing {
            Routing::RoundRobin => {
                let &d = live.get(self.rr % live.len().max(1))?;
                self.rr += 1;
                Some(d)
            }
            // min_by_key keeps the first minimum: ties go to the lowest
            // global index, keeping the schedule deterministic.
            Routing::LeastLoaded => {
                live.iter().copied().min_by_key(|&d| devices[d].backlog_tokens())
            }
        }
    }

    /// Route one request (fresh, retried, or unparked) through both tiers.
    fn route(&mut self, devices: &mut [DeviceSim<'_, S>], t: f64, p: Parked) -> Routed {
        let idx = p.id as usize;
        if self.plan.deadline_s > 0.0 && t - p.arrival_s > self.plan.deadline_s {
            self.shed(t, p.id, p.arrival_s, ClusterShedReason::DeadlineExpired);
            return Routed::Done;
        }
        let tenant = self.tenant[idx];
        let quota = self.cfg.tenants[tenant].kv_quota_bytes;
        if quota > 0 && self.outstanding[tenant] + self.need[idx] > quota {
            self.shed(t, p.id, p.arrival_s, ClusterShedReason::QuotaExceeded);
            return Routed::Done;
        }
        let cands = self.cell_candidates(devices, t);
        let Some(&(best, _, _)) = cands.first() else {
            return Routed::NoCell(p);
        };
        let mut cell = best;
        let delay = self.chaos.link_delay(best, t);
        if delay > 0.0 {
            let clean = if self.cfg.hedge_after_s > 0.0 && delay >= self.cfg.hedge_after_s {
                cands[1..].iter().map(|c| c.0).find(|&c| self.chaos.link_delay(c, t) == 0.0)
            } else {
                None
            };
            match clean {
                Some(alt) => {
                    // Hedge: the spike exceeds the threshold and a clean
                    // cell exists — reroute instead of waiting.
                    self.hedges += 1;
                    self.sink.instant(
                        self.cell_tracks.get(best).copied().unwrap_or_default(),
                        "hedge",
                        t * 1e9,
                        &[("id", ArgValue::U64(p.id)), ("to", ArgValue::U64(alt as u64))],
                    );
                    cell = alt;
                }
                None => {
                    // Defer past the spike; `extra_s > 0` is validated, so
                    // deferral always makes progress.
                    self.deferrals += 1;
                    self.sink.instant(
                        self.cell_tracks.get(best).copied().unwrap_or_default(),
                        "defer",
                        t * 1e9,
                        &[("id", ArgValue::U64(p.id))],
                    );
                    self.retryq.push(Reverse(Retry {
                        t_s: t + delay,
                        seq: self.seq,
                        id: p.id,
                        arrival_s: p.arrival_s,
                        query: p.query,
                        attempt: p.attempt,
                    }));
                    self.seq += 1;
                    return Routed::Done;
                }
            }
        }
        let Some(target) = self.pick_device(devices, cell, t) else {
            return Routed::NoCell(p);
        };
        self.outstanding[tenant] += self.need[idx];
        self.dispatched_per_cell[cell] += 1;
        self.sink.instant(
            self.cell_tracks.get(cell).copied().unwrap_or_default(),
            "dispatch",
            t * 1e9,
            &[
                ("id", ArgValue::U64(p.id)),
                ("device", ArgValue::U64(target as u64)),
                ("attempt", ArgValue::U64(u64::from(p.attempt))),
            ],
        );
        devices[target].enqueue_attempt(t, p.arrival_s, p.id, p.query, p.attempt);
        Routed::Done
    }

    /// Route, parking on `NoCell`.
    fn route_or_park(&mut self, devices: &mut [DeviceSim<'_, S>], t: f64, p: Parked) {
        if let Routed::NoCell(p) = self.route(devices, t, p) {
            self.park(t, p);
        }
    }

    /// Process every autoscaler tick due at or before `t`.
    fn autoscale_ticks(&mut self, devices: &[DeviceSim<'_, S>], t: f64) {
        let Some(pol) = self.cfg.autoscale else { return };
        while self.next_tick_s <= t {
            let tick = self.next_tick_s;
            self.next_tick_s += pol.interval_s;
            let window: Vec<f64> = self
                .samples
                .iter()
                .filter(|&&(done, _)| done > tick - pol.window_s && done <= tick)
                .map(|&(_, ttft)| ttft)
                .collect();
            let burning =
                !window.is_empty() && Summary::from_unsorted(window).p99 > pol.slo_ttft_ms;
            if burning {
                self.burn += 1;
                self.cool = 0;
            } else {
                self.cool += 1;
                self.burn = 0;
            }
            if self.burn >= pol.burn_streak {
                self.burn = 0;
                self.scale_out(devices, tick, &pol);
            }
            if self.cool >= pol.cool_streak {
                self.cool = 0;
                self.scale_in(devices, tick);
            }
        }
    }

    /// Activate one headroom slot in the most-loaded cell; it starts
    /// accepting after the policy's warmup.
    fn scale_out(&mut self, devices: &[DeviceSim<'_, S>], tick: f64, pol: &AutoscalePolicy) {
        let mut best: Option<(u128, u128, usize, usize)> = None; // (backlog, live, cell, spare)
        for cell in 0..self.cfg.cells {
            let mut backlog = 0u128;
            let mut live = 0u128;
            let mut spare = None;
            for slot in 0..self.cfg.max_devices_per_cell {
                let d = self.cfg.global_index(cell, slot);
                if self.device_live(devices, d, tick) {
                    live += 1;
                    backlog += u128::from(devices[d].backlog_tokens());
                } else if spare.is_none()
                    && self.active_from[d] == f64::INFINITY
                    && !devices[d].is_dead()
                {
                    spare = Some(d);
                }
            }
            let Some(spare) = spare else { continue };
            // Max mean backlog wins; a cell with zero live devices (all
            // down) counts as infinitely loaded — growing it restores
            // capacity where none is left.
            let more_loaded = match best {
                None => true,
                Some((b_backlog, b_live, _, _)) => {
                    backlog * b_live > b_backlog * live || (live == 0 && b_live > 0)
                }
            };
            if more_loaded {
                best = Some((backlog, live, cell, spare));
            }
        }
        if let Some((_, _, cell, spare)) = best {
            self.active_from[spare] = tick + pol.warmup_s;
            self.autoscaled[spare] = true;
            self.scale_outs += 1;
            self.sink.instant(
                self.cell_tracks.get(cell).copied().unwrap_or_default(),
                "scale-out",
                tick * 1e9,
                &[("device", ArgValue::U64(spare as u64))],
            );
        }
    }

    /// Deactivate the lowest-indexed idle autoscaled device, if any.
    fn scale_in(&mut self, devices: &[DeviceSim<'_, S>], tick: f64) {
        let victim = (0..devices.len()).find(|&d| {
            self.autoscaled[d] && self.active_from[d] <= tick && devices[d].backlog_tokens() == 0
        });
        if let Some(d) = victim {
            self.active_from[d] = f64::INFINITY;
            self.autoscaled[d] = false;
            self.scale_ins += 1;
            self.sink.instant(
                self.cell_tracks.get(self.cfg.cell_of(d)).copied().unwrap_or_default(),
                "scale-in",
                tick * 1e9,
                &[("device", ArgValue::U64(d as u64))],
            );
        }
    }

    /// Earliest instant after `now` at which the routable world can
    /// change: a chaos window edge, an outage recovery, or a pending
    /// warmup completing.
    fn next_boundary(&self) -> Option<f64> {
        let mut best = self.chaos.next_boundary_after(self.now);
        for &a in &self.active_from {
            if a.is_finite() && a > self.now && best.is_none_or(|b| a < b) {
                best = Some(a);
            }
        }
        best
    }
}

/// Run `dataset` with arrivals from `arrival` on the cluster described by
/// `cfg`, injecting the chaos scheduled in `plan`.
///
/// Deterministic for a fixed seed and plan: repeated runs serialize to
/// byte-identical [`ClusterReport::to_json`] output regardless of the
/// `FACIL_THREADS` worker count, and [`ChaosPlan::none`] reproduces the
/// chaos-free schedule exactly. Every offered request reaches exactly one
/// terminal state: `offered == completed + shed`
/// ([`ClusterReport::conserved`]).
///
/// # Errors
///
/// * [`ClusterConfig::validate`] errors for a malformed cluster shape;
/// * [`ChaosPlan::validate`] errors for a malformed chaos plan.
pub fn run_cluster(
    sim: &InferenceSim,
    dataset: &Dataset,
    arrival: &ArrivalProcess,
    cfg: &ClusterConfig,
    plan: &ChaosPlan,
) -> Result<ClusterReport> {
    drive::<NullSink, ParallelExec>(sim, dataset, arrival, cfg, plan, NullSink)
}

/// [`run_cluster`] with every router and scheduler decision recorded into
/// `sink`: per-device `serve` tracks plus `cluster` tracks for the router
/// and each cell (dispatches, parks, sheds, hedges, deferrals, failovers,
/// autoscaling). Tracing is observational — the report is byte-identical
/// to the untraced run — and traced devices run serially so the sink
/// handle never crosses a thread.
///
/// # Errors
///
/// See [`run_cluster`].
pub fn run_cluster_traced<S: TraceSink + Clone>(
    sim: &InferenceSim,
    dataset: &Dataset,
    arrival: &ArrivalProcess,
    cfg: &ClusterConfig,
    plan: &ChaosPlan,
    sink: S,
) -> Result<ClusterReport> {
    drive::<S, SerialExec>(sim, dataset, arrival, cfg, plan, sink)
}

fn drive<S: TraceSink + Clone, E: FleetExec<S>>(
    sim: &InferenceSim,
    dataset: &Dataset,
    arrival: &ArrivalProcess,
    cfg: &ClusterConfig,
    plan: &ChaosPlan,
    mut sink: S,
) -> Result<ClusterReport> {
    cfg.validate()?;
    let chaos = plan.compile(cfg)?;
    let n = dataset.queries.len();
    let times = arrival.sample_times(cfg.serve.seed, n);
    let slots = cfg.total_slots();
    let (track, cell_tracks) = if sink.enabled() {
        let t = sink.track("cluster", "router");
        let cells = (0..cfg.cells).map(|c| sink.track("cluster", &format!("cell{c}"))).collect();
        (t, cells)
    } else {
        (TrackId::default(), Vec::new())
    };
    let mut devices: Vec<DeviceSim<S>> = (0..slots)
        .map(|d| DeviceSim::with_faults_traced(sim, d, cfg.serve, &chaos.plan, sink.clone()))
        .collect();
    let need: Vec<u64> = dataset.queries.iter().map(|q| devices[0].kv_bytes_needed(q)).collect();
    let tenant: Vec<usize> = (0..n as u64).map(|id| cfg.tenant_of(id)).collect();
    let active_from: Vec<f64> =
        (0..slots)
            .map(|d| {
                if d % cfg.max_devices_per_cell < cfg.devices_per_cell {
                    0.0
                } else {
                    f64::INFINITY
                }
            })
            .collect();
    let mut r = RouterState {
        cfg,
        chaos: &chaos,
        plan,
        tenant,
        need,
        outstanding: vec![0; cfg.tenants.len()],
        active_from,
        autoscaled: vec![false; slots],
        park: BTreeMap::new(),
        park_seq: 0,
        retryq: BinaryHeap::new(),
        seq: n as u64,
        rr: 0,
        sheds: Vec::new(),
        seen_completed: vec![0; slots],
        seen_shed: vec![0; slots],
        dispatched_per_cell: vec![0; cfg.cells],
        failovers_per_cell: vec![0; cfg.cells],
        retries_per_cell: vec![0; cfg.cells],
        failovers: 0,
        retries: 0,
        deferrals: 0,
        hedges: 0,
        parked_peak: 0,
        samples: Vec::new(),
        next_tick_s: cfg.autoscale.map_or(f64::INFINITY, |p| p.interval_s),
        burn: 0,
        cool: 0,
        scale_outs: 0,
        scale_ins: 0,
        now: 0.0,
        sink,
        track,
        cell_tracks,
    };

    for (i, (q, &t)) in dataset.queries.iter().zip(&times).enumerate() {
        // Fire deferrals and failover retries that come due first.
        while let Some(&Reverse(rt)) = r.retryq.peek() {
            if rt.t_s > t {
                break;
            }
            r.retryq.pop();
            E::advance_all(&mut devices, rt.t_s);
            r.harvest(&mut devices);
            r.autoscale_ticks(&devices, rt.t_s);
            r.now = r.now.max(rt.t_s);
            r.unpark(&mut devices, rt.t_s);
            let p =
                Parked { id: rt.id, arrival_s: rt.arrival_s, query: rt.query, attempt: rt.attempt };
            r.route_or_park(&mut devices, rt.t_s, p);
        }
        // Advance every device to the arrival instant so both routing
        // tiers and the autoscaler read consistent backlogs, and so due
        // ticks see every completion harvested up to `t` — drain-phase
        // completions land in their tick windows by `done` timestamp.
        E::advance_all(&mut devices, t);
        r.harvest(&mut devices);
        r.autoscale_ticks(&devices, t);
        r.now = r.now.max(t);
        r.unpark(&mut devices, t);
        let p = Parked { id: i as u64, arrival_s: t, query: *q, attempt: 0 };
        r.route_or_park(&mut devices, t, p);
    }
    // Quiesce: drain everything, fail work over as it is lost, and jump
    // parked requests to the next availability boundary until no request
    // is outstanding anywhere. Autoscaling stops with the arrival stream.
    loop {
        E::drain_all(&mut devices);
        r.harvest(&mut devices);
        if let Some(Reverse(rt)) = r.retryq.pop() {
            E::advance_all(&mut devices, rt.t_s);
            r.harvest(&mut devices);
            r.now = r.now.max(rt.t_s);
            r.unpark(&mut devices, rt.t_s);
            let p =
                Parked { id: rt.id, arrival_s: rt.arrival_s, query: rt.query, attempt: rt.attempt };
            r.route_or_park(&mut devices, rt.t_s, p);
            continue;
        }
        if r.park.is_empty() {
            break;
        }
        match r.next_boundary() {
            Some(b) => {
                r.now = b;
                E::advance_all(&mut devices, b);
                r.harvest(&mut devices);
                r.unpark(&mut devices, b);
            }
            None => {
                // No future instant can change admission: everything still
                // parked has permanently lost its capacity.
                let stuck: Vec<Parked> = std::mem::take(&mut r.park).into_values().collect();
                for p in stuck {
                    r.shed(r.now, p.id, p.arrival_s, ClusterShedReason::Failed);
                }
            }
        }
    }

    let span_s =
        devices.iter().map(DeviceSim::now_s).fold(times.last().copied().unwrap_or(0.0), f64::max);
    let cap = cfg.max_devices_per_cell;
    let mut cells = Vec::with_capacity(cfg.cells);
    for c in 0..cfg.cells {
        let meta = ReportMeta {
            strategy: cfg.serve.strategy,
            arrival: arrival.to_string(),
            routing: cfg.routing,
            offered: r.dispatched_per_cell[c],
            span_s,
            failovers: r.failovers_per_cell[c],
            retries: r.retries_per_cell[c],
            deadline_s: plan.deadline_s,
        };
        let active =
            (0..cap).filter(|&s| r.active_from[cfg.global_index(c, s)].is_finite()).count();
        cells.push(CellReport {
            cell: c,
            dispatched: r.dispatched_per_cell[c],
            active_devices: active,
            serve: assemble_report(&devices[c * cap..(c + 1) * cap], &[], &meta),
        });
    }

    // Per-tenant rollups: assignment is id-keyed, so completions and sheds
    // attribute exactly regardless of which device finished them.
    let mut t_offered = vec![0usize; cfg.tenants.len()];
    for &tn in &r.tenant {
        t_offered[tn] += 1;
    }
    let mut t_completed = vec![0usize; cfg.tenants.len()];
    let mut t_shed = vec![0usize; cfg.tenants.len()];
    let mut t_ttft: Vec<Vec<f64>> = vec![Vec::new(); cfg.tenants.len()];
    let mut t_ttlt: Vec<Vec<f64>> = vec![Vec::new(); cfg.tenants.len()];
    for cell in &cells {
        for req in &cell.serve.requests {
            let tn = r.tenant[req.id as usize];
            t_completed[tn] += 1;
            t_ttft[tn].push(req.ttft_ms);
            t_ttlt[tn].push(req.ttlt_ms);
        }
        for s in &cell.serve.sheds {
            t_shed[r.tenant[s.id as usize]] += 1;
        }
    }
    for s in &r.sheds {
        t_shed[s.tenant] += 1;
    }
    let tenants: Vec<TenantReport> = cfg
        .tenants
        .iter()
        .enumerate()
        .map(|(i, t)| TenantReport {
            name: t.name.clone(),
            priority: t.priority,
            offered: t_offered[i],
            completed: t_completed[i],
            shed: t_shed[i],
            ttft_ms: Summary::from_unsorted(std::mem::take(&mut t_ttft[i])),
            ttlt_ms: Summary::from_unsorted(std::mem::take(&mut t_ttlt[i])),
        })
        .collect();

    let completed: usize = cells.iter().map(|c| c.serve.completed).sum();
    let device_shed: usize = cells.iter().map(|c| c.serve.shed).sum();
    let mut sheds = std::mem::take(&mut r.sheds);
    sheds.sort_by_key(|s| s.id);
    let by_reason = |reason: ClusterShedReason| sheds.iter().filter(|s| s.reason == reason).count();
    let mut all_ttft = Vec::with_capacity(completed);
    let mut all_ttlt = Vec::with_capacity(completed);
    for cell in &cells {
        for req in &cell.serve.requests {
            all_ttft.push(req.ttft_ms);
            all_ttlt.push(req.ttlt_ms);
        }
    }
    let downtime_s: f64 = cells.iter().map(|c| c.serve.downtime_s).sum();
    let availability = if span_s > 0.0 && slots > 0 {
        (1.0 - downtime_s / (span_s * slots as f64)).clamp(0.0, 1.0)
    } else {
        0.0
    };
    let per_qps = |count: usize| if span_s > 0.0 { count as f64 / span_s } else { 0.0 };
    Ok(ClusterReport {
        cells_configured: cfg.cells,
        devices_initial: cfg.cells * cfg.devices_per_cell,
        devices_final: r.active_from.iter().filter(|a| a.is_finite()).count(),
        offered: n,
        completed,
        shed: device_shed + sheds.len(),
        shed_overload: by_reason(ClusterShedReason::Overload),
        shed_quota: by_reason(ClusterShedReason::QuotaExceeded),
        shed_failed: by_reason(ClusterShedReason::Failed),
        shed_deadline: by_reason(ClusterShedReason::DeadlineExpired),
        shed_device: device_shed,
        span_s,
        offered_qps: per_qps(n),
        goodput_qps: per_qps(completed),
        availability,
        failovers: r.failovers,
        retries: r.retries,
        deferrals: r.deferrals,
        hedges: r.hedges,
        parked_peak: r.parked_peak,
        scale_outs: r.scale_outs,
        scale_ins: r.scale_ins,
        ttft_ms: Summary::from_unsorted(all_ttft),
        ttlt_ms: Summary::from_unsorted(all_ttlt),
        tenants,
        cells,
        sheds,
    })
}
