//! Cluster-scale chaos: correlated cell outages, network partitions,
//! link-delay spikes, and slow-node gray failures, compiled down to the
//! device-level [`FaultPlan`] plus router-visible windows.
//!
//! A [`ChaosPlan`] extends the PR 2 fault model one level up. Device-scope
//! events (crashes, freezes, PIM/KV faults, gray slowdowns) compile to
//! [`FaultEvent`]s on *global* device indices; cluster-scope events
//! compile to windows only the router sees:
//!
//! - **cell outages** crash every device of a cell at once (recoverable),
//!   the correlated failure a flat fleet cannot express;
//! - **partitions** make a cell unreachable for *new* dispatches while
//!   its devices keep serving what they already hold;
//! - **link delays** charge extra seconds to every dispatch entering a
//!   cell, triggering hedged rerouting past the configured threshold.
//!
//! Everything is deterministic: [`ChaosPlan::seeded`] derives the whole
//! schedule from a seed, and [`ChaosPlan::none`] compiles to an empty
//! fault plan that reproduces the chaos-free schedule exactly.

use facil_core::{FacilError, Result};
use facil_serve::{FaultEvent, FaultKind, FaultPlan};
use facil_sim::XorShift64Star;
use serde::{Deserialize, Serialize};

use crate::topology::ClusterConfig;

/// One chaos event at cluster scope.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ChaosEvent {
    /// Correlated outage: every device of `cell` crashes at `at_s` and
    /// recovers `duration_s` later (in-flight work is evicted for
    /// cross-cell failover).
    CellOutage {
        /// Target cell.
        cell: usize,
        /// Outage start, seconds.
        at_s: f64,
        /// Outage length, seconds.
        duration_s: f64,
    },
    /// Network partition: the router cannot dispatch *into* `cell` during
    /// the window; devices inside keep draining their local queues.
    Partition {
        /// Target cell.
        cell: usize,
        /// Partition start, seconds.
        at_s: f64,
        /// Partition length, seconds.
        duration_s: f64,
    },
    /// Link-delay spike: dispatches entering `cell` during the window are
    /// deferred by `extra_s` (or hedged to another cell past the
    /// [`crate::ClusterConfig::hedge_after_s`] threshold).
    LinkDelay {
        /// Target cell.
        cell: usize,
        /// Spike start, seconds.
        at_s: f64,
        /// Spike length, seconds.
        duration_s: f64,
        /// Added dispatch latency, seconds (must be positive).
        extra_s: f64,
    },
    /// Gray failure: global device `device` serves `factor`× slower for
    /// `duration_s` seconds while still passing health checks
    /// ([`FaultKind::Slow`]).
    GrayFailure {
        /// Global device index.
        device: usize,
        /// Slowdown start, seconds.
        at_s: f64,
        /// Slowdown length, seconds.
        duration_s: f64,
        /// Iteration-time multiplier (finite, >= 1.0).
        factor: f64,
    },
    /// Pass a device-scope fault through unchanged (crash, freeze,
    /// PIM fault, KV fault) on a global device index.
    Device {
        /// Global device index.
        device: usize,
        /// Fault start, seconds.
        at_s: f64,
        /// The device-level fault.
        kind: FaultKind,
    },
}

/// Rates for [`ChaosPlan::seeded`]: expected events per simulated hour.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChaosRates {
    /// Cell outages per hour (cluster-wide).
    pub cell_outages_per_h: f64,
    /// Partitions per hour (cluster-wide).
    pub partitions_per_h: f64,
    /// Link-delay spikes per hour (cluster-wide).
    pub link_delays_per_h: f64,
    /// Gray failures per hour (cluster-wide).
    pub gray_failures_per_h: f64,
    /// Device crashes per hour (cluster-wide, recoverable).
    pub crashes_per_h: f64,
}

impl Default for ChaosRates {
    fn default() -> Self {
        ChaosRates {
            cell_outages_per_h: 1.0,
            partitions_per_h: 2.0,
            link_delays_per_h: 6.0,
            gray_failures_per_h: 4.0,
            crashes_per_h: 4.0,
        }
    }
}

/// Deterministic cluster chaos schedule plus the failover policy knobs
/// shared with the device-level [`FaultPlan`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosPlan {
    /// Scheduled events (any order; compilation sorts).
    pub events: Vec<ChaosEvent>,
    /// Failover attempts per request before shedding as `Failed`.
    pub max_retries: u32,
    /// Base retry backoff, seconds (doubles per attempt, saturating).
    pub retry_backoff_s: f64,
    /// Per-request deadline, seconds (0 disables).
    pub deadline_s: f64,
}

impl ChaosPlan {
    /// No chaos: empty schedule, default failover knobs. Compiles to an
    /// empty [`FaultPlan`] and reproduces the chaos-free schedule exactly.
    pub fn none() -> ChaosPlan {
        ChaosPlan { events: Vec::new(), max_retries: 3, retry_backoff_s: 0.05, deadline_s: 0.0 }
    }

    /// Sample a chaos schedule over `span_s` seconds for the cluster shape
    /// `cfg`, deterministically under `seed`. Event times are Poisson per
    /// class; targets are uniform over cells/devices.
    pub fn seeded(seed: u64, cfg: &ClusterConfig, span_s: f64, rates: &ChaosRates) -> ChaosPlan {
        let mut rng = XorShift64Star::new(seed ^ 0xC1A0_5C1A_05C1_A05C);
        let mut events = Vec::new();
        let hours = span_s / 3600.0;
        let initial_slots: Vec<usize> = (0..cfg.cells)
            .flat_map(|c| (0..cfg.devices_per_cell).map(move |s| (c, s)))
            .map(|(c, s)| cfg.global_index(c, s))
            .collect();
        type EventCtor<'a> = Box<dyn FnMut(&mut XorShift64Star, f64) -> ChaosEvent + 'a>;
        let mut sample = |per_h: f64, mut mk: EventCtor<'_>| {
            if per_h <= 0.0 {
                return Vec::new();
            }
            let rate = per_h / 3600.0;
            let mut t = 0.0;
            let mut out = Vec::new();
            for _ in 0..((per_h * hours).ceil() as usize * 4).max(4) {
                t += rng.next_exp(rate);
                if t >= span_s {
                    break;
                }
                out.push(mk(&mut rng, t));
            }
            out
        };
        events.extend(sample(
            rates.cell_outages_per_h,
            Box::new(|rng, t| ChaosEvent::CellOutage {
                cell: (rng.next_u64() as usize) % cfg.cells,
                at_s: t,
                duration_s: 5.0 + rng.next_f64() * 25.0,
            }),
        ));
        events.extend(sample(
            rates.partitions_per_h,
            Box::new(|rng, t| ChaosEvent::Partition {
                cell: (rng.next_u64() as usize) % cfg.cells,
                at_s: t,
                duration_s: 2.0 + rng.next_f64() * 18.0,
            }),
        ));
        events.extend(sample(
            rates.link_delays_per_h,
            Box::new(|rng, t| ChaosEvent::LinkDelay {
                cell: (rng.next_u64() as usize) % cfg.cells,
                at_s: t,
                duration_s: 1.0 + rng.next_f64() * 9.0,
                extra_s: 0.05 + rng.next_f64() * 0.75,
            }),
        ));
        events.extend(sample(
            rates.gray_failures_per_h,
            Box::new(|rng, t| ChaosEvent::GrayFailure {
                device: initial_slots[(rng.next_u64() as usize) % initial_slots.len()],
                at_s: t,
                duration_s: 5.0 + rng.next_f64() * 55.0,
                factor: 2.0 + rng.next_f64() * 6.0,
            }),
        ));
        events.extend(sample(
            rates.crashes_per_h,
            Box::new(|rng, t| ChaosEvent::Device {
                device: initial_slots[(rng.next_u64() as usize) % initial_slots.len()],
                at_s: t,
                kind: FaultKind::Crash { recover_s: Some(2.0 + rng.next_f64() * 28.0) },
            }),
        ));
        ChaosPlan { events, ..ChaosPlan::none() }
    }

    /// Check every event against the cluster shape.
    ///
    /// # Errors
    ///
    /// [`FacilError::InvalidRequest`] on negative times/durations, a
    /// non-positive link-delay `extra_s` (deferral must make progress), a
    /// gray factor below 1.0; [`FacilError::DeviceUnavailable`] on an
    /// out-of-range cell or device target.
    pub fn validate(&self, cfg: &ClusterConfig) -> Result<()> {
        let check_cell = |cell: usize| {
            if cell >= cfg.cells {
                return Err(FacilError::DeviceUnavailable { device: cell });
            }
            Ok(())
        };
        let check_device = |device: usize| {
            if device >= cfg.total_slots() {
                return Err(FacilError::DeviceUnavailable { device });
            }
            Ok(())
        };
        let check_span = |at_s: f64, duration_s: f64| {
            if !at_s.is_finite() || at_s < 0.0 {
                return Err(FacilError::InvalidRequest(format!(
                    "event time {at_s} must be non-negative and finite"
                )));
            }
            if !duration_s.is_finite() || duration_s <= 0.0 {
                return Err(FacilError::InvalidRequest(format!(
                    "event duration {duration_s} must be finite and positive"
                )));
            }
            Ok(())
        };
        for e in &self.events {
            match *e {
                ChaosEvent::CellOutage { cell, at_s, duration_s }
                | ChaosEvent::Partition { cell, at_s, duration_s } => {
                    check_cell(cell)?;
                    check_span(at_s, duration_s)?;
                }
                ChaosEvent::LinkDelay { cell, at_s, duration_s, extra_s } => {
                    check_cell(cell)?;
                    check_span(at_s, duration_s)?;
                    if !extra_s.is_finite() || extra_s <= 0.0 {
                        return Err(FacilError::InvalidRequest(format!(
                            "link delay {extra_s} must be positive and finite"
                        )));
                    }
                }
                ChaosEvent::GrayFailure { device, at_s, duration_s, factor } => {
                    check_device(device)?;
                    check_span(at_s, duration_s)?;
                    if !factor.is_finite() || factor < 1.0 {
                        return Err(FacilError::InvalidRequest(format!(
                            "gray factor {factor} must be finite and >= 1.0"
                        )));
                    }
                }
                ChaosEvent::Device { device, at_s, kind } => {
                    check_device(device)?;
                    let duration = match kind {
                        FaultKind::Crash { recover_s } => recover_s.unwrap_or(1.0),
                        FaultKind::Freeze { duration_s }
                        | FaultKind::PimFault { duration_s }
                        | FaultKind::KvFault { duration_s }
                        | FaultKind::Slow { duration_s, .. } => duration_s,
                    };
                    check_span(at_s, duration)?;
                }
            }
        }
        if !self.retry_backoff_s.is_finite() || self.retry_backoff_s < 0.0 {
            return Err(FacilError::InvalidRequest(format!(
                "retry backoff {} must be non-negative and finite",
                self.retry_backoff_s
            )));
        }
        if !self.deadline_s.is_finite() || self.deadline_s < 0.0 {
            return Err(FacilError::InvalidRequest(format!(
                "deadline {} must be non-negative and finite",
                self.deadline_s
            )));
        }
        Ok(())
    }

    /// Compile to the device-level fault plan plus router windows. The
    /// plan is validated against `cfg` first.
    ///
    /// # Errors
    ///
    /// See [`ChaosPlan::validate`]; the compiled [`FaultPlan`] is also
    /// validated against the total slot count.
    pub fn compile(&self, cfg: &ClusterConfig) -> Result<CompiledChaos> {
        self.validate(cfg)?;
        let mut fault_events = Vec::new();
        let mut partitions = vec![Vec::new(); cfg.cells];
        let mut link_delays = vec![Vec::new(); cfg.cells];
        for e in &self.events {
            match *e {
                ChaosEvent::CellOutage { cell, at_s, duration_s } => {
                    // Correlated crash across every *slot* of the cell:
                    // devices scaled out later share the failure domain.
                    for slot in 0..cfg.max_devices_per_cell {
                        fault_events.push(FaultEvent {
                            device: cfg.global_index(cell, slot),
                            at_s,
                            kind: FaultKind::Crash { recover_s: Some(duration_s) },
                        });
                    }
                }
                ChaosEvent::Partition { cell, at_s, duration_s } => {
                    partitions[cell].push((at_s, at_s + duration_s));
                }
                ChaosEvent::LinkDelay { cell, at_s, duration_s, extra_s } => {
                    link_delays[cell].push((at_s, at_s + duration_s, extra_s));
                }
                ChaosEvent::GrayFailure { device, at_s, duration_s, factor } => {
                    fault_events.push(FaultEvent {
                        device,
                        at_s,
                        kind: FaultKind::Slow { duration_s, factor },
                    });
                }
                ChaosEvent::Device { device, at_s, kind } => {
                    fault_events.push(FaultEvent { device, at_s, kind });
                }
            }
        }
        // Deterministic device order for coincident events.
        fault_events.sort_by(|a, b| a.at_s.total_cmp(&b.at_s).then(a.device.cmp(&b.device)));
        for w in &mut partitions {
            w.sort_by(|a, b| a.0.total_cmp(&b.0));
        }
        for w in &mut link_delays {
            w.sort_by(|a, b| a.0.total_cmp(&b.0));
        }
        let plan = FaultPlan {
            events: fault_events,
            deadline_s: self.deadline_s,
            max_retries: self.max_retries,
            retry_backoff_s: self.retry_backoff_s,
        };
        plan.validate(cfg.total_slots())?;
        Ok(CompiledChaos { plan, partitions, link_delays })
    }
}

/// A [`ChaosPlan`] lowered to what the two tiers consume: one merged
/// device-level fault plan, and per-cell partition / link-delay windows
/// only the router sees.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledChaos {
    /// Device-level faults on global indices (each
    /// [`facil_serve::DeviceSim`] filters its own events).
    pub plan: FaultPlan,
    /// Per-cell partition windows `(start, end)`, sorted by start.
    pub partitions: Vec<Vec<(f64, f64)>>,
    /// Per-cell link-delay windows `(start, end, extra_s)`, sorted by
    /// start.
    pub link_delays: Vec<Vec<(f64, f64, f64)>>,
}

impl CompiledChaos {
    /// True if the router cannot dispatch into `cell` at `t`.
    pub fn partitioned(&self, cell: usize, t: f64) -> bool {
        self.partitions[cell].iter().any(|&(s, e)| s <= t && t < e)
    }

    /// Extra dispatch latency into `cell` at `t` (0.0 outside spikes;
    /// overlapping spikes take the maximum).
    pub fn link_delay(&self, cell: usize, t: f64) -> f64 {
        self.link_delays[cell]
            .iter()
            .filter(|&&(s, e, _)| s <= t && t < e)
            .map(|&(_, _, x)| x)
            .fold(0.0, f64::max)
    }

    /// Earliest router-visible availability boundary strictly after `t`:
    /// the next end of a partition or link-delay window. Used by the
    /// quiesce loop to jump parked work to the next instant the world can
    /// have changed.
    pub fn next_boundary_after(&self, t: f64) -> Option<f64> {
        let mut best: Option<f64> = None;
        let mut consider = |x: f64| {
            if x > t && best.is_none_or(|b| x < b) {
                best = Some(x);
            }
        };
        for cell in &self.partitions {
            for &(s, e) in cell {
                consider(s);
                consider(e);
            }
        }
        for cell in &self.link_delays {
            for &(s, e, _) in cell {
                consider(s);
                consider(e);
            }
        }
        for ev in &self.plan.events {
            match ev.kind {
                FaultKind::Crash { recover_s: Some(r) } => consider(ev.at_s + r),
                FaultKind::Freeze { duration_s } => consider(ev.at_s + duration_s),
                _ => {}
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ClusterConfig {
        ClusterConfig {
            cells: 2,
            devices_per_cell: 2,
            max_devices_per_cell: 3,
            ..ClusterConfig::default()
        }
    }

    #[test]
    fn none_compiles_to_an_empty_fault_plan() {
        let c = ChaosPlan::none().compile(&cfg()).unwrap();
        assert!(c.plan.events.is_empty());
        assert!(c.partitions.iter().all(Vec::is_empty));
        assert!(c.link_delays.iter().all(Vec::is_empty));
        assert!(!c.partitioned(0, 1.0));
        assert_eq!(c.link_delay(1, 1.0), 0.0);
        assert_eq!(c.next_boundary_after(0.0), None);
    }

    #[test]
    fn cell_outage_crashes_every_slot_of_the_cell() {
        let plan = ChaosPlan {
            events: vec![ChaosEvent::CellOutage { cell: 1, at_s: 3.0, duration_s: 10.0 }],
            ..ChaosPlan::none()
        };
        let c = plan.compile(&cfg()).unwrap();
        assert_eq!(c.plan.events.len(), 3, "one crash per slot incl. headroom");
        for e in &c.plan.events {
            assert_eq!(cfg().cell_of(e.device), 1);
            assert!(matches!(e.kind, FaultKind::Crash { recover_s: Some(r) } if r == 10.0));
        }
        // Outage recovery is a quiesce boundary.
        assert_eq!(c.next_boundary_after(4.0), Some(13.0));
    }

    #[test]
    fn partitions_and_link_delays_stay_router_side() {
        let plan = ChaosPlan {
            events: vec![
                ChaosEvent::Partition { cell: 0, at_s: 1.0, duration_s: 2.0 },
                ChaosEvent::LinkDelay { cell: 1, at_s: 0.5, duration_s: 4.0, extra_s: 0.3 },
                ChaosEvent::LinkDelay { cell: 1, at_s: 2.0, duration_s: 1.0, extra_s: 0.7 },
            ],
            ..ChaosPlan::none()
        };
        let c = plan.compile(&cfg()).unwrap();
        assert!(c.plan.events.is_empty(), "router-scope events emit no device faults");
        assert!(c.partitioned(0, 1.5) && !c.partitioned(0, 3.5) && !c.partitioned(1, 1.5));
        assert_eq!(c.link_delay(1, 1.0), 0.3);
        assert_eq!(c.link_delay(1, 2.5), 0.7, "overlap takes the max");
        assert_eq!(c.link_delay(0, 1.0), 0.0);
    }

    #[test]
    fn gray_failures_compile_to_slow_faults() {
        let plan = ChaosPlan {
            events: vec![ChaosEvent::GrayFailure {
                device: 4,
                at_s: 1.0,
                duration_s: 5.0,
                factor: 3.0,
            }],
            ..ChaosPlan::none()
        };
        let c = plan.compile(&cfg()).unwrap();
        assert_eq!(c.plan.events.len(), 1);
        assert!(matches!(c.plan.events[0].kind, FaultKind::Slow { factor, .. } if factor == 3.0));
    }

    #[test]
    fn out_of_range_targets_are_rejected() {
        let shape = cfg();
        for ev in [
            ChaosEvent::CellOutage { cell: 2, at_s: 0.0, duration_s: 1.0 },
            ChaosEvent::Partition { cell: 9, at_s: 0.0, duration_s: 1.0 },
            ChaosEvent::GrayFailure { device: 6, at_s: 0.0, duration_s: 1.0, factor: 2.0 },
            ChaosEvent::Device {
                device: 100,
                at_s: 0.0,
                kind: FaultKind::Freeze { duration_s: 1.0 },
            },
        ] {
            let plan = ChaosPlan { events: vec![ev], ..ChaosPlan::none() };
            assert!(plan.compile(&shape).is_err(), "{ev:?}");
        }
        let bad_delay = ChaosPlan {
            events: vec![ChaosEvent::LinkDelay {
                cell: 0,
                at_s: 0.0,
                duration_s: 1.0,
                extra_s: 0.0,
            }],
            ..ChaosPlan::none()
        };
        assert!(bad_delay.compile(&shape).is_err(), "zero extra_s could defer forever");
    }

    #[test]
    fn seeded_plans_are_deterministic_and_in_span() {
        let shape = cfg();
        let rates = ChaosRates::default();
        let a = ChaosPlan::seeded(7, &shape, 3600.0, &rates);
        let b = ChaosPlan::seeded(7, &shape, 3600.0, &rates);
        assert_eq!(a, b);
        let c = ChaosPlan::seeded(8, &shape, 3600.0, &rates);
        assert_ne!(a, c);
        assert!(!a.events.is_empty());
        a.validate(&shape).unwrap();
        a.compile(&shape).unwrap();
    }
}
