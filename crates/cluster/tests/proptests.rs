//! Property-based tests of the cluster driver's conservation and
//! determinism invariants under seeded chaos.

use facil_cluster::{run_cluster, ChaosEvent, ChaosPlan, ChaosRates, ClusterConfig, ClusterReport};
use facil_serve::{run_fleet_with_faults, FaultPlan, FleetConfig, Routing, ServeConfig};
use facil_sim::InferenceSim;
use facil_soc::{Platform, PlatformId};
use facil_workloads::{ArrivalProcess, Dataset};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::OnceLock;

/// One shared simulator (construction runs a DRAM simulation; reuse it).
fn sim() -> &'static InferenceSim {
    static SIM: OnceLock<InferenceSim> = OnceLock::new();
    SIM.get_or_init(|| {
        InferenceSim::new(Platform::get(PlatformId::Iphone)).expect("default model fits")
    })
}

/// Chaos rates high enough that short serving spans still see events of
/// every class.
fn hot_rates() -> ChaosRates {
    ChaosRates {
        cell_outages_per_h: 120.0,
        partitions_per_h: 120.0,
        link_delays_per_h: 240.0,
        gray_failures_per_h: 120.0,
        crashes_per_h: 240.0,
    }
}

/// Collect the terminal state of every request id: completions and
/// device-level sheds from the per-cell reports, router sheds from the
/// cluster record. Returns `(completed, shed)` id sets.
fn terminal_ids(r: &ClusterReport) -> (BTreeSet<u64>, BTreeSet<u64>) {
    let completed: BTreeSet<u64> =
        r.cells.iter().flat_map(|c| c.serve.requests.iter().map(|q| q.id)).collect();
    let shed: BTreeSet<u64> = r
        .cells
        .iter()
        .flat_map(|c| c.serve.sheds.iter().map(|s| s.id))
        .chain(r.sheds.iter().map(|s| s.id))
        .collect();
    (completed, shed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The conservation invariant holds under every seeded chaos plan,
    /// with correlated cell outages and network partitions explicitly
    /// forced in: every offered id reaches exactly one terminal state.
    #[test]
    fn conservation_holds_under_seeded_chaos(
        seed in 0u64..1_000,
        chaos_seed in 0u64..1_000,
        n in 1usize..20,
        qps in 0.5f64..6.0,
        cells in 1usize..4,
        devices_per_cell in 1usize..3,
        outage_at in 0.0f64..3.0,
        least_loaded in any::<bool>(),
    ) {
        let d = Dataset::code_autocompletion_like(seed, n);
        let cfg = ClusterConfig {
            cells,
            devices_per_cell,
            max_devices_per_cell: devices_per_cell,
            serve: ServeConfig { seed, fmfi: 0.0, ..ServeConfig::default() },
            routing: if least_loaded { Routing::LeastLoaded } else { Routing::RoundRobin },
            ..ClusterConfig::default()
        };
        let mut plan = ChaosPlan::seeded(chaos_seed, &cfg, 60.0, &hot_rates());
        plan.events.push(ChaosEvent::CellOutage {
            cell: cells - 1,
            at_s: outage_at,
            duration_s: 2.0 + outage_at,
        });
        plan.events.push(ChaosEvent::Partition {
            cell: 0,
            at_s: outage_at * 0.5,
            duration_s: 1.5,
        });
        let r = run_cluster(sim(), &d, &ArrivalProcess::Poisson { qps }, &cfg, &plan).unwrap();
        prop_assert_eq!(r.offered, n);
        prop_assert!(r.conserved(), "offered {} != completed {} + shed {}",
            r.offered, r.completed, r.shed);
        let (completed, shed) = terminal_ids(&r);
        prop_assert_eq!(completed.len() + shed.len(), n, "an id reached two terminal states");
        prop_assert!(completed.is_disjoint(&shed));
        let all: BTreeSet<u64> = completed.union(&shed).copied().collect();
        prop_assert_eq!(all, (0..n as u64).collect::<BTreeSet<u64>>());
    }

    /// Worker count is invisible in the results: the same chaotic cluster
    /// run on one pool worker serializes to exactly the JSON it produces
    /// on eight (the `FACIL_THREADS=1` vs `FACIL_THREADS=8` guarantee).
    #[test]
    fn worker_count_never_changes_the_report(
        seed in 0u64..1_000,
        chaos_seed in 0u64..1_000,
        n in 1usize..16,
        qps in 0.5f64..6.0,
    ) {
        let d = Dataset::code_autocompletion_like(seed, n);
        let cfg = ClusterConfig {
            cells: 2,
            devices_per_cell: 2,
            max_devices_per_cell: 2,
            serve: ServeConfig { seed, fmfi: 0.0, ..ServeConfig::default() },
            ..ClusterConfig::default()
        };
        let plan = ChaosPlan::seeded(chaos_seed, &cfg, 60.0, &hot_rates());
        let arrival = ArrivalProcess::Poisson { qps };
        facil_sim::pool::set_parallelism(1);
        let serial = run_cluster(sim(), &d, &arrival, &cfg, &plan).unwrap();
        facil_sim::pool::set_parallelism(8);
        let wide = run_cluster(sim(), &d, &arrival, &cfg, &plan).unwrap();
        facil_sim::pool::set_parallelism(0);
        prop_assert!(serial.conserved());
        prop_assert_eq!(&serial, &wide);
        prop_assert_eq!(serial.to_json(), wide.to_json());
    }

    /// An empty chaos plan reproduces the chaos-free schedule exactly:
    /// [`ChaosPlan::none`] and a zero-rate seeded plan are byte-identical,
    /// and neither triggers any resilience machinery.
    #[test]
    fn empty_plans_reproduce_the_chaos_free_schedule(
        seed in 0u64..1_000,
        n in 1usize..16,
        qps in 0.5f64..8.0,
        cells in 1usize..3,
        devices_per_cell in 1usize..3,
    ) {
        let d = Dataset::code_autocompletion_like(seed, n);
        let cfg = ClusterConfig {
            cells,
            devices_per_cell,
            max_devices_per_cell: devices_per_cell,
            serve: ServeConfig { seed, fmfi: 0.0, ..ServeConfig::default() },
            ..ClusterConfig::default()
        };
        let arrival = ArrivalProcess::Poisson { qps };
        let zero = ChaosRates {
            cell_outages_per_h: 0.0,
            partitions_per_h: 0.0,
            link_delays_per_h: 0.0,
            gray_failures_per_h: 0.0,
            crashes_per_h: 0.0,
        };
        let none = run_cluster(sim(), &d, &arrival, &cfg, &ChaosPlan::none()).unwrap();
        let seeded_empty = ChaosPlan::seeded(seed, &cfg, 600.0, &zero);
        prop_assert!(seeded_empty.events.is_empty());
        let quiet = run_cluster(sim(), &d, &arrival, &cfg, &seeded_empty).unwrap();
        prop_assert_eq!(&none, &quiet);
        prop_assert_eq!(none.to_json(), quiet.to_json());
        prop_assert_eq!(none.failovers, 0);
        prop_assert_eq!(none.retries, 0);
        prop_assert_eq!(none.deferrals, 0);
        prop_assert_eq!(none.hedges, 0);
        prop_assert_eq!(none.availability, 1.0);
        prop_assert!(none.sheds.is_empty(), "no router sheds without chaos");
        prop_assert!(none.conserved());
    }

    /// A one-cell cluster without chaos degenerates to the PR 2 fleet
    /// driver: its cell report is byte-identical to a standalone
    /// [`run_fleet_with_faults`] run over the same devices.
    #[test]
    fn single_cell_cluster_matches_the_fleet_driver(
        seed in 0u64..1_000,
        n in 1usize..16,
        qps in 0.5f64..8.0,
        devices in 1usize..4,
        least_loaded in any::<bool>(),
    ) {
        let d = Dataset::code_autocompletion_like(seed, n);
        let serve = ServeConfig { seed, fmfi: 0.0, ..ServeConfig::default() };
        let routing = if least_loaded { Routing::LeastLoaded } else { Routing::RoundRobin };
        let cfg = ClusterConfig {
            cells: 1,
            devices_per_cell: devices,
            max_devices_per_cell: devices,
            serve,
            routing,
            ..ClusterConfig::default()
        };
        let arrival = ArrivalProcess::Poisson { qps };
        let cluster = run_cluster(sim(), &d, &arrival, &cfg, &ChaosPlan::none()).unwrap();
        let fleet = run_fleet_with_faults(
            sim(),
            &d,
            &arrival,
            serve,
            FleetConfig { devices, routing },
            &FaultPlan::none(),
        ).unwrap();
        prop_assert_eq!(&cluster.cells[0].serve, &fleet);
        prop_assert_eq!(cluster.cells[0].serve.to_json(), fleet.to_json());
    }
}
