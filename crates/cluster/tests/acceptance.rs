//! End-to-end scenario tests of the cluster router: each test drives one
//! resilience mechanism (failover, partitions, hedging, gray failures,
//! tenant QoS, autoscaling) through a hand-built chaos plan and checks
//! the report tells the right story.

use facil_cluster::{
    run_cluster, run_cluster_traced, AutoscalePolicy, ChaosEvent, ChaosPlan, ClusterConfig,
    ClusterShedReason, Tenant,
};
use facil_serve::ServeConfig;
use facil_sim::InferenceSim;
use facil_soc::{Platform, PlatformId};
use facil_telemetry::RingSink;
use facil_workloads::{ArrivalProcess, Dataset, Query};
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::OnceLock;

/// One shared simulator (construction runs a DRAM simulation; reuse it).
fn sim() -> &'static InferenceSim {
    static SIM: OnceLock<InferenceSim> = OnceLock::new();
    SIM.get_or_init(|| {
        InferenceSim::new(Platform::get(PlatformId::Iphone)).expect("default model fits")
    })
}

/// A dataset of `n` identical queries — no sampling noise, so every
/// scenario is exactly reproducible.
fn fixed_queries(n: usize, prefill: u64, decode: u64) -> Dataset {
    Dataset { name: "fixed".into(), queries: vec![Query { prefill, decode }; n] }
}

fn base_cfg(cells: usize, devices_per_cell: usize) -> ClusterConfig {
    ClusterConfig {
        cells,
        devices_per_cell,
        max_devices_per_cell: devices_per_cell,
        serve: ServeConfig { fmfi: 0.0, ..ServeConfig::default() },
        ..ClusterConfig::default()
    }
}

/// Evenly spaced arrival trace: `n` arrivals `gap_s` apart from `start_s`.
fn spaced(n: usize, start_s: f64, gap_s: f64) -> ArrivalProcess {
    ArrivalProcess::Trace { times_s: (0..n).map(|i| start_s + gap_s * i as f64).collect() }
}

#[test]
fn cell_outage_fails_over_to_the_surviving_cell() {
    let d = fixed_queries(12, 64, 256);
    let cfg = base_cfg(2, 2);
    let plan = ChaosPlan {
        events: vec![ChaosEvent::CellOutage { cell: 0, at_s: 0.5, duration_s: 30.0 }],
        ..ChaosPlan::none()
    };
    let r = run_cluster(sim(), &d, &spaced(12, 0.0, 0.02), &cfg, &plan).unwrap();
    assert!(r.conserved());
    assert!(r.failovers > 0, "in-flight work on cell 0 must be evicted: {r:?}");
    assert!(r.retries > 0, "evictions must be rescheduled");
    assert!(r.availability < 1.0, "a 30 s outage must show up as downtime");
    assert_eq!(r.completed, r.offered, "the surviving cell absorbs everything");
    assert!(r.cells[1].serve.completed > 0, "failovers must land on the surviving cell");
}

#[test]
fn partition_parks_new_work_until_it_heals() {
    let d = fixed_queries(3, 32, 16);
    let cfg = base_cfg(1, 1);
    let plan = ChaosPlan {
        events: vec![ChaosEvent::Partition { cell: 0, at_s: 0.0, duration_s: 2.0 }],
        ..ChaosPlan::none()
    };
    let r = run_cluster(sim(), &d, &spaced(3, 0.1, 0.1), &cfg, &plan).unwrap();
    assert!(r.conserved());
    assert_eq!(r.completed, 3, "everything serves once the partition heals");
    assert_eq!(r.parked_peak, 3, "all three arrivals wait out the partition");
    for req in &r.cells[0].serve.requests {
        assert!(
            req.admitted_s >= 2.0,
            "request {} admitted at {} inside the partition window",
            req.id,
            req.admitted_s
        );
    }
}

#[test]
fn link_delay_defers_when_no_clean_cell_exists() {
    let d = fixed_queries(1, 32, 16);
    let cfg = base_cfg(1, 1);
    let plan = ChaosPlan {
        events: vec![ChaosEvent::LinkDelay { cell: 0, at_s: 0.0, duration_s: 0.4, extra_s: 0.2 }],
        ..ChaosPlan::none()
    };
    let r = run_cluster(sim(), &d, &spaced(1, 0.1, 1.0), &cfg, &plan).unwrap();
    assert!(r.conserved());
    assert_eq!(r.completed, 1);
    // 0.1 -> defer to 0.3 (still inside the spike) -> defer to 0.5 -> go.
    assert_eq!(r.deferrals, 2);
    assert_eq!(r.hedges, 0, "a one-cell cluster has nowhere to hedge");
    assert!(r.cells[0].serve.requests[0].admitted_s >= 0.4);
}

#[test]
fn link_delay_hedges_to_a_clean_cell() {
    let d = fixed_queries(1, 32, 16);
    let cfg = ClusterConfig { hedge_after_s: 0.1, ..base_cfg(2, 1) };
    let plan = ChaosPlan {
        events: vec![ChaosEvent::LinkDelay { cell: 0, at_s: 0.0, duration_s: 10.0, extra_s: 0.5 }],
        ..ChaosPlan::none()
    };
    let r = run_cluster(sim(), &d, &spaced(1, 1.0, 1.0), &cfg, &plan).unwrap();
    assert!(r.conserved());
    assert_eq!(r.hedges, 1, "the spike exceeds the hedge threshold");
    assert_eq!(r.deferrals, 0);
    assert_eq!(r.cells[0].dispatched, 0, "the delayed cell is bypassed");
    assert_eq!(r.cells[1].dispatched, 1);
    assert_eq!(r.completed, 1);
}

#[test]
fn gray_failure_slows_the_node_but_loses_nothing() {
    let d = fixed_queries(6, 64, 64);
    let cfg = base_cfg(1, 2);
    let plan = ChaosPlan {
        events: vec![ChaosEvent::GrayFailure {
            device: 0,
            at_s: 0.0,
            duration_s: 120.0,
            factor: 8.0,
        }],
        ..ChaosPlan::none()
    };
    let r = run_cluster(sim(), &d, &spaced(6, 0.0, 0.05), &cfg, &plan).unwrap();
    assert!(r.conserved());
    assert_eq!(r.completed, r.offered, "gray failures degrade, they don't kill");
    assert_eq!(r.failovers, 0, "the slow node still passes health checks");
    assert!(r.cells[0].serve.slow_s > 0.0, "slow-window time must be accounted");
}

#[test]
fn tenant_quota_sheds_only_the_offending_class() {
    let d = fixed_queries(32, 32, 16);
    let cfg = ClusterConfig {
        tenants: vec![
            Tenant { name: "premium".into(), priority: 0, kv_quota_bytes: 0, share: 1.0 },
            Tenant { name: "batch".into(), priority: 2, kv_quota_bytes: 1, share: 1.0 },
        ],
        ..base_cfg(2, 2)
    };
    let r = run_cluster(sim(), &d, &ArrivalProcess::Poisson { qps: 4.0 }, &cfg, &ChaosPlan::none())
        .unwrap();
    assert!(r.conserved());
    assert!(r.tenants[0].offered > 0 && r.tenants[1].offered > 0, "both classes drew traffic");
    assert_eq!(r.shed_quota, r.tenants[1].offered, "a 1-byte quota admits nothing");
    for s in &r.sheds {
        if s.reason == ClusterShedReason::QuotaExceeded {
            assert_eq!(s.tenant, 1, "quota sheds must attribute to the quota'd tenant");
        }
    }
    assert_eq!(r.tenants[0].completed, r.tenants[0].offered, "the unquota'd class is untouched");
    assert_eq!(r.tenants[1].completed, 0);
}

#[test]
fn park_overflow_evicts_the_newest_parked_request() {
    let d = fixed_queries(4, 32, 16);
    let cfg = ClusterConfig { park_cap: 2, ..base_cfg(1, 1) };
    let plan = ChaosPlan {
        events: vec![ChaosEvent::Partition { cell: 0, at_s: 0.0, duration_s: 100.0 }],
        ..ChaosPlan::none()
    };
    let r = run_cluster(sim(), &d, &spaced(4, 0.1, 0.1), &cfg, &plan).unwrap();
    assert!(r.conserved());
    assert_eq!(r.shed_overload, 2, "two arrivals overflow a 2-deep park");
    assert_eq!(r.completed, 2, "the two oldest ride out the partition");
    let overloaded: Vec<u64> =
        r.sheds.iter().filter(|s| s.reason == ClusterShedReason::Overload).map(|s| s.id).collect();
    assert_eq!(overloaded, vec![2, 3], "eviction takes the newest same-priority entries");
}

#[test]
fn slo_burn_scales_out_and_idle_cooldown_scales_in() {
    // Dense burst to light the SLO on fire, then a sparse tail whose empty
    // windows cool the autoscaler back down.
    let mut times: Vec<f64> = (0..48).map(|i| 0.1 * i as f64).collect();
    times.extend((0..6).map(|i| 20.0 + i as f64));
    let n = times.len();
    let d = fixed_queries(n, 64, 32);
    let cfg = ClusterConfig {
        max_devices_per_cell: 3,
        autoscale: Some(AutoscalePolicy {
            // Between the queued dense-phase TTFT (seconds) and the
            // unqueued tail TTFT (~90 ms): burns early, cools late.
            slo_ttft_ms: 300.0,
            window_s: 2.0,
            interval_s: 0.5,
            burn_streak: 1,
            cool_streak: 3,
            warmup_s: 0.1,
        }),
        ..base_cfg(1, 1)
    };
    let r =
        run_cluster(sim(), &d, &ArrivalProcess::Trace { times_s: times }, &cfg, &ChaosPlan::none())
            .unwrap();
    assert!(r.conserved());
    assert_eq!(r.completed, r.offered);
    assert!(r.scale_outs >= 1, "the queued dense phase must burn the SLO: {r:?}");
    assert!(r.scale_ins >= 1, "the idle tail must cool the cluster back down");
    assert!(r.devices_final <= cfg.max_devices_per_cell);
}

#[test]
fn tracing_is_observational_and_records_router_decisions() {
    let d = fixed_queries(8, 64, 128);
    let cfg = base_cfg(2, 2);
    let plan = ChaosPlan {
        events: vec![
            ChaosEvent::CellOutage { cell: 0, at_s: 0.3, duration_s: 10.0 },
            ChaosEvent::LinkDelay { cell: 1, at_s: 0.0, duration_s: 0.2, extra_s: 0.05 },
        ],
        ..ChaosPlan::none()
    };
    let arrival = spaced(8, 0.0, 0.05);
    let plain = run_cluster(sim(), &d, &arrival, &cfg, &plan).unwrap();
    let sink = Rc::new(RefCell::new(RingSink::new(1 << 15)));
    let traced = run_cluster_traced(sim(), &d, &arrival, &cfg, &plan, Rc::clone(&sink)).unwrap();
    assert_eq!(plain, traced, "tracing changed the schedule");
    assert_eq!(plain.to_json(), traced.to_json());
    let json = sink.borrow().to_chrome_json();
    for name in ["dispatch", "failover", "cell0", "router"] {
        assert!(json.contains(name), "trace export missing {name}");
    }
}

#[test]
fn empty_dataset_reports_zeros_not_nan() {
    let d = Dataset { name: "empty".into(), queries: Vec::new() };
    let cfg = base_cfg(2, 2);
    let r = run_cluster(sim(), &d, &ArrivalProcess::Poisson { qps: 1.0 }, &cfg, &ChaosPlan::none())
        .unwrap();
    assert!(r.conserved());
    assert_eq!(r.offered, 0);
    assert_eq!(r.offered_qps, 0.0);
    assert_eq!(r.goodput_qps, 0.0);
    assert_eq!(r.slo_attainment(100.0), 0.0);
    for v in [r.offered_qps, r.goodput_qps, r.availability, r.span_s] {
        assert!(!v.is_nan());
    }
}
