//! # facil-workloads
//!
//! Seeded synthetic query-length samplers standing in for the paper's two
//! real-world datasets (Section VI-C):
//!
//! * **Alpaca** (conversation / virtual assistant): short free-form prompts,
//!   longer GPT-3.5-style answers;
//! * **RealHumanEval "autocompletion"** (code autocompletion): interaction
//!   logs where each request extends the context by a few tokens and
//!   expects a short completion.
//!
//! The evaluation consumes only `(prefill_len, decode_len)` pairs, so the
//! substitution preserves what matters: the *shape* of the length
//! distributions (documented in DESIGN.md). Sampling is deterministic under
//! a seed.

#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]

pub mod arrival;

pub use arrival::ArrivalProcess;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One inference query: how many tokens are prefilled and generated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Query {
    /// Input (prompt) length in tokens.
    pub prefill: u64,
    /// Output (generation) length in tokens.
    pub decode: u64,
}

/// A named set of queries.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dataset {
    /// Dataset label.
    pub name: String,
    /// The sampled queries.
    pub queries: Vec<Query>,
}

/// Draw from a standard normal via Box–Muller (avoids a rand_distr
/// dependency).
fn normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Log-normal sample with the given median (`exp(mu)`) and shape `sigma`,
/// clamped to `[lo, hi]`.
fn lognormal(rng: &mut StdRng, median: f64, sigma: f64, lo: u64, hi: u64) -> u64 {
    let v = (median.ln() + sigma * normal(rng)).exp();
    (v.round() as u64).clamp(lo, hi)
}

impl Dataset {
    /// Alpaca-like conversation queries: prompt median ~32 tokens
    /// (instruction-style inputs), answers median ~128 tokens.
    ///
    /// ```
    /// use facil_workloads::Dataset;
    /// let d = Dataset::alpaca_like(42, 100);
    /// assert_eq!(d.queries.len(), 100);
    /// assert_eq!(d, Dataset::alpaca_like(42, 100)); // seeded
    /// ```
    pub fn alpaca_like(seed: u64, n: usize) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xA1FA_CA00);
        let queries = (0..n)
            .map(|_| Query {
                prefill: lognormal(&mut rng, 32.0, 0.7, 4, 512),
                decode: lognormal(&mut rng, 128.0, 0.6, 8, 1024),
            })
            .collect();
        Dataset { name: "alpaca-like".into(), queries }
    }

    /// RealHumanEval-autocompletion-like queries: incremental context
    /// extensions (median ~20 new tokens per request, shorter than
    /// conversation prompts) with short completions (median ~48 tokens).
    pub fn code_autocompletion_like(seed: u64, n: usize) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC0DE_AC00);
        let queries = (0..n)
            .map(|_| Query {
                prefill: lognormal(&mut rng, 20.0, 0.8, 2, 256),
                decode: lognormal(&mut rng, 48.0, 0.6, 4, 256),
            })
            .collect();
        Dataset { name: "code-autocompletion-like".into(), queries }
    }

    /// Deterministically subsample a fraction of the queries (the paper
    /// samples 1% and 10% of each dataset, Section VI-C). At least one
    /// query is kept.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside (0, 1].
    pub fn subsample(&self, seed: u64, fraction: f64) -> Dataset {
        assert!(fraction > 0.0 && fraction <= 1.0, "fraction must be in (0, 1]");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5AB5_A3B1E);
        let mut queries: Vec<Query> =
            self.queries.iter().copied().filter(|_| rng.random::<f64>() < fraction).collect();
        if queries.is_empty() {
            queries.push(self.queries[0]);
        }
        Dataset { name: format!("{} ({:.0}% sample)", self.name, fraction * 100.0), queries }
    }

    /// Geometric-mean prefill length of the dataset.
    pub fn geomean_prefill(&self) -> f64 {
        geomean(self.queries.iter().map(|q| q.prefill as f64))
    }

    /// Geometric-mean decode length of the dataset.
    pub fn geomean_decode(&self) -> f64 {
        geomean(self.queries.iter().map(|q| q.decode as f64))
    }
}

/// Geometric mean of an iterator of positive values (0 for an empty input).
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0u64;
    for v in values {
        debug_assert!(v > 0.0, "geomean requires positive values");
        sum += v.ln();
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        (sum / n as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic() {
        let a = Dataset::alpaca_like(7, 100);
        let b = Dataset::alpaca_like(7, 100);
        assert_eq!(a, b);
        let c = Dataset::alpaca_like(8, 100);
        assert_ne!(a, c);
    }

    #[test]
    fn alpaca_lengths_are_conversation_shaped() {
        let d = Dataset::alpaca_like(1, 2000);
        let gp = d.geomean_prefill();
        let gd = d.geomean_decode();
        assert!((20.0..50.0).contains(&gp), "prefill geomean {gp}");
        assert!((90.0..180.0).contains(&gd), "decode geomean {gd}");
        assert!(gd > gp, "answers longer than prompts");
    }

    #[test]
    fn autocompletion_has_shorter_prefills_than_conversation() {
        let code = Dataset::code_autocompletion_like(1, 2000);
        let chat = Dataset::alpaca_like(1, 2000);
        assert!(code.geomean_prefill() < chat.geomean_prefill());
        assert!(code.geomean_decode() < chat.geomean_decode());
    }

    #[test]
    fn all_lengths_positive_and_bounded() {
        for d in [Dataset::alpaca_like(3, 500), Dataset::code_autocompletion_like(3, 500)] {
            for q in &d.queries {
                assert!(q.prefill >= 2 || d.name.starts_with("alpaca") && q.prefill >= 4);
                assert!(q.prefill <= 512);
                assert!(q.decode >= 4);
                assert!(q.decode <= 1024);
            }
        }
    }

    #[test]
    fn subsample_is_deterministic_and_proportional() {
        let d = Dataset::alpaca_like(1, 5000);
        let a = d.subsample(9, 0.1);
        let b = d.subsample(9, 0.1);
        assert_eq!(a, b);
        let frac = a.queries.len() as f64 / d.queries.len() as f64;
        assert!((0.07..0.13).contains(&frac), "got {frac}");
        // Subsampled queries all come from the parent.
        assert!(a.queries.iter().all(|q| d.queries.contains(q)));
        assert!(a.name.contains("10% sample"));
        // Tiny fraction still yields at least one query.
        assert!(!d.subsample(9, 1e-9).queries.is_empty());
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn bad_fraction_panics() {
        Dataset::alpaca_like(1, 10).subsample(0, 1.5);
    }

    #[test]
    fn geomean_basics() {
        assert_eq!(geomean([]), 0.0);
        assert!((geomean([2.0, 8.0]) - 4.0).abs() < 1e-12);
    }
}
