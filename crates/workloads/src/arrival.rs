//! Arrival processes for serving simulations.
//!
//! The original serving extension only knew Poisson arrivals; a production
//! assistant sees far less well-behaved traffic. This module provides the
//! arrival-time samplers consumed by `facil-serve`:
//!
//! * [`ArrivalProcess::Poisson`] — memoryless baseline;
//! * [`ArrivalProcess::Bursty`] — Poisson-arriving *bursts* of back-to-back
//!   queries (a user pasting a document, an agent fanning out tool calls);
//! * [`ArrivalProcess::Diurnal`] — sinusoidally rate-modulated Poisson
//!   (day/night load swings), sampled by thinning;
//! * [`ArrivalProcess::Trace`] — replay of explicit arrival timestamps
//!   (tiled if more queries are requested than the trace holds).
//!
//! All samplers are deterministic under a seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A stochastic (or replayed) query arrival process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Memoryless arrivals at a constant mean rate.
    Poisson {
        /// Mean arrival rate, queries per second.
        qps: f64,
    },
    /// Bursts of `burst` simultaneous queries; burst *events* arrive as a
    /// Poisson process at `qps / burst`, so the long-run mean rate is `qps`.
    Bursty {
        /// Long-run mean arrival rate, queries per second.
        qps: f64,
        /// Queries per burst (1 degenerates to Poisson).
        burst: u64,
    },
    /// Rate-modulated Poisson: the instantaneous rate swings sinusoidally
    /// between `base_qps` and `peak_qps` with period `period_s`, sampled by
    /// thinning against the peak rate.
    Diurnal {
        /// Trough arrival rate, queries per second.
        base_qps: f64,
        /// Peak arrival rate, queries per second.
        peak_qps: f64,
        /// Period of one load cycle, seconds.
        period_s: f64,
    },
    /// Replay explicit arrival offsets (seconds, ascending). When more
    /// queries are requested than the trace holds, the trace is tiled
    /// end-to-end, shifted by its span per repetition.
    Trace {
        /// Arrival timestamps in seconds.
        times_s: Vec<f64>,
    },
}

impl ArrivalProcess {
    /// Sample `n` ascending arrival times (seconds from the start of the
    /// run), deterministically under `seed`.
    ///
    /// # Panics
    ///
    /// Panics on non-positive rates, `burst == 0`, a non-positive diurnal
    /// period, `peak_qps < base_qps`, or an empty/unsorted/negative trace.
    pub fn sample_times(&self, seed: u64, n: usize) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xA881_7A1F_0CE5_5ED5);
        let exp =
            |rng: &mut StdRng, rate: f64| -> f64 { -rng.random::<f64>().max(1e-12).ln() / rate };
        match self {
            ArrivalProcess::Poisson { qps } => {
                assert!(*qps > 0.0, "Poisson rate must be positive");
                let mut t = 0.0;
                (0..n)
                    .map(|_| {
                        t += exp(&mut rng, *qps);
                        t
                    })
                    .collect()
            }
            ArrivalProcess::Bursty { qps, burst } => {
                assert!(*qps > 0.0, "bursty rate must be positive");
                assert!(*burst > 0, "burst size must be positive");
                let event_rate = qps / *burst as f64;
                let mut t = 0.0;
                let mut times = Vec::with_capacity(n);
                while times.len() < n {
                    t += exp(&mut rng, event_rate);
                    for _ in 0..*burst {
                        if times.len() == n {
                            break;
                        }
                        times.push(t);
                    }
                }
                times
            }
            ArrivalProcess::Diurnal { base_qps, peak_qps, period_s } => {
                assert!(*base_qps > 0.0, "diurnal base rate must be positive");
                assert!(peak_qps >= base_qps, "peak rate must be >= base rate");
                assert!(*period_s > 0.0, "diurnal period must be positive");
                let mut t = 0.0;
                let mut times = Vec::with_capacity(n);
                while times.len() < n {
                    // Thinning: candidates at the peak rate, accepted with
                    // probability rate(t) / peak.
                    t += exp(&mut rng, *peak_qps);
                    let phase = (2.0 * std::f64::consts::PI * t / period_s).cos();
                    let rate = base_qps + (peak_qps - base_qps) * 0.5 * (1.0 - phase);
                    if rng.random::<f64>() * peak_qps <= rate {
                        times.push(t);
                    }
                }
                times
            }
            ArrivalProcess::Trace { times_s } => {
                assert!(!times_s.is_empty(), "trace must not be empty");
                assert!(times_s.windows(2).all(|w| w[0] <= w[1]), "trace must be ascending");
                assert!(times_s[0] >= 0.0, "trace times must be non-negative");
                // Tile the trace; keep repetitions strictly ordered even for
                // traces whose last gap is zero.
                let span = (times_s[times_s.len() - 1] - times_s[0]).max(1e-9)
                    + mean_gap(times_s).max(1e-9);
                (0..n)
                    .map(|i| {
                        let rep = (i / times_s.len()) as f64;
                        times_s[i % times_s.len()] + rep * span
                    })
                    .collect()
            }
        }
    }

    /// Compose a multi-day (multi-segment) arrival schedule into one
    /// replayable [`ArrivalProcess::Trace`]: segment `i`'s process is
    /// sampled for its query count under a per-segment seed derived from
    /// `seed`, shifted by `i * segment_s`, and the union is sorted into a
    /// single ascending trace.
    ///
    /// Composition preserves the total offered load exactly: the returned
    /// trace holds `sum(count_i)` arrival times, no more, no less. A
    /// segment whose sampled span overruns `segment_s` (a low-rate day)
    /// simply spills into the next day's range — the sort keeps the trace
    /// valid. Deterministic for a fixed `seed`.
    ///
    /// # Panics
    ///
    /// Panics on an empty segment list, a non-positive `segment_s`, a
    /// zero-count segment, or any per-segment sampling panic (see
    /// [`ArrivalProcess::sample_times`]).
    pub fn compose(segments: &[(ArrivalProcess, usize)], segment_s: f64, seed: u64) -> Self {
        assert!(!segments.is_empty(), "compose needs at least one segment");
        assert!(segment_s > 0.0, "segment span must be positive");
        let mut times_s = Vec::with_capacity(segments.iter().map(|(_, n)| n).sum());
        for (i, (proc, n)) in segments.iter().enumerate() {
            assert!(*n > 0, "segment {i} offers no queries");
            let shift = i as f64 * segment_s;
            // Golden-ratio stride decorrelates per-segment streams while
            // keeping the whole composition a pure function of `seed`.
            let day_seed = seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            times_s.extend(proc.sample_times(day_seed, *n).into_iter().map(|t| t + shift));
        }
        times_s.sort_by(f64::total_cmp);
        ArrivalProcess::Trace { times_s }
    }

    /// Long-run mean arrival rate (queries per second); for traces, the
    /// empirical rate over the trace span.
    pub fn mean_qps(&self) -> f64 {
        match self {
            ArrivalProcess::Poisson { qps } | ArrivalProcess::Bursty { qps, .. } => *qps,
            ArrivalProcess::Diurnal { base_qps, peak_qps, .. } => 0.5 * (base_qps + peak_qps),
            ArrivalProcess::Trace { times_s } => {
                let span = times_s[times_s.len() - 1] - times_s[0];
                if span <= 0.0 {
                    times_s.len() as f64
                } else {
                    times_s.len() as f64 / span
                }
            }
        }
    }
}

impl std::fmt::Display for ArrivalProcess {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArrivalProcess::Poisson { qps } => write!(f, "poisson({qps:.2}/s)"),
            ArrivalProcess::Bursty { qps, burst } => write!(f, "bursty({qps:.2}/s x{burst})"),
            ArrivalProcess::Diurnal { base_qps, peak_qps, period_s } => {
                write!(f, "diurnal({base_qps:.2}-{peak_qps:.2}/s, T={period_s:.0}s)")
            }
            ArrivalProcess::Trace { times_s } => write!(f, "trace({} events)", times_s.len()),
        }
    }
}

/// Mean inter-arrival gap of an ascending trace (0 for a single event).
fn mean_gap(times: &[f64]) -> f64 {
    if times.len() < 2 {
        return 0.0;
    }
    (times[times.len() - 1] - times[0]) / (times.len() - 1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_rate(times: &[f64]) -> f64 {
        times.len() as f64 / times[times.len() - 1]
    }

    #[test]
    fn sampling_is_deterministic() {
        for proc in [
            ArrivalProcess::Poisson { qps: 2.0 },
            ArrivalProcess::Bursty { qps: 2.0, burst: 4 },
            ArrivalProcess::Diurnal { base_qps: 0.5, peak_qps: 4.0, period_s: 60.0 },
        ] {
            let a = proc.sample_times(7, 500);
            let b = proc.sample_times(7, 500);
            assert_eq!(a, b, "{proc}");
            let c = proc.sample_times(8, 500);
            assert_ne!(a, c, "{proc}");
        }
    }

    #[test]
    fn times_are_ascending_and_rate_is_close() {
        for proc in [
            ArrivalProcess::Poisson { qps: 3.0 },
            ArrivalProcess::Bursty { qps: 3.0, burst: 5 },
            ArrivalProcess::Diurnal { base_qps: 1.0, peak_qps: 5.0, period_s: 120.0 },
        ] {
            let t = proc.sample_times(3, 4000);
            assert!(t.windows(2).all(|w| w[0] <= w[1]), "{proc}");
            assert!(t[0] >= 0.0);
            let rate = mean_rate(&t);
            let want = proc.mean_qps();
            assert!((rate - want).abs() / want < 0.15, "{proc}: rate {rate} vs {want}");
        }
    }

    #[test]
    fn bursts_are_coincident() {
        let t = ArrivalProcess::Bursty { qps: 2.0, burst: 4 }.sample_times(1, 400);
        let coincident = t.windows(2).filter(|w| w[0] == w[1]).count();
        // 3 of every 4 consecutive gaps inside a burst are zero.
        assert!(coincident >= 250, "got {coincident}");
        // Poisson has none.
        let p = ArrivalProcess::Poisson { qps: 2.0 }.sample_times(1, 400);
        assert_eq!(p.windows(2).filter(|w| w[0] == w[1]).count(), 0);
    }

    #[test]
    fn diurnal_peaks_are_denser_than_troughs() {
        let period = 200.0;
        let proc = ArrivalProcess::Diurnal { base_qps: 0.2, peak_qps: 4.0, period_s: period };
        let t = proc.sample_times(5, 4000);
        // Phase 0..0.25 and 0.75..1 of each cycle are trough-side; the
        // middle half is peak-side (rate = base + amp*(1-cos)/2).
        let (mut peak, mut trough) = (0usize, 0usize);
        for &x in &t {
            let phase = (x / period).fract();
            if (0.25..0.75).contains(&phase) {
                peak += 1;
            } else {
                trough += 1;
            }
        }
        assert!(peak as f64 > 2.0 * trough as f64, "peak {peak} vs trough {trough}");
    }

    #[test]
    fn trace_replays_and_tiles() {
        let proc = ArrivalProcess::Trace { times_s: vec![0.0, 1.0, 3.0] };
        let t = proc.sample_times(0, 7);
        assert_eq!(t.len(), 7);
        assert_eq!(&t[..3], &[0.0, 1.0, 3.0]);
        assert!(t.windows(2).all(|w| w[0] <= w[1]), "{t:?}");
        // Second repetition is shifted past the first.
        assert!(t[3] > t[2]);
        // Seed does not matter for replay.
        assert_eq!(proc.sample_times(0, 7), proc.sample_times(99, 7));
    }

    #[test]
    fn diurnal_and_trace_are_deterministic_per_seed() {
        let diurnal = ArrivalProcess::Diurnal { base_qps: 0.5, peak_qps: 6.0, period_s: 86_400.0 };
        assert_eq!(diurnal.sample_times(11, 1000), diurnal.sample_times(11, 1000));
        assert_ne!(diurnal.sample_times(11, 1000), diurnal.sample_times(12, 1000));
        // Trace replay ignores the seed entirely: same times every run.
        let trace = ArrivalProcess::Trace { times_s: vec![0.5, 1.5, 4.0] };
        assert_eq!(trace.sample_times(11, 9), trace.sample_times(12, 9));
    }

    #[test]
    fn composition_preserves_total_offered_load() {
        let day = 86_400.0;
        let days = [
            (ArrivalProcess::Diurnal { base_qps: 0.5, peak_qps: 4.0, period_s: day }, 300),
            (ArrivalProcess::Bursty { qps: 2.0, burst: 8 }, 200),
            (ArrivalProcess::Diurnal { base_qps: 0.25, peak_qps: 6.0, period_s: day }, 500),
        ];
        let composed = ArrivalProcess::compose(&days, day, 7);
        let ArrivalProcess::Trace { times_s } = &composed else {
            panic!("compose must yield a trace")
        };
        // Total offered load is exactly the sum of per-day counts, sorted
        // ascending, and later days land in later ranges.
        assert_eq!(times_s.len(), 1000);
        assert!(times_s.windows(2).all(|w| w[0] <= w[1]));
        assert!(times_s[0] >= 0.0);
        assert!(times_s[times_s.len() - 1] >= 2.0 * day, "day 3 must populate its own range");
        // Sampling the composed trace for its full length replays it.
        assert_eq!(composed.sample_times(99, 1000), *times_s);
    }

    #[test]
    fn composition_is_deterministic_per_seed() {
        let day = 3600.0;
        let days = [
            (ArrivalProcess::Diurnal { base_qps: 1.0, peak_qps: 5.0, period_s: day }, 150),
            (ArrivalProcess::Poisson { qps: 2.0 }, 100),
        ];
        assert_eq!(ArrivalProcess::compose(&days, day, 3), ArrivalProcess::compose(&days, day, 3));
        assert_ne!(ArrivalProcess::compose(&days, day, 3), ArrivalProcess::compose(&days, day, 4));
        // Per-segment streams are decorrelated: two identical days do not
        // replay the same offsets.
        let twin = [days[1].clone(), days[1].clone()];
        let ArrivalProcess::Trace { times_s } = ArrivalProcess::compose(&twin, day, 3) else {
            panic!("compose must yield a trace")
        };
        let (a, b) = times_s.split_at(100);
        let shifted: Vec<f64> = b.iter().map(|t| t - day).collect();
        assert_ne!(a, &shifted[..], "identical days must sample distinct streams");
    }

    #[test]
    #[should_panic(expected = "at least one segment")]
    fn empty_composition_panics() {
        ArrivalProcess::compose(&[], 60.0, 0);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unsorted_trace_panics() {
        ArrivalProcess::Trace { times_s: vec![1.0, 0.5] }.sample_times(0, 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_panics() {
        ArrivalProcess::Poisson { qps: 0.0 }.sample_times(0, 1);
    }
}
