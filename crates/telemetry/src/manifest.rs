//! Run manifests: one schema-versioned JSONL record per bench run.
//!
//! Every bench binary emits a [`RunManifest`] describing what ran (binary
//! name, seed, config knobs) and what came out (headline results), so a
//! directory of runs can be joined/diffed without re-parsing fifteen
//! bespoke output formats. Records serialize through the shared
//! [`JsonWriter`] and are deterministic: fields keep insertion order and
//! the same inputs yield byte-identical lines.

use crate::json::{escaped, number, JsonWriter};

/// Version stamped into every manifest line; bump when the record shape
/// changes incompatibly.
pub const MANIFEST_SCHEMA_VERSION: u64 = 1;

/// Ordered key → pre-serialized JSON fragment map with upsert semantics.
#[derive(Debug, Clone, Default, PartialEq)]
struct Fields(Vec<(String, String)>);

impl Fields {
    fn upsert(&mut self, key: &str, fragment: String) {
        match self.0.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v = fragment,
            None => self.0.push((key.to_string(), fragment)),
        }
    }

    fn write_into(&self, w: &mut JsonWriter) {
        w.begin_object();
        for (k, fragment) in &self.0 {
            w.field_raw(k, fragment);
        }
        w.end_object();
    }
}

/// Builder for one run record: `{"schema_version":..,"bench":..,"seed":..,
/// "config":{..},"results":{..}}`.
#[derive(Debug, Clone, PartialEq)]
pub struct RunManifest {
    bench: String,
    seed: u64,
    config: Fields,
    results: Fields,
}

impl RunManifest {
    /// Manifest for the bench binary `bench` run with `seed`.
    pub fn new(bench: &str, seed: u64) -> RunManifest {
        RunManifest {
            bench: bench.to_string(),
            seed,
            config: Fields::default(),
            results: Fields::default(),
        }
    }

    /// Record a string config knob (replaces an existing key).
    pub fn config_str(&mut self, key: &str, value: &str) -> &mut Self {
        self.config.upsert(key, escaped(value));
        self
    }

    /// Record an unsigned-integer config knob.
    pub fn config_uint(&mut self, key: &str, value: u64) -> &mut Self {
        self.config.upsert(key, value.to_string());
        self
    }

    /// Record a float config knob (`null` when non-finite).
    pub fn config_num(&mut self, key: &str, value: f64) -> &mut Self {
        self.config.upsert(key, number(value));
        self
    }

    /// Record a boolean config knob.
    pub fn config_bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.config.upsert(key, if value { "true" } else { "false" }.to_string());
        self
    }

    /// Record a pre-serialized JSON fragment config knob (e.g. a swept
    /// parameter list).
    pub fn config_raw(&mut self, key: &str, fragment: &str) -> &mut Self {
        self.config.upsert(key, fragment.to_string());
        self
    }

    /// Record a string result (replaces an existing key).
    pub fn result_str(&mut self, key: &str, value: &str) -> &mut Self {
        self.results.upsert(key, escaped(value));
        self
    }

    /// Record an unsigned-integer result.
    pub fn result_uint(&mut self, key: &str, value: u64) -> &mut Self {
        self.results.upsert(key, value.to_string());
        self
    }

    /// Record a float result (`null` when non-finite).
    pub fn result_num(&mut self, key: &str, value: f64) -> &mut Self {
        self.results.upsert(key, number(value));
        self
    }

    /// Record a pre-serialized JSON fragment result (e.g. a summary
    /// object written by [`crate::stats::Summary::write_json`]).
    pub fn result_raw(&mut self, key: &str, fragment: &str) -> &mut Self {
        self.results.upsert(key, fragment.to_string());
        self
    }

    /// Serialize as one JSONL line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut w = JsonWriter::with_capacity(256);
        w.begin_object()
            .field_uint("schema_version", MANIFEST_SCHEMA_VERSION)
            .field_str("bench", &self.bench)
            .field_uint("seed", self.seed)
            .key("config");
        self.config.write_into(&mut w);
        w.key("results");
        self.results.write_into(&mut w);
        w.end_object();
        let line = w.finish();
        debug_assert!(!line.contains('\n'), "manifest line must be newline-free");
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_carries_schema_version_and_sections() {
        let mut m = RunManifest::new("serving_v2", 7);
        m.config_str("experiment", "fleet").config_uint("devices", 4).config_bool("smoke", true);
        m.result_num("goodput_qps", 12.5).result_uint("completed", 96);
        assert_eq!(
            m.to_json_line(),
            r#"{"schema_version":1,"bench":"serving_v2","seed":7,"config":{"experiment":"fleet","devices":4,"smoke":true},"results":{"goodput_qps":12.5,"completed":96}}"#
        );
    }

    #[test]
    fn upsert_replaces_in_place_keeping_order() {
        let mut m = RunManifest::new("chaos", 9);
        m.config_uint("n", 16).config_str("mode", "smoke");
        m.config_uint("n", 48);
        let line = m.to_json_line();
        assert!(line.contains(r#""config":{"n":48,"mode":"smoke"}"#));
        assert_eq!(line.matches("\"n\":").count(), 1);
    }

    #[test]
    fn values_are_escaped_and_non_finite_nulled() {
        let mut m = RunManifest::new("fig\"x", 0);
        m.config_str("path", "a\\b\nc").result_num("rate", f64::NAN);
        let line = m.to_json_line();
        assert!(line.contains(r#""bench":"fig\"x""#));
        assert!(line.contains(r#""path":"a\\b\nc""#));
        assert!(line.contains(r#""rate":null"#));
        assert!(!line.contains('\n'));
    }

    #[test]
    fn raw_results_splice_unchanged() {
        let mut m = RunManifest::new("bench", 1);
        m.config_raw("prefills", "[8,16,32]");
        m.result_raw("ttft_ms", r#"{"count":2,"mean":1.5}"#);
        let line = m.to_json_line();
        assert!(line.contains(r#""prefills":[8,16,32]"#));
        assert!(line.contains(r#""ttft_ms":{"count":2,"mean":1.5}"#));
    }

    #[test]
    fn same_inputs_are_byte_identical() {
        let build = || {
            let mut m = RunManifest::new("table1", 42);
            m.config_str("platform", "lp5x").result_num("speedup", 2.5);
            m.to_json_line()
        };
        assert_eq!(build(), build());
    }
}
