//! Persistent work-stealing executor backing [`crate::pool`].
//!
//! The PR 4 pool spawned fresh scoped OS threads on *every*
//! `par_map`/`par_map_mut` call and handed work out through a global
//! `Mutex<Iterator>` — one lock acquisition per item. Both costs sit inside
//! the innermost per-timestep loops of the fleet and cluster drivers, so at
//! sweep scale the dispatch tax dominated the win from parallelism itself.
//! This module replaces that fork-join with:
//!
//! * **Long-lived workers**, created lazily on first use and parked on a
//!   condvar when idle, so steady-state dispatch is "push a job pointer,
//!   wake k parked threads" instead of k `thread::spawn` calls;
//! * **Per-participant chunked ranges** with atomic-counter claiming:
//!   the input index space `0..n` is split into one contiguous range per
//!   participant, owners repeatedly claim the front half of their own
//!   range (binary splitting, so uneven per-item cost self-balances down
//!   to single items), and a participant that runs dry **steals the back
//!   half** of the fullest victim's range — every claim is one CAS, no
//!   lock, no per-item handshake;
//! * **Input-order reassembly**: every claimed index writes its result
//!   into output slot `i`, so the returned `Vec` is bit-identical to a
//!   serial `items.iter().map(f).collect()` for any worker count and any
//!   steal schedule. Scheduling decides only *who* computes item `i`,
//!   never *what* item `i`'s result is or where it lands;
//! * **Nesting safety**: a parallel call issued *from a pool worker*
//!   (e.g. `DramSystem::run_with_threads` reached from inside a parallel
//!   fleet tick) runs inline on that worker instead of blocking it — the
//!   worker helps execute the nested batch itself, so nesting can neither
//!   deadlock nor oversubscribe the configured worker count. A nested
//!   call from a non-worker thread (e.g. the submitting thread's own
//!   chunk reaching the DRAM backend) re-enters the executor as a new
//!   job, which is re-entrancy-safe: helpers come from the same bounded
//!   pool, so live workers never exceed the configured parallelism.
//!
//! # Safety protocol
//!
//! Jobs live on the submitting call's stack and are published to the
//! worker pool as type-erased raw pointers, so every dereference must stay
//! inside the submitter's stack frame. The protocol that guarantees it:
//!
//! 1. the submitter publishes the job under the injector lock, then helps
//!    execute it;
//! 2. workers may *attach* to a published job only under the injector
//!    lock (bounded by the job's helper cap);
//! 3. when the submitter finds no more claimable work it **unpublishes
//!    the job first** (under the same lock — after this no new worker can
//!    observe the pointer), and only then blocks on the job's latch until
//!    every attached helper has detached and every item is accounted for;
//! 4. a helper touches the job only between its attach and detach.
//!
//! A panicking item closure cancels the rest of the batch (remaining
//! chunks are drained unexecuted), is captured once, and re-raised on the
//! submitting thread after quiescence — the pool itself survives.

use std::any::Any;
use std::cell::Cell;
use std::mem::{ManuallyDrop, MaybeUninit};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, OnceLock, PoisonError};

/// Hard cap on persistent worker threads, a backstop far above any
/// realistic `FACIL_THREADS` value.
const MAX_WORKERS: usize = 256;

thread_local! {
    /// True on threads owned by the executor.
    static IS_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Whether the current thread is one of the executor's workers. Parallel
/// entry points use this to fall back to inline execution for nested
/// calls.
pub(crate) fn on_worker_thread() -> bool {
    IS_WORKER.with(Cell::get)
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // Worker loops and latch signalers never panic while holding these
    // locks (item panics are caught before the lock is touched); recover
    // from poison regardless so one bad batch cannot wedge the pool.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

// ---------------------------------------------------------------------------
// Chunked ranges: the per-participant deques.
// ---------------------------------------------------------------------------

fn pack(start: u32, end: u32) -> u64 {
    (u64::from(start) << 32) | u64::from(end)
}

fn unpack(v: u64) -> (u32, u32) {
    ((v >> 32) as u32, v as u32)
}

/// One participant's contiguous run of input indices, packed as
/// `(start, end)` in a single atomic word so owner claims and steals
/// linearize through plain CAS.
struct Range(AtomicU64);

impl Range {
    fn new(start: u32, end: u32) -> Self {
        Range(AtomicU64::new(pack(start, end)))
    }

    fn remaining(&self) -> u32 {
        let (s, e) = unpack(self.0.load(Ordering::Acquire));
        e.saturating_sub(s)
    }

    /// Owner path: claim the front half (rounded up) of what remains.
    /// Binary splitting — early claims are big, the tail degrades to
    /// single items so stragglers stay stealable.
    fn claim_front(&self) -> Option<(u32, u32)> {
        let mut cur = self.0.load(Ordering::Acquire);
        loop {
            let (s, e) = unpack(cur);
            if s >= e {
                return None;
            }
            let take = ((e - s) - (e - s) / 2).max(1);
            match self.0.compare_exchange_weak(
                cur,
                pack(s + take, e),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some((s, s + take)),
                Err(v) => cur = v,
            }
        }
    }

    /// Thief path: take the back half of what remains, leaving the front
    /// for the owner — owner and thief touch opposite ends, so a steal
    /// never reorders or duplicates work.
    fn steal_back(&self) -> Option<(u32, u32)> {
        let mut cur = self.0.load(Ordering::Acquire);
        loop {
            let (s, e) = unpack(cur);
            if s >= e {
                return None;
            }
            let take = ((e - s) / 2).max(1);
            match self.0.compare_exchange_weak(
                cur,
                pack(s, e - take),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some((e - take, e)),
                Err(v) => cur = v,
            }
        }
    }

    /// Cancellation path: claim everything left without running it.
    fn drain(&self) -> u32 {
        let (s, e) = unpack(self.0.swap(pack(0, 0), Ordering::AcqRel));
        e.saturating_sub(s)
    }
}

/// Split `0..n` into `parts` contiguous ranges of near-equal length.
fn split_ranges(n: u32, parts: usize) -> Box<[Range]> {
    let parts = parts.max(1) as u64;
    (0..parts)
        .map(|i| {
            let s = (u64::from(n) * i / parts) as u32;
            let e = (u64::from(n) * (i + 1) / parts) as u32;
            Range::new(s, e)
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Completion latch.
// ---------------------------------------------------------------------------

/// Tracks a job's outstanding items and attached helpers; the submitter
/// blocks here until both hit zero.
struct Latch {
    pending: AtomicUsize,
    attached: AtomicUsize,
    mx: Mutex<()>,
    cv: Condvar,
}

impl Latch {
    fn new(pending: usize) -> Self {
        Latch {
            pending: AtomicUsize::new(pending),
            attached: AtomicUsize::new(0),
            mx: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    /// Account for `k` items leaving the batch (executed or canceled),
    /// waking the submitter when the last one lands.
    fn finish_items(&self, k: usize) {
        if k > 0 && self.pending.fetch_sub(k, Ordering::AcqRel) == k {
            let _g = lock(&self.mx);
            self.cv.notify_all();
        }
    }

    /// Reserve a helper slot, bounded by `cap`.
    fn try_attach(&self, cap: usize) -> bool {
        let mut cur = self.attached.load(Ordering::Acquire);
        loop {
            if cur >= cap {
                return false;
            }
            match self.attached.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return true,
                Err(v) => cur = v,
            }
        }
    }

    /// Release a helper slot (notifying under the latch mutex so the
    /// submitter cannot miss the wakeup).
    fn detach(&self) {
        self.attached.fetch_sub(1, Ordering::AcqRel);
        let _g = lock(&self.mx);
        self.cv.notify_all();
    }

    /// Block until every item is accounted for and every helper detached.
    /// The acquire loads here pair with the releases in
    /// [`Latch::finish_items`]/[`Latch::detach`], making all helper-side
    /// writes (including output-slot writes) visible to the submitter.
    fn wait_quiescent(&self) {
        let mut g = lock(&self.mx);
        while self.pending.load(Ordering::Acquire) != 0
            || self.attached.load(Ordering::Acquire) != 0
        {
            g = self.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

// ---------------------------------------------------------------------------
// Jobs.
// ---------------------------------------------------------------------------

/// A batch the pool can help execute. Implementations are stack-allocated
/// in the submitting call; see the module-level safety protocol.
trait Task: Sync {
    /// Reserve a helper slot; false when the job's helper cap is reached.
    fn attach(&self) -> bool;
    /// Claim and run work until none is claimable by this participant.
    fn run(&self);
    /// Release a helper slot.
    fn detach(&self);
    /// Whether a new helper could still find claimable work.
    fn has_work(&self) -> bool;
}

/// A parallel map batch: `run_chunk(a, b)` executes items `a..b`, writing
/// each result into its input-order output slot.
struct MapJob<'f> {
    run_chunk: &'f (dyn Fn(u32, u32) + Sync),
    ranges: Box<[Range]>,
    next_slot: AtomicUsize,
    max_helpers: usize,
    canceled: AtomicBool,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    latch: Latch,
}

impl MapJob<'_> {
    /// Execute one claimed chunk, catching a panic so the pool survives:
    /// the first payload is kept for the submitter, the batch is canceled.
    fn exec(&self, a: u32, b: u32) {
        let result = catch_unwind(AssertUnwindSafe(|| (self.run_chunk)(a, b)));
        self.latch.finish_items((b - a) as usize);
        if let Err(payload) = result {
            {
                let mut slot = lock(&self.panic);
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            self.canceled.store(true, Ordering::Release);
        }
    }

    /// Next chunk for the participant owning `slot`: own range first, then
    /// steal the back half of the fullest victim. Rescans on a lost race
    /// and returns `None` only once every range is empty.
    fn next_chunk(&self, slot: usize) -> Option<(u32, u32)> {
        loop {
            if let Some(c) = self.ranges[slot].claim_front() {
                return Some(c);
            }
            let victim = self
                .ranges
                .iter()
                .enumerate()
                .filter(|&(i, r)| i != slot && r.remaining() > 0)
                .max_by_key(|&(_, r)| r.remaining())
                .map(|(i, _)| i)?;
            if let Some(c) = self.ranges[victim].steal_back() {
                return Some(c);
            }
            // Lost the steal race; some other range may still have work.
        }
    }
}

impl Task for MapJob<'_> {
    fn attach(&self) -> bool {
        self.latch.try_attach(self.max_helpers)
    }

    fn run(&self) {
        let slot = self.next_slot.fetch_add(1, Ordering::Relaxed) % self.ranges.len();
        loop {
            if self.canceled.load(Ordering::Acquire) {
                let drained: usize = self.ranges.iter().map(|r| r.drain() as usize).sum();
                self.latch.finish_items(drained);
                return;
            }
            let Some((a, b)) = self.next_chunk(slot) else { return };
            self.exec(a, b);
        }
    }

    fn detach(&self) {
        self.latch.detach();
    }

    fn has_work(&self) -> bool {
        !self.canceled.load(Ordering::Acquire) && self.ranges.iter().any(|r| r.remaining() > 0)
    }
}

// ---------------------------------------------------------------------------
// Type erasure.
// ---------------------------------------------------------------------------

/// A published job: a raw pointer to a stack-allocated [`Task`] plus its
/// monomorphized entry points. Valid only between publish and unpublish
/// (see the module-level safety protocol).
#[derive(Clone, Copy)]
struct ErasedJob {
    data: *const (),
    attach: unsafe fn(*const ()) -> bool,
    run: unsafe fn(*const ()),
    detach: unsafe fn(*const ()),
    has_work: unsafe fn(*const ()) -> bool,
}

// SAFETY: the raw pointer is only dereferenced by workers between attach
// and detach, which the publish/unpublish protocol keeps inside the
// submitting call's stack frame; the pointee is `Sync`.
unsafe impl Send for ErasedJob {}

unsafe fn attach_shim<J: Task>(p: *const ()) -> bool {
    // SAFETY: `p` was erased from a live `&J` by `erase`.
    unsafe { (*p.cast::<J>()).attach() }
}
unsafe fn run_shim<J: Task>(p: *const ()) {
    // SAFETY: as above.
    unsafe { (*p.cast::<J>()).run() }
}
unsafe fn detach_shim<J: Task>(p: *const ()) {
    // SAFETY: as above.
    unsafe { (*p.cast::<J>()).detach() }
}
unsafe fn has_work_shim<J: Task>(p: *const ()) -> bool {
    // SAFETY: as above.
    unsafe { (*p.cast::<J>()).has_work() }
}

fn erase<J: Task>(job: &J) -> ErasedJob {
    ErasedJob {
        data: (job as *const J).cast(),
        attach: attach_shim::<J>,
        run: run_shim::<J>,
        detach: detach_shim::<J>,
        has_work: has_work_shim::<J>,
    }
}

// ---------------------------------------------------------------------------
// The executor proper.
// ---------------------------------------------------------------------------

struct Inner {
    /// Published jobs, oldest first. Submitters remove their own entry
    /// before waiting on the latch.
    jobs: Vec<ErasedJob>,
    /// Worker threads spawned and not yet exited.
    live: usize,
    /// Workers currently parked on `work_cv`.
    parked: usize,
    /// Workers asked to exit by [`shutdown`].
    exiting: usize,
    handles: Vec<std::thread::JoinHandle<()>>,
}

struct Executor {
    inner: Mutex<Inner>,
    work_cv: Condvar,
}

fn executor() -> &'static Executor {
    static EXEC: OnceLock<Executor> = OnceLock::new();
    EXEC.get_or_init(|| Executor {
        inner: Mutex::new(Inner {
            jobs: Vec::new(),
            live: 0,
            parked: 0,
            exiting: 0,
            handles: Vec::new(),
        }),
        work_cv: Condvar::new(),
    })
}

/// The worker main loop: pick the oldest published job with claimable work
/// and an open helper slot, help until dry, repeat; park when idle; exit
/// when [`shutdown`] asks.
fn worker_loop(ex: &'static Executor) {
    IS_WORKER.with(|w| w.set(true));
    let mut g = lock(&ex.inner);
    loop {
        if g.exiting > 0 {
            g.exiting -= 1;
            g.live -= 1;
            return;
        }
        let mut picked = None;
        for job in &g.jobs {
            // SAFETY: the job is published, so the pointer is live; attach
            // happens under the injector lock, which is what keeps it live
            // until the matching detach.
            if unsafe { (job.has_work)(job.data) && (job.attach)(job.data) } {
                picked = Some(*job);
                break;
            }
        }
        match picked {
            Some(job) => {
                drop(g);
                // SAFETY: attached above; the submitter cannot reclaim the
                // job's stack frame until this thread detaches.
                unsafe {
                    (job.run)(job.data);
                    (job.detach)(job.data);
                }
                g = lock(&ex.inner);
            }
            None => {
                g.parked += 1;
                g = ex.work_cv.wait(g).unwrap_or_else(PoisonError::into_inner);
                g.parked -= 1;
            }
        }
    }
}

/// Publish `job`, growing the pool toward `helpers_wanted` live workers
/// and waking that many parked ones.
fn publish<J: Task>(job: &J, helpers_wanted: usize) -> ErasedJob {
    let ex = executor();
    let erased = erase(job);
    let mut g = lock(&ex.inner);
    g.jobs.push(erased);
    let want = helpers_wanted.min(MAX_WORKERS);
    while g.live - g.exiting < want && g.live < MAX_WORKERS {
        let builder = std::thread::Builder::new().name("facil-pool".into());
        match builder.spawn(|| worker_loop(executor())) {
            Ok(h) => {
                g.live += 1;
                g.handles.push(h);
            }
            // Out of threads: degrade to fewer helpers — the submitter
            // executes whatever nobody steals, so results are unaffected.
            Err(_) => break,
        }
    }
    for _ in 0..helpers_wanted.min(g.parked) {
        ex.work_cv.notify_one();
    }
    erased
}

/// Remove `job` from the published list, so no new helper can attach.
fn unpublish(erased: ErasedJob) {
    let ex = executor();
    let mut g = lock(&ex.inner);
    g.jobs.retain(|j| !std::ptr::eq(j.data, erased.data));
}

/// Join all persistent workers and return how many were joined. Workers
/// respawn lazily on the next parallel call, so this is safe to call at
/// any point — even concurrently with running batches, whose submitters
/// simply finish the work themselves.
pub(crate) fn shutdown_workers() -> usize {
    let ex = executor();
    let handles = {
        let mut g = lock(&ex.inner);
        g.exiting = g.live;
        ex.work_cv.notify_all();
        std::mem::take(&mut g.handles)
    };
    let n = handles.len();
    for h in handles {
        // Worker loops never panic (item panics are caught inside the
        // job); a join error here would mean a bug worth surfacing loudly,
        // but not worth poisoning shutdown for.
        let _ = h.join();
    }
    n
}

/// A raw pointer that may cross threads. Used for output slots and
/// mutable input bases, where the index-claiming protocol guarantees
/// disjoint access.
pub(crate) struct SendPtr<T>(pub(crate) *mut T);

impl<T> SendPtr<T> {
    /// The wrapped pointer. Going through a method (whole-struct receiver)
    /// rather than field access keeps closures capturing the `SendPtr` —
    /// which is `Sync` — instead of the bare `*mut T`, which is not, under
    /// edition-2021 disjoint field capture.
    pub(crate) fn get(self) -> *mut T {
        self.0
    }
}

impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

// SAFETY: every index in a batch is claimed by exactly one chunk, so no
// two threads touch the same element through this pointer, and the
// submitter does not read results until the batch is quiescent.
unsafe impl<T: Send> Send for SendPtr<T> {}
// SAFETY: as above — the pointer itself is shared, the pointees are not.
unsafe impl<T: Send> Sync for SendPtr<T> {}

/// Run `g(i)` for every `i in 0..n` on up to `workers` participants (the
/// caller plus at most `workers - 1` pool helpers), returning results in
/// input order — bit-identical to `(0..n).map(g).collect()` for any
/// worker count and steal schedule.
///
/// Caller guarantees `workers >= 2`, `n >= 2` (smaller calls stay inline
/// in [`crate::pool`]) and must not be on a worker thread.
pub(crate) fn map_indexed<R, G>(workers: usize, n: usize, g: G) -> Vec<R>
where
    R: Send,
    G: Fn(usize) -> R + Sync,
{
    assert!(u32::try_from(n).is_ok(), "batch of {n} items exceeds the u32 index space");
    debug_assert!(workers >= 2 && n >= 2);
    debug_assert!(!on_worker_thread());
    let mut out: Vec<MaybeUninit<R>> = (0..n).map(|_| MaybeUninit::uninit()).collect();
    let out_ptr = SendPtr(out.as_mut_ptr());
    let run_chunk = |a: u32, b: u32| {
        for i in a..b {
            let r = g(i as usize);
            // SAFETY: index `i` is claimed by exactly this chunk, so the
            // slot is written once, with no concurrent access.
            unsafe {
                (*out_ptr.get().add(i as usize)).write(r);
            }
        }
    };
    let participants = workers.min(n);
    let job = MapJob {
        run_chunk: &run_chunk,
        ranges: split_ranges(n as u32, participants),
        next_slot: AtomicUsize::new(0),
        max_helpers: participants - 1,
        canceled: AtomicBool::new(false),
        panic: Mutex::new(None),
        latch: Latch::new(n),
    };
    let erased = publish(&job, participants - 1);
    // The submitter is participant #1; `run` only returns when no work is
    // claimable, so unpublishing immediately after is safe.
    job.run();
    unpublish(erased);
    job.latch.wait_quiescent();
    if let Some(payload) = lock(&job.panic).take() {
        // Written results leak under a panic (MaybeUninit drops nothing);
        // acceptable, since the panic is about to unwind the caller.
        resume_unwind(payload);
    }
    // SAFETY: quiescent and not canceled, so all `n` slots were written
    // exactly once; reinterpret the buffer as initialized.
    let mut out = ManuallyDrop::new(out);
    unsafe { Vec::from_raw_parts(out.as_mut_ptr().cast::<R>(), n, out.capacity()) }
}

/// Fork-join of exactly two closures: `fb` is published as a stealable
/// one-item job while the caller runs `fa`, then the caller claims `fb`
/// itself if no worker got there first.
///
/// Caller must not be on a worker thread (checked by [`crate::pool::join`],
/// which falls back to sequential execution there).
pub(crate) fn join_impl<A, B, FA, FB>(fa: FA, fb: FB) -> (A, B)
where
    A: Send,
    B: Send,
    FA: FnOnce() -> A + Send,
    FB: FnOnce() -> B + Send,
{
    let fb_cell = Mutex::new(Some(fb));
    let out = Mutex::new(None::<B>);
    let run_chunk = |_a: u32, _b: u32| {
        // The single index is claimed exactly once, so `take` always finds
        // the closure on the only call.
        if let Some(f) = lock(&fb_cell).take() {
            let b = f();
            *lock(&out) = Some(b);
        }
    };
    let job = MapJob {
        run_chunk: &run_chunk,
        ranges: split_ranges(1, 1),
        next_slot: AtomicUsize::new(0),
        max_helpers: 1,
        canceled: AtomicBool::new(false),
        panic: Mutex::new(None),
        latch: Latch::new(1),
    };
    let erased = publish(&job, 1);
    let a_result = catch_unwind(AssertUnwindSafe(fa));
    // Claim fb inline if it is still unclaimed, then tear down exactly as
    // map_indexed does.
    job.run();
    unpublish(erased);
    job.latch.wait_quiescent();
    if let Some(payload) = lock(&job.panic).take() {
        resume_unwind(payload);
    }
    let a = match a_result {
        Ok(a) => a,
        Err(payload) => resume_unwind(payload),
    };
    // Quiescent without a stored panic, so the one chunk ran `fb` to
    // completion and stored its result.
    #[allow(clippy::expect_used)]
    let b = lock(&out).take().expect("join task completed without a result");
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_split_evenly_and_cover_the_space() {
        let ranges = split_ranges(10, 3);
        let total: u32 = ranges.iter().map(Range::remaining).sum();
        assert_eq!(total, 10);
        assert!(ranges.iter().all(|r| r.remaining() >= 3));
    }

    #[test]
    fn claim_and_steal_partition_a_range() {
        let r = Range::new(0, 8);
        let (a0, b0) = r.claim_front().unwrap();
        assert_eq!((a0, b0), (0, 4));
        let (a1, b1) = r.steal_back().unwrap();
        assert_eq!((a1, b1), (6, 8));
        let mut seen = vec![(a0, b0), (a1, b1)];
        while let Some(c) = r.claim_front() {
            seen.push(c);
        }
        assert!(r.steal_back().is_none());
        let mut covered: Vec<u32> = seen.iter().flat_map(|&(a, b)| a..b).collect();
        covered.sort_unstable();
        assert_eq!(covered, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn drain_takes_everything_once() {
        let r = Range::new(2, 9);
        assert_eq!(r.drain(), 7);
        assert_eq!(r.drain(), 0);
        assert!(r.claim_front().is_none());
    }

    #[test]
    fn map_indexed_matches_serial() {
        let out = map_indexed(4, 1000, |i| i * 3 + 1);
        assert_eq!(out, (0..1000).map(|i| i * 3 + 1).collect::<Vec<_>>());
    }

    #[test]
    fn map_indexed_propagates_panics_and_pool_survives() {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            map_indexed(4, 64, |i| {
                assert!(i != 17, "boom at {i}");
                i
            })
        }));
        assert!(caught.is_err());
        // The pool is still usable after a panicking batch.
        let out = map_indexed(4, 64, |i| i + 1);
        assert_eq!(out, (1..=64).collect::<Vec<_>>());
    }
}
