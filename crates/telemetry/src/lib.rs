//! # facil-telemetry
//!
//! Unified observability substrate for the FACIL (HPCA 2025) reproduction.
//! Every other crate in the workspace reports through this one:
//!
//! * [`trace`] — structured spans and instant events carrying **simulated**
//!   nanoseconds (never wall-clock), recorded into a preallocated ring
//!   buffer behind the [`TraceSink`] trait. The no-op [`NullSink`]
//!   monomorphizes to nothing, so instrumented hot paths cost zero when
//!   tracing is off, and [`RingSink::to_chrome_json`] exports a
//!   Chrome/Perfetto `trace_event` file openable in `ui.perfetto.dev`;
//! * [`metrics`] — a [`MetricsRegistry`] of counters, gauges and
//!   histograms (histograms summarize through [`stats::Summary`]) that the
//!   DRAM, sim and serve layers register their counters into;
//! * [`json`] — the workspace's single hand-rolled streaming
//!   [`JsonWriter`] (no JSON crate in the dependency tree), shared by the
//!   trace exporter, the metrics registry, `facil_serve` reports and the
//!   bench binaries;
//! * [`manifest`] — a [`RunManifest`] emitter so every bench binary writes
//!   one schema-versioned JSONL record (config, seed, results);
//! * [`pool`] — deterministic parallel helpers ([`pool::par_map`],
//!   [`pool::par_map_mut`], [`pool::join`]) on a persistent work-stealing
//!   executor, with the `FACIL_THREADS` worker-count knob, used to run
//!   independent DRAM channels, fleet devices and bench sweep points
//!   concurrently while keeping results bit-identical to serial
//!   execution for any worker count — nested calls run inline on the
//!   invoking worker, so parallel layers compose without oversubscribing;
//! * [`stats`] — nearest-rank percentiles and [`stats::Summary`]
//!   aggregates (moved here from `facil_sim::stats`, which re-exports
//!   them).
//!
//! ```
//! use facil_telemetry::{ArgValue, RingSink, TraceSink};
//!
//! let mut sink = RingSink::new(1024);
//! let track = sink.track("dram", "ch0/r0/b0");
//! sink.complete(track, "ACT", 0.0, 18.0, &[("row", ArgValue::U64(7))]);
//! let json = sink.to_chrome_json();
//! assert!(json.contains("\"traceEvents\""));
//! ```

#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod executor;
pub mod json;
pub mod manifest;
pub mod metrics;
pub mod pool;
pub mod stats;
pub mod trace;

pub use json::JsonWriter;
pub use manifest::{RunManifest, MANIFEST_SCHEMA_VERSION};
pub use metrics::MetricsRegistry;
pub use stats::{percentile, Summary};
pub use trace::{Arg, ArgValue, EventKind, NullSink, RingSink, TraceEvent, TraceSink, TrackId};
