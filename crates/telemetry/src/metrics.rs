//! Metrics registry: named counters, gauges, and histograms.
//!
//! The DRAM, sim and serve layers register their counters here instead of
//! each carrying a bespoke aggregate-and-merge path. Names are dotted
//! (`dram.row_hits`, `serve.ttft_ms`); storage is `BTreeMap` so every
//! serialization and merge is deterministic. Histograms keep raw samples
//! and summarize through [`Summary`], matching the nearest-rank
//! percentiles reported everywhere else in the workspace.

use std::collections::BTreeMap;

use crate::json::JsonWriter;
use crate::stats::Summary;

/// Registry of named counters, gauges, and histograms.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Vec<f64>>,
}

impl MetricsRegistry {
    /// Empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Add `by` to the counter `name` (created at zero).
    pub fn inc(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Set the gauge `name` to `value` (last write wins).
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Append one sample to the histogram `name`.
    pub fn observe(&mut self, name: &str, sample: f64) {
        self.histograms.entry(name.to_string()).or_default().push(sample);
    }

    /// Append many samples to the histogram `name`.
    pub fn observe_all(&mut self, name: &str, samples: &[f64]) {
        self.histograms.entry(name.to_string()).or_default().extend_from_slice(samples);
    }

    /// Current value of a counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of a gauge (`None` when never set).
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Number of samples in a histogram (0 when absent).
    pub fn samples(&self, name: &str) -> usize {
        self.histograms.get(name).map_or(0, Vec::len)
    }

    /// Percentile summary of a histogram (the all-zero [`Summary`] when
    /// absent or empty).
    pub fn summary(&self, name: &str) -> Summary {
        match self.histograms.get(name) {
            Some(samples) => Summary::from_unsorted(samples.clone()),
            None => Summary::empty(),
        }
    }

    /// Fold `other` into `self`: counters add, gauges take `other`'s value,
    /// histograms concatenate. This is the one merge path shared by
    /// per-device / per-channel stats that previously each hand-rolled it.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, v) in &other.gauges {
            self.gauges.insert(name.clone(), *v);
        }
        for (name, samples) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().extend_from_slice(samples);
        }
    }

    /// Write the registry as a JSON object value on `w`: counters and
    /// gauges verbatim, histograms as their summaries.
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object().key("counters").begin_object();
        for (name, v) in &self.counters {
            w.field_uint(name, *v);
        }
        w.end_object().key("gauges").begin_object();
        for (name, v) in &self.gauges {
            w.field_num(name, *v);
        }
        w.end_object().key("histograms").begin_object();
        for name in self.histograms.keys() {
            w.key(name);
            self.summary(name).write_json(w);
        }
        w.end_object().end_object();
    }

    /// The registry as a standalone JSON document.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        self.write_json(&mut w);
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let mut r = MetricsRegistry::new();
        assert_eq!(r.counter("dram.reads"), 0);
        r.inc("dram.reads", 3);
        r.inc("dram.reads", 4);
        assert_eq!(r.counter("dram.reads"), 7);
    }

    #[test]
    fn gauges_last_write_wins() {
        let mut r = MetricsRegistry::new();
        assert_eq!(r.gauge("serve.utilization"), None);
        r.set_gauge("serve.utilization", 0.25);
        r.set_gauge("serve.utilization", 0.75);
        assert_eq!(r.gauge("serve.utilization"), Some(0.75));
    }

    #[test]
    fn histograms_summarize_through_summary() {
        let mut r = MetricsRegistry::new();
        assert_eq!(r.summary("serve.ttft_ms"), Summary::empty());
        r.observe("serve.ttft_ms", 3.0);
        r.observe_all("serve.ttft_ms", &[1.0, 2.0, 4.0]);
        let s = r.summary("serve.ttft_ms");
        assert_eq!(s.count, 4);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.p50, 2.0);
    }

    #[test]
    fn merge_adds_counters_and_concatenates_histograms() {
        let mut a = MetricsRegistry::new();
        a.inc("reads", 2);
        a.observe("lat", 1.0);
        a.set_gauge("util", 0.1);
        let mut b = MetricsRegistry::new();
        b.inc("reads", 5);
        b.inc("writes", 1);
        b.observe("lat", 3.0);
        b.set_gauge("util", 0.9);
        a.merge(&b);
        assert_eq!(a.counter("reads"), 7);
        assert_eq!(a.counter("writes"), 1);
        assert_eq!(a.samples("lat"), 2);
        assert_eq!(a.summary("lat").max, 3.0);
        assert_eq!(a.gauge("util"), Some(0.9));
    }

    #[test]
    fn json_is_deterministic_and_sorted_by_name() {
        let mut r = MetricsRegistry::new();
        r.inc("z.last", 1);
        r.inc("a.first", 2);
        r.set_gauge("m.mid", 0.5);
        r.observe("h.lat", 2.0);
        let j = r.to_json();
        assert_eq!(j, r.to_json());
        assert!(j.starts_with(r#"{"counters":{"a.first":2,"z.last":1}"#));
        assert!(j.contains(r#""gauges":{"m.mid":0.5}"#));
        assert!(j.contains(r#""histograms":{"h.lat":{"count":1,"#));
    }
}
