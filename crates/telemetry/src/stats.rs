//! Shared latency statistics: nearest-rank percentiles and summary
//! aggregates used by the serving paths (`facil_sim::serving`,
//! `facil-serve`, `facil-bench`) and by [`crate::metrics`] histograms.
//!
//! Moved here from `facil_sim::stats` (which re-exports this module) so
//! the lower layers can depend on it without a cycle. The estimator is the
//! standard nearest-rank definition `idx = ceil(p * n) - 1`; the previous
//! per-module helper computed `((n - 1) * p).round()`, which over-/
//! under-shoots for small samples (for ten samples it returns the 6th
//! value as the median instead of the 5th).

use serde::{Deserialize, Serialize};

use crate::json::JsonWriter;

/// Nearest-rank percentile of an ascending-sorted slice: the smallest value
/// such that at least `p * 100`% of the samples are `<=` it
/// (`idx = ceil(p * n) - 1`). Returns 0.0 for an empty slice; `p` is
/// clamped to `[0, 1]`.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let p = p.clamp(0.0, 1.0);
    let rank = (p * sorted.len() as f64).ceil() as usize;
    sorted[rank.max(1).min(sorted.len()) - 1]
}

/// Percentile summary of a latency sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean (0 for an empty sample).
    pub mean: f64,
    /// Minimum (0 for an empty sample).
    pub min: f64,
    /// Median (nearest rank).
    pub p50: f64,
    /// 95th percentile (nearest rank).
    pub p95: f64,
    /// 99th percentile (nearest rank).
    pub p99: f64,
    /// Maximum (0 for an empty sample).
    pub max: f64,
}

impl Summary {
    /// The all-zero summary of an empty sample.
    pub fn empty() -> Summary {
        Summary::from_sorted(&[])
    }

    /// Summarize a sample (need not be sorted; NaNs are not allowed).
    ///
    /// # Panics
    ///
    /// Panics if a value is NaN.
    pub fn from_unsorted(mut values: Vec<f64>) -> Summary {
        values.sort_by(|a, b| a.total_cmp(b));
        Summary::from_sorted(&values)
    }

    /// Summarize an already ascending-sorted sample.
    pub fn from_sorted(sorted: &[f64]) -> Summary {
        if sorted.is_empty() {
            return Summary {
                count: 0,
                mean: 0.0,
                min: 0.0,
                p50: 0.0,
                p95: 0.0,
                p99: 0.0,
                max: 0.0,
            };
        }
        Summary {
            count: sorted.len(),
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
            min: sorted[0],
            p50: percentile(sorted, 0.50),
            p95: percentile(sorted, 0.95),
            p99: percentile(sorted, 0.99),
            max: sorted[sorted.len() - 1],
        }
    }

    /// Write the summary as a JSON object value on `w`.
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object()
            .field_uint("count", self.count as u64)
            .field_num("mean", self.mean)
            .field_num("min", self.min)
            .field_num("p50", self.p50)
            .field_num("p95", self.p95)
            .field_num("p99", self.p99)
            .field_num("max", self.max);
        w.end_object();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_known_fixtures() {
        // Wikipedia's nearest-rank worked example.
        let v = [15.0, 20.0, 35.0, 40.0, 50.0];
        assert_eq!(percentile(&v, 0.05), 15.0);
        assert_eq!(percentile(&v, 0.30), 20.0);
        assert_eq!(percentile(&v, 0.40), 20.0);
        assert_eq!(percentile(&v, 0.50), 35.0);
        assert_eq!(percentile(&v, 0.95), 50.0);
        assert_eq!(percentile(&v, 1.00), 50.0);
        assert_eq!(percentile(&v, 0.00), 15.0);
    }

    #[test]
    fn even_sample_median_is_lower_neighbor() {
        // The old `.round()` formula returned 6.0 here (index 5): for ten
        // samples the nearest-rank median is the 5th value.
        let v: Vec<f64> = (1..=10).map(|x| x as f64).collect();
        assert_eq!(percentile(&v, 0.5), 5.0);
        assert_eq!(percentile(&v, 0.95), 10.0);
        assert_eq!(percentile(&v, 0.99), 10.0);
        assert_eq!(percentile(&v, 0.1), 1.0);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let v = [7.5];
        for p in [0.0, 0.01, 0.5, 0.95, 1.0] {
            assert_eq!(percentile(&v, p), 7.5);
        }
    }

    #[test]
    fn empty_sample_yields_zeros() {
        assert_eq!(percentile(&[], 0.5), 0.0);
        let s = Summary::from_unsorted(Vec::new());
        assert_eq!(s.count, 0);
        assert_eq!(s.p95, 0.0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s, Summary::empty());
    }

    #[test]
    fn summary_orders_and_aggregates() {
        let s = Summary::from_unsorted(vec![3.0, 1.0, 2.0, 4.0]);
        assert_eq!(s.count, 4);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.p50, 2.0);
        assert_eq!(s.p95, 4.0);
        assert!((s.mean - 2.5).abs() < 1e-12);
        // Percentiles are monotone in p.
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
    }

    #[test]
    fn summary_serializes_all_fields() {
        let s = Summary::from_unsorted(vec![1.0, 2.0]);
        let mut w = JsonWriter::new();
        s.write_json(&mut w);
        let j = w.finish();
        assert_eq!(j, r#"{"count":2,"mean":1.5,"min":1,"p50":1,"p95":2,"p99":2,"max":2}"#);
    }
}
