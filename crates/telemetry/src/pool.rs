//! Deterministic parallelism for the simulation crates, backed by a
//! persistent work-stealing executor.
//!
//! The FACIL workspace simulates many *independent* units — LPDDR5 channels
//! in [`ChannelSim`]-land, devices in a serving fleet, sweep points in the
//! bench harness — whose results are merged in a fixed index order. This
//! module provides the shared parallel entry points:
//!
//! * [`par_map`] / [`par_map_mut`] — map a closure over a slice on the
//!   executor's long-lived workers, returning results **in input order**,
//!   so the output is bit-identical to a serial loop no matter how the
//!   items were split, claimed, or stolen across workers;
//! * [`join`] — run two closures concurrently (fork-join of exactly two
//!   tasks, e.g. two whole figure sweeps); the second closure is published
//!   as a stealable task and reclaimed inline if no worker takes it;
//! * [`parallelism`] / [`set_parallelism`] — the worker-count knob:
//!   process-wide override, then the `FACIL_THREADS` environment variable,
//!   then [`std::thread::available_parallelism`];
//! * [`shutdown`] — join the persistent workers (they respawn lazily on
//!   the next parallel call), for thread-hygiene-sensitive callers.
//!
//! Everything is `std`-only. Unlike the PR 4 pool — fresh scoped threads
//! per call, one `Mutex` lock per item — workers persist across calls
//! (parked on a condvar when idle) and claim *runs* of items from
//! per-participant atomic ranges, stealing half a victim's range when
//! their own runs dry; see the private `executor` module docs for the
//! scheduling and safety details. Dispatching a batch is a pointer push
//! plus wakeups, and per-item overhead is amortized over whole chunks.
//!
//! Calls degrade to a plain inline loop when one worker is requested or
//! the input has fewer than two items — so `FACIL_THREADS=1` runs exactly
//! the serial code path. **Nested** calls (a `par_map` reached from inside
//! another `par_map`'s closure, e.g. `DramSystem::run` fired lazily during
//! a parallel fleet tick) also run inline when the caller is already a
//! pool worker: the worker helps execute the nested batch itself, so
//! nesting can neither deadlock nor grow the thread count past the
//! configured parallelism. Either way the results are identical — the
//! schedule never leaks into the output.
//!
//! [`ChannelSim`]: https://docs.rs/facil-dram
//!
//! ```
//! use facil_telemetry::pool;
//!
//! let mut xs = [1u64, 2, 3, 4];
//! let doubled = pool::par_map_mut(&mut xs, |x| {
//!     *x *= 2;
//!     *x
//! });
//! assert_eq!(doubled, vec![2, 4, 6, 8]); // input order, any schedule
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use crate::executor;

/// Process-wide worker-count override; 0 means "not set".
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// The default worker count: `FACIL_THREADS` if set to a positive integer,
/// otherwise the machine's available parallelism. Read once and cached —
/// use [`set_parallelism`] for in-process changes.
fn default_parallelism() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("FACIL_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
    })
}

/// Worker count used by [`par_map`]/[`par_map_mut`]/[`join`] when no
/// explicit count is given: the [`set_parallelism`] override if set, else
/// the `FACIL_THREADS` environment variable, else the available cores.
pub fn parallelism() -> usize {
    match OVERRIDE.load(Ordering::Relaxed) {
        0 => default_parallelism(),
        n => n,
    }
}

/// Set the process-wide worker count (`1` forces serial execution).
/// Passing `0` clears the override, returning to the `FACIL_THREADS` /
/// available-cores default. Simulation results never depend on this knob —
/// only wall-clock time does.
pub fn set_parallelism(workers: usize) {
    OVERRIDE.store(workers, Ordering::Relaxed);
}

/// Join the executor's persistent worker threads and return how many were
/// joined. The pool respawns workers lazily on the next parallel call, so
/// this only matters to callers that audit thread hygiene (tests, forking
/// embedders) — simulation code never needs it.
pub fn shutdown() -> usize {
    executor::shutdown_workers()
}

/// Map `f` over `items` in parallel, returning results in input order.
///
/// Equivalent to `items.iter().map(f).collect()` — including bit-identical
/// results — but runs on [`parallelism`] workers. Falls back to the inline
/// serial loop when one worker is configured, there are fewer than two
/// items, or the caller is itself a pool worker (nested call).
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_with(parallelism(), items, f)
}

/// [`par_map`] with an explicit worker count.
pub fn par_map_with<T, R, F>(workers: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let workers = workers.max(1).min(n);
    if workers <= 1 || executor::on_worker_thread() {
        return items.iter().map(f).collect();
    }
    executor::map_indexed(workers, n, |i| f(&items[i]))
}

/// Map `f` over mutable `items` in parallel, returning results in input
/// order. The mutable-slice twin of [`par_map`]: each item is visited by
/// exactly one worker, so no synchronization beyond the index claiming is
/// needed and results match the serial loop bit for bit.
pub fn par_map_mut<T, R, F>(items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(&mut T) -> R + Sync,
{
    par_map_mut_with(parallelism(), items, f)
}

/// [`par_map_mut`] with an explicit worker count.
pub fn par_map_mut_with<T, R, F>(workers: usize, items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(&mut T) -> R + Sync,
{
    let n = items.len();
    let workers = workers.max(1).min(n);
    if workers <= 1 || executor::on_worker_thread() {
        return items.iter_mut().map(f).collect();
    }
    let base = executor::SendPtr(items.as_mut_ptr());
    executor::map_indexed(workers, n, move |i| {
        // SAFETY: `map_indexed` hands every index in 0..n to exactly one
        // chunk, so each element is borrowed mutably by exactly one thread,
        // and the borrow ends before the batch is declared quiescent.
        f(unsafe { &mut *base.get().add(i) })
    })
}

/// Run two closures concurrently and return both results. The second
/// closure is published to the executor as a stealable task while the
/// caller runs the first; if no worker steals it, the caller runs it
/// inline afterward. Falls back to sequential calls under
/// [`parallelism`]` == 1` or when the caller is already a pool worker
/// (nested `join`).
pub fn join<A, B, FA, FB>(fa: FA, fb: FB) -> (A, B)
where
    A: Send,
    B: Send,
    FA: FnOnce() -> A + Send,
    FB: FnOnce() -> B + Send,
{
    if parallelism() <= 1 || executor::on_worker_thread() {
        return (fa(), fb());
    }
    executor::join_impl(fa, fb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_input_order_with_uneven_work() {
        let items: Vec<u64> = (0..257).collect();
        let out = par_map_with(7, &items, |&x| {
            // Skew the work so late items finish before early ones.
            if x % 3 == 0 {
                std::thread::yield_now();
            }
            x * 2
        });
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_mut_visits_every_item_once() {
        let mut items = vec![0u32; 100];
        let idx = par_map_mut_with(4, &mut items, |slot| {
            *slot += 1;
            *slot
        });
        assert!(items.iter().all(|&v| v == 1));
        assert_eq!(idx, vec![1; 100]);
    }

    #[test]
    fn worker_counts_agree_bit_for_bit() {
        let items: Vec<u64> = (0..64u64).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
        let serial = par_map_with(1, &items, |&x| x.rotate_left(13) ^ 0xABCD);
        for workers in [2, 3, 8, 64, 1000] {
            assert_eq!(par_map_with(workers, &items, |&x| x.rotate_left(13) ^ 0xABCD), serial);
        }
    }

    #[test]
    fn empty_and_singleton_inputs_stay_inline() {
        let empty: [u8; 0] = [];
        assert!(par_map_with(8, &empty, |&x| x).is_empty());
        assert_eq!(par_map_with(8, &[7u8], |&x| x + 1), vec![8]);
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!((a, b), (2, "two"));
    }

    #[test]
    fn parallelism_override_roundtrips() {
        let before = parallelism();
        assert!(before >= 1);
        set_parallelism(3);
        assert_eq!(parallelism(), 3);
        set_parallelism(0); // back to the default
        assert_eq!(parallelism(), before);
    }

    #[test]
    fn nested_par_map_runs_inline_without_deadlock() {
        let outer: Vec<u64> = (0..16).collect();
        let expect: Vec<u64> =
            outer.iter().map(|&x| (0..8u64).map(|y| x * 100 + y).sum::<u64>()).collect();
        let got = par_map_with(4, &outer, |&x| {
            let inner: Vec<u64> = (0..8).collect();
            par_map_with(4, &inner, |&y| x * 100 + y).iter().sum::<u64>()
        });
        assert_eq!(got, expect);
    }

    #[test]
    fn join_inside_par_map_falls_back_inline() {
        let items: Vec<u32> = (0..12).collect();
        let got = par_map_with(3, &items, |&x| {
            let (a, b) = join(|| x + 1, || x * 2);
            a + b
        });
        assert_eq!(got, items.iter().map(|&x| (x + 1) + (x * 2)).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_propagates_item_panics() {
        let items: Vec<u32> = (0..64).collect();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            par_map_with(4, &items, |&x| {
                assert!(x != 33, "boom");
                x
            })
        }));
        assert!(caught.is_err());
        // Pool still works afterward.
        assert_eq!(par_map_with(4, &items, |&x| x + 1)[0], 1);
    }
}
