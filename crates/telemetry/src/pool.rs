//! Deterministic fork-join parallelism for the simulation crates.
//!
//! The FACIL workspace simulates many *independent* units — LPDDR5 channels
//! in [`ChannelSim`]-land, devices in a serving fleet, sweep points in the
//! bench harness — whose results are merged in a fixed index order. This
//! module provides the one scoped-thread helper they all share:
//!
//! * [`par_map`] / [`par_map_mut`] — map a closure over a slice on a small
//!   self-scheduling worker pool, returning results **in input order**, so
//!   the output is bit-identical to a serial loop no matter how the items
//!   were interleaved across workers;
//! * [`join`] — run two closures concurrently (fork-join of exactly two
//!   tasks, e.g. two whole figure sweeps);
//! * [`parallelism`] / [`set_parallelism`] — the worker-count knob:
//!   process-wide override, then the `FACIL_THREADS` environment variable,
//!   then [`std::thread::available_parallelism`].
//!
//! Everything is `std`-only (scoped threads, no work-stealing runtime) and
//! degrades to a plain inline loop when one worker is requested or the
//! input has fewer than two items — so `FACIL_THREADS=1` runs exactly the
//! serial code path.
//!
//! [`ChannelSim`]: https://docs.rs/facil-dram
//!
//! ```
//! use facil_telemetry::pool;
//!
//! let mut xs = [1u64, 2, 3, 4];
//! let doubled = pool::par_map_mut(&mut xs, |x| {
//!     *x *= 2;
//!     *x
//! });
//! assert_eq!(doubled, vec![2, 4, 6, 8]); // input order, any schedule
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

/// Process-wide worker-count override; 0 means "not set".
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// The default worker count: `FACIL_THREADS` if set to a positive integer,
/// otherwise the machine's available parallelism. Read once and cached —
/// use [`set_parallelism`] for in-process changes.
fn default_parallelism() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("FACIL_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
    })
}

/// Worker count used by [`par_map`]/[`par_map_mut`]/[`join`] when no
/// explicit count is given: the [`set_parallelism`] override if set, else
/// the `FACIL_THREADS` environment variable, else the available cores.
pub fn parallelism() -> usize {
    match OVERRIDE.load(Ordering::Relaxed) {
        0 => default_parallelism(),
        n => n,
    }
}

/// Set the process-wide worker count (`1` forces serial execution).
/// Passing `0` clears the override, returning to the `FACIL_THREADS` /
/// available-cores default. Simulation results never depend on this knob —
/// only wall-clock time does.
pub fn set_parallelism(workers: usize) {
    OVERRIDE.store(workers, Ordering::Relaxed);
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    // A worker can only poison the queue by panicking inside `Iterator::
    // next` on a slice iterator, which cannot happen; recover regardless.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Reassemble per-worker `(index, result)` batches into input order.
// Every index in 0..n is produced by exactly one worker, so every slot is
// filled; a hole is a pool bug worth a loud panic.
#[allow(clippy::expect_used)]
fn into_input_order<R>(n: usize, parts: Vec<Vec<(usize, R)>>) -> Vec<R> {
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    for (i, r) in parts.into_iter().flatten() {
        slots[i] = Some(r);
    }
    slots.into_iter().map(|r| r.expect("pool workers covered every index")).collect()
}

/// Run `f` over `queue` items on `workers` scoped threads, collecting
/// `(index, result)` pairs per worker. The queue is self-scheduling: a free
/// worker takes the next item, so uneven per-item cost balances naturally.
fn run_pool<I, R, F>(workers: usize, n: usize, queue: Mutex<I>, f: F) -> Vec<R>
where
    I: Iterator + Send,
    I::Item: Send,
    R: Send,
    F: Fn(I::Item) -> (usize, R) + Sync,
{
    // Worker panics are propagated, not swallowed: join().expect re-raises
    // them on the caller's thread.
    #[allow(clippy::expect_used)]
    let parts = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut out: Vec<(usize, R)> = Vec::new();
                    loop {
                        let Some(item) = lock(&queue).next() else { break };
                        out.push(f(item));
                    }
                    out
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("pool worker panicked")).collect::<Vec<_>>()
    });
    into_input_order(n, parts)
}

/// Map `f` over `items` in parallel, returning results in input order.
///
/// Equivalent to `items.iter().map(f).collect()` — including bit-identical
/// results — but runs on [`parallelism`] workers. Falls back to the inline
/// serial loop when one worker is configured or there are fewer than two
/// items.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_with(parallelism(), items, f)
}

/// [`par_map`] with an explicit worker count.
pub fn par_map_with<T, R, F>(workers: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let workers = workers.max(1).min(n);
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    run_pool(workers, n, Mutex::new(items.iter().enumerate()), |(i, item)| (i, f(item)))
}

/// Map `f` over mutable `items` in parallel, returning results in input
/// order. The mutable-slice twin of [`par_map`]: each item is visited by
/// exactly one worker, so no synchronization beyond the work queue is
/// needed and results match the serial loop bit for bit.
pub fn par_map_mut<T, R, F>(items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(&mut T) -> R + Sync,
{
    par_map_mut_with(parallelism(), items, f)
}

/// [`par_map_mut`] with an explicit worker count.
pub fn par_map_mut_with<T, R, F>(workers: usize, items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(&mut T) -> R + Sync,
{
    let n = items.len();
    let workers = workers.max(1).min(n);
    if workers <= 1 {
        return items.iter_mut().map(f).collect();
    }
    run_pool(workers, n, Mutex::new(items.iter_mut().enumerate()), |(i, item)| (i, f(item)))
}

/// Run two closures concurrently and return both results. Falls back to
/// sequential calls under [`parallelism`]` == 1`.
pub fn join<A, B, FA, FB>(fa: FA, fb: FB) -> (A, B)
where
    A: Send,
    B: Send,
    FA: FnOnce() -> A + Send,
    FB: FnOnce() -> B + Send,
{
    if parallelism() <= 1 {
        return (fa(), fb());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(fb);
        let a = fa();
        // Same panic-propagation contract as `run_pool`.
        #[allow(clippy::expect_used)]
        let b = hb.join().expect("join task panicked");
        (a, b)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_input_order_with_uneven_work() {
        let items: Vec<u64> = (0..257).collect();
        let out = par_map_with(7, &items, |&x| {
            // Skew the work so late items finish before early ones.
            if x % 3 == 0 {
                std::thread::yield_now();
            }
            x * 2
        });
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_mut_visits_every_item_once() {
        let mut items = vec![0u32; 100];
        let idx = par_map_mut_with(4, &mut items, |slot| {
            *slot += 1;
            *slot
        });
        assert!(items.iter().all(|&v| v == 1));
        assert_eq!(idx, vec![1; 100]);
    }

    #[test]
    fn worker_counts_agree_bit_for_bit() {
        let items: Vec<u64> = (0..64u64).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
        let serial = par_map_with(1, &items, |&x| x.rotate_left(13) ^ 0xABCD);
        for workers in [2, 3, 8, 64, 1000] {
            assert_eq!(par_map_with(workers, &items, |&x| x.rotate_left(13) ^ 0xABCD), serial);
        }
    }

    #[test]
    fn empty_and_singleton_inputs_stay_inline() {
        let empty: [u8; 0] = [];
        assert!(par_map_with(8, &empty, |&x| x).is_empty());
        assert_eq!(par_map_with(8, &[7u8], |&x| x + 1), vec![8]);
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!((a, b), (2, "two"));
    }

    #[test]
    fn parallelism_override_roundtrips() {
        let before = parallelism();
        assert!(before >= 1);
        set_parallelism(3);
        assert_eq!(parallelism(), 3);
        set_parallelism(0); // back to the default
        assert_eq!(parallelism(), before);
    }
}
