//! Minimal streaming JSON writer — the one hand-rolled serializer the
//! workspace shares (the dependency tree deliberately carries no JSON
//! crate). The writer tracks container nesting and comma placement so
//! callers only state structure; the output is deterministic for
//! deterministic inputs, which the trace/manifest byte-identity tests rely
//! on.

/// Format a float as a JSON number; non-finite values (which JSON cannot
/// represent) become `null`.
pub fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

/// Append the JSON escape of `s` (without surrounding quotes) to `out`.
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// A string as a quoted, escaped JSON string literal.
pub fn escaped(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    escape_into(&mut out, s);
    out.push('"');
    out
}

/// Streaming JSON writer with automatic comma placement.
///
/// Call [`JsonWriter::begin_object`] / [`JsonWriter::begin_array`] to open
/// containers, [`JsonWriter::key`] before each object value, and
/// [`JsonWriter::finish`] to take the output. The `field_*` helpers write
/// a key/value pair in one call.
#[derive(Debug, Default)]
pub struct JsonWriter {
    buf: String,
    /// One entry per open container: true until its first element lands.
    stack: Vec<bool>,
    /// A key was just written: the next value must not emit a comma.
    pending_value: bool,
}

impl JsonWriter {
    /// New writer with an empty buffer.
    pub fn new() -> Self {
        JsonWriter::default()
    }

    /// New writer with a preallocated buffer.
    pub fn with_capacity(bytes: usize) -> Self {
        JsonWriter { buf: String::with_capacity(bytes), ..JsonWriter::default() }
    }

    fn sep(&mut self) {
        if self.pending_value {
            self.pending_value = false;
            return;
        }
        if let Some(first) = self.stack.last_mut() {
            if *first {
                *first = false;
            } else {
                self.buf.push(',');
            }
        }
    }

    /// Open an object (`{`).
    pub fn begin_object(&mut self) -> &mut Self {
        self.sep();
        self.buf.push('{');
        self.stack.push(true);
        self
    }

    /// Close the current object (`}`).
    pub fn end_object(&mut self) -> &mut Self {
        self.buf.push('}');
        self.stack.pop();
        self
    }

    /// Open an array (`[`).
    pub fn begin_array(&mut self) -> &mut Self {
        self.sep();
        self.buf.push('[');
        self.stack.push(true);
        self
    }

    /// Close the current array (`]`).
    pub fn end_array(&mut self) -> &mut Self {
        self.buf.push(']');
        self.stack.pop();
        self
    }

    /// Write an object key; the next value call provides its value.
    pub fn key(&mut self, k: &str) -> &mut Self {
        self.sep();
        self.buf.push('"');
        escape_into(&mut self.buf, k);
        self.buf.push_str("\":");
        self.pending_value = true;
        self
    }

    /// Write a string value.
    pub fn string(&mut self, s: &str) -> &mut Self {
        self.sep();
        self.buf.push('"');
        escape_into(&mut self.buf, s);
        self.buf.push('"');
        self
    }

    /// Write a float value (`null` when non-finite).
    pub fn number(&mut self, v: f64) -> &mut Self {
        self.sep();
        self.buf.push_str(&number(v));
        self
    }

    /// Write an unsigned integer value.
    pub fn uint(&mut self, v: u64) -> &mut Self {
        self.sep();
        self.buf.push_str(&v.to_string());
        self
    }

    /// Write a signed integer value.
    pub fn int(&mut self, v: i64) -> &mut Self {
        self.sep();
        self.buf.push_str(&v.to_string());
        self
    }

    /// Write a boolean value.
    pub fn boolean(&mut self, v: bool) -> &mut Self {
        self.sep();
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Write a `null` value.
    pub fn null(&mut self) -> &mut Self {
        self.sep();
        self.buf.push_str("null");
        self
    }

    /// Splice a pre-serialized JSON fragment as a value.
    pub fn raw(&mut self, fragment: &str) -> &mut Self {
        self.sep();
        self.buf.push_str(fragment);
        self
    }

    /// `"k":"v"` in one call.
    pub fn field_str(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k).string(v)
    }

    /// `"k":<float>` in one call (`null` when non-finite).
    pub fn field_num(&mut self, k: &str, v: f64) -> &mut Self {
        self.key(k).number(v)
    }

    /// `"k":<u64>` in one call.
    pub fn field_uint(&mut self, k: &str, v: u64) -> &mut Self {
        self.key(k).uint(v)
    }

    /// `"k":<bool>` in one call.
    pub fn field_bool(&mut self, k: &str, v: bool) -> &mut Self {
        self.key(k).boolean(v)
    }

    /// `"k":<fragment>` in one call.
    pub fn field_raw(&mut self, k: &str, fragment: &str) -> &mut Self {
        self.key(k).raw(fragment)
    }

    /// Take the serialized output. All containers must be closed.
    pub fn finish(self) -> String {
        debug_assert!(self.stack.is_empty(), "unclosed JSON container");
        debug_assert!(!self.pending_value, "dangling JSON key");
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn objects_arrays_and_commas() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("name", "x").field_uint("n", 3).key("list").begin_array();
        w.uint(1).uint(2);
        w.begin_object().field_bool("ok", true).end_object();
        w.end_array();
        w.key("nested").begin_object().end_object();
        w.end_object();
        assert_eq!(w.finish(), r#"{"name":"x","n":3,"list":[1,2,{"ok":true}],"nested":{}}"#);
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(number(f64::INFINITY), "null");
        assert_eq!(number(f64::NEG_INFINITY), "null");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(1.5), "1.5");
        let mut w = JsonWriter::new();
        w.begin_array().number(f64::NAN).number(2.0).end_array();
        assert_eq!(w.finish(), "[null,2]");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(escaped("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(escaped("x\ny"), "\"x\\ny\"");
        assert_eq!(escaped("\u{1}"), "\"\\u0001\"");
        let mut w = JsonWriter::new();
        w.begin_object().field_str("k\"ey", "v\tal").end_object();
        assert_eq!(w.finish(), "{\"k\\\"ey\":\"v\\tal\"}");
    }

    #[test]
    fn raw_fragments_splice_unchanged() {
        let mut w = JsonWriter::new();
        w.begin_object().field_raw("inner", r#"{"a":1}"#).key("b").raw("[2]").end_object();
        assert_eq!(w.finish(), r#"{"inner":{"a":1},"b":[2]}"#);
    }

    #[test]
    fn top_level_scalars_and_determinism() {
        let build = || {
            let mut w = JsonWriter::new();
            w.begin_object().field_num("v", 0.25).field_bool("b", false).key("z").null();
            w.end_object();
            w.finish()
        };
        assert_eq!(build(), build());
        assert_eq!(build(), r#"{"v":0.25,"b":false,"z":null}"#);
    }
}
