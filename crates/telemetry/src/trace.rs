//! Structured trace events in **simulated** time.
//!
//! Instrumented code records spans ([`EventKind::Complete`]) and point
//! events ([`EventKind::Instant`]) against named tracks through the
//! [`TraceSink`] trait. Timestamps are simulated nanoseconds taken from the
//! model clocks — wall-clock time never appears in a trace, so output is
//! reproducible byte-for-byte per seed.
//!
//! Two sinks ship with the crate:
//!
//! * [`NullSink`] — zero-sized, `enabled()` is `false`, every call is a
//!   no-op the optimizer deletes. Generic instrumentation over
//!   `S: TraceSink` monomorphizes to the untraced code when `S = NullSink`.
//! * [`RingSink`] — preallocated ring buffer of [`TraceEvent`]s (events
//!   are `Copy`; recording never allocates once the buffer is warm, and
//!   the oldest events are overwritten when the ring fills). Export with
//!   [`RingSink::to_chrome_json`] and open the file in `ui.perfetto.dev`.
//!
//! Event names are `&'static str` so the hot path stays allocation-free;
//! dynamic values (row ids, request ids, queue depths) travel in the
//! fixed four-slot argument array instead.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use crate::json::JsonWriter;

/// Opaque handle to a named track (one Perfetto timeline row).
///
/// The default id points at an anonymous track; [`NullSink::track`] returns
/// it so disabled call sites need no track bookkeeping.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TrackId(pub u32);

/// Value of one event argument.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer (row/column ids, request ids, counts).
    U64(u64),
    /// Float (rates, fractions, simulated seconds).
    F64(f64),
    /// Static string (enum-like labels such as a shed reason).
    Str(&'static str),
}

/// One key/value argument attached to an event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Arg {
    /// Argument name (shown in the Perfetto detail pane).
    pub key: &'static str,
    /// Argument value.
    pub value: ArgValue,
}

/// The two event shapes the exporter understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span with a duration (Chrome `ph:"X"`).
    Complete,
    /// A point-in-time marker (Chrome `ph:"i"`).
    Instant,
}

/// Maximum arguments carried inline by one event.
pub const MAX_ARGS: usize = 4;

/// One recorded event. `Copy` and fixed-size so the ring buffer stores it
/// without indirection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Track the event belongs to.
    pub track: TrackId,
    /// Event name (span or marker label).
    pub name: &'static str,
    /// Span or instant.
    pub kind: EventKind,
    /// Start time in simulated nanoseconds.
    pub ts_ns: f64,
    /// Duration in simulated nanoseconds (0 for instants).
    pub dur_ns: f64,
    /// Inline arguments; unused slots are `None`.
    pub args: [Option<Arg>; MAX_ARGS],
}

impl TraceEvent {
    /// Build an event from an argument slice (at most [`MAX_ARGS`] entries;
    /// extra arguments are dropped).
    pub fn new(
        track: TrackId,
        name: &'static str,
        kind: EventKind,
        ts_ns: f64,
        dur_ns: f64,
        args: &[(&'static str, ArgValue)],
    ) -> TraceEvent {
        debug_assert!(args.len() <= MAX_ARGS, "event {name} carries more than {MAX_ARGS} args");
        let mut packed = [None; MAX_ARGS];
        for (slot, &(key, value)) in packed.iter_mut().zip(args.iter()) {
            *slot = Some(Arg { key, value });
        }
        TraceEvent { track, name, kind, ts_ns, dur_ns, args: packed }
    }
}

/// Destination for trace events.
///
/// Instrumented code is generic over `S: TraceSink` and calls the provided
/// [`TraceSink::complete`] / [`TraceSink::instant`] helpers, which check
/// [`TraceSink::enabled`] first. With [`NullSink`] the check is a constant
/// `false`, so the whole call — including argument construction — folds
/// away; callers must guard any *additional* work (e.g. `format!` for
/// track names) behind `enabled()` themselves.
pub trait TraceSink {
    /// Whether events are being kept. Constant per sink type in practice.
    fn enabled(&self) -> bool;

    /// Register (or look up) the track named `name` under the process
    /// group `process`. Same `(process, name)` pair returns the same id.
    fn track(&mut self, process: &str, name: &str) -> TrackId;

    /// Store one event. Called by the provided helpers only when
    /// [`TraceSink::enabled`] is true.
    fn record(&mut self, event: TraceEvent);

    /// Record a span of `dur_ns` starting at `ts_ns` (simulated ns).
    fn complete(
        &mut self,
        track: TrackId,
        name: &'static str,
        ts_ns: f64,
        dur_ns: f64,
        args: &[(&'static str, ArgValue)],
    ) {
        if self.enabled() {
            self.record(TraceEvent::new(track, name, EventKind::Complete, ts_ns, dur_ns, args));
        }
    }

    /// Record a point event at `ts_ns` (simulated ns).
    fn instant(
        &mut self,
        track: TrackId,
        name: &'static str,
        ts_ns: f64,
        args: &[(&'static str, ArgValue)],
    ) {
        if self.enabled() {
            self.record(TraceEvent::new(track, name, EventKind::Instant, ts_ns, 0.0, args));
        }
    }
}

/// The disabled sink: zero-sized, every operation a no-op.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    fn track(&mut self, _process: &str, _name: &str) -> TrackId {
        TrackId::default()
    }

    #[inline(always)]
    fn record(&mut self, _event: TraceEvent) {}
}

/// Shared single-threaded sink: lets several components (e.g. every device
/// in a fleet) record into one buffer.
impl<S: TraceSink> TraceSink for Rc<RefCell<S>> {
    fn enabled(&self) -> bool {
        self.borrow().enabled()
    }

    fn track(&mut self, process: &str, name: &str) -> TrackId {
        self.borrow_mut().track(process, name)
    }

    fn record(&mut self, event: TraceEvent) {
        self.borrow_mut().record(event);
    }
}

/// One registered track: its process group and display name.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Track {
    process: String,
    name: String,
}

/// Recording sink: a bounded ring of events plus the track table.
///
/// When more than `capacity` events are recorded the oldest are
/// overwritten; [`RingSink::dropped`] says how many were lost so exports
/// can be distinguished from complete captures.
#[derive(Debug)]
pub struct RingSink {
    capacity: usize,
    buf: Vec<TraceEvent>,
    head: usize,
    recorded: u64,
    tracks: Vec<Track>,
    index: BTreeMap<(String, String), TrackId>,
}

impl RingSink {
    /// Sink keeping at most `capacity` events (at least 1).
    pub fn new(capacity: usize) -> RingSink {
        let capacity = capacity.max(1);
        RingSink {
            capacity,
            buf: Vec::with_capacity(capacity),
            head: 0,
            recorded: 0,
            tracks: Vec::new(),
            index: BTreeMap::new(),
        }
    }

    /// Events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no events are held.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events ever recorded, including overwritten ones.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events lost to ring overwrite.
    pub fn dropped(&self) -> u64 {
        self.recorded - self.buf.len() as u64
    }

    /// Held events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf[self.head..].iter().chain(self.buf[..self.head].iter())
    }

    /// Serialize to Chrome/Perfetto `trace_event` JSON.
    ///
    /// Each distinct process group becomes a Perfetto process (pid by
    /// first-registration order) and each track a named thread within it,
    /// so the UI shows e.g. a `dram` lane with one row per bank. Events
    /// are emitted in stable timestamp order; output is deterministic for
    /// a deterministic recording.
    pub fn to_chrome_json(&self) -> String {
        let mut process_ids: BTreeMap<&str, u64> = BTreeMap::new();
        let mut process_order: Vec<&str> = Vec::new();
        // tid within each process, in track-registration order.
        let mut thread_ids: Vec<(u64, u64)> = Vec::with_capacity(self.tracks.len());
        let mut next_tid: BTreeMap<u64, u64> = BTreeMap::new();
        for t in &self.tracks {
            let pid = *process_ids.entry(t.process.as_str()).or_insert_with(|| {
                process_order.push(t.process.as_str());
                process_order.len() as u64
            });
            let tid = next_tid.entry(pid).or_insert(0);
            *tid += 1;
            thread_ids.push((pid, *tid));
        }

        let mut sorted: Vec<&TraceEvent> = self.events().collect();
        sorted.sort_by(|a, b| a.ts_ns.total_cmp(&b.ts_ns));

        let mut w = JsonWriter::with_capacity(128 + 96 * sorted.len());
        w.begin_object().field_str("displayTimeUnit", "ms").key("traceEvents").begin_array();
        for (i, process) in process_order.iter().enumerate() {
            w.begin_object()
                .field_str("ph", "M")
                .field_uint("pid", i as u64 + 1)
                .field_uint("tid", 0)
                .field_str("name", "process_name")
                .key("args")
                .begin_object()
                .field_str("name", process);
            w.end_object().end_object();
        }
        for (track, &(pid, tid)) in self.tracks.iter().zip(thread_ids.iter()) {
            w.begin_object()
                .field_str("ph", "M")
                .field_uint("pid", pid)
                .field_uint("tid", tid)
                .field_str("name", "thread_name")
                .key("args")
                .begin_object()
                .field_str("name", &track.name);
            w.end_object().end_object();
        }
        for e in sorted {
            let (pid, tid) =
                thread_ids.get(e.track.0 as usize).copied().unwrap_or((0, e.track.0 as u64 + 1));
            w.begin_object();
            match e.kind {
                EventKind::Complete => {
                    w.field_str("ph", "X");
                }
                EventKind::Instant => {
                    // Thread-scoped instant: renders on its own track row.
                    w.field_str("ph", "i").field_str("s", "t");
                }
            }
            w.field_str("name", e.name)
                .field_uint("pid", pid)
                .field_uint("tid", tid)
                .field_num("ts", e.ts_ns / 1_000.0);
            if e.kind == EventKind::Complete {
                w.field_num("dur", e.dur_ns / 1_000.0);
            }
            w.key("args").begin_object();
            for arg in e.args.iter().flatten() {
                match arg.value {
                    ArgValue::U64(v) => w.field_uint(arg.key, v),
                    ArgValue::F64(v) => w.field_num(arg.key, v),
                    ArgValue::Str(v) => w.field_str(arg.key, v),
                };
            }
            w.end_object().end_object();
        }
        w.end_array().end_object();
        w.finish()
    }
}

impl TraceSink for RingSink {
    fn enabled(&self) -> bool {
        true
    }

    fn track(&mut self, process: &str, name: &str) -> TrackId {
        let key = (process.to_string(), name.to_string());
        if let Some(&id) = self.index.get(&key) {
            return id;
        }
        let id = TrackId(self.tracks.len() as u32);
        self.tracks.push(Track { process: key.0.clone(), name: key.1.clone() });
        self.index.insert(key, id);
        id
    }

    fn record(&mut self, event: TraceEvent) {
        if self.buf.len() < self.capacity {
            self.buf.push(event);
        } else {
            self.buf[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
        }
        self.recorded += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_is_zero_sized_and_disabled() {
        assert_eq!(std::mem::size_of::<NullSink>(), 0);
        let mut sink = NullSink;
        assert!(!sink.enabled());
        let t = sink.track("dram", "ch0/r0/b0");
        assert_eq!(t, TrackId::default());
        // The provided helpers must be safe to call and do nothing.
        sink.complete(t, "ACT", 0.0, 18.0, &[("row", ArgValue::U64(1))]);
        sink.instant(t, "mark", 5.0, &[]);
    }

    #[test]
    fn tracks_dedupe_on_process_and_name() {
        let mut sink = RingSink::new(8);
        let a = sink.track("dram", "ch0/r0/b0");
        let b = sink.track("dram", "ch0/r0/b1");
        let a2 = sink.track("dram", "ch0/r0/b0");
        let c = sink.track("pim", "ch0/r0/b0");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let mut sink = RingSink::new(3);
        let t = sink.track("sim", "phase");
        for i in 0..5 {
            sink.instant(t, "tick", i as f64, &[("i", ArgValue::U64(i))]);
        }
        assert_eq!(sink.len(), 3);
        assert_eq!(sink.recorded(), 5);
        assert_eq!(sink.dropped(), 2);
        let ts: Vec<f64> = sink.events().map(|e| e.ts_ns).collect();
        assert_eq!(ts, vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn chrome_export_names_processes_and_threads() {
        let mut sink = RingSink::new(16);
        let bank = sink.track("dram", "ch0/r0/b0");
        let kern = sink.track("pim", "kernels");
        sink.complete(bank, "ACT", 0.0, 18_000.0, &[("row", ArgValue::U64(7))]);
        sink.complete(kern, "gemv", 100.0, 2_000.0, &[("rows", ArgValue::U64(4096))]);
        sink.instant(bank, "refresh", 50.0, &[]);
        let json = sink.to_chrome_json();
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        // Process + thread metadata for both groups.
        assert!(json.contains(r#""name":"process_name","args":{"name":"dram"}"#));
        assert!(json.contains(r#""name":"process_name","args":{"name":"pim"}"#));
        assert!(json.contains(r#""name":"thread_name","args":{"name":"ch0/r0/b0"}"#));
        assert!(json.contains(r#""name":"thread_name","args":{"name":"kernels"}"#));
        // Span with µs-converted timestamps and args.
        assert!(json
            .contains(r#""ph":"X","name":"ACT","pid":1,"tid":1,"ts":0,"dur":18,"args":{"row":7}"#));
        // Thread-scoped instant.
        assert!(json.contains(r#""ph":"i","s":"t","name":"refresh""#));
    }

    #[test]
    fn chrome_export_orders_by_timestamp_and_is_deterministic() {
        let build = || {
            let mut sink = RingSink::new(8);
            let t = sink.track("serve", "scheduler");
            sink.instant(t, "late", 9.0, &[]);
            sink.instant(t, "early", 1.0, &[]);
            sink.to_chrome_json()
        };
        let json = build();
        let late = json.find("\"late\"").unwrap();
        let early = json.find("\"early\"").unwrap();
        assert!(early < late, "events must be sorted by simulated time");
        assert_eq!(json, build());
    }

    #[test]
    fn shared_sink_records_through_refcell() {
        let shared = Rc::new(RefCell::new(RingSink::new(8)));
        let mut a = Rc::clone(&shared);
        let mut b = Rc::clone(&shared);
        let t = a.track("serve", "dev0");
        assert!(b.enabled());
        b.instant(t, "admit", 1.0, &[("req", ArgValue::U64(3))]);
        a.instant(t, "shed", 2.0, &[("reason", ArgValue::Str("queue-full"))]);
        assert_eq!(shared.borrow().len(), 2);
    }
}
