//! Adversarial-schedule properties for the work-stealing pool.
//!
//! The executor's one observable contract is *schedule invisibility*: for
//! any worker count, any per-item cost skew (which drives real stealing),
//! and any nesting depth, `par_map` returns exactly what the serial loop
//! returns, in input order. These tests generate uneven workloads to force
//! chunk claims and steals onto different interleavings every run, then
//! assert bit-identical output across worker counts {1, 2, 3, 8, 64} and
//! nesting depths {1, 2}.
//!
//! Worker counts are always passed explicitly (`par_map_with`) — the
//! process-global `set_parallelism` knob would race with other tests in
//! this binary.

use facil_telemetry::pool;
use proptest::prelude::*;

/// Deterministic per-item result, independent of schedule.
fn h(x: u64) -> u64 {
    x.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(21) ^ 0x5DEE_CE66
}

/// Burn a schedule-skewing amount of CPU: `cost` is 0..4, chosen per item
/// by the generator, so some chunks finish long before others and idle
/// participants must steal to keep up.
fn spin(cost: u8) -> u64 {
    let mut acc = 1u64;
    for i in 0..(u64::from(cost) * 400) {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
    }
    if cost == 3 {
        std::thread::yield_now();
    }
    acc
}

const WORKER_COUNTS: [usize; 5] = [1, 2, 3, 8, 64];

/// One of [`WORKER_COUNTS`], as a strategy.
fn arb_workers() -> impl Strategy<Value = usize> {
    prop_oneof![Just(1usize), Just(2), Just(3), Just(8), Just(64)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Depth 1: uneven per-item cost, every worker count, identical output.
    #[test]
    fn uneven_schedules_never_reorder_results(
        items in prop::collection::vec((0u64..u64::MAX, 0u8..4), 1..200)
    ) {
        let serial: Vec<u64> = items.iter().map(|&(x, c)| {
            std::hint::black_box(spin(c));
            h(x)
        }).collect();
        for workers in WORKER_COUNTS {
            let out = pool::par_map_with(workers, &items, |&(x, c)| {
                std::hint::black_box(spin(c));
                h(x)
            });
            prop_assert_eq!(&out, &serial, "diverged at {} workers", workers);
        }
    }

    /// Depth 2: every outer item runs an inner `par_map_with`. Inner calls
    /// issued from pool workers run inline; inner calls from the
    /// submitting thread re-enter the executor — both must be invisible.
    #[test]
    fn nested_maps_are_schedule_invisible(
        items in prop::collection::vec((0u64..u64::MAX, 0u8..4), 1..40),
        inner_n in 1usize..24,
        inner_workers in arb_workers(),
    ) {
        let inner = |x: u64| -> u64 {
            let xs: Vec<u64> = (0..inner_n as u64).map(|i| x ^ i).collect();
            pool::par_map_with(inner_workers, &xs, |&y| h(y))
                .into_iter()
                .fold(0u64, u64::wrapping_add)
        };
        let serial: Vec<u64> = items.iter().map(|&(x, c)| {
            std::hint::black_box(spin(c));
            inner(x)
        }).collect();
        for workers in WORKER_COUNTS {
            let out = pool::par_map_with(workers, &items, |&(x, c)| {
                std::hint::black_box(spin(c));
                inner(x)
            });
            prop_assert_eq!(&out, &serial, "diverged at {} outer workers", workers);
        }
    }

    /// The mutable twin under the same adversarial schedules: every item
    /// mutated exactly once, results in input order.
    #[test]
    fn par_map_mut_mutates_each_item_once_under_any_schedule(
        items in prop::collection::vec((0u64..1 << 48, 0u8..4), 1..200),
        workers in arb_workers(),
    ) {
        let mut mine = items.clone();
        let out = pool::par_map_mut_with(workers, &mut mine, |slot| {
            std::hint::black_box(spin(slot.1));
            slot.0 = slot.0.wrapping_add(1);
            h(slot.0)
        });
        let expect: Vec<u64> = items.iter().map(|&(x, _)| h(x.wrapping_add(1))).collect();
        prop_assert_eq!(out, expect);
        for (after, &(before, _)) in mine.iter().zip(&items) {
            prop_assert_eq!(after.0, before.wrapping_add(1));
        }
    }
}

/// `join` nested inside a stolen task composes with the map machinery:
/// depth-2 mixing of both entry points stays deterministic.
#[test]
fn join_and_map_compose_across_depths() {
    let items: Vec<u64> = (0..48).collect();
    let expect: Vec<u64> = items.iter().map(|&x| h(x).wrapping_add(h(x ^ 1))).collect();
    for workers in WORKER_COUNTS {
        let out = pool::par_map_with(workers, &items, |&x| {
            let (a, b) = pool::join(|| h(x), || h(x ^ 1));
            a.wrapping_add(b)
        });
        assert_eq!(out, expect, "diverged at {workers} workers");
    }
}
