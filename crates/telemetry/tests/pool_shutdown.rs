//! Worker-lifecycle hygiene: the persistent pool parks idle workers,
//! exits them cleanly on [`pool::shutdown`], and respawns lazily
//! afterward — so embedding `facil-telemetry` never leaks threads.
//!
//! This lives in its own integration-test binary (one `#[test]`, its own
//! process) because `/proc/self/task` thread counts would race with other
//! tests exercising the pool concurrently in a shared binary.

use facil_telemetry::pool;

/// Live thread count of this process; falls back to 1 where `/proc` is
/// unavailable (non-Linux), which skips the count-based assertions.
fn thread_count() -> usize {
    std::fs::read_dir("/proc/self/task").map(|d| d.count()).unwrap_or(1)
}

#[test]
fn workers_park_and_shut_down_without_leaking_threads() {
    let items: Vec<u64> = (0..256).collect();
    let expect: Vec<u64> = items.iter().map(|&x| x * 3).collect();

    let before = thread_count();

    // First parallel call spawns persistent workers.
    assert_eq!(pool::par_map_with(8, &items, |&x| x * 3), expect);
    let with_pool = thread_count();
    if before > 1 {
        assert!(
            with_pool > before,
            "expected persistent workers to outlive the call ({before} -> {with_pool})"
        );
    }

    // Idle workers park rather than exit: a second call reuses them
    // without growing the pool past the requested width.
    assert_eq!(pool::par_map_with(8, &items, |&x| x * 3), expect);
    assert!(thread_count() <= with_pool, "idle workers must be reused, not respawned");

    // Shutdown joins every worker...
    let joined = pool::shutdown();
    assert!(joined > 0, "shutdown must join the workers the calls spawned");
    if before > 1 {
        let after = thread_count();
        assert!(after <= before, "workers must exit on shutdown ({before} before, {after} after)");
    }
    // ...and repeating it is a no-op.
    assert_eq!(pool::shutdown(), 0);

    // The pool respawns lazily: parallel calls still work after shutdown.
    assert_eq!(pool::par_map_with(4, &items, |&x| x * 3), expect);
    assert!(pool::shutdown() > 0);
}
