//! Criterion micro-benchmarks of the core components: PA-to-DA translation,
//! mapping selection, the DRAM scheduler, the PIM timing engine, and the
//! paging path (TLB + frontend).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;

use facil_core::paging::{PageTable, Tlb};
use facil_core::{select_mapping_2mb, DType, MapId, MappingScheme, MatrixConfig, PimArch};
use facil_dram::{ChannelSim, DramAddress, DramSpec, Request};
use facil_pim::PimEngine;

fn bench_mapping_translate(c: &mut Criterion) {
    let spec = DramSpec::lpddr5_6400(256, 64 << 30);
    let conv = MappingScheme::conventional(spec.topology);
    let arch = PimArch::aim(&spec.topology);
    let pim = MappingScheme::pim_optimized(spec.topology, &arch, 1, 21).unwrap();
    let mut g = c.benchmark_group("mapping_translate");
    g.throughput(Throughput::Elements(1));
    g.bench_function("conventional", |b| {
        let mut pa = 0u64;
        b.iter(|| {
            pa = pa.wrapping_add(0x9E3779B97F4A7C15) & ((64 << 30) - 1);
            black_box(conv.map_pa(black_box(pa)))
        })
    });
    g.bench_function("pim_mapid1", |b| {
        let mut pa = 0u64;
        b.iter(|| {
            pa = pa.wrapping_add(0x9E3779B97F4A7C15) & ((64 << 30) - 1);
            black_box(pim.map_pa(black_box(pa)))
        })
    });
    g.finish();
}

fn bench_selector(c: &mut Criterion) {
    let spec = DramSpec::lpddr5_6400(64, 8 << 30);
    let arch = PimArch::aim(&spec.topology);
    let m = MatrixConfig::new(4096, 14336, DType::F16);
    c.bench_function("select_mapping", |b| {
        b.iter(|| black_box(select_mapping_2mb(black_box(&m), spec.topology, &arch).unwrap()))
    });
}

fn bench_dram_scheduler(c: &mut Criterion) {
    let spec = DramSpec::lpddr5_6400(16, 256 << 20);
    let mut g = c.benchmark_group("dram_scheduler");
    let n = 4096u64;
    g.throughput(Throughput::Elements(n));
    g.bench_function("sequential_stream_4k_requests", |b| {
        b.iter_batched(
            || {
                let mut ch = ChannelSim::new(&spec);
                for i in 0..n {
                    let addr = DramAddress {
                        channel: 0,
                        rank: 0,
                        bank: i % 16,
                        row: i / (16 * 64),
                        column: (i / 16) % 64,
                    };
                    ch.push(Request::read(addr));
                }
                ch
            },
            |mut ch| black_box(ch.run()),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_pim_gemv(c: &mut Criterion) {
    let spec = DramSpec::lpddr5_6400(256, 64 << 30);
    let arch = PimArch::aim(&spec.topology);
    let engine = PimEngine::new(spec.clone(), arch);
    let m = MatrixConfig::new(14336, 4096, DType::F16);
    let d = select_mapping_2mb(&m, spec.topology, &arch).unwrap();
    c.bench_function("pim_gemv_timing", |b| {
        b.iter(|| black_box(engine.gemv(black_box(&m), black_box(&d))))
    });
}

fn bench_paging_path(c: &mut Criterion) {
    let mut pt = PageTable::new();
    for i in 0..64u64 {
        pt.map_huge_pim(i << 21, i << 21, MapId((i % 4) as u8));
    }
    c.bench_function("tlb_translate", |b| {
        let mut tlb = Tlb::new(64, 4);
        let mut va = 0u64;
        b.iter(|| {
            va = (va + 4096) % (64 << 21);
            black_box(tlb.translate(black_box(va), &pt).unwrap())
        })
    });
}

fn bench_allbank_sim(c: &mut Criterion) {
    let spec = DramSpec::lpddr5_6400(16, 256 << 20);
    c.bench_function("allbank_pim_stream_32rows", |b| {
        b.iter(|| {
            let streams: Vec<facil_dram::PimStream> = (0..2)
                .map(|rank| facil_dram::PimStream {
                    rank,
                    rows: 32,
                    gb_cmds_per_row: 64,
                    macs_per_row: 64,
                    mac_interval: 2,
                    double_buffer: true,
                })
                .collect();
            black_box(facil_dram::run_allbank(&spec, &streams))
        })
    });
}

fn bench_radix_walk(c: &mut Criterion) {
    use facil_core::paging::RadixPageTable;
    let mut t = RadixPageTable::new();
    for i in 0..256u64 {
        t.map_huge(i << 21, i << 21, Some(MapId((i % 16) as u8)));
    }
    c.bench_function("radix_walk_huge", |b| {
        let mut va = 0u64;
        b.iter(|| {
            va = (va + (1 << 21)) % (256 << 21);
            black_box(t.translate(black_box(va + 0x1234)).unwrap())
        })
    });
}

fn bench_serving(c: &mut Criterion) {
    use facil_sim::{serve, InferenceSim, ServingConfig, Strategy};
    use facil_soc::{Platform, PlatformId};
    use facil_workloads::Dataset;
    let sim = InferenceSim::new(Platform::get(PlatformId::Iphone)).expect("default model fits");
    let dataset = Dataset::code_autocompletion_like(1, 32);
    let mut g = c.benchmark_group("serving");
    g.sample_size(10);
    g.bench_function("serve_32_queries", |b| {
        b.iter(|| {
            black_box(serve(
                &sim,
                Strategy::FacilDynamic,
                &dataset,
                ServingConfig { arrival_qps: 0.5, seed: 1 },
            ))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_mapping_translate,
    bench_selector,
    bench_dram_scheduler,
    bench_pim_gemv,
    bench_paging_path,
    bench_allbank_sim,
    bench_radix_walk,
    bench_serving
);
criterion_main!(benches);
