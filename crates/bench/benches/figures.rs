//! Criterion benches of the experiment regenerators — one per paper table
//! and figure — sized down so `cargo bench` completes quickly while still
//! exercising every experiment end to end.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use facil_bench::*;
use facil_soc::PlatformId;

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig02_profile", |b| b.iter(|| black_box(fig02_profile(4))));
    g.bench_function("fig03_pim_speedup", |b| b.iter(|| black_box(fig03_pim_speedup(4))));
    g.bench_function("fig06_relayout", |b| b.iter(|| black_box(fig06_relayout(&[16, 64]))));
    g.bench_function("fig13_ttft", |b| b.iter(|| black_box(fig13_ttft(&[8, 64]))));
    g.bench_function("fig14_ttlt", |b| b.iter(|| black_box(fig14_ttlt(&[(16, 16), (64, 64)]))));
    g.bench_function("fig15_datasets_ttft", |b| b.iter(|| black_box(fig15_datasets(7, 8))));
    g.bench_function("fig16_datasets_ttlt", |b| b.iter(|| black_box(fig16_datasets(7, 8))));
    g.finish();
}

fn bench_ablations(c: &mut Criterion) {
    use facil_bench::ablations::*;
    use facil_workloads::Query;
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g.bench_function("mapping_flexibility", |b| {
        b.iter(|| black_box(ablation_mapping_flexibility(PlatformId::Iphone)))
    });
    g.bench_function("relayout_policy", |b| {
        b.iter(|| black_box(ablation_relayout_policy(Query { prefill: 8, decode: 4 })))
    });
    g.bench_function("cosched", |b| b.iter(|| black_box(ablation_cosched(PlatformId::Iphone))));
    g.bench_function("energy", |b| b.iter(|| black_box(ablation_energy(64))));
    g.bench_function("pim_style", |b| b.iter(|| black_box(ablation_pim_style())));
    g.finish();
}

fn bench_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables");
    g.sample_size(10);
    g.bench_function("table1_hugepage", |b| b.iter(|| black_box(table1_hugepage(&[2.0], &[0.45]))));
    g.bench_function("table3_gemm_slowdown", |b| {
        b.iter(|| black_box(table3_gemm_slowdown(&[PlatformId::Iphone], &[16])))
    });
    g.finish();
}

criterion_group!(benches, bench_figures, bench_tables, bench_ablations);
criterion_main!(benches);
