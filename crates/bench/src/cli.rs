//! Shared command-line conventions for the `src/bin/` bench binaries.
//!
//! Every binary accepts the same observability flags on top of its own
//! arguments:
//!
//! * `--json` — machine-readable output: tagged experiment JSONL lines
//!   (where the binary has per-run output) plus one
//!   [`RunManifest`] record, and no tables;
//! * `--out <path>` — append the run manifest to `<path>` (JSONL) instead
//!   of printing it to stdout;
//! * `--seed <n>` — override the binary's default RNG seed;
//! * `--trace <path>` — write a Chrome/Perfetto `trace_event` JSON file
//!   of the run, openable in `ui.perfetto.dev` (binaries that trace:
//!   `serving_v2`, `chaos`, `trace_replay`);
//! * `--smoke` — shrink the workload for CI smoke runs.
//!
//! Flags the module does not know are handed back to the binary untouched,
//! so binaries with positional arguments (`trace_replay`) keep their own
//! parsing.

use facil_telemetry::{JsonWriter, RingSink, RunManifest};

/// Common flags shared by the bench binaries.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BenchCli {
    /// Emit machine-readable JSON instead of tables (`--json`).
    pub json: bool,
    /// Shrink the workload for CI smoke runs (`--smoke`).
    pub smoke: bool,
    /// Seed override (`--seed <n>`).
    pub seed: Option<u64>,
    /// Run-manifest destination (`--out <path>`).
    pub out: Option<String>,
    /// Chrome-trace destination (`--trace <path>`).
    pub trace: Option<String>,
}

impl BenchCli {
    /// Parse the common flags out of `args`, returning them together with
    /// the remaining binary-specific arguments in their original order.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when a flag that takes a value is
    /// missing one, or when `--seed` is not an unsigned integer.
    pub fn try_parse(
        args: impl IntoIterator<Item = String>,
    ) -> std::result::Result<(Self, Vec<String>), String> {
        let mut cli = BenchCli::default();
        let mut rest = Vec::new();
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--json" => cli.json = true,
                "--smoke" => cli.smoke = true,
                "--seed" => {
                    let v = it.next().ok_or("--seed needs a value")?;
                    cli.seed = Some(v.parse().map_err(|e| format!("bad --seed {v:?}: {e}"))?);
                }
                "--out" => cli.out = Some(it.next().ok_or("--out needs a path")?),
                "--trace" => cli.trace = Some(it.next().ok_or("--trace needs a path")?),
                _ => rest.push(a),
            }
        }
        Ok((cli, rest))
    }

    /// Parse from [`std::env::args`], exiting with status 2 on a bad flag.
    pub fn parse() -> (Self, Vec<String>) {
        match Self::try_parse(std::env::args().skip(1)) {
            Ok(parsed) => parsed,
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        }
    }

    /// The run seed: `--seed` when given, the binary's default otherwise.
    pub fn seed_or(&self, default: u64) -> u64 {
        self.seed.unwrap_or(default)
    }

    /// Whether a Chrome trace was requested (`--trace`).
    pub fn wants_trace(&self) -> bool {
        self.trace.is_some()
    }

    /// Emit the run manifest: appended to `--out` when given, printed to
    /// stdout under `--json`, dropped otherwise (human table mode).
    pub fn emit_manifest(&self, m: &RunManifest) {
        let line = m.to_json_line();
        match &self.out {
            Some(path) => {
                use std::io::Write;
                let written = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)
                    .and_then(|mut f| writeln!(f, "{line}"));
                if let Err(e) = written {
                    eprintln!("cannot write manifest to {path}: {e}");
                    std::process::exit(1);
                }
            }
            None if self.json => println!("{line}"),
            None => {}
        }
    }

    /// Write `sink` as a Chrome `trace_event` file to `--trace`, if given.
    /// Progress goes to stderr so `--json` stdout stays parseable.
    pub fn write_trace(&self, sink: &RingSink) {
        let Some(path) = &self.trace else { return };
        if let Err(e) = std::fs::write(path, sink.to_chrome_json()) {
            eprintln!("cannot write trace to {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("trace: {} events -> {path} (open in ui.perfetto.dev)", sink.len());
        if sink.dropped() > 0 {
            eprintln!("trace: ring full, oldest {} events dropped", sink.dropped());
        }
    }
}

/// Print one tagged experiment line under `--json`:
/// `{"experiment":<name>,<params...>,"report":<report>}`.
///
/// `params` values and `report_json` are raw, already-serialized JSON
/// fragments (use [`facil_telemetry::json::number`] /
/// [`facil_telemetry::json::escaped`] for scalars). A no-op without
/// `--json`, so table-mode runs stay clean.
pub fn emit_run(cli: &BenchCli, experiment: &str, params: &[(&str, &str)], report_json: &str) {
    if !cli.json {
        return;
    }
    let mut w = JsonWriter::with_capacity(report_json.len() + 128);
    w.begin_object().field_str("experiment", experiment);
    for (k, v) in params {
        w.field_raw(k, v);
    }
    w.field_raw("report", report_json);
    w.end_object();
    println!("{}", w.finish());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> (BenchCli, Vec<String>) {
        BenchCli::try_parse(args.iter().map(|s| s.to_string())).expect("valid args")
    }

    #[test]
    fn common_flags_are_split_from_binary_args() {
        let (cli, rest) = parse(&[
            "trace.txt",
            "--json",
            "--seed",
            "7",
            "--platform",
            "jetson",
            "--trace",
            "t.json",
            "--smoke",
            "--out",
            "runs.jsonl",
        ]);
        assert!(cli.json && cli.smoke);
        assert_eq!(cli.seed, Some(7));
        assert_eq!(cli.out.as_deref(), Some("runs.jsonl"));
        assert_eq!(cli.trace.as_deref(), Some("t.json"));
        assert_eq!(rest, vec!["trace.txt", "--platform", "jetson"]);
    }

    #[test]
    fn defaults_are_off() {
        let (cli, rest) = parse(&[]);
        assert_eq!(cli, BenchCli::default());
        assert!(rest.is_empty());
        assert!(!cli.wants_trace());
        assert_eq!(cli.seed_or(42), 42);
    }

    #[test]
    fn bad_or_missing_values_are_errors() {
        assert!(BenchCli::try_parse(["--seed".to_string()]).is_err());
        assert!(BenchCli::try_parse(["--seed".to_string(), "x".to_string()]).is_err());
        assert!(BenchCli::try_parse(["--out".to_string()]).is_err());
        assert!(BenchCli::try_parse(["--trace".to_string()]).is_err());
    }

    #[test]
    fn seed_override_wins() {
        let (cli, _) = parse(&["--seed", "11"]);
        assert_eq!(cli.seed_or(42), 11);
    }
}
