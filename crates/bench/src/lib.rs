//! # facil-bench
//!
//! Experiment regenerators for every table and figure of the FACIL
//! (HPCA 2025) evaluation. Each `fig*`/`table*` function returns structured
//! results; the matching binary under `src/bin/` prints them in the paper's
//! row/series format, and the Criterion benches under `benches/` time them.
//!
//! | Paper artifact | Function | Binary |
//! |---|---|---|
//! | Fig. 2(a)/(b) | [`fig02_profile`] | `fig02_profile` |
//! | Fig. 3 | [`fig03_pim_speedup`] | `fig03_pim_speedup` |
//! | Fig. 6 | [`fig06_relayout`] | `fig06_relayout` |
//! | Table I | [`table1_hugepage`] | `table1_hugepage` |
//! | Table III | [`table3_gemm_slowdown`] | `table3_gemm_slowdown` |
//! | Fig. 13 | [`fig13_ttft`] | `fig13_ttft` |
//! | Fig. 14 | [`fig14_ttlt`] | `fig14_ttlt` |
//! | Fig. 15 | [`fig15_datasets`] | `fig15_datasets_ttft` |
//! | Fig. 16 | [`fig16_datasets`] | `fig16_datasets_ttlt` |
//!
//! Every binary shares the observability flags of [`cli::BenchCli`]
//! (`--json`, `--out`, `--seed`, `--trace`, `--smoke`) and emits one
//! schema-versioned [`facil_telemetry::RunManifest`] record per run.

#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod ablations;
pub mod cli;

pub use cli::{emit_run, BenchCli};

use facil_core::paging::{LoadCostModel, PhysicalMemory};
use facil_core::{DType, MatrixConfig};
use facil_llm::ModelConfig;
use facil_sim::{geomean_speedup, pool, run_dataset, InferenceSim, Strategy};
use facil_soc::{gemm_layout_slowdown, Platform, PlatformId};
use facil_workloads::{geomean, Dataset};

/// Pretty-print a table with a header row.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!("{}", fmt_row(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>()));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

// ---------------------------------------------------------------------------
// Fig. 2 — decode-phase profiling on the SoC (Jetson, Llama3-8B)
// ---------------------------------------------------------------------------

/// One GEMV dimension's utilization figures (Fig. 2(b)).
#[derive(Debug, Clone)]
pub struct GemvUtilRow {
    /// Projection name.
    pub name: &'static str,
    /// Weight shape (out, in).
    pub shape: (u64, u64),
    /// Compute utilization (fraction of peak FLOPS).
    pub compute_util: f64,
    /// Memory-bandwidth utilization (fraction of peak bytes/s).
    pub memory_util: f64,
}

/// Fig. 2 result: decode-time breakdown and GEMV utilizations.
#[derive(Debug, Clone)]
pub struct Fig02Result {
    /// Fraction of decode time in linear (GEMV) operations.
    pub linear_fraction: f64,
    /// Fraction in attention (KV) traffic.
    pub attention_fraction: f64,
    /// Fraction in everything else.
    pub other_fraction: f64,
    /// Per-dimension utilizations.
    pub utils: Vec<GemvUtilRow>,
}

/// Regenerate Fig. 2: decode breakdown + GEMV utilization on the Jetson GPU
/// generating `decode` tokens after a `decode`-token prompt.
pub fn fig02_profile(decode: u64) -> Fig02Result {
    let platform = Platform::get(PlatformId::Jetson);
    let model = ModelConfig::llama3_8b();
    let soc = &platform.soc;

    let mut linear = 0.0;
    let mut attention = 0.0;
    let mut other = 0.0;
    for i in 0..decode {
        let ctx = decode + i;
        for (op, instances) in model.all_linears() {
            linear += soc.gemv_ns(op.out_features, op.in_features, 2) * instances as f64;
        }
        // Attention and element-wise work launch separate kernels per layer
        // on a real device.
        attention += soc.stream_ns(
            (model.kv_read_bytes(ctx) + model.kv_write_bytes_per_token()) / model.layers,
        ) * model.layers as f64;
        // ~4 element-wise kernels (norms, residual, activation) per layer.
        other += soc.stream_ns(model.elementwise_bytes_per_token() / model.layers / 4)
            * (model.layers * 4) as f64;
    }
    let total = linear + attention + other;

    let dims: [(&'static str, (u64, u64)); 4] = [
        ("Q/O proj (4096x4096)", (4096, 4096)),
        ("K/V proj (1024x4096)", (1024, 4096)),
        ("FC1 (14336x4096)", (14336, 4096)),
        ("FC2 (4096x14336)", (4096, 14336)),
    ];
    let utils = dims
        .into_iter()
        .map(|(name, (n, k))| GemvUtilRow {
            name,
            shape: (n, k),
            compute_util: soc.compute_utilization(1, n, k, 2),
            memory_util: soc.bandwidth_utilization(1, n, k, 2),
        })
        .collect();

    Fig02Result {
        linear_fraction: linear / total,
        attention_fraction: attention / total,
        other_fraction: other / total,
        utils,
    }
}

// ---------------------------------------------------------------------------
// Fig. 3 — potential PIM speedup on decode (Jetson, Llama3-8B)
// ---------------------------------------------------------------------------

/// Fig. 3 result: per-executor decode time and speedups.
#[derive(Debug, Clone)]
pub struct Fig03Result {
    /// SoC (GPU) decode time for the scenario, ms.
    pub soc_ms: f64,
    /// Ideal-NPU decode time, ms.
    pub ideal_npu_ms: f64,
    /// PIM-offloaded decode time, ms.
    pub pim_ms: f64,
    /// PIM speedup over the SoC.
    pub speedup_vs_soc: f64,
    /// PIM speedup over the ideal NPU (the paper's 3.32x headline).
    pub speedup_vs_ideal_npu: f64,
}

/// Regenerate Fig. 3: decode of `tokens` tokens after a `tokens`-token
/// prompt on the Jetson, with GEMVs offloaded to PIM vs the GPU vs an ideal
/// NPU.
pub fn fig03_pim_speedup(tokens: u64) -> Fig03Result {
    // Stock platforms are sized for the default model by construction; a
    // failure is a bug in the platform tables, so the regenerator panics.
    #[allow(clippy::expect_used)]
    let sim = InferenceSim::new(Platform::get(PlatformId::Jetson))
        .expect("default model fits the Jetson DRAM");
    let mut soc = 0.0;
    let mut npu = 0.0;
    let mut pim = 0.0;
    for i in 0..tokens {
        let ctx = tokens + i;
        soc += sim.decode_step_soc_ns(ctx);
        npu += sim.decode_step_ideal_npu_ns(ctx);
        pim += sim.decode_step_pim_ns(ctx);
    }
    Fig03Result {
        soc_ms: soc / 1e6,
        ideal_npu_ms: npu / 1e6,
        pim_ms: pim / 1e6,
        speedup_vs_soc: soc / pim,
        speedup_vs_ideal_npu: npu / pim,
    }
}

// ---------------------------------------------------------------------------
// Fig. 6 — TTFT inflation from re-layout (Jetson, Llama3-8B)
// ---------------------------------------------------------------------------

/// One Fig. 6 point.
#[derive(Debug, Clone, Copy)]
pub struct Fig06Point {
    /// Input (prefill) length.
    pub prefill: u64,
    /// TTFT without re-layout (FACIL-style), ms.
    pub ttft_ms: f64,
    /// TTFT with the baseline's re-layout, ms.
    pub ttft_with_relayout_ms: f64,
}

/// Regenerate Fig. 6 on the Jetson for the given prefill lengths.
pub fn fig06_relayout(prefills: &[u64]) -> Vec<Fig06Point> {
    // Stock platforms are sized for the default model by construction.
    #[allow(clippy::expect_used)]
    let sim = InferenceSim::new(Platform::get(PlatformId::Jetson))
        .expect("default model fits the Jetson DRAM");
    prefills
        .iter()
        .map(|&p| Fig06Point {
            prefill: p,
            ttft_ms: sim.prefill_ns(Strategy::FacilStatic, p).0 / 1e6,
            ttft_with_relayout_ms: sim.prefill_ns(Strategy::HybridStatic, p).0 / 1e6,
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Table I — huge-page model load time vs utilization x FMFI
// ---------------------------------------------------------------------------

/// One Table I cell.
#[derive(Debug, Clone, Copy)]
pub struct Table1Cell {
    /// Free memory relative to the model size.
    pub free_ratio: f64,
    /// Free-memory fragmentation index of the prepared state.
    pub fmfi: f64,
    /// Huge-page model load time, seconds.
    pub load_s: f64,
    /// Normalized to the 4 KB-page baseline load.
    pub normalized: f64,
}

/// Regenerate Table I: load a Llama3-8B-sized model (16.2 GB) into huge
/// pages on a 64 GB system prepared at each (free-ratio, FMFI) point.
pub fn table1_hugepage(free_ratios: &[f64], fmfis: &[f64]) -> Vec<Table1Cell> {
    let total: u64 = 64 << 30;
    let model_bytes: u64 = (16.2 * 1e9) as u64;
    let cost = LoadCostModel::default();
    let baseline = cost.base_page_load_time(model_bytes);
    let pages = model_bytes.div_ceil(2 << 20);
    let mut cells = Vec::new();
    for &fmfi in fmfis {
        for &ratio in free_ratios {
            let free = ((model_bytes as f64 * ratio) as u64).min(total);
            let mut pm = PhysicalMemory::new(total);
            pm.fragment_to(total - free, fmfi);
            let achieved_fmfi = pm.fmfi();
            for _ in 0..pages {
                // Every Table I point prepares >= 1.1x the model size free,
                // so huge-page allocation cannot run out.
                #[allow(clippy::expect_used)]
                pm.alloc_huge().expect("free >= 1.1x model size");
            }
            let load = cost.huge_page_load_time(model_bytes, &pm.stats());
            cells.push(Table1Cell {
                free_ratio: ratio,
                fmfi: achieved_fmfi,
                load_s: load,
                normalized: load / baseline,
            });
        }
    }
    cells
}

// ---------------------------------------------------------------------------
// Table III — GEMM slowdown on the PIM-optimized layout
// ---------------------------------------------------------------------------

/// One Table III row: a weight group on a platform across prefill lengths.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Platform.
    pub platform: PlatformId,
    /// Weight-group label ("Q/O Proj.", "FC1", ...).
    pub group: &'static str,
    /// Slowdown per prefill length (same order as the input slice).
    pub slowdowns: Vec<f64>,
}

/// The weight groups of a platform's model, Table III style.
fn weight_groups(model: &ModelConfig) -> Vec<(&'static str, MatrixConfig)> {
    let kv = model.kv_heads * model.head_dim();
    if model.gated_ffn {
        vec![
            ("Q/O Proj.", MatrixConfig::new(model.hidden, model.hidden, DType::F16)),
            ("K/V Proj.", MatrixConfig::new(kv, model.hidden, DType::F16)),
            ("FC1", MatrixConfig::new(model.intermediate, model.hidden, DType::F16)),
            ("FC2", MatrixConfig::new(model.hidden, model.intermediate, DType::F16)),
        ]
    } else {
        vec![
            ("Q/K/V/O Proj.", MatrixConfig::new(model.hidden, model.hidden, DType::F16)),
            ("FC1", MatrixConfig::new(model.intermediate, model.hidden, DType::F16)),
            ("FC2", MatrixConfig::new(model.hidden, model.intermediate, DType::F16)),
        ]
    }
}

/// Regenerate Table III for the given platforms and prefill lengths.
pub fn table3_gemm_slowdown(platforms: &[PlatformId], prefills: &[u64]) -> Vec<Table3Row> {
    let mut rows = Vec::new();
    for &id in platforms {
        let platform = Platform::get(id);
        let model = ModelConfig::by_name(platform.model_name);
        for (group, matrix) in weight_groups(&model) {
            // Table III sweeps the paper's own weight shapes, which are
            // mappable on every stock platform by construction.
            #[allow(clippy::expect_used)]
            let slowdowns = prefills
                .iter()
                .map(|&p| {
                    gemm_layout_slowdown(&platform.dram, &platform.pim_arch, &matrix, p)
                        .expect("paper weights are mappable")
                        .slowdown
                })
                .collect();
            rows.push(Table3Row { platform: id, group, slowdowns });
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// Fig. 13 — TTFT speedup vs prefill length
// ---------------------------------------------------------------------------

/// Fig. 13 series for one platform.
#[derive(Debug, Clone)]
pub struct Fig13Series {
    /// Platform.
    pub platform: PlatformId,
    /// (prefill, speedup) pairs.
    pub points: Vec<(u64, f64)>,
    /// Geometric mean over the prefill sweep.
    pub geomean: f64,
}

/// Regenerate Fig. 13: FACIL TTFT speedup over the hybrid-static baseline.
/// Platforms sweep concurrently on the [`pool`] workers; the series order
/// (and every number) is identical to a serial sweep.
pub fn fig13_ttft(prefills: &[u64]) -> Vec<Fig13Series> {
    let ids = PlatformId::all();
    pool::par_map(&ids, |&id| {
        // Stock platforms are sized for the default model by construction.
        #[allow(clippy::expect_used)]
        let sim =
            InferenceSim::new(Platform::get(id)).expect("default model fits every stock platform");
        let points: Vec<(u64, f64)> = prefills
            .iter()
            .map(|&p| {
                let base = sim.prefill_ns(Strategy::HybridStatic, p).0;
                let facil = sim.prefill_ns(Strategy::FacilStatic, p).0;
                (p, base / facil)
            })
            .collect();
        let geomean = geomean(points.iter().map(|(_, s)| *s));
        Fig13Series { platform: id, points, geomean }
    })
}

// ---------------------------------------------------------------------------
// Fig. 14 — TTLT speedup vs prefill:decode ratio
// ---------------------------------------------------------------------------

/// Fig. 14 grid for one platform.
#[derive(Debug, Clone)]
pub struct Fig14Series {
    /// Platform.
    pub platform: PlatformId,
    /// ((prefill, decode), speedup) entries.
    pub points: Vec<((u64, u64), f64)>,
}

/// Regenerate Fig. 14: FACIL TTLT speedup over hybrid-static across
/// prefill/decode combinations. Platforms sweep concurrently on the
/// [`pool`] workers with serial-identical results.
pub fn fig14_ttlt(combos: &[(u64, u64)]) -> Vec<Fig14Series> {
    let ids = PlatformId::all();
    pool::par_map(&ids, |&id| {
        // Stock platforms are sized for the default model by construction.
        #[allow(clippy::expect_used)]
        let sim =
            InferenceSim::new(Platform::get(id)).expect("default model fits every stock platform");
        let points = combos
            .iter()
            .map(|&(p, d)| {
                let q = facil_workloads::Query { prefill: p, decode: d };
                let base = sim.run_query(Strategy::HybridStatic, q).ttlt_ns;
                let facil = sim.run_query(Strategy::FacilStatic, q).ttlt_ns;
                ((p, d), base / facil)
            })
            .collect();
        Fig14Series { platform: id, points }
    })
}

// ---------------------------------------------------------------------------
// Figs. 15/16 — real-world-dataset evaluation
// ---------------------------------------------------------------------------

/// One dataset x platform result: speedups of each strategy over
/// hybrid-static.
#[derive(Debug, Clone)]
pub struct DatasetFigRow {
    /// Platform.
    pub platform: PlatformId,
    /// Dataset name.
    pub dataset: String,
    /// SoC-only speedup over hybrid-static.
    pub soc_only: f64,
    /// Hybrid-dynamic speedup over hybrid-static.
    pub hybrid_dynamic: f64,
    /// FACIL (+dynamic) speedup over hybrid-static.
    pub facil: f64,
}

/// Shared implementation of Figs. 15 (TTFT) and 16 (TTLT). Platform x
/// dataset cells sweep concurrently on the [`pool`] workers; the row order
/// matches the serial nesting (platforms outer, datasets inner).
fn dataset_fig(ttft: bool, seed: u64, queries: usize) -> Vec<DatasetFigRow> {
    let per_platform = pool::par_map(&PlatformId::all(), |&id| {
        // Stock platforms are sized for the default model by construction.
        #[allow(clippy::expect_used)]
        let sim =
            InferenceSim::new(Platform::get(id)).expect("default model fits every stock platform");
        [Dataset::alpaca_like(seed, queries), Dataset::code_autocompletion_like(seed, queries)]
            .into_iter()
            .map(|dataset| {
                let base = run_dataset(&sim, Strategy::HybridStatic, &dataset);
                let soc = run_dataset(&sim, Strategy::SocOnly, &dataset);
                let dynamic = run_dataset(&sim, Strategy::HybridDynamic, &dataset);
                let facil = run_dataset(&sim, Strategy::FacilDynamic, &dataset);
                DatasetFigRow {
                    platform: id,
                    dataset: dataset.name.clone(),
                    soc_only: geomean_speedup(&base, &soc, ttft),
                    hybrid_dynamic: geomean_speedup(&base, &dynamic, ttft),
                    facil: geomean_speedup(&base, &facil, ttft),
                }
            })
            .collect::<Vec<_>>()
    });
    per_platform.into_iter().flatten().collect()
}

/// Regenerate Fig. 15 (TTFT on the two datasets).
pub fn fig15_datasets(seed: u64, queries: usize) -> Vec<DatasetFigRow> {
    dataset_fig(true, seed, queries)
}

/// Regenerate Fig. 16 (TTLT on the two datasets).
pub fn fig16_datasets(seed: u64, queries: usize) -> Vec<DatasetFigRow> {
    dataset_fig(false, seed, queries)
}

/// Geometric mean of the FACIL column over platforms, per dataset — the
/// paper's 2.37x / 2.63x (Fig. 15) and 1.20x (Fig. 16) headline numbers.
pub fn headline_geomeans(rows: &[DatasetFigRow]) -> Vec<(String, f64)> {
    let mut names: Vec<String> = rows.iter().map(|r| r.dataset.clone()).collect();
    names.sort();
    names.dedup();
    names
        .into_iter()
        .map(|name| {
            let g = geomean(rows.iter().filter(|r| r.dataset == name).map(|r| r.facil));
            (name, g)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig02_is_linear_dominated() {
        let r = fig02_profile(8);
        assert!(r.linear_fraction > 0.9, "paper: >90% linear, got {}", r.linear_fraction);
        let sum = r.linear_fraction + r.attention_fraction + r.other_fraction;
        assert!((sum - 1.0).abs() < 1e-9);
        for u in &r.utils {
            assert!(u.compute_util < 0.01, "{}: {}", u.name, u.compute_util);
            assert!(u.memory_util > 0.7, "{}: {}", u.name, u.memory_util);
        }
    }

    #[test]
    fn fig03_orders_executors() {
        let r = fig03_pim_speedup(16);
        assert!(r.pim_ms < r.ideal_npu_ms);
        assert!(r.ideal_npu_ms < r.soc_ms);
        assert!(r.speedup_vs_ideal_npu > 1.5, "got {}", r.speedup_vs_ideal_npu);
    }

    #[test]
    fn fig06_relayout_inflates_ttft_about_3x() {
        let pts = fig06_relayout(&[64]);
        let ratio = pts[0].ttft_with_relayout_ms / pts[0].ttft_ms;
        assert!((2.0..4.0).contains(&ratio), "paper: ~3x, got {ratio}");
    }

    #[test]
    fn fig13_shapes() {
        let series = fig13_ttft(&[8, 128]);
        for s in &series {
            assert!(
                s.points[0].1 >= s.points[1].1,
                "{}: speedup must not grow with prefill",
                s.platform
            );
            assert!(s.geomean > 1.2, "{}: geomean {}", s.platform, s.geomean);
        }
        // Paper: IdeaPad is the weakest platform.
        let ideapad = series.iter().find(|s| s.platform == PlatformId::Ideapad).unwrap();
        for s in &series {
            assert!(s.geomean >= ideapad.geomean - 1e-9, "IdeaPad must be lowest");
        }
    }

    #[test]
    fn table1_monotone_in_fmfi_and_pressure() {
        let cells = table1_hugepage(&[2.5, 1.1], &[0.05, 0.75]);
        let get = |ratio: f64, fmfi_lo: bool| {
            cells
                .iter()
                .find(|c| (c.free_ratio - ratio).abs() < 1e-9 && ((c.fmfi < 0.4) == fmfi_lo))
                .unwrap()
                .load_s
        };
        assert!(get(1.1, false) >= get(1.1, true));
        assert!(get(2.5, false) >= get(2.5, true));
        for c in &cells {
            assert!(c.normalized >= 1.0);
            assert!(c.normalized < 2.5, "paper worst case 1.90x, got {}", c.normalized);
        }
    }
}
