//! Ablations of the design choices behind FACIL, beyond the paper's own
//! tables/figures:
//!
//! * **mapping flexibility** — FACIL's per-page MapID selection vs one
//!   fixed global PIM mapping (IANUS-style): forced partitioning costs
//!   partial-sum reductions and extra output traffic;
//! * **re-layout policy** — the paper's footnote 2: on-demand vs
//!   all-at-once re-layout;
//! * **co-scheduling policy** — paper Section V-C: shared ranks vs a
//!   reserved rank under concurrent SoC traffic;
//! * **PIM microarchitecture** — global-buffer double buffering and MAC
//!   issue rate;
//! * **decode energy** — SoC vs PIM DRAM-side energy per token;
//! * **quantization** — fp16 vs int8 weights under the same machinery.

use facil_core::{
    decision_with_map_id, select_mapping_2mb, DType, MatrixConfig, PimArch, HUGE_PAGE_BITS,
};
use facil_dram::EnergyModel;
use facil_llm::ModelConfig;
use facil_pim::{PimEngine, PimTimingConfig};
use facil_sim::{
    decode_energy_per_token, run_cosched, CoschedConfig, CoschedPolicy, InferenceSim, Strategy,
};
use facil_soc::{Platform, PlatformId};
use facil_workloads::Query;

/// One row of the mapping-flexibility ablation.
#[derive(Debug, Clone)]
pub struct FlexRow {
    /// Weight name.
    pub name: &'static str,
    /// Partitions under the flexible selector.
    pub flexible_partitions: u64,
    /// Partitions under a fixed global MapID 0.
    pub fixed_partitions: u64,
    /// PIM GEMV time under the flexible mapping, µs.
    pub flexible_us: f64,
    /// PIM GEMV time under the fixed mapping, µs.
    pub fixed_us: f64,
    /// fixed / flexible.
    pub slowdown: f64,
}

/// Flexible per-matrix MapIDs vs one global PIM mapping (MapID 0), on the
/// iPhone platform's model.
pub fn ablation_mapping_flexibility(id: PlatformId) -> Vec<FlexRow> {
    let platform = Platform::get(id);
    let model = ModelConfig::by_name(platform.model_name);
    let topo = platform.dram.topology;
    let engine = PimEngine::new(platform.dram.clone(), platform.pim_arch);
    let mut rows = Vec::new();
    for (op, _) in model.all_linears() {
        let m = MatrixConfig::new(op.out_features, op.in_features, DType::F16);
        // Stock-platform weights are mappable by construction; a failure
        // here is a bug in the platform tables, so the regenerator panics.
        #[allow(clippy::expect_used)]
        let flexible = select_mapping_2mb(&m, topo, &platform.pim_arch).expect("mappable");
        #[allow(clippy::expect_used)]
        let fixed = decision_with_map_id(&m, topo, &platform.pim_arch, 0, HUGE_PAGE_BITS)
            .expect("mappable");
        let tf = engine.gemv(&m, &flexible).time_ns;
        let tx = engine.gemv(&m, &fixed).time_ns;
        rows.push(FlexRow {
            name: op.name,
            flexible_partitions: flexible.partitions,
            fixed_partitions: fixed.partitions,
            flexible_us: tf / 1e3,
            fixed_us: tx / 1e3,
            slowdown: tx / tf,
        });
    }
    rows
}

/// Re-layout policy (paper footnote 2): TTLT of on-demand vs all-at-once,
/// per platform, for one P/D point. Platforms run concurrently on the
/// [`facil_sim::pool`] workers with serial-identical results.
pub fn ablation_relayout_policy(q: Query) -> Vec<(PlatformId, f64, f64)> {
    facil_sim::pool::par_map(&PlatformId::all(), |&id| {
        // Stock platforms are sized for the default model by construction.
        #[allow(clippy::expect_used)]
        let sim =
            InferenceSim::new(Platform::get(id)).expect("default model fits every stock platform");
        let on_demand = sim.run_query(Strategy::HybridStatic, q).ttlt_ns / 1e6;
        let all_at_once = sim.run_query_all_at_once(q).ttlt_ns / 1e6;
        (id, on_demand, all_at_once)
    })
}

/// Co-scheduling policy sweep: (policy, soc_rate, pim_throughput,
/// soc_latency_cycles, row_reopens).
pub fn ablation_cosched(id: PlatformId) -> Vec<(CoschedPolicy, f64, f64, f64, u64)> {
    let platform = Platform::get(id);
    let mut out = Vec::new();
    for policy in [CoschedPolicy::Shared, CoschedPolicy::ReservedRank] {
        for rate in [0.0, 0.003, 0.01, 0.05, 0.2] {
            let r = run_cosched(
                &platform.dram,
                CoschedConfig { policy, soc_rate: rate, ..Default::default() },
            );
            out.push((policy, rate, r.pim_throughput, r.soc_avg_latency, r.pim_row_reopens));
        }
    }
    out
}

/// PIM microarchitecture sensitivity: GEMV time (µs) for a Llama3 FC1
/// weight under (double-buffered?, MAC interval) combinations on the
/// Jetson.
pub fn ablation_pim_microarch() -> Vec<(bool, u64, f64)> {
    let platform = Platform::get(PlatformId::Jetson);
    let m = MatrixConfig::new(14336, 4096, DType::F16);
    // A fixed paper shape on a stock platform is mappable by construction.
    #[allow(clippy::expect_used)]
    let d = select_mapping_2mb(&m, platform.dram.topology, &platform.pim_arch).expect("mappable");
    let mut out = Vec::new();
    for double_buffer in [true, false] {
        for mac_interval in [2u64, 4, 8] {
            let engine = PimEngine::with_config(
                platform.dram.clone(),
                platform.pim_arch,
                PimTimingConfig {
                    mac_interval,
                    gb_double_buffer: double_buffer,
                    ..Default::default()
                },
            );
            out.push((double_buffer, mac_interval, engine.gemv(&m, &d).time_ns / 1e3));
        }
    }
    out
}

/// DRAM-side decode energy per token: (platform, soc_uj, pim_uj, ratio).
/// Platforms run concurrently on the [`facil_sim::pool`] workers.
pub fn ablation_energy(ctx: u64) -> Vec<(PlatformId, f64, f64, f64)> {
    let e = EnergyModel::default();
    facil_sim::pool::par_map(&PlatformId::all(), |&id| {
        let p = Platform::get(id);
        let m = ModelConfig::by_name(p.model_name);
        let t = decode_energy_per_token(&p, &m, ctx, &e);
        (id, t.soc_uj, t.pim_uj, t.ratio)
    })
}

/// AiM-style vs HBM-PIM-style mapping of the same matrix on a
/// single-channel LPDDR5 system: (style name, MapID, scheme layout,
/// GEMV time µs).
pub fn ablation_pim_style() -> Vec<(String, u8, String, f64)> {
    let spec = facil_dram::DramSpec::lpddr5_6400(16, 2 << 30);
    let topo = spec.topology;
    let m = MatrixConfig::new(1024, 1024, DType::F16);
    [PimArch::aim(&topo), PimArch::hbm_pim(&topo)]
        .into_iter()
        .map(|arch| {
            // A fixed square shape maps under every built-in PIM style.
            #[allow(clippy::expect_used)]
            let d = select_mapping_2mb(&m, topo, &arch).expect("mappable");
            let engine = PimEngine::new(spec.clone(), arch);
            let t = engine.gemv(&m, &d).time_ns / 1e3;
            (arch.style.to_string(), d.map_id.0, d.scheme.to_string(), t)
        })
        .collect()
}

/// End-to-end weight-only quantization: fp16 vs int8 storage on one
/// platform — (dtype, relayout ms, FACIL TTFT ms @P32, TTFT speedup vs
/// hybrid-static, PIM ms/token).
pub fn ablation_quantized_e2e(id: PlatformId) -> Vec<(DType, f64, f64, f64, f64)> {
    let platform = Platform::get(id);
    let model = ModelConfig::by_name(platform.model_name);
    [DType::F16, DType::I8]
        .into_iter()
        .map(|dtype| {
            // Both dtype variants of the stock model fit the platform DRAM.
            #[allow(clippy::expect_used)]
            let sim = InferenceSim::with_model_and_dtype(platform.clone(), model.clone(), dtype)
                .expect("ablation models fit the platform DRAM");
            let base = sim.prefill_ns(Strategy::HybridStatic, 32).0;
            let facil = sim.prefill_ns(Strategy::FacilStatic, 32).0;
            (
                dtype,
                sim.relayout_ns() / 1e6,
                facil / 1e6,
                base / facil,
                sim.decode_step_pim_ns(64) / 1e6,
            )
        })
        .collect()
}

/// Weight quantization: MapID, partitions and PIM GEMV time for fp16 vs
/// int8 versions of the same weight on one platform.
pub fn ablation_dtype(id: PlatformId) -> Vec<(DType, u8, u64, f64)> {
    let platform = Platform::get(id);
    let model = ModelConfig::by_name(platform.model_name);
    let engine = PimEngine::new(platform.dram.clone(), platform.pim_arch);
    [DType::F16, DType::I8]
        .into_iter()
        .map(|dtype| {
            let m = MatrixConfig::new(model.hidden, model.hidden, dtype);
            // Stock-model shapes are mappable on their own platform.
            #[allow(clippy::expect_used)]
            let d = select_mapping_2mb(&m, platform.dram.topology, &platform.pim_arch)
                .expect("mappable");
            let t = engine.gemv(&m, &d).time_ns / 1e3;
            (dtype, d.map_id.0, d.partitions, t)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_global_mapping_is_never_faster() {
        for row in ablation_mapping_flexibility(PlatformId::Iphone) {
            assert!(row.slowdown >= 0.999, "{}: {}", row.name, row.slowdown);
            assert!(row.fixed_partitions >= row.flexible_partitions, "{}", row.name);
        }
        // At least one weight must actually suffer from the fixed mapping.
        let any_worse =
            ablation_mapping_flexibility(PlatformId::Iphone).iter().any(|r| r.slowdown > 1.005);
        assert!(any_worse, "flexibility must matter for some weight");
    }

    #[test]
    fn all_at_once_is_never_cheaper() {
        for (id, on_demand, all_at_once) in
            ablation_relayout_policy(Query { prefill: 16, decode: 16 })
        {
            assert!(all_at_once > on_demand, "{id}");
        }
    }

    #[test]
    fn energy_favors_pim_everywhere() {
        for (id, soc, pim, ratio) in ablation_energy(64) {
            assert!(soc > pim, "{id}");
            assert!(ratio > 1.0, "{id}");
        }
    }

    #[test]
    fn int8_halves_the_row_and_speeds_gemv() {
        let rows = ablation_dtype(PlatformId::Iphone);
        let (f16, i8) = (&rows[0], &rows[1]);
        assert!(i8.3 < f16.3, "int8 GEMV must be faster: {} vs {}", i8.3, f16.3);
        assert!(i8.1 <= f16.1, "int8 MapID must not grow");
    }

    #[test]
    fn quantization_shrinks_relayout_but_facil_still_wins() {
        let rows = ablation_quantized_e2e(PlatformId::Iphone);
        let (f16, i8) = (&rows[0], &rows[1]);
        assert!(i8.1 < f16.1, "int8 relayout smaller");
        assert!(i8.4 < f16.4, "int8 PIM decode faster");
        assert!(i8.3 > 1.2, "FACIL still wins TTFT at int8: {}", i8.3);
    }

    #[test]
    fn pim_styles_both_map_and_run() {
        let rows = ablation_pim_style();
        assert_eq!(rows.len(), 2);
        assert!(rows[0].2.contains("AiM"));
        assert!(rows[1].2.contains("HBM-PIM"));
        assert!(rows.iter().all(|r| r.3 > 0.0));
    }

    #[test]
    fn microarch_table_is_monotone() {
        let t = ablation_pim_microarch();
        // Slower MAC interval is never faster.
        let get = |db: bool, mi: u64| t.iter().find(|x| x.0 == db && x.1 == mi).unwrap().2;
        assert!(get(true, 2) <= get(true, 4));
        assert!(get(true, 4) <= get(true, 8));
        assert!(get(true, 2) <= get(false, 2));
    }
}
