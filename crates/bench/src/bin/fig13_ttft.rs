//! Regenerates paper Fig. 13: TTFT speedup of FACIL over the SoC-PIM
//! hybrid-static baseline across prefill lengths.

use facil_bench::{fig13_ttft, print_table};

fn main() {
    let prefills = [8, 16, 32, 64, 128];
    let series = fig13_ttft(&prefills);
    let rows: Vec<Vec<String>> = series
        .iter()
        .map(|s| {
            let mut v = vec![s.platform.to_string()];
            v.extend(s.points.iter().map(|(_, sp)| format!("{sp:.2}x")));
            v.push(format!("{:.2}x", s.geomean));
            v
        })
        .collect();
    print_table(
        "Fig. 13: FACIL TTFT speedup vs hybrid-static",
        &["platform", "P8", "P16", "P32", "P64", "P128", "geomean"],
        &rows,
    );
    println!("\npaper geomeans: Jetson 2.89x, MacBook 2.19x, IdeaPad 1.55x, iPhone 2.36x");
}
