//! Regenerates paper Fig. 13: TTFT speedup of FACIL over the SoC-PIM
//! hybrid-static baseline across prefill lengths.

use facil_bench::{fig13_ttft, print_table, BenchCli};
use facil_telemetry::RunManifest;

fn main() {
    let (cli, _) = BenchCli::parse();
    let prefills: &[u64] = if cli.smoke { &[8, 64] } else { &[8, 16, 32, 64, 128] };
    let series = fig13_ttft(prefills);
    if !cli.json {
        let rows: Vec<Vec<String>> = series
            .iter()
            .map(|s| {
                let mut v = vec![s.platform.to_string()];
                v.extend(s.points.iter().map(|(_, sp)| format!("{sp:.2}x")));
                v.push(format!("{:.2}x", s.geomean));
                v
            })
            .collect();
        let mut headers = vec!["platform".to_string()];
        headers.extend(prefills.iter().map(|p| format!("P{p}")));
        headers.push("geomean".to_string());
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        print_table("Fig. 13: FACIL TTFT speedup vs hybrid-static", &header_refs, &rows);
        println!("\npaper geomeans: Jetson 2.89x, MacBook 2.19x, IdeaPad 1.55x, iPhone 2.36x");
    }

    let sweep: Vec<String> = prefills.iter().map(u64::to_string).collect();
    let mut manifest = RunManifest::new("fig13_ttft", cli.seed_or(0));
    manifest.config_raw("prefills", &format!("[{}]", sweep.join(",")));
    for s in &series {
        manifest.result_num(&format!("geomean_{}", s.platform), s.geomean);
    }
    cli.emit_manifest(&manifest);
}
