//! Replay a physical-address trace file through a chosen PA-to-DA mapping
//! on the cycle-level DRAM simulator and report bandwidth, row-buffer and
//! energy statistics.
//!
//! Usage:
//! ```text
//! trace_replay <trace-file> [--platform jetson|macbook|ideapad|iphone]
//!              [--mapping conventional|hashed|pim:<mapid>]
//!              [--json] [--out <path>] [--trace <path>]
//! ```
//! Trace format: one access per line, `R <addr>` or `W <addr>` (decimal or
//! 0x-hex); `#` starts a comment. Without a file argument a built-in demo
//! trace is used. `--trace <path>` re-exports the scheduled DRAM commands
//! as a Chrome/Perfetto trace with one track per bank.

use facil_bench::BenchCli;
use facil_core::{MappingScheme, HUGE_PAGE_BITS};
use facil_dram::{parse_trace, replay_on, DramSystem, EnergyModel, TraceEntry, TraceOptions};
use facil_soc::{Platform, PlatformId};
use facil_telemetry::{RingSink, RunManifest};

fn platform_by_name(name: &str) -> PlatformId {
    match name {
        "jetson" => PlatformId::Jetson,
        "macbook" => PlatformId::Macbook,
        "ideapad" => PlatformId::Ideapad,
        "iphone" => PlatformId::Iphone,
        other => {
            eprintln!("unknown platform {other:?} (jetson|macbook|ideapad|iphone)");
            std::process::exit(2);
        }
    }
}

fn main() {
    let (cli, rest) = BenchCli::parse();
    let mut file = None;
    let mut platform = PlatformId::Iphone;
    let mut mapping = "conventional".to_string();
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--platform" => {
                platform = platform_by_name(it.next().map(String::as_str).unwrap_or(""))
            }
            "--mapping" => mapping = it.next().cloned().unwrap_or_default(),
            "--help" | "-h" => {
                println!(
                    "trace_replay <trace-file> [--platform P] \
                     [--mapping conventional|hashed|pim:<id>] [--json] [--out PATH] \
                     [--trace PATH]"
                );
                return;
            }
            other => file = Some(other.to_string()),
        }
    }

    let p = Platform::get(platform);
    let trace: Vec<TraceEntry> = match &file {
        Some(path) => {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(2);
            });
            parse_trace(&text).unwrap_or_else(|(line, msg)| {
                eprintln!("{path}:{line}: {msg}");
                std::process::exit(2);
            })
        }
        None => {
            if !cli.json {
                println!("(no trace file given; replaying a built-in 1 MB sequential demo trace)");
            }
            facil_dram::sequential_trace(0, 32768, 32, facil_dram::Op::Read)
        }
    };
    if trace.is_empty() {
        eprintln!("trace is empty");
        std::process::exit(2);
    }

    let scheme = match mapping.as_str() {
        "conventional" => MappingScheme::conventional(p.dram.topology),
        "hashed" => MappingScheme::conventional(p.dram.topology).with_bank_hash(),
        m if m.starts_with("pim:") => {
            let id: u8 = m[4..].parse().unwrap_or_else(|_| {
                eprintln!("bad MapID in {m:?}");
                std::process::exit(2);
            });
            MappingScheme::pim_optimized(p.dram.topology, &p.pim_arch, id, HUGE_PAGE_BITS)
                .unwrap_or_else(|e| {
                    eprintln!("cannot build PIM mapping: {e}");
                    std::process::exit(2);
                })
        }
        other => {
            eprintln!("unknown mapping {other:?}");
            std::process::exit(2);
        }
    };

    let accesses = trace.len();
    let mut sys = DramSystem::new(&p.dram);
    if cli.wants_trace() {
        sys.enable_logging();
    }
    let res = replay_on(&mut sys, &scheme, trace, TraceOptions::default()).unwrap_or_else(|e| {
        eprintln!("trace replay failed: {e}");
        std::process::exit(2);
    });
    if cli.wants_trace() {
        let mut sink = RingSink::new(1 << 20);
        sys.export_trace(&mut sink);
        cli.write_trace(&sink);
    }
    let energy = EnergyModel::default().energy(&p.dram, &res.stats, res.elapsed_ns);
    let utilization = res.utilization(p.dram.peak_bandwidth_bytes_per_sec());

    if !cli.json {
        println!("platform : {} ({})", p.id, p.dram.kind);
        println!("mapping  : {scheme}");
        println!("accesses : {accesses}");
        println!("elapsed  : {:.3} us", res.elapsed_ns / 1e3);
        println!(
            "bandwidth: {:.2} GB/s ({:.1}% of peak)",
            res.bandwidth_bytes_per_sec / 1e9,
            utilization * 100.0
        );
        println!(
            "rows     : {} hits / {} misses / {} conflicts (hit rate {:.1}%)",
            res.stats.row_hits,
            res.stats.row_misses,
            res.stats.row_conflicts,
            res.stats.hit_rate() * 100.0
        );
        println!(
            "commands : {} ACT, {} PRE, {} REF",
            res.stats.activates, res.stats.precharges, res.stats.refreshes
        );
        println!("energy   : {:.1} uJ total ({:.1} uJ interface)", energy.total_uj(), energy.io_uj);
    }

    let mut manifest = RunManifest::new("trace_replay", cli.seed_or(0));
    manifest
        .config_str("platform", &p.id.to_string())
        .config_str("mapping", &scheme.to_string())
        .config_uint("accesses", accesses as u64);
    manifest
        .result_num("elapsed_us", res.elapsed_ns / 1e3)
        .result_num("bandwidth_gbps", res.bandwidth_bytes_per_sec / 1e9)
        .result_num("utilization", utilization)
        .result_num("hit_rate", res.stats.hit_rate())
        .result_uint("activates", res.stats.activates)
        .result_num("energy_uj", energy.total_uj());
    cli.emit_manifest(&manifest);
}
