//! Cluster-scale serving showcase: hierarchical cells, two-tier routing,
//! tenant QoS, and chaos testing in the `facil-cluster` simulator, as
//! reproducible experiments.
//!
//! 1. **Chaos matrix** — the same diurnal multi-day workload on the same
//!    cluster under escalating fault models: chaos-free baseline, a
//!    hand-scripted correlated scenario (cell outage + partition +
//!    link-delay spike), and a fully seeded chaos schedule. Availability
//!    degrades; the conservation invariant never does.
//! 2. **Tenant QoS** — an interactive class and a KV-quota'd batch class
//!    sharing the cluster: the router sheds the batch overflow explicitly
//!    and keeps the interactive class whole.
//! 3. **SLO-burn autoscaling** — a peak day followed by a quiet day: the
//!    p99-TTFT burn grows the hot cell, the idle cool-down shrinks it
//!    back.
//!
//! Pass `--json` to emit one tagged JSON object per run (JSONL) instead
//! of the tables; `--smoke` shrinks every experiment for CI;
//! `--trace <path>` writes a Chrome/Perfetto trace of the correlated
//! chaos scenario (router dispatch/park/shed instants and per-cell
//! failover/hedge events alongside the device serve tracks).
//!
//! Everything here is deterministic end to end — queries come from the
//! workspace's own `XorShift64Star` and arrivals from closed-form diurnal
//! traces, so repeated runs (at any `FACIL_THREADS`) emit byte-identical
//! JSONL. The committed `BENCH_cluster.json` at the repo root is exactly
//! `cargo run --release -p facil-bench --bin cluster -- --json`.

use std::cell::RefCell;
use std::rc::Rc;

use facil_bench::{emit_run, print_table, BenchCli};
use facil_cluster::{
    run_cluster, run_cluster_traced, AutoscalePolicy, ChaosEvent, ChaosPlan, ChaosRates,
    ClusterConfig, ClusterReport, Tenant,
};
use facil_serve::{DeviceSim, ServeConfig};
use facil_sim::{InferenceSim, XorShift64Star};
use facil_soc::{Platform, PlatformId};
use facil_telemetry::json::escaped;
use facil_telemetry::{RingSink, RunManifest};
use facil_workloads::{ArrivalProcess, Dataset, Query};

/// Deterministic query mix from the workspace RNG (no `rand` dependency,
/// so the committed artifact is stable across toolchains).
fn mixed_queries(seed: u64, n: usize) -> Dataset {
    let mut rng = XorShift64Star::new(seed ^ 0xC1A5_7E12_BE4C_51A9);
    let queries = (0..n)
        .map(|_| Query { prefill: 32 + rng.next_u64() % 224, decode: 16 + rng.next_u64() % 112 })
        .collect();
    Dataset { name: "cluster-mix".into(), queries }
}

/// One day of arrivals whose instantaneous rate follows a raised cosine
/// between `base_qps` and `peak_qps` — built by closed-form accumulation
/// (`dt = 1/rate(t)`), no sampling.
fn diurnal_day(n: usize, base_qps: f64, peak_qps: f64, day_s: f64) -> ArrivalProcess {
    let mut times = Vec::with_capacity(n);
    let mut t = 0.0;
    while times.len() < n {
        let phase = (t / day_s) * std::f64::consts::TAU;
        let rate = base_qps + (peak_qps - base_qps) * 0.5 * (1.0 - phase.cos());
        t += 1.0 / rate.max(1e-6);
        times.push(t);
    }
    ArrivalProcess::Trace { times_s: times }
}

fn conserved_or_die(label: &str, r: &ClusterReport) {
    assert!(
        r.conserved(),
        "{label}: conservation violated (offered {} != completed {} + shed {})",
        r.offered,
        r.completed,
        r.shed
    );
}

fn main() {
    let (cli, _) = BenchCli::parse();
    let seed = cli.seed_or(11);
    let platform = Platform::get(PlatformId::Iphone);
    let sim = InferenceSim::new(platform).expect("default model fits");

    // Cluster shape and workload scale.
    let (cells, devices, max_devices) = if cli.smoke { (2, 2, 3) } else { (4, 3, 4) };
    let (days, per_day, day_s) = if cli.smoke { (2, 24, 30.0) } else { (3, 120, 120.0) };
    let n = days * per_day;
    let dataset = mixed_queries(seed, n);
    // Diurnal multi-day schedule: each day is one closed-form segment,
    // composed into a single replayable trace.
    let day_shapes: Vec<(ArrivalProcess, usize)> = (0..days)
        .map(|d| {
            let peak = 2.0 + d as f64; // every day peaks a little higher
            (diurnal_day(per_day, 0.4, peak, day_s), per_day)
        })
        .collect();
    let arrival = ArrivalProcess::compose(&day_shapes, day_s, seed);
    let span_s = days as f64 * day_s;
    if !cli.json {
        println!(
            "platform: {} | {cells} cells x {devices} devices (cap {max_devices}) | {n} queries \
             over {days} diurnal days{}",
            PlatformId::Iphone,
            if cli.smoke { " (smoke)" } else { "" }
        );
    }

    let base_cfg = ClusterConfig {
        cells,
        devices_per_cell: devices,
        max_devices_per_cell: devices,
        serve: ServeConfig { seed, fmfi: 0.0, ..ServeConfig::default() },
        ..ClusterConfig::default()
    };

    // -- 1. Chaos matrix: escalating fault models ---------------------------
    let outage_at = 0.3 * day_s;
    let correlated = ChaosPlan {
        events: vec![
            ChaosEvent::CellOutage { cell: 0, at_s: outage_at, duration_s: 0.25 * day_s },
            ChaosEvent::Partition { cell: 1, at_s: 0.5 * day_s, duration_s: 0.15 * day_s },
            ChaosEvent::LinkDelay {
                cell: cells - 1,
                at_s: 0.1 * day_s,
                duration_s: 0.2 * day_s,
                extra_s: 0.3,
            },
            ChaosEvent::GrayFailure {
                device: base_cfg.global_index(cells - 1, 0),
                at_s: day_s,
                duration_s: 0.5 * day_s,
                factor: 4.0,
            },
        ],
        ..ChaosPlan::none()
    };
    let storm_rates = ChaosRates {
        cell_outages_per_h: 30.0,
        partitions_per_h: 60.0,
        link_delays_per_h: 120.0,
        gray_failures_per_h: 60.0,
        crashes_per_h: 120.0,
    };
    let seeded = ChaosPlan::seeded(seed, &base_cfg, span_s, &storm_rates);
    let mut rows = Vec::new();
    let mut matrix_availability = Vec::new();
    for (label, plan) in [
        ("chaos-free", ChaosPlan::none()),
        ("correlated", correlated.clone()),
        ("seeded-storm", seeded),
    ] {
        let r = run_cluster(&sim, &dataset, &arrival, &base_cfg, &plan).expect("valid plan");
        conserved_or_die(label, &r);
        emit_run(
            &cli,
            "chaos_matrix",
            &[("scenario", &escaped(label)), ("events", &plan.events.len().to_string())],
            &r.to_json(),
        );
        matrix_availability.push((label, r.availability));
        rows.push(vec![
            label.to_string(),
            plan.events.len().to_string(),
            r.completed.to_string(),
            r.shed.to_string(),
            r.failovers.to_string(),
            r.hedges.to_string(),
            r.deferrals.to_string(),
            format!("{:.4}", r.availability),
            format!("{:.0}", r.ttft_ms.p99),
        ]);
    }
    if !cli.json {
        print_table(
            "1. Chaos matrix: one workload, escalating fault models (nothing silently lost)",
            &[
                "scenario",
                "events",
                "completed",
                "shed",
                "failovers",
                "hedges",
                "deferrals",
                "availability",
                "TTFT p99 (ms)",
            ],
            &rows,
        );
    }

    // The correlated scenario again, traced: router and per-cell tracks
    // alongside the per-device serve tracks.
    if cli.wants_trace() {
        let sink = Rc::new(RefCell::new(RingSink::new(1 << 20)));
        run_cluster_traced(&sim, &dataset, &arrival, &base_cfg, &correlated, sink.clone())
            .expect("valid plan");
        cli.write_trace(&sink.borrow());
    }

    // -- 2. Tenant QoS: interactive vs KV-quota'd batch ---------------------
    // The quota is sized to two typical outstanding batch requests, so
    // bursts overflow it visibly without starving the class completely.
    let probe = DeviceSim::new(&sim, 0, base_cfg.serve);
    let quota = 2 * probe.kv_bytes_needed(&Query { prefill: 144, decode: 72 });
    let quota_cfg = ClusterConfig {
        tenants: vec![
            Tenant { name: "interactive".into(), priority: 0, kv_quota_bytes: 0, share: 1.0 },
            Tenant { name: "batch".into(), priority: 2, kv_quota_bytes: quota, share: 1.0 },
        ],
        ..base_cfg.clone()
    };
    let r =
        run_cluster(&sim, &dataset, &arrival, &quota_cfg, &ChaosPlan::none()).expect("valid plan");
    conserved_or_die("tenant_qos", &r);
    let quota_sheds = r.shed_quota;
    emit_run(
        &cli,
        "tenant_qos",
        &[("tenants", "2"), ("quota_mib", &(quota >> 20).to_string())],
        &r.to_json(),
    );
    if !cli.json {
        let rows: Vec<Vec<String>> = r
            .tenants
            .iter()
            .map(|t| {
                vec![
                    t.name.clone(),
                    t.priority.to_string(),
                    t.offered.to_string(),
                    t.completed.to_string(),
                    t.shed.to_string(),
                    format!("{:.0}", t.ttft_ms.p95),
                ]
            })
            .collect();
        print_table(
            &format!(
                "2. Tenant QoS: {} MiB batch KV quota (interactive class untouched)",
                quota >> 20
            ),
            &["tenant", "priority", "offered", "completed", "shed", "TTFT p95 (ms)"],
            &rows,
        );
    }

    // -- 3. SLO-burn autoscaling: peak day then quiet day -------------------
    // One initial device per cell with headroom: the peak day burns the
    // p99-TTFT SLO and grows the hot cells, the quiet day cools them back.
    let scale_cfg = ClusterConfig {
        devices_per_cell: 1,
        max_devices_per_cell: max_devices,
        autoscale: Some(AutoscalePolicy {
            slo_ttft_ms: 800.0,
            window_s: 0.2 * day_s,
            interval_s: 0.05 * day_s,
            burn_streak: 2,
            cool_streak: 4,
            warmup_s: 0.02 * day_s,
        }),
        ..base_cfg.clone()
    };
    // Peak well above the one-device-per-cell capacity (~2 qps/device), so
    // queueing drives window p99 past the SLO while arrivals still tick.
    let surge_peak_qps = 5.0 * cells as f64;
    let surge: Vec<(ArrivalProcess, usize)> = vec![
        (diurnal_day(per_day * 2, 1.0, surge_peak_qps, day_s), per_day * 2),
        (diurnal_day(per_day / 2, 0.2, 0.5, day_s), per_day / 2),
    ];
    let surge_n = per_day * 2 + per_day / 2;
    let surge_dataset = mixed_queries(seed ^ 0xA5, surge_n);
    let surge_arrival = ArrivalProcess::compose(&surge, day_s, seed);
    let r = run_cluster(&sim, &surge_dataset, &surge_arrival, &scale_cfg, &ChaosPlan::none())
        .expect("valid plan");
    conserved_or_die("autoscale", &r);
    let (scale_outs, scale_ins, devices_final) = (r.scale_outs, r.scale_ins, r.devices_final);
    emit_run(
        &cli,
        "autoscale",
        &[("slo_ttft_ms", "800"), ("max_devices", &max_devices.to_string())],
        &r.to_json(),
    );
    if !cli.json {
        print_table(
            "3. SLO-burn autoscaling: surge day then quiet day",
            &["initial", "final", "scale-outs", "scale-ins", "completed", "shed", "TTFT p99 (ms)"],
            &[vec![
                r.devices_initial.to_string(),
                r.devices_final.to_string(),
                r.scale_outs.to_string(),
                r.scale_ins.to_string(),
                r.completed.to_string(),
                r.shed.to_string(),
                format!("{:.0}", r.ttft_ms.p99),
            ]],
        );
        println!(
            "\nCorrelated cell outages fail work over to surviving cells and seeded chaos storms \
             degrade availability smoothly — with every offered request accounted for; the KV \
             quota sheds only the batch overflow; the autoscaler tracks the diurnal surge out \
             and back in."
        );
    }

    let mut manifest = RunManifest::new("cluster", seed);
    manifest
        .config_str("platform", "iphone")
        .config_uint("cells", cells as u64)
        .config_uint("devices_per_cell", devices as u64)
        .config_uint("max_devices_per_cell", max_devices as u64)
        .config_uint("queries", n as u64)
        .config_uint("days", days as u64)
        .config_bool("smoke", cli.smoke);
    for (label, a) in matrix_availability {
        manifest.result_num(&format!("availability_{label}"), a);
    }
    manifest.result_uint("quota_sheds", quota_sheds as u64);
    manifest.result_uint("scale_outs", scale_outs as u64);
    manifest.result_uint("scale_ins", scale_ins as u64);
    manifest.result_uint("devices_final", devices_final as u64);
    cli.emit_manifest(&manifest);
}
