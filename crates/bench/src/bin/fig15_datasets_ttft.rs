//! Regenerates paper Fig. 15: TTFT on the conversation and code
//! autocompletion datasets, normalized to hybrid-static.

use facil_bench::{fig15_datasets, headline_geomeans, print_table, BenchCli};
use facil_telemetry::RunManifest;

fn main() {
    let (cli, _) = BenchCli::parse();
    let seed = cli.seed_or(42);
    let queries = if cli.smoke { 32 } else { 128 };
    let rows = fig15_datasets(seed, queries);
    if !cli.json {
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.platform.to_string(),
                    r.dataset.clone(),
                    format!("{:.2}x", r.soc_only),
                    "1.00x".into(),
                    format!("{:.2}x", r.hybrid_dynamic),
                    format!("{:.2}x", r.facil),
                ]
            })
            .collect();
        print_table(
            &format!(
                "Fig. 15: TTFT speedup over hybrid-static ({queries} sampled queries, seed {seed})"
            ),
            &["platform", "dataset", "SoC-only", "hybrid-static", "hybrid-dynamic", "FACIL"],
            &table,
        );
        for (name, g) in headline_geomeans(&rows) {
            println!("FACIL TTFT geomean on {name}: {g:.2}x");
        }
        println!("paper: 2.37x (Alpaca), 2.63x (code autocompletion)");
    }

    let mut manifest = RunManifest::new("fig15_datasets_ttft", seed);
    manifest.config_uint("queries", queries as u64).config_str("metric", "ttft");
    for (name, g) in headline_geomeans(&rows) {
        manifest.result_num(&format!("geomean_{name}"), g);
    }
    cli.emit_manifest(&manifest);
}
