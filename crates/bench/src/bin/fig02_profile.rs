//! Regenerates paper Fig. 2: decode-phase profiling on the Jetson GPU.

use facil_bench::{fig02_profile, print_table, BenchCli};
use facil_telemetry::RunManifest;

fn main() {
    let (cli, _) = BenchCli::parse();
    let decode = if cli.smoke { 16 } else { 64 };
    let r = fig02_profile(decode);
    if !cli.json {
        print_table(
            &format!("Fig. 2(a): decode time breakdown (Jetson, Llama3-8B, {decode} tokens)"),
            &["component", "share"],
            &[
                vec!["linear (GEMV)".into(), format!("{:.1}%", r.linear_fraction * 100.0)],
                vec!["attention".into(), format!("{:.1}%", r.attention_fraction * 100.0)],
                vec!["other".into(), format!("{:.1}%", r.other_fraction * 100.0)],
            ],
        );
        let rows: Vec<Vec<String>> = r
            .utils
            .iter()
            .map(|u| {
                vec![
                    u.name.into(),
                    format!("{:.2}%", u.compute_util * 100.0),
                    format!("{:.1}%", u.memory_util * 100.0),
                ]
            })
            .collect();
        print_table(
            "Fig. 2(b): GEMV compute / memory utilization",
            &["dimension", "compute util", "memory BW util"],
            &rows,
        );
    }

    let mut manifest = RunManifest::new("fig02_profile", cli.seed_or(0));
    manifest.config_str("platform", "jetson").config_uint("decode", decode);
    manifest
        .result_num("linear_fraction", r.linear_fraction)
        .result_num("attention_fraction", r.attention_fraction)
        .result_num("other_fraction", r.other_fraction);
    if let Some(u) = r.utils.first() {
        manifest.result_num("gemv_compute_util", u.compute_util);
        manifest.result_num("gemv_memory_util", u.memory_util);
    }
    cli.emit_manifest(&manifest);
}
