//! Regenerates paper Fig. 2: decode-phase profiling on the Jetson GPU.

use facil_bench::{fig02_profile, print_table};

fn main() {
    let r = fig02_profile(64);
    print_table(
        "Fig. 2(a): decode time breakdown (Jetson, Llama3-8B, 64 tokens)",
        &["component", "share"],
        &[
            vec!["linear (GEMV)".into(), format!("{:.1}%", r.linear_fraction * 100.0)],
            vec!["attention".into(), format!("{:.1}%", r.attention_fraction * 100.0)],
            vec!["other".into(), format!("{:.1}%", r.other_fraction * 100.0)],
        ],
    );
    let rows: Vec<Vec<String>> = r
        .utils
        .iter()
        .map(|u| {
            vec![
                u.name.into(),
                format!("{:.2}%", u.compute_util * 100.0),
                format!("{:.1}%", u.memory_util * 100.0),
            ]
        })
        .collect();
    print_table(
        "Fig. 2(b): GEMV compute / memory utilization",
        &["dimension", "compute util", "memory BW util"],
        &rows,
    );
}
