//! Functional-fidelity regenerator: bit-exact replay of the all-bank PIM
//! command stream, plus end-to-end FACIL-vs-conventional token equivalence.
//!
//! For every paper platform (Table III) the binary places a set of linear
//! shapes at every matrix-legal MapID, executes the traced command sequence
//! with the functional interpreter ([`facil_fidelity::replay_gemv`]) over a
//! bank-sliced cell store, and cross-checks the output bit for bit against
//! the `pim_gemv` reference — the JSON carries the mismatch counts, which CI
//! requires to be zero. It then decodes the seeded `tiny-fidelity` model
//! through both a FACIL mapping and the conventional SoC mapping and asserts
//! identical logits per token.
//!
//! Usage: `cargo run --release -p facil-bench --bin fidelity`
//!
//! * `--json` — one tagged JSONL line per platform plus one token-equivalence
//!   line and the run manifest, no tables;
//! * `--smoke` — iPhone only, MapIDs 0-1, two decode steps;
//! * `--seed <n>` — weight/input seed (default `9`, chosen so the greedy
//!   token stream is not a fixed point).
//!
//! The full `--json` output is committed as `BENCH_fidelity.json`. Every
//! JSON field is deterministic (counts, mismatches, tokens); measured
//! replay throughput depends on the host and is reported on stderr only.

use std::time::Instant;

use facil_bench::{emit_run, print_table, BenchCli};
use facil_core::{decision_with_map_id, DType, FacilSystem, MatrixConfig, HUGE_PAGE_BITS};
use facil_fidelity::{cross_check, token_equivalence, BankedMemory, FidelityReport};
use facil_llm::ModelConfig;
use facil_pim::store_matrix;
use facil_soc::{Platform, PlatformId};
use facil_telemetry::{json, JsonWriter, RunManifest};

/// Linear shapes replayed on every platform: an attention projection, an
/// FFN block (wide enough to partition on narrow buses), and a skinny head.
const SHAPES: [(&str, u64, u64); 3] =
    [("attn-proj", 64, 2048), ("ffn-block", 32, 4096), ("vocab-head", 128, 1024)];

fn grid(i: u64) -> f32 {
    ((i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40) % 15) as f32 * 0.0625 - 0.4375
}

fn slug(id: PlatformId) -> &'static str {
    match id {
        PlatformId::Jetson => "jetson",
        PlatformId::Macbook => "macbook",
        PlatformId::Ideapad => "ideapad",
        PlatformId::Iphone => "iphone",
    }
}

struct ShapeRun {
    shape: &'static str,
    rows: u64,
    cols: u64,
    map_id: u8,
    report: FidelityReport,
    mac_ops: u64,
    elapsed_s: f64,
}

/// Replay every shape at every matrix-legal MapID on one platform.
fn run_platform(
    platform: &Platform,
    max_map_id: u8,
    seed: u64,
) -> facil_core::Result<Vec<ShapeRun>> {
    let spec = &platform.dram;
    let arch = platform.pim_arch;
    let topo = spec.topology;
    let chunk_elems = arch.chunk_row_bytes / 2;
    let mut runs = Vec::new();
    for (shape, rows, cols) in SHAPES {
        let m = MatrixConfig::new(rows, cols, DType::F16);
        let chunks = cols / chunk_elems;
        for map_id in 0..=max_map_id {
            // Over-wide MapIDs (more segments than the row has chunks) are
            // matrix-illegal; MapIDs beyond the page's row bits are
            // topology-illegal. Both are skipped, not failures.
            if (1u64 << map_id) > chunks {
                continue;
            }
            let Ok(d) = decision_with_map_id(&m, topo, &arch, map_id, HUGE_PAGE_BITS) else {
                continue;
            };
            let mut sys = FacilSystem::new(spec.clone(), arch);
            let alloc = sys.pimalloc_with(m, d)?;
            let mut mem = BankedMemory::new(topo);
            let w: Vec<f32> = (0..rows * cols).map(|i| grid(i ^ seed)).collect();
            store_matrix(&mut mem, &sys, &alloc, &w)?;
            let x: Vec<f32> = (0..cols).map(|i| grid(i ^ seed ^ 0xC0FFEE)).collect();
            let start = Instant::now();
            let report = cross_check(&mem, &sys, &alloc, &x)?;
            let elapsed_s = start.elapsed().as_secs_f64();
            runs.push(ShapeRun {
                shape,
                rows,
                cols,
                map_id,
                report,
                mac_ops: rows * cols,
                elapsed_s,
            });
        }
    }
    Ok(runs)
}

fn platform_json(platform: &str, runs: &[ShapeRun]) -> String {
    let mut w = JsonWriter::new();
    w.begin_object().field_str("platform", platform);
    w.field_uint(
        "mismatches",
        runs.iter().map(|r| r.report.f32_mismatches + r.report.f16_mismatches).sum(),
    );
    w.key("shapes").begin_array();
    for r in runs {
        w.begin_object()
            .field_str("shape", r.shape)
            .field_uint("rows", r.rows)
            .field_uint("cols", r.cols)
            .field_uint("map_id", u64::from(r.map_id))
            .field_uint("partitions", r.report.partitions)
            .field_uint("waves", r.report.waves)
            .field_uint("commands", r.report.commands)
            .field_uint("mac_ops", r.mac_ops)
            .field_uint("f32_mismatches", r.report.f32_mismatches)
            .field_uint("f16_mismatches", r.report.f16_mismatches)
            .end_object();
    }
    w.end_array().end_object();
    w.finish()
}

fn tokens_json(report: &facil_fidelity::TokenEquivalenceReport) -> String {
    let mut w = JsonWriter::new();
    w.begin_object()
        .field_str("model", &report.model)
        .field_uint("steps", report.steps)
        .field_uint("logit_mismatches", report.logit_mismatches)
        .field_bool("equivalent", report.equivalent);
    for (key, tokens) in [
        ("facil_tokens", &report.facil_tokens),
        ("conventional_tokens", &report.conventional_tokens),
    ] {
        w.key(key).begin_array();
        for t in tokens {
            w.uint(*t);
        }
        w.end_array();
    }
    w.end_object();
    w.finish()
}

fn main() {
    let (cli, rest) = BenchCli::parse();
    if let Some(unknown) = rest.first() {
        eprintln!("unknown argument: {unknown}");
        std::process::exit(2);
    }
    let seed = cli.seed_or(9);
    let (platforms, max_map_id, steps) = if cli.smoke {
        (vec![PlatformId::Iphone], 1u8, 2u64)
    } else {
        (PlatformId::all().to_vec(), 3u8, 4u64)
    };

    let mut mismatch_total = 0u64;
    let mut commands_total = 0u64;
    let mut replays_total = 0u64;
    for id in &platforms {
        let platform = Platform::get(*id);
        let runs = match run_platform(&platform, max_map_id, seed) {
            Ok(runs) => runs,
            Err(e) => {
                eprintln!("fidelity failed on {id}: {e}");
                std::process::exit(1);
            }
        };
        let name = slug(*id);
        mismatch_total +=
            runs.iter().map(|r| r.report.f32_mismatches + r.report.f16_mismatches).sum::<u64>();
        commands_total += runs.iter().map(|r| r.report.commands).sum::<u64>();
        replays_total += runs.len() as u64;
        let macs: u64 = runs.iter().map(|r| r.mac_ops).sum();
        let secs: f64 = runs.iter().map(|r| r.elapsed_s).sum();
        eprintln!(
            "{name}: {} replays, {macs} MACs in {secs:.3}s ({:.1} MMAC/s functional)",
            runs.len(),
            macs as f64 / secs.max(1e-9) / 1e6
        );
        emit_run(
            &cli,
            "fidelity",
            &[("platform", &json::escaped(name))],
            &platform_json(name, &runs),
        );
        if !cli.json {
            let rows: Vec<Vec<String>> = runs
                .iter()
                .map(|r| {
                    vec![
                        r.shape.to_string(),
                        format!("{}x{}", r.rows, r.cols),
                        r.map_id.to_string(),
                        r.report.partitions.to_string(),
                        r.report.waves.to_string(),
                        r.report.commands.to_string(),
                        format!("{}/{}", r.report.f32_mismatches, r.report.f16_mismatches),
                        format!("{:.1}", r.mac_ops as f64 / r.elapsed_s.max(1e-9) / 1e6),
                    ]
                })
                .collect();
            print_table(
                &format!("fidelity — {name}"),
                &["shape", "matrix", "MapID", "parts", "waves", "cmds", "mism f32/f16", "MMAC/s"],
                &rows,
            );
        }
    }

    // End-to-end token equivalence on the iPhone-class spec (present in both
    // smoke and full runs).
    let spec = Platform::get(PlatformId::Iphone).dram.clone();
    let model = ModelConfig::tiny_fidelity();
    let tokens = match token_equivalence(&spec, &model, steps, seed) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("token equivalence failed: {e}");
            std::process::exit(1);
        }
    };
    emit_run(&cli, "fidelity_tokens", &[], &tokens_json(&tokens));
    if !cli.json {
        print_table(
            "token equivalence — FACIL PIM replay vs conventional SoC",
            &["model", "steps", "tokens", "logit mism", "equivalent"],
            &[vec![
                tokens.model.clone(),
                tokens.steps.to_string(),
                tokens.facil_tokens.iter().map(u64::to_string).collect::<Vec<_>>().join(" "),
                tokens.logit_mismatches.to_string(),
                tokens.equivalent.to_string(),
            ]],
        );
    }

    if mismatch_total > 0 || !tokens.equivalent {
        eprintln!(
            "fidelity violated: {mismatch_total} replay mismatches, equivalent={}",
            tokens.equivalent
        );
        std::process::exit(1);
    }

    let mut manifest = RunManifest::new("fidelity", seed);
    manifest
        .config_uint("platforms", platforms.len() as u64)
        .config_uint("max_map_id", u64::from(max_map_id))
        .config_uint("steps", steps)
        .config_bool("smoke", cli.smoke);
    manifest
        .result_uint("replays", replays_total)
        .result_uint("commands", commands_total)
        .result_uint("mismatches", mismatch_total)
        .result_uint("token_steps", tokens.steps)
        .result_uint("token_equivalent", u64::from(tokens.equivalent));
    cli.emit_manifest(&manifest);
}
