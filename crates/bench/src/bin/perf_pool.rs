//! Wall-clock harness for the persistent work-stealing executor behind
//! [`facil_telemetry::pool`].
//!
//! Two measurements, both on provably equivalent work:
//!
//! 1. **Dispatch overhead** — many small `par_map` batches (the per-tick
//!    shape of the fleet/cluster drivers) on the persistent executor vs an
//!    in-binary copy of the pre-executor baseline (fresh scoped threads
//!    per call, one `Mutex<Iterator>` lock per item). Results are asserted
//!    identical; only µs/dispatch differs.
//! 2. **Fleet steps/s** — the untraced multi-device serving loop
//!    ([`run_fleet`]) serially (`set_parallelism(1)`) vs on the executor's
//!    workers. The two reports must serialize byte-identically — the
//!    harness asserts it — so the steps/s ratio is measured on the same
//!    schedule.
//!
//! Usage: `cargo run --release -p facil-bench --bin perf_pool`
//!
//! * `--json` — tagged JSONL lines per experiment plus the run manifest
//!   (the `BENCH_pool.json` record), no tables;
//! * `--smoke` — shrink both measurements for CI smoke runs;
//! * `--seed <n>` — workload RNG seed (default 9);
//! * `--threads <n>` — worker count for the parallel legs (default
//!   `max(pool::parallelism(), 4)`, same convention as `perf_dram`);
//! * `--digest` — run the fleet once under the ambient
//!   [`pool::parallelism`] (`FACIL_THREADS`) and print only the
//!   deterministic report JSON: the byte-identity diff target for CI
//!   (wall-clock fields would break the diff, so nothing else is printed);
//! * `--enforce-speedup` — exit non-zero unless dispatch overhead beats
//!   the scoped-spawn baseline (> 1.0x) and the fleet reaches >= 1.5x
//!   steps/s; enforced only when the machine has >= 4 cores, since worker
//!   count alone cannot buy wall-clock speedup.

use std::sync::Mutex;
use std::time::Instant;

use facil_bench::{emit_run, print_table, BenchCli};
use facil_serve::{run_fleet, FleetConfig, Routing, ServeConfig};
use facil_sim::{InferenceSim, Strategy};
use facil_soc::{Platform, PlatformId};
use facil_telemetry::json::escaped;
use facil_telemetry::{pool, JsonWriter, RunManifest};
use facil_workloads::{ArrivalProcess, Dataset};

/// The pre-executor pool, verbatim in miniature: fresh scoped threads per
/// call and a shared `Mutex<Iterator>` handing out one item per lock
/// acquisition. Kept here as the dispatch-overhead baseline so the
/// harness keeps measuring the same thing after the library moved on.
fn spawn_map_baseline<T, R, F>(workers: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let queue = Mutex::new(items.iter().enumerate());
    let parts: Vec<Vec<(usize, R)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut out: Vec<(usize, R)> = Vec::new();
                    loop {
                        let next = queue.lock().expect("baseline queue").next();
                        let Some((i, item)) = next else { break };
                        out.push((i, f(item)));
                    }
                    out
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("baseline worker")).collect()
    });
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    for (i, r) in parts.into_iter().flatten() {
        slots[i] = Some(r);
    }
    slots.into_iter().map(|r| r.expect("baseline covered every index")).collect()
}

/// Per-item work for the dispatch benchmark: cheap enough that dispatch
/// cost dominates, which is exactly the regime being measured.
fn item_work(x: &u64) -> u64 {
    x.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17) ^ 0xABCD
}

struct DispatchPoint {
    iters: usize,
    batch: usize,
    spawn_us: f64,
    executor_us: f64,
}

impl DispatchPoint {
    fn speedup(&self) -> f64 {
        if self.executor_us > 0.0 {
            self.spawn_us / self.executor_us
        } else {
            1.0
        }
    }
}

/// Time `iters` dispatches of a `batch`-item map on both pools.
fn measure_dispatch(workers: usize, iters: usize, batch: usize) -> DispatchPoint {
    let items: Vec<u64> = (0..batch as u64).collect();
    let expect: Vec<u64> = items.iter().map(item_work).collect();

    // Warm both paths (executor workers spawn lazily on first use).
    assert_eq!(spawn_map_baseline(workers, &items, item_work), expect);
    assert_eq!(pool::par_map_with(workers, &items, item_work), expect);

    let t0 = Instant::now();
    for _ in 0..iters {
        let out = spawn_map_baseline(workers, &items, item_work);
        assert_eq!(out.len(), batch);
    }
    let spawn_us = t0.elapsed().as_secs_f64() * 1e6 / iters as f64;

    let t1 = Instant::now();
    for _ in 0..iters {
        let out = pool::par_map_with(workers, &items, item_work);
        assert_eq!(out.len(), batch);
    }
    let executor_us = t1.elapsed().as_secs_f64() * 1e6 / iters as f64;

    DispatchPoint { iters, batch, spawn_us, executor_us }
}

struct FleetPoint {
    devices: usize,
    offered: usize,
    serial_s: f64,
    parallel_s: f64,
}

impl FleetPoint {
    fn serial_steps_s(&self) -> f64 {
        self.offered as f64 / self.serial_s.max(1e-12)
    }
    fn parallel_steps_s(&self) -> f64 {
        self.offered as f64 / self.parallel_s.max(1e-12)
    }
    fn speedup(&self) -> f64 {
        if self.parallel_s > 0.0 {
            self.serial_s / self.parallel_s
        } else {
            1.0
        }
    }
}

fn fleet_inputs(smoke: bool, seed: u64) -> (InferenceSim, Dataset, ArrivalProcess, ServeConfig) {
    let platform = Platform::get(PlatformId::Iphone);
    let sim = InferenceSim::new(platform).expect("default model fits");
    let n = if smoke { 96 } else { 512 };
    let dataset = Dataset::code_autocompletion_like(42, n);
    let arrival = ArrivalProcess::Poisson { qps: 16.0 };
    let cfg =
        ServeConfig { strategy: Strategy::FacilDynamic, seed, fmfi: 0.0, ..Default::default() };
    (sim, dataset, arrival, cfg)
}

/// Run the untraced fleet loop serially and on `threads` workers,
/// asserting byte-identical reports.
fn measure_fleet(smoke: bool, seed: u64, threads: usize) -> FleetPoint {
    let (sim, dataset, arrival, cfg) = fleet_inputs(smoke, seed);
    let fleet = FleetConfig { devices: 8, routing: Routing::LeastLoaded };

    let run = |workers: usize| {
        pool::set_parallelism(workers);
        let t0 = Instant::now();
        let r = run_fleet(&sim, &dataset, &arrival, cfg, fleet).expect("valid fleet config");
        (r, t0.elapsed().as_secs_f64())
    };
    // Warm the lazy relayout profile and the executor workers so neither
    // one-time cost lands inside a measured leg.
    let _ = run(threads);
    let (serial, serial_s) = run(1);
    let (parallel, parallel_s) = run(threads);
    pool::set_parallelism(0);
    assert_eq!(
        serial.to_json(),
        parallel.to_json(),
        "fleet report must be byte-identical across worker counts"
    );
    FleetPoint { devices: fleet.devices, offered: serial.offered, serial_s, parallel_s }
}

fn main() {
    let (cli, rest) = BenchCli::parse();
    let enforce = rest.iter().any(|a| a == "--enforce-speedup");
    let digest = rest.iter().any(|a| a == "--digest");
    let seed = cli.seed_or(9);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let threads = rest
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| rest.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| pool::parallelism().max(4));

    if digest {
        // Byte-identity mode: the ambient worker count (FACIL_THREADS)
        // decides the schedule width; the report must not depend on it.
        let (sim, dataset, arrival, cfg) = fleet_inputs(cli.smoke, seed);
        let fleet = FleetConfig { devices: 8, routing: Routing::LeastLoaded };
        let r = run_fleet(&sim, &dataset, &arrival, cfg, fleet).expect("valid fleet config");
        println!("{}", r.to_json());
        return;
    }

    let iters = if cli.smoke { 200 } else { 2_000 };
    let dispatch = measure_dispatch(threads, iters, 64);
    let fleet = measure_fleet(cli.smoke, seed, threads);

    {
        let p = &dispatch;
        let mut w = JsonWriter::with_capacity(256);
        w.begin_object()
            .field_str("mode", "dispatch")
            .field_uint("iters", p.iters as u64)
            .field_uint("batch", p.batch as u64)
            .field_uint("threads", threads as u64)
            .field_num("spawn_us_per_dispatch", p.spawn_us)
            .field_num("executor_us_per_dispatch", p.executor_us)
            .field_num("dispatch_speedup", p.speedup())
            .field_bool("results_match", true)
            .end_object();
        emit_run(&cli, "perf_pool", &[("mode", &escaped("dispatch"))], &w.finish());
    }
    {
        let p = &fleet;
        let mut w = JsonWriter::with_capacity(256);
        w.begin_object()
            .field_str("mode", "fleet")
            .field_uint("devices", p.devices as u64)
            .field_uint("offered", p.offered as u64)
            .field_uint("threads", threads as u64)
            .field_num("serial_s", p.serial_s)
            .field_num("parallel_s", p.parallel_s)
            .field_num("serial_steps_s", p.serial_steps_s())
            .field_num("parallel_steps_s", p.parallel_steps_s())
            .field_num("fleet_speedup", p.speedup())
            .field_bool("reports_match", true)
            .end_object();
        emit_run(&cli, "perf_pool", &[("mode", &escaped("fleet"))], &w.finish());
    }

    if !cli.json {
        print_table(
            &format!("perf_pool — dispatch overhead, {threads} workers, {}-item batches", 64),
            &["iters", "spawn µs/call", "executor µs/call", "speedup", "results=="],
            &[vec![
                dispatch.iters.to_string(),
                format!("{:.1}", dispatch.spawn_us),
                format!("{:.1}", dispatch.executor_us),
                format!("{:.2}x", dispatch.speedup()),
                "yes".into(),
            ]],
        );
        print_table(
            &format!("perf_pool — fleet steps/s, {} devices, serial vs {threads} workers", 8),
            &["offered", "serial steps/s", "parallel steps/s", "speedup", "reports=="],
            &[vec![
                fleet.offered.to_string(),
                format!("{:.1}", fleet.serial_steps_s()),
                format!("{:.1}", fleet.parallel_steps_s()),
                format!("{:.2}x", fleet.speedup()),
                "yes".into(),
            ]],
        );
    }

    let mut manifest = RunManifest::new("perf_pool", seed);
    manifest
        .config_uint("threads", threads as u64)
        .config_uint("cores", cores as u64)
        .config_uint("dispatch_iters", dispatch.iters as u64)
        .config_uint("dispatch_batch", dispatch.batch as u64)
        .config_uint("fleet_devices", fleet.devices as u64)
        .config_bool("smoke", cli.smoke);
    manifest.result_num("spawn_us_per_dispatch", dispatch.spawn_us);
    manifest.result_num("executor_us_per_dispatch", dispatch.executor_us);
    manifest.result_num("dispatch_speedup", dispatch.speedup());
    manifest.result_num("serial_steps_s", fleet.serial_steps_s());
    manifest.result_num("parallel_steps_s", fleet.parallel_steps_s());
    manifest.result_num("fleet_speedup", fleet.speedup());
    cli.emit_manifest(&manifest);

    if enforce && cores >= 4 {
        if dispatch.speedup() <= 1.0 {
            eprintln!(
                "perf_pool: executor dispatch ({:.1} µs) did not beat the scoped-spawn \
                 baseline ({:.1} µs)",
                dispatch.executor_us, dispatch.spawn_us
            );
            std::process::exit(1);
        }
        if fleet.speedup() < 1.5 {
            eprintln!(
                "perf_pool: fleet reached only {:.2}x steps/s with {threads} workers on \
                 {cores} cores (need >= 1.5x)",
                fleet.speedup()
            );
            std::process::exit(1);
        }
    }
}
