//! Wall-clock performance harness for the FR-FCFS DRAM backend.
//!
//! Replays the same pseudo-random request stream through
//! [`DramSystem::run_with_threads`] serially (1 worker) and in parallel
//! (the [`facil_sim::pool`] worker count, `FACIL_THREADS`), sweeping the
//! channel count, and reports requests/second for both. The two runs must
//! produce identical [`facil_dram::SimResult`]s — the harness asserts it —
//! so the speedup is measured on provably equivalent work.
//!
//! A final low-utilization point replays a decode-phase serving trace
//! (short per-token read bursts separated by long idle gaps) under the
//! cycle-stepped and next-event engines — again asserting identical
//! results — to measure the engine speedup where it matters: traces that
//! are mostly idle time.
//!
//! Usage: `cargo run --release -p facil-bench --bin perf_dram`
//!
//! * `--json` — one tagged JSONL line per sweep point plus the run
//!   manifest (the `BENCH_dram.json` record), no tables;
//! * `--smoke` — shrink the stream for CI smoke runs;
//! * `--seed <n>` — stream RNG seed (default 42);
//! * `--threads <n>` — worker count for the parallel leg. Defaults to
//!   `max(pool::parallelism(), 4)` so the sweep exercises multi-worker
//!   scheduling even on small machines (results are identical regardless;
//!   only the wall-clock speedup needs real cores behind the workers);
//! * `--enforce-speedup` — exit non-zero unless the widest sweep point
//!   reaches >= 2x parallel speedup (enforced only when the *machine*
//!   has at least 4 cores — the worker count alone cannot buy wall-clock
//!   speedup) AND the next-event engine reaches >= 5x the cycle-stepped
//!   req/s on the low-utilization trace (stats equality is asserted
//!   regardless).

use std::time::Instant;

use facil_bench::{emit_run, print_table, BenchCli};
use facil_dram::{DramAddress, DramSpec, DramSystem, EngineKind, Request, SchedConfig, SimResult};
use facil_sim::{pool, XorShift64Star};
use facil_telemetry::{json, JsonWriter, RunManifest};

/// One measured sweep point.
struct Point {
    channels: u64,
    requests: usize,
    serial_s: f64,
    parallel_s: f64,
    result: SimResult,
}

impl Point {
    fn speedup(&self) -> f64 {
        if self.parallel_s > 0.0 {
            self.serial_s / self.parallel_s
        } else {
            1.0
        }
    }
}

/// Generate `n` requests over every channel of `spec`: row-local bursts
/// (a few columns per row before moving on) across random ranks/banks, with
/// arrivals advancing slowly so both the backlogged and the idle-jump
/// scheduler paths run. Arrival cycles are globally non-decreasing, so the
/// per-channel sub-streams satisfy [`DramSystem::push`]'s ordering.
fn stream(spec: &DramSpec, n: usize, seed: u64) -> Vec<Request> {
    let t = spec.topology;
    let mut rng = XorShift64Star::new(seed);
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let addr = DramAddress {
            channel: rng.next_u64() % t.channels,
            rank: rng.next_u64() % t.ranks,
            bank: rng.next_u64() % t.banks(),
            row: (rng.next_u64() % 64) * 7 % t.rows,
            column: rng.next_u64() % t.columns(),
        };
        let req = if rng.next_u64().is_multiple_of(4) {
            Request::write(addr)
        } else {
            Request::read(addr)
        };
        out.push(req.at(i as u64 / 4));
    }
    out
}

/// Run one (channel count, stream) point serially and in parallel,
/// asserting identical results.
fn measure(channels: u64, per_channel: usize, seed: u64, threads: usize) -> Point {
    // 16 data bits per LPDDR5 channel; 2 GiB per channel keeps the
    // row count realistic across the sweep.
    let spec = DramSpec::lpddr5_6400(16 * channels, channels * (2 << 30));
    let requests = per_channel * channels as usize;
    let reqs = stream(&spec, requests, seed);

    let mut serial_sys = DramSystem::new(&spec);
    let mut parallel_sys = DramSystem::new(&spec);
    for r in &reqs {
        serial_sys.push(*r);
        parallel_sys.push(*r);
    }

    let t0 = Instant::now();
    let serial = serial_sys.run_with_threads(1);
    let serial_s = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let parallel = parallel_sys.run_with_threads(threads);
    let parallel_s = t1.elapsed().as_secs_f64();

    assert_eq!(
        serial, parallel,
        "parallel DramSystem::run diverged from serial at {channels} channels"
    );
    Point { channels, requests, serial_s, parallel_s, result: serial }
}

/// One engine-vs-engine point on the low-utilization serving trace.
struct EnginePoint {
    channels: u64,
    requests: usize,
    stepped_s: f64,
    event_s: f64,
    result: SimResult,
}

impl EnginePoint {
    fn speedup(&self) -> f64 {
        if self.event_s > 0.0 {
            self.stepped_s / self.event_s
        } else {
            1.0
        }
    }
}

/// Decode-phase serving trace: each "token" reads a short burst of rows
/// spread over the channels, then the bus sits idle for `gap` cycles until
/// the next token — the on-device inference shape where a cycle-stepped
/// simulator burns its time walking empty cycles.
fn serving_stream(
    spec: &DramSpec,
    tokens: usize,
    burst: usize,
    gap: u64,
    seed: u64,
) -> Vec<Request> {
    let t = spec.topology;
    let mut rng = XorShift64Star::new(seed);
    let mut out = Vec::with_capacity(tokens * burst);
    let mut at = 0u64;
    for _ in 0..tokens {
        for _ in 0..burst {
            let addr = DramAddress {
                channel: rng.next_u64() % t.channels,
                rank: rng.next_u64() % t.ranks,
                bank: rng.next_u64() % t.banks(),
                row: rng.next_u64() % 64 % t.rows,
                column: rng.next_u64() % t.columns(),
            };
            out.push(Request::read(addr).at(at));
        }
        at += gap;
    }
    out
}

/// Replay the low-utilization trace under both engines (single worker, so
/// the comparison is pure engine physics), asserting identical results.
fn measure_engines(tokens: usize, burst: usize, gap: u64, seed: u64) -> EnginePoint {
    let channels = 4u64;
    let spec = DramSpec::lpddr5_6400(16 * channels, channels * (2 << 30));
    let reqs = serving_stream(&spec, tokens, burst, gap, seed);

    let run = |engine: EngineKind| {
        let cfg = SchedConfig { engine, ..SchedConfig::default() };
        let mut sys = DramSystem::with_config(&spec, cfg);
        for r in &reqs {
            sys.push(*r);
        }
        let t0 = Instant::now();
        let result = sys.run_with_threads(1);
        (result, t0.elapsed().as_secs_f64())
    };
    let (stepped, stepped_s) = run(EngineKind::Stepped);
    let (event, event_s) = run(EngineKind::Event);
    assert_eq!(stepped, event, "next-event engine diverged from cycle-stepped");
    EnginePoint { channels, requests: reqs.len(), stepped_s, event_s, result: event }
}

fn main() {
    let (cli, rest) = BenchCli::parse();
    let enforce = rest.iter().any(|a| a == "--enforce-speedup");
    let seed = cli.seed_or(42);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    // Default to at least 4 workers so the parallel leg actually exercises
    // multi-worker scheduling (the old default collapsed to threads=1 on
    // small machines, recording a meaningless ~1.0x "speedup").
    let threads = rest
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| rest.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| pool::parallelism().max(4));
    let per_channel = if cli.smoke { 4_000 } else { 60_000 };

    let points: Vec<Point> =
        [1u64, 2, 4, 8].iter().map(|&c| measure(c, per_channel, seed, threads)).collect();

    // Low-utilization serving trace: ~2% bus utilization, the regime the
    // next-event engine exists for.
    let (tokens, burst, gap) = if cli.smoke { (150, 64, 30_000) } else { (600, 64, 60_000) };
    let lowutil = measure_engines(tokens, burst, gap, seed);

    for p in &points {
        let mut w = JsonWriter::with_capacity(256);
        w.begin_object()
            .field_uint("channels", p.channels)
            .field_uint("requests", p.requests as u64)
            .field_uint("threads", threads as u64)
            .field_num("serial_s", p.serial_s)
            .field_num("parallel_s", p.parallel_s)
            .field_num("serial_rps", p.requests as f64 / p.serial_s.max(1e-12))
            .field_num("parallel_rps", p.requests as f64 / p.parallel_s.max(1e-12))
            .field_num("speedup", p.speedup())
            .field_bool("stats_match", true)
            .field_uint("reads", p.result.stats.reads)
            .field_uint("writes", p.result.stats.writes)
            .field_num("hit_rate", p.result.stats.hit_rate())
            .field_uint("finish_cycle", p.result.stats.finish_cycle)
            .end_object();
        emit_run(&cli, "perf_dram", &[("channels", &json::number(p.channels as f64))], &w.finish());
    }

    {
        let p = &lowutil;
        let mut w = JsonWriter::with_capacity(256);
        w.begin_object()
            .field_str("mode", "lowutil")
            .field_uint("channels", p.channels)
            .field_uint("requests", p.requests as u64)
            .field_num("stepped_s", p.stepped_s)
            .field_num("event_s", p.event_s)
            .field_num("stepped_rps", p.requests as f64 / p.stepped_s.max(1e-12))
            .field_num("event_rps", p.requests as f64 / p.event_s.max(1e-12))
            .field_num("event_speedup", p.speedup())
            .field_bool("stats_match", true)
            .field_num("bus_utilization", p.result.stats.bus_utilization())
            .field_uint("finish_cycle", p.result.stats.finish_cycle)
            .end_object();
        emit_run(&cli, "perf_dram", &[("mode", &json::escaped("lowutil"))], &w.finish());
    }

    if !cli.json {
        let rows: Vec<Vec<String>> = points
            .iter()
            .map(|p| {
                vec![
                    p.channels.to_string(),
                    p.requests.to_string(),
                    format!("{:.0}", p.requests as f64 / p.serial_s.max(1e-12)),
                    format!("{:.0}", p.requests as f64 / p.parallel_s.max(1e-12)),
                    format!("{:.2}x", p.speedup()),
                    "yes".into(),
                ]
            })
            .collect();
        print_table(
            &format!("perf_dram — serial vs {threads}-thread scheduling"),
            &["channels", "requests", "serial req/s", "parallel req/s", "speedup", "stats=="],
            &rows,
        );
        print_table(
            "perf_dram — cycle-stepped vs next-event engine (low-utilization trace)",
            &["channels", "requests", "stepped req/s", "event req/s", "speedup", "stats=="],
            &[vec![
                lowutil.channels.to_string(),
                lowutil.requests.to_string(),
                format!("{:.0}", lowutil.requests as f64 / lowutil.stepped_s.max(1e-12)),
                format!("{:.0}", lowutil.requests as f64 / lowutil.event_s.max(1e-12)),
                format!("{:.2}x", lowutil.speedup()),
                "yes".into(),
            ]],
        );
    }

    let widest = points.last().expect("sweep is non-empty");
    let mut manifest = RunManifest::new("perf_dram", seed);
    manifest
        .config_uint("threads", threads as u64)
        .config_uint("cores", cores as u64)
        .config_uint("per_channel_requests", per_channel as u64)
        .config_bool("smoke", cli.smoke);
    for p in &points {
        manifest.result_num(&format!("speedup_ch{}", p.channels), p.speedup());
        manifest.result_num(
            &format!("parallel_rps_ch{}", p.channels),
            p.requests as f64 / p.parallel_s.max(1e-12),
        );
    }
    manifest.result_num("speedup_widest", widest.speedup());
    manifest.result_num("event_speedup_lowutil", lowutil.speedup());
    manifest.result_num("event_rps_lowutil", lowutil.requests as f64 / lowutil.event_s.max(1e-12));
    cli.emit_manifest(&manifest);

    if enforce && cores >= 4 && widest.speedup() < 2.0 {
        eprintln!(
            "perf_dram: widest sweep point reached only {:.2}x with {threads} workers on \
             {cores} cores (need >= 2x)",
            widest.speedup()
        );
        std::process::exit(1);
    }
    if enforce && lowutil.speedup() < 5.0 {
        eprintln!(
            "perf_dram: next-event engine reached only {:.2}x the cycle-stepped req/s on the \
             low-utilization trace (need >= 5x)",
            lowutil.speedup()
        );
        std::process::exit(1);
    }
}
