//! Regenerates paper Fig. 16: TTLT on the two datasets, normalized to
//! hybrid-static.

use facil_bench::{fig16_datasets, headline_geomeans, print_table};

fn main() {
    let rows = fig16_datasets(42, 128);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.platform.to_string(),
                r.dataset.clone(),
                format!("{:.2}x", r.soc_only),
                "1.00x".into(),
                format!("{:.2}x", r.hybrid_dynamic),
                format!("{:.2}x", r.facil),
            ]
        })
        .collect();
    print_table(
        "Fig. 16: TTLT speedup over hybrid-static (128 sampled queries, seed 42)",
        &["platform", "dataset", "SoC-only", "hybrid-static", "hybrid-dynamic", "FACIL"],
        &table,
    );
    for (name, g) in headline_geomeans(&rows) {
        println!("FACIL TTLT geomean on {name}: {g:.2}x");
    }
    println!("paper: ~1.20x on both datasets; ~3.55x over SoC-only");
}
