//! Serving-load extension experiment: TTFT percentiles under a Poisson
//! query stream, per strategy and arrival rate — how much interactive load
//! each strategy sustains before responsiveness collapses.

use facil_bench::print_table;
use facil_sim::{serve, InferenceSim, ServingConfig, Strategy};
use facil_soc::{Platform, PlatformId};
use facil_workloads::Dataset;

fn main() {
    let platform = Platform::get(PlatformId::Iphone);
    let sim = InferenceSim::new(platform);
    let dataset = Dataset::code_autocompletion_like(42, 96);
    println!(
        "platform: {} | dataset: {} ({} queries, geomean prefill {:.0})",
        PlatformId::Iphone,
        dataset.name,
        dataset.queries.len(),
        dataset.geomean_prefill()
    );

    let mut rows = Vec::new();
    for strategy in [Strategy::HybridStatic, Strategy::HybridDynamic, Strategy::FacilDynamic] {
        for qps in [0.2, 0.5, 1.0, 2.0] {
            let r = serve(&sim, strategy, &dataset, ServingConfig { arrival_qps: qps, seed: 9 });
            rows.push(vec![
                strategy.to_string(),
                format!("{qps:.1}"),
                format!("{:.0}", r.ttft_p50_ms),
                format!("{:.0}", r.ttft_p95_ms),
                format!("{:.0}%", r.utilization * 100.0),
                r.queue_peak.to_string(),
            ]);
        }
    }
    print_table(
        "Serving load: TTFT under Poisson arrivals (queueing included)",
        &["strategy", "arrivals/s", "TTFT p50 (ms)", "TTFT p95 (ms)", "device util", "queue peak"],
        &rows,
    );
    println!("\nFACIL's shorter prefills keep tail TTFT bounded at rates that saturate the baseline.");
}
