//! Serving-load extension experiment: TTFT percentiles under a Poisson
//! query stream, per strategy and arrival rate — how much interactive load
//! each strategy sustains before responsiveness collapses.
//!
//! Each (strategy, rate) point is served twice: by the original FCFS
//! run-to-completion scheduler (`facil_sim::serving::serve`, kept as the
//! comparison baseline) and by the continuous-batching simulator
//! (`facil_serve::run_serving`, unbounded queue so the comparison is pure
//! scheduling). Pass `--json` to emit one JSON object per point instead of
//! the table.

use facil_bench::{print_table, BenchCli};
use facil_serve::{run_serving, ServeConfig};
use facil_sim::{serve, InferenceSim, ServingConfig, Strategy};
use facil_soc::{Platform, PlatformId};
use facil_telemetry::{JsonWriter, RunManifest};
use facil_workloads::{ArrivalProcess, Dataset};

fn main() {
    let (cli, _) = BenchCli::parse();
    let seed = cli.seed_or(9);
    let platform = Platform::get(PlatformId::Iphone);
    let sim = InferenceSim::new(platform).expect("default model fits");
    let n = if cli.smoke { 24 } else { 96 };
    let dataset = Dataset::code_autocompletion_like(42, n);
    if !cli.json {
        println!(
            "platform: {} | dataset: {} ({} queries, geomean prefill {:.0})",
            PlatformId::Iphone,
            dataset.name,
            dataset.queries.len(),
            dataset.geomean_prefill()
        );
    }

    let rates: &[f64] = if cli.smoke { &[0.5, 2.0] } else { &[0.2, 0.5, 1.0, 2.0] };
    let mut points = 0u64;
    let mut rows = Vec::new();
    for strategy in [Strategy::HybridStatic, Strategy::HybridDynamic, Strategy::FacilDynamic] {
        for &qps in rates {
            let fcfs = serve(&sim, strategy, &dataset, ServingConfig { arrival_qps: qps, seed });
            let cfg = ServeConfig {
                strategy,
                seed,
                queue_cap: 1 << 20,
                fmfi: 0.0,
                ..ServeConfig::default()
            };
            let cb = run_serving(&sim, &dataset, &ArrivalProcess::Poisson { qps }, cfg)
                .expect("serving run with a valid config");
            points += 1;
            if cli.json {
                let mut w = JsonWriter::with_capacity(1024);
                w.begin_object()
                    .field_str("strategy", &strategy.to_string())
                    .field_num("qps", qps)
                    .key("fcfs")
                    .begin_object()
                    .field_num("ttft_p50_ms", fcfs.ttft_p50_ms)
                    .field_num("ttft_p95_ms", fcfs.ttft_p95_ms)
                    .field_num("ttlt_p50_ms", fcfs.ttlt_p50_ms)
                    .field_num("utilization", fcfs.utilization)
                    .field_uint("queue_peak", fcfs.queue_peak as u64)
                    .end_object()
                    .field_raw("serve", &cb.to_json())
                    .end_object();
                println!("{}", w.finish());
            } else {
                rows.push(vec![
                    strategy.to_string(),
                    format!("{qps:.1}"),
                    format!("{:.0}", fcfs.ttft_p50_ms),
                    format!("{:.0}", fcfs.ttft_p95_ms),
                    format!("{:.0}", cb.ttft_ms.p50),
                    format!("{:.0}", cb.ttft_ms.p95),
                    format!("{:.0}%", cb.utilization * 100.0),
                    cb.devices[0].queue_peak.to_string(),
                ]);
            }
        }
    }
    if !cli.json {
        print_table(
            "Serving load: TTFT under Poisson arrivals (queueing included)",
            &[
                "strategy",
                "arrivals/s",
                "FCFS p50 (ms)",
                "FCFS p95 (ms)",
                "CB p50 (ms)",
                "CB p95 (ms)",
                "CB util",
                "CB queue peak",
            ],
            &rows,
        );
        println!(
            "\nFACIL's shorter prefills keep tail TTFT bounded at rates that saturate the \
             baseline; continuous batching pushes the sustainable rate further still."
        );
    }

    let mut manifest = RunManifest::new("serving_load", seed);
    manifest
        .config_str("platform", "iphone")
        .config_uint("queries", n as u64)
        .config_bool("smoke", cli.smoke);
    manifest.result_uint("points", points);
    cli.emit_manifest(&manifest);
}
