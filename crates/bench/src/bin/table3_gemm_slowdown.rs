//! Regenerates paper Table III: GEMM slowdown on the PIM-optimized layout.

use facil_bench::{print_table, table3_gemm_slowdown, BenchCli};
use facil_soc::PlatformId;
use facil_telemetry::RunManifest;

fn main() {
    let (cli, _) = BenchCli::parse();
    let prefills: &[u64] = if cli.smoke { &[4, 64] } else { &[4, 16, 64] };
    let rows = table3_gemm_slowdown(&PlatformId::all(), prefills);
    if !cli.json {
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                let mut v = vec![r.platform.to_string(), r.group.to_string()];
                v.extend(r.slowdowns.iter().map(|s| format!("{:.2}%", s * 100.0)));
                v
            })
            .collect();
        let mut headers = vec!["platform".to_string(), "weights".to_string()];
        headers.extend(prefills.iter().map(|p| format!("P={p}")));
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        print_table("Table III: GEMM slowdown on PIM-optimized layout", &header_refs, &table);
        println!("\npaper worst cases: Jetson 2.1%, MacBook 0.1%, IdeaPad 1.1%, iPhone 1.6%");
    }

    let sweep: Vec<String> = prefills.iter().map(u64::to_string).collect();
    let mut manifest = RunManifest::new("table3_gemm_slowdown", cli.seed_or(0));
    manifest.config_raw("prefills", &format!("[{}]", sweep.join(",")));
    for id in PlatformId::all() {
        let worst = rows
            .iter()
            .filter(|r| r.platform == id)
            .flat_map(|r| r.slowdowns.iter().copied())
            .fold(0.0f64, f64::max);
        manifest.result_num(&format!("worst_slowdown_{id}"), worst);
    }
    cli.emit_manifest(&manifest);
}
