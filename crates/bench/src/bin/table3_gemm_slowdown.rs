//! Regenerates paper Table III: GEMM slowdown on the PIM-optimized layout.

use facil_bench::{print_table, table3_gemm_slowdown};
use facil_soc::PlatformId;

fn main() {
    let prefills = [4, 16, 64];
    let rows = table3_gemm_slowdown(&PlatformId::all(), &prefills);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mut v = vec![r.platform.to_string(), r.group.to_string()];
            v.extend(r.slowdowns.iter().map(|s| format!("{:.2}%", s * 100.0)));
            v
        })
        .collect();
    print_table(
        "Table III: GEMM slowdown on PIM-optimized layout",
        &["platform", "weights", "P=4", "P=16", "P=64"],
        &table,
    );
    println!("\npaper worst cases: Jetson 2.1%, MacBook 0.1%, IdeaPad 1.1%, iPhone 1.6%");
}
