//! Serving subsystem showcase: the three claims of the `facil-serve`
//! continuous-batching simulator, as reproducible sweeps.
//!
//! 1. **Continuous batching vs FCFS** — sustainable p95 TTFT across
//!    offered rates, same strategy and arrival sample.
//! 2. **Admission control** — bounding the admission queue keeps the
//!    served tail flat past saturation, trading goodput for latency.
//! 3. **Fleet mode** — sharding one stream across N devices under
//!    round-robin vs least-loaded routing.
//!
//! Pass `--json` to emit one tagged JSON object per run (JSONL) instead of
//! the tables.

use facil_bench::print_table;
use facil_serve::{run_fleet, run_serving, FleetConfig, Routing, ServeConfig, ServeReport};
use facil_sim::{serve, InferenceSim, ServingConfig, Strategy};
use facil_soc::{Platform, PlatformId};
use facil_workloads::{ArrivalProcess, Dataset};

fn emit(json: bool, experiment: &str, params: &str, report: &ServeReport) {
    if json {
        println!("{{\"experiment\":\"{experiment}\",{params},\"report\":{}}}", report.to_json());
    }
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let platform = Platform::get(PlatformId::Iphone);
    let sim = InferenceSim::new(platform).expect("default model fits");
    let dataset = Dataset::code_autocompletion_like(42, 96);
    let strategy = Strategy::FacilDynamic;
    if !json {
        println!(
            "platform: {} | dataset: {} ({} queries) | strategy: {strategy}",
            PlatformId::Iphone,
            dataset.name,
            dataset.queries.len(),
        );
    }

    // -- 1. Continuous batching vs FCFS across offered rates ---------------
    let mut rows = Vec::new();
    for qps in [0.5, 1.0, 2.0, 4.0, 8.0, 16.0] {
        let fcfs = serve(&sim, strategy, &dataset, ServingConfig { arrival_qps: qps, seed: 9 });
        let cfg = ServeConfig {
            strategy,
            seed: 9,
            queue_cap: 1 << 20,
            fmfi: 0.0,
            ..ServeConfig::default()
        };
        let cb = run_serving(&sim, &dataset, &ArrivalProcess::Poisson { qps }, cfg)
            .expect("serving run with a valid config");
        emit(json, "cb_vs_fcfs", &format!("\"qps\":{qps}"), &cb);
        rows.push(vec![
            format!("{qps:.1}"),
            format!("{:.0}", fcfs.ttft_p95_ms),
            format!("{:.0}", cb.ttft_ms.p95),
            format!("{:.2}", cb.goodput_qps),
            format!("{:.1}", cb.tbt_ms.p95),
            format!("{:.0}%", cb.utilization * 100.0),
            format!("{:.1}", cb.devices[0].mean_batch),
        ]);
    }
    if !json {
        print_table(
            "1. Continuous batching vs FCFS (unbounded queue, one device)",
            &[
                "arrivals/s",
                "FCFS TTFT p95 (ms)",
                "CB TTFT p95 (ms)",
                "CB goodput/s",
                "CB TBT p95 (ms)",
                "util",
                "mean batch",
            ],
            &rows,
        );
    }

    // -- 2. Admission control past saturation ------------------------------
    let mut rows = Vec::new();
    for (label, queue_cap) in [("8", 8usize), ("16", 16), ("64", 64), ("unbounded", 1 << 20)] {
        let cfg = ServeConfig { strategy, seed: 9, queue_cap, fmfi: 0.0, ..ServeConfig::default() };
        let r = run_serving(&sim, &dataset, &ArrivalProcess::Poisson { qps: 64.0 }, cfg)
            .expect("serving run with a valid config");
        emit(json, "admission_control", &format!("\"queue_cap\":\"{label}\",\"qps\":64.0"), &r);
        rows.push(vec![
            label.to_string(),
            r.completed.to_string(),
            r.shed.to_string(),
            format!("{:.0}", r.ttft_ms.p95),
            format!("{:.2}", r.goodput_qps),
            format!("{:.0}%", r.utilization * 100.0),
        ]);
    }
    if !json {
        print_table(
            "2. Admission control at 64 arrivals/s (past saturation)",
            &["queue cap", "completed", "shed", "TTFT p95 (ms)", "goodput/s", "util"],
            &rows,
        );
    }

    // -- 3. Fleet mode ------------------------------------------------------
    let mut rows = Vec::new();
    for devices in [1usize, 2, 4] {
        for routing in [Routing::RoundRobin, Routing::LeastLoaded] {
            let cfg = ServeConfig { strategy, seed: 9, fmfi: 0.0, ..ServeConfig::default() };
            let r = run_fleet(
                &sim,
                &dataset,
                &ArrivalProcess::Poisson { qps: 8.0 },
                cfg,
                FleetConfig { devices, routing },
            )
            .expect("fleet run with a valid config");
            emit(
                json,
                "fleet",
                &format!("\"devices\":{devices},\"routing\":\"{routing}\",\"qps\":8.0"),
                &r,
            );
            let utils: Vec<f64> = r.devices.iter().map(|d| d.utilization).collect();
            let min_u = utils.iter().copied().fold(f64::INFINITY, f64::min);
            let max_u = utils.iter().copied().fold(0.0f64, f64::max);
            rows.push(vec![
                devices.to_string(),
                routing.to_string(),
                r.completed.to_string(),
                r.shed.to_string(),
                format!("{:.0}", r.ttft_ms.p95),
                format!("{:.2}", r.goodput_qps),
                format!("{:.0}%-{:.0}%", min_u * 100.0, max_u * 100.0),
            ]);
        }
    }
    if !json {
        print_table(
            "3. Fleet scaling at 8 arrivals/s",
            &[
                "devices",
                "routing",
                "completed",
                "shed",
                "TTFT p95 (ms)",
                "goodput/s",
                "device util",
            ],
            &rows,
        );
        println!(
            "\nIteration-level scheduling lifts the sustainable rate over FCFS; bounding the \
             queue keeps the served tail flat past saturation; least-loaded routing evens \
             device utilization where round-robin leaves stragglers."
        );
    }
}
