//! Serving subsystem showcase: the three claims of the `facil-serve`
//! continuous-batching simulator, as reproducible sweeps.
//!
//! 1. **Continuous batching vs FCFS** — sustainable p95 TTFT across
//!    offered rates, same strategy and arrival sample.
//! 2. **Admission control** — bounding the admission queue keeps the
//!    served tail flat past saturation, trading goodput for latency.
//! 3. **Fleet mode** — sharding one stream across N devices under
//!    round-robin vs least-loaded routing.
//!
//! Pass `--json` to emit one tagged JSON object per run (JSONL) instead of
//! the tables; `--smoke` shrinks every sweep for CI; `--trace <path>`
//! writes a Chrome/Perfetto trace with DRAM-command, PIM-kernel and serve
//! scheduler tracks (open it in `ui.perfetto.dev`).

use std::cell::RefCell;
use std::rc::Rc;

use facil_bench::{emit_run, print_table, BenchCli};
use facil_core::{select_mapping_2mb, DType, MappingScheme, MatrixConfig};
use facil_dram::{replay_on, sequential_trace, DramSystem, Op, TraceOptions};
use facil_llm::ModelConfig;
use facil_pim::PimEngine;
use facil_serve::{
    run_fleet, run_fleet_with_faults_traced, run_serving, FaultEvent, FaultKind, FaultPlan,
    FleetConfig, Routing, ServeConfig,
};
use facil_sim::{serve, InferenceSim, ServingConfig, Strategy};
use facil_soc::{Platform, PlatformId};
use facil_telemetry::json::{escaped, number};
use facil_telemetry::{RingSink, RunManifest};
use facil_workloads::{ArrivalProcess, Dataset};

/// Record one Chrome trace covering all three instrumented layers: a short
/// logged DRAM replay (per-bank command tracks), one PIM GEMV kernel span,
/// and a traced two-device fleet run with a mid-run crash (admissions,
/// batches, failovers, retries on the serve tracks).
fn record_trace(cli: &BenchCli, sim: &InferenceSim, dataset: &Dataset, cfg: ServeConfig) {
    let sink = Rc::new(RefCell::new(RingSink::new(1 << 20)));
    let mut handle = sink.clone();

    let p = Platform::get(PlatformId::Iphone);
    let scheme = MappingScheme::conventional(p.dram.topology);
    let mut sys = DramSystem::new(&p.dram);
    sys.enable_logging();
    replay_on(&mut sys, &scheme, sequential_trace(0, 256, 32, Op::Read), TraceOptions::default())
        .expect("sequential demo trace maps");
    sys.export_trace(&mut handle);

    let model = ModelConfig::by_name(p.model_name);
    let m = MatrixConfig::new(model.hidden, model.hidden, DType::F16);
    let decision = select_mapping_2mb(&m, p.dram.topology, &p.pim_arch).expect("mappable");
    let engine = PimEngine::new(p.dram.clone(), p.pim_arch);
    engine.gemv_traced(&m, &decision, &mut handle, 0.0);

    let plan = FaultPlan {
        events: vec![FaultEvent {
            device: 0,
            at_s: 0.5,
            kind: FaultKind::Crash { recover_s: None },
        }],
        max_retries: 4,
        retry_backoff_s: 0.05,
        ..FaultPlan::none()
    };
    let fleet = FleetConfig { devices: 2, routing: Routing::LeastLoaded };
    run_fleet_with_faults_traced(
        sim,
        dataset,
        &ArrivalProcess::Poisson { qps: 8.0 },
        cfg,
        fleet,
        &plan,
        sink.clone(),
    )
    .expect("valid plan");

    cli.write_trace(&sink.borrow());
}

fn main() {
    let (cli, _) = BenchCli::parse();
    let seed = cli.seed_or(9);
    let platform = Platform::get(PlatformId::Iphone);
    let sim = InferenceSim::new(platform).expect("default model fits");
    let n = if cli.smoke { 24 } else { 96 };
    let dataset = Dataset::code_autocompletion_like(42, n);
    let strategy = Strategy::FacilDynamic;
    if !cli.json {
        println!(
            "platform: {} | dataset: {} ({} queries) | strategy: {strategy}",
            PlatformId::Iphone,
            dataset.name,
            dataset.queries.len(),
        );
    }
    let mut runs = 0u64;
    let mut peak_goodput = 0.0f64;

    // -- 1. Continuous batching vs FCFS across offered rates ---------------
    let rates: &[f64] = if cli.smoke { &[0.5, 8.0] } else { &[0.5, 1.0, 2.0, 4.0, 8.0, 16.0] };
    let mut rows = Vec::new();
    for &qps in rates {
        let fcfs = serve(&sim, strategy, &dataset, ServingConfig { arrival_qps: qps, seed });
        let cfg =
            ServeConfig { strategy, seed, queue_cap: 1 << 20, fmfi: 0.0, ..ServeConfig::default() };
        let cb = run_serving(&sim, &dataset, &ArrivalProcess::Poisson { qps }, cfg)
            .expect("serving run with a valid config");
        emit_run(&cli, "cb_vs_fcfs", &[("qps", &number(qps))], &cb.to_json());
        runs += 1;
        peak_goodput = peak_goodput.max(cb.goodput_qps);
        rows.push(vec![
            format!("{qps:.1}"),
            format!("{:.0}", fcfs.ttft_p95_ms),
            format!("{:.0}", cb.ttft_ms.p95),
            format!("{:.2}", cb.goodput_qps),
            format!("{:.1}", cb.tbt_ms.p95),
            format!("{:.0}%", cb.utilization * 100.0),
            format!("{:.1}", cb.devices[0].mean_batch),
        ]);
    }
    if !cli.json {
        print_table(
            "1. Continuous batching vs FCFS (unbounded queue, one device)",
            &[
                "arrivals/s",
                "FCFS TTFT p95 (ms)",
                "CB TTFT p95 (ms)",
                "CB goodput/s",
                "CB TBT p95 (ms)",
                "util",
                "mean batch",
            ],
            &rows,
        );
    }

    // -- 2. Admission control past saturation ------------------------------
    let caps: &[(&str, usize)] = if cli.smoke {
        &[("8", 8), ("unbounded", 1 << 20)]
    } else {
        &[("8", 8), ("16", 16), ("64", 64), ("unbounded", 1 << 20)]
    };
    let mut rows = Vec::new();
    for &(label, queue_cap) in caps {
        let cfg = ServeConfig { strategy, seed, queue_cap, fmfi: 0.0, ..ServeConfig::default() };
        let r = run_serving(&sim, &dataset, &ArrivalProcess::Poisson { qps: 64.0 }, cfg)
            .expect("serving run with a valid config");
        emit_run(
            &cli,
            "admission_control",
            &[("queue_cap", &escaped(label)), ("qps", "64.0")],
            &r.to_json(),
        );
        runs += 1;
        peak_goodput = peak_goodput.max(r.goodput_qps);
        rows.push(vec![
            label.to_string(),
            r.completed.to_string(),
            r.shed.to_string(),
            format!("{:.0}", r.ttft_ms.p95),
            format!("{:.2}", r.goodput_qps),
            format!("{:.0}%", r.utilization * 100.0),
        ]);
    }
    if !cli.json {
        print_table(
            "2. Admission control at 64 arrivals/s (past saturation)",
            &["queue cap", "completed", "shed", "TTFT p95 (ms)", "goodput/s", "util"],
            &rows,
        );
    }

    // -- 3. Fleet mode ------------------------------------------------------
    let fleet_sizes: &[usize] = if cli.smoke { &[1, 2] } else { &[1, 2, 4] };
    let mut rows = Vec::new();
    for &devices in fleet_sizes {
        for routing in [Routing::RoundRobin, Routing::LeastLoaded] {
            let cfg = ServeConfig { strategy, seed, fmfi: 0.0, ..ServeConfig::default() };
            let r = run_fleet(
                &sim,
                &dataset,
                &ArrivalProcess::Poisson { qps: 8.0 },
                cfg,
                FleetConfig { devices, routing },
            )
            .expect("fleet run with a valid config");
            emit_run(
                &cli,
                "fleet",
                &[
                    ("devices", &devices.to_string()),
                    ("routing", &escaped(&routing.to_string())),
                    ("qps", "8.0"),
                ],
                &r.to_json(),
            );
            runs += 1;
            peak_goodput = peak_goodput.max(r.goodput_qps);
            let utils: Vec<f64> = r.devices.iter().map(|d| d.utilization).collect();
            let min_u = utils.iter().copied().fold(f64::INFINITY, f64::min);
            let max_u = utils.iter().copied().fold(0.0f64, f64::max);
            rows.push(vec![
                devices.to_string(),
                routing.to_string(),
                r.completed.to_string(),
                r.shed.to_string(),
                format!("{:.0}", r.ttft_ms.p95),
                format!("{:.2}", r.goodput_qps),
                format!("{:.0}%-{:.0}%", min_u * 100.0, max_u * 100.0),
            ]);
        }
    }
    if !cli.json {
        print_table(
            "3. Fleet scaling at 8 arrivals/s",
            &[
                "devices",
                "routing",
                "completed",
                "shed",
                "TTFT p95 (ms)",
                "goodput/s",
                "device util",
            ],
            &rows,
        );
        println!(
            "\nIteration-level scheduling lifts the sustainable rate over FCFS; bounding the \
             queue keeps the served tail flat past saturation; least-loaded routing evens \
             device utilization where round-robin leaves stragglers."
        );
    }

    if cli.wants_trace() {
        let cfg = ServeConfig { strategy, seed, fmfi: 0.0, ..ServeConfig::default() };
        record_trace(&cli, &sim, &dataset, cfg);
    }

    let mut manifest = RunManifest::new("serving_v2", seed);
    manifest
        .config_str("platform", "iphone")
        .config_str("strategy", &strategy.to_string())
        .config_uint("queries", n as u64)
        .config_bool("smoke", cli.smoke);
    manifest.result_uint("runs", runs).result_num("peak_goodput_qps", peak_goodput);
    cli.emit_manifest(&manifest);
}
