//! Runs every ablation: mapping flexibility, re-layout policy,
//! co-scheduling, PIM microarchitecture, energy, and quantization.

use facil_bench::ablations::*;
use facil_bench::{print_table, BenchCli};
use facil_soc::PlatformId;
use facil_telemetry::RunManifest;
use facil_workloads::Query;

fn main() {
    let (cli, _) = BenchCli::parse();

    let flex = ablation_mapping_flexibility(PlatformId::Iphone);
    let rows: Vec<Vec<String>> = flex
        .iter()
        .map(|r| {
            vec![
                r.name.into(),
                r.flexible_partitions.to_string(),
                r.fixed_partitions.to_string(),
                format!("{:.1}", r.flexible_us),
                format!("{:.1}", r.fixed_us),
                format!("{:.2}x", r.slowdown),
            ]
        })
        .collect();
    if !cli.json {
        print_table(
            "Ablation: flexible per-page MapID vs one global PIM mapping (iPhone, Phi-1.5)",
            &["weight", "flex parts", "fixed parts", "flex us", "fixed us", "fixed/flex"],
            &rows,
        );
    }

    let relayout = ablation_relayout_policy(Query { prefill: 32, decode: 32 });
    let rows: Vec<Vec<String>> = relayout
        .iter()
        .map(|(id, od, aao)| {
            vec![
                id.to_string(),
                format!("{od:.0} ms"),
                format!("{aao:.0} ms"),
                format!("{:.2}x", aao / od),
            ]
        })
        .collect();
    if !cli.json {
        print_table(
            "Ablation: re-layout policy, P32/D32 (paper footnote 2)",
            &["platform", "on-demand TTLT", "all-at-once TTLT", "penalty"],
            &rows,
        );
    }

    let rows: Vec<Vec<String>> = ablation_cosched(PlatformId::Iphone)
        .iter()
        .map(|(policy, rate, tput, lat, reopens)| {
            vec![
                policy.to_string(),
                format!("{rate:.3}"),
                format!("{:.2}", tput),
                format!("{lat:.0}"),
                reopens.to_string(),
            ]
        })
        .collect();
    if !cli.json {
        print_table(
            "Ablation: SoC-PIM co-scheduling (paper Section V-C)",
            &["policy", "SoC req/cycle", "PIM throughput", "SoC latency (cyc)", "PIM row reopens"],
            &rows,
        );
    }

    let rows: Vec<Vec<String>> = ablation_pim_microarch()
        .iter()
        .map(|(db, mi, us)| {
            vec![
                if *db { "double-buffered" } else { "single" }.into(),
                mi.to_string(),
                format!("{us:.0} us"),
            ]
        })
        .collect();
    if !cli.json {
        print_table(
            "Ablation: PIM global-buffer & MAC rate (Jetson, FC1 GEMV)",
            &["global buffer", "MAC interval (cyc)", "GEMV time"],
            &rows,
        );
    }

    let energy = ablation_energy(64);
    let rows: Vec<Vec<String>> = energy
        .iter()
        .map(|(id, soc, pim, ratio)| {
            vec![
                id.to_string(),
                format!("{:.0} uJ", soc),
                format!("{:.0} uJ", pim),
                format!("{ratio:.2}x"),
            ]
        })
        .collect();
    if !cli.json {
        print_table(
            "Ablation: DRAM-side decode energy per token (ctx 64)",
            &["platform", "SoC GEMV", "PIM GEMV", "SoC/PIM"],
            &rows,
        );
    }

    let quant = ablation_quantized_e2e(PlatformId::Iphone);
    let rows: Vec<Vec<String>> = quant
        .iter()
        .map(|(dt, relayout, ttft, speedup, decode)| {
            vec![
                dt.to_string(),
                format!("{relayout:.0} ms"),
                format!("{ttft:.0} ms"),
                format!("{speedup:.2}x"),
                format!("{decode:.2} ms"),
            ]
        })
        .collect();
    if !cli.json {
        print_table(
            "Ablation: weight-only quantization end to end (iPhone, P32)",
            &["dtype", "relayout", "FACIL TTFT", "TTFT speedup", "PIM ms/token"],
            &rows,
        );
    }

    let rows: Vec<Vec<String>> = ablation_pim_style()
        .iter()
        .map(|(style, map_id, layout, us)| {
            vec![style.clone(), map_id.to_string(), layout.clone(), format!("{us:.1} us")]
        })
        .collect();
    if !cli.json {
        print_table(
            "Ablation: AiM-style vs HBM-PIM-style mapping (1-channel LPDDR5, 1024x1024 fp16)",
            &["style", "MapID", "scheme", "GEMV"],
            &rows,
        );
    }

    let rows: Vec<Vec<String>> = ablation_dtype(PlatformId::Iphone)
        .iter()
        .map(|(dt, map_id, parts, us)| {
            vec![dt.to_string(), map_id.to_string(), parts.to_string(), format!("{us:.1} us")]
        })
        .collect();
    if !cli.json {
        print_table(
            "Ablation: weight precision (iPhone, hidden x hidden GEMV)",
            &["dtype", "MapID", "partitions", "PIM GEMV"],
            &rows,
        );
    }

    let mut manifest = RunManifest::new("ablations", cli.seed_or(0));
    manifest.config_str("platform", "iphone");
    let flex_worst = flex.iter().map(|r| r.slowdown).fold(0.0f64, f64::max);
    let relayout_worst = relayout.iter().map(|(_, od, aao)| aao / od).fold(0.0f64, f64::max);
    let energy_worst = energy.iter().map(|(_, _, _, ratio)| *ratio).fold(0.0f64, f64::max);
    manifest
        .result_num("mapping_flex_worst_slowdown", flex_worst)
        .result_num("relayout_worst_penalty", relayout_worst)
        .result_num("energy_worst_soc_over_pim", energy_worst);
    cli.emit_manifest(&manifest);
}
