//! Regenerates paper Fig. 3: potential speedup of PIM-offloaded decode.

use facil_bench::{fig03_pim_speedup, print_table};

fn main() {
    let r = fig03_pim_speedup(64);
    print_table(
        "Fig. 3: decode of 64 tokens (in=out=64) on Jetson, Llama3-8B",
        &["executor", "time (ms)", "speedup vs GPU"],
        &[
            vec!["GPU (SoC)".into(), format!("{:.1}", r.soc_ms), "1.00x".into()],
            vec![
                "ideal NPU".into(),
                format!("{:.1}", r.ideal_npu_ms),
                format!("{:.2}x", r.soc_ms / r.ideal_npu_ms),
            ],
            vec!["PIM".into(), format!("{:.1}", r.pim_ms), format!("{:.2}x", r.speedup_vs_soc)],
        ],
    );
    println!("\nPIM speedup over ideal NPU: {:.2}x  (paper: 3.32x)", r.speedup_vs_ideal_npu);
}
