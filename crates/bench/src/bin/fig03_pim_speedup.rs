//! Regenerates paper Fig. 3: potential speedup of PIM-offloaded decode.

use facil_bench::{fig03_pim_speedup, print_table, BenchCli};
use facil_telemetry::RunManifest;

fn main() {
    let (cli, _) = BenchCli::parse();
    let tokens = if cli.smoke { 16 } else { 64 };
    let r = fig03_pim_speedup(tokens);
    if !cli.json {
        print_table(
            &format!("Fig. 3: decode of {tokens} tokens (in=out={tokens}) on Jetson, Llama3-8B"),
            &["executor", "time (ms)", "speedup vs GPU"],
            &[
                vec!["GPU (SoC)".into(), format!("{:.1}", r.soc_ms), "1.00x".into()],
                vec![
                    "ideal NPU".into(),
                    format!("{:.1}", r.ideal_npu_ms),
                    format!("{:.2}x", r.soc_ms / r.ideal_npu_ms),
                ],
                vec!["PIM".into(), format!("{:.1}", r.pim_ms), format!("{:.2}x", r.speedup_vs_soc)],
            ],
        );
        println!("\nPIM speedup over ideal NPU: {:.2}x  (paper: 3.32x)", r.speedup_vs_ideal_npu);
    }

    let mut manifest = RunManifest::new("fig03_pim_speedup", cli.seed_or(0));
    manifest.config_str("platform", "jetson").config_uint("tokens", tokens);
    manifest
        .result_num("soc_ms", r.soc_ms)
        .result_num("ideal_npu_ms", r.ideal_npu_ms)
        .result_num("pim_ms", r.pim_ms)
        .result_num("speedup_vs_soc", r.speedup_vs_soc)
        .result_num("speedup_vs_ideal_npu", r.speedup_vs_ideal_npu);
    cli.emit_manifest(&manifest);
}
