//! Regenerates paper Fig. 14: TTLT speedup of FACIL over hybrid-static
//! across prefill:decode combinations.

use facil_bench::{fig14_ttlt, print_table};

fn main() {
    let combos = [(16, 16), (64, 16), (16, 64), (64, 64), (256, 64), (64, 256), (256, 256)];
    let series = fig14_ttlt(&combos);
    let headers: Vec<String> = combos.iter().map(|(p, d)| format!("P{p}/D{d}")).collect();
    let mut header_refs: Vec<&str> = vec!["platform"];
    header_refs.extend(headers.iter().map(|s| s.as_str()));
    let rows: Vec<Vec<String>> = series
        .iter()
        .map(|s| {
            let mut v = vec![s.platform.to_string()];
            v.extend(s.points.iter().map(|(_, sp)| format!("{sp:.3}x")));
            v
        })
        .collect();
    print_table("Fig. 14: FACIL TTLT speedup vs hybrid-static", &header_refs, &rows);
    println!("\npaper: ~10% improvement up to decode length 64, amortized for long decodes");
}
