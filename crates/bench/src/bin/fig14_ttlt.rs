//! Regenerates paper Fig. 14: TTLT speedup of FACIL over hybrid-static
//! across prefill:decode combinations.

use facil_bench::{fig14_ttlt, print_table, BenchCli};
use facil_telemetry::{JsonWriter, RunManifest};

fn main() {
    let (cli, _) = BenchCli::parse();
    let combos: &[(u64, u64)] = if cli.smoke {
        &[(16, 16), (256, 256)]
    } else {
        &[(16, 16), (64, 16), (16, 64), (64, 64), (256, 64), (64, 256), (256, 256)]
    };
    let series = fig14_ttlt(combos);
    if !cli.json {
        let headers: Vec<String> = combos.iter().map(|(p, d)| format!("P{p}/D{d}")).collect();
        let mut header_refs: Vec<&str> = vec!["platform"];
        header_refs.extend(headers.iter().map(|s| s.as_str()));
        let rows: Vec<Vec<String>> = series
            .iter()
            .map(|s| {
                let mut v = vec![s.platform.to_string()];
                v.extend(s.points.iter().map(|(_, sp)| format!("{sp:.3}x")));
                v
            })
            .collect();
        print_table("Fig. 14: FACIL TTLT speedup vs hybrid-static", &header_refs, &rows);
        println!("\npaper: ~10% improvement up to decode length 64, amortized for long decodes");
    }

    let mut manifest = RunManifest::new("fig14_ttlt", cli.seed_or(0));
    for s in &series {
        let mut w = JsonWriter::with_capacity(256);
        w.begin_array();
        for ((p, d), sp) in &s.points {
            w.begin_object()
                .field_uint("prefill", *p)
                .field_uint("decode", *d)
                .field_num("speedup", *sp)
                .end_object();
        }
        w.end_array();
        manifest.result_raw(&s.platform.to_string(), &w.finish());
    }
    cli.emit_manifest(&manifest);
}
