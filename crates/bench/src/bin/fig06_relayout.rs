//! Regenerates paper Fig. 6: TTFT inflation caused by weight re-layout.

use facil_bench::{fig06_relayout, print_table, BenchCli};
use facil_telemetry::{JsonWriter, RunManifest};

fn main() {
    let (cli, _) = BenchCli::parse();
    let prefills: &[u64] =
        if cli.smoke { &[4, 64, 512] } else { &[4, 8, 16, 32, 64, 128, 256, 512] };
    let points = fig06_relayout(prefills);
    if !cli.json {
        let rows: Vec<Vec<String>> = points
            .iter()
            .map(|p| {
                vec![
                    p.prefill.to_string(),
                    format!("{:.0}", p.ttft_ms),
                    format!("{:.0}", p.ttft_with_relayout_ms),
                    format!("{:.2}x", p.ttft_with_relayout_ms / p.ttft_ms),
                ]
            })
            .collect();
        print_table(
            "Fig. 6: TTFT with/without re-layout (Jetson, Llama3-8B)",
            &["prefill", "TTFT (ms)", "TTFT + re-layout (ms)", "inflation"],
            &rows,
        );
        println!("\npaper: ~100 ms -> ~300 ms (about 3x) around P=64");
    }

    let mut w = JsonWriter::with_capacity(512);
    w.begin_array();
    for p in &points {
        w.begin_object()
            .field_uint("prefill", p.prefill)
            .field_num("ttft_ms", p.ttft_ms)
            .field_num("ttft_with_relayout_ms", p.ttft_with_relayout_ms)
            .end_object();
    }
    w.end_array();
    let max_inflation =
        points.iter().map(|p| p.ttft_with_relayout_ms / p.ttft_ms).fold(0.0f64, f64::max);
    let sweep: Vec<String> = prefills.iter().map(u64::to_string).collect();
    let mut manifest = RunManifest::new("fig06_relayout", cli.seed_or(0));
    manifest.config_str("platform", "jetson");
    manifest.config_raw("prefills", &format!("[{}]", sweep.join(",")));
    manifest.result_raw("points", &w.finish()).result_num("max_inflation", max_inflation);
    cli.emit_manifest(&manifest);
}
