//! Regenerates paper Fig. 6: TTFT inflation caused by weight re-layout.

use facil_bench::{fig06_relayout, print_table};

fn main() {
    let points = fig06_relayout(&[4, 8, 16, 32, 64, 128, 256, 512]);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.prefill.to_string(),
                format!("{:.0}", p.ttft_ms),
                format!("{:.0}", p.ttft_with_relayout_ms),
                format!("{:.2}x", p.ttft_with_relayout_ms / p.ttft_ms),
            ]
        })
        .collect();
    print_table(
        "Fig. 6: TTFT with/without re-layout (Jetson, Llama3-8B)",
        &["prefill", "TTFT (ms)", "TTFT + re-layout (ms)", "inflation"],
        &rows,
    );
    println!("\npaper: ~100 ms -> ~300 ms (about 3x) around P=64");
}
