//! Regenerates paper Table I: huge-page model load time under memory
//! utilization and fragmentation.

use facil_bench::{print_table, table1_hugepage, BenchCli};
use facil_telemetry::{JsonWriter, RunManifest};

fn main() {
    let (cli, _) = BenchCli::parse();
    let ratios: &[f64] = if cli.smoke { &[2.5, 1.1] } else { &[2.5, 2.0, 1.5, 1.1] };
    let fmfis: &[f64] = if cli.smoke { &[0.05, 0.75] } else { &[0.05, 0.45, 0.75] };
    let cells = table1_hugepage(ratios, fmfis);
    if !cli.json {
        let mut rows = Vec::new();
        for (i, &fmfi) in fmfis.iter().enumerate() {
            let mut row = vec![format!("FMFI ~{fmfi:.2}")];
            for j in 0..ratios.len() {
                let c = &cells[i * ratios.len() + j];
                row.push(format!("{:.2}s ({:.2}x)", c.load_s, c.normalized));
            }
            rows.push(row);
        }
        let mut headers = vec![String::new()];
        headers.extend(ratios.iter().map(|r| format!("free={r}x")));
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        print_table(
            "Table I: Llama3-8B (16.2 GB) load time into 2 MB huge pages, 64 GB system",
            &header_refs,
            &rows,
        );
        println!("\npaper: 10.24s (1.16x) best case .. 16.72s (1.90x) worst case");
    }

    let mut w = JsonWriter::with_capacity(512);
    w.begin_array();
    for c in &cells {
        w.begin_object()
            .field_num("free_ratio", c.free_ratio)
            .field_num("fmfi", c.fmfi)
            .field_num("load_s", c.load_s)
            .field_num("normalized", c.normalized)
            .end_object();
    }
    w.end_array();
    let best = cells.iter().map(|c| c.load_s).fold(f64::INFINITY, f64::min);
    let worst = cells.iter().map(|c| c.load_s).fold(0.0f64, f64::max);
    let mut manifest = RunManifest::new("table1_hugepage", cli.seed_or(0));
    manifest.config_uint("cells", cells.len() as u64);
    manifest
        .result_raw("cells", &w.finish())
        .result_num("best_load_s", best)
        .result_num("worst_load_s", worst);
    cli.emit_manifest(&manifest);
}
