//! Regenerates paper Table I: huge-page model load time under memory
//! utilization and fragmentation.

use facil_bench::{print_table, table1_hugepage};

fn main() {
    let ratios = [2.5, 2.0, 1.5, 1.1];
    let fmfis = [0.05, 0.45, 0.75];
    let cells = table1_hugepage(&ratios, &fmfis);
    let mut rows = Vec::new();
    for (i, &fmfi) in fmfis.iter().enumerate() {
        let mut row = vec![format!("FMFI ~{fmfi:.2}")];
        for j in 0..ratios.len() {
            let c = &cells[i * ratios.len() + j];
            row.push(format!("{:.2}s ({:.2}x)", c.load_s, c.normalized));
        }
        rows.push(row);
    }
    print_table(
        "Table I: Llama3-8B (16.2 GB) load time into 2 MB huge pages, 64 GB system",
        &["", "free=2.5x", "free=2.0x", "free=1.5x", "free=1.1x"],
        &rows,
    );
    println!("\npaper: 10.24s (1.16x) best case .. 16.72s (1.90x) worst case");
}
