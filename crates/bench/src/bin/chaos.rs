//! Fault-injection showcase: graceful degradation and failover in the
//! `facil-serve` simulator, as reproducible experiments.
//!
//! 1. **Degraded mode** — a PIM-unit fault mid-run. FACIL's mapping keeps
//!    the weights SoC-readable, so it serves straight through at SoC GEMV
//!    speed; the hybrid baseline stalls for a full weight re-layout (and
//!    pays it again to come back when the PIM recovers).
//! 2. **Crash failover** — one device of a fleet crashes with work in
//!    flight. Pending and in-flight requests fail over to survivors under
//!    a bounded-retry policy; nothing is silently lost.
//! 3. **Fault-rate sweep** — seeded random fault plans at increasing
//!    crash rates: availability, goodput, and deadline-violation rate as
//!    the fleet gets less reliable.
//!
//! Pass `--json` to emit one tagged JSON object per run (JSONL) instead
//! of the tables; `--smoke` shrinks every experiment for CI;
//! `--trace <path>` writes a Chrome/Perfetto trace of the crash-failover
//! run (degraded-mode, crash, failover and retry events on serve tracks).

use std::cell::RefCell;
use std::rc::Rc;

use facil_bench::{emit_run, print_table, BenchCli};
use facil_serve::{
    run_fleet_with_faults, run_fleet_with_faults_traced, FaultEvent, FaultKind, FaultPlan,
    FaultRates, FleetConfig, Routing, ServeConfig,
};
use facil_sim::{InferenceSim, Strategy};
use facil_soc::{Platform, PlatformId};
use facil_telemetry::json::{escaped, number};
use facil_telemetry::{RingSink, RunManifest};
use facil_workloads::{ArrivalProcess, Dataset};

fn main() {
    let (cli, _) = BenchCli::parse();
    let seed = cli.seed_or(9);
    let platform = Platform::get(PlatformId::Iphone);
    let sim = InferenceSim::new(platform).expect("default model fits");
    let n = if cli.smoke { 16 } else { 48 };
    if !cli.json {
        println!(
            "platform: {} | {} queries per run{}",
            PlatformId::Iphone,
            n,
            if cli.smoke { " (smoke)" } else { "" }
        );
    }

    // -- 1. Degraded mode: PIM fault, FACIL vs hybrid ----------------------
    // Light load so the SoC-speed degraded device keeps up: the comparison
    // is service speed, not queue blow-up.
    let dataset = Dataset::code_autocompletion_like(42, n);
    let arrival = ArrivalProcess::Poisson { qps: 0.05 };
    let fleet1 = FleetConfig { devices: 1, routing: Routing::RoundRobin };
    let pim_fault = FaultPlan {
        events: vec![FaultEvent {
            device: 0,
            at_s: 2.0,
            kind: FaultKind::PimFault { duration_s: 1e6 },
        }],
        ..FaultPlan::none()
    };
    let mut rows = Vec::new();
    for strategy in [Strategy::FacilDynamic, Strategy::HybridStatic, Strategy::SocOnly] {
        let cfg =
            ServeConfig { strategy, seed, queue_cap: 1 << 20, fmfi: 0.0, ..ServeConfig::default() };
        let r = run_fleet_with_faults(&sim, &dataset, &arrival, cfg, fleet1, &pim_fault)
            .expect("valid plan");
        emit_run(
            &cli,
            "degraded_mode",
            &[("strategy", &escaped(&strategy.to_string())), ("qps", "0.05")],
            &r.to_json(),
        );
        rows.push(vec![
            strategy.to_string(),
            r.completed.to_string(),
            r.shed.to_string(),
            format!("{:.3}", r.goodput_qps),
            format!("{:.0}", r.ttft_ms.p95),
            format!("{:.1}", r.degraded_s),
            format!("{:.3}", r.relayout_stall_s),
        ]);
    }
    if !cli.json {
        print_table(
            "1. PIM-unit fault at t=2s, one device (goodput under fault)",
            &[
                "strategy",
                "completed",
                "shed",
                "goodput/s",
                "TTFT p95 (ms)",
                "degraded (s)",
                "relayout stall (s)",
            ],
            &rows,
        );
    }

    // -- 2. Crash failover: fleet loses a device mid-run -------------------
    let dataset = Dataset::code_autocompletion_like(7, n);
    let arrival = ArrivalProcess::Poisson { qps: 8.0 };
    let crash = FaultPlan {
        events: vec![FaultEvent {
            device: 0,
            at_s: 0.5,
            kind: FaultKind::Crash { recover_s: None },
        }],
        max_retries: 4,
        retry_backoff_s: 0.05,
        ..FaultPlan::none()
    };
    let mut crash_availability = 1.0;
    let mut rows = Vec::new();
    for (label, plan) in [("fault-free", FaultPlan::none()), ("crash dev 0 @ 0.5s", crash.clone())]
    {
        let cfg = ServeConfig { seed, fmfi: 0.0, ..ServeConfig::default() };
        let fc = FleetConfig { devices: 3, routing: Routing::LeastLoaded };
        let r =
            run_fleet_with_faults(&sim, &dataset, &arrival, cfg, fc, &plan).expect("valid plan");
        assert_eq!(r.completed + r.shed, r.offered, "conservation must hold");
        emit_run(
            &cli,
            "crash_failover",
            &[("plan", &escaped(label)), ("devices", "3")],
            &r.to_json(),
        );
        crash_availability = r.availability;
        rows.push(vec![
            label.to_string(),
            r.completed.to_string(),
            r.shed.to_string(),
            r.failovers.to_string(),
            r.retries.to_string(),
            format!("{:.3}", r.availability),
            format!("{:.1}", r.downtime_s),
        ]);
    }
    if !cli.json {
        print_table(
            "2. Crash failover, 3 devices at 8 arrivals/s (zero requests lost)",
            &["plan", "completed", "shed", "failovers", "retries", "availability", "down (s)"],
            &rows,
        );
    }

    // The same crash scenario again, traced: crash/freeze spans, failover
    // and retry instants land on per-device and fleet tracks.
    if cli.wants_trace() {
        let sink = Rc::new(RefCell::new(RingSink::new(1 << 20)));
        let cfg = ServeConfig { seed, fmfi: 0.0, ..ServeConfig::default() };
        let fc = FleetConfig { devices: 3, routing: Routing::LeastLoaded };
        run_fleet_with_faults_traced(&sim, &dataset, &arrival, cfg, fc, &crash, sink.clone())
            .expect("valid plan");
        cli.write_trace(&sink.borrow());
    }

    // -- 3. Seeded fault-rate sweep ----------------------------------------
    let dataset = Dataset::alpaca_like(3, n);
    let arrival = ArrivalProcess::Poisson { qps: 4.0 };
    let crash_rates: &[f64] = if cli.smoke { &[0.0, 0.2] } else { &[0.0, 0.05, 0.1, 0.2, 0.4] };
    let mut rows = Vec::new();
    for &crash_per_s in crash_rates {
        let rates = FaultRates {
            crash_per_s,
            pim_per_s: crash_per_s / 2.0,
            kv_per_s: crash_per_s / 2.0,
            mean_outage_s: 0.5,
        };
        let mut plan = FaultPlan::random(1234, 4, 30.0, rates);
        plan.max_retries = 3;
        plan.retry_backoff_s = 0.05;
        plan.deadline_s = 20.0;
        let cfg = ServeConfig { seed, fmfi: 0.0, ..ServeConfig::default() };
        let fc = FleetConfig { devices: 4, routing: Routing::LeastLoaded };
        let r =
            run_fleet_with_faults(&sim, &dataset, &arrival, cfg, fc, &plan).expect("valid plan");
        emit_run(
            &cli,
            "fault_rate_sweep",
            &[("crash_per_s", &number(crash_per_s)), ("devices", "4")],
            &r.to_json(),
        );
        rows.push(vec![
            format!("{crash_per_s:.2}"),
            (plan.events.len()).to_string(),
            format!("{:.3}", r.availability),
            format!("{:.2}", r.goodput_qps),
            format!("{:.3}", r.deadline_violation_rate),
            r.failovers.to_string(),
            (r.shed_failed + r.shed_deadline).to_string(),
        ]);
    }
    if !cli.json {
        print_table(
            "3. Seeded fault-rate sweep, 4 devices at 4 arrivals/s (20 s deadline)",
            &[
                "crashes/s/dev",
                "fault events",
                "availability",
                "goodput/s",
                "violation rate",
                "failovers",
                "failed+expired",
            ],
            &rows,
        );
        println!(
            "\nFACIL rides out PIM faults at SoC speed on its SoC-readable layout while the \
             hybrid baseline stalls for a re-layout; crashed devices' work fails over to \
             survivors with nothing silently lost; availability and goodput degrade smoothly \
             with the fault rate."
        );
    }

    let mut manifest = RunManifest::new("chaos", seed);
    manifest
        .config_str("platform", "iphone")
        .config_uint("queries", n as u64)
        .config_bool("smoke", cli.smoke);
    manifest.result_num("crash_availability", crash_availability);
    cli.emit_manifest(&manifest);
}
