//! Mapping-search ablation: searched vs paper-selected DRAM mappings.
//!
//! For every paper platform (Table II), builds a decode-heavy
//! [`WorkloadProfile`] from the platform model's distinct linear-layer
//! shapes plus two shapes *outside* the Fig. 13 configurations (a
//! MoE-style skinny expert slice and a long-context FFN block), runs
//! [`search_workload`] over the MapID x PU-order candidate space, and
//! reports searched-vs-paper measured cycles per tensor.
//!
//! Two properties CI checks on the emitted JSON:
//!
//! * every *baseline* tensor (a shape of the platform's Fig. 13 model)
//!   retains the paper's closed-form pick — the epsilon incumbent rule at
//!   work;
//! * at least one platform/extra-shape combination displaces the paper's
//!   pick with a measured improvement above the search threshold.
//!
//! Usage: `cargo run --release -p facil-bench --bin mapsearch`
//!
//! * `--json` — one tagged JSONL line per platform (the full
//!   [`SearchReport`]) plus the run manifest, no tables;
//! * `--smoke` — iPhone + IdeaPad only, largest shapes only;
//! * `--seed <n>` — search seed (default `0xFAC11`; the default space is
//!   searched exhaustively, so this only matters for provenance).
//!
//! The full (non-smoke) `--json` output is committed as
//! `BENCH_mapsearch.json`: the search is deterministic end to end (stride
//! sampling, fixed enumeration order, no RNG in scoring), so regenerating
//! it must be byte-identical.

use facil_bench::{emit_run, print_table, BenchCli};
use facil_core::{DType, MatrixConfig};
use facil_llm::ModelConfig;
use facil_mapsearch::{search_workload, SearchConfig, SearchReport, TensorSpec, WorkloadProfile};
use facil_soc::{Platform, PlatformId};
use facil_telemetry::{json, RunManifest};

/// Model shapes *not* in any Fig. 13 configuration, exercised on every
/// platform: a MoE-style expert slice too small to fill the paper-MapID
/// window, and a long-context FFN block much larger than any window.
const EXTRA_SHAPES: [(&str, u64, u64); 2] =
    [("moe-expert", 64, 4096), ("longctx-ffn", 1024, 16384)];

/// Distinct weight shapes of `model`, largest first, with per-model
/// instance counts merged (q/k/v projections of equal shape collapse into
/// one searched tensor — the mapping only depends on the shape).
fn model_tensors(model: &ModelConfig, largest_only: usize) -> Vec<TensorSpec> {
    let mut by_shape: Vec<(u64, u64, &'static str, u64)> = Vec::new();
    for (op, instances) in model.all_linears() {
        match by_shape.iter_mut().find(|(r, c, ..)| *r == op.out_features && *c == op.in_features) {
            Some(entry) => entry.3 += instances,
            None => by_shape.push((op.out_features, op.in_features, op.name, instances)),
        }
    }
    by_shape.sort_by_key(|&(r, c, ..)| std::cmp::Reverse(r * c));
    by_shape.truncate(largest_only);
    by_shape
        .into_iter()
        .map(|(rows, cols, name, instances)| {
            TensorSpec::new(name, MatrixConfig::new(rows, cols, DType::F16))
                .with_instances(instances)
        })
        .collect()
}

fn platform_profile(platform: &Platform, smoke: bool) -> WorkloadProfile {
    let model = ModelConfig::by_name(platform.model_name);
    let mut tensors = model_tensors(&model, if smoke { 2 } else { usize::MAX });
    for (name, rows, cols) in EXTRA_SHAPES {
        tensors.push(TensorSpec::new(name, MatrixConfig::new(rows, cols, DType::F16)));
    }
    // Decode-heavy autoregressive mix: mostly GEMV weight streaming with a
    // prefill GEMM share (deterministic — no dataset sampling).
    WorkloadProfile::decode_only(format!("{}-decode", model.name), tensors).with_mix(0.9, 0.1)
}

/// Short machine-readable platform label for JSON fields and manifest
/// keys (the `Display` names carry spaces and parens).
fn slug(id: PlatformId) -> &'static str {
    match id {
        PlatformId::Jetson => "jetson",
        PlatformId::Macbook => "macbook",
        PlatformId::Ideapad => "ideapad",
        PlatformId::Iphone => "iphone",
    }
}

fn run_platform(
    platform: &Platform,
    config: &SearchConfig,
    smoke: bool,
) -> facil_core::Result<SearchReport> {
    let profile = platform_profile(platform, smoke);
    let results = search_workload(&platform.dram, &platform.pim_arch, &profile, config)?;
    SearchReport::new(
        slug(platform.id),
        &profile.name,
        config,
        platform.dram.topology,
        platform.pim_arch,
        results,
    )
}

fn main() {
    let (cli, rest) = BenchCli::parse();
    if let Some(unknown) = rest.first() {
        eprintln!("unknown argument: {unknown}");
        std::process::exit(2);
    }
    let seed = cli.seed_or(0xFAC11);
    let config = SearchConfig { seed, ..SearchConfig::default() };
    let platforms: Vec<PlatformId> = if cli.smoke {
        vec![PlatformId::Iphone, PlatformId::Ideapad]
    } else {
        PlatformId::all().to_vec()
    };

    let extra: Vec<&str> = EXTRA_SHAPES.iter().map(|(n, ..)| *n).collect();
    let mut reports = Vec::new();
    for id in &platforms {
        let platform = Platform::get(*id);
        match run_platform(&platform, &config, cli.smoke) {
            Ok(report) => reports.push(report),
            Err(e) => {
                eprintln!("mapsearch failed on {id}: {e}");
                std::process::exit(1);
            }
        }
    }

    for report in &reports {
        emit_run(
            &cli,
            "mapsearch",
            &[("platform", &json::escaped(&report.platform))],
            &report.to_json(),
        );
        if !cli.json {
            let rows: Vec<Vec<String>> = report
                .results
                .iter()
                .map(|r| {
                    vec![
                        r.tensor.clone(),
                        r.matrix.to_string(),
                        r.paper.describe(&report.arch),
                        r.best.describe(&report.arch),
                        if r.displaced {
                            format!("{:.1}%", r.improvement * 100.0)
                        } else {
                            "-".into()
                        },
                        format!("{:.0}", r.paper_measured.score),
                        format!("{:.0}", r.best_measured.score),
                        format!("{}/{}", r.evaluated, r.space_size),
                    ]
                })
                .collect();
            print_table(
                &format!("mapsearch — {} ({})", report.platform, report.profile),
                &[
                    "tensor",
                    "matrix",
                    "paper pick",
                    "searched pick",
                    "gain",
                    "paper cyc",
                    "best cyc",
                    "evaluated",
                ],
                &rows,
            );
        }
    }

    // Fail loudly (independent of CI's JSON checks) if either headline
    // property broke: baseline retention or at least one searched win.
    let baseline_displaced: Vec<String> = reports
        .iter()
        .flat_map(|rep| rep.results.iter().map(move |r| (rep, r)))
        .filter(|(_, r)| r.displaced && !extra.contains(&r.tensor.as_str()))
        .map(|(rep, r)| format!("{}/{}", rep.platform, r.tensor))
        .collect();
    if !baseline_displaced.is_empty() {
        eprintln!("paper baselines displaced: {baseline_displaced:?}");
        std::process::exit(1);
    }
    let wins = reports.iter().map(SearchReport::displaced_count).sum::<usize>();
    if wins == 0 {
        eprintln!("no platform/shape combination improved on the paper's pick");
        std::process::exit(1);
    }

    let mut manifest = RunManifest::new("mapsearch", seed);
    manifest
        .config_uint("platforms", platforms.len() as u64)
        .config_uint("page_bits", u64::from(config.page_bits))
        .config_num("improvement_threshold", config.improvement_threshold)
        .config_bool("smoke", cli.smoke);
    for report in &reports {
        manifest.result_uint(
            &format!("displaced_{}", report.platform),
            report.displaced_count() as u64,
        );
        manifest.result_uint(&format!("evaluated_{}", report.platform), report.evaluated_total());
    }
    manifest.result_uint("displaced_total", wins as u64);
    manifest.result_uint("baselines_reproduced", 1);
    cli.emit_manifest(&manifest);
}
