//! Command-log capture and JEDEC-legality verification.
//!
//! When enabled, the channel scheduler records every device command it
//! issues; [`verify_log`] independently re-checks the log against the
//! timing constraints (tRC, tRAS, tRP, tRCD, tRTP, tWR, tCCD, tRRD, tFAW,
//! data-bus occupancy). This is a second implementation of the rules, so
//! scheduler bugs cannot hide behind their own bookkeeping — the property
//! tests drive random request streams through both.

use serde::{Deserialize, Serialize};

use crate::command::CommandKind;
use crate::spec::Timing;

/// One logged device command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoggedCommand {
    /// Issue cycle.
    pub cycle: u64,
    /// Command kind.
    pub kind: CommandKind,
    /// Rank.
    pub rank: u64,
    /// Bank (flat; meaningless for RefAb).
    pub bank: u64,
    /// Row for ACT, column for RD/WR, 0 otherwise.
    pub arg: u64,
}

/// A violation found by [`verify_log`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Index of the offending command in the log.
    pub index: usize,
    /// Human-readable rule description.
    pub rule: String,
}

#[derive(Debug, Clone, Copy, Default)]
struct BankTrace {
    last_act: Option<u64>,
    last_pre: Option<u64>,
    last_rd: Option<u64>,
    last_wr: Option<u64>,
    open: bool,
}

/// Re-check a per-channel command log against `timing`. Returns all
/// violations (empty = legal). `banks_per_group` is needed for the
/// tRRD_L/tCCD_L same-bank-group rules.
pub fn verify_log(
    log: &[LoggedCommand],
    timing: &Timing,
    ranks: u64,
    banks: u64,
    banks_per_group: u64,
) -> Vec<Violation> {
    let mut violations = Vec::new();
    let mut bank_state = vec![BankTrace::default(); (ranks * banks) as usize];
    let mut rank_acts: Vec<Vec<u64>> = vec![Vec::new(); ranks as usize];
    let mut bus_busy_until = 0u64;
    let check = |cond: bool, index: usize, rule: String, out: &mut Vec<Violation>| {
        if !cond {
            out.push(Violation { index, rule });
        }
    };

    let mut last_cmd_cycle: Option<u64> = None;
    for (i, c) in log.iter().enumerate() {
        if let Some(prev) = last_cmd_cycle {
            check(c.cycle >= prev, i, "commands must be time-ordered".into(), &mut violations);
            if c.kind != CommandKind::RefAb {
                check(
                    c.cycle > prev || c.kind == CommandKind::RefAb,
                    i,
                    "one command per cycle per channel".into(),
                    &mut violations,
                );
            }
        }
        if c.kind != CommandKind::RefAb {
            last_cmd_cycle = Some(c.cycle);
        }
        let bi = (c.rank * banks + c.bank) as usize;
        match c.kind {
            CommandKind::Act => {
                let b = bank_state[bi];
                check(
                    !b.open,
                    i,
                    format!("ACT to open bank rk{} ba{}", c.rank, c.bank),
                    &mut violations,
                );
                if let Some(t) = b.last_act {
                    check(
                        c.cycle >= t + timing.rc,
                        i,
                        format!("tRC violation on rk{} ba{}", c.rank, c.bank),
                        &mut violations,
                    );
                }
                if let Some(t) = b.last_pre {
                    check(
                        c.cycle >= t + timing.rp,
                        i,
                        format!("tRP violation on rk{} ba{}", c.rank, c.bank),
                        &mut violations,
                    );
                }
                // tRRD (same rank) and tFAW.
                let acts = &rank_acts[c.rank as usize];
                if let Some(&t) = acts.last() {
                    check(
                        c.cycle >= t + timing.rrd_s,
                        i,
                        "tRRD_S violation".into(),
                        &mut violations,
                    );
                }
                // Same bank group: tRRD_L. Scan recent acts for same group.
                let group = c.bank / banks_per_group;
                for &(t, g) in recent_groups(log, i, banks_per_group).iter() {
                    if g == group && c.rank == log_rank(log, i, t) {
                        check(
                            c.cycle >= t + timing.rrd_l,
                            i,
                            "tRRD_L violation".into(),
                            &mut violations,
                        );
                        break;
                    }
                }
                if acts.len() >= 4 {
                    let t4 = acts[acts.len() - 4];
                    check(
                        c.cycle >= t4 + timing.faw,
                        i,
                        format!("tFAW violation on rank {}", c.rank),
                        &mut violations,
                    );
                }
                rank_acts[c.rank as usize].push(c.cycle);
                bank_state[bi].last_act = Some(c.cycle);
                bank_state[bi].open = true;
                bank_state[bi].last_rd = None;
                bank_state[bi].last_wr = None;
            }
            CommandKind::Pre => {
                let b = bank_state[bi];
                check(b.open, i, "PRE to closed bank".into(), &mut violations);
                if let Some(t) = b.last_act {
                    check(c.cycle >= t + timing.ras, i, "tRAS violation".into(), &mut violations);
                }
                if let Some(t) = b.last_rd {
                    check(c.cycle >= t + timing.rtp, i, "tRTP violation".into(), &mut violations);
                }
                if let Some(t) = b.last_wr {
                    check(
                        c.cycle >= t + timing.cwl + timing.burst_cycles + timing.wr,
                        i,
                        "tWR violation".into(),
                        &mut violations,
                    );
                }
                bank_state[bi].open = false;
                bank_state[bi].last_pre = Some(c.cycle);
            }
            CommandKind::Rd | CommandKind::Wr => {
                let b = bank_state[bi];
                check(b.open, i, "column command to closed bank".into(), &mut violations);
                if let Some(t) = b.last_act {
                    check(c.cycle >= t + timing.rcd, i, "tRCD violation".into(), &mut violations);
                }
                let lat = if c.kind == CommandKind::Rd { timing.cl } else { timing.cwl };
                let data_start = c.cycle + lat;
                check(data_start >= bus_busy_until, i, "data bus conflict".into(), &mut violations);
                bus_busy_until = data_start + timing.burst_cycles;
                if c.kind == CommandKind::Rd {
                    bank_state[bi].last_rd = Some(c.cycle);
                } else {
                    bank_state[bi].last_wr = Some(c.cycle);
                }
            }
            CommandKind::RefAb => {
                // Refresh legality (all banks closed) is asserted by the
                // scheduler itself; the log records it for energy accounting.
            }
        }
    }
    violations
}

/// Recent (cycle, bank-group) pairs of ACT commands before index `i`.
fn recent_groups(log: &[LoggedCommand], i: usize, banks_per_group: u64) -> Vec<(u64, u64)> {
    log[..i]
        .iter()
        .rev()
        .take(8)
        .filter(|c| c.kind == CommandKind::Act)
        .map(|c| (c.cycle, c.bank / banks_per_group))
        .collect()
}

/// Rank of the ACT at cycle `t` near index `i` (helper for tRRD_L checks).
fn log_rank(log: &[LoggedCommand], i: usize, t: u64) -> u64 {
    log[..i]
        .iter()
        .rev()
        .find(|c| c.kind == CommandKind::Act && c.cycle == t)
        .map(|c| c.rank)
        .unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DramSpec;

    fn timing() -> Timing {
        DramSpec::lpddr5_6400(16, 256 << 20).timing
    }

    fn act(cycle: u64, bank: u64, row: u64) -> LoggedCommand {
        LoggedCommand { cycle, kind: CommandKind::Act, rank: 0, bank, arg: row }
    }
    fn rd(cycle: u64, bank: u64, col: u64) -> LoggedCommand {
        LoggedCommand { cycle, kind: CommandKind::Rd, rank: 0, bank, arg: col }
    }
    fn pre(cycle: u64, bank: u64) -> LoggedCommand {
        LoggedCommand { cycle, kind: CommandKind::Pre, rank: 0, bank, arg: 0 }
    }

    #[test]
    fn legal_sequence_passes() {
        let tm = timing();
        let log = vec![
            act(0, 0, 5),
            rd(tm.rcd, 0, 0),
            rd(tm.rcd + tm.ccd_l, 0, 1),
            pre(tm.ras.max(tm.rcd + tm.ccd_l + tm.rtp), 0),
        ];
        assert!(verify_log(&log, &tm, 2, 16, 4).is_empty());
    }

    #[test]
    fn early_read_is_caught() {
        let tm = timing();
        let log = vec![act(0, 0, 5), rd(tm.rcd - 1, 0, 0)];
        let v = verify_log(&log, &tm, 2, 16, 4);
        assert!(v.iter().any(|v| v.rule.contains("tRCD")), "{v:?}");
    }

    #[test]
    fn early_precharge_is_caught() {
        let tm = timing();
        let log = vec![act(0, 0, 5), pre(tm.ras - 1, 0)];
        let v = verify_log(&log, &tm, 2, 16, 4);
        assert!(v.iter().any(|v| v.rule.contains("tRAS")), "{v:?}");
    }

    #[test]
    fn act_to_open_bank_is_caught() {
        let tm = timing();
        let log = vec![act(0, 0, 5), act(tm.rc, 0, 6)];
        let v = verify_log(&log, &tm, 2, 16, 4);
        assert!(v.iter().any(|v| v.rule.contains("ACT to open")), "{v:?}");
    }

    #[test]
    fn faw_is_caught() {
        let tm = timing();
        // Five ACTs to different banks spaced only tRRD apart.
        let log: Vec<_> = (0..5).map(|i| act(i * tm.rrd_s, i, 0)).collect();
        let v = verify_log(&log, &tm, 2, 16, 4);
        if 4 * tm.rrd_s < tm.faw {
            assert!(v.iter().any(|v| v.rule.contains("tFAW")), "{v:?}");
        }
    }

    #[test]
    fn bus_conflict_is_caught() {
        let tm = timing();
        let log = vec![
            act(0, 0, 5),
            rd(tm.rcd, 0, 0),
            // Second read one cycle later: bursts overlap.
            rd(tm.rcd + 1, 0, 1),
        ];
        let v = verify_log(&log, &tm, 2, 16, 4);
        assert!(v.iter().any(|v| v.rule.contains("bus")), "{v:?}");
    }
}
